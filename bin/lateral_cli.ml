(* lateral: command-line tool for the trusted component ecosystem.

   Subcommands inspect substrate properties, analyse horizontal
   applications, and run the paper's end-to-end scenarios. *)

open Lt_crypto
open Lateral

(* --- substrates ------------------------------------------------------------ *)

let all_substrates () =
  let rng = Drbg.create 1L in
  let ca = Rsa.generate ~bits:512 rng in
  let acc = ref [] in
  let m1 = Lt_hw.Machine.create ~dram_pages:128 () in
  let sgx, _ = Substrate_sgx.make m1 rng ~ca_name:"intel" ~ca_key:ca () in
  acc := sgx :: !acc;
  let m2 = Lt_hw.Machine.create ~dram_pages:64 () in
  Lt_hw.Fuse.program m2.Lt_hw.Machine.fuses ~name:"devkey"
    ~visibility:Lt_hw.Fuse.Secure_only (Drbg.bytes rng 32);
  (match
     Substrate_trustzone.make m2 ~vendor:ca.Rsa.pub
       ~image:(Lt_tpm.Boot.sign_stage ca ~name:"tz-os" "tz-os-v1")
       ~device_id:"dev" ~device_key_name:"devkey" ~secure_pages:4
   with
   | Ok (tz, _) -> acc := tz :: !acc
   | Error _ -> ());
  let m3 = Lt_hw.Machine.create ~dram_pages:64 () in
  let sep, _, _ = Substrate_sep.make m3 rng ~device_id:"dev" ~private_pages:4 in
  acc := sep :: !acc;
  let tpm = Lt_tpm.Tpm.manufacture rng ~ca_name:"tpm-vendor" ~ca_key:ca ~serial:"1" in
  acc := Substrate_flicker.make tpm () :: !acc;
  let m4 = Lt_hw.Machine.create ~dram_pages:128 () in
  let mk, _ =
    Substrate_kernel.make m4 (Lt_kernel.Sched.Round_robin { quantum = 500 }) ()
  in
  acc := mk :: !acc;
  let m5 = Lt_hw.Machine.create ~dram_pages:128 () in
  let tpm2 = Lt_tpm.Tpm.manufacture rng ~ca_name:"tpm-vendor" ~ca_key:ca ~serial:"2" in
  let mk_tpm, _ =
    Substrate_kernel.make m5 (Lt_kernel.Sched.Round_robin { quantum = 500 }) ~tpm:tpm2 ()
  in
  acc := mk_tpm :: !acc;
  let cheri, _, _ = Substrate_cheri.make rng ~size:(1 lsl 17) () in
  acc := cheri :: !acc;
  let m3, _ = Substrate_m3.make rng ~ca_name:"m3-mfg" ~ca_key:ca ~tiles:8 () in
  acc := m3 :: !acc;
  List.rev !acc

let cmd_substrates () =
  let subs = all_substrates () in
  Printf.printf "%-16s %-11s %-7s %-6s %-9s %-8s %s\n" "substrate" "concurrent"
    "mutual" "cache" "progress" "tcb-loc" "defends";
  Printf.printf "%s\n" (String.make 100 '-');
  List.iter
    (fun (s : Substrate.t) ->
      let p = s.Substrate.properties in
      Printf.printf "%-16s %-11b %-7b %-6b %-9b %-8d %s\n"
        p.Substrate.substrate_name p.Substrate.concurrent_components
        p.Substrate.mutually_isolated p.Substrate.shared_cache_with_host
        p.Substrate.progress_guaranteed
        (List.fold_left (fun a (_, n) -> a + n) 0 p.Substrate.tcb)
        (String.concat ","
           (List.map
              (fun m -> Format.asprintf "%a" Substrate.pp_attacker_model m)
              p.Substrate.defends)))
    subs;
  0

(* --- mail analysis ----------------------------------------------------------- *)

let cmd_mail vertical exploit =
  match Scenario_mail.build ~vertical with
  | Error e ->
    Printf.eprintf "mail: %s\n" e;
    1
  | Ok app ->
  Printf.printf "mail client, %s design\n"
    (if vertical then "vertical (monolithic)" else "horizontal (decomposed)");
  (match App.validate app with
   | Ok () -> ()
   | Error errs -> List.iter (Printf.printf "manifest error: %s\n") errs);
  Printf.printf "\ncomponents:\n";
  List.iter
    (fun m -> Printf.printf "  %s\n" (Format.asprintf "%a" Manifest.pp m))
    (App.manifests app);
  (match exploit with
   | None ->
     Printf.printf "\ncontainment (fraction of app owned when exploited):\n";
     List.iter
       (fun name ->
         let r = Analysis.compromise_reach app name in
         Printf.printf "  %-12s %s\n" name (Format.asprintf "%a" Analysis.pp_reach r))
       Scenario_mail.component_names
   | Some name ->
     let r = Analysis.compromise_reach app name in
     Printf.printf "\nexploiting %s: %s\n" name
       (Format.asprintf "%a" Analysis.pp_reach r);
     Printf.printf "invocable authority:\n";
     List.iter
       (fun (t, s) -> Printf.printf "  %s.%s\n" t s)
       r.Analysis.invocable);
  let risks = Analysis.confused_deputy_risks app in
  Printf.printf "\nconfused deputy risks: %d\n" (List.length risks);
  List.iter
    (fun (c, s, callers) ->
      Printf.printf "  %s.%s serves %s without badge checks\n" c s
        (String.concat ", " callers))
    risks;
  0

(* --- tracing helper ----------------------------------------------------------- *)

(* wrap a command in a fresh tracer and write the Chrome trace-event
   JSON afterwards; without --trace the command runs uninstrumented *)
let with_trace trace_file f =
  match trace_file with
  | None -> f ()
  | Some file ->
    let tracer = Lt_obs.Trace.create () in
    let code = Lt_obs.Trace.with_tracer tracer f in
    let oc = open_out file in
    output_string oc (Lt_obs.Trace.export_json tracer);
    close_out oc;
    Printf.eprintf "trace: %d spans written to %s\n"
      (List.length (Lt_obs.Trace.spans tracer)) file;
    code

(* --- meter -------------------------------------------------------------------- *)

let cmd_meter tamper =
  let tampers =
    match tamper with
    | None -> Scenario_meter.all_tampers
    | Some name ->
      (match
         List.find_opt
           (fun t -> Scenario_meter.tamper_name t = name)
           Scenario_meter.all_tampers
       with
       | Some t -> [ t ]
       | None ->
         Printf.eprintf "unknown tamper %S; known: %s\n" name
           (String.concat ", "
              (List.map Scenario_meter.tamper_name Scenario_meter.all_tampers));
         (* a bad flag value is a usage error, not a failed scenario *)
         exit 2)
  in
  Printf.printf "%-26s %-10s %-8s %-9s %s\n" "scenario" "anonymizer" "sent"
    "accepted" "detail";
  let staging_failed = ref false in
  List.iter
    (fun t ->
      match Scenario_meter.run t with
      | Ok o ->
        Printf.printf "%-26s %-10b %-8b %-9b %s\n" (Scenario_meter.tamper_name t)
          o.Scenario_meter.anonymizer_verified o.Scenario_meter.reading_sent
          o.Scenario_meter.reading_accepted o.Scenario_meter.detail
      | Error e ->
        staging_failed := true;
        Printf.printf "%-26s cannot stage: %s\n" (Scenario_meter.tamper_name t) e)
    tampers;
  if !staging_failed then 1 else 0

(* --- gateway ------------------------------------------------------------------- *)

let cmd_gateway () =
  let direct, gated_victims, gated_utility = Scenario_meter.gateway_demo () in
  Printf.printf "flood without gateway: %d packets reached victims\n" direct;
  Printf.printf "flood through gateway: %d packets reached victims\n" gated_victims;
  Printf.printf "legitimate telemetry delivered: %d packets\n" gated_utility;
  0

(* --- run: deterministic load against a deployed scenario --------------------------- *)

type run_format = Run_text | Run_json

let cmd_run scenario requests seed trace_file format drop delay compromise
    trace_capacity =
  if requests <= 0 then begin
    Printf.eprintf "run: --requests must be positive\n";
    2
  end
  else if drop < 0 || delay < 0 || compromise < 0 || drop + delay + compromise > 100
  then begin
    Printf.eprintf
      "run: fault percentages must be non-negative and sum to at most 100\n";
    2
  end
  else begin
    let faults =
      { Lt_load.Load.drop_pct = drop; delay_pct = delay; compromise_pct = compromise }
    in
    match
      Lt_load.Load.run ~faults ?trace_capacity ~scenario ~requests ~seed ()
    with
    | Error e ->
      Printf.eprintf "run: %s\n" e;
      1
    | Ok (report, tracer) ->
      (match trace_file with
       | None -> ()
       | Some file ->
         let oc = open_out file in
         output_string oc (Lt_obs.Trace.export_json tracer);
         close_out oc);
      (match format with
       | Run_text -> print_string (Lt_load.Load.render_report_text report)
       | Run_json -> print_string (Lt_load.Load.render_report_json report));
      if report.Lt_load.Load.r_errors > 0 then 1 else 0
  end

(* --- chaos: the load scenarios under seeded destruction ------------------------- *)

let cmd_chaos scenario requests seed trace_file format kill kill_pct flap
    mid_ipc trace_capacity =
  if requests <= 0 then begin
    Printf.eprintf "chaos: --requests must be positive\n";
    2
  end
  else begin
    let plan = { Lt_resil.Chaos.kill; kill_pct; flap; mid_ipc_pct = mid_ipc } in
    match Lt_resil.Chaos.run ~plan ?trace_capacity ~scenario ~requests ~seed () with
    | Error e ->
      Printf.eprintf "chaos: %s\n" e;
      2
    | Ok (report, tracer) ->
      (match trace_file with
       | None -> ()
       | Some file ->
         let oc = open_out file in
         output_string oc (Lt_obs.Trace.export_json tracer);
         close_out oc);
      (match format with
       | Run_text -> print_string (Lt_resil.Chaos.render_report_text report)
       | Run_json -> print_string (Lt_resil.Chaos.render_report_json report));
      if Lt_resil.Chaos.contained report then 0 else 1
  end

(* --- fleet: machine kills and partitions across attested hosts ------------------ *)

(* "HOST:FROM[:TO][:asym]" -> a scheduled partition *)
let parse_partition_spec s =
  let parts = String.split_on_char ':' s in
  let asym, parts =
    match List.rev parts with
    | "asym" :: rest -> (true, List.rev rest)
    | _ -> (false, parts)
  in
  let int_at what v =
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "partition %S: bad %s %S" s what v)
  in
  match parts with
  | [ host; from ] ->
    Result.map
      (fun f ->
        { Lt_fleet.Fleet_chaos.pt_host = host; pt_from = f; pt_heal = 0;
          pt_asym = asym })
      (int_at "start" from)
  | [ host; from; heal ] ->
    Result.bind (int_at "start" from) (fun f ->
        Result.map
          (fun h ->
            { Lt_fleet.Fleet_chaos.pt_host = host; pt_from = f; pt_heal = h;
              pt_asym = asym })
          (int_at "heal" heal))
  | _ -> Error (Printf.sprintf "partition %S: want HOST:FROM[:TO][:asym]" s)

let cmd_fleet hosts requests seed trace_file format kill_hosts partitions rogue
    trace_capacity replay =
  let module Fc = Lt_fleet.Fleet_chaos in
  let plan_of specs =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | s :: rest ->
        (match parse_partition_spec s with
         | Ok p -> go (p :: acc) rest
         | Error _ as e -> e)
    in
    Result.map
      (fun partitions -> { Fc.kill_hosts; partitions })
      (go [] specs)
  in
  let setup =
    match replay with
    | Some path ->
      Result.map
        (fun r ->
          (r.Fc.rp_hosts, r.Fc.rp_requests, r.Fc.rp_seed, r.Fc.rp_rogue,
           r.Fc.rp_plan))
        (Fc.load_repro path)
    | None ->
      Result.map (fun plan -> (hosts, requests, seed, rogue, plan))
        (plan_of partitions)
  in
  match setup with
  | Error e ->
    Printf.eprintf "fleet: %s\n" e;
    2
  | Ok (hosts, requests, seed, rogue, plan) ->
    if requests <= 0 then begin
      Printf.eprintf "fleet: --requests must be positive\n";
      2
    end
    else begin
      match Fc.run ~plan ~rogue ?trace_capacity ~hosts ~requests ~seed () with
      | Error e ->
        Printf.eprintf "fleet: %s\n" e;
        2
      | Ok (report, tracer) ->
        (match trace_file with
         | None -> ()
         | Some file ->
           let oc = open_out file in
           output_string oc (Lt_obs.Trace.export_json tracer);
           close_out oc);
        (match format with
         | Run_text -> print_string (Fc.render_report_text report)
         | Run_json -> print_string (Fc.render_report_json report));
        if Fc.contained report then 0 else 1
    end

(* --- hunt: differential fuzzing across substrates ------------------------------- *)

let cmd_hunt seed budget engine format replays =
  if budget <= 0 then begin
    Printf.eprintf "hunt: --budget must be positive\n";
    2
  end
  else if replays <> [] then begin
    (* replay mode: every reproducer must pass (its bug stays fixed) *)
    let failed = ref 0 in
    List.iter
      (fun path ->
        match Lt_fuzz.Hunt.replay_file path with
        | Ok () -> Printf.printf "%s: ok\n" path
        | Error e ->
          incr failed;
          Printf.printf "%s: FAIL %s\n" path e)
      replays;
    if !failed > 0 then 1 else 0
  end
  else begin
    let engines =
      match engine with
      | None -> Lt_fuzz.Hunt.all_engines
      | Some name ->
        (match Lt_fuzz.Hunt.engine_of_name name with
         | Some e -> [ e ]
         | None ->
           Printf.eprintf
             "hunt: unknown engine %S (manifest, substrate, storage, analysis, \
              contain)\n"
             name;
           exit 2)
    in
    let report =
      Lt_fuzz.Hunt.run ~engines ~seed:(Int64.of_int seed) ~budget ()
    in
    (match format with
     | Run_text -> print_string (Lt_fuzz.Hunt.render_text report)
     | Run_json -> print_string (Lt_fuzz.Hunt.render_json report));
    if Lt_fuzz.Hunt.ok report then 0 else 1
  end

(* --- analyze a user-provided manifest file --------------------------------------- *)

let cmd_analyze file exploit path =
  match Manifest_file.load file with
  | Error e ->
    (* unparseable input is a usage error (2), like lint and flow *)
    Printf.eprintf "error: %s\n" e;
    2
  | Ok manifests ->
    let app = App.create () in
    List.iter (App.add_stub app) manifests;
    (match App.validate app with
     | Ok () -> Printf.printf "%s: %d components, manifests consistent\n" file
                  (List.length manifests)
     | Error errs ->
       Printf.printf "%s: %d components, %d dangling connections:\n" file
         (List.length manifests) (List.length errs);
       List.iter (Printf.printf "  %s\n") errs);
    Printf.printf "\ndomains:\n";
    List.iter
      (fun (d, cs) -> Printf.printf "  %-14s %s\n" d (String.concat ", " cs))
      (Analysis.domains app);
    let tcb_of_substrate = Lint_rules.default_tcb_of_substrate in
    Printf.printf "\n%-16s %-10s %-14s %-10s\n" "component" "tcb-loc" "owned-if-hit"
      "surface";
    List.iter
      (fun m ->
        let name = m.Manifest.name in
        let r = Analysis.compromise_reach app name in
        Printf.printf "%-16s %-10d %-14s %-10d\n" name
          (Analysis.tcb app ~tcb_of_substrate name)
          (Printf.sprintf "%.0f%%" (100. *. r.Analysis.owned_fraction))
          (Analysis.attack_surface app name))
      manifests;
    (match exploit with
     | None -> ()
     | Some name ->
       let r = Analysis.compromise_reach app name in
       Printf.printf "\nexploiting %s: %s\n" name
         (Format.asprintf "%a" Analysis.pp_reach r));
    (match path with
     | None -> ()
     | Some spec ->
       (match String.split_on_char ':' spec with
        | [ src; dst ] ->
          let max_paths = 1000 in
          let s = Analysis.paths ~max_paths app ~src ~dst in
          Printf.printf "\nauthority paths %s -> %s: %d%s\n" src dst
            (List.length s.Analysis.ps_paths)
            (if s.Analysis.ps_truncated then
               Printf.sprintf " (truncated at %d; use `lateral flow` for reachability)"
                 max_paths
             else "");
          List.iter
            (fun p -> Printf.printf "  %s\n" (String.concat " -> " p))
            s.Analysis.ps_paths
        | _ -> Printf.eprintf "expected --path SRC:DST\n"));
    let risks = Analysis.confused_deputy_risks app in
    Printf.printf "\nconfused deputy risks: %d\n" (List.length risks);
    List.iter
      (fun (c, s, callers) ->
        Printf.printf "  %s.%s serves %s without badge checks\n" c s
          (String.concat ", " callers))
      risks;
    0

(* --- lint: the static checker over manifest files --------------------------------- *)

type lint_format = Lint_text | Lint_json

let cmd_lint files format show_rules =
  if show_rules then begin
    print_string (Lint.catalogue_text ());
    0
  end
  else if files = [] then begin
    Printf.eprintf "lint: no manifest file given (try --rules for the catalogue)\n";
    2
  end
  else begin
    let parse_failed = ref false in
    (* every file joins ONE fleet: cross-file hazards — a target
       declared in another file, duplicate names across files — are
       first-class findings, not blind spots *)
    let loaded_fleet =
      List.filter_map
        (fun file ->
          match Manifest_file.load_fleet_spanned file with
          | Error e ->
            parse_failed := true;
            Printf.eprintf "%s: %s\n" file e;
            None
          | Ok (spans, hosts) -> Some (file, spans, hosts))
        files
    in
    let loaded = List.map (fun (f, spans, _) -> (f, spans)) loaded_fleet in
    let hosts = List.concat_map (fun (_, _, hs) -> hs) loaded_fleet in
    let manifests =
      List.concat_map
        (fun (_, spans) ->
          List.map (fun s -> s.Manifest_file.sp_manifest) spans)
        loaded
    in
    let config = { Lint_rules.default_config with Lint_rules.declared_hosts = hosts } in
    let diags = Lint.locate_all loaded (Lint.run ~config manifests) in
    let label = String.concat ", " (List.map fst loaded) in
    (match format with
     | Lint_text ->
       if loaded <> [] then print_string (Lint.render_text ~file:label diags)
     | Lint_json ->
       print_string
         ("["
         ^ (if loaded = [] then "" else Lint.render_json ~file:label diags)
         ^ "]\n"));
    if !parse_failed then 2 else if Lint.has_errors diags then 1 else 0
  end

(* --- flow: information-flow analysis and kernel conformance ----------------------- *)

let cmd_flow files format dot conform =
  if files = [] then begin
    Printf.eprintf "flow: no manifest file given\n";
    2
  end
  else begin
    let parse_failed = ref false in
    (* like lint: all the files are one fleet, one lattice, one report *)
    let loaded =
      List.filter_map
        (fun file ->
          match Manifest_file.load file with
          | Error e ->
            parse_failed := true;
            Printf.eprintf "%s: %s\n" file e;
            None
          | Ok manifests -> Some (file, manifests))
        files
    in
    if loaded = [] then begin
      if (not dot) && format = Lint_json then print_string "[]\n";
      2
    end
    else begin
      let label = String.concat ", " (List.map fst loaded) in
      let manifests = List.concat_map snd loaded in
      let any_violation = ref false in
      let r = Flow.analyze manifests in
      let conf =
        if not conform then None
        else
          match Flow.provision manifests with
          | Error e ->
            Printf.eprintf "%s: cannot provision: %s\n" label e;
            any_violation := true;
            None
          | Ok d ->
            let c = Flow.conformance manifests d.Flow.d_kernel in
            if c.Flow.over <> [] then any_violation := true;
            Some c
      in
      if Flow.has_leaks r then any_violation := true;
      (if dot then print_string (Flow.to_dot manifests r)
       else
         match format with
         | Lint_text -> print_string (Flow.render_text ~file:label ?conformance:conf r)
         | Lint_json ->
           print_string ("[" ^ Flow.render_json ~file:label ?conformance:conf r ^ "]\n"));
      if !parse_failed then 2 else if !any_violation then 1 else 0
    end
  end

(* --- check: delta-driven incremental analysis -------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let cmd_check files deltas_file format verify =
  if files = [] then begin
    Printf.eprintf "check: no manifest file given\n";
    2
  end
  else begin
    let rec load_all acc = function
      | [] -> Ok (List.rev acc)
      | f :: rest ->
        (match Manifest_file.load_fleet f with
         | Error e -> Error (Printf.sprintf "%s: %s" f e)
         | Ok (ms, hs) -> load_all ((f, ms, hs) :: acc) rest)
    in
    let deltas =
      match deltas_file with
      | None -> Ok []
      | Some path ->
        (match Delta.load_script_located path with
         | Ok ds -> Ok ds
         | Error { Delta.pe_line = 0; pe_msg } ->
           Error (Printf.sprintf "%s: %s" path pe_msg)
         | Error { Delta.pe_line; pe_msg } ->
           (* same file:line: shape as a located lint diagnostic *)
           let loc = { Diagnostic.file = path; line = pe_line } in
           Error
             (Printf.sprintf "%s:%d: %s" loc.Diagnostic.file
                loc.Diagnostic.line pe_msg))
    in
    match (load_all [] files, deltas) with
    | Error e, _ | _, Error e ->
      Printf.eprintf "%s\n" e;
      2
    | Ok loaded, Ok deltas ->
      let label = String.concat ", " (List.map (fun (f, _, _) -> f) loaded) in
      let config =
        { Lint_rules.default_config with
          Lint_rules.declared_hosts = List.concat_map (fun (_, _, hs) -> hs) loaded }
      in
      let st = Check.create ~config (List.concat_map (fun (_, ms, _) -> ms) loaded) in
      let any_error = ref false in
      let diverged = ref None in
      let steps = Buffer.create 256 in
      let flow_word st =
        match (Check.flow_result st).Flow.verdict with
        | Flow.Secure -> "secure"
        | Flow.Leak ls -> Printf.sprintf "leak(%d)" (List.length ls)
      in
      let record n what st diags =
        let s = Lint.summarize diags in
        if Lint.has_errors diags then any_error := true;
        (match format with
         | Lint_text ->
           Buffer.add_string steps
             (Printf.sprintf
                "step %2d  %-36s %d components, %d errors, %d warnings, %d \
                 infos, flow %s\n"
                n what
                (List.length (Check.manifests st))
                s.Lint.errors s.Lint.warnings s.Lint.infos (flow_word st))
         | Lint_json ->
           Buffer.add_string steps
             (Printf.sprintf
                "{\"step\":%d,\"delta\":\"%s\",\"components\":%d,\"summary\":{\"errors\":%d,\"warnings\":%d,\"infos\":%d},\"flow\":\"%s\"}"
                n (json_escape what)
                (List.length (Check.manifests st))
                s.Lint.errors s.Lint.warnings s.Lint.infos (flow_word st)));
        if verify && !diverged = None then
          match Check.divergence st with
          | Some reason -> diverged := Some (n, what, reason)
          | None -> ()
      in
      record 0 "baseline" st (Check.diagnostics st);
      let _, final =
        List.fold_left
          (fun (n, st) d ->
            let st, diags = Check.apply d st in
            if format = Lint_json then Buffer.add_string steps ",";
            record n (Delta.describe d) st diags;
            (n + 1, st))
          (1, st) deltas
      in
      (match format with
       | Lint_text ->
         print_string (Buffer.contents steps);
         print_newline ();
         print_string (Lint.render_text ~file:label (Check.diagnostics final))
       | Lint_json -> print_string ("[" ^ Buffer.contents steps ^ "]\n"));
      (match !diverged with
       | Some (n, what, reason) ->
         Printf.eprintf "check: step %d (%s): %s\n" n what reason;
         2
       | None -> if !any_error then 1 else 0)
  end

(* --- contain: static blast-radius analysis ------------------------------------------ *)

let contain_rule_ids =
  [ "L020-unbounded-blast-radius"; "L021-single-point-of-failure";
    "L022-restart-storm-cycle"; "L023-stateful-dependency-unshielded" ]

let cmd_contain files format dot witness =
  if files = [] then begin
    Printf.eprintf "contain: no manifest file given\n";
    2
  end
  else begin
    let parse_failed = ref false in
    (* like lint: every file joins one fleet, one propagation graph *)
    let loaded =
      List.filter_map
        (fun file ->
          match Manifest_file.load_spanned file with
          | Error e ->
            parse_failed := true;
            Printf.eprintf "%s: %s\n" file e;
            None
          | Ok spans -> Some (file, spans))
        files
    in
    if !parse_failed then 2
    else begin
      let label = String.concat ", " (List.map fst loaded) in
      let manifests =
        List.concat_map
          (fun (_, spans) ->
            List.map (fun s -> s.Manifest_file.sp_manifest) spans)
          loaded
      in
      let r = Contain.analyze manifests in
      match witness with
      | Some root ->
        (match
           List.find_opt (fun x -> x.Contain.r_root = root) r.Contain.radii
         with
         | None ->
           Printf.eprintf "contain: unknown component %S\n" root;
           2
         | Some radius ->
           (match radius.Contain.r_escape with
            | None ->
              Printf.printf "%s: a crash of %s stays inside its domain\n" label
                root
            | Some x ->
              Printf.printf
                "%s: a crash of %s escapes its domain: %d outside victim(s), \
                 worst %s (%s)\n  %s\n"
                label root x.Contain.x_outside x.Contain.x_victim
                (Contain.impact_to_string x.Contain.x_impact)
                (String.concat " -> " x.Contain.x_path));
           0)
      | None ->
        if dot then begin
          print_string (Contain.to_dot manifests r);
          0
        end
        else begin
          let diags =
            Lint.locate_all loaded
              (List.filter
                 (fun d -> List.mem d.Diagnostic.rule_id contain_rule_ids)
                 (Lint.run manifests))
          in
          (match format with
           | Lint_text ->
             print_string (Contain.render_text ~file:label r);
             if diags <> [] then begin
               print_newline ();
               print_string (Lint.render_text ~file:label diags)
             end
           | Lint_json ->
             print_string
               ("[" ^ Contain.render_json ~file:label r ^ ","
               ^ Lint.render_json ~file:label diags
               ^ "]\n"));
          if Lint.has_errors diags then 1 else 0
        end
    end
  end

(* --- snap --------------------------------------------------------------------- *)

(* world digests for the scenario deployments: boot at a fixed seed,
   print the whole-world digest (or every layer with --layers), and
   prove the fork -> mutate -> restore round-trip on each one *)
let cmd_snap scenario layers seed =
  let scenarios =
    match scenario with Some s -> [ s ] | None -> Lt_load.Load.all_scenarios
  in
  let failed = ref false in
  List.iter
    (fun s ->
      let name = Lt_load.Load.scenario_name s in
      match
        Lt_load.Load.deploy_scenario (Lt_crypto.Drbg.create (Int64.of_int seed)) s
      with
      | Error e ->
        failed := true;
        Printf.printf "%-5s  boot failed: %s\n" name e
      | Ok d ->
        let w = d.Lt_load.Load.d_world in
        let d0 = Lt_world.World.digest w in
        let pristine = Lt_world.World.fork w in
        let rng = Lt_crypto.Drbg.create 0xfeedL in
        for i = 0 to 4 do
          let target, service, payload = d.Lt_load.Load.d_mix rng i in
          ignore
            (Lateral.Deploy.call d.Lt_load.Load.d_deploy ~caller:None ~target
               ~service payload)
        done;
        Lt_world.World.restore w pristine;
        let round_trip = Lt_world.World.digest w = d0 in
        if not round_trip then failed := true;
        Printf.printf "%-5s  world %s  layers %d  round-trip %s\n" name
          (Lt_world.Digest64.to_hex d0)
          (List.length (Lt_world.World.layers w))
          (if round_trip then "ok" else "FAILED");
        if layers then
          List.iter
            (fun (lname, ld) ->
              Printf.printf "       %-28s %s\n" lname (Lt_world.Digest64.to_hex ld))
            (Lt_world.World.layer_digests w))
    scenarios;
  if !failed then 1 else 0

(* --- cmdliner wiring ------------------------------------------------------------ *)

open Cmdliner

(* the one exit-code convention, shared by every subcommand: 0 ok,
   1 findings-or-failures, 2 usage-or-divergence (see the README) *)
let std_exits =
  [ Cmd.Exit.info 0 ~doc:"on success: the run finished and every check passed.";
    Cmd.Exit.info 1
      ~doc:
        "on findings or failures: an error-severity diagnostic, a flow leak, \
         a failed request, a containment violation or a failed replay.";
    Cmd.Exit.info 2
      ~doc:
        "on usage or input errors (unknown flags or values, unparseable \
         manifest files or delta scripts) and on incremental/batch \
         divergence under $(b,--verify).";
    Cmd.Exit.info 125 ~doc:"on unexpected internal errors." ]

let substrates_cmd =
  Cmd.v
    (Cmd.info "substrates" ~exits:std_exits
       ~doc:"Compare the isolation substrates' properties (paper Table, \u{a7}II)")
    Term.(const cmd_substrates $ const ())

let mail_cmd =
  let vertical =
    Arg.(value & flag & info [ "vertical" ] ~doc:"Analyse the monolithic shape")
  in
  let exploit =
    Arg.(
      value
      & opt (some string) None
      & info [ "exploit" ] ~docv:"COMPONENT" ~doc:"Show the blast radius of one exploit")
  in
  Cmd.v
    (Cmd.info "mail" ~exits:std_exits ~doc:"Analyse the email-client scenario (Figure 1)")
    Term.(const cmd_mail $ vertical $ exploit)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace-event JSON of every span to $(docv)")

let meter_cmd =
  let tamper =
    Arg.(
      value
      & opt (some string) None
      & info [ "tamper" ] ~docv:"SCENARIO" ~doc:"Run one tamper scenario only")
  in
  Cmd.v
    (Cmd.info "meter" ~exits:std_exits ~doc:"Run the smart-meter scenario (Figure 3)")
    Term.(
      const (fun trace tamper -> with_trace trace (fun () -> cmd_meter tamper))
      $ trace_arg $ tamper)

let gateway_cmd =
  Cmd.v
    (Cmd.info "gateway" ~exits:std_exits ~doc:"Run the IoT DDoS gateway demo")
    Term.(const (fun trace -> with_trace trace cmd_gateway) $ trace_arg)

let run_cmd =
  let scenario =
    let scenario_conv =
      Arg.enum
        (List.map
           (fun s -> (Lt_load.Load.scenario_name s, s))
           Lt_load.Load.all_scenarios)
    in
    Arg.(
      required
      & pos 0 (some scenario_conv) None
      & info [] ~docv:"SCENARIO"
          ~doc:"Scenario to deploy and load: $(b,mail), $(b,meter) or $(b,cloud)")
  in
  let requests =
    Arg.(
      value & opt int 100
      & info [ "requests"; "n" ] ~docv:"N" ~doc:"Number of requests to replay")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S"
          ~doc:"Seed for the request mix, payloads and fault schedule; equal \
                seeds give byte-identical traces and reports")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", Run_text); ("json", Run_json) ]) Run_text
      & info [ "format" ] ~docv:"FORMAT" ~doc:"Report format: $(b,text) or $(b,json)")
  in
  let drop =
    Arg.(
      value & opt int 0
      & info [ "drop" ] ~docv:"PCT" ~doc:"Percent of requests dropped before issue")
  in
  let delay =
    Arg.(
      value & opt int 0
      & info [ "delay" ] ~docv:"PCT"
          ~doc:"Percent of requests delayed (logical ticks) before issue")
  in
  let compromise =
    Arg.(
      value & opt int 0
      & info [ "compromise" ] ~docv:"PCT"
          ~doc:"Percent of requests replaced by an off-manifest probe from a \
                compromised caller")
  in
  let trace_capacity =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-capacity" ] ~docv:"N"
          ~doc:"Bound the span ring buffer (oldest spans evicted first)")
  in
  Cmd.v
    (Cmd.info "run" ~exits:std_exits

       ~doc:
         "Deploy a scenario onto simulated substrates and replay a seeded, \
          deterministic request mix with optional fault injection; exits 1 if \
          any request errored")
    Term.(
      const cmd_run $ scenario $ requests $ seed $ trace_arg $ format $ drop
      $ delay $ compromise $ trace_capacity)

let chaos_cmd =
  let scenario =
    let scenario_conv =
      Arg.enum
        (List.map
           (fun s -> (Lt_load.Load.scenario_name s, s))
           Lt_load.Load.all_scenarios)
    in
    Arg.(
      required
      & pos 0 (some scenario_conv) None
      & info [] ~docv:"SCENARIO"
          ~doc:"Scenario to torture: $(b,mail), $(b,meter) or $(b,cloud)")
  in
  let requests =
    Arg.(
      value & opt int 100
      & info [ "requests"; "n" ] ~docv:"N" ~doc:"Number of requests to replay")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S"
          ~doc:"Seed for the kill schedule, request mix and backoff jitter; \
                equal seeds give byte-identical chaos reports")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", Run_text); ("json", Run_json) ]) Run_text
      & info [ "format" ] ~docv:"FORMAT" ~doc:"Report format: $(b,text) or $(b,json)")
  in
  let kill =
    Arg.(
      value & opt_all string []
      & info [ "kill" ] ~docv:"COMPONENT"
          ~doc:
            "Kill $(docv) once, at a seeded instant (repeatable). The pseudo \
             component $(b,legacy_os) instead cuts power to the mail \
             scenario's storage backend mid-mutation")
  in
  let kill_pct =
    Arg.(
      value & opt int 0
      & info [ "kill-pct" ] ~docv:"PCT"
          ~doc:"Percent of requests preceded by killing a random live component")
  in
  let flap =
    Arg.(
      value
      & opt (some string) None
      & info [ "flap" ] ~docv:"COMPONENT"
          ~doc:
            "Kill $(docv) again whenever it is found alive, until its restart \
             budget is spent and its routes' breakers open")
  in
  let mid_ipc =
    Arg.(
      value & opt int 0
      & info [ "mid-ipc" ] ~docv:"PCT"
          ~doc:
            "Firing percentage for the substrate fault points (kill mid-IPC \
             on the microkernel, mid-ecall on SGX)")
  in
  let trace_capacity =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-capacity" ] ~docv:"N"
          ~doc:"Bound the span ring buffer (oldest spans evicted first)")
  in
  Cmd.v
    (Cmd.info "chaos" ~exits:std_exits

       ~doc:
         "Replay a scenario while killing components at seeded instants; \
          audits blast-radius containment, VPFS crash consistency against a \
          shadow oracle, and secrecy across crashes. Exits 0 when contained, \
          1 on a containment violation, 2 on setup errors")
    Term.(
      const cmd_chaos $ scenario $ requests $ seed $ trace_arg $ format $ kill
      $ kill_pct $ flap $ mid_ipc $ trace_capacity)

let fleet_cmd =
  let hosts =
    Arg.(
      value & opt int 3
      & info [ "hosts" ] ~docv:"N"
          ~doc:"Simulated machines $(b,host-1) .. $(b,host-N), each offering \
                microkernel, sgx and sep substrates")
  in
  let requests =
    Arg.(
      value & opt int 100
      & info [ "requests"; "n" ] ~docv:"N" ~doc:"Number of requests to replay")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S"
          ~doc:"Seed for host keys, kill instants, placement order, the \
                request mix and backoff jitter; equal seeds give \
                byte-identical fleet reports")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", Run_text); ("json", Run_json) ]) Run_text
      & info [ "format" ] ~docv:"FORMAT" ~doc:"Report format: $(b,text) or $(b,json)")
  in
  let kill_hosts =
    Arg.(
      value & opt_all string []
      & info [ "kill-host" ] ~docv:"HOST"
          ~doc:"Kill the whole machine once, at a seeded instant (repeatable); \
                its clusters fail over to surviving attested hosts")
  in
  let partitions =
    Arg.(
      value & opt_all string []
      & info [ "partition" ] ~docv:"HOST:FROM[:TO][:asym]"
          ~doc:
            "Cut controller\xe2\x86\x94$(b,HOST) when request $(b,FROM) begins, heal \
             at $(b,TO) (omitted: never). Append $(b,:asym) to cut only the \
             host's replies \xe2\x80\x94 commands still arrive, acknowledgements are \
             lost, and stale placements are fenced after the heal (repeatable)")
  in
  let rogue =
    Arg.(
      value & opt_all string []
      & info [ "rogue" ] ~docv:"HOST"
          ~doc:"Run a tampered agent on $(docv) (repeatable): TLS still \
                succeeds, attestation never does, and the audit asserts the \
                host receives zero placements")
  in
  let trace_capacity =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-capacity" ] ~docv:"N"
          ~doc:"Bound the span ring buffer (oldest spans evicted first)")
  in
  let replay =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"REPRO-FILE"
          ~doc:"Replay a minimized fleet reproducer (see test/corpus) instead \
                of the command-line plan; the file fixes hosts, requests, \
                seed, rogue set and schedule")
  in
  Cmd.v
    (Cmd.info "fleet" ~exits:std_exits
       ~doc:
         "Run the built-in three-cluster app across N simulated machines \
          joined only by attested channels, killing hosts and cutting the \
          network at seeded instants. Audits that failover stays within the \
          static blast radius and that no component is ever placed on a host \
          failing attestation. Exits 0 when contained, 1 on a violation, 2 on \
          a bad plan")
    Term.(
      const cmd_fleet $ hosts $ requests $ seed $ trace_arg $ format
      $ kill_hosts $ partitions $ rogue $ trace_capacity $ replay)

let hunt_cmd =
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S"
          ~doc:"Seed for every engine's generation stream; equal seeds give \
                byte-identical hunt reports")
  in
  let budget =
    Arg.(
      value & opt int 25
      & info [ "budget" ] ~docv:"N" ~doc:"Generated cases per engine")
  in
  let engine =
    Arg.(
      value
      & opt (some string) None
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Run one engine only: $(b,manifest), $(b,substrate), $(b,storage) \
             or $(b,analysis)")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", Run_text); ("json", Run_json) ]) Run_text
      & info [ "format" ] ~docv:"FORMAT" ~doc:"Report format: $(b,text) or $(b,json)")
  in
  let replays =
    Arg.(
      value & opt_all file []
      & info [ "replay" ] ~docv:"REPRO-FILE"
          ~doc:"Replay a corpus reproducer instead of generating (repeatable); \
                every reproducer must pass")
  in
  Cmd.v
    (Cmd.info "hunt" ~exits:std_exits

       ~doc:
         "Differential fuzzing: manifest-toolchain totality, cross-substrate \
          agreement against a reference model, and storage crash/corruption \
          robustness. Failures are shrunk to minimal reproducers. Exits 0 \
          when clean, 1 on failures, 2 on usage errors")
    Term.(const cmd_hunt $ seed $ budget $ engine $ format $ replays)

let analyze_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"MANIFEST-FILE")
  in
  let exploit =
    Arg.(
      value
      & opt (some string) None
      & info [ "exploit" ] ~docv:"COMPONENT" ~doc:"Show the blast radius of one exploit")
  in
  let path =
    Arg.(
      value
      & opt (some string) None
      & info [ "path" ] ~docv:"SRC:DST" ~doc:"Enumerate authority paths")
  in
  Cmd.v
    (Cmd.info "analyze" ~exits:std_exits

       ~doc:"Analyse a component architecture described in a manifest file")
    Term.(const cmd_analyze $ file $ exploit $ path)

let lint_cmd =
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"MANIFEST-FILE")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", Lint_text); ("json", Lint_json) ]) Lint_text
      & info [ "format" ] ~docv:"FORMAT" ~doc:"Output format: $(b,text) or $(b,json)")
  in
  let show_rules =
    Arg.(value & flag & info [ "rules" ] ~doc:"Print the rule catalogue and exit")
  in
  Cmd.v
    (Cmd.info "lint" ~exits:std_exits

       ~doc:
         "Statically check manifest files for trust hazards; exits 1 if any \
          error-severity diagnostic fires (CI gate), 2 on parse failure")
    Term.(const cmd_lint $ files $ format $ show_rules)

let flow_cmd =
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"MANIFEST-FILE")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", Lint_text); ("json", Lint_json) ]) Lint_text
      & info [ "format" ] ~docv:"FORMAT" ~doc:"Output format: $(b,text) or $(b,json)")
  in
  let dot =
    Arg.(
      value & flag
      & info [ "dot" ] ~doc:"Emit the labelled channel graph in Graphviz DOT")
  in
  let conform =
    Arg.(
      value & flag
      & info [ "conform" ]
          ~doc:
            "Provision the manifests onto a simulated microkernel and check \
             the de-facto capability state against the declared graph")
  in
  Cmd.v
    (Cmd.info "flow" ~exits:std_exits

       ~doc:
         "Lattice-based information-flow analysis over manifest files; exits 1 \
          on a leak or conformance over-privilege (CI gate), 2 on parse failure")
    Term.(const cmd_flow $ files $ format $ dot $ conform)

let check_cmd =
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"MANIFEST-FILE")
  in
  let deltas =
    Arg.(
      value
      & opt (some file) None
      & info [ "deltas" ] ~docv:"SCRIPT"
          ~doc:
            "Delta script to replay against the fleet (see \
             $(b,docs/INCREMENTAL.md) for the format); without it only the \
             baseline fleet is checked")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", Lint_text); ("json", Lint_json) ]) Lint_text
      & info [ "format" ] ~docv:"FORMAT" ~doc:"Output format: $(b,text) or $(b,json)")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "After every step, re-run the from-scratch batch analysis and \
             exit 2 on any divergence from the incremental state")
  in
  Cmd.v
    (Cmd.info "check" ~exits:std_exits

       ~doc:
         "Incrementally re-analyse a manifest fleet under a script of \
          control-plane deltas; prints one verdict line per step, exits 1 if \
          any step has an error-severity finding, 2 on parse failure or \
          incremental/batch divergence")
    Term.(const cmd_check $ files $ deltas $ format $ verify)

let contain_cmd =
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"MANIFEST-FILE")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", Lint_text); ("json", Lint_json) ]) Lint_text
      & info [ "format" ] ~docv:"FORMAT" ~doc:"Output format: $(b,text) or $(b,json)")
  in
  let dot =
    Arg.(
      value & flag
      & info [ "dot" ]
          ~doc:
            "Emit the fault-propagation graph in Graphviz DOT (nodes coloured \
             by crash impact, escape roots double-bordered)")
  in
  let witness =
    Arg.(
      value
      & opt (some string) None
      & info [ "witness" ] ~docv:"COMPONENT"
          ~doc:
            "Print only the named component's escape witness: the propagation \
             path by which its crash damages another protection domain")
  in
  Cmd.v
    (Cmd.info "contain" ~exits:std_exits
       ~doc:
         "Static blast-radius analysis over manifest files: per component, \
          the worst-case set of components its crash fails, restarts or \
          degrades, as a fixpoint over propagation edges (channels, shared \
          domains, supervision, state). The chaos harness's observed radii \
          are property-checked to stay inside these predictions. Exits 1 on \
          error-severity containment findings (L020-L023), 2 on parse failure")
    Term.(const cmd_contain $ files $ format $ dot $ witness)

let snap_cmd =
  let scenario =
    let scenario_conv =
      Arg.enum
        (List.map
           (fun s -> (Lt_load.Load.scenario_name s, s))
           Lt_load.Load.all_scenarios)
    in
    Arg.(
      value
      & pos 0 (some scenario_conv) None
      & info [] ~docv:"SCENARIO"
          ~doc:"Scenario world to digest (default: all three)")
  in
  let layers =
    Arg.(value & flag & info [ "layers" ] ~doc:"Print every layer's digest")
  in
  let seed =
    Arg.(
      value & opt int 0x5eed
      & info [ "seed" ] ~docv:"S" ~doc:"Deployment seed; equal seeds boot \
                                        digest-identical worlds")
  in
  Cmd.v
    (Cmd.info "snap" ~exits:std_exits
       ~doc:"Digest the scenario worlds and prove their snapshot round-trips")
    Term.(const cmd_snap $ scenario $ layers $ seed)

(* --- scale: sharded multi-tenant scale-out ------------------------------------- *)

let cmd_scale scenario tenants shards requests batch seed admit_rate admit_burst
    kill_shards kill_after format verdicts =
  let module Sc = Lt_scale.Scale in
  let cfg =
    { Sc.sc_scenario = scenario;
      sc_tenants = tenants;
      sc_shards = shards;
      sc_requests_per_tenant = requests;
      sc_batch = batch;
      sc_seed = seed;
      sc_admit_rate = admit_rate;
      sc_admit_burst = admit_burst;
      sc_kill_shards = kill_shards;
      sc_kill_after = kill_after }
  in
  if verdicts then begin
    match Sc.fleet_manifests cfg with
    | Error e ->
      Printf.eprintf "scale: %s\n" e;
      2
    | Ok ms ->
      let diags = Lateral.Lint.run ms in
      let flow = Lateral.Flow.analyze ms in
      let cont = Lateral.Contain.analyze ms in
      print_string (Lateral.Lint.render_domain_verdicts ms diags);
      print_string (Lateral.Flow.render_domain_verdicts ms flow);
      print_string (Lateral.Contain.render_domain_verdicts ms cont);
      if
        Lateral.Flow.cross_tenant_leaks ms flow = []
        && Lateral.Contain.cross_tenant_radius ms cont = []
      then 0
      else 1
  end
  else begin
    match Sc.run cfg with
    | Error e ->
      Printf.eprintf "scale: %s\n" e;
      2
    | Ok report ->
      (match format with
       | Run_text -> print_string (Sc.render_report_text report)
       | Run_json -> print_string (Sc.render_report_json report));
      if Sc.contained report then 0 else 1
  end

let scale_cmd =
  let scenario =
    let scenario_conv =
      Arg.enum
        (List.map
           (fun s -> (Lt_load.Load.scenario_name s, s))
           Lt_load.Load.all_scenarios)
    in
    Arg.(
      value
      & pos 0 scenario_conv Lt_load.Load.Mail
      & info [] ~docv:"SCENARIO"
          ~doc:"Scenario each tenant instance runs: $(b,mail), $(b,meter) or \
                $(b,cloud) (default mail)")
  in
  let tenants =
    Arg.(
      value & opt int 100
      & info [ "tenants" ] ~docv:"N"
          ~doc:"Tenant instances, each a copy-on-write fork of its shard's \
                template world, in trust domain $(b,shard-k/tenant-i)")
  in
  let shards =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"N"
          ~doc:"Template deployments; tenants are sharded round-robin")
  in
  let requests =
    Arg.(
      value & opt int 8
      & info [ "requests"; "n" ] ~docv:"N"
          ~doc:"Requests per tenant (total load = tenants \xc3\x97 N)")
  in
  let batch =
    Arg.(
      value & opt int 4
      & info [ "batch" ] ~docv:"N"
          ~doc:"Requests issued per tenant visit before the router forks the \
                tenant's world and moves on")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S"
          ~doc:"Seed for deployment and per-tenant mixes; equal seeds give \
                byte-identical scale reports, and tenant $(b,i)'s traffic \
                digest is independent of the tenant count")
  in
  let admit_rate =
    Arg.(
      value & opt float 1.0
      & info [ "admit-rate" ] ~docv:"R"
          ~doc:"Gateway token-bucket refill per admission tick, per shard")
  in
  let admit_burst =
    Arg.(
      value & opt float 32.0
      & info [ "admit-burst" ] ~docv:"B" ~doc:"Gateway token-bucket burst")
  in
  let kill_shards =
    Arg.(
      value & opt_all int []
      & info [ "kill-shard" ] ~docv:"K"
          ~doc:"Kill shard $(docv) (repeatable): every tenant in its domain \
                set is refused from then on, and the audit asserts no other \
                domain observes a failure")
  in
  let kill_after =
    Arg.(
      value & opt int 0
      & info [ "kill-after" ] ~docv:"ROUND"
          ~doc:"Round at whose start the kills fire (0: never)")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", Run_text); ("json", Run_json) ]) Run_text
      & info [ "format" ] ~docv:"FORMAT" ~doc:"Report format: $(b,text) or $(b,json)")
  in
  let verdicts =
    Arg.(
      value & flag
      & info [ "verdicts" ]
          ~doc:"Instead of running load, materialise the fleet's static \
                manifests and print per-trust-domain lint/flow/contain \
                verdicts; exits 1 on any cross-tenant witness")
  in
  Cmd.v
    (Cmd.info "scale" ~exits:std_exits
       ~doc:
         "Multiplex N tenant instances — world forks of per-shard template \
          deployments — behind gateway admission, in nested trust domains. \
          Exits 0 when the observed blast radius stays inside the killed \
          shards' domain set, 1 on a cross-domain failure, 2 on usage errors")
    Term.(
      const cmd_scale $ scenario $ tenants $ shards $ requests $ batch $ seed
      $ admit_rate $ admit_burst $ kill_shards $ kill_after $ format
      $ verdicts)

let () =
  let info =
    Cmd.info "lateral" ~version:"1.0.0"
      ~doc:"Trusted component ecosystem: unified isolation interface and analyses"
  in
  (* bare `lateral` prints the full subcommand listing; usage errors
     (unknown subcommand, missing/malformed argument) exit 2 so scripts
     can tell "you called me wrong" from "the check failed" (exit 1) *)
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let group =
    Cmd.group ~default info
      [ substrates_cmd; mail_cmd; meter_cmd; gateway_cmd; run_cmd; chaos_cmd;
        fleet_cmd; hunt_cmd; analyze_cmd; lint_cmd; flow_cmd; check_cmd;
        contain_cmd; snap_cmd; scale_cmd ]
  in
  exit
    (match Cmd.eval_value group with
     | Ok (`Ok code) -> code
     | Ok (`Help | `Version) -> 0
     | Error (`Parse | `Term) -> 2
     | Error `Exn -> 125)
