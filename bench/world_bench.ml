(* Self-timed micro-benchmark of the lt_world snapshot machinery and
   the deploy fast path. Three numbers, two of them gated:

   - fork: World.fork on the booted mail world (the biggest one: seven
     component slots over four substrates plus the storage harness).
     Budget <= 100us median — forking must stay ~3 orders of magnitude
     cheaper than the boot it replaces, or fork-per-case fuzzing loses
     its point.
   - restore: rewinding that world to its pristine fork after one
     request of damage (the steady-state per-case cost of a fuzz or
     chaos schedule). Reported, not gated: it is O(dirty) and the mix
     decides dirtiness.
   - call: an untraced Deploy.call_fast through a warm route to a leaf
     behaviour. Budget < 1us median — this is the zero-allocation path
     and anything near the slow pipeline means the guard regressed.

   Self-gating: exits 1 when a budget is blown. Not attached to
   @runtest; run with `dune exec bench/world_bench.exe`, record in
   BENCH_snap.json. The clock is CPU time, so machine noise only ever
   adds time — a pass under load is a pass. *)

module Drbg = Lt_crypto.Drbg
module World = Lt_world.World
module Load = Lt_load.Load
open Lateral

let time f =
  let t0 = Sys.time () in
  f ();
  Sys.time () -. t0

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let boot_mail () =
  match Load.deploy_scenario (Drbg.create 0x5eedL) Load.Mail with
  | Ok d -> d
  | Error e ->
    prerr_endline ("world_bench: mail failed to boot: " ^ e);
    exit 2

(* -- fork / restore ---------------------------------------------------- *)

let forks_per_run = 200
let runs = 9

let bench_fork w =
  let samples = ref [] in
  for _ = 1 to runs do
    let t =
      time (fun () ->
          for _ = 1 to forks_per_run do
            ignore (Sys.opaque_identity (World.fork w))
          done)
    in
    samples := (t *. 1e6 /. float_of_int forks_per_run) :: !samples
  done;
  median !samples

let restores_per_run = 50

let bench_restore (d : Load.deployed) =
  let w = d.Load.d_world in
  let pristine = World.fork w in
  let rng = Drbg.create 0xfeedL in
  let one_request i =
    let target, service, payload = d.Load.d_mix rng i in
    ignore (Deploy.call d.Load.d_deploy ~caller:None ~target ~service payload)
  in
  (* (request + restore) minus (request alone): the request dominates
     both loops, the difference is the rewind *)
  let samples = ref [] in
  for _ = 1 to runs do
    let t_mr =
      time (fun () ->
          for i = 1 to restores_per_run do
            one_request i;
            World.restore w pristine
          done)
    in
    let t_m =
      time (fun () ->
          for i = 1 to restores_per_run do
            one_request i
          done)
    in
    World.restore w pristine;
    samples :=
      Float.max 0.0 ((t_mr -. t_m) *. 1e6 /. float_of_int restores_per_run)
      :: !samples
  done;
  median !samples

(* -- untraced fast call ------------------------------------------------- *)

let calls_per_run = 200_000

let bench_call () =
  let m = Lt_hw.Machine.create ~dram_pages:256 () in
  let mk, _ =
    Substrate_kernel.make m (Lt_kernel.Sched.Round_robin { quantum = 500 }) ()
  in
  let t =
    match
      Deploy.deploy
        ~substrates:[ ("microkernel", mk) ]
        [ ( Manifest.v ~name:"echo" ~provides:[ "ping" ] ~network_facing:true
              ~substrate:"microkernel" (),
            fun _ ~service:_ _ -> "pong" ) ]
    with
    | Ok t -> t
    | Error e ->
      prerr_endline ("world_bench: echo deploy failed: " ^ e);
      exit 2
  in
  let route =
    match Deploy.resolve t ~caller:None ~target:"echo" ~service:"ping" with
    | Some r -> r
    | None ->
      prerr_endline "world_bench: no route";
      exit 2
  in
  ignore (Deploy.call_fast t route "x");
  ignore (Deploy.call_fast t route "x");
  let samples = ref [] in
  for _ = 1 to runs do
    let t_run =
      time (fun () ->
          for _ = 1 to calls_per_run do
            ignore (Sys.opaque_identity (Deploy.call_fast t route "x"))
          done)
    in
    samples := (t_run *. 1e9 /. float_of_int calls_per_run) :: !samples
  done;
  median !samples

let () =
  let d = ref None in
  let boot_ms = time (fun () -> d := Some (boot_mail ())) *. 1e3 in
  let d = Option.get !d in
  let fork_us = bench_fork d.Load.d_world in
  let restore_us = bench_restore d in
  let call_ns = bench_call () in
  let fork_budget_us = 100.0 and call_budget_ns = 1000.0 in
  Printf.printf
    "{\"benchmark\":\"world-snapshots\",\"workload\":\"mail world fork/restore \
     + untraced echo call_fast\",\"boot_ms\":%.1f,\"fork_median_us\":%.2f,\"fork_budget_us\":%.0f,\"restore_median_us\":%.2f,\"fast_call_median_ns\":%.1f,\"fast_call_budget_ns\":%.0f,\"forks_per_boot\":%.0f}\n"
    boot_ms fork_us fork_budget_us restore_us call_ns call_budget_ns
    (boot_ms *. 1e3 /. Float.max fork_us 0.01);
  if fork_us > fork_budget_us then begin
    Printf.eprintf "world_bench: fork %.2fus blew the %.0fus budget\n" fork_us
      fork_budget_us;
    exit 1
  end;
  if call_ns > call_budget_ns then begin
    Printf.eprintf "world_bench: fast call %.1fns blew the %.0fns budget\n"
      call_ns call_budget_ns;
    exit 1
  end
