(* Self-timed micro-benchmark of the fleet layer: the cost of going
   multi-machine. A Fleet.call routes one request over the owning
   host's attested channel — two AEAD records, the mailbox hop, the
   agent dispatch and the local Deploy.call on the far side — and is
   timed against the same four-component app deployed on a single
   machine and called directly. The committed record lives in
   BENCH_fleet.json at the repo root (refresh with
   `dune exec bench/fleet_bench.exe`); the median fleet-call overhead
   must stay below 20x the local baseline.

   The same run also gates the recovery-time distribution the chaos
   harness reports: two seeded machine-kill + asymmetric-partition
   runs, pooling every completed failover's tick count (re-attested
   handshake + re-placement + backoff). Ticks are logical, so this
   gate is deterministic across machines. *)

open Lt_crypto
open Lateral
open Lt_fleet

let rng = Drbg.create 0xf1ee7L

let ca = Rsa.generate ~bits:512 rng

let all_substrates = [ "microkernel"; "sgx"; "sep" ]

let build_fleet () =
  let hosts =
    List.map
      (fun n -> Fleet.host_spec ~name:n ~substrates:all_substrates ())
      [ "host-1"; "host-2"; "host-3" ]
  in
  match
    Fleet.create ~seed:7L ~hosts
      ~components:(Fleet_chaos.scenario_components ()) ()
  with
  | Ok f ->
    (match Fleet.place_all f with
     | Ok () -> f
     | Error e -> failwith e)
  | Error e -> failwith e

(* the same app, single-machine: one deployment over the three
   substrate classes a fleet host offers *)
let build_local () =
  let machine = Lt_hw.Machine.create ~dram_pages:512 () in
  let mk, _ =
    Substrate_kernel.make machine (Lt_kernel.Sched.Round_robin { quantum = 500 })
      ()
  in
  let m2 = Lt_hw.Machine.create ~dram_pages:128 () in
  let sgx, _ = Substrate_sgx.make m2 rng ~ca_name:"fleet-ra" ~ca_key:ca () in
  let m3 = Lt_hw.Machine.create ~dram_pages:64 () in
  let sep, _, _ = Substrate_sep.make m3 rng ~device_id:"bench-sep" ~private_pages:16 in
  let substrates = [ ("microkernel", mk); ("sgx", sgx); ("sep", sep) ] in
  match Deploy.deploy ~substrates (Fleet_chaos.scenario_components ()) with
  | Ok d -> d
  | Error e -> failwith e

let calls_per_run = 200
let runs = 15
let repeats = 3 (* per-configuration repeats inside a pair; fastest wins *)
let ring_capacity = 4096
let warm_calls = 20

let issue_local dep i =
  match
    Deploy.call dep ~caller:None ~target:"gate" ~service:"ingress"
      (Printf.sprintf "req-%d" i)
  with
  | Ok _ -> ()
  | Error e -> failwith e

let issue_fleet f i =
  match
    Fleet.call f ~target:"gate" ~service:"ingress" (Printf.sprintf "req-%d" i)
  with
  | Ok _ -> ()
  | Error e -> failwith e

let time_run issue =
  for i = 1 to warm_calls do
    issue (-i)
  done;
  Gc.full_major ();
  let t0 = Sys.time () in
  for i = 1 to calls_per_run do
    issue i
  done;
  Sys.time () -. t0

(* both configurations run fully traced, as the fleet always is *)
let traced f =
  let tracer = Lt_obs.Trace.create ~capacity:ring_capacity () in
  let metrics = Lt_obs.Metrics.create () in
  Lt_obs.Trace.with_tracer tracer (fun () ->
      Lt_obs.Metrics.with_metrics metrics f)

let local_run () = traced (fun () -> time_run (issue_local (build_local ())))

let fleet_run () =
  traced (fun () ->
      let f = build_fleet () in
      time_run (issue_fleet f))

let median xs =
  let sorted = List.sort compare xs in
  List.nth sorted (List.length xs / 2)

(* pooled recovery ticks over two seeded kill + asym-partition runs;
   logical ticks, so byte-stable across machines *)
let measure_recovery () =
  let one seed =
    let plan =
      { Fleet_chaos.kill_hosts = [ "host-2" ];
        partitions =
          [ { Fleet_chaos.pt_host = "host-1"; pt_from = 10; pt_heal = 25;
              pt_asym = true } ] }
    in
    match Fleet_chaos.run ~plan ~hosts:3 ~requests:40 ~seed () with
    | Ok (r, _) -> r.Fleet_chaos.fc_recovery_ticks
    | Error e -> failwith e
  in
  let ticks = one 5 @ one 13 in
  if ticks = [] then failwith "no failovers completed";
  (List.length ticks, median ticks)

let () =
  ignore (local_run ());
  ignore (fleet_run ());
  let local = ref [] and fleet = ref [] and ratios = ref [] in
  for i = 1 to runs do
    let l = ref infinity and f = ref infinity in
    for j = 1 to repeats do
      if (i + j) mod 2 = 0 then begin
        l := min !l (local_run ());
        f := min !f (fleet_run ())
      end
      else begin
        f := min !f (fleet_run ());
        l := min !l (local_run ())
      end
    done;
    local := !l :: !local;
    fleet := !f :: !fleet;
    ratios := (!f /. !l) :: !ratios
  done;
  let ml = median !local and mf = median !fleet in
  let us_per_call t = t *. 1e6 /. float_of_int calls_per_run in
  let overhead = median !ratios in
  let overhead_budget = 20.0 in
  let failovers, recovery_ticks = measure_recovery () in
  let recovery_budget = 100 in
  Printf.printf
    "{\"benchmark\":\"fleet-overhead\",\"workload\":\"gate.ingress via attested \
     channel vs local Deploy.call, traced\",\"calls_per_run\":%d,\"runs\":%d,\"repeats\":%d,\"local_median_us_per_call\":%.3f,\"fleet_median_us_per_call\":%.3f,\"median_overhead_x\":%.2f,\"overhead_budget_x\":%.1f,\"failovers\":%d,\"median_recovery_ticks\":%d,\"recovery_budget_ticks\":%d}\n"
    calls_per_run runs repeats (us_per_call ml) (us_per_call mf) overhead
    overhead_budget failovers recovery_ticks recovery_budget;
  if overhead > overhead_budget then begin
    Printf.eprintf "fleet_bench: %.2fx call overhead blew the %.1fx budget\n"
      overhead overhead_budget;
    exit 1
  end;
  if recovery_ticks > recovery_budget then begin
    Printf.eprintf
      "fleet_bench: median recovery %d ticks blew the %d-tick budget\n"
      recovery_ticks recovery_budget;
    exit 1
  end
