(* Self-timed micro-benchmark of the resilience layer's fast path: the
   same traced Deploy.call workload as trace_bench (cloud host ->
   enclave, a routed call crossing a microkernel IPC and an SGX ecall),
   timed bare and wrapped in Supervisor.call with every component
   healthy — so the wrapper pays only its route lookup, closed-breaker
   check and deadline bookkeeping, never a retry or a restart. The
   committed record lives in BENCH_resil.json at the repo root (refresh
   with `dune exec bench/resil_bench.exe`); the median overhead must
   stay below 5% of the traced baseline. The same run also reports the
   median supervised recovery cost in simulated ticks: crash the
   enclave, issue one hardened call, and count ambient ticks until the
   reply (restart cost + backoff + the retried crossing). *)

open Lt_crypto
open Lateral

let rng = Drbg.create 0xc4a05L

let ca = Rsa.generate ~bits:512 rng

(* a restart budget that never runs out: recovery cycles are the point *)
let lavish =
  { Manifest.r_policy = Manifest.On_failure; r_max = 1_000_000; r_window = 256 }

let build_deployment () =
  let m1 = Lt_hw.Machine.create ~dram_pages:512 () in
  let mk, _ =
    Substrate_kernel.make m1 (Lt_kernel.Sched.Round_robin { quantum = 500 }) ()
  in
  let m2 = Lt_hw.Machine.create ~dram_pages:256 () in
  let sgx, _ = Substrate_sgx.make m2 rng ~ca_name:"intel" ~ca_key:ca () in
  let substrates = [ ("microkernel", mk); ("sgx", sgx) ] in
  let components =
    [ ( Manifest.v ~name:"host" ~provides:[ "submit" ] ~network_facing:true
          ~connects_to:[ Manifest.conn ~vetted:true "enclave" "ecall" ]
          ~substrate:"microkernel" ~restart:lavish (),
        fun ctx ~service:_ job ->
          match ctx.Deploy.call_out ~target:"enclave" ~service:"ecall" job with
          | Ok r -> r
          | Error e -> failwith e );
      ( Manifest.v ~name:"enclave" ~provides:[ "ecall" ] ~substrate:"sgx"
          ~restart:lavish (),
        fun _ctx ~service:_ job ->
          String.sub (Sha256.hex (Hmac.mac ~key:"bench" job)) 0 8 ) ]
  in
  match Deploy.deploy ~substrates components with
  | Ok d -> d
  | Error e -> failwith e

let calls_per_run = 250
let runs = 15
let repeats = 3 (* per-configuration repeats inside a pair; fastest wins *)
let ring_capacity = 4096
let warm_calls = 25

let issue_bare dep i =
  match
    Deploy.call dep ~caller:None ~target:"host" ~service:"submit"
      (Printf.sprintf "job-%d" i)
  with
  | Ok _ -> ()
  | Error e -> failwith e

let issue_supervised sup i =
  match
    Lt_resil.Supervisor.call sup ~caller:None ~target:"host" ~service:"submit"
      (Printf.sprintf "job-%d" i)
  with
  | Ok _ -> ()
  | Error e -> failwith (App.render_call_error e)

let time_run issue =
  for i = 1 to warm_calls do
    issue (-i)
  done;
  Gc.full_major ();
  let t0 = Sys.time () in
  for i = 1 to calls_per_run do
    issue i
  done;
  Sys.time () -. t0

(* both configurations run fully traced: the budget is the cost of the
   supervisor wrapper, not of observability (that is BENCH_trace's) *)
let traced f =
  let tracer = Lt_obs.Trace.create ~capacity:ring_capacity () in
  let metrics = Lt_obs.Metrics.create () in
  Lt_obs.Trace.with_tracer tracer (fun () ->
      Lt_obs.Metrics.with_metrics metrics f)

let baseline_run dep () = traced (fun () -> time_run (issue_bare dep))

let supervised_run dep () =
  let sup = Lt_resil.Supervisor.create ~seed:7L dep in
  traced (fun () -> time_run (issue_supervised sup))

let median xs =
  let sorted = List.sort compare xs in
  List.nth sorted (List.length xs / 2)

let recovery_cycles = 31

(* ambient ticks from killing the enclave to the next served reply:
   heal (restart cost) + backoff + the successful retry's crossing *)
let measure_recovery () =
  let dep = build_deployment () in
  let sup = Lt_resil.Supervisor.create ~seed:11L dep in
  let tracer = Lt_obs.Trace.create ~capacity:ring_capacity () in
  let metrics = Lt_obs.Metrics.create () in
  Lt_obs.Trace.with_tracer tracer (fun () ->
      Lt_obs.Metrics.with_metrics metrics (fun () ->
          let ticks = ref [] in
          for i = 1 to recovery_cycles do
            (match Lt_resil.Supervisor.crash sup "enclave" with
             | Ok () -> ()
             | Error e -> failwith e);
            let t0 = Lt_obs.Trace.ambient_now () in
            issue_supervised sup i;
            ticks := (Lt_obs.Trace.ambient_now () - t0) :: !ticks
          done;
          median !ticks))

let () =
  ignore (baseline_run (build_deployment ()) ());
  ignore (supervised_run (build_deployment ()) ());
  let baseline = ref [] and supervised = ref [] and ratios = ref [] in
  for i = 1 to runs do
    let b = ref infinity and s = ref infinity in
    for j = 1 to repeats do
      let db = build_deployment () and ds = build_deployment () in
      if (i + j) mod 2 = 0 then begin
        b := min !b (baseline_run db ());
        s := min !s (supervised_run ds ())
      end
      else begin
        s := min !s (supervised_run ds ());
        b := min !b (baseline_run db ())
      end
    done;
    baseline := !b :: !baseline;
    supervised := !s :: !supervised;
    ratios := (!s /. !b) :: !ratios
  done;
  let mb = median !baseline and ms = median !supervised in
  let us_per_call t = t *. 1e6 /. float_of_int calls_per_run in
  let overhead_pct = 100.0 *. (median !ratios -. 1.0) in
  let recovery_ticks = measure_recovery () in
  Printf.printf
    "{\"benchmark\":\"resil-overhead\",\"workload\":\"cloud host->enclave \
     Deploy.call, traced\",\"calls_per_run\":%d,\"runs\":%d,\"repeats\":%d,\"baseline_median_us_per_call\":%.3f,\"supervised_median_us_per_call\":%.3f,\"median_overhead_pct\":%.2f,\"budget_pct\":5.0,\"recovery_cycles\":%d,\"median_recovery_ticks\":%d}\n"
    calls_per_run runs repeats (us_per_call mb) (us_per_call ms) overhead_pct
    recovery_cycles recovery_ticks
