(* The experiment harness: one section per table/figure/claim in the
   paper, as indexed in DESIGN.md. Each experiment prints its table and
   a SHAPE line asserting the qualitative claim it reproduces. *)

open Lt_crypto
open Lateral
module Net = Lt_net.Net
module Gateway = Lt_net.Gateway
module Block = Lt_storage.Block
module Fs = Lt_storage.Legacy_fs
module Vpfs = Lt_storage.Vpfs
module Sgx = Lt_sgx.Sgx
open Lt_kernel

let header id title =
  Printf.printf "\n## %s — %s\n" id title

(* scenarios stage onto simulated substrates and may refuse to; a refusal
   here is an experiment-harness bug, so surface it and stop *)
let scenario_ok = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("experiment staging failed: " ^ e);
    exit 1

let shape ok fmt =
  Printf.ksprintf
    (fun s ->
      Printf.printf "SHAPE %s: %s\n" (if ok then "PASS" else "FAIL") s;
      ok)
    fmt

(* ------------------------------------------------------------------ *)
(* fig1-containment: vertical vs horizontal blast radius (Figure 1)   *)
(* ------------------------------------------------------------------ *)

let fig1_containment () =
  header "fig1-containment" "attack containment, vertical vs horizontal (Figure 1)";
  let table = scenario_ok (Scenario_mail.containment_table ()) in
  Printf.printf "%-12s %-18s %-18s\n" "exploited" "vertical-owned" "horizontal-owned";
  List.iter
    (fun (name, v, h) ->
      Printf.printf "%-12s %-18.2f %-18.2f\n" name v h)
    table;
  let vertical_total = List.for_all (fun (_, v, _) -> v >= 0.999) table in
  let horizontal_max =
    List.fold_left (fun acc (_, _, h) -> Float.max acc h) 0.0 table
  in
  (* cross-check the static prediction against the live runtime: a
     compromised component sweeping every service must get through on
     exactly its declared channels, nothing else *)
  let runtime_matches_manifests =
    List.for_all
      (fun name ->
        let app = scenario_ok (Scenario_mail.build ~vertical:false) in
        App.compromise app name;
        (* drive the component once through any inbound edge *)
        let man = Option.get (App.manifest app name) in
        (match man.Manifest.provides with
         | svc :: _ ->
           (* find some caller or use the external world if it is exposed *)
           let caller =
             List.find_map
               (fun m ->
                 if
                   List.exists
                     (fun c -> c.Manifest.target = name && c.Manifest.service = svc)
                     m.Manifest.connects_to
                 then Some m.Manifest.name
                 else None)
               (App.manifests app)
           in
           (match (caller, man.Manifest.network_facing) with
            | Some c, _ -> ignore (App.call app ~caller:(Some c) ~target:name ~service:svc "x")
            | None, true -> ignore (App.call app ~caller:None ~target:name ~service:svc "x")
            | None, false -> ())
         | [] -> ());
        let allowed =
          App.exfiltration_attempts app name
          |> List.filter (fun (_, _, ok) -> ok)
          |> List.map (fun (t, s, _) -> (t, s))
          |> List.sort_uniq Stdlib.compare
        in
        let declared =
          List.map (fun c -> (c.Manifest.target, c.Manifest.service)) man.Manifest.connects_to
          |> List.sort_uniq Stdlib.compare
        in
        allowed = declared || allowed = [])
      Scenario_mail.component_names
  in
  Printf.printf
    "runtime sweep: every compromised component reached exactly its declared channels: %b\n"
    runtime_matches_manifests;
  shape
    (vertical_total && horizontal_max < 0.5 && runtime_matches_manifests)
    "every vertical exploit owns 100%%; worst horizontal exploit owns %.0f%%; runtime authority = declared channels"
    (100. *. horizontal_max)

(* ------------------------------------------------------------------ *)
(* fig2-template: one component, five substrates (Figure 2, §II-B)    *)
(* ------------------------------------------------------------------ *)

let echo_services =
  [ ("echo", fun _fac (req : string) -> "echo:" ^ req);
    ("seal", fun fac req -> fac.Substrate.f_seal req) ]

let fig2_template () =
  header "fig2-template" "structural template: one component on every substrate (Figure 2)";
  let rng = Drbg.create 21L in
  let ca = Rsa.generate ~bits:512 rng in
  let build_all () =
    let acc = ref [] in
    let m1 = Lt_hw.Machine.create ~dram_pages:128 () in
    let sgx, _ = Substrate_sgx.make m1 rng ~ca_name:"intel" ~ca_key:ca () in
    acc := (sgx, m1.Lt_hw.Machine.clock) :: !acc;
    let m2 = Lt_hw.Machine.create ~dram_pages:64 () in
    Lt_hw.Fuse.program m2.Lt_hw.Machine.fuses ~name:"devkey"
      ~visibility:Lt_hw.Fuse.Secure_only (Drbg.bytes rng 32);
    (match
       Substrate_trustzone.make m2 ~vendor:ca.Rsa.pub
         ~image:(Lt_tpm.Boot.sign_stage ca ~name:"tz-os" "tz-os-v1")
         ~device_id:"d" ~device_key_name:"devkey" ~secure_pages:4
     with
     | Ok (tz, _) -> acc := (tz, m2.Lt_hw.Machine.clock) :: !acc
     | Error e -> failwith e);
    let m3 = Lt_hw.Machine.create ~dram_pages:64 () in
    let sep, _, _ = Substrate_sep.make m3 rng ~device_id:"d" ~private_pages:4 in
    acc := (sep, m3.Lt_hw.Machine.clock) :: !acc;
    let flicker_clock = Lt_hw.Clock.create () in
    let tpm = Lt_tpm.Tpm.manufacture rng ~ca_name:"tpm-vendor" ~ca_key:ca ~serial:"1" in
    acc := (Substrate_flicker.make tpm ~clock:flicker_clock (), flicker_clock) :: !acc;
    let m4 = Lt_hw.Machine.create ~dram_pages:512 () in
    let mk, _ = Substrate_kernel.make m4 (Sched.Round_robin { quantum = 500 }) () in
    acc := (mk, m4.Lt_hw.Machine.clock) :: !acc;
    (* the two substrates without machine clocks charge no ticks *)
    let cheri_clock = Lt_hw.Clock.create () in
    let cheri, _, _ = Substrate_cheri.make rng ~size:(1 lsl 17) () in
    acc := (cheri, cheri_clock) :: !acc;
    let m3_clock = Lt_hw.Clock.create () in
    let m3, _ = Substrate_m3.make rng ~ca_name:"m3-mfg" ~ca_key:ca ~tiles:8 () in
    acc := (m3, m3_clock) :: !acc;
    List.rev !acc
  in
  let subs = build_all () in
  Printf.printf "%-13s %-9s %-11s %-7s %-9s %-8s %-16s %s\n" "substrate" "conform"
    "concurrent" "mutual" "progress" "tcb-loc" "ticks/invoke" "defends";
  let all_ok = ref true in
  List.iter
    (fun ((s : Substrate.t), clock) ->
      let p = s.Substrate.properties in
      let conform, ticks =
        match s.Substrate.launch ~name:"bench" ~code:"bench-v1" ~services:echo_services with
        | Error _ -> (false, 0.0)
        | Ok c ->
          let ok = s.Substrate.invoke c ~fn:"echo" "x" = Ok "echo:x" in
          let n = 50 in
          let t0 = Lt_hw.Clock.now clock in
          for _ = 1 to n do
            ignore (s.Substrate.invoke c ~fn:"echo" "x")
          done;
          (ok, float_of_int (Lt_hw.Clock.now clock - t0) /. float_of_int n)
      in
      if not conform then all_ok := false;
      Printf.printf "%-13s %-9b %-11b %-7b %-9b %-8d %-16.1f %s\n"
        p.Substrate.substrate_name conform p.Substrate.concurrent_components
        p.Substrate.mutually_isolated p.Substrate.progress_guaranteed
        (List.fold_left (fun a (_, n) -> a + n) 0 p.Substrate.tcb)
        ticks
        (String.concat ","
           (List.map (fun m -> Format.asprintf "%a" Substrate.pp_attacker_model m)
              p.Substrate.defends)))
    subs;
  shape !all_ok "the identical component ran unmodified on all %d substrates"
    (List.length subs)

(* ------------------------------------------------------------------ *)
(* fig3-smartmeter: distributed trust end to end (Figure 3)            *)
(* ------------------------------------------------------------------ *)

let fig3_smartmeter () =
  header "fig3-smartmeter" "smart meter <-> utility server tamper matrix (Figure 3)";
  Printf.printf "%-26s %-11s %-6s %-9s %-5s %-8s\n" "scenario" "anonymizer"
    "sent" "accepted" "rows" "id-leak";
  let outcomes =
    List.map (fun t -> (t, scenario_ok (Scenario_meter.run t))) Scenario_meter.all_tampers
  in
  List.iter
    (fun (t, o) ->
      Printf.printf "%-26s %-11b %-6b %-9b %-5d %-8b\n" (Scenario_meter.tamper_name t)
        o.Scenario_meter.anonymizer_verified o.Scenario_meter.reading_sent
        o.Scenario_meter.reading_accepted o.Scenario_meter.anonymized_rows
        o.Scenario_meter.customer_id_leaked)
    outcomes;
  let get t = List.assoc t outcomes in
  let genuine = get Scenario_meter.Genuine in
  let ok =
    genuine.Scenario_meter.reading_accepted
    && (not genuine.Scenario_meter.customer_id_leaked)
    && List.for_all
         (fun (t, o) ->
           t = Scenario_meter.Genuine || not o.Scenario_meter.reading_accepted)
         outcomes
    && not
         (get Scenario_meter.Manipulated_anonymizer).Scenario_meter.reading_sent
  in
  shape ok "only the genuine configuration bills; every attack is rejected"

(* ------------------------------------------------------------------ *)
(* tcb-size: per-component trusted computing base (§I, §III-B)        *)
(* ------------------------------------------------------------------ *)

let tcb_size () =
  header "tcb-size" "per-component TCB, monolithic vs decomposed";
  let rows = scenario_ok (Scenario_mail.tcb_comparison ()) in
  Printf.printf "%-12s %-12s %-12s %-8s\n" "component" "monolithic" "decomposed" "factor";
  List.iter
    (fun (name, mono, dec) ->
      Printf.printf "%-12s %-12d %-12d %-8.1f\n" name mono dec
        (float_of_int mono /. float_of_int (max dec 1)))
    rows;
  let _, mono_k, dec_k = List.find (fun (n, _, _) -> n = "keystore") rows in
  let all_smaller = List.for_all (fun (_, m, d) -> d < m) rows in
  shape
    (all_smaller && dec_k * 9 < mono_k)
    "decomposition shrinks every TCB; keystore by %.0fx (order of magnitude)"
    (float_of_int mono_k /. float_of_int dec_k)

(* ------------------------------------------------------------------ *)
(* confused-deputy: ambient authority vs badged capabilities (§III-D) *)
(* ------------------------------------------------------------------ *)

let confused_deputy () =
  header "confused-deputy" "confused deputy: ambient authority vs badges (§III-D)";
  let trials = 100 in
  let run_variant ~badged =
    (* a storage deputy serves two clients; mallory asks for alice's data *)
    let successes = ref 0 in
    for trial = 1 to trials do
      let mach = Lt_hw.Machine.create ~dram_pages:64 () in
      let k = Kernel.create mach (Sched.Round_robin { quantum = 200 }) in
      let deputy_task = Kernel.create_task k ~name:"deputy" ~partition:"d" in
      let alice_task = Kernel.create_task k ~name:"alice" ~partition:"a" in
      let mallory_task = Kernel.create_task k ~name:"mallory" ~partition:"m" in
      let ep = Kernel.create_endpoint k ~name:"store" in
      let d_cap = Kernel.grant k deputy_task ep ~rights:{ send = false; recv = true } ~badge:0 in
      let a_cap = Kernel.grant k alice_task ep ~rights:{ send = true; recv = false } ~badge:1 in
      let m_cap = Kernel.grant k mallory_task ep ~rights:{ send = true; recv = false } ~badge:2 in
      let secret = Printf.sprintf "alice-secret-%d" trial in
      let store : (string, string) Hashtbl.t = Hashtbl.create 4 in
      let _ =
        Kernel.create_thread k deputy_task ~name:"deputy" ~prio:1 (fun () ->
            for _ = 1 to 2 do
              let badge, m, reply = User.recv ~cap:d_cap in
              (* request: "<claimed-client>|put|data" or "<claimed-client>|get" *)
              let parts = String.split_on_char '|' m.Sys.payload in
              let client_id =
                if badged then string_of_int badge
                else match parts with c :: _ -> c | [] -> "?"
              in
              let response =
                match parts with
                | [ _; "put"; data ] ->
                  Hashtbl.replace store client_id data;
                  "stored"
                | [ _; "get" ] ->
                  Option.value ~default:"(nothing)" (Hashtbl.find_opt store client_id)
                | _ -> "bad request"
              in
              match reply with
              | Some h -> User.reply h (Sys.msg response)
              | None -> ()
            done)
      in
      let stolen = ref "" in
      let _ =
        Kernel.create_thread k alice_task ~name:"alice" ~prio:1 (fun () ->
            ignore (User.call ~cap:a_cap (Sys.msg (Printf.sprintf "1|put|%s" secret))))
      in
      let _ =
        Kernel.create_thread k mallory_task ~name:"mallory" ~prio:2 (fun () ->
            (* mallory claims to be client 1 (alice) *)
            User.sleep 50;
            let r = User.call ~cap:m_cap (Sys.msg "1|get") in
            stolen := r.Sys.payload)
      in
      ignore (Kernel.run k);
      if !stolen = secret then incr successes
    done;
    !successes
  in
  let ambient = run_variant ~badged:false in
  let badged = run_variant ~badged:true in
  Printf.printf "%-32s %d/%d attacks succeeded\n" "ambient authority (name in msg):" ambient trials;
  Printf.printf "%-32s %d/%d attacks succeeded\n" "badged capabilities:" badged trials;
  shape
    (ambient = trials && badged = 0)
    "claimed identities are forged every time; kernel badges cannot be"

(* ------------------------------------------------------------------ *)
(* vpfs: trusted wrapper over an untrusted FS (§III-D)                 *)
(* ------------------------------------------------------------------ *)

let vpfs_experiment () =
  header "vpfs" "VPFS trusted wrapper: attacks and overhead (§III-D)";
  (* attack matrix *)
  let fresh () =
    let dev = Block.create ~blocks:2048 in
    let fs = Fs.format dev in
    (dev, fs, Vpfs.create ~master_key:"bench-master-key" fs)
  in
  let detected name f =
    let result = f () in
    Printf.printf "%-28s %s\n" name (if result then "DETECTED" else "MISSED");
    result
  in
  let contents = String.init 3000 (fun i -> Char.chr (i mod 251)) in
  let r1 =
    detected "corrupt chunk on read" (fun () ->
        let _, fs, v = fresh () in
        (match Vpfs.write v "/f" contents with Ok () -> () | Error _ -> ());
        Fs.set_evil fs (Fs.Corrupt_reads (Drbg.create 3L));
        match Vpfs.read v "/f" with Error (Vpfs.Integrity _) -> true | _ -> false)
  in
  let r2 =
    detected "serve stale version" (fun () ->
        let _, fs, v = fresh () in
        ignore (Vpfs.write v "/f" "v1");
        ignore (Vpfs.write v "/f" "v2");
        Fs.set_evil fs Fs.Serve_stale;
        match Vpfs.read v "/f" with Error (Vpfs.Integrity _) -> true | _ -> false)
  in
  let r3 =
    detected "cross-file splice" (fun () ->
        let _, fs, v = fresh () in
        ignore (Vpfs.write v "/a" "contents-a");
        ignore (Vpfs.write v "/b" "contents-b");
        (match Fs.read fs "/b" with
         | Ok cipher -> ignore (Fs.write fs "/a" cipher)
         | Error _ -> ());
        match Vpfs.read v "/a" with Error (Vpfs.Integrity _) -> true | _ -> false)
  in
  let r4 =
    detected "whole-fs rollback" (fun () ->
        let dev, fs, v = fresh () in
        ignore (Vpfs.write v "/f" "old");
        Fs.sync fs;
        let snaps = List.init (Block.blocks dev) (Block.snapshot dev) in
        ignore (Vpfs.write v "/f" "new");
        let root = Vpfs.root v in
        List.iteri (fun i s -> Block.rollback dev i s) snaps;
        match Fs.mount dev with
        | Error _ -> true
        | Ok fs2 ->
          (match Vpfs.open_ ~master_key:"bench-master-key" ~expected_root:root fs2 with
           | Error (Vpfs.Integrity _) -> true
           | _ -> false))
  in
  let r5 =
    detected "plaintext exposure" (fun () ->
        let _, fs, v = fresh () in
        ignore (Vpfs.write v "/f" "THE-PLAINTEXT-SECRET");
        not (Fs.observed_contains fs ~needle:"THE-PLAINTEXT-SECRET"))
  in
  (* overhead: block IO amplification *)
  let file = String.make 4096 'd' in
  let io_cost use_vpfs =
    let dev = Block.create ~blocks:4096 in
    let fs = Fs.format dev in
    let v = if use_vpfs then Some (Vpfs.create ~master_key:"k" fs) else None in
    let r0 = Block.reads dev and w0 = Block.writes dev in
    for i = 1 to 20 do
      let path = Printf.sprintf "/f%d" i in
      (match v with
       | Some v -> ignore (Vpfs.write v path file)
       | None -> ignore (Fs.write fs path file));
      match v with
      | Some v -> ignore (Vpfs.read v path)
      | None -> ignore (Fs.read fs path)
    done;
    (Block.reads dev - r0, Block.writes dev - w0)
  in
  let raw_r, raw_w = io_cost false in
  let vp_r, vp_w = io_cost true in
  Printf.printf "block IO for 20 x 4KiB write+read: raw fs %d reads / %d writes, vpfs %d / %d\n"
    raw_r raw_w vp_r vp_w;
  let amplification =
    float_of_int (vp_r + vp_w) /. float_of_int (max 1 (raw_r + raw_w))
  in
  Printf.printf "IO amplification: %.2fx\n" amplification;
  shape
    (r1 && r2 && r3 && r4 && r5 && amplification < 10.0)
    "all five attacks detected, zero plaintext leaked, overhead %.1fx bounded"
    amplification

(* ------------------------------------------------------------------ *)
(* secure-launch: boot policies under code tampering (§II-D)           *)
(* ------------------------------------------------------------------ *)

let secure_launch () =
  header "secure-launch" "secure vs authenticated boot under tampering (§II-D)";
  let rng = Drbg.create 31L in
  let vendor = Rsa.generate ~bits:512 rng in
  let ca = Rsa.generate ~bits:512 rng in
  let open Lt_tpm in
  let stage_names = [ "bootloader"; "kernel"; "app" ] in
  let chain tampered =
    List.map
      (fun name ->
        if Some name = tampered then Boot.unsigned_stage ~name (name ^ "-evil")
        else Boot.sign_stage vendor ~name (name ^ "-v1"))
      stage_names
  in
  let reference_pcr =
    (* the verifier's known-good PCR value for the genuine chain *)
    Pcr.expected_value (List.map Boot.measure (chain None))
  in
  Printf.printf "%-12s %-28s %-28s %-14s\n" "tampered" "secure-boot" "authenticated-boot"
    "sealed-key";
  let ok = ref true in
  List.iter
    (fun tampered ->
      let stages = chain tampered in
      let sb = Boot.run_chain (Boot.Secure_boot { vendor_pub = vendor.Rsa.pub }) stages in
      let tpm = Tpm.manufacture rng ~ca_name:"v" ~ca_key:ca ~serial:"x" in
      (* seal a key to the genuine state first *)
      ignore (Boot.run_chain (Boot.Authenticated_boot { tpm; pcr = 0 }) (chain None));
      let sealed = Tpm.seal tpm ~selection:[ 0 ] "disk-key" in
      Pcr.power_cycle (Tpm.pcrs tpm);
      let ab = Boot.run_chain (Boot.Authenticated_boot { tpm; pcr = 0 }) stages in
      let measured = Pcr.read (Tpm.pcrs tpm) 0 in
      let detected = measured <> reference_pcr in
      let key_released = Tpm.unseal tpm sealed <> None in
      let sb_desc =
        match sb.Boot.refused with
        | Some (s, _) -> Printf.sprintf "refused at %s" s
        | None -> Printf.sprintf "booted %d stages" (List.length sb.Boot.ran)
      in
      let ab_desc =
        Printf.sprintf "booted %d; log %s" (List.length ab.Boot.ran)
          (if detected then "EXPOSES tamper" else "matches reference")
      in
      Printf.printf "%-12s %-28s %-28s %-14s\n"
        (Option.value tampered ~default:"(none)")
        sb_desc ab_desc
        (if key_released then "released" else "withheld");
      (match tampered with
       | None -> if sb.Boot.refused <> None || detected || not key_released then ok := false
       | Some _ ->
         if sb.Boot.refused = None || not detected || key_released
            || List.length ab.Boot.ran <> 3
         then ok := false))
    [ None; Some "bootloader"; Some "kernel"; Some "app" ];
  shape !ok
    "secure boot refuses tampered stages; authenticated boot runs them but the log exposes them and keys stay sealed"

(* ------------------------------------------------------------------ *)
(* temporal-isolation: scheduler covert channel + SGX starvation       *)
(* ------------------------------------------------------------------ *)

let covert_channel policy =
  let nbits = 128 in
  let rng = Drbg.create 71L in
  let bits = Array.init nbits (fun _ -> Drbg.bool rng) in
  let mach = Lt_hw.Machine.create ~dram_pages:64 () in
  let k = Kernel.create mach policy in
  let sender_task = Kernel.create_task k ~name:"sender" ~partition:"S" in
  let receiver_task = Kernel.create_task k ~name:"receiver" ~partition:"R" in
  let samples = ref [] in
  let _ =
    Kernel.create_thread k sender_task ~name:"sender" ~prio:1 (fun () ->
        (* one dummy bit to align the receiver's first gap *)
        User.consume 60;
        User.yield ();
        Array.iter
          (fun b ->
            if b then User.consume 60;
            User.yield ())
          bits)
  in
  let _ =
    Kernel.create_thread k receiver_task ~name:"receiver" ~prio:1 (fun () ->
        for _ = 0 to nbits do
          samples := User.time () :: !samples;
          User.yield ()
        done)
  in
  ignore (Kernel.run k);
  let samples = Array.of_list (List.rev !samples) in
  let correct = ref 0 in
  let n = min nbits (Array.length samples - 1) in
  for i = 0 to n - 1 do
    let gap = samples.(i + 1) - samples.(i) in
    let decoded = gap > 30 in
    if decoded = bits.(i) then incr correct
  done;
  if n = 0 then 0.0 else float_of_int !correct /. float_of_int n

let temporal_isolation () =
  header "temporal-isolation"
    "scheduler covert channel and SGX starvation (§II-C)";
  let policies =
    [ ("round-robin", Sched.Round_robin { quantum = 100 });
      ("fixed-priority", Sched.Fixed_priority { quantum = 100 });
      ("tdma", Sched.Tdma { slots = [ ("S", 100); ("R", 100) ] }) ]
  in
  Printf.printf "%-16s %-18s\n" "scheduler" "bit accuracy";
  let acc =
    List.map
      (fun (name, p) ->
        let a = covert_channel p in
        Printf.printf "%-16s %-18s\n" name (Printf.sprintf "%.0f%%" (100. *. a));
        (name, a))
      policies
  in
  (* SGX starvation *)
  let rng = Drbg.create 72L in
  let ca = Rsa.generate ~bits:512 rng in
  let mach = Lt_hw.Machine.create ~dram_pages:64 () in
  let cpu = Sgx.init_cpu mach rng ~ca_name:"intel" ~ca_key:ca in
  let work _ctx _arg = "step" in
  let victim = Sgx.create_enclave cpu ~name:"victim" ~code:"v" ~epc_pages:1
      ~ecalls:[ ("work", work) ] in
  let other = Sgx.create_enclave cpu ~name:"other" ~code:"o" ~epc_pages:1
      ~ecalls:[ ("work", work) ] in
  let tasks = [ (victim, "work", ""); (other, "work", "") ] in
  let fair = Sgx.run_tasks cpu ~policy:`Fair ~slices:200 tasks in
  let starved = Sgx.run_tasks cpu ~policy:(`Starve "victim") ~slices:200 tasks in
  let get l k = Option.value ~default:0 (List.assoc_opt k l) in
  Printf.printf "sgx enclave progress: fair=%d/200 slices, starved by OS=%d/200 slices\n"
    (get fair "victim") (get starved "victim");
  let rr = List.assoc "round-robin" acc and tdma = List.assoc "tdma" acc in
  shape
    (rr > 0.95 && tdma < 0.65 && get starved "victim" = 0)
    "round-robin leaks %.0f%% of bits, TDMA closes the channel to ~chance (%.0f%%); the OS starves SGX to zero"
    (100. *. rr) (100. *. tdma)

(* ------------------------------------------------------------------ *)
(* tdma-overhead: what interference freedom costs (§II-C ablation)     *)
(* ------------------------------------------------------------------ *)

let tdma_overhead () =
  header "tdma-overhead" "the throughput price of time partitioning (§II-C ablation)";
  (* an asymmetric workload: partition A busy, partition B mostly idle.
     RR gives B's unused time to A; TDMA burns it to stay silent. *)
  let run policy =
    let mach = Lt_hw.Machine.create ~dram_pages:64 () in
    let k = Kernel.create mach policy in
    let ta = Kernel.create_task k ~name:"busy" ~partition:"A" in
    let tb = Kernel.create_task k ~name:"idle" ~partition:"B" in
    let _ =
      Kernel.create_thread k ta ~name:"busy" ~prio:1 (fun () ->
          for _ = 1 to 100 do
            User.consume 50;
            User.yield ()
          done)
    in
    let _ =
      Kernel.create_thread k tb ~name:"light" ~prio:1 (fun () ->
          for _ = 1 to 5 do
            User.consume 10;
            User.sleep 200
          done)
    in
    ignore (Kernel.run k);
    Lt_hw.Clock.now mach.Lt_hw.Machine.clock
  in
  let rr = run (Sched.Round_robin { quantum = 100 }) in
  let rows =
    List.map
      (fun slot ->
        let ticks = run (Sched.Tdma { slots = [ ("A", slot); ("B", slot) ] }) in
        (slot, ticks))
      [ 25; 100; 400 ]
  in
  Printf.printf "%-26s %-14s %-10s\n" "scheduler" "total ticks" "overhead";
  Printf.printf "%-26s %-14d %-10s\n" "round-robin (leaky)" rr "1.00x";
  List.iter
    (fun (slot, ticks) ->
      Printf.printf "%-26s %-14d %.2fx\n"
        (Printf.sprintf "tdma slot=%d (silent)" slot)
        ticks
        (float_of_int ticks /. float_of_int rr))
    rows;
  let worst = List.fold_left (fun acc (_, t) -> max acc t) 0 rows in
  shape
    (List.for_all (fun (_, t) -> t >= rr) rows && worst > rr)
    "interference freedom is not free: TDMA costs up to %.1fx wall clock on this workload"
    (float_of_int worst /. float_of_int rr)

(* ------------------------------------------------------------------ *)
(* cache-sidechannel: prime+probe against an SGX enclave (§II-C)       *)
(* ------------------------------------------------------------------ *)

let cache_attack ~partitioned =
  let sets = 64 and secret_bits = 32 in
  let rng = Drbg.create 73L in
  let ca = Rsa.generate ~bits:512 rng in
  let mach = Lt_hw.Machine.create ~dram_pages:64 ~cache_sets:sets ~cache_ways:2 () in
  let cache = mach.Lt_hw.Machine.cache in
  if partitioned then begin
    Lt_hw.Cache.partition cache ~domain:"attacker" ~lo:0 ~hi:(sets / 2 - 1);
    Lt_hw.Cache.partition cache ~domain:"victim" ~lo:(sets / 2) ~hi:(sets - 1)
  end;
  let cpu = Sgx.init_cpu mach rng ~ca_name:"intel" ~ca_key:ca in
  let secret = Array.init secret_bits (fun _ -> Drbg.bool rng) in
  let victim =
    (* the enclave's memory access pattern depends on its secret:
       bit i touches set 2i (0) or 2i+1 (1) — a table lookup pattern *)
    Sgx.create_enclave cpu ~name:"victim" ~code:"crypto-v1" ~epc_pages:1
      ~ecalls:
        [ ("process",
           fun ctx arg ->
             let i = int_of_string arg in
             let set = (2 * i) + Bool.to_int secret.(i) in
             Sgx.cache_touch ctx (set * Lt_hw.Cache.line_size);
             "done") ]
  in
  let line = Lt_hw.Cache.line_size in
  let correct = ref 0 in
  for i = 0 to secret_bits - 1 do
    (* prime: fill both candidate sets (2 ways each) with attacker lines *)
    List.iter
      (fun set ->
        ignore (Lt_hw.Cache.access cache ~domain:"attacker" ~addr:(set * line));
        ignore
          (Lt_hw.Cache.access cache ~domain:"attacker" ~addr:((set + sets) * line)))
      [ 2 * i; (2 * i) + 1 ];
    (* victim computes *)
    ignore (Sgx.ecall cpu victim ~fn:"process" (string_of_int i));
    (* probe: which candidate set lost an attacker line? *)
    let evicted set =
      not
        (Lt_hw.Cache.probe cache ~domain:"attacker" ~addr:(set * line)
         && Lt_hw.Cache.probe cache ~domain:"attacker" ~addr:((set + sets) * line))
    in
    let guess =
      if evicted ((2 * i) + 1) then true
      else if evicted (2 * i) then false
      else false (* no signal: guess 0 *)
    in
    if guess = secret.(i) then incr correct
  done;
  float_of_int !correct /. float_of_int secret_bits

let cache_sidechannel () =
  header "cache-sidechannel" "prime+probe key recovery vs cache partitioning (§II-C)";
  let shared = cache_attack ~partitioned:false in
  let partitioned = cache_attack ~partitioned:true in
  Printf.printf "%-22s %-16s\n" "cache configuration" "bits recovered";
  Printf.printf "%-22s %-16s\n" "shared (sgx default)"
    (Printf.sprintf "%.0f%%" (100. *. shared));
  Printf.printf "%-22s %-16s\n" "partitioned"
    (Printf.sprintf "%.0f%%" (100. *. partitioned));
  shape
    (shared > 0.95 && partitioned < 0.75)
    "shared cache leaks the key (%.0f%%); partitioning reduces to ~chance (%.0f%%)"
    (100. *. shared) (100. *. partitioned)

(* ------------------------------------------------------------------ *)
(* physical-attack: bus probing vs memory encryption (§II-D)           *)
(* ------------------------------------------------------------------ *)

let physical_attack () =
  header "physical-attack" "bus-probe secret recovery per substrate (§II-D)";
  let secret = "PHYSICAL-ATTACK-TARGET-SECRET" in
  let rng = Drbg.create 41L in
  let ca = Rsa.generate ~bits:512 rng in
  let store_services =
    [ ("put", fun fac req -> fac.Substrate.f_store ~key:"s" req; "ok") ]
  in
  let run name (machine : Lt_hw.Machine.t) (sub : Substrate.t) =
    (match sub.Substrate.launch ~name:"holder" ~code:"holder-v1"
             ~services:store_services with
     | Ok c -> ignore (sub.Substrate.invoke c ~fn:"put" secret)
     | Error e -> failwith e);
    let found =
      Lt_hw.Tamper.scan (Lt_hw.Machine.tamper machine) ~needle:secret <> []
    in
    Printf.printf "%-13s %-32s\n" name
      (if found then "secret RECOVERED from DRAM" else "ciphertext only");
    found
  in
  Printf.printf "%-13s %-32s\n" "substrate" "physical bus probe";
  let m1 = Lt_hw.Machine.create ~dram_pages:512 () in
  let mk, _ = Substrate_kernel.make m1 (Sched.Round_robin { quantum = 500 }) () in
  let mk_found = run "microkernel" m1 mk in
  let m2 = Lt_hw.Machine.create ~dram_pages:64 () in
  Lt_hw.Fuse.program m2.Lt_hw.Machine.fuses ~name:"devkey"
    ~visibility:Lt_hw.Fuse.Secure_only (Drbg.bytes rng 32);
  let tz_found =
    match
      Substrate_trustzone.make m2 ~vendor:ca.Rsa.pub
        ~image:(Lt_tpm.Boot.sign_stage ca ~name:"tz" "tz-v1") ~device_id:"d"
        ~device_key_name:"devkey" ~secure_pages:4
    with
    | Ok (tz, _) -> run "trustzone" m2 tz
    | Error e -> failwith e
  in
  let m3 = Lt_hw.Machine.create ~dram_pages:128 () in
  let sgx, _ = Substrate_sgx.make m3 rng ~ca_name:"intel" ~ca_key:ca () in
  let sgx_found = run "sgx" m3 sgx in
  let m4 = Lt_hw.Machine.create ~dram_pages:64 () in
  let sep, _, _ = Substrate_sep.make m4 rng ~device_id:"d" ~private_pages:4 in
  let sep_found = run "sep" m4 sep in
  shape
    (mk_found && tz_found && (not sgx_found) && not sep_found)
    "MMU and TrustZone protection stops at the package boundary; SGX/SEP memory encryption does not"

(* ------------------------------------------------------------------ *)
(* latelaunch: serialized PALs vs concurrent enclaves (§II-B)          *)
(* ------------------------------------------------------------------ *)

let latelaunch () =
  header "latelaunch" "Flicker serialized PALs vs SGX concurrent enclaves (§II-B)";
  let rng = Drbg.create 51L in
  let ca = Rsa.generate ~bits:512 rng in
  let invocations = 200 in
  let workers = 4 in
  (* flicker: every invocation stops the world *)
  let tpm = Lt_tpm.Tpm.manufacture rng ~ca_name:"v" ~ca_key:ca ~serial:"1" in
  let clock = Lt_hw.Clock.create () in
  let flicker = Substrate_flicker.make tpm ~clock () in
  let pals =
    List.init workers (fun i ->
        match
          flicker.Substrate.launch ~name:(Printf.sprintf "pal%d" i)
            ~code:(Printf.sprintf "worker-%d" i)
            ~services:[ ("work", fun _ arg -> arg) ]
        with
        | Ok c -> c
        | Error e -> failwith e)
  in
  for i = 1 to invocations do
    let c = List.nth pals (i mod workers) in
    ignore (flicker.Substrate.invoke c ~fn:"work" "x")
  done;
  let flicker_ticks = Lt_hw.Clock.now clock in
  (* sgx: enclaves coexist; no stop-the-world *)
  let mach = Lt_hw.Machine.create ~dram_pages:128 () in
  let sgx, _ = Substrate_sgx.make mach rng ~ca_name:"intel" ~ca_key:ca () in
  let enclaves =
    List.init workers (fun i ->
        match
          sgx.Substrate.launch ~name:(Printf.sprintf "e%d" i)
            ~code:(Printf.sprintf "worker-%d" i)
            ~services:[ ("work", fun _ arg -> arg) ]
        with
        | Ok c -> c
        | Error e -> failwith e)
  in
  let t0 = Lt_hw.Clock.now mach.Lt_hw.Machine.clock in
  for i = 1 to invocations do
    let c = List.nth enclaves (i mod workers) in
    ignore (sgx.Substrate.invoke c ~fn:"work" "x")
  done;
  let sgx_ticks = Lt_hw.Clock.now mach.Lt_hw.Machine.clock - t0 in
  let f_per = float_of_int flicker_ticks /. float_of_int invocations in
  let s_per = float_of_int sgx_ticks /. float_of_int invocations in
  Printf.printf "%-10s %-10s %-14s %-12s %s\n" "substrate" "workers" "invocations"
    "total ticks" "ticks/invocation";
  Printf.printf "%-10s %-10d %-14d %-12d %.1f (world stop+measure+resume each)\n"
    "flicker" workers invocations flicker_ticks f_per;
  Printf.printf "%-10s %-10d %-14d %-12d %.1f (plus %d-way concurrency available)\n"
    "sgx" workers invocations sgx_ticks s_per workers;
  shape
    (f_per > 4.0 *. s_per)
    "late launch costs %.0fx more per invocation and cannot overlap work" (f_per /. s_per)

(* ------------------------------------------------------------------ *)
(* gateway: IoT DDoS containment (§III-C)                              *)
(* ------------------------------------------------------------------ *)

let gateway_experiment () =
  header "gateway" "exclusive-NIC gateway vs IoT flood (§III-C)";
  let direct, gated_victims, gated_utility = Scenario_meter.gateway_demo () in
  Printf.printf "%-28s %-10s\n" "configuration" "packets at victims";
  Printf.printf "%-28s %-10d\n" "compromised android, raw NIC" direct;
  Printf.printf "%-28s %-10d\n" "through gateway" gated_victims;
  Printf.printf "legitimate telemetry delivered through gateway: %d\n" gated_utility;
  shape
    (direct > 100 && gated_victims = 0 && gated_utility > 0)
    "whitelist blocks 100%% of flood traffic while telemetry flows"

(* ------------------------------------------------------------------ *)
(* dma-attack: malicious devices vs the IOMMU (§II-D)                  *)
(* ------------------------------------------------------------------ *)

let dma_attack () =
  header "dma-attack" "malicious device DMA vs the IOMMU (§II-D)";
  let attempt ~iommu_enabled =
    let machine = Lt_hw.Machine.create ~dram_pages:64 ~iommu_enabled () in
    let bus = machine.Lt_hw.Machine.bus in
    let page = Lt_hw.Mmu.page_size in
    (* a victim's data page and the NIC's legitimate ring buffer *)
    let victim_page =
      match Lt_hw.Frame_alloc.alloc machine.Lt_hw.Machine.dram_frames with
      | Some p -> p
      | None -> failwith "oom"
    in
    let ring_page =
      match Lt_hw.Frame_alloc.alloc machine.Lt_hw.Machine.dram_frames with
      | Some p -> p
      | None -> failwith "oom"
    in
    ignore
      (Lt_hw.Bus.write bus ~requester:(Lt_hw.Bus.Cpu { secure = false })
         ~addr:(victim_page * page) "victim-data");
    if iommu_enabled then
      Lt_hw.Iommu.grant machine.Lt_hw.Machine.iommu ~device:"nic"
        ~ppage:ring_page ~writable:true;
    (* legitimate DMA into the ring *)
    let ring_ok =
      Lt_hw.Bus.write bus ~requester:(Lt_hw.Bus.Device "nic") ~addr:(ring_page * page)
        "packet"
      = Ok ()
    in
    (* the attack: the driver points the NIC at the victim's page *)
    let attack_ok =
      Lt_hw.Bus.write bus ~requester:(Lt_hw.Bus.Device "nic") ~addr:(victim_page * page)
        "OWNED-BY-NIC"
      = Ok ()
    in
    let victim_after =
      match
        Lt_hw.Bus.read bus ~requester:(Lt_hw.Bus.Cpu { secure = false })
          ~addr:(victim_page * page) ~len:11
      with
      | Ok d -> d
      | Error _ -> "?"
    in
    (ring_ok, attack_ok, victim_after)
  in
  let off_ring, off_attack, off_victim = attempt ~iommu_enabled:false in
  let on_ring, on_attack, on_victim = attempt ~iommu_enabled:true in
  Printf.printf "%-14s %-12s %-14s %s\n" "iommu" "ring DMA" "attack DMA" "victim data after";
  Printf.printf "%-14s %-12b %-14b %S\n" "disabled" off_ring off_attack off_victim;
  Printf.printf "%-14s %-12b %-14b %S\n" "enabled" on_ring on_attack on_victim;
  shape
    (off_attack && on_ring && (not on_attack) && on_victim = "victim-data")
    "without an IOMMU any driver owns all of DRAM; with it the device touches only its ring"

(* ------------------------------------------------------------------ *)
(* cheri-compartments: guarded pointers vs buffer overflow (§III-D)    *)
(* ------------------------------------------------------------------ *)

let cheri_compartments () =
  header "cheri-compartments" "hardware capabilities vs buffer over-reads (§III-D)";
  let module Cheri = Lt_cheri.Cheri in
  let trials = 100 in
  let rng = Drbg.create 61L in
  let flat_leaks = ref 0 and cheri_traps = ref 0 in
  for _ = 1 to trials do
    let m = Cheri.create ~size:4096 in
    let root = Cheri.root m in
    let buf_len = 32 + Drbg.int rng 64 in
    Cheri.store m root ~off:0 (String.make buf_len 'P');
    Cheri.store m root ~off:buf_len "NEIGHBOUR-SECRET";
    let overread = buf_len + 1 + Drbg.int rng 15 in
    (* conventional machine: unchecked pointer arithmetic *)
    let flat = Cheri.flat_read m ~addr:0 ~len:overread in
    if String.length flat > buf_len && flat.[buf_len] = 'N' then incr flat_leaks;
    (* capability machine: the parser holds a bounded view *)
    let view =
      Cheri.derive root ~off:0 ~len:buf_len ~perms:{ Cheri.load = true; store = false }
    in
    (try ignore (Cheri.load m view ~off:0 ~len:overread)
     with Cheri.Capability_fault _ -> incr cheri_traps)
  done;
  Printf.printf "%-26s %d/%d over-reads leaked the neighbour\n" "flat memory:" !flat_leaks trials;
  Printf.printf "%-26s %d/%d over-reads trapped\n" "guarded pointers:" !cheri_traps trials;
  shape
    (!flat_leaks = trials && !cheri_traps = trials)
    "every overflow leaks on flat memory and traps on the capability machine"

(* ------------------------------------------------------------------ *)
(* vetting-ablation: trusted wrappers and the TCB (§III-D)             *)
(* ------------------------------------------------------------------ *)

let vetting_ablation () =
  header "vetting-ablation" "trusted-wrapper discipline ablated (§III-D)";
  let build ~vetted =
    let app = App.create () in
    List.iter
      (fun m ->
        let m =
          if m.Manifest.name = "storage" then
            { m with
              Manifest.connects_to =
                List.map
                  (fun c -> { c with Manifest.vetted })
                  m.Manifest.connects_to }
          else m
        in
        App.add_stub app m)
      (Scenario_mail.manifests ~vertical:false);
    app
  in
  let tcb_of_substrate _ = 10_000 in
  let with_wrapper = Analysis.tcb (build ~vetted:true) ~tcb_of_substrate "storage" in
  let without = Analysis.tcb (build ~vetted:false) ~tcb_of_substrate "storage" in
  Printf.printf "%-42s %d loc\n" "storage TCB with VPFS-style vetting:" with_wrapper;
  Printf.printf "%-42s %d loc\n" "storage TCB trusting the legacy fs directly:" without;
  Printf.printf "the 30 kloc legacy stack %s the TCB\n"
    (if without - with_wrapper >= 30_000 then "re-enters" else "does not re-enter");
  shape
    (without - with_wrapper >= 30_000)
    "dropping the wrapper grows the storage TCB by the whole legacy stack (%d -> %d)"
    with_wrapper without

(* ------------------------------------------------------------------ *)
(* cloud-enclave: untrusted data-center host (§II-B)                   *)
(* ------------------------------------------------------------------ *)

let cloud_enclave () =
  header "cloud-enclave" "customer code on an untrusted cloud host (§II-B)";
  Printf.printf "%-24s %-9s %-6s %-6s %-10s\n" "host behaviour" "attested" "jobs"
    "leak" "regressed";
  let outcomes =
    List.map (fun a -> (a, scenario_ok (Scenario_cloud.run a))) Scenario_cloud.all_attacks
  in
  List.iter
    (fun (a, o) ->
      Printf.printf "%-24s %-9b %-6d %-6b %-10b\n" (Scenario_cloud.attack_name a)
        o.Scenario_cloud.attested o.Scenario_cloud.jobs_completed
        o.Scenario_cloud.secret_leaked o.Scenario_cloud.state_regressed)
    outcomes;
  let no_counter =
    scenario_ok
      (Scenario_cloud.run ~with_counter:false Scenario_cloud.Rollback_sealed_state)
  in
  Printf.printf "rollback without monotonic counter: regressed=%b\n"
    no_counter.Scenario_cloud.state_regressed;
  let get a = List.assoc a outcomes in
  let ok =
    (get Scenario_cloud.Honest_host).Scenario_cloud.jobs_completed = 3
    && List.for_all (fun (_, o) -> not o.Scenario_cloud.secret_leaked) outcomes
    && not (get Scenario_cloud.Swap_enclave_code).Scenario_cloud.attested
    && (get Scenario_cloud.Starve_enclave).Scenario_cloud.jobs_completed = 0
    && (not (get Scenario_cloud.Rollback_sealed_state).Scenario_cloud.state_regressed)
    && no_counter.Scenario_cloud.state_regressed
  in
  shape ok
    "the host never sees the secret; starvation costs availability only; sealing alone permits rollback, the counter closes it"

(* ------------------------------------------------------------------ *)
(* interchangeability: discrete TPM vs TrustZone-hosted fTPM (§II-C)   *)
(* ------------------------------------------------------------------ *)

let interchangeability () =
  header "interchangeability" "one verifier, chip TPM vs software fTPM (§II-C)";
  let rng = Drbg.create 81L in
  let ca = Rsa.generate ~bits:512 rng in
  let measurement = Sha256.digest "kernel-v1" in
  (* the same verifier-side routine for both implementations *)
  let verify ~ek_pub quote reference =
    Lt_tpm.Tpm.verify_quote ~ek_pub quote
    && quote.Lt_tpm.Tpm.q_nonce = "challenge"
    && quote.Lt_tpm.Tpm.q_composite = reference
  in
  (* discrete chip *)
  let tpm = Lt_tpm.Tpm.manufacture rng ~ca_name:"mfg" ~ca_key:ca ~serial:"chip" in
  Lt_tpm.Tpm.extend tpm 0 measurement;
  let chip_quote = Lt_tpm.Tpm.quote tpm ~nonce:"challenge" ~selection:[ 0 ] in
  let chip_ok =
    verify
      ~ek_pub:(Lt_tpm.Tpm.ek_cert tpm).Cert.pubkey
      chip_quote
      (Lt_tpm.Pcr.composite (Lt_tpm.Tpm.pcrs tpm) [ 0 ])
  in
  (* software fTPM inside TrustZone *)
  let machine = Lt_hw.Machine.create ~dram_pages:64 () in
  let vendor = Rsa.generate ~bits:512 rng in
  let tz =
    Lt_trustzone.Trustzone.install machine ~secure_pages:4 ~vendor_pub:vendor.Rsa.pub
  in
  (match
     Lt_trustzone.Trustzone.boot tz
       ~image:(Lt_tpm.Boot.sign_stage vendor ~name:"tz" "tz-v1")
   with
   | Ok _ -> ()
   | Error e -> failwith e);
  let ftpm =
    match Lt_trustzone.Ftpm.install tz rng ~ca_name:"mfg" ~ca_key:ca with
    | Ok f -> f
    | Error e -> failwith e
  in
  (match Lt_trustzone.Ftpm.extend ftpm 0 measurement with
   | Ok () -> ()
   | Error e -> failwith e);
  let ftpm_quote, ftpm_reference =
    match
      ( Lt_trustzone.Ftpm.quote ftpm ~nonce:"challenge" ~selection:[ 0 ],
        Lt_trustzone.Ftpm.read_pcr ftpm 0 )
    with
    | Ok q, Ok _ ->
      (* the reference composite: same computation as for the chip *)
      let scratch = Lt_tpm.Pcr.create () in
      Lt_tpm.Pcr.extend scratch 0 measurement;
      (q, Lt_tpm.Pcr.composite scratch [ 0 ])
    | Error e, _ | _, Error e -> failwith e
  in
  let ftpm_ok =
    verify ~ek_pub:(Lt_trustzone.Ftpm.ek_cert ftpm).Cert.pubkey ftpm_quote
      ftpm_reference
  in
  Printf.printf "%-28s quote verified: %b\n" "discrete TPM chip" chip_ok;
  Printf.printf "%-28s quote verified: %b\n" "fTPM (TrustZone software)" ftpm_ok;
  Printf.printf "same composite value reported: %b\n"
    (chip_quote.Lt_tpm.Tpm.q_composite = ftpm_quote.Lt_tpm.Tpm.q_composite);
  shape
    (chip_ok && ftpm_ok
     && chip_quote.Lt_tpm.Tpm.q_composite = ftpm_quote.Lt_tpm.Tpm.q_composite)
    "the verifier cannot and need not tell chip from software"

(* ------------------------------------------------------------------ *)

let all : (string * (unit -> bool)) list =
  [ ("fig1-containment", fig1_containment);
    ("fig2-template", fig2_template);
    ("fig3-smartmeter", fig3_smartmeter);
    ("tcb-size", tcb_size);
    ("confused-deputy", confused_deputy);
    ("vpfs", vpfs_experiment);
    ("secure-launch", secure_launch);
    ("temporal-isolation", temporal_isolation);
    ("tdma-overhead", tdma_overhead);
    ("cache-sidechannel", cache_sidechannel);
    ("physical-attack", physical_attack);
    ("latelaunch", latelaunch);
    ("gateway", gateway_experiment);
    ("dma-attack", dma_attack);
    ("cheri-compartments", cheri_compartments);
    ("vetting-ablation", vetting_ablation);
    ("cloud-enclave", cloud_enclave);
    ("interchangeability", interchangeability) ]
