(* Self-timed micro-benchmark of the Flow fixpoint solver on a
   1000-component manifest. The old Analysis.paths-based taint rule was
   exponential on dense graphs; the solver must stay comfortably linear.
   Emits one JSON object; the committed record lives in BENCH_flow.json
   at the repo root (refresh with `dune exec bench/flow_bench.exe`). *)

open Lateral

let n = 1000

(* a layered topology with long-range chords: every component feeds the
   next one plus two skip links, a sprinkling of network-facing sources
   and sep-hosted secret holders *)
let manifests =
  List.init n (fun i ->
      let name = Printf.sprintf "c%03d" i in
      let connects =
        List.filter_map
          (fun j ->
            if j < n && j <> i then
              Some (Manifest.conn (Printf.sprintf "c%03d" j) "s")
            else None)
          [ i + 1; i + 7; i + 31 ]
      in
      Manifest.v ~name ~provides:[ "s" ] ~connects_to:connects
        ~network_facing:(i mod 97 = 0)
        ~substrate:(if i mod 100 = 50 then "sep" else "microkernel")
        ())

let () =
  ignore (Flow.analyze manifests) (* warm-up *);
  let runs = 10 in
  let times =
    List.init runs (fun _ ->
        let t0 = Sys.time () in
        ignore (Flow.analyze manifests);
        Sys.time () -. t0)
  in
  let r = Flow.analyze manifests in
  let sorted = List.sort compare times in
  let median = List.nth sorted (runs / 2) in
  let mean = List.fold_left ( +. ) 0.0 times /. float_of_int runs in
  Printf.printf
    "{\"benchmark\":\"flow-solver\",\"components\":%d,\"flow_edges\":%d,\"leaks\":%d,\"taint_hits\":%d,\"runs\":%d,\"median_ms\":%.3f,\"mean_ms\":%.3f}\n"
    n
    (List.length r.Flow.edges)
    (List.length r.Flow.leaks)
    (List.length r.Flow.taint_hits)
    runs (median *. 1000.) (mean *. 1000.)
