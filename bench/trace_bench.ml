(* Self-timed micro-benchmark of tracing overhead on the hot path: the
   same Deploy.call workload (the cloud scenario's host -> enclave hop,
   a routed call that crosses a microkernel IPC and an SGX ecall) timed
   with no tracer installed and with a full tracer + metrics registry
   recording every span. The instrumentation is compiled in either way;
   uninstalled it costs one reference read per probe, so the overhead
   budget is tight: the committed record lives in BENCH_trace.json at
   the repo root (refresh with `dune exec bench/trace_bench.exe`) and
   the median overhead must stay below 10%. *)

open Lt_crypto
open Lateral

(* one CA key for every deployment: key generation dominates deployment
   build time and plays no part in the measured call path *)
let rng = Drbg.create 0xbe9cL

let ca = Rsa.generate ~bits:512 rng

let build_deployment () =
  let m1 = Lt_hw.Machine.create ~dram_pages:512 () in
  let mk, _ =
    Substrate_kernel.make m1 (Lt_kernel.Sched.Round_robin { quantum = 500 }) ()
  in
  let m2 = Lt_hw.Machine.create ~dram_pages:256 () in
  let sgx, _ = Substrate_sgx.make m2 rng ~ca_name:"intel" ~ca_key:ca () in
  let substrates = [ ("microkernel", mk); ("sgx", sgx) ] in
  let components =
    [ ( Manifest.v ~name:"host" ~provides:[ "submit" ] ~network_facing:true
          ~connects_to:[ Manifest.conn ~vetted:true "enclave" "ecall" ]
          ~substrate:"microkernel" (),
        fun ctx ~service:_ job ->
          match ctx.Deploy.call_out ~target:"enclave" ~service:"ecall" job with
          | Ok r -> r
          | Error e -> failwith e );
      ( Manifest.v ~name:"enclave" ~provides:[ "ecall" ] ~substrate:"sgx" (),
        fun _ctx ~service:_ job ->
          String.sub (Sha256.hex (Hmac.mac ~key:"bench" job)) 0 8 ) ]
  in
  match Deploy.deploy ~substrates components with
  | Ok d -> d
  | Error e -> failwith e

let calls_per_run = 250
let runs = 15
let repeats = 3 (* per-configuration repeats inside a pair; fastest wins *)

(* ~6 spans per call; size the ring to hold one run without eviction *)
let ring_capacity = 4096

let issue dep i =
  match
    Deploy.call dep ~caller:None ~target:"host" ~service:"submit"
      (Printf.sprintf "job-%d" i)
  with
  | Ok _ -> ()
  | Error e -> failwith e

let warm_calls = 25

let time_run dep =
  (* steady state before the clock starts: warm calls fill the caches,
     interners and metric groups, and a full major collection pays off
     GC debt from setup that would otherwise be collected in slices
     inside the window *)
  for i = 1 to warm_calls do
    issue dep (-i)
  done;
  Gc.full_major ();
  let t0 = Sys.time () in
  for i = 1 to calls_per_run do
    issue dep i
  done;
  Sys.time () -. t0

let untraced_run dep () = time_run dep

let traced_run dep () =
  (* fresh tracer and registry per run: steady-state recording into a
     ring that never fills, which is the deployed configuration *)
  let tracer = Lt_obs.Trace.create ~capacity:ring_capacity () in
  let metrics = Lt_obs.Metrics.create () in
  Lt_obs.Trace.with_tracer tracer (fun () ->
      Lt_obs.Metrics.with_metrics metrics (fun () -> time_run dep))

let median xs =
  let sorted = List.sort compare xs in
  List.nth sorted (List.length xs / 2)

let () =
  (* warm-up both paths *)
  ignore (untraced_run (build_deployment ()) ());
  ignore (traced_run (build_deployment ()) ());
  (* Each timed run gets a fresh deployment: the simulated kernel keeps
     one client task per call, so a shared deployment would slow
     whichever configuration runs later. The workload is deterministic
     and the clock is CPU time, so machine noise only ever adds time —
     within a pair each configuration is measured [repeats] times
     (alternating order) and its fastest run wins; the reported overhead
     is the median of the per-pair ratios of those minima. *)
  let untraced = ref [] and traced = ref [] and ratios = ref [] in
  for i = 1 to runs do
    let u = ref infinity and t = ref infinity in
    for j = 1 to repeats do
      let du = build_deployment () and dt = build_deployment () in
      if (i + j) mod 2 = 0 then begin
        u := min !u (untraced_run du ());
        t := min !t (traced_run dt ())
      end
      else begin
        t := min !t (traced_run dt ());
        u := min !u (untraced_run du ())
      end
    done;
    untraced := !u :: !untraced;
    traced := !t :: !traced;
    ratios := (!t /. !u) :: !ratios
  done;
  let mu = median !untraced and mt = median !traced in
  let us_per_call t = t *. 1e6 /. float_of_int calls_per_run in
  let overhead_pct = 100.0 *. (median !ratios -. 1.0) in
  Printf.printf
    "{\"benchmark\":\"trace-overhead\",\"workload\":\"cloud host->enclave \
     Deploy.call\",\"calls_per_run\":%d,\"runs\":%d,\"repeats\":%d,\"untraced_median_us_per_call\":%.3f,\"traced_median_us_per_call\":%.3f,\"median_overhead_pct\":%.2f,\"budget_pct\":10.0}\n"
    calls_per_run runs repeats (us_per_call mu) (us_per_call mt) overhead_pct
