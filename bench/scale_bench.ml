(* Self-timed macro-benchmark of the scale router: sustained
   requests/s of a full Scale.run at 100 / 1,000 / 10,000 tenants —
   the real engine end-to-end: shard boot, token-bucket admission,
   World.restore / World.fork around every tenant visit and the traced
   Deploy.call per request. Per-request work is pool-size independent
   by design (tenant state is a COW snapshot, the mix rng a
   substream), so the gates check exactly that: every configuration
   must clear an absolute requests/s floor, the sampled per-request
   p99 must stay under budget, and the 10,000-tenant throughput must
   retain at least 25% of the 100-tenant figure. The committed record
   lives in BENCH_scale.json at the repo root (refresh with
   `dune exec bench/scale_bench.exe`). *)

open Lateral
module World = Lt_world.World
module Drbg = Lt_crypto.Drbg
module Load = Lt_load.Load
module Net = Lt_net.Net
module Gateway = Lt_net.Gateway
module Scale = Lt_scale.Scale

(* requests per tenant scales down as the pool grows so every
   configuration issues enough traffic (>= 6,400 requests) to measure
   sustained throughput rather than the fixed per-shard boot cost *)
let configurations = [ (100, 64); (1_000, 8); (10_000, 4) ]
let tenant_counts = List.map fst configurations
let batch = 4
let shards = 4
let runs = 5 (* full Scale.run repetitions per tenant count; fastest wins *)
let latency_visits = 500 (* sampled visits for the p99 estimate *)

let cfg (tenants, per_tenant) =
  { Scale.default with
    sc_tenants = tenants;
    sc_shards = shards;
    sc_requests_per_tenant = per_tenant;
    sc_batch = batch }

(* fastest-of-[runs] sustained throughput of the real engine *)
let throughput (tenants, per_tenant) =
  let c = cfg (tenants, per_tenant) in
  let best = ref infinity in
  for _ = 1 to runs do
    let t0 = Sys.time () in
    (match Scale.run c with
     | Ok r ->
       if not (Scale.contained r) then begin
         Printf.eprintf "scale_bench: uncontained run at %d tenants\n" tenants;
         exit 2
       end
     | Error e -> failwith e);
    best := min !best (Sys.time () -. t0)
  done;
  float_of_int (tenants * per_tenant) /. !best

(* Per-request latency, sampled one visit at a time on the router hot
   path: restore the tenant's snapshot, issue [batch] admitted
   requests through the gateway and the traced Deploy.call, fork the
   world back out. Each sample is one visit's wall time divided by
   [batch], so the fork/restore cost is amortised exactly as the
   router amortises it. The tenant pool is fully materialised (every
   tenant holds its own snapshot) and samples stride across it. *)
let latency_p99_us tenants =
  let master = Drbg.create 0x5ca1eL in
  let deploy_rng = Drbg.split master in
  let dep =
    match Load.deploy_scenario (Drbg.substream deploy_rng 0) Load.Mail with
    | Ok d -> d
    | Error e -> failwith e
  in
  let template = World.fork dep.Load.d_world in
  let snaps = Array.make tenants template in
  let issued = Array.make tenants 0 in
  let rngs = Array.init tenants (fun i -> Drbg.substream master i) in
  let net = Net.create () in
  let entry = "bench-shard" in
  (match Net.register net entry with
   | Ok () -> ()
   | Error `Duplicate_addr -> ());
  let gate =
    Gateway.create ~whitelist:[ entry ] ~tokens_per_tick:1.0 ~burst:32.0
  in
  let tick = ref 0 in
  let visit i =
    World.restore dep.Load.d_world snaps.(i);
    for _ = 1 to batch do
      issued.(i) <- issued.(i) + 1;
      let target, service, payload = dep.Load.d_mix rngs.(i) issued.(i) in
      incr tick;
      match
        Gateway.submit gate net ~now:!tick
          ~src:(Printf.sprintf "tenant-%d" i)
          ~dst:entry payload
      with
      | Gateway.Rate_limited | Gateway.Blocked_destination -> ()
      | Gateway.Forwarded ->
        ignore (Net.recv net entry);
        ignore
          (Deploy.call dep.Load.d_deploy ~caller:None ~target ~service payload)
    done;
    snaps.(i) <- World.fork dep.Load.d_world
  in
  visit 0 (* warm the caches before sampling *)
  ;
  let samples =
    Array.init latency_visits (fun s ->
        let i = s * 7919 mod tenants in
        let t0 = Sys.time () in
        visit i;
        (Sys.time () -. t0) *. 1e6 /. float_of_int batch)
  in
  Deploy.destroy dep.Load.d_deploy;
  Array.sort compare samples;
  let rank =
    min (latency_visits - 1)
      (int_of_float (ceil (0.99 *. float_of_int latency_visits)) - 1)
  in
  samples.(rank)

let () =
  let rps = List.map throughput configurations in
  let p99 = List.map latency_p99_us tenant_counts in
  let rps_floor = 1_000.0 in
  let p99_budget_us = 1_000.0 in
  let retention_floor = 0.25 in
  let nth l i = List.nth l i in
  let retention = nth rps 2 /. nth rps 0 in
  Printf.printf
    "{\"benchmark\":\"scale-router\",\"workload\":\"seeded closed-loop mail \
     traffic, sharded tenant worlds behind token-bucket admission, \
     traced\",\"requests_per_tenant\":[64,8,4],\"batch\":%d,\"shards\":%d,\"runs\":%d,\"latency_visits\":%d,\"tenants_100_rps\":%.0f,\"tenants_1000_rps\":%.0f,\"tenants_10000_rps\":%.0f,\"tenants_100_p99_us\":%.1f,\"tenants_1000_p99_us\":%.1f,\"tenants_10000_p99_us\":%.1f,\"retention_10000_vs_100_x\":%.2f,\"rps_floor\":%.0f,\"p99_budget_us\":%.0f,\"retention_floor_x\":%.2f}\n"
    batch shards runs latency_visits (nth rps 0) (nth rps 1) (nth rps 2)
    (nth p99 0) (nth p99 1) (nth p99 2) retention rps_floor p99_budget_us
    retention_floor;
  List.iteri
    (fun i n ->
      if nth rps i < rps_floor then begin
        Printf.eprintf
          "scale_bench: %.0f req/s at %d tenants under the %.0f floor\n"
          (nth rps i) n rps_floor;
        exit 1
      end;
      if nth p99 i > p99_budget_us then begin
        Printf.eprintf
          "scale_bench: p99 %.1fus at %d tenants blew the %.0fus budget\n"
          (nth p99 i) n p99_budget_us;
        exit 1
      end)
    tenant_counts;
  if retention < retention_floor then begin
    Printf.eprintf
      "scale_bench: 10k-tenant throughput retained only %.2fx of the \
       100-tenant figure (floor %.2fx)\n"
      retention retention_floor;
    exit 1
  end
