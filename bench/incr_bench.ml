(* Self-timed micro-benchmark of the incremental Check engine against
   the batch analysis it must stay byte-identical to. The scenario is a
   live control plane: a 1000-component fleet (flow_bench's layered
   topology) where one leaf component's CVE bit flips — the re-verdict
   must come from re-deriving the affected slice, not from re-analysing
   the fleet. Self-gating: exits 1 if the single-delta re-verdict is not
   at least 20x faster than a from-scratch Lint.run + Flow.analyze.
   Emits one JSON object; the committed record lives in BENCH_incr.json
   at the repo root (refresh with `dune exec bench/incr_bench.exe`). *)

open Lateral

let n = 1000

let mk ?(vulnerable = false) i =
  let name = Printf.sprintf "c%03d" i in
  let connects =
    List.filter_map
      (fun j ->
        if j < n && j <> i then
          Some (Manifest.conn (Printf.sprintf "c%03d" j) "s")
        else None)
      [ i + 1; i + 7; i + 31 ]
  in
  Manifest.v ~name ~provides:[ "s" ] ~connects_to:connects
    ~network_facing:(i mod 97 = 0) ~vulnerable
    ~substrate:(if i mod 100 = 50 then "sep" else "microkernel")
    ()

let manifests = List.init n (fun i -> mk i)

let median times =
  let sorted = List.sort compare times in
  List.nth sorted (List.length sorted / 2)

let () =
  (* batch: what a CI gate pays to re-check the fleet from scratch *)
  ignore (Lint.run manifests);
  ignore (Flow.analyze manifests);
  let batch_runs = 5 in
  let batch_times =
    List.init batch_runs (fun _ ->
        let t0 = Sys.time () in
        ignore (Lint.run manifests);
        ignore (Flow.analyze manifests);
        Sys.time () -. t0)
  in
  (* incremental: the same re-verdict after one component's CVE bit
     flips, applied to live state. Deltas alternate so every apply is a
     real change; applies are batched per sample to dodge timer
     granularity *)
  let st = ref (Check.create manifests) in
  let step k =
    let st', _ = Check.apply (Delta.Add (mk ~vulnerable:(k mod 2 = 0) 999)) !st in
    st := st'
  in
  step 0;
  step 1 (* warm-up *);
  let samples = 10 and per_sample = 10 in
  let deltas_applied = ref 2 in
  let incr_times =
    List.init samples (fun s ->
        let t0 = Sys.time () in
        for k = 0 to per_sample - 1 do
          step ((s * per_sample) + k);
          incr deltas_applied
        done;
        (Sys.time () -. t0) /. float_of_int per_sample)
  in
  (* the speed means nothing if the answer drifted *)
  (match Check.divergence !st with
   | None -> ()
   | Some reason ->
     Printf.eprintf "incr_bench: incremental state diverged: %s\n" reason;
     exit 2);
  let batch_ms = median batch_times *. 1000. in
  let incr_ms = median incr_times *. 1000. in
  let speedup = batch_ms /. incr_ms in
  let budget = 20.0 in
  let within = speedup >= budget in
  Printf.printf
    "{\"benchmark\":\"incr-check\",\"components\":%d,\"delta\":\"toggle \
     vulnerable on c999\",\"deltas_applied\":%d,\"batch_runs\":%d,\"batch_median_ms\":%.3f,\"incr_median_ms\":%.3f,\"speedup\":%.1f,\"budget_min_speedup\":%.1f,\"within_budget\":%b}\n"
    n !deltas_applied batch_runs batch_ms incr_ms speedup budget within;
  if not within then exit 1
