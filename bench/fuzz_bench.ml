(* Self-timed micro-benchmark of the hunt fuzzing harness: generation
   plus property-check throughput for each engine at a fixed seed, and
   the cost of ddmin shrinking on a representative storage schedule.
   The committed record lives in BENCH_fuzz.json at the repo root
   (refresh with `dune exec bench/fuzz_bench.exe`). Throughput numbers
   are execs (generate + full check) per second. The substrate engine
   used to redeploy the probe app onto all seven substrates per check
   (RSA keygen included, 3.54 execs/s at the seed baseline); it now
   boots once and World.restores the pristine fork per case, and the
   run self-gates (exit 1) on holding >= 100x that baseline. *)

module Drbg = Lt_crypto.Drbg

let time f =
  let t0 = Sys.time () in
  let x = f () in
  (Sys.time () -. t0, x)

let throughput ~seed ~warm ~cases generate check =
  for i = 0 to warm - 1 do
    ignore (check (generate (Drbg.create (Int64.of_int (seed + i))) i))
  done;
  let elapsed, failures =
    time (fun () ->
        let failures = ref 0 in
        for i = 0 to cases - 1 do
          let rng = Drbg.create (Int64.of_int (seed + 1000 + i)) in
          match check (generate rng i) with
          | Ok () -> ()
          | Error _ -> incr failures
        done;
        !failures)
  in
  (float_of_int cases /. elapsed, failures)

let shrink_cost () =
  (* minimize a 24-op schedule down to the one line the predicate
     needs: the same shape as minimizing a real crash, without
     depending on a live bug *)
  let rng = Drbg.create 0xbe9cL in
  let ops =
    List.init 24 (fun i ->
        if i = 17 then "corrupt 1 469 7"
        else Printf.sprintf "write /a x%d" (Drbg.int rng 1000))
  in
  let payload = String.concat "\n" ops in
  let has_strike p =
    List.exists
      (fun l -> String.length l >= 7 && String.sub l 0 7 = "corrupt")
      (String.split_on_char '\n' p)
  in
  let steps = ref 0 in
  let elapsed, minimal =
    time (fun () -> Lt_fuzz.Shrink.lines ~steps has_strike payload)
  in
  let lines =
    List.length
      (List.filter (fun l -> l <> "") (String.split_on_char '\n' minimal))
  in
  (!steps, elapsed *. 1e3, lines)

let () =
  let manifest_eps, mf =
    throughput ~seed:100 ~warm:5 ~cases:400 Lt_fuzz.Manifest_fuzz.generate
      Lt_fuzz.Manifest_fuzz.check
  in
  let storage_eps, sf =
    throughput ~seed:200 ~warm:3 ~cases:150 Lt_fuzz.Storage_fuzz.generate
      Lt_fuzz.Storage_fuzz.check
  in
  let substrate_eps, bf =
    throughput ~seed:300 ~warm:3 ~cases:300 Lt_fuzz.Substrate_fuzz.generate
      Lt_fuzz.Substrate_fuzz.check
  in
  let shrink_steps, shrink_ms, shrink_lines = shrink_cost () in
  Printf.printf
    "{\"benchmark\":\"hunt-throughput\",\"manifest_execs_per_sec\":%.0f,\"storage_execs_per_sec\":%.0f,\"substrate_execs_per_sec\":%.0f,\"substrate_floor_execs_per_sec\":350,\"failures\":%d,\"shrink_steps\":%d,\"shrink_ms\":%.1f,\"shrink_final_lines\":%d}\n"
    manifest_eps storage_eps substrate_eps (mf + sf + bf) shrink_steps
    shrink_ms shrink_lines;
  (* fork-per-case must hold >= 100x the 3.54/s redeploy-per-case seed *)
  if substrate_eps < 350.0 then begin
    Printf.eprintf
      "fuzz_bench: substrate engine at %.0f execs/s, below the 350/s floor\n"
      substrate_eps;
    exit 1
  end
