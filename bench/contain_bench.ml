(* Self-timed micro-benchmark of the static blast-radius analysis and
   its incremental maintenance. Same 1000-component layered fleet as
   incr_bench, but with singleton protection domains and a restart
   policy on most components so the containment fixpoint has real work:
   channel edges everywhere, a sprinkling of sep islands, and one
   restart-policy toggle as the delta. Two self-gates:
     - batch Contain.analyze must finish in <= 200ms median (exit 1),
     - the incremental contain re-verdict after a one-component delta
       must beat from-scratch by >= 20x (exit 1),
   and any divergence between the two exits 2. Emits one JSON object;
   the committed record lives in BENCH_contain.json at the repo root
   (refresh with `dune exec bench/contain_bench.exe`). *)

open Lateral

let n = 1000

let mk ?(restarting = true) i =
  let name = Printf.sprintf "c%03d" i in
  let connects =
    List.filter_map
      (fun j ->
        if j < n && j <> i then
          Some (Manifest.conn (Printf.sprintf "c%03d" j) "s")
        else None)
      [ i + 1; i + 7; i + 31 ]
  in
  Manifest.v ~name ~provides:[ "s" ] ~connects_to:connects
    ~stateful:(i mod 13 = 0)
    ?restart:
      (if restarting && i mod 3 <> 0 then
         Some (Manifest.default_restart Manifest.On_failure)
       else None)
    ~substrate:(if i mod 100 = 50 then "sep" else "microkernel")
    ()

let manifests = List.init n (fun i -> mk i)

let median times =
  let sorted = List.sort compare times in
  List.nth sorted (List.length sorted / 2)

let () =
  ignore (Contain.analyze manifests) (* warm-up *);
  let batch_runs = 5 in
  let batch_times =
    List.init batch_runs (fun _ ->
        let t0 = Sys.time () in
        ignore (Contain.analyze manifests);
        Sys.time () -. t0)
  in
  (* incremental: re-verdict after one component's restart policy
     flips — a contain-relevant delta (crash impact changes), applied
     to live state. Alternating so every apply is a real change;
     batched per sample to dodge timer granularity *)
  let st = ref (Check.create manifests) in
  let step k =
    let st', _ =
      Check.apply (Delta.Add (mk ~restarting:(k mod 2 = 0) 999)) !st
    in
    st := st'
  in
  step 0;
  step 1 (* warm-up *);
  let samples = 10 and per_sample = 10 in
  let deltas_applied = ref 2 in
  let incr_times =
    List.init samples (fun s ->
        let t0 = Sys.time () in
        for k = 0 to per_sample - 1 do
          step ((s * per_sample) + k);
          incr deltas_applied
        done;
        (Sys.time () -. t0) /. float_of_int per_sample)
  in
  (* the speed means nothing if the answer drifted *)
  (match Check.divergence !st with
   | None -> ()
   | Some reason ->
     Printf.eprintf "contain_bench: incremental state diverged: %s\n" reason;
     exit 2);
  let batch_ms = median batch_times *. 1000. in
  let incr_ms = median incr_times *. 1000. in
  let speedup = batch_ms /. incr_ms in
  let batch_budget_ms = 200.0 in
  let speedup_budget = 20.0 in
  let within = batch_ms <= batch_budget_ms && speedup >= speedup_budget in
  Printf.printf
    "{\"benchmark\":\"contain\",\"components\":%d,\"delta\":\"toggle restart \
     policy on c999\",\"deltas_applied\":%d,\"batch_runs\":%d,\"batch_median_ms\":%.3f,\"budget_batch_ms\":%.1f,\"incr_median_ms\":%.3f,\"speedup\":%.1f,\"budget_min_speedup\":%.1f,\"within_budget\":%b}\n"
    n !deltas_applied batch_runs batch_ms batch_budget_ms incr_ms speedup
    speedup_budget within;
  if not within then exit 1
