(* Running customer code on an untrusted cloud host (§II-B): "the data
   center customer needs to trust only the Intel CPU".

   Run with: dune exec examples/cloud_enclave.exe *)

open Lateral

let run_ok ?with_counter attack =
  match Scenario_cloud.run ?with_counter attack with
  | Ok o -> o
  | Error e ->
    prerr_endline ("cloud enclave: " ^ e);
    exit 1

let () =
  print_endline "Cloud enclave: remote customer vs untrusted data-center host";
  print_endline "";
  Printf.printf "%-24s %-9s %-12s %-6s %-7s %-10s %s\n" "host behaviour" "attested"
    "provisioned" "jobs" "leak" "regressed" "detail";
  Printf.printf "%s\n" (String.make 120 '-');
  List.iter
    (fun attack ->
      let o = run_ok attack in
      Printf.printf "%-24s %-9b %-12b %-6d %-7b %-10b %s\n"
        (Scenario_cloud.attack_name attack)
        o.Scenario_cloud.attested o.Scenario_cloud.provisioned
        o.Scenario_cloud.jobs_completed o.Scenario_cloud.secret_leaked
        o.Scenario_cloud.state_regressed o.Scenario_cloud.detail)
    Scenario_cloud.all_attacks;
  print_endline "";
  print_endline "the nuance the paper's sealing story glosses over:";
  let o = run_ok ~with_counter:false Scenario_cloud.Rollback_sealed_state in
  Printf.printf "  rollback WITHOUT a monotonic counter: state regressed = %b (%s)\n"
    o.Scenario_cloud.state_regressed o.Scenario_cloud.detail;
  let o = run_ok ~with_counter:true Scenario_cloud.Rollback_sealed_state in
  Printf.printf "  rollback WITH the counter:            state regressed = %b (%s)\n"
    o.Scenario_cloud.state_regressed o.Scenario_cloud.detail;
  print_endline "";
  print_endline "cloud enclave demo done."
