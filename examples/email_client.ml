(* The paper's email client (§III-C), horizontally decomposed and running
   end to end:
   - TLS component: the only one talking to the network, over a real
     handshake on a hostile simulated network;
   - storage component: VPFS wrapper over the untrusted legacy FS;
   - renderer: network-facing, assumed exploitable — we exploit it and
     watch the containment;
   - secure GUI: the trusted indicator defeats a phishing window.

   Run with: dune exec examples/email_client.exe *)

open Lt_crypto
module Net = Lt_net.Net
module Sc = Lt_net.Secure_channel
module Block = Lt_storage.Block
module Fs = Lt_storage.Legacy_fs
module Vpfs = Lt_storage.Vpfs
open Lateral

let section title =
  Printf.printf "\n=== %s ===\n" title

let scenario_ok = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("email client: " ^ e);
    exit 1

let () =
  let rng = Drbg.create 7L in

  (* ---------------------------------------------------------------- *)
  section "1. Architecture: vertical vs horizontal (Figure 1)";
  let table = scenario_ok (Scenario_mail.containment_table ()) in
  Printf.printf "%-12s %-22s %-22s\n" "exploited" "vertical: owned" "horizontal: owned";
  List.iter
    (fun (name, v, h) ->
      Printf.printf "%-12s %-22s %-22s\n" name
        (Printf.sprintf "%.0f%% of app" (100. *. v))
        (Printf.sprintf "%.0f%% of app" (100. *. h)))
    table;

  (* ---------------------------------------------------------------- *)
  section "2. TLS component: mail fetch over a hostile network";
  let ca = Rsa.generate ~bits:512 rng in
  let server_key = Rsa.generate ~bits:512 rng in
  let cert =
    Cert.issue ~ca_name:"mail-ca" ~ca_key:ca ~subject:"imap.example.org"
      server_key.Rsa.pub
  in
  let net = Net.create () in
  List.iter
    (fun a -> match Net.register net a with Ok () | Error `Duplicate_addr -> ())
    [ "client"; "server" ];
  let client =
    Sc.Client.create rng ~trusted_ca:ca.Rsa.pub ~expected_subject:"imap.example.org" ()
  in
  let server = Sc.Server.create rng ~key:server_key ~cert in
  (match Sc.connect net ~client ~client_addr:"client" ~server ~server_addr:"server" with
   | Error e -> Printf.printf "handshake failed: %s\n" e
   | Ok (cs, ss) ->
     Printf.printf "TLS established (server pinned to imap.example.org)\n";
     (* fetch the inbox through the encrypted channel *)
     let req = Sc.send cs "FETCH INBOX" in
     (match Sc.receive ss req with
      | Ok "FETCH INBOX" ->
        let reply = Sc.send ss "1: From mallory: <html>click here</html>" in
        (match Sc.receive cs reply with
         | Ok mail -> Printf.printf "fetched: %s\n" mail
         | Error e -> Printf.printf "client: %s\n" e)
      | Ok _ | Error _ -> print_endline "server: unexpected request");
     let eavesdropper_sees_plaintext =
       List.exists
         (fun p ->
           let hay = p.Net.payload in
           let needle = "mallory" in
           let n = String.length needle and h = String.length hay in
           let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
           go 0)
         (Net.observed net)
     in
     Printf.printf "eavesdropper saw mail content: %b\n" eavesdropper_sees_plaintext);

  (* ---------------------------------------------------------------- *)
  section "3. Storage component: VPFS over the untrusted legacy FS";
  let dev = Block.create ~blocks:1024 in
  let fs = Fs.format dev in
  let vpfs = Vpfs.create ~master_key:"mail-storage-key" fs in
  (match Vpfs.write vpfs "/inbox/1" "From mallory: click here" with
   | Ok () -> ()
   | Error e -> Printf.printf "write: %s\n" (Format.asprintf "%a" Vpfs.pp_error e));
  Printf.printf "stored mail; legacy fs saw plaintext: %b\n"
    (Fs.observed_contains fs ~needle:"mallory");
  (* the legacy stack turns hostile *)
  Fs.set_evil fs (Fs.Corrupt_reads (Drbg.create 5L));
  (match Vpfs.read vpfs "/inbox/1" with
   | Ok _ -> print_endline "UNEXPECTED: corrupted data accepted"
   | Error e ->
     Printf.printf "hostile fs detected: %s\n" (Format.asprintf "%a" Vpfs.pp_error e));
  Fs.set_evil fs Fs.Honest;

  (* ---------------------------------------------------------------- *)
  section "4. Exploit the renderer, watch the walls hold";
  let app = scenario_ok (Scenario_mail.build ~vertical:false) in
  App.compromise app "renderer";
  (* the ui asks the (now hostile) renderer to render a message *)
  ignore (App.call app ~caller:(Some "ui") ~target:"renderer" ~service:"render"
            "<html>exploit</html>");
  let attempts = App.exfiltration_attempts app "renderer" in
  let allowed = List.filter (fun (_, _, ok) -> ok) attempts in
  Printf.printf "compromised renderer tried %d channels; %d allowed\n"
    (List.length attempts) (List.length allowed);
  List.iter
    (fun (t, s, _) -> Printf.printf "  blocked: renderer -> %s.%s\n" t s)
    (List.filteri (fun i _ -> i < 5) (List.filter (fun (_, _, ok) -> not ok) attempts));
  Printf.printf "  ... and %d more, all blocked by manifests\n"
    (max 0 (List.length attempts - List.length allowed - 5));

  (* ---------------------------------------------------------------- *)
  section "5. Secure GUI: phishing vs the trusted indicator";
  let gui = Gui.create () in
  Gui.register_owner gui ~owner:"mail" ~light:Gui.Green;
  Gui.register_owner gui ~owner:"html-renderer" ~light:Gui.Red;
  Gui.open_window gui ~owner:"mail" ~title:"Inbox";
  Gui.open_window gui ~owner:"html-renderer" ~title:"Message";
  (* the compromised renderer draws a fake login prompt *)
  Gui.set_content gui ~owner:"html-renderer"
    [ "[GREEN] you are talking to: mail"; "Session expired. Re-enter password:" ];
  Gui.focus gui ~owner:"html-renderer";
  List.iter print_endline (Gui.render gui);
  print_endline "(the first line is compositor-rendered and cannot be forged)";

  (* ---------------------------------------------------------------- *)
  section "6. Live deployment: the slice running across real substrates";
  let rng2 = Drbg.create 1234L in
  let ca2 = Rsa.generate ~bits:512 rng2 in
  let mk_machine = Lt_hw.Machine.create ~dram_pages:512 () in
  let mk, _ =
    Substrate_kernel.make mk_machine (Lt_kernel.Sched.Round_robin { quantum = 500 }) ()
  in
  let sgx_machine = Lt_hw.Machine.create ~dram_pages:128 () in
  let sgx, _ = Substrate_sgx.make sgx_machine rng2 ~ca_name:"intel" ~ca_key:ca2 () in
  let sep_machine = Lt_hw.Machine.create ~dram_pages:64 () in
  let sep, _, _ = Substrate_sep.make sep_machine rng2 ~device_id:"sep" ~private_pages:4 in
  let components =
    [ ( Manifest.v ~name:"mail-ui" ~provides:[ "fetch" ] ~network_facing:true
          ~connects_to:[ Manifest.conn "mail-tls" "transmit" ]
          ~substrate:"microkernel" (),
        fun ctx ~service:_ req ->
          match ctx.Deploy.call_out ~target:"mail-tls" ~service:"transmit" req with
          | Ok r -> "inbox<- " ^ r
          | Error e -> "ui error: " ^ e );
      ( Manifest.v ~name:"mail-tls" ~provides:[ "transmit" ]
          ~connects_to:[ Manifest.conn "mail-keystore" "sign" ]
          ~substrate:"sgx" (),
        fun ctx ~service:_ req ->
          match ctx.Deploy.call_out ~target:"mail-keystore" ~service:"sign" req with
          | Ok s -> Printf.sprintf "%s [authenticated %s]" req s
          | Error e -> "tls error: " ^ e );
      ( Manifest.v ~name:"mail-keystore" ~provides:[ "sign" ] ~substrate:"sep" (),
        fun ctx ~service:_ req ->
          let key =
            match ctx.Deploy.facilities.Substrate.f_load ~key:"k" with
            | Some k -> k
            | None ->
              ctx.Deploy.facilities.Substrate.f_store ~key:"k" "account-key";
              "account-key"
          in
          String.sub (Sha256.hex (Hmac.mac ~key req)) 0 8 ) ]
  in
  (match
     Deploy.deploy
       ~substrates:[ ("microkernel", mk); ("sgx", sgx); ("sep", sep) ]
       components
   with
   | Error e -> Printf.printf "deploy failed: %s\n" e
   | Ok d ->
     List.iter
       (fun name ->
         Printf.printf "  %-14s runs on %s\n" name
           (Option.value ~default:"?" (Deploy.substrate_of d name)))
       [ "mail-ui"; "mail-tls"; "mail-keystore" ];
     (match Deploy.call d ~caller:None ~target:"mail-ui" ~service:"fetch" "FETCH 1" with
      | Ok r -> Printf.printf "  call chain result: %s\n" r
      | Error e -> Printf.printf "  error: %s\n" e);
     (* external input cannot reach the keystore directly *)
     (match
        Deploy.call d ~caller:None ~target:"mail-keystore" ~service:"sign" "evil"
      with
      | Error _ -> print_endline "  direct external access to the keystore: BLOCKED"
      | Ok _ -> print_endline "  UNEXPECTED: keystore reachable"));

  (* ---------------------------------------------------------------- *)
  section "7. Per-component TCB (why the keystore is verifiable)";
  List.iter
    (fun (name, mono, dec) ->
      Printf.printf "%-12s monolithic %6d loc   decomposed %6d loc   (%.1fx)\n" name
        mono dec
        (float_of_int mono /. float_of_int (max dec 1)))
    (scenario_ok (Scenario_mail.tcb_comparison ()));
  print_endline "\nemail client demo done."
