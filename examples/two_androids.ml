(* The "Merkel-Phone" (Simko3, §II-B): two paravirtualized Android
   systems side by side on one microkernel — private and business use
   separated on a single device.

   Run with: dune exec examples/two_androids.exe *)

open Lt_kernel

let android =
  [ ("browser",
     fun ctx url ->
       ctx.Legacy_os.g_write "history" url;
       "rendered:" ^ url);
    ("contacts",
     fun ctx req ->
       (match req with
        | "get" -> Option.value ~default:"(none)" (ctx.Legacy_os.g_read "contacts")
        | v -> ctx.Legacy_os.g_write "contacts" v; "saved"));
    ("mail",
     fun ctx req ->
       (match req with
        | "get" -> Option.value ~default:"(none)" (ctx.Legacy_os.g_read "mail")
        | v -> ctx.Legacy_os.g_write "mail" v; "stored")) ]

let () =
  print_endline "Two Androids, one phone (Simko3 / 'Merkel-Phone', paper §II-B)";
  print_endline "";
  (* TDMA also gives the two worlds interference-free CPU time *)
  let machine = Lt_hw.Machine.create ~dram_pages:256 () in
  let k =
    Kernel.create machine (Sched.Tdma { slots = [ ("private", 100); ("business", 100) ] })
  in
  let boot_ok ~name ~partition =
    match Legacy_os.boot k ~name ~partition ~memory_pages:4 ~processes:android with
    | Ok g -> g
    | Error e -> prerr_endline ("boot failed: " ^ e); exit 1
  in
  let private_vm = boot_ok ~name:"android-private" ~partition:"private" in
  let business_vm = boot_ok ~name:"android-business" ~partition:"business" in
  let show label r =
    Printf.printf "  %-34s %s\n" label
      (match r with Ok v -> v | Error e -> "ERROR: " ^ e)
  in
  print_endline "daily use:";
  show "private: browse cat pictures" (Legacy_os.call k private_vm ~process:"browser" "cats.example");
  show "private: save contacts" (Legacy_os.call k private_vm ~process:"contacts" "mum,bestie");
  show "business: store mail" (Legacy_os.call k business_vm ~process:"mail" "re: merger, confidential");
  show "business: save contacts" (Legacy_os.call k business_vm ~process:"contacts" "chancellery,minister");
  print_endline "";
  Printf.printf "physical frames disjoint: %b\n"
    (not
       (List.exists
          (fun f -> List.mem f (Legacy_os.frames business_vm))
          (Legacy_os.frames private_vm)));
  print_endline "";
  print_endline "now the private browser gets exploited by a malicious page...";
  Legacy_os.exploit private_vm ~process:"browser";
  show "private: contacts after exploit" (Legacy_os.call k private_vm ~process:"contacts" "get");
  Printf.printf "  attacker loots the private VM: %d entries (monolithic guest, no walls inside)\n"
    (List.length (Legacy_os.loot k private_vm));
  print_endline "";
  print_endline "...but the kernel wall between the VMs holds:";
  Printf.printf "  business VM compromised: %b\n" (Legacy_os.is_compromised business_vm);
  show "business: mail still private" (Legacy_os.call k business_vm ~process:"mail" "get");
  Printf.printf "  attacker loot from business VM: %d entries\n"
    (List.length (Legacy_os.loot k business_vm));
  print_endline "";
  print_endline "two-androids demo done."
