(* The smart-meter appliance and utility server — Figure 3 end to end.

   Run with: dune exec examples/smart_meter.exe *)

open Lateral

let () =
  print_endline "Smart meter <-> utility server (Figure 3)";
  print_endline "";
  Printf.printf "%-26s %-10s %-8s %-9s %-6s %-8s %s\n" "scenario" "anonymizer"
    "sent" "accepted" "rows" "id-leak" "detail";
  Printf.printf "%s\n" (String.make 110 '-');
  List.iter
    (fun tamper ->
      let o =
        match Scenario_meter.run tamper with
        | Ok o -> o
        | Error e ->
          prerr_endline ("smart meter: " ^ e);
          exit 1
      in
      Printf.printf "%-26s %-10b %-8b %-9b %-6d %-8b %s\n"
        (Scenario_meter.tamper_name tamper)
        o.Scenario_meter.anonymizer_verified o.Scenario_meter.reading_sent
        o.Scenario_meter.reading_accepted o.Scenario_meter.anonymized_rows
        o.Scenario_meter.customer_id_leaked o.Scenario_meter.detail)
    Scenario_meter.all_tampers;
  print_endline "";
  print_endline "Key observations:";
  print_endline "  - genuine: billed, database holds kWh only (engineered privacy)";
  print_endline "  - manipulated anonymizer: the METER refuses before any data leaves";
  print_endline "  - emulated meter / mitm / replay: the UTILITY rejects";
  print_endline "  - unsigned secure world: the boot ROM refuses the device itself";
  print_endline "  - authentication is password-less: nothing for phishing to steal";
  print_endline "";
  print_endline "IoT DDoS gateway (exclusive NIC access):";
  let direct, gated_victims, gated_utility = Scenario_meter.gateway_demo () in
  Printf.printf "  flood without gateway: %d packets reached victims\n" direct;
  Printf.printf "  flood through gateway: %d packets reached victims\n" gated_victims;
  Printf.printf "  legitimate telemetry still delivered: %d packets\n" gated_utility;
  print_endline "";
  print_endline "smart meter demo done."
