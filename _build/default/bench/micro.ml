(* Bechamel micro-benchmarks: wall-clock cost of the primitives behind
   every experiment table — crypto, substrate invocation, VPFS. One
   Test.make per operation, all grouped in one run. *)

open Bechamel
open Toolkit
open Lt_crypto
open Lateral
module Block = Lt_storage.Block
module Fs = Lt_storage.Legacy_fs
module Vpfs = Lt_storage.Vpfs

let crypto_tests () =
  let rng = Drbg.create 1001L in
  let kb = Drbg.bytes rng 1024 in
  let rsa = Rsa.generate ~bits:512 rng in
  let signature = Rsa.sign rsa "msg" in
  let aead_key = Drbg.bytes rng 16 in
  [ Test.make ~name:"sha256-1KiB" (Staged.stage (fun () -> Sha256.digest kb));
    Test.make ~name:"hmac-1KiB" (Staged.stage (fun () -> Hmac.mac ~key:"k" kb));
    Test.make ~name:"aead-seal-1KiB"
      (Staged.stage (fun () ->
           Speck.Aead.encrypt ~key:aead_key ~nonce:"12345678" ~ad:"" kb));
    Test.make ~name:"rsa512-sign" (Staged.stage (fun () -> Rsa.sign rsa "msg"));
    Test.make ~name:"rsa512-verify"
      (Staged.stage (fun () -> Rsa.verify rsa.Rsa.pub ~signature "msg")) ]

let substrate_tests () =
  let rng = Drbg.create 1002L in
  let ca = Rsa.generate ~bits:512 rng in
  (* sgx ecall *)
  let m1 = Lt_hw.Machine.create ~dram_pages:256 () in
  let sgx, _ = Substrate_sgx.make m1 rng ~ca_name:"intel" ~ca_key:ca () in
  let sgx_c =
    match sgx.Substrate.launch ~name:"b" ~code:"b" ~services:[ ("f", fun _ x -> x) ] with
    | Ok c -> c
    | Error e -> failwith e
  in
  (* trustzone smc *)
  let m2 = Lt_hw.Machine.create ~dram_pages:64 () in
  Lt_hw.Fuse.program m2.Lt_hw.Machine.fuses ~name:"devkey"
    ~visibility:Lt_hw.Fuse.Secure_only (Drbg.bytes rng 32);
  let tz, tz_c =
    match
      Substrate_trustzone.make m2 ~vendor:ca.Rsa.pub
        ~image:(Lt_tpm.Boot.sign_stage ca ~name:"tz" "tz-v1") ~device_id:"d"
        ~device_key_name:"devkey" ~secure_pages:4
    with
    | Ok (tz, _) ->
      (match tz.Substrate.launch ~name:"b" ~code:"b" ~services:[ ("f", fun _ x -> x) ] with
       | Ok c -> (tz, c)
       | Error e -> failwith e)
    | Error e -> failwith e
  in
  (* microkernel ipc *)
  let m3 = Lt_hw.Machine.create ~dram_pages:1024 () in
  let mk, _ = Substrate_kernel.make m3 (Lt_kernel.Sched.Round_robin { quantum = 500 }) () in
  let mk_c =
    match mk.Substrate.launch ~name:"b" ~code:"b" ~services:[ ("f", fun _ x -> x) ] with
    | Ok c -> c
    | Error e -> failwith e
  in
  (* flicker session *)
  let tpm = Lt_tpm.Tpm.manufacture rng ~ca_name:"v" ~ca_key:ca ~serial:"1" in
  let fl = Substrate_flicker.make tpm () in
  let fl_c =
    match fl.Substrate.launch ~name:"b" ~code:"b" ~services:[ ("f", fun _ x -> x) ] with
    | Ok c -> c
    | Error e -> failwith e
  in
  (* cheri compartment *)
  let ch, _, _ = Substrate_cheri.make rng ~size:(1 lsl 16) () in
  let ch_c =
    match ch.Substrate.launch ~name:"b" ~code:"b" ~services:[ ("f", fun _ x -> x) ] with
    | Ok c -> c
    | Error e -> failwith e
  in
  (* m3 tile *)
  let m3, _ = Substrate_m3.make rng ~ca_name:"m3" ~ca_key:ca ~tiles:4 () in
  let m3_c =
    match m3.Substrate.launch ~name:"b" ~code:"b" ~services:[ ("f", fun _ x -> x) ] with
    | Ok c -> c
    | Error e -> failwith e
  in
  [ Test.make ~name:"invoke-sgx-ecall"
      (Staged.stage (fun () -> Stdlib.ignore (sgx.Substrate.invoke sgx_c ~fn:"f" "x")));
    Test.make ~name:"invoke-tz-smc"
      (Staged.stage (fun () -> Stdlib.ignore (tz.Substrate.invoke tz_c ~fn:"f" "x")));
    Test.make ~name:"invoke-microkernel-ipc"
      (Staged.stage (fun () -> Stdlib.ignore (mk.Substrate.invoke mk_c ~fn:"f" "x")));
    Test.make ~name:"invoke-flicker-session"
      (Staged.stage (fun () -> Stdlib.ignore (fl.Substrate.invoke fl_c ~fn:"f" "x")));
    Test.make ~name:"invoke-cheri-compartment"
      (Staged.stage (fun () -> Stdlib.ignore (ch.Substrate.invoke ch_c ~fn:"f" "x")));
    Test.make ~name:"invoke-m3-tile"
      (Staged.stage (fun () -> Stdlib.ignore (m3.Substrate.invoke m3_c ~fn:"f" "x"))) ]

let storage_tests () =
  let payload = String.make 4096 'd' in
  let dev = Block.create ~blocks:8192 in
  let fs = Fs.format dev in
  let vpfs = Vpfs.create ~master_key:"bench" fs in
  let dev2 = Block.create ~blocks:8192 in
  let fs2 = Fs.format dev2 in
  Stdlib.ignore (Vpfs.write vpfs "/r" payload);
  Stdlib.ignore (Fs.write fs2 "/r" payload);
  let i = ref 0 in
  let j = ref 0 in
  [ Test.make ~name:"legacyfs-write-4KiB"
      (Staged.stage (fun () ->
           incr i;
           Stdlib.ignore (Fs.write fs2 (Printf.sprintf "/f%d" (!i mod 64)) payload)));
    Test.make ~name:"vpfs-write-4KiB"
      (Staged.stage (fun () ->
           incr j;
           Stdlib.ignore (Vpfs.write vpfs (Printf.sprintf "/f%d" (!j mod 64)) payload)));
    Test.make ~name:"legacyfs-read-4KiB"
      (Staged.stage (fun () -> Stdlib.ignore (Fs.read fs2 "/r")));
    Test.make ~name:"vpfs-read-4KiB"
      (Staged.stage (fun () -> Stdlib.ignore (Vpfs.read vpfs "/r"))) ]

let run_all () =
  let tests =
    Test.make_grouped ~name:"micro"
      (crypto_tests () @ substrate_tests () @ storage_tests ())
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\n## micro — primitive costs (wall clock, OLS fit)\n";
  Printf.printf "%-34s %14s\n" "operation" "ns/op";
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
  in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> Printf.printf "%-34s %14.1f\n" name est
      | _ -> Printf.printf "%-34s %14s\n" name "n/a")
    rows;
  print_endline "SHAPE PASS: micro-benchmarks completed"
