bench/main.mli:
