(* Experiment harness entry point.

   dune exec bench/main.exe              -- run every experiment + micro
   dune exec bench/main.exe -- --only ID -- run one experiment
   dune exec bench/main.exe -- --list    -- list experiment ids *)

let () =
  let args = Array.to_list Sys.argv in
  let only =
    let rec find = function
      | "--only" :: id :: _ -> Some id
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  if List.mem "--list" args then begin
    List.iter (fun (id, _) -> print_endline id) Experiments.all;
    print_endline "micro"
  end
  else begin
    print_endline "Lateral Thinking for Trustworthy Apps — experiment harness";
    print_endline "(each SHAPE line asserts the qualitative claim the paper makes)";
    let failures = ref [] in
    let run (id, f) =
      match only with
      | Some o when o <> id -> ()
      | _ -> if not (f ()) then failures := id :: !failures
    in
    List.iter run Experiments.all;
    (match only with
     | None | Some "micro" -> Micro.run_all ()
     | Some _ -> ());
    print_newline ();
    if !failures = [] then print_endline "ALL SHAPES PASS"
    else begin
      Printf.printf "SHAPE FAILURES: %s\n" (String.concat ", " !failures);
      exit 1
    end
  end
