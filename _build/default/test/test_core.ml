(* The unified isolation interface: one conformance suite, run against
   every substrate adapter — the "POSIX test suite" for isolation. *)

open Lt_crypto
open Lateral

let code = "trusted-component-v1"

(* a write-once component used across all substrates *)
let services =
  [ ("echo", fun _fac req -> "echo:" ^ req);
    ("put", fun fac req -> fac.Substrate.f_store ~key:"state" req; "stored");
    ("get",
     fun fac _req ->
       Option.value ~default:"EMPTY" (fac.Substrate.f_load ~key:"state"));
    ("seal", fun fac req -> fac.Substrate.f_seal req);
    ("unseal",
     fun fac req ->
       match fac.Substrate.f_unseal req with Some v -> v | None -> "DENIED") ]

type setup = {
  substrate : Substrate.t;
  policy : measurement:string -> Attestation.policy;
  attest_works : bool;
}

let empty_policy ~measurement =
  { Attestation.trusted_cas = [];
    shared_device_keys = [];
    accepted_measurements = [ measurement ] }

let setup_sgx () =
  let machine = Lt_hw.Machine.create ~dram_pages:128 () in
  let rng = Drbg.create 11L in
  let ca = Rsa.generate ~bits:512 rng in
  let t, _cpu = Substrate_sgx.make machine rng ~ca_name:"intel" ~ca_key:ca () in
  { substrate = t;
    policy =
      (fun ~measurement ->
        { (empty_policy ~measurement) with
          Attestation.trusted_cas = [ ("intel", ca.Rsa.pub) ] });
    attest_works = true }

let setup_trustzone () =
  let machine = Lt_hw.Machine.create ~dram_pages:64 () in
  let rng = Drbg.create 12L in
  let vendor = Rsa.generate ~bits:512 rng in
  let device_key = "fused-device-key-0123456789abcdef" in
  Lt_hw.Fuse.program machine.Lt_hw.Machine.fuses ~name:"devkey"
    ~visibility:Lt_hw.Fuse.Secure_only device_key;
  let image = Lt_tpm.Boot.sign_stage vendor ~name:"tz-os" "tz-os-code" in
  match
    Substrate_trustzone.make machine ~vendor:vendor.Rsa.pub ~image
      ~device_id:"meter-0001" ~device_key_name:"devkey" ~secure_pages:4
  with
  | Error e -> Alcotest.fail e
  | Ok (t, _tz) ->
    { substrate = t;
      policy =
        (fun ~measurement ->
          { (empty_policy ~measurement) with
            Attestation.shared_device_keys = [ ("meter-0001", device_key) ] });
      attest_works = true }

let setup_sep () =
  let machine = Lt_hw.Machine.create ~dram_pages:64 () in
  let rng = Drbg.create 13L in
  let t, _sep, uid = Substrate_sep.make machine rng ~device_id:"phone-7" ~private_pages:4 in
  { substrate = t;
    policy =
      (fun ~measurement ->
        { (empty_policy ~measurement) with
          Attestation.shared_device_keys = [ ("phone-7", uid) ] });
    attest_works = true }

let setup_flicker () =
  let rng = Drbg.create 14L in
  let ca = Rsa.generate ~bits:512 rng in
  let tpm = Lt_tpm.Tpm.manufacture rng ~ca_name:"tpm-vendor" ~ca_key:ca ~serial:"42" in
  { substrate = Substrate_flicker.make tpm ();
    policy =
      (fun ~measurement ->
        { (empty_policy ~measurement) with
          Attestation.trusted_cas = [ ("tpm-vendor", ca.Rsa.pub) ] });
    attest_works = true }

let setup_kernel () =
  let machine = Lt_hw.Machine.create ~dram_pages:128 () in
  let t, _k =
    Substrate_kernel.make machine (Lt_kernel.Sched.Round_robin { quantum = 500 }) ()
  in
  { substrate = t; policy = empty_policy; attest_works = false }

let setup_cheri () =
  let rng = Drbg.create 16L in
  let t, _, _ = Substrate_cheri.make rng ~size:(1 lsl 17) () in
  { substrate = t; policy = empty_policy; attest_works = false }

let setup_m3 () =
  let rng = Drbg.create 17L in
  let ca = Rsa.generate ~bits:512 rng in
  let t, _chip = Substrate_m3.make rng ~ca_name:"m3-mfg" ~ca_key:ca ~tiles:8 () in
  { substrate = t;
    policy =
      (fun ~measurement ->
        { (empty_policy ~measurement) with
          Attestation.trusted_cas = [ ("m3-mfg", ca.Rsa.pub) ] });
    attest_works = true }

let setup_kernel_tpm () =
  let machine = Lt_hw.Machine.create ~dram_pages:128 () in
  let rng = Drbg.create 15L in
  let ca = Rsa.generate ~bits:512 rng in
  let tpm = Lt_tpm.Tpm.manufacture rng ~ca_name:"tpm-vendor" ~ca_key:ca ~serial:"43" in
  let t, _k =
    Substrate_kernel.make machine
      (Lt_kernel.Sched.Round_robin { quantum = 500 })
      ~tpm ()
  in
  { substrate = t;
    policy =
      (fun ~measurement ->
        { (empty_policy ~measurement) with
          Attestation.trusted_cas = [ ("tpm-vendor", ca.Rsa.pub) ] });
    attest_works = true }

(* --- the conformance suite -------------------------------------------------- *)

let launch_ok t ~name =
  match t.Substrate.launch ~name ~code ~services with
  | Ok c -> c
  | Error e -> Alcotest.fail ("launch failed: " ^ e)

let conformance setup () =
  let { substrate = t; policy; attest_works } = setup () in
  let c = launch_ok t ~name:"conformance" in
  (* invoke *)
  Alcotest.(check (result string string)) "echo" (Ok "echo:hi")
    (t.Substrate.invoke c ~fn:"echo" "hi");
  (match t.Substrate.invoke c ~fn:"missing" "x" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown entry point accepted");
  (* protected store persists across invocations *)
  Alcotest.(check (result string string)) "put" (Ok "stored")
    (t.Substrate.invoke c ~fn:"put" "component-state");
  Alcotest.(check (result string string)) "get" (Ok "component-state")
    (t.Substrate.invoke c ~fn:"get" "");
  (* sealing roundtrip *)
  (match t.Substrate.invoke c ~fn:"seal" "sealed-payload" with
   | Error e -> Alcotest.fail ("seal failed: " ^ e)
   | Ok blob ->
     Alcotest.(check (result string string)) "unseal" (Ok "sealed-payload")
       (t.Substrate.invoke c ~fn:"unseal" blob);
     Alcotest.(check (result string string)) "garbage unseal denied" (Ok "DENIED")
       (t.Substrate.invoke c ~fn:"unseal" "not-a-sealed-blob"));
  (* measurement prediction *)
  Alcotest.(check string) "measure predicts identity"
    (Sha256.hex (t.Substrate.measure ~code))
    (Sha256.hex (Substrate.component_measurement c));
  (* component store isolation *)
  let c2 = launch_ok t ~name:"other" in
  Alcotest.(check (result string string)) "store namespaced per component"
    (Ok "EMPTY")
    (t.Substrate.invoke c2 ~fn:"get" "");
  (* attestation *)
  (match t.Substrate.attest c ~nonce:"n-123" ~claim:"reading=42" with
   | Error e ->
     if attest_works then Alcotest.fail ("attest failed: " ^ e)
   | Ok evidence ->
     if not attest_works then Alcotest.fail "attest unexpectedly succeeded";
     let p = policy ~measurement:(Substrate.component_measurement c) in
     (match Attestation.verify p ~nonce:"n-123" evidence with
      | Ok () -> ()
      | Error f -> Alcotest.fail (Format.asprintf "verify: %a" Attestation.pp_failure f));
     (* stale nonce rejected *)
     (match Attestation.verify p ~nonce:"other-nonce" evidence with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "stale nonce accepted");
     (* doctored claim rejected *)
     let forged = { evidence with Attestation.ev_claim = "reading=9999" } in
     (match Attestation.verify p ~nonce:"n-123" forged with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "doctored claim accepted");
     (* unknown measurement rejected *)
     let p2 = policy ~measurement:(Sha256.digest "some-other-code") in
     (match Attestation.verify p2 ~nonce:"n-123" evidence with
      | Error Attestation.Unknown_measurement -> ()
      | _ -> Alcotest.fail "unknown measurement accepted");
     (* evidence survives the wire *)
     (match Attestation.of_wire (Attestation.to_wire evidence) with
      | Some e2 ->
        (match Attestation.verify p ~nonce:"n-123" e2 with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "wire roundtrip broke evidence")
      | None -> Alcotest.fail "evidence wire decode failed"));
  t.Substrate.destroy c;
  t.Substrate.destroy c2

(* --- substrate-specific expectations --------------------------------------- *)

let test_properties_table () =
  let sgx = (setup_sgx ()).substrate.Substrate.properties in
  let tz = (setup_trustzone ()).substrate.Substrate.properties in
  let sep = (setup_sep ()).substrate.Substrate.properties in
  let flicker = (setup_flicker ()).substrate.Substrate.properties in
  let mk = (setup_kernel ()).substrate.Substrate.properties in
  (* the paper's comparative claims, as assertions *)
  Alcotest.(check bool) "sgx concurrent, flicker serialized" true
    (sgx.Substrate.concurrent_components && not flicker.Substrate.concurrent_components);
  Alcotest.(check bool) "trustzone has no mutual isolation" false
    tz.Substrate.mutually_isolated;
  Alcotest.(check bool) "sgx/sep defend physical memory attacks" true
    (List.mem Substrate.Physical_memory sgx.Substrate.defends
     && List.mem Substrate.Physical_memory sep.Substrate.defends);
  Alcotest.(check bool) "microkernel does not defend physical attacks" false
    (List.mem Substrate.Physical_memory mk.Substrate.defends);
  Alcotest.(check bool) "sgx can be starved" false sgx.Substrate.progress_guaranteed;
  Alcotest.(check bool) "sep has no shared cache" false
    sep.Substrate.shared_cache_with_host;
  Alcotest.(check bool) "sgx shares the cache" true sgx.Substrate.shared_cache_with_host

let test_same_component_all_substrates () =
  (* write once, run anywhere: the same [services] list must behave
     identically everywhere *)
  List.iter
    (fun setup ->
      let { substrate = t; _ } = setup () in
      let c = launch_ok t ~name:"portable" in
      Alcotest.(check (result string string))
        ("portable echo on " ^ t.Substrate.properties.Substrate.substrate_name)
        (Ok "echo:42")
        (t.Substrate.invoke c ~fn:"echo" "42"))
    [ setup_sgx; setup_trustzone; setup_sep; setup_flicker; setup_kernel;
      setup_kernel_tpm; setup_cheri; setup_m3 ]

let test_hmac_evidence_device_unknown () =
  let { substrate = t; _ } = setup_sep () in
  let c = launch_ok t ~name:"x" in
  match t.Substrate.attest c ~nonce:"n" ~claim:"c" with
  | Error e -> Alcotest.fail e
  | Ok ev ->
    let p =
      { Attestation.trusted_cas = [];
        shared_device_keys = [ ("some-other-device", "k") ];
        accepted_measurements = [ Substrate.component_measurement c ] }
    in
    (match Attestation.verify p ~nonce:"n" ev with
     | Error Attestation.Unknown_device -> ()
     | _ -> Alcotest.fail "unknown device accepted")

let test_flicker_requires_residency () =
  let s = setup_flicker () in
  let t = s.substrate in
  let a = launch_ok t ~name:"pal-a" in
  (* attest before any invoke: PAL never ran, PCR17 is not its identity *)
  (match t.Substrate.attest a ~nonce:"n" ~claim:"c" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "attested a PAL that never ran");
  ignore (t.Substrate.invoke a ~fn:"echo" "x");
  (match t.Substrate.attest a ~nonce:"n" ~claim:"c" with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e)

let suite =
  [ Alcotest.test_case "conformance: sgx" `Quick (conformance setup_sgx);
    Alcotest.test_case "conformance: trustzone" `Quick (conformance setup_trustzone);
    Alcotest.test_case "conformance: sep" `Quick (conformance setup_sep);
    Alcotest.test_case "conformance: flicker" `Quick (conformance setup_flicker);
    Alcotest.test_case "conformance: microkernel" `Quick (conformance setup_kernel);
    Alcotest.test_case "conformance: microkernel+tpm" `Quick
      (conformance setup_kernel_tpm);
    Alcotest.test_case "conformance: cheri" `Quick (conformance setup_cheri);
    Alcotest.test_case "conformance: m3-noc" `Quick (conformance setup_m3);
    Alcotest.test_case "properties encode the paper's trade-offs" `Quick
      test_properties_table;
    Alcotest.test_case "one component runs on all substrates" `Quick
      test_same_component_all_substrates;
    Alcotest.test_case "hmac evidence needs a provisioned device" `Quick
      test_hmac_evidence_device_unknown;
    Alcotest.test_case "flicker attests only resident PALs" `Quick
      test_flicker_requires_residency ]
