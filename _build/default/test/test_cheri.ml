(* CHERI capability machine: guarded pointers, monotonic derivation,
   sealing, and the buffer-overflow containment the paper cites. *)

module Cheri = Lt_cheri.Cheri

let rw = { Cheri.load = true; store = true }

let ro = { Cheri.load = true; store = false }

let test_basic_load_store () =
  let m = Cheri.create ~size:4096 in
  let root = Cheri.root m in
  Cheri.store m root ~off:100 "hello";
  Alcotest.(check string) "roundtrip" "hello" (Cheri.load m root ~off:100 ~len:5)

let test_bounds_enforced () =
  let m = Cheri.create ~size:4096 in
  let view = Cheri.derive (Cheri.root m) ~off:0 ~len:64 ~perms:rw in
  Cheri.store m view ~off:0 (String.make 64 'x');
  Alcotest.check_raises "read past bounds"
    (Cheri.Capability_fault "load out of bounds: off=0 len=65 cap-len=64")
    (fun () -> ignore (Cheri.load m view ~off:0 ~len:65));
  Alcotest.(check bool) "write past bounds" true
    (try Cheri.store m view ~off:60 "xxxxx"; false
     with Cheri.Capability_fault _ -> true);
  Alcotest.(check bool) "negative offset" true
    (try ignore (Cheri.load m view ~off:(-1) ~len:1); false
     with Cheri.Capability_fault _ -> true)

let test_monotonic_derivation () =
  let m = Cheri.create ~size:4096 in
  let small = Cheri.derive (Cheri.root m) ~off:128 ~len:64 ~perms:ro in
  (* shrinking further is fine *)
  let smaller = Cheri.derive small ~off:8 ~len:8 ~perms:ro in
  Alcotest.(check int) "base accumulates" (128 + 8) (Cheri.base smaller);
  (* growing bounds is a fault *)
  Alcotest.(check bool) "cannot grow bounds" true
    (try ignore (Cheri.derive small ~off:0 ~len:128 ~perms:ro); false
     with Cheri.Capability_fault _ -> true);
  (* adding permissions is a fault *)
  Alcotest.(check bool) "cannot add store perm" true
    (try ignore (Cheri.derive small ~off:0 ~len:8 ~perms:rw); false
     with Cheri.Capability_fault _ -> true);
  (* read-only means read-only *)
  Alcotest.(check bool) "ro view cannot store" true
    (try Cheri.store m small ~off:0 "x"; false
     with Cheri.Capability_fault _ -> true)

let test_sealing_and_invoke () =
  let m = Cheri.create ~size:4096 in
  let root = Cheri.root m in
  Cheri.store m root ~off:0 "compartment-data";
  let data = Cheri.derive root ~off:0 ~len:16 ~perms:ro in
  let code = Cheri.derive root ~off:1024 ~len:16 ~perms:ro in
  let sealed_data = Cheri.seal m data ~otype:7 in
  let sealed_code = Cheri.seal m code ~otype:7 in
  Alcotest.(check bool) "sealed" true (Cheri.is_sealed sealed_data);
  (* sealed caps are unusable directly *)
  Alcotest.(check bool) "sealed load faults" true
    (try ignore (Cheri.load m sealed_data ~off:0 ~len:4); false
     with Cheri.Capability_fault _ -> true);
  Alcotest.(check bool) "sealed derive faults" true
    (try ignore (Cheri.derive sealed_data ~off:0 ~len:4 ~perms:ro); false
     with Cheri.Capability_fault _ -> true);
  (* invoke with matching types unseals for the callee *)
  let result =
    Cheri.invoke m ~code:sealed_code ~data:sealed_data (fun unsealed ->
        Cheri.load m unsealed ~off:0 ~len:16)
  in
  Alcotest.(check string) "ccall" "compartment-data" result;
  (* mismatched types refuse *)
  let other = Cheri.seal m code ~otype:9 in
  Alcotest.(check bool) "otype mismatch" true
    (try Cheri.invoke m ~code:other ~data:sealed_data (fun _ -> ()); false
     with Cheri.Capability_fault _ -> true)

let test_overflow_containment () =
  (* the experiment in miniature: a parser compartment gets a view of the
     packet only; adjacent secrets are out of its reach *)
  let m = Cheri.create ~size:4096 in
  let root = Cheri.root m in
  Cheri.store m root ~off:0 (String.make 64 'P');        (* packet *)
  Cheri.store m root ~off:64 "ADJACENT-SECRET-KEY";      (* neighbour *)
  (* conventional machine: overflowing read succeeds *)
  let overread = Cheri.flat_read m ~addr:0 ~len:84 in
  Alcotest.(check bool) "flat memory leaks the neighbour" true
    (String.length overread = 84
     && String.sub overread 64 15 = "ADJACENT-SECRET");
  (* capability machine: same read traps *)
  let packet_view = Cheri.derive root ~off:0 ~len:64 ~perms:ro in
  Alcotest.(check bool) "guarded pointer traps the overread" true
    (try ignore (Cheri.load m packet_view ~off:0 ~len:84); false
     with Cheri.Capability_fault _ -> true)

let test_substrate_adapter () =
  let rng = Lt_crypto.Drbg.create 88L in
  let t, _, _ = Lateral.Substrate_cheri.make rng ~size:(1 lsl 16) () in
  match
    t.Lateral.Substrate.launch ~name:"c" ~code:"c1"
      ~services:
        [ ("put", fun fac r -> fac.Lateral.Substrate.f_store ~key:"k" r; "ok");
          ("get",
           fun fac _ ->
             Option.value ~default:"EMPTY" (fac.Lateral.Substrate.f_load ~key:"k")) ]
  with
  | Error e -> Alcotest.fail e
  | Ok c ->
    Alcotest.(check (result string string)) "put" (Ok "ok")
      (t.Lateral.Substrate.invoke c ~fn:"put" "v");
    Alcotest.(check (result string string)) "get" (Ok "v")
      (t.Lateral.Substrate.invoke c ~fn:"get" "");
    (match t.Lateral.Substrate.attest c ~nonce:"n" ~claim:"c" with
     | Error _ -> ()
     | Ok _ -> Alcotest.fail "capability machine should not attest")

let test_out_of_memory () =
  let rng = Lt_crypto.Drbg.create 89L in
  let t, _, _ = Lateral.Substrate_cheri.make rng ~size:8192 () in
  let launch name =
    t.Lateral.Substrate.launch ~name ~code:"c" ~services:[ ("f", fun _ x -> x) ]
  in
  (match launch "first" with Ok _ -> () | Error e -> Alcotest.fail e);
  (match launch "second" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "should be out of compartment memory")

let suite =
  [ Alcotest.test_case "load/store through capabilities" `Quick test_basic_load_store;
    Alcotest.test_case "bounds enforced" `Quick test_bounds_enforced;
    Alcotest.test_case "derivation is monotone" `Quick test_monotonic_derivation;
    Alcotest.test_case "sealing and invoke (CCall)" `Quick test_sealing_and_invoke;
    Alcotest.test_case "buffer overflow contained" `Quick test_overflow_containment;
    Alcotest.test_case "substrate adapter" `Quick test_substrate_adapter;
    Alcotest.test_case "compartment memory exhausted" `Quick test_out_of_memory ]
