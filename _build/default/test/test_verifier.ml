(* Stateful verifier: nonce lifecycle, replay, TPM NV integration. *)

open Lt_crypto
open Lateral

let setup () =
  let rng = Drbg.create 515L in
  let ca = Rsa.generate ~bits:512 rng in
  let machine = Lt_hw.Machine.create ~dram_pages:128 () in
  let sgx, _ = Substrate_sgx.make machine rng ~ca_name:"intel" ~ca_key:ca () in
  let comp =
    match sgx.Substrate.launch ~name:"svc" ~code:"svc-v1"
            ~services:[ ("f", fun _ x -> x) ] with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  let policy =
    { Attestation.trusted_cas = [ ("intel", ca.Rsa.pub) ];
      shared_device_keys = [];
      accepted_measurements = [ Substrate.component_measurement comp ] }
  in
  (rng, sgx, comp, Verifier.create (Drbg.split rng) policy)

let attest sgx comp ~nonce =
  match sgx.Substrate.attest comp ~nonce ~claim:"c" with
  | Ok ev -> ev
  | Error e -> Alcotest.fail e

let test_challenge_verify_cycle () =
  let _, sgx, comp, v = setup () in
  let nonce = Verifier.challenge v in
  Alcotest.(check int) "one outstanding" 1 (Verifier.outstanding v);
  let ev = attest sgx comp ~nonce in
  (match Verifier.check v ev with
   | Ok () -> ()
   | Error r -> Alcotest.fail (Format.asprintf "%a" Verifier.pp_rejection r));
  Alcotest.(check int) "consumed" 0 (Verifier.outstanding v)

let test_replay_rejected () =
  let _, sgx, comp, v = setup () in
  let nonce = Verifier.challenge v in
  let ev = attest sgx comp ~nonce in
  (match Verifier.check v ev with Ok () -> () | Error _ -> Alcotest.fail "first");
  (match Verifier.check v ev with
   | Error Verifier.Unknown_nonce -> ()
   | _ -> Alcotest.fail "replay accepted!")

let test_uninvited_nonce_rejected () =
  let _, sgx, comp, v = setup () in
  let ev = attest sgx comp ~nonce:"attacker-chosen-nonce" in
  match Verifier.check v ev with
  | Error Verifier.Unknown_nonce -> ()
  | _ -> Alcotest.fail "evidence with an unissued nonce accepted"

let test_bad_evidence_preserves_nonce () =
  (* a transmission error shouldn't burn the challenge *)
  let _, sgx, comp, v = setup () in
  let nonce = Verifier.challenge v in
  let ev = attest sgx comp ~nonce in
  let mangled = { ev with Attestation.ev_claim = "doctored" } in
  (match Verifier.check v mangled with
   | Error (Verifier.Evidence _) -> ()
   | _ -> Alcotest.fail "mangled evidence accepted");
  Alcotest.(check int) "nonce still outstanding" 1 (Verifier.outstanding v);
  (match Verifier.check v ev with
   | Ok () -> ()
   | Error r -> Alcotest.fail (Format.asprintf "retry: %a" Verifier.pp_rejection r))

(* --- TPM NV slots + VPFS root: rollback detection without user memory --- *)

let test_nv_slots () =
  let rng = Drbg.create 516L in
  let ca = Rsa.generate ~bits:512 rng in
  let tpm = Lt_tpm.Tpm.manufacture rng ~ca_name:"v" ~ca_key:ca ~serial:"nv" in
  Lt_tpm.Tpm.extend tpm 0 (Sha256.digest "good-os");
  Lt_tpm.Tpm.nv_define tpm ~index:1 ~selection:[ 0 ];
  Alcotest.(check bool) "write under matching policy" true
    (Lt_tpm.Tpm.nv_write tpm ~index:1 "root-digest-1" = Ok ());
  Alcotest.(check bool) "read back" true
    (Lt_tpm.Tpm.nv_read tpm ~index:1 = Ok "root-digest-1");
  (* different software cannot update the slot *)
  Lt_tpm.Tpm.extend tpm 0 (Sha256.digest "rootkit");
  (match Lt_tpm.Tpm.nv_write tpm ~index:1 "forged-root" with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "rootkit updated the NV slot");
  Alcotest.(check bool) "old value intact" true
    (Lt_tpm.Tpm.nv_read tpm ~index:1 = Ok "root-digest-1");
  Alcotest.(check bool) "undefined slot errors" true
    (match Lt_tpm.Tpm.nv_read tpm ~index:9 with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "redefinition rejected" true
    (try Lt_tpm.Tpm.nv_define tpm ~index:1 ~selection:[ 0 ]; false
     with Invalid_argument _ -> true)

let test_vpfs_root_in_tpm_nv () =
  (* the full §III-D story: VPFS root digest lives in TPM NV, so
     whole-device rollback is caught with no trusted memory in the app *)
  let module Block = Lt_storage.Block in
  let module Fs = Lt_storage.Legacy_fs in
  let module Vpfs = Lt_storage.Vpfs in
  let rng = Drbg.create 517L in
  let ca = Rsa.generate ~bits:512 rng in
  let tpm = Lt_tpm.Tpm.manufacture rng ~ca_name:"v" ~ca_key:ca ~serial:"vp" in
  Lt_tpm.Tpm.nv_define tpm ~index:1 ~selection:[];
  let dev = Block.create ~blocks:1024 in
  let fs = Fs.format dev in
  let v = Vpfs.create ~master_key:"k" fs in
  (match Vpfs.write v "/f" "state-1" with Ok () -> () | Error _ -> Alcotest.fail "w1");
  Fs.sync fs;
  let snaps = List.init (Block.blocks dev) (Block.snapshot dev) in
  (match Vpfs.write v "/f" "state-2" with Ok () -> () | Error _ -> Alcotest.fail "w2");
  (* app persists the current root into tamper-proof NV *)
  (match Lt_tpm.Tpm.nv_write tpm ~index:1 (Vpfs.root v) with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Fs.sync fs;
  (* device image rolled back; app reboots knowing nothing *)
  List.iteri (fun i s -> Block.rollback dev i s) snaps;
  let trusted_root =
    match Lt_tpm.Tpm.nv_read tpm ~index:1 with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  match Fs.mount dev with
  | Error _ -> Alcotest.fail "remount"
  | Ok fs2 ->
    (match Vpfs.open_ ~master_key:"k" ~expected_root:trusted_root fs2 with
     | Error (Vpfs.Integrity _) -> () (* rollback caught, zero user memory *)
     | Error e -> Alcotest.fail (Format.asprintf "%a" Vpfs.pp_error e)
     | Ok _ -> Alcotest.fail "rolled-back device accepted")

let suite =
  [ Alcotest.test_case "challenge/verify cycle" `Quick test_challenge_verify_cycle;
    Alcotest.test_case "evidence replay rejected" `Quick test_replay_rejected;
    Alcotest.test_case "unissued nonce rejected" `Quick test_uninvited_nonce_rejected;
    Alcotest.test_case "failed check preserves the challenge" `Quick
      test_bad_evidence_preserves_nonce;
    Alcotest.test_case "tpm nv slots gated on pcr policy" `Quick test_nv_slots;
    Alcotest.test_case "vpfs root in tpm nv defeats device rollback" `Quick
      test_vpfs_root_in_tpm_nv ]
