(* fTPM: TPM semantics implemented in TrustZone software (§II-C).
   The punchline: a verifier's Tpm.verify_quote accepts fTPM quotes. *)

open Lt_crypto
module Trustzone = Lt_trustzone.Trustzone
module Ftpm = Lt_trustzone.Ftpm

let setup () =
  let machine = Lt_hw.Machine.create ~dram_pages:64 () in
  let rng = Drbg.create 404L in
  let vendor = Rsa.generate ~bits:512 rng in
  let ca = Rsa.generate ~bits:512 rng in
  let tz = Trustzone.install machine ~secure_pages:4 ~vendor_pub:vendor.Rsa.pub in
  (match Trustzone.boot tz ~image:(Lt_tpm.Boot.sign_stage vendor ~name:"tz" "tz-v1") with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  match Ftpm.install tz rng ~ca_name:"ms-ca" ~ca_key:ca with
  | Ok ftpm -> (machine, ca, ftpm)
  | Error e -> Alcotest.fail e

let digest s = Sha256.digest s

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let test_requires_booted_world () =
  let machine = Lt_hw.Machine.create ~dram_pages:64 () in
  let rng = Drbg.create 405L in
  let vendor = Rsa.generate ~bits:512 rng in
  let ca = Rsa.generate ~bits:512 rng in
  let tz = Trustzone.install machine ~secure_pages:4 ~vendor_pub:vendor.Rsa.pub in
  match Ftpm.install tz rng ~ca_name:"ms-ca" ~ca_key:ca with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ftpm installed without a secure world"

let test_extend_and_read () =
  let _, _, ftpm = setup () in
  Alcotest.(check string) "pcr starts zero" (String.make 32 '\000')
    (ok (Ftpm.read_pcr ftpm 0));
  ok (Ftpm.extend ftpm 0 (digest "stage-1"));
  let expected = Lt_tpm.Pcr.expected_value [ digest "stage-1" ] in
  Alcotest.(check string) "extend semantics match discrete tpm"
    (Sha256.hex expected)
    (Sha256.hex (ok (Ftpm.read_pcr ftpm 0)));
  Alcotest.(check bool) "bad index errors" true
    (match Ftpm.extend ftpm 99 (digest "x") with Error _ -> true | Ok () -> false)

let test_quote_verifies_with_tpm_verifier () =
  let _, ca, ftpm = setup () in
  ok (Ftpm.extend ftpm 0 (digest "kernel"));
  let q = ok (Ftpm.quote ftpm ~nonce:"challenge" ~selection:[ 0; 1 ]) in
  let cert = Ftpm.ek_cert ftpm in
  Alcotest.(check bool) "cert chains to manufacturer" true
    (Cert.verify ~issuer_pub:ca.Rsa.pub cert);
  (* the discrete-TPM verifier accepts the software quote unchanged *)
  Alcotest.(check bool) "Tpm.verify_quote accepts ftpm quote" true
    (Lt_tpm.Tpm.verify_quote ~ek_pub:cert.Cert.pubkey q);
  let forged = { q with Lt_tpm.Tpm.q_composite = digest "other" } in
  Alcotest.(check bool) "forgery still fails" false
    (Lt_tpm.Tpm.verify_quote ~ek_pub:cert.Cert.pubkey forged)

let test_seal_unseal_pcr_policy () =
  let _, _, ftpm = setup () in
  ok (Ftpm.extend ftpm 0 (digest "good-os"));
  let blob = ok (Ftpm.seal ftpm ~selection:[ 0 ] "bitlocker-key") in
  Alcotest.(check (option string)) "same state releases" (Some "bitlocker-key")
    (ok (Ftpm.unseal ftpm blob));
  ok (Ftpm.extend ftpm 0 (digest "rootkit"));
  Alcotest.(check (option string)) "changed state withholds" None
    (ok (Ftpm.unseal ftpm blob));
  Alcotest.(check bool) "garbage blob errors" true
    (match Ftpm.unseal ftpm "garbage" with Error _ -> true | Ok _ -> false)

let test_state_in_secure_memory () =
  (* the PCR state physically lives in the protected region: normal-world
     software cannot read it *)
  let machine, _, ftpm = setup () in
  ok (Ftpm.extend ftpm 0 (digest "measured"));
  (* find the secure range via the bus: a normal-world read of it fails *)
  let denied = ref false in
  (try
     for addr = 0 to machine.Lt_hw.Machine.dram_base + 4096 do
       match
         Lt_hw.Bus.read machine.Lt_hw.Machine.bus
           ~requester:(Lt_hw.Bus.Cpu { secure = false }) ~addr ~len:1
       with
       | Error (Lt_hw.Bus.Secure_only _) ->
         denied := true;
         raise Exit
       | _ -> ()
     done
   with Exit -> ());
  Alcotest.(check bool) "secure range exists and is blocked" true !denied

let suite =
  [ Alcotest.test_case "requires a booted secure world" `Quick test_requires_booted_world;
    Alcotest.test_case "extend/read match discrete tpm semantics" `Quick
      test_extend_and_read;
    Alcotest.test_case "discrete-tpm verifier accepts ftpm quotes" `Quick
      test_quote_verifies_with_tpm_verifier;
    Alcotest.test_case "seal/unseal gated on pcr state" `Quick test_seal_unseal_pcr_policy;
    Alcotest.test_case "state held in protected memory" `Quick test_state_in_secure_memory ]
