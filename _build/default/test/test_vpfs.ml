(* VPFS: confidentiality and integrity over a hostile legacy FS. *)

open Lt_crypto
module Block = Lt_storage.Block
module Fs = Lt_storage.Legacy_fs
module Vpfs = Lt_storage.Vpfs

let master_key = "vpfs-master-key!"

let make () =
  let dev = Block.create ~blocks:1024 in
  let fs = Fs.format dev in
  (dev, fs, Vpfs.create ~master_key fs)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Format.asprintf "%a" Vpfs.pp_error e)

let test_roundtrip () =
  let _, _, v = make () in
  ok (Vpfs.write v "/secrets/keys" "alpha beta gamma");
  Alcotest.(check string) "read back" "alpha beta gamma" (ok (Vpfs.read v "/secrets/keys"));
  Alcotest.(check bool) "exists" true (Vpfs.exists v "/secrets/keys");
  Alcotest.(check (list string)) "list" [ "/secrets/keys" ] (Vpfs.list v)

let test_empty_and_large_files () =
  let _, _, v = make () in
  ok (Vpfs.write v "/empty" "");
  Alcotest.(check string) "empty roundtrip" "" (ok (Vpfs.read v "/empty"));
  let big = String.init 10_000 (fun i -> Char.chr (i mod 251)) in
  ok (Vpfs.write v "/big" big);
  Alcotest.(check bool) "multi-chunk roundtrip" true (ok (Vpfs.read v "/big") = big)

let test_confidentiality () =
  let _, fs, v = make () in
  ok (Vpfs.write v "/mail/password" "SUPER-SECRET-LOGIN");
  (* the legacy stack never saw plaintext *)
  Alcotest.(check bool) "no plaintext reached the legacy fs" false
    (Fs.observed_contains fs ~needle:"SUPER-SECRET-LOGIN");
  (* nor is it on the device in the clear *)
  (match Fs.read fs "/mail/password" with
   | Ok stored ->
     let contains hay needle =
       let n = String.length needle and h = String.length hay in
       let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
       go 0
     in
     Alcotest.(check bool) "ciphertext only" false (contains stored "SUPER-SECRET")
   | Error _ -> Alcotest.fail "backing file missing")

let test_integrity_corrupt_read () =
  let _, fs, v = make () in
  ok (Vpfs.write v "/f" (String.make 3000 'd'));
  Fs.set_evil fs (Fs.Corrupt_reads (Drbg.create 5L));
  (match Vpfs.read v "/f" with
   | Error (Vpfs.Integrity _) -> ()
   | Error e -> Alcotest.fail (Format.asprintf "wrong error: %a" Vpfs.pp_error e)
   | Ok _ -> Alcotest.fail "corrupted data accepted!")

let test_integrity_stale_file () =
  (* per-file rollback: old chunks carry the old version in their AD *)
  let _, fs, v = make () in
  ok (Vpfs.write v "/f" "version-one-contents");
  ok (Vpfs.write v "/f" "version-two-contents");
  Fs.set_evil fs Fs.Serve_stale;
  (match Vpfs.read v "/f" with
   | Error (Vpfs.Integrity _) -> ()
   | Error e -> Alcotest.fail (Format.asprintf "wrong error: %a" Vpfs.pp_error e)
   | Ok data -> Alcotest.fail ("stale data accepted: " ^ data))

let test_cross_file_splice_detected () =
  (* move ciphertext of /b into /a: same key size, different AD path *)
  let _, fs, v = make () in
  ok (Vpfs.write v "/a" "contents-of-file-a");
  ok (Vpfs.write v "/b" "contents-of-file-b");
  (match Fs.read fs "/b" with
   | Ok b_cipher ->
     (match Fs.write fs "/a" b_cipher with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "splice write failed");
     (match Vpfs.read v "/a" with
      | Error (Vpfs.Integrity _) -> ()
      | Error e -> Alcotest.fail (Format.asprintf "wrong error: %a" Vpfs.pp_error e)
      | Ok data -> Alcotest.fail ("spliced data accepted: " ^ data))
   | Error _ -> Alcotest.fail "no backing file")

let test_metadata_rollback_detected () =
  (* whole-FS rollback across remount, caught by the trusted root *)
  let dev, fs, v = make () in
  ok (Vpfs.write v "/f" "old state");
  Fs.sync fs;
  (* attacker snapshots the entire device (all blocks) *)
  let snaps = List.init (Block.blocks dev) (fun i -> Block.snapshot dev i) in
  ok (Vpfs.write v "/f" "new state");
  let trusted_root = Vpfs.root v in
  Fs.sync fs;
  (* attacker restores the old device image *)
  List.iteri (fun i s -> Block.rollback dev i s) snaps;
  (match Fs.mount dev with
   | Error _ -> Alcotest.fail "remount failed"
   | Ok fs2 ->
     (match Vpfs.open_ ~master_key ~expected_root:trusted_root fs2 with
      | Error (Vpfs.Integrity _) -> ()
      | Error e -> Alcotest.fail (Format.asprintf "wrong error: %a" Vpfs.pp_error e)
      | Ok _ -> Alcotest.fail "rolled-back fs accepted!"))

let test_reopen_with_correct_root () =
  let dev, fs, v = make () in
  ok (Vpfs.write v "/f" "persistent");
  let root = Vpfs.root v in
  Fs.sync fs;
  (match Fs.mount dev with
   | Error _ -> Alcotest.fail "remount failed"
   | Ok fs2 ->
     (match Vpfs.open_ ~master_key ~expected_root:root fs2 with
      | Error e -> Alcotest.fail (Format.asprintf "%a" Vpfs.pp_error e)
      | Ok v2 ->
        Alcotest.(check string) "data intact" "persistent" (ok (Vpfs.read v2 "/f"))))

let test_wrong_master_key () =
  let dev, fs, v = make () in
  ok (Vpfs.write v "/f" "x");
  let root = Vpfs.root v in
  Fs.sync fs;
  match Fs.mount dev with
  | Error _ -> Alcotest.fail "remount failed"
  | Ok fs2 ->
    (match Vpfs.open_ ~master_key:"wrong-key-000000" ~expected_root:root fs2 with
     | Error (Vpfs.Integrity _) -> ()
     | Error e -> Alcotest.fail (Format.asprintf "wrong error: %a" Vpfs.pp_error e)
     | Ok _ -> Alcotest.fail "wrong key accepted")

let test_delete () =
  let _, fs, v = make () in
  ok (Vpfs.write v "/f" "data");
  ok (Vpfs.delete v "/f");
  Alcotest.(check bool) "gone from vpfs" false (Vpfs.exists v "/f");
  Alcotest.(check bool) "gone from backend" false (Fs.exists fs "/f");
  (match Vpfs.read v "/f" with
   | Error (Vpfs.Not_found _) -> ()
   | _ -> Alcotest.fail "deleted file readable")

let test_root_changes_on_write () =
  let _, _, v = make () in
  let r0 = Vpfs.root v in
  ok (Vpfs.write v "/f" "a");
  let r1 = Vpfs.root v in
  ok (Vpfs.write v "/f" "b");
  let r2 = Vpfs.root v in
  Alcotest.(check bool) "root evolves" true (r0 <> r1 && r1 <> r2)

let prop_vpfs_roundtrip =
  QCheck.Test.make ~name:"vpfs: write/read roundtrip incl. chunk boundaries" ~count:60
    (QCheck.make
       QCheck.Gen.(oneof [ int_range 0 64; int_range 1000 1100; int_range 2040 2060 ]))
    (fun n ->
      let _, _, v = make () in
      let data = String.init n (fun i -> Char.chr ((i * 7) mod 256)) in
      match Vpfs.write v "/p" data with
      | Ok () -> Vpfs.read v "/p" = Ok data
      | Error _ -> false)

let suite =
  [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "empty and multi-chunk files" `Quick test_empty_and_large_files;
    Alcotest.test_case "legacy fs never sees plaintext" `Quick test_confidentiality;
    Alcotest.test_case "corrupt reads detected" `Quick test_integrity_corrupt_read;
    Alcotest.test_case "per-file rollback detected" `Quick test_integrity_stale_file;
    Alcotest.test_case "cross-file splice detected" `Quick test_cross_file_splice_detected;
    Alcotest.test_case "whole-fs rollback detected via trusted root" `Quick
      test_metadata_rollback_detected;
    Alcotest.test_case "reopen with correct root" `Quick test_reopen_with_correct_root;
    Alcotest.test_case "wrong master key rejected" `Quick test_wrong_master_key;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "root digest evolves" `Quick test_root_changes_on_write;
    QCheck_alcotest.to_alcotest prop_vpfs_roundtrip ]
