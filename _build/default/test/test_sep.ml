(* SEP: mailbox, UID key, inline-encrypted private memory. *)

open Lt_crypto
module Sep = Lt_sep.Sep

let setup () =
  let machine = Lt_hw.Machine.create ~dram_pages:64 () in
  let r = Drbg.create 31337L in
  let sep = Sep.attach machine r ~private_pages:4 in
  (machine, sep)

let test_mailbox_dispatch () =
  let machine, sep = setup () in
  Sep.register_service sep ~name:"echo" (fun _ req -> "sep:" ^ req);
  Alcotest.(check (result string string)) "call" (Ok "sep:hello")
    (Sep.mailbox_call sep ~service:"echo" "hello");
  (match Sep.mailbox_call sep ~service:"absent" "x" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown service must fail");
  Alcotest.(check int) "calls counted" 1 (Sep.mailbox_count sep);
  Alcotest.(check bool) "mailbox costs time" true
    (Lt_hw.Clock.now machine.Lt_hw.Machine.clock >= 80)

let test_uid_key_confined () =
  let machine, sep = setup () in
  (* application processor (non-secure requester) cannot read the fuse *)
  Alcotest.(check (option string)) "app cpu denied" None
    (Lt_hw.Fuse.read machine.Lt_hw.Machine.fuses ~name:"sep-uid" ~secure:false);
  let k1 = ref "" and k2 = ref "" in
  Sep.register_service sep ~name:"derive" (fun ctx info ->
      k1 := Sep.derive ctx ~info 16;
      k2 := Sep.derive ctx ~info:(info ^ "2") 16;
      ignore (Sep.uid_key ctx);
      "ok");
  ignore (Sep.mailbox_call sep ~service:"derive" "file-key");
  Alcotest.(check bool) "derivations distinct" true (!k1 <> !k2 && !k1 <> "")

let test_private_memory_encrypted () =
  let machine, sep = setup () in
  Sep.register_service sep ~name:"keychain" (fun ctx req ->
      Sep.store ctx ~key:"login" req;
      "stored");
  ignore (Sep.mailbox_call sep ~service:"keychain" "KEYCHAIN-SECRET");
  (* physical attacker scans DRAM: sees only ciphertext *)
  let tamper = Lt_hw.Machine.tamper machine in
  Alcotest.(check (list int)) "inline encryption hides secret" []
    (Lt_hw.Tamper.scan tamper ~needle:"KEYCHAIN-SECRET");
  (* application-CPU software cannot read the range either *)
  let base, _ = Sep.private_range sep in
  (match Lt_hw.Bus.read machine.Lt_hw.Machine.bus
           ~requester:(Lt_hw.Bus.Cpu { secure = false }) ~addr:base ~len:16 with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "app cpu must not read sep memory")

let test_store_load () =
  let _, sep = setup () in
  let out = ref None in
  Sep.register_service sep ~name:"kv" (fun ctx req ->
      match req with
      | "put" -> Sep.store ctx ~key:"x" "42"; "ok"
      | _ -> out := Sep.load ctx ~key:"x"; "ok");
  ignore (Sep.mailbox_call sep ~service:"kv" "put");
  ignore (Sep.mailbox_call sep ~service:"kv" "get");
  Alcotest.(check (option string)) "roundtrip" (Some "42") !out

let test_service_crash_contained () =
  let _, sep = setup () in
  Sep.register_service sep ~name:"buggy" (fun _ _ -> failwith "sep bug");
  (match Sep.mailbox_call sep ~service:"buggy" "x" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "crash should surface as error");
  Sep.register_service sep ~name:"fine" (fun _ _ -> "still alive");
  Alcotest.(check (result string string)) "sep survives" (Ok "still alive")
    (Sep.mailbox_call sep ~service:"fine" "")

let test_no_shared_cache_with_app_cpu () =
  (* SEP services leave no footprint in the application CPU's cache *)
  let machine, sep = setup () in
  Sep.register_service sep ~name:"work" (fun ctx _ ->
      Sep.store ctx ~key:"a" "b";
      "ok");
  ignore (Sep.mailbox_call sep ~service:"work" "");
  Alcotest.(check int) "cache untouched by sep" 0
    (List.length
       (Lt_hw.Cache.resident_sets machine.Lt_hw.Machine.cache ~domain:"sep"))

let suite =
  [ Alcotest.test_case "mailbox dispatch & cost" `Quick test_mailbox_dispatch;
    Alcotest.test_case "uid key confined to sep" `Quick test_uid_key_confined;
    Alcotest.test_case "private memory inline-encrypted" `Quick
      test_private_memory_encrypted;
    Alcotest.test_case "store/load roundtrip" `Quick test_store_load;
    Alcotest.test_case "service crash contained" `Quick test_service_crash_contained;
    Alcotest.test_case "no shared cache side channel" `Quick
      test_no_shared_cache_with_app_cpu ]
