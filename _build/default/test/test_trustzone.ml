(* TrustZone: worlds, SMC, fused keys, software attestation. *)

open Lt_crypto
module Trustzone = Lt_trustzone.Trustzone

let setup () =
  let machine = Lt_hw.Machine.create ~dram_pages:64 () in
  let r = Drbg.create 77L in
  let vendor = Rsa.generate ~bits:512 r in
  Lt_hw.Fuse.program machine.Lt_hw.Machine.fuses ~name:"device-key"
    ~visibility:Lt_hw.Fuse.Secure_only "per-device-aes-key-0123456789ab";
  let tz = Trustzone.install machine ~secure_pages:4 ~vendor_pub:vendor.Rsa.pub in
  (machine, vendor, tz)

let good_image vendor = Lt_tpm.Boot.sign_stage vendor ~name:"secure-os" "tz-os-v1"

let test_boot_policy () =
  let _, vendor, tz = setup () in
  Alcotest.(check bool) "not booted initially" false (Trustzone.booted tz);
  (* unsigned image refused *)
  (match Trustzone.boot tz ~image:(Lt_tpm.Boot.unsigned_stage ~name:"evil" "rootkit") with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unsigned secure world must not boot");
  Alcotest.(check bool) "still not booted" false (Trustzone.booted tz);
  (* signed image boots *)
  (match Trustzone.boot tz ~image:(good_image vendor) with
   | Ok m -> Alcotest.(check (option string)) "measurement recorded" (Some m)
               (Trustzone.measurement tz)
   | Error e -> Alcotest.fail e)

let test_services_require_boot () =
  let _, _, tz = setup () in
  Alcotest.(check bool) "register before boot rejected" true
    (try Trustzone.register_service tz ~name:"x" (fun _ r -> r); false
     with Invalid_argument _ -> true);
  (match Trustzone.smc tz ~service:"x" "req" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "smc before boot must fail")

let booted_tz () =
  let machine, vendor, tz = setup () in
  (match Trustzone.boot tz ~image:(good_image vendor) with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  (machine, vendor, tz)

let test_smc_dispatch () =
  let machine, _, tz = booted_tz () in
  Trustzone.register_service tz ~name:"echo" (fun _ req -> "echo:" ^ req);
  Alcotest.(check (result string string)) "dispatch" (Ok "echo:hi")
    (Trustzone.smc tz ~service:"echo" "hi");
  (match Trustzone.smc tz ~service:"missing" "x" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown service must fail");
  Alcotest.(check int) "smc counted" 1 (Trustzone.smc_count tz);
  Alcotest.(check bool) "world switches cost time" true
    (Lt_hw.Clock.now machine.Lt_hw.Machine.clock >= 60)

let test_fuse_gating () =
  let machine, _, tz = booted_tz () in
  (* normal world cannot read the fused key *)
  Alcotest.(check (option string)) "normal world denied" None
    (Lt_hw.Fuse.read machine.Lt_hw.Machine.fuses ~name:"device-key" ~secure:false);
  (* secure service can *)
  let got = ref None in
  Trustzone.register_service tz ~name:"keyuser" (fun ctx _ ->
      got := Trustzone.fuse_read ctx ~name:"device-key";
      "done");
  ignore (Trustzone.smc tz ~service:"keyuser" "");
  Alcotest.(check (option string)) "secure world reads fuse"
    (Some "per-device-aes-key-0123456789ab") !got

let test_secure_memory_ns_bit () =
  let _, _, tz = booted_tz () in
  Trustzone.register_service tz ~name:"vault" (fun ctx req ->
      Trustzone.store ctx ~key:"secret" req;
      "stored");
  ignore (Trustzone.smc tz ~service:"vault" "CROWN-JEWELS");
  let base, size = Trustzone.secure_range tz in
  (* normal-world software cannot read any of the secure range *)
  match Trustzone.normal_world_read tz ~addr:base ~len:(min size 64) with
  | Error (Lt_hw.Bus.Secure_only _) -> ()
  | _ -> Alcotest.fail "NS-bit check failed"

let test_physical_attacker_sees_tz_memory () =
  let machine, vendor, tz = setup () in
  (match Trustzone.boot tz ~image:(good_image vendor) with
   | Ok _ -> () | Error e -> Alcotest.fail e);
  Trustzone.register_service tz ~name:"vault" (fun ctx req ->
      Trustzone.store ctx ~key:"secret" req;
      "stored");
  ignore (Trustzone.smc tz ~service:"vault" "CROWN-JEWELS");
  let tamper = Lt_hw.Machine.tamper machine in
  Alcotest.(check bool) "bus probe finds plaintext (paper §II-D)" true
    (Lt_hw.Tamper.scan tamper ~needle:"CROWN-JEWELS" <> [])

let test_store_load_roundtrip () =
  let _, _, tz = booted_tz () in
  let loaded = ref None in
  Trustzone.register_service tz ~name:"s" (fun ctx req ->
      (match req with
       | "put" -> Trustzone.store ctx ~key:"k" "v1"
       | _ -> loaded := Trustzone.load ctx ~key:"k");
      "ok");
  ignore (Trustzone.smc tz ~service:"s" "put");
  ignore (Trustzone.smc tz ~service:"s" "get");
  Alcotest.(check (option string)) "roundtrip" (Some "v1") !loaded

let test_software_attestation () =
  let _, vendor, tz = booted_tz () in
  let expected_measurement =
    Lt_tpm.Boot.measure (good_image vendor)
  in
  Trustzone.register_service tz ~name:"attest" (fun ctx req ->
      match Trustzone.attest ctx ~device_key_name:"device-key" ~nonce:req
              ~claim:"meter-reading=42" with
      | Ok tag -> tag
      | Error e -> "ERR:" ^ e);
  (match Trustzone.smc tz ~service:"attest" "nonce-1" with
   | Ok tag ->
     Alcotest.(check bool) "verifier accepts" true
       (Trustzone.verify_attestation ~device_key:"per-device-aes-key-0123456789ab"
          ~expected_measurement ~nonce:"nonce-1" ~claim:"meter-reading=42" tag);
     Alcotest.(check bool) "claim tampering detected" false
       (Trustzone.verify_attestation ~device_key:"per-device-aes-key-0123456789ab"
          ~expected_measurement ~nonce:"nonce-1" ~claim:"meter-reading=999" tag);
     Alcotest.(check bool) "replay with other nonce fails" false
       (Trustzone.verify_attestation ~device_key:"per-device-aes-key-0123456789ab"
          ~expected_measurement ~nonce:"nonce-2" ~claim:"meter-reading=42" tag);
     Alcotest.(check bool) "wrong expected measurement fails" false
       (Trustzone.verify_attestation ~device_key:"per-device-aes-key-0123456789ab"
          ~expected_measurement:(Sha256.digest "other-os") ~nonce:"nonce-1"
          ~claim:"meter-reading=42" tag)
   | Error e -> Alcotest.fail e)

let test_no_mutual_isolation_in_secure_world () =
  (* two services share the secure world; one breach exposes both *)
  let _, _, tz = booted_tz () in
  Trustzone.register_service tz ~name:"drm" (fun ctx _ ->
      Trustzone.store ctx ~key:"hdcp" "drm-key";
      "ok");
  Trustzone.register_service tz ~name:"payments" (fun ctx _ ->
      Trustzone.store ctx ~key:"wallet" "payment-key";
      "ok");
  ignore (Trustzone.smc tz ~service:"drm" "");
  ignore (Trustzone.smc tz ~service:"payments" "");
  let leaked = Trustzone.breach_service tz ~name:"drm" in
  Alcotest.(check bool) "compromised drm service reads payment keys" true
    (List.exists (fun (svc, _, v) -> svc = "payments" && v = "payment-key") leaked)

let suite =
  [ Alcotest.test_case "secure boot policy at install" `Quick test_boot_policy;
    Alcotest.test_case "services gated on boot" `Quick test_services_require_boot;
    Alcotest.test_case "smc dispatch & cost" `Quick test_smc_dispatch;
    Alcotest.test_case "fused key gated by NS bit" `Quick test_fuse_gating;
    Alcotest.test_case "secure range blocks normal world" `Quick test_secure_memory_ns_bit;
    Alcotest.test_case "physical attacker sees tz memory" `Quick
      test_physical_attacker_sees_tz_memory;
    Alcotest.test_case "secure store roundtrip" `Quick test_store_load_roundtrip;
    Alcotest.test_case "software attestation with fused key" `Quick test_software_attestation;
    Alcotest.test_case "no mutual isolation inside secure world" `Quick
      test_no_mutual_isolation_in_secure_world ]
