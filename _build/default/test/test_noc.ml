(* M3-style NoC: DTU endpoints, kernel-only configuration, credits,
   scratchpad privacy. *)

module Noc = Lt_noc.Noc

let make () = Noc.create ~tiles:4 ~scratchpad_size:1024

let wire_echo t ~tile =
  Noc.install_program t ~tile ~code:"echo" (fun req -> "echo:" ^ req);
  Noc.configure t ~by:Noc.kernel_tile ~tile ~ep:0 Noc.Receive

let test_kernel_configures_channels () =
  let t = make () in
  wire_echo t ~tile:1;
  Noc.configure t ~by:Noc.kernel_tile ~tile:2 ~ep:0 (Noc.Send { target = 1; credits = 2 });
  Alcotest.(check (result string string)) "message flows" (Ok "echo:hi")
    (Noc.send t ~from_tile:2 ~ep:0 "hi")

let test_only_kernel_configures () =
  let t = make () in
  Alcotest.(check bool) "compute tile cannot configure a DTU" true
    (try
       Noc.configure t ~by:2 ~tile:3 ~ep:0 (Noc.Send { target = 1; credits = 1 });
       false
     with Noc.Dtu_fault _ -> true)

let test_no_endpoint_no_wire () =
  (* isolation is the default: without a configured endpoint there is
     simply nothing to talk through *)
  let t = make () in
  wire_echo t ~tile:1;
  (match Noc.send t ~from_tile:2 ~ep:0 "sneak" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "tile without an endpoint reached a peer");
  (* and a tile that accepts no messages is unreachable *)
  Noc.configure t ~by:Noc.kernel_tile ~tile:2 ~ep:0 (Noc.Send { target = 3; credits = 1 });
  (match Noc.send t ~from_tile:2 ~ep:0 "x" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "tile without a receive endpoint got a message")

let test_credits_bound_flooding () =
  let t = make () in
  wire_echo t ~tile:1;
  Noc.configure t ~by:Noc.kernel_tile ~tile:2 ~ep:0 (Noc.Send { target = 1; credits = 3 });
  (* one-way flood: only [credits] messages can be in flight *)
  let accepted = ref 0 in
  for _ = 1 to 10 do
    if Noc.post t ~from_tile:2 ~ep:0 "flood" = Ok () then incr accepted
  done;
  Alcotest.(check int) "flood bounded by credits" 3 !accepted;
  Alcotest.(check int) "queue holds exactly the credits" 3 (Noc.queue_length t ~tile:1);
  (* draining restores the credits *)
  let replies = Noc.drain t ~tile:1 in
  Alcotest.(check int) "drained replies" 3 (List.length replies);
  Alcotest.(check (option int)) "credits restored" (Some 3)
    (Noc.credits t ~tile:2 ~ep:0);
  Alcotest.(check bool) "can send again" true (Noc.post t ~from_tile:2 ~ep:0 "x" = Ok ())

let test_synchronous_send_keeps_credits () =
  let t = make () in
  wire_echo t ~tile:1;
  Noc.configure t ~by:Noc.kernel_tile ~tile:2 ~ep:0 (Noc.Send { target = 1; credits = 1 });
  for _ = 1 to 5 do
    Alcotest.(check (result string string)) "sync send" (Ok "echo:x")
      (Noc.send t ~from_tile:2 ~ep:0 "x")
  done;
  Alcotest.(check (option int)) "credit intact" (Some 1) (Noc.credits t ~tile:2 ~ep:0)

let test_scratchpad_private () =
  let t = make () in
  Noc.spm_write t ~tile:1 ~off:0 "TILE-SECRET";
  Alcotest.(check string) "own read" "TILE-SECRET" (Noc.spm_read t ~tile:1 ~off:0 ~len:11);
  Alcotest.(check (list int)) "bus probe sees nothing (on-chip)" []
    (Noc.spm_scan t ~needle:"TILE-SECRET");
  Alcotest.(check bool) "bounds checked" true
    (try ignore (Noc.spm_read t ~tile:1 ~off:1020 ~len:10); false
     with Noc.Dtu_fault _ -> true)

let test_measurement_recorded () =
  let t = make () in
  Alcotest.(check bool) "no program no measurement" true
    (Noc.measurement t ~tile:1 = None);
  wire_echo t ~tile:1;
  Alcotest.(check bool) "measurement recorded" true (Noc.measurement t ~tile:1 <> None)

let test_substrate_adapter_conformance_bits () =
  let rng = Lt_crypto.Drbg.create 99L in
  let ca = Lt_crypto.Rsa.generate ~bits:512 rng in
  let t, _chip = Lateral.Substrate_m3.make rng ~ca_name:"mfg" ~ca_key:ca ~tiles:4 () in
  match
    t.Lateral.Substrate.launch ~name:"w" ~code:"w1"
      ~services:[ ("f", fun _ x -> "r:" ^ x) ]
  with
  | Error e -> Alcotest.fail e
  | Ok c ->
    Alcotest.(check (result string string)) "invoke" (Ok "r:1")
      (t.Lateral.Substrate.invoke c ~fn:"f" "1");
    (match t.Lateral.Substrate.attest c ~nonce:"n" ~claim:"x" with
     | Ok ev ->
       let policy =
         { Lateral.Attestation.trusted_cas = [ ("mfg", ca.Lt_crypto.Rsa.pub) ];
           shared_device_keys = [];
           accepted_measurements =
             [ Lateral.Substrate.component_measurement c ] }
       in
       (match Lateral.Attestation.verify policy ~nonce:"n" ev with
        | Ok () -> ()
        | Error f ->
          Alcotest.fail (Format.asprintf "%a" Lateral.Attestation.pp_failure f))
     | Error e -> Alcotest.fail e);
    (* tiles are finite *)
    let rec exhaust i =
      match
        t.Lateral.Substrate.launch ~name:(Printf.sprintf "x%d" i) ~code:"x"
          ~services:[]
      with
      | Ok _ -> exhaust (i + 1)
      | Error _ -> i
    in
    Alcotest.(check bool) "tile pool exhausts" true (exhaust 0 <= 3)

let suite =
  [ Alcotest.test_case "kernel wires channels" `Quick test_kernel_configures_channels;
    Alcotest.test_case "only the kernel configures DTUs" `Quick test_only_kernel_configures;
    Alcotest.test_case "no endpoint, no wire" `Quick test_no_endpoint_no_wire;
    Alcotest.test_case "credits bound flooding" `Quick test_credits_bound_flooding;
    Alcotest.test_case "synchronous sends keep credits" `Quick
      test_synchronous_send_keeps_credits;
    Alcotest.test_case "scratchpads are on-chip private" `Quick test_scratchpad_private;
    Alcotest.test_case "program measurements recorded" `Quick test_measurement_recorded;
    Alcotest.test_case "m3 substrate adapter" `Quick
      test_substrate_adapter_conformance_bits ]
