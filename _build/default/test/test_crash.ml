(* Crash consistency: the jVPFS-style redo journal. One VPFS mutation is
   four backend writes (journal, data, metadata, journal-clear); we
   crash in every window and recover. *)

module Block = Lt_storage.Block
module Fs = Lt_storage.Legacy_fs
module Vpfs = Lt_storage.Vpfs

let master_key = "crash-test-key"

(* build: /f = "committed", trusted root persisted; then attempt
   /f = "in-flight" with a crash after [n] backend writes *)
let crash_scenario n =
  let dev = Block.create ~blocks:1024 in
  let fs = Fs.format dev in
  let v = Vpfs.create ~master_key fs in
  (match Vpfs.write v "/f" "committed" with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "setup write");
  let trusted_root = Vpfs.root v in
  Fs.sync fs;
  Fs.crash_after_writes fs n;
  let crashed =
    try
      ignore (Vpfs.write v "/f" "in-flight");
      false
    with Fs.Crashed -> true
  in
  (dev, trusted_root, crashed)

let reopen dev trusted_root =
  match Fs.mount dev with
  | Error e -> Alcotest.fail (Format.asprintf "remount: %a" Fs.pp_error e)
  | Ok fs2 ->
    (match Vpfs.open_recover ~master_key ~expected_root:trusted_root fs2 with
     | Ok (v, status) -> (v, status)
     | Error e -> Alcotest.fail (Format.asprintf "recover: %a" Vpfs.pp_error e))

let test_crash_before_journal () =
  let dev, root, crashed = crash_scenario 0 in
  Alcotest.(check bool) "crashed" true crashed;
  let v, status = reopen dev root in
  Alcotest.(check bool) "clean (nothing durable yet)" true (status = `Clean);
  Alcotest.(check bool) "old contents intact" true (Vpfs.read v "/f" = Ok "committed")

let test_crash_after_journal () =
  (* journal durable, data and meta lost: redo completes the update *)
  let dev, root, crashed = crash_scenario 1 in
  Alcotest.(check bool) "crashed" true crashed;
  let v, status = reopen dev root in
  Alcotest.(check bool) "recovered" true (status = `Recovered);
  Alcotest.(check bool) "update rolled forward" true
    (Vpfs.read v "/f" = Ok "in-flight");
  Alcotest.(check bool) "root moved" true (Vpfs.root v <> root)

let test_crash_after_data () =
  (* journal + data durable, meta lost: without the journal this is the
     torn state that loses the file; redo repairs it *)
  let dev, root, crashed = crash_scenario 2 in
  Alcotest.(check bool) "crashed" true crashed;
  let v, status = reopen dev root in
  Alcotest.(check bool) "recovered" true (status = `Recovered);
  Alcotest.(check bool) "file readable and current" true
    (Vpfs.read v "/f" = Ok "in-flight")

let test_crash_after_meta () =
  (* everything but the journal-clear durable: redo is idempotent *)
  let dev, root, crashed = crash_scenario 3 in
  Alcotest.(check bool) "crashed" true crashed;
  let v, status = reopen dev root in
  Alcotest.(check bool) "recovered" true (status = `Recovered);
  Alcotest.(check bool) "file readable and current" true
    (Vpfs.read v "/f" = Ok "in-flight")

let test_no_crash_is_clean () =
  (* a completed write hands the caller the new root; reopening with it
     is clean, and reopening with the stale pre-write root fails *)
  let dev = Block.create ~blocks:1024 in
  let fs = Fs.format dev in
  let v = Vpfs.create ~master_key fs in
  (match Vpfs.write v "/f" "committed" with Ok () -> () | Error _ -> Alcotest.fail "w1");
  let stale_root = Vpfs.root v in
  (match Vpfs.write v "/f" "in-flight" with Ok () -> () | Error _ -> Alcotest.fail "w2");
  let new_root = Vpfs.root v in
  Fs.sync fs;
  let v2, status = reopen dev new_root in
  Alcotest.(check bool) "clean with current root" true (status = `Clean);
  Alcotest.(check bool) "current contents" true (Vpfs.read v2 "/f" = Ok "in-flight");
  (match Fs.mount dev with
   | Ok fs3 ->
     (match Vpfs.open_recover ~master_key ~expected_root:stale_root fs3 with
      | Error (Vpfs.Integrity _) -> ()
      | Ok _ -> Alcotest.fail "stale root accepted after clean completion"
      | Error e -> Alcotest.fail (Format.asprintf "%a" Vpfs.pp_error e))
   | Error _ -> Alcotest.fail "remount")

let test_tampered_journal_no_silent_corruption () =
  (* the journal lives on untrusted storage: tampering may cost the
     in-flight update (DoS) but never yields wrong data silently *)
  let dev, root, crashed = crash_scenario 2 in
  Alcotest.(check bool) "crashed" true crashed;
  (match Fs.mount dev with
   | Error _ -> Alcotest.fail "remount"
   | Ok fs2 ->
     (* attacker flips a byte in the journal *)
     (match Fs.read fs2 ".vpfs-journal" with
      | Ok j when String.length j > 0 ->
        let b = Bytes.of_string j in
        Bytes.set b (String.length j - 1)
          (Char.chr (Char.code (Bytes.get b (String.length j - 1)) lxor 1));
        ignore (Fs.write fs2 ".vpfs-journal" (Bytes.to_string b))
      | _ -> Alcotest.fail "journal missing");
     (match Vpfs.open_recover ~master_key ~expected_root:root fs2 with
      | Ok (v, `Clean) ->
        (* recovery ignored the forged journal; the torn file must be
           DETECTED, not silently served *)
        (match Vpfs.read v "/f" with
         | Error (Vpfs.Integrity _) -> ()
         | Ok data -> Alcotest.fail ("silent corruption: " ^ data)
         | Error e -> Alcotest.fail (Format.asprintf "%a" Vpfs.pp_error e))
      | Ok (_, `Recovered) -> Alcotest.fail "recovered from a forged journal!"
      | Error (Vpfs.Integrity _) -> ()
      | Error e -> Alcotest.fail (Format.asprintf "%a" Vpfs.pp_error e)))

let test_replayed_old_journal_rejected () =
  (* attacker snapshots journal+image mid-update, lets the system run on,
     then restores the old image: the pre-root no longer matches *)
  let dev = Block.create ~blocks:1024 in
  let fs = Fs.format dev in
  let v = Vpfs.create ~master_key fs in
  (match Vpfs.write v "/f" "v1" with Ok () -> () | Error _ -> Alcotest.fail "w1");
  Fs.sync fs;
  let old_image = List.init (Block.blocks dev) (Block.snapshot dev) in
  (match Vpfs.write v "/f" "v2" with Ok () -> () | Error _ -> Alcotest.fail "w2");
  let current_root = Vpfs.root v in
  Fs.sync fs;
  List.iteri (fun i s -> Block.rollback dev i s) old_image;
  (match Fs.mount dev with
   | Error _ -> Alcotest.fail "remount"
   | Ok fs2 ->
     (match Vpfs.open_recover ~master_key ~expected_root:current_root fs2 with
      | Error (Vpfs.Integrity _) -> ()
      | Ok _ -> Alcotest.fail "rolled-back image accepted"
      | Error e -> Alcotest.fail (Format.asprintf "%a" Vpfs.pp_error e)))

let test_crash_during_delete () =
  let dev = Block.create ~blocks:1024 in
  let fs = Fs.format dev in
  let v = Vpfs.create ~master_key fs in
  (match Vpfs.write v "/f" "data" with Ok () -> () | Error _ -> Alcotest.fail "w");
  let root = Vpfs.root v in
  Fs.sync fs;
  Fs.crash_after_writes fs 1; (* journal lands, delete + meta lost *)
  (try ignore (Vpfs.delete v "/f") with Fs.Crashed -> ());
  (match Fs.mount dev with
   | Error _ -> Alcotest.fail "remount"
   | Ok fs2 ->
     (match Vpfs.open_recover ~master_key ~expected_root:root fs2 with
      | Ok (v2, `Recovered) ->
        Alcotest.(check bool) "delete rolled forward" false (Vpfs.exists v2 "/f")
      | Ok (_, `Clean) -> Alcotest.fail "expected recovery"
      | Error e -> Alcotest.fail (Format.asprintf "%a" Vpfs.pp_error e)))

let test_fs_dead_after_crash () =
  let dev = Block.create ~blocks:512 in
  let fs = Fs.format dev in
  Fs.crash_after_writes fs 0;
  Alcotest.(check bool) "write raises" true
    (try ignore (Fs.write fs "/x" "data"); false with Fs.Crashed -> true);
  Alcotest.(check bool) "read raises too" true
    (try ignore (Fs.read fs "/x"); false with Fs.Crashed -> true)

let suite =
  [ Alcotest.test_case "crash before journal: old state" `Quick test_crash_before_journal;
    Alcotest.test_case "crash after journal: rolled forward" `Quick
      test_crash_after_journal;
    Alcotest.test_case "crash after data: rolled forward" `Quick test_crash_after_data;
    Alcotest.test_case "crash after meta: idempotent redo" `Quick test_crash_after_meta;
    Alcotest.test_case "clean run recovers to current state" `Quick test_no_crash_is_clean;
    Alcotest.test_case "tampered journal: no silent corruption" `Quick
      test_tampered_journal_no_silent_corruption;
    Alcotest.test_case "replayed old journal+image rejected" `Quick
      test_replayed_old_journal_rejected;
    Alcotest.test_case "crash during delete recovers" `Quick test_crash_during_delete;
    Alcotest.test_case "fs handle dead after crash" `Quick test_fs_dead_after_crash ]
