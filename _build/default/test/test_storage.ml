(* Storage: block device and the legacy inode file system. *)

open Lt_crypto
module Block = Lt_storage.Block
module Fs = Lt_storage.Legacy_fs

let make_fs ?(blocks = 512) () =
  let dev = Block.create ~blocks in
  (dev, Fs.format dev)

let test_block_device () =
  let dev = Block.create ~blocks:8 in
  Block.write dev 3 "hello";
  Alcotest.(check string) "read back (padded)" "hello"
    (String.sub (Block.read dev 3) 0 5);
  Alcotest.(check bool) "oob rejected" true
    (try ignore (Block.read dev 8); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "oversize rejected" true
    (try Block.write dev 0 (String.make 513 'x'); false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "ops counted" 1 (Block.reads dev)

let test_block_corrupt_rollback () =
  let dev = Block.create ~blocks:4 in
  Block.write dev 1 "original";
  let snap = Block.snapshot dev 1 in
  Block.write dev 1 "updated!";
  Block.rollback dev 1 snap;
  Alcotest.(check string) "stale data served" "original"
    (String.sub (Block.read dev 1) 0 8);
  Block.corrupt dev 1 (Drbg.create 3L);
  Alcotest.(check bool) "corruption changed data" true
    (String.sub (Block.read dev 1) 0 8 <> "original")

let test_fs_create_write_read () =
  let _, fs = make_fs () in
  Alcotest.(check bool) "create" true (Fs.create fs "/mail/inbox" = Ok ());
  Alcotest.(check bool) "duplicate rejected" true
    (match Fs.create fs "/mail/inbox" with Error (Fs.Already_exists _) -> true | _ -> false);
  Alcotest.(check bool) "write" true (Fs.write fs "/mail/inbox" "msg1\nmsg2" = Ok ());
  Alcotest.(check (result string Alcotest.reject)) "read" (Ok "msg1\nmsg2")
    (Result.map_error (fun _ -> assert false) (Fs.read fs "/mail/inbox"));
  Alcotest.(check bool) "size" true (Fs.size fs "/mail/inbox" = Ok 9)

let test_fs_multiblock_files () =
  let _, fs = make_fs () in
  let big = String.init 5000 (fun i -> Char.chr (i mod 256)) in
  Alcotest.(check bool) "write big" true (Fs.write fs "/big" big = Ok ());
  (match Fs.read fs "/big" with
   | Ok data -> Alcotest.(check bool) "big roundtrip" true (data = big)
   | Error _ -> Alcotest.fail "read failed");
  (* overwrite with smaller content frees blocks *)
  Alcotest.(check bool) "overwrite" true (Fs.write fs "/big" "tiny" = Ok ());
  Alcotest.(check (result string Alcotest.reject)) "shrunk" (Ok "tiny")
    (Result.map_error (fun _ -> assert false) (Fs.read fs "/big"))

let test_fs_delete_and_list () =
  let _, fs = make_fs () in
  ignore (Fs.write fs "/a" "1");
  ignore (Fs.write fs "/b" "2");
  Alcotest.(check (list string)) "list" [ "/a"; "/b" ] (Fs.list fs);
  Alcotest.(check bool) "delete" true (Fs.delete fs "/a" = Ok ());
  Alcotest.(check bool) "gone" false (Fs.exists fs "/a");
  Alcotest.(check bool) "delete missing" true
    (match Fs.delete fs "/a" with Error (Fs.Not_found _) -> true | _ -> false)

let test_fs_no_space () =
  let _, fs = make_fs ~blocks:100 () in
  (* device has 100 - 97 = 3 data blocks = 1536 bytes *)
  (match Fs.write fs "/big" (String.make 4096 'x') with
   | Error Fs.No_space -> ()
   | _ -> Alcotest.fail "expected no-space");
  Alcotest.(check bool) "small still fits" true (Fs.write fs "/ok" "fits" = Ok ())

let test_fs_persistence () =
  let dev, fs = make_fs () in
  ignore (Fs.write fs "/persist" "survives remount");
  Fs.sync fs;
  (match Fs.mount dev with
   | Ok fs2 ->
     Alcotest.(check (result string Alcotest.reject)) "remounted read"
       (Ok "survives remount")
       (Result.map_error (fun _ -> assert false) (Fs.read fs2 "/persist"));
     (* allocations survive: new writes don't clobber old files *)
     ignore (Fs.write fs2 "/new" (String.make 2000 'y'));
     Alcotest.(check (result string Alcotest.reject)) "old intact"
       (Ok "survives remount")
       (Result.map_error (fun _ -> assert false) (Fs.read fs2 "/persist"))
   | Error e -> Alcotest.fail (Format.asprintf "%a" Fs.pp_error e))

let test_fs_mount_bad_device () =
  let dev = Block.create ~blocks:512 in
  (match Fs.mount dev with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unformatted device mounted")

let test_fs_evil_corrupt () =
  let _, fs = make_fs () in
  ignore (Fs.write fs "/f" "important data here");
  Fs.set_evil fs (Fs.Corrupt_reads (Drbg.create 9L));
  (match Fs.read fs "/f" with
   | Ok data -> Alcotest.(check bool) "data corrupted" true (data <> "important data here")
   | Error _ -> Alcotest.fail "read failed");
  Fs.set_evil fs Fs.Honest;
  Alcotest.(check (result string Alcotest.reject)) "honest again"
    (Ok "important data here")
    (Result.map_error (fun _ -> assert false) (Fs.read fs "/f"))

let test_fs_evil_stale () =
  let _, fs = make_fs () in
  ignore (Fs.write fs "/f" "version-1");
  ignore (Fs.write fs "/f" "version-2");
  Fs.set_evil fs Fs.Serve_stale;
  Alcotest.(check (result string Alcotest.reject)) "stale version served"
    (Ok "version-1")
    (Result.map_error (fun _ -> assert false) (Fs.read fs "/f"))

let test_fs_observes_writes () =
  let _, fs = make_fs () in
  ignore (Fs.write fs "/f" "PLAINTEXT-SECRET");
  Alcotest.(check bool) "compromised fs saw the secret" true
    (Fs.observed_contains fs ~needle:"PLAINTEXT-SECRET")

let prop_fs_roundtrip =
  QCheck.Test.make ~name:"legacy fs: write/read roundtrip" ~count:100
    QCheck.(pair (string_of_size (Gen.int_range 0 3000)) small_string)
    (fun (data, name) ->
      let _, fs = make_fs () in
      let path = "/" ^ String.map (fun c -> if c = '\000' then '_' else c) name in
      match Fs.write fs path data with
      | Ok () -> Fs.read fs path = Ok data
      | Error _ -> false)

let suite =
  [ Alcotest.test_case "block device basics" `Quick test_block_device;
    Alcotest.test_case "block corrupt & rollback" `Quick test_block_corrupt_rollback;
    Alcotest.test_case "fs create/write/read" `Quick test_fs_create_write_read;
    Alcotest.test_case "fs multi-block files" `Quick test_fs_multiblock_files;
    Alcotest.test_case "fs delete & list" `Quick test_fs_delete_and_list;
    Alcotest.test_case "fs out of space" `Quick test_fs_no_space;
    Alcotest.test_case "fs persistence across mount" `Quick test_fs_persistence;
    Alcotest.test_case "fs rejects unformatted device" `Quick test_fs_mount_bad_device;
    Alcotest.test_case "evil fs corrupts reads" `Quick test_fs_evil_corrupt;
    Alcotest.test_case "evil fs serves stale data" `Quick test_fs_evil_stale;
    Alcotest.test_case "fs transcript records plaintext" `Quick test_fs_observes_writes;
    QCheck_alcotest.to_alcotest prop_fs_roundtrip ]
