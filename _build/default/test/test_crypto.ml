(* Crypto substrate: known-answer vectors, roundtrips and qcheck laws. *)

open Lt_crypto

let hex = Sha256.hex

let test_sha256_vectors () =
  let check msg expected = Alcotest.(check string) msg expected (hex (Sha256.digest msg)) in
  Alcotest.(check string) "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (hex (Sha256.digest ""));
  check "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
  check "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"

let test_sha256_million_a () =
  Alcotest.(check string) "10^6 x a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (hex (Sha256.digest (String.make 1_000_000 'a')))

let test_sha256_incremental () =
  (* feeding in arbitrary chunk sizes equals one-shot *)
  let msg = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let expected = Sha256.digest msg in
  List.iter
    (fun chunk ->
      let ctx = Sha256.init () in
      let pos = ref 0 in
      while !pos < String.length msg do
        let n = min chunk (String.length msg - !pos) in
        Sha256.feed ctx (String.sub msg !pos n);
        pos := !pos + n
      done;
      Alcotest.(check string)
        (Printf.sprintf "chunk size %d" chunk)
        (hex expected)
        (hex (Sha256.finalize ctx)))
    [ 1; 3; 63; 64; 65; 127; 999 ]

let test_hmac_rfc4231 () =
  (* RFC 4231 test cases 1, 2 and 6 *)
  Alcotest.(check string) "tc1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (hex (Hmac.mac ~key:(String.make 20 '\x0b') "Hi There"));
  Alcotest.(check string) "tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (hex (Hmac.mac ~key:"Jefe" "what do ya want for nothing?"));
  Alcotest.(check string) "tc6 (long key)"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (hex
       (Hmac.mac
          ~key:(String.make 131 '\xaa')
          "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_hmac_verify () =
  let tag = Hmac.mac ~key:"k" "msg" in
  Alcotest.(check bool) "good tag" true (Hmac.verify ~key:"k" ~tag "msg");
  Alcotest.(check bool) "bad msg" false (Hmac.verify ~key:"k" ~tag "msg2");
  Alcotest.(check bool) "bad key" false (Hmac.verify ~key:"k2" ~tag "msg")

let test_hkdf_lengths () =
  let prk = Hkdf.extract ~salt:"salt" "secret" in
  List.iter
    (fun n -> Alcotest.(check int) (Printf.sprintf "%d bytes" n) n
        (String.length (Hkdf.expand ~prk ~info:"info" n)))
    [ 0; 1; 16; 32; 33; 64; 100 ];
  (* distinct infos give distinct keys *)
  Alcotest.(check bool) "domain separation" false
    (Hkdf.expand ~prk ~info:"a" 32 = Hkdf.expand ~prk ~info:"b" 32)

let test_ct_equal () =
  Alcotest.(check bool) "equal" true (Ct.equal "abcd" "abcd");
  Alcotest.(check bool) "different" false (Ct.equal "abcd" "abce");
  Alcotest.(check bool) "length mismatch" false (Ct.equal "abc" "abcd");
  Alcotest.(check int) "select true" 7 (Ct.select true 7 9);
  Alcotest.(check int) "select false" 9 (Ct.select false 7 9)

let test_speck_block_roundtrip () =
  let key = Speck.key_of_string "0123456789abcdef" in
  let rng = Drbg.create 1L in
  for _ = 1 to 100 do
    let x = Drbg.int rng 0x40000000 and y = Drbg.int rng 0x40000000 in
    let c = Speck.encrypt_block key (x, y) in
    Alcotest.(check (pair int int)) "roundtrip" (x, y) (Speck.decrypt_block key c);
    Alcotest.(check bool) "actually encrypts" true (c <> (x, y))
  done

let test_speck_official_vector () =
  (* SPECK64/128 test vector from the designers' paper (Beaulieu et al.):
     key 1b1a1918 13121110 0b0a0908 03020100,
     plaintext 3b726574 7475432d -> ciphertext 8c6fa548 454e028b *)
  let key =
    Speck.key_of_string
      "\x1b\x1a\x19\x18\x13\x12\x11\x10\x0b\x0a\x09\x08\x03\x02\x01\x00"
  in
  Alcotest.(check (pair int int)) "published vector" (0x8c6fa548, 0x454e028b)
    (Speck.encrypt_block key (0x3b726574, 0x7475432d))

let test_speck_ctr_involution () =
  let key = Speck.key_of_string (String.make 16 'K') in
  let msg = "attack at dawn, bring lateral thinking" in
  let ct = Speck.ctr ~key ~nonce:"NONCE123" msg in
  Alcotest.(check bool) "ciphertext differs" true (ct <> msg);
  Alcotest.(check string) "decrypts" msg (Speck.ctr ~key ~nonce:"NONCE123" ct)

let test_aead_roundtrip_and_tamper () =
  let key = String.make 16 'k' in
  let sealed = Speck.Aead.encrypt ~key ~nonce:"n0n50123" ~ad:"header" "payload" in
  (match Speck.Aead.decrypt ~key ~ad:"header" sealed with
   | Some p -> Alcotest.(check string) "roundtrip" "payload" p
   | None -> Alcotest.fail "decrypt failed");
  Alcotest.(check bool) "wrong ad rejected" true
    (Speck.Aead.decrypt ~key ~ad:"other" sealed = None);
  Alcotest.(check bool) "wrong key rejected" true
    (Speck.Aead.decrypt ~key:(String.make 16 'x') ~ad:"header" sealed = None);
  let tampered = { sealed with Speck.Aead.ciphertext = "garbage" ^ sealed.ciphertext } in
  Alcotest.(check bool) "tampered rejected" true
    (Speck.Aead.decrypt ~key ~ad:"header" tampered = None)

let test_aead_wire () =
  let key = String.make 16 'k' in
  let sealed = Speck.Aead.encrypt ~key ~nonce:"12345678" ~ad:"" "wire me" in
  match Speck.Aead.of_wire (Speck.Aead.to_wire sealed) with
  | None -> Alcotest.fail "of_wire failed"
  | Some s ->
    Alcotest.(check bool) "wire roundtrip decrypts" true
      (Speck.Aead.decrypt ~key ~ad:"" s = Some "wire me");
    Alcotest.(check bool) "truncated wire rejected" true
      (Speck.Aead.of_wire (String.sub (Speck.Aead.to_wire sealed) 0 10) = None)

let test_drbg_determinism () =
  let a = Drbg.create 99L and b = Drbg.create 99L in
  Alcotest.(check string) "same seed same stream" (Drbg.bytes a 64) (Drbg.bytes b 64);
  let c = Drbg.create 100L in
  Alcotest.(check bool) "different seed different stream" true
    (Drbg.bytes (Drbg.copy c) 64 <> Drbg.bytes (Drbg.create 99L) 64);
  let d = Drbg.create 5L in
  let s1 = Drbg.split d in
  Alcotest.(check bool) "split streams differ" true (Drbg.bytes s1 32 <> Drbg.bytes d 32)

let test_bignum_basic () =
  let open Bignum in
  Alcotest.(check bool) "zero is zero" true (is_zero zero);
  Alcotest.(check (option int)) "roundtrip int" (Some 123456789)
    (to_int (of_int 123456789));
  Alcotest.(check int) "compare" (-1) (compare (of_int 5) (of_int 6));
  Alcotest.(check (option int)) "add" (Some 11) (to_int (add (of_int 5) (of_int 6)));
  Alcotest.(check (option int)) "sub" (Some 1) (to_int (sub (of_int 6) (of_int 5)));
  Alcotest.(check (option int)) "mul" (Some 30) (to_int (mul (of_int 5) (of_int 6)));
  Alcotest.(check bool) "sub underflow rejected" true
    (try ignore (sub (of_int 5) (of_int 6)); false with Invalid_argument _ -> true);
  let q, r = divmod (of_int 17) (of_int 5) in
  Alcotest.(check (pair (option int) (option int))) "divmod" (Some 3, Some 2)
    (to_int q, to_int r)

let test_bignum_bytes_roundtrip () =
  let v = Bignum.of_bytes_be "\x01\x02\x03\x04\x05" in
  Alcotest.(check (option int)) "of_bytes_be" (Some 0x0102030405) (Bignum.to_int v);
  Alcotest.(check string) "to_bytes_be pads" "\x00\x00\x00\x01\x02\x03\x04\x05"
    (Bignum.to_bytes_be ~len:8 v)

let test_bignum_modpow_small () =
  let open Bignum in
  let m = modpow ~base:(of_int 4) ~exp:(of_int 13) ~modulus:(of_int 497) in
  Alcotest.(check (option int)) "4^13 mod 497" (Some 445) (to_int m);
  Alcotest.(check (option int)) "x^0 = 1" (Some 1)
    (to_int (modpow ~base:(of_int 7) ~exp:zero ~modulus:(of_int 100)))

let test_bignum_to_bytes_edge () =
  let open Bignum in
  Alcotest.(check string) "zero encodes as zeros" "\x00\x00\x00"
    (to_bytes_be ~len:3 zero);
  Alcotest.(check bool) "overflow rejected" true
    (try ignore (to_bytes_be ~len:1 (of_int 256)); false
     with Invalid_argument _ -> true);
  Alcotest.(check string) "exact fit" "\xff" (to_bytes_be ~len:1 (of_int 255));
  (* leading zero bytes are not significant on parse *)
  Alcotest.(check bool) "leading zeros ignored" true
    (equal (of_bytes_be "\x00\x00\x2a") (of_int 42))

let test_bignum_modinv () =
  let open Bignum in
  (match modinv (of_int 3) (of_int 11) with
   | Some x -> Alcotest.(check (option int)) "3^-1 mod 11" (Some 4) (to_int x)
   | None -> Alcotest.fail "inverse exists");
  Alcotest.(check bool) "non-coprime has no inverse" true
    (modinv (of_int 4) (of_int 8) = None)

(* qcheck properties *)

let bignum_pair_gen =
  QCheck.Gen.(
    map2
      (fun a b -> (a, b))
      (map (fun s -> Bignum.of_bytes_be s) (string_size (int_range 1 40)))
      (map (fun s -> Bignum.of_bytes_be s) (string_size (int_range 1 20))))

let prop_divmod_law =
  QCheck.Test.make ~name:"bignum: a = q*b + r, r < b" ~count:300
    (QCheck.make bignum_pair_gen) (fun (a, b) ->
      QCheck.assume (not (Bignum.is_zero b));
      let q, r = Bignum.divmod a b in
      Bignum.equal a (Bignum.add (Bignum.mul q b) r) && Bignum.compare r b < 0)

let prop_add_sub =
  QCheck.Test.make ~name:"bignum: (a+b)-b = a" ~count:300
    (QCheck.make bignum_pair_gen) (fun (a, b) ->
      Bignum.equal a (Bignum.sub (Bignum.add a b) b))

let prop_mul_commutative =
  QCheck.Test.make ~name:"bignum: a*b = b*a" ~count:300
    (QCheck.make bignum_pair_gen) (fun (a, b) ->
      Bignum.equal (Bignum.mul a b) (Bignum.mul b a))

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"bignum: bytes roundtrip" ~count:300
    QCheck.(string_of_size (Gen.int_range 0 48))
    (fun s ->
      let v = Bignum.of_bytes_be s in
      let len = max 1 (String.length s) in
      Bignum.equal v (Bignum.of_bytes_be (Bignum.to_bytes_be ~len v)))

let prop_aead_roundtrip =
  QCheck.Test.make ~name:"aead: decrypt . encrypt = id" ~count:200
    QCheck.(pair (string_of_size (Gen.int_range 0 200)) string)
    (fun (msg, ad) ->
      let key = String.make 16 'q' in
      let sealed = Speck.Aead.encrypt ~key ~nonce:"abcdefgh" ~ad msg in
      Speck.Aead.decrypt ~key ~ad sealed = Some msg)

let prop_sha_avalanche =
  QCheck.Test.make ~name:"sha256: no collisions on distinct short inputs" ~count:300
    QCheck.(pair small_string small_string)
    (fun (a, b) -> a = b || Sha256.digest a <> Sha256.digest b)

let test_rsa_sign_verify () =
  let rng = Drbg.create 7L in
  let key = Rsa.generate ~bits:512 rng in
  let signature = Rsa.sign key "attestation evidence" in
  Alcotest.(check bool) "verify ok" true
    (Rsa.verify key.pub ~signature "attestation evidence");
  Alcotest.(check bool) "wrong message fails" false
    (Rsa.verify key.pub ~signature "forged evidence");
  Alcotest.(check bool) "wrong key fails" false
    (Rsa.verify (Rsa.generate ~bits:512 rng).pub ~signature "attestation evidence");
  Alcotest.(check bool) "mangled signature fails" false
    (Rsa.verify key.pub ~signature:(String.make (String.length signature) '\x00')
       "attestation evidence")

let test_rsa_encrypt_decrypt () =
  let rng = Drbg.create 8L in
  let key = Rsa.generate ~bits:512 rng in
  let ct = Rsa.encrypt rng key.pub "session-key-0123" in
  Alcotest.(check (option string)) "roundtrip" (Some "session-key-0123")
    (Rsa.decrypt key ct);
  let other = Rsa.generate ~bits:512 rng in
  Alcotest.(check bool) "wrong key garbles or rejects" true
    (Rsa.decrypt other ct <> Some "session-key-0123")

let test_rsa_public_wire () =
  let rng = Drbg.create 9L in
  let key = Rsa.generate ~bits:256 rng in
  match Rsa.public_of_string (Rsa.public_to_string key.pub) with
  | None -> Alcotest.fail "public wire roundtrip failed"
  | Some pub ->
    Alcotest.(check bool) "fingerprints match" true
      (Rsa.fingerprint pub = Rsa.fingerprint key.pub);
    Alcotest.(check bool) "garbage rejected" true
      (Rsa.public_of_string "notakey" = None)

let test_miller_rabin () =
  let rng = Drbg.create 10L in
  List.iter
    (fun (n, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "%d prime?" n)
        expected
        (Rsa.is_probable_prime rng (Bignum.of_int n)))
    [ (2, true); (3, true); (4, false); (17, true); (561, false) (* Carmichael *);
      (7919, true); (7917, false); (104729, true); (104730, false) ]

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_divmod_law; prop_add_sub; prop_mul_commutative; prop_bytes_roundtrip;
      prop_aead_roundtrip; prop_sha_avalanche ]

let suite =
  [ Alcotest.test_case "sha256 FIPS vectors" `Quick test_sha256_vectors;
    Alcotest.test_case "sha256 million 'a'" `Slow test_sha256_million_a;
    Alcotest.test_case "sha256 incremental = one-shot" `Quick test_sha256_incremental;
    Alcotest.test_case "hmac RFC 4231 vectors" `Quick test_hmac_rfc4231;
    Alcotest.test_case "hmac verify" `Quick test_hmac_verify;
    Alcotest.test_case "hkdf lengths & separation" `Quick test_hkdf_lengths;
    Alcotest.test_case "constant-time compare" `Quick test_ct_equal;
    Alcotest.test_case "speck block roundtrip" `Quick test_speck_block_roundtrip;
    Alcotest.test_case "speck official test vector" `Quick test_speck_official_vector;
    Alcotest.test_case "speck ctr involution" `Quick test_speck_ctr_involution;
    Alcotest.test_case "aead roundtrip & tamper detection" `Quick test_aead_roundtrip_and_tamper;
    Alcotest.test_case "aead wire format" `Quick test_aead_wire;
    Alcotest.test_case "drbg determinism" `Quick test_drbg_determinism;
    Alcotest.test_case "bignum basics" `Quick test_bignum_basic;
    Alcotest.test_case "bignum byte conversion" `Quick test_bignum_bytes_roundtrip;
    Alcotest.test_case "bignum modpow" `Quick test_bignum_modpow_small;
    Alcotest.test_case "bignum modinv" `Quick test_bignum_modinv;
    Alcotest.test_case "bignum byte-encoding edges" `Quick test_bignum_to_bytes_edge;
    Alcotest.test_case "rsa sign/verify" `Quick test_rsa_sign_verify;
    Alcotest.test_case "rsa encrypt/decrypt" `Quick test_rsa_encrypt_decrypt;
    Alcotest.test_case "rsa public key wire format" `Quick test_rsa_public_wire;
    Alcotest.test_case "miller-rabin classifications" `Quick test_miller_rabin ]
  @ qcheck_tests
