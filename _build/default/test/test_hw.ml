(* Simulated hardware: memory, MMU, IOMMU, bus, cache, fuses, tamper. *)

open Lt_hw

let make_mem () =
  Phys_mem.create
    [ { Phys_mem.name = "rom"; base = 0; size = 4096; on_chip = true; writable = false };
      { Phys_mem.name = "sram"; base = 4096; size = 4096; on_chip = true; writable = true };
      { Phys_mem.name = "dram"; base = 8192; size = 65536; on_chip = false; writable = true } ]

let test_mem_read_write () =
  let mem = make_mem () in
  Phys_mem.cpu_write mem ~addr:8192 "hello";
  Alcotest.(check string) "read back" "hello" (Phys_mem.cpu_read mem ~addr:8192 ~len:5);
  Alcotest.(check string) "zero init" "\000\000" (Phys_mem.cpu_read mem ~addr:9000 ~len:2)

let test_mem_rom_protect () =
  let mem = make_mem () in
  Alcotest.check_raises "rom write" (Phys_mem.Rom_write 0) (fun () ->
      Phys_mem.cpu_write mem ~addr:0 "x");
  (* manufacture-time write bypasses *)
  Phys_mem.manufacture_write mem ~addr:0 "BOOT";
  Alcotest.(check string) "rom readable" "BOOT" (Phys_mem.cpu_read mem ~addr:0 ~len:4)

let test_mem_bad_address () =
  let mem = make_mem () in
  Alcotest.(check bool) "oob read raises" true
    (try ignore (Phys_mem.cpu_read mem ~addr:999999 ~len:4); false
     with Phys_mem.Bad_address _ -> true)

let test_mee_transparency () =
  let mem = make_mem () in
  Phys_mem.install_mee mem ~base:8192 ~size:4096 ~key:"enclave-key";
  Phys_mem.cpu_write mem ~addr:8192 "plaintext-secret";
  Alcotest.(check string) "cpu sees plaintext" "plaintext-secret"
    (Phys_mem.cpu_read mem ~addr:8192 ~len:16);
  (* physical path sees ciphertext *)
  let raw = Phys_mem.phys_read mem ~addr:8192 ~len:16 in
  Alcotest.(check bool) "phys sees ciphertext" true (raw <> "plaintext-secret")

let test_mee_integrity () =
  let mem = make_mem () in
  Phys_mem.install_mee mem ~base:8192 ~size:4096 ~key:"enclave-key";
  Phys_mem.cpu_write mem ~addr:8192 "data under mac protection and more padding...";
  (* attacker patches ciphertext; next CPU read must detect it *)
  Phys_mem.phys_write mem ~addr:8200 "XX";
  Alcotest.(check bool) "integrity violation detected" true
    (try ignore (Phys_mem.cpu_read mem ~addr:8192 ~len:16); false
     with Phys_mem.Integrity_violation _ -> true)

let test_mee_unaligned_rejected () =
  let mem = make_mem () in
  Alcotest.(check bool) "unaligned rejected" true
    (try Phys_mem.install_mee mem ~base:8193 ~size:64 ~key:"k"; false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "on-chip rejected" true
    (try Phys_mem.install_mee mem ~base:4096 ~size:64 ~key:"k"; false
     with Invalid_argument _ -> true)

let test_mmu_translate () =
  let mmu = Mmu.create () in
  Mmu.map mmu ~vpage:2 ~ppage:10 Mmu.rw;
  (match Mmu.translate mmu ~vaddr:(2 * 4096 + 42) Mmu.Read with
   | Ok p -> Alcotest.(check int) "translation" (10 * 4096 + 42) p
   | Error _ -> Alcotest.fail "should translate");
  Alcotest.(check bool) "unmapped faults" true
    (match Mmu.translate mmu ~vaddr:0 Mmu.Read with Error (Mmu.Unmapped _) -> true | _ -> false);
  Alcotest.(check bool) "exec denied on rw" true
    (match Mmu.translate mmu ~vaddr:(2 * 4096) Mmu.Execute with
     | Error (Mmu.Permission _) -> true
     | _ -> false);
  Mmu.unmap mmu ~vpage:2;
  Alcotest.(check bool) "unmap works" true
    (match Mmu.translate mmu ~vaddr:(2 * 4096) Mmu.Read with Error _ -> true | Ok _ -> false)

let test_mmu_mappings_listing () =
  let mmu = Mmu.create () in
  Mmu.map mmu ~vpage:1 ~ppage:5 Mmu.ro;
  Mmu.map mmu ~vpage:2 ~ppage:6 Mmu.rw;
  Alcotest.(check int) "two mappings" 2 (List.length (Mmu.mappings mmu));
  Alcotest.(check (list int)) "ppages" [ 5; 6 ] (Mmu.mapped_ppages mmu)

let test_iommu () =
  let iommu = Iommu.create ~enabled:true in
  Alcotest.(check bool) "default deny" false
    (Iommu.check iommu ~device:"nic" ~paddr:8192 ~write:true);
  Iommu.grant iommu ~device:"nic" ~ppage:2 ~writable:false;
  Alcotest.(check bool) "read granted" true
    (Iommu.check iommu ~device:"nic" ~paddr:(2 * 4096) ~write:false);
  Alcotest.(check bool) "write still denied" false
    (Iommu.check iommu ~device:"nic" ~paddr:(2 * 4096) ~write:true);
  Iommu.revoke iommu ~device:"nic" ~ppage:2;
  Alcotest.(check bool) "revoked" false
    (Iommu.check iommu ~device:"nic" ~paddr:(2 * 4096) ~write:false);
  Iommu.set_enabled iommu false;
  Alcotest.(check bool) "disabled iommu allows all (legacy platform)" true
    (Iommu.check iommu ~device:"nic" ~paddr:0 ~write:true)

let test_bus_secure_ranges () =
  let mem = make_mem () in
  let iommu = Iommu.create ~enabled:true in
  let bus = Bus.create mem iommu (Clock.create ()) in
  Bus.mark_secure bus ~base:8192 ~size:4096;
  (* normal world denied *)
  (match Bus.read bus ~requester:(Bus.Cpu { secure = false }) ~addr:8192 ~len:4 with
   | Error (Bus.Secure_only _) -> ()
   | _ -> Alcotest.fail "normal world should be denied");
  (* secure world allowed *)
  (match Bus.write bus ~requester:(Bus.Cpu { secure = true }) ~addr:8192 "key!" with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "secure world should write");
  (match Bus.read bus ~requester:(Bus.Cpu { secure = true }) ~addr:8192 ~len:4 with
   | Ok d -> Alcotest.(check string) "secure read" "key!" d
   | Error _ -> Alcotest.fail "secure world should read");
  (* devices are never secure *)
  (match Bus.read bus ~requester:(Bus.Device "nic") ~addr:8192 ~len:4 with
   | Error (Bus.Secure_only _) -> ()
   | _ -> Alcotest.fail "device must be denied on secure range")

let test_bus_dma_iommu () =
  let mem = make_mem () in
  let iommu = Iommu.create ~enabled:true in
  let bus = Bus.create mem iommu (Clock.create ()) in
  (match Bus.write bus ~requester:(Bus.Device "nic") ~addr:8192 "dma!" with
   | Error (Bus.Dma_blocked _) -> ()
   | _ -> Alcotest.fail "unauthorized DMA must be blocked");
  Iommu.grant iommu ~device:"nic" ~ppage:2 ~writable:true;
  (match Bus.write bus ~requester:(Bus.Device "nic") ~addr:8192 "dma!" with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "granted DMA should pass");
  Alcotest.(check bool) "transactions counted" true (Bus.transactions bus > 0)

let test_bus_charges_time () =
  let mem = make_mem () in
  let clock = Clock.create () in
  let bus = Bus.create mem (Iommu.create ~enabled:false) clock in
  let t0 = Clock.now clock in
  ignore (Bus.write bus ~requester:(Bus.Cpu { secure = false }) ~addr:8192 (String.make 256 'x'));
  Alcotest.(check bool) "time advanced" true (Clock.now clock > t0)

let test_cache_prime_probe () =
  let cache = Cache.create ~sets:8 ~ways:2 in
  (* attacker primes set 0 *)
  ignore (Cache.access cache ~domain:"attacker" ~addr:0);
  ignore (Cache.access cache ~domain:"attacker" ~addr:(8 * 64));
  Alcotest.(check bool) "primed lines resident" true
    (Cache.probe cache ~domain:"attacker" ~addr:0);
  (* victim touches the same set twice, evicting both attacker lines *)
  ignore (Cache.access cache ~domain:"victim" ~addr:(16 * 64));
  ignore (Cache.access cache ~domain:"victim" ~addr:(24 * 64));
  Alcotest.(check bool) "attacker line evicted (leak!)" false
    (Cache.probe cache ~domain:"attacker" ~addr:0
     && Cache.probe cache ~domain:"attacker" ~addr:(8 * 64))

let test_cache_partitioned_no_leak () =
  let cache = Cache.create ~sets:8 ~ways:2 in
  Cache.partition cache ~domain:"attacker" ~lo:0 ~hi:3;
  Cache.partition cache ~domain:"victim" ~lo:4 ~hi:7;
  ignore (Cache.access cache ~domain:"attacker" ~addr:0);
  ignore (Cache.access cache ~domain:"attacker" ~addr:(8 * 64));
  (* victim hammers every address: cannot evict attacker lines *)
  for i = 0 to 63 do
    ignore (Cache.access cache ~domain:"victim" ~addr:(i * 64))
  done;
  Alcotest.(check bool) "partitioned: attacker lines survive" true
    (Cache.probe cache ~domain:"attacker" ~addr:0
     && Cache.probe cache ~domain:"attacker" ~addr:(8 * 64));
  (* victim confined to its sets *)
  Alcotest.(check bool) "victim resident only in its partition" true
    (List.for_all (fun s -> s >= 4 && s <= 7) (Cache.resident_sets cache ~domain:"victim"))

let test_cache_lru () =
  let cache = Cache.create ~sets:1 ~ways:2 in
  ignore (Cache.access cache ~domain:"d" ~addr:0);
  ignore (Cache.access cache ~domain:"d" ~addr:64);
  ignore (Cache.access cache ~domain:"d" ~addr:0);   (* refresh line 0 *)
  ignore (Cache.access cache ~domain:"d" ~addr:128); (* evicts LRU = 64 *)
  Alcotest.(check bool) "line 0 kept" true (Cache.probe cache ~domain:"d" ~addr:0);
  Alcotest.(check bool) "line 64 evicted" false (Cache.probe cache ~domain:"d" ~addr:64)

let test_fuses () =
  let fuses = Fuse.create () in
  Fuse.program fuses ~name:"device-key" ~visibility:Fuse.Secure_only "K3Y";
  Fuse.program fuses ~name:"serial" ~visibility:Fuse.Public "SN-1";
  Alcotest.(check (option string)) "secure read" (Some "K3Y")
    (Fuse.read fuses ~name:"device-key" ~secure:true);
  Alcotest.(check (option string)) "normal world denied" None
    (Fuse.read fuses ~name:"device-key" ~secure:false);
  Alcotest.(check (option string)) "public fuse open" (Some "SN-1")
    (Fuse.read fuses ~name:"serial" ~secure:false);
  Alcotest.(check bool) "write-once" true
    (try Fuse.program fuses ~name:"serial" ~visibility:Fuse.Public "SN-2"; false
     with Invalid_argument _ -> true)

let test_tamper_scan_and_patch () =
  let mem = make_mem () in
  let tamper = Tamper.create mem in
  Phys_mem.cpu_write mem ~addr:10000 "TOPSECRET";
  Alcotest.(check (list int)) "secret found in plain dram" [ 10000 ]
    (Tamper.scan tamper ~needle:"TOPSECRET");
  Tamper.patch tamper ~addr:10000 "XOPSECRET";
  Alcotest.(check string) "patch visible to cpu" "XOPSECRET"
    (Phys_mem.cpu_read mem ~addr:10000 ~len:9);
  Tamper.flip_bit tamper ~addr:10000 ~bit:0;
  Alcotest.(check bool) "bit flipped" true
    (Phys_mem.cpu_read mem ~addr:10000 ~len:1 <> "X");
  (* on-chip sram is out of reach *)
  Alcotest.(check bool) "sram unreachable" true
    (try ignore (Tamper.dump tamper ~addr:4096 ~len:4); false
     with Phys_mem.Bad_address _ -> true)

let test_tamper_blind_to_mee () =
  let mem = make_mem () in
  Phys_mem.install_mee mem ~base:8192 ~size:4096 ~key:"k";
  Phys_mem.cpu_write mem ~addr:8192 "TOPSECRET";
  let tamper = Tamper.create mem in
  Alcotest.(check (list int)) "secret invisible under mee" []
    (Tamper.scan tamper ~needle:"TOPSECRET")

let test_machine_assembly () =
  let m = Machine.create ~dram_pages:64 () in
  Machine.load_rom m ~off:0 "CRTM";
  Alcotest.(check string) "rom contents" "CRTM" (Machine.rom_contents m ~off:0 ~len:4);
  Alcotest.(check int) "frames available" 64 (Frame_alloc.free_count m.Machine.dram_frames);
  (match Frame_alloc.alloc m.Machine.dram_frames with
   | Some p -> Alcotest.(check bool) "frame in dram" true (p * Mmu.page_size >= m.Machine.dram_base)
   | None -> Alcotest.fail "alloc failed")

let test_frame_alloc () =
  let fa = Frame_alloc.create ~first_page:10 ~pages:4 in
  (match Frame_alloc.alloc_n fa 4 with
   | Some frames -> Alcotest.(check int) "got 4" 4 (List.length frames)
   | None -> Alcotest.fail "should allocate");
  Alcotest.(check (option int)) "exhausted" None (Frame_alloc.alloc fa);
  Frame_alloc.free fa 10;
  Alcotest.(check int) "one free" 1 (Frame_alloc.free_count fa);
  Alcotest.(check bool) "double free rejected" true
    (try Frame_alloc.free fa 10; false with Invalid_argument _ -> true);
  Alcotest.(check bool) "foreign frame rejected" true
    (try Frame_alloc.free fa 999; false with Invalid_argument _ -> true)

let test_clock () =
  let c = Clock.create () in
  Clock.advance c 10;
  Alcotest.(check int) "advance" 10 (Clock.now c);
  let (), d = Clock.elapsed c (fun () -> Clock.advance c 5) in
  Alcotest.(check int) "elapsed" 5 d

let prop_mee_roundtrip =
  QCheck.Test.make ~name:"mee: cpu write/read roundtrip at any offset" ~count:100
    QCheck.(pair (int_range 0 4000) (string_of_size (Gen.int_range 1 90)))
    (fun (off, data) ->
      QCheck.assume (off + String.length data <= 4096);
      let mem = make_mem () in
      Phys_mem.install_mee mem ~base:8192 ~size:4096 ~key:"k";
      Phys_mem.cpu_write mem ~addr:(8192 + off) data;
      Phys_mem.cpu_read mem ~addr:(8192 + off) ~len:(String.length data) = data)

let suite =
  [ Alcotest.test_case "phys mem read/write" `Quick test_mem_read_write;
    Alcotest.test_case "rom write protection" `Quick test_mem_rom_protect;
    Alcotest.test_case "bad address" `Quick test_mem_bad_address;
    Alcotest.test_case "mee: cpu plaintext, phys ciphertext" `Quick test_mee_transparency;
    Alcotest.test_case "mee: tamper detected by mac" `Quick test_mee_integrity;
    Alcotest.test_case "mee: alignment and placement checks" `Quick test_mee_unaligned_rejected;
    Alcotest.test_case "mmu translation and perms" `Quick test_mmu_translate;
    Alcotest.test_case "mmu mapping listings" `Quick test_mmu_mappings_listing;
    Alcotest.test_case "iommu grant/revoke/disable" `Quick test_iommu;
    Alcotest.test_case "bus secure ranges (NS bit)" `Quick test_bus_secure_ranges;
    Alcotest.test_case "bus DMA through iommu" `Quick test_bus_dma_iommu;
    Alcotest.test_case "bus charges simulated time" `Quick test_bus_charges_time;
    Alcotest.test_case "cache prime+probe leaks" `Quick test_cache_prime_probe;
    Alcotest.test_case "cache partitioning stops leak" `Quick test_cache_partitioned_no_leak;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru;
    Alcotest.test_case "fuse bank visibility" `Quick test_fuses;
    Alcotest.test_case "tamper scan/patch on plain dram" `Quick test_tamper_scan_and_patch;
    Alcotest.test_case "tamper blind to mee ciphertext" `Quick test_tamper_blind_to_mee;
    Alcotest.test_case "machine assembly" `Quick test_machine_assembly;
    Alcotest.test_case "frame allocator" `Quick test_frame_alloc;
    Alcotest.test_case "clock" `Quick test_clock;
    QCheck_alcotest.to_alcotest prop_mee_roundtrip ]
