(* Deployment: the horizontal mail slice running across real substrates,
   with routed cross-substrate calls and manifest enforcement. *)

open Lt_crypto
open Lateral

(* substrates: a microkernel, SGX and a SEP on separate machines *)
let make_substrates () =
  let rng = Drbg.create 808L in
  let ca = Rsa.generate ~bits:512 rng in
  let m1 = Lt_hw.Machine.create ~dram_pages:512 () in
  let mk, _ =
    Substrate_kernel.make m1 (Lt_kernel.Sched.Round_robin { quantum = 500 }) ()
  in
  let m2 = Lt_hw.Machine.create ~dram_pages:128 () in
  let sgx, _ = Substrate_sgx.make m2 rng ~ca_name:"intel" ~ca_key:ca () in
  let m3 = Lt_hw.Machine.create ~dram_pages:64 () in
  let sep, _, sep_uid = Substrate_sep.make m3 rng ~device_id:"sep-1" ~private_pages:4 in
  (ca, sep_uid, [ ("microkernel", mk); ("sgx", sgx); ("sep", sep) ])

(* a three-component slice: ui -> tls -> keystore, renderer isolated *)
let slice () =
  [ ( Manifest.v ~name:"ui" ~provides:[ "show" ]
        ~connects_to:[ Manifest.conn "tls" "transmit" ]
        ~network_facing:true ~substrate:"microkernel" (),
      fun ctx ~service:_ req ->
        match ctx.Deploy.call_out ~target:"tls" ~service:"transmit" req with
        | Ok r -> "ui:" ^ r
        | Error e -> "ui-error:" ^ e );
    ( Manifest.v ~name:"tls" ~provides:[ "transmit" ]
        ~connects_to:[ Manifest.conn "keystore" "sign" ]
        ~substrate:"sgx" (),
      fun ctx ~service:_ req ->
        match ctx.Deploy.call_out ~target:"keystore" ~service:"sign" req with
        | Ok signature -> Printf.sprintf "sent(%s,sig=%s)" req signature
        | Error e -> "tls-error:" ^ e );
    ( Manifest.v ~name:"keystore" ~provides:[ "sign" ] ~substrate:"sep" (),
      fun ctx ~service:_ req ->
        (* key lives sealed on the SEP *)
        let key =
          match ctx.Deploy.facilities.Substrate.f_load ~key:"k" with
          | Some k -> k
          | None ->
            ctx.Deploy.facilities.Substrate.f_store ~key:"k" "sep-held-key";
            "sep-held-key"
        in
        String.sub (Sha256.hex (Hmac.mac ~key req)) 0 8 );
    ( Manifest.v ~name:"renderer" ~provides:[ "render" ] ~network_facing:true
        ~substrate:"sgx" (),
      fun ctx ~service:_ req ->
        (* the renderer tries to reach the keystore: not in its manifest *)
        match ctx.Deploy.call_out ~target:"keystore" ~service:"sign" "steal" with
        | Ok _ -> "EXFILTRATED"
        | Error _ -> "render:" ^ req ) ]

let deploy_slice () =
  let _, _, substrates = make_substrates () in
  match Deploy.deploy ~substrates (slice ()) with
  | Ok t -> t
  | Error e -> Alcotest.fail e

let test_cross_substrate_call_chain () =
  let t = deploy_slice () in
  (* external -> ui (microkernel) -> tls (sgx) -> keystore (sep) *)
  match Deploy.call t ~caller:None ~target:"ui" ~service:"show" "mail-body" with
  | Ok r ->
    Alcotest.(check bool) "full chain executed" true
      (String.length r > 10
       && String.sub r 0 8 = "ui:sent(")
  | Error e -> Alcotest.fail e

let test_placements () =
  let t = deploy_slice () in
  Alcotest.(check (option string)) "ui on microkernel" (Some "microkernel")
    (Deploy.substrate_of t "ui");
  Alcotest.(check (option string)) "tls on sgx" (Some "sgx")
    (Deploy.substrate_of t "tls");
  Alcotest.(check (option string)) "keystore on sep" (Some "sep")
    (Deploy.substrate_of t "keystore")

let test_manifest_enforced_across_substrates () =
  let t = deploy_slice () in
  (* the renderer's undeclared keystore call is blocked by the router *)
  (match Deploy.call t ~caller:None ~target:"renderer" ~service:"render" "msg" with
   | Ok r -> Alcotest.(check string) "exfiltration blocked" "render:msg" r
   | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "violation recorded" true
    (List.exists
       (fun v -> v.App.v_caller = "renderer" && v.App.v_target = "keystore")
       (Deploy.violations t));
  (* external input cannot reach internal components *)
  (match Deploy.call t ~caller:None ~target:"keystore" ~service:"sign" "x" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "external call reached the keystore")

let test_attest_deployed_component () =
  let ca, sep_uid, substrates = make_substrates () in
  let t =
    match Deploy.deploy ~substrates (slice ()) with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  (* sgx-hosted tls: RSA evidence chained to intel *)
  (match Deploy.attest t ~component:"tls" ~nonce:"n1" ~claim:"tls-v1" with
   | Ok ev ->
     let policy =
       { Attestation.trusted_cas = [ ("intel", ca.Rsa.pub) ];
         shared_device_keys = [];
         accepted_measurements = [ ev.Attestation.ev_measurement ] }
     in
     (match Attestation.verify policy ~nonce:"n1" ev with
      | Ok () -> ()
      | Error f -> Alcotest.fail (Format.asprintf "%a" Attestation.pp_failure f))
   | Error e -> Alcotest.fail e);
  (* sep-hosted keystore: HMAC evidence under the provisioned uid *)
  (match Deploy.attest t ~component:"keystore" ~nonce:"n2" ~claim:"ks-v1" with
   | Ok ev ->
     let policy =
       { Attestation.trusted_cas = [];
         shared_device_keys = [ ("sep-1", sep_uid) ];
         accepted_measurements = [ ev.Attestation.ev_measurement ] }
     in
     (match Attestation.verify policy ~nonce:"n2" ev with
      | Ok () -> ()
      | Error f -> Alcotest.fail (Format.asprintf "%a" Attestation.pp_failure f))
   | Error e -> Alcotest.fail e);
  (* microkernel-hosted ui: no trust anchor *)
  (match Deploy.attest t ~component:"ui" ~nonce:"n3" ~claim:"ui" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "microkernel component attested without an anchor")

let test_unknown_substrate_rejected () =
  let _, _, substrates = make_substrates () in
  match
    Deploy.deploy ~substrates
      [ (Manifest.v ~name:"x" ~provides:[ "f" ] ~substrate:"fpga" (),
         fun _ ~service:_ r -> r) ]
  with
  | Error e ->
    Alcotest.(check bool) "names the problem" true
      (String.length e > 0)
  | Ok _ -> Alcotest.fail "unknown substrate accepted"

let test_dangling_manifest_rejected () =
  let _, _, substrates = make_substrates () in
  match
    Deploy.deploy ~substrates
      [ (Manifest.v ~name:"a" ~provides:[ "f" ]
           ~connects_to:[ Manifest.conn "ghost" "g" ] ~substrate:"sgx" (),
         fun _ ~service:_ r -> r) ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dangling connection accepted"

let suite =
  [ Alcotest.test_case "cross-substrate call chain" `Quick test_cross_substrate_call_chain;
    Alcotest.test_case "placements honored" `Quick test_placements;
    Alcotest.test_case "manifests enforced across substrates" `Quick
      test_manifest_enforced_across_substrates;
    Alcotest.test_case "deployed components attest from their substrate" `Quick
      test_attest_deployed_component;
    Alcotest.test_case "unknown substrate rejected" `Quick test_unknown_substrate_rejected;
    Alcotest.test_case "dangling manifests rejected" `Quick test_dangling_manifest_rejected ]
