(* SGX: enclave lifecycle, EPC encryption, sealing, attestation,
   starvation by the untrusted OS, cache side channel surface. *)

open Lt_crypto
module Sgx = Lt_sgx.Sgx

let setup () =
  let machine = Lt_hw.Machine.create ~dram_pages:128 () in
  let r = Drbg.create 2024L in
  let intel = Rsa.generate ~bits:512 r in
  let cpu = Sgx.init_cpu machine r ~ca_name:"intel" ~ca_key:intel in
  (machine, intel, cpu)

let echo_enclave ?(name = "echo") cpu =
  Sgx.create_enclave cpu ~name ~code:"echo-v1" ~epc_pages:2
    ~ecalls:[ ("echo", fun _ arg -> "echo:" ^ arg) ]

let test_ecall_dispatch () =
  let _, _, cpu = setup () in
  let e = echo_enclave cpu in
  Alcotest.(check (result string string)) "ecall" (Ok "echo:hi")
    (Sgx.ecall cpu e ~fn:"echo" "hi");
  (match Sgx.ecall cpu e ~fn:"nope" "x" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown entry point must fail")

let test_measurement_deterministic () =
  let _, _, cpu = setup () in
  let e1 = echo_enclave ~name:"a" cpu in
  let e2 = echo_enclave ~name:"b" cpu in
  Alcotest.(check string) "same code same measurement"
    (Sha256.hex (Sgx.measurement e1)) (Sha256.hex (Sgx.measurement e2));
  Alcotest.(check string) "verifier predicts measurement"
    (Sha256.hex (Sgx.measure_code "echo-v1")) (Sha256.hex (Sgx.measurement e1))

let test_epc_encrypted_against_physical () =
  let machine, _, cpu = setup () in
  let e =
    Sgx.create_enclave cpu ~name:"vault" ~code:"vault-v1" ~epc_pages:2
      ~ecalls:
        [ ("put", fun ctx arg -> Sgx.mem_write ctx ~off:0 arg; "ok");
          ("get", fun ctx _ -> Sgx.mem_read ctx ~off:0 ~len:12) ]
  in
  ignore (Sgx.ecall cpu e ~fn:"put" "ENCLAVE-SECRET");
  let tamper = Lt_hw.Machine.tamper machine in
  Alcotest.(check (list int)) "physical scan finds nothing" []
    (Lt_hw.Tamper.scan tamper ~needle:"ENCLAVE-SECRET");
  (* enclave itself reads plaintext *)
  Alcotest.(check (result string string)) "cpu path plaintext" (Ok "ENCLAVE-SECR")
    (Sgx.ecall cpu e ~fn:"get" "")

let test_epc_integrity () =
  let machine, _, cpu = setup () in
  let e =
    Sgx.create_enclave cpu ~name:"v" ~code:"v1" ~epc_pages:1
      ~ecalls:
        [ ("put", fun ctx arg -> Sgx.mem_write ctx ~off:0 arg; "ok");
          ("get", fun ctx _ -> Sgx.mem_read ctx ~off:0 ~len:4) ]
  in
  ignore (Sgx.ecall cpu e ~fn:"put" "data");
  let base, _ = Sgx.epc_range e in
  Lt_hw.Tamper.patch (Lt_hw.Machine.tamper machine) ~addr:base "XXXX";
  (match Sgx.ecall cpu e ~fn:"get" "" with
   | Error _ -> () (* integrity violation surfaces as an ecall error *)
   | Ok v -> Alcotest.fail ("tampered read returned " ^ v))

let test_sealing () =
  let _, _, cpu = setup () in
  let mk name =
    Sgx.create_enclave cpu ~name ~code:"sealer-v1" ~epc_pages:1
      ~ecalls:
        [ ("seal", fun ctx arg -> Sgx.seal ctx arg);
          ("unseal", fun ctx arg ->
             match Sgx.unseal ctx arg with Some v -> v | None -> "DENIED") ]
  in
  let e1 = mk "inst1" in
  let sealed =
    match Sgx.ecall cpu e1 ~fn:"seal" "persistent-state" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  (* a new instance of the same enclave unseals *)
  let e2 = mk "inst2" in
  Alcotest.(check (result string string)) "same measurement unseals"
    (Ok "persistent-state")
    (Sgx.ecall cpu e2 ~fn:"unseal" sealed);
  (* a different enclave cannot *)
  let other =
    Sgx.create_enclave cpu ~name:"other" ~code:"different-code" ~epc_pages:1
      ~ecalls:
        [ ("unseal", fun ctx arg ->
              match Sgx.unseal ctx arg with Some v -> v | None -> "DENIED") ]
  in
  Alcotest.(check (result string string)) "other enclave denied" (Ok "DENIED")
    (Sgx.ecall cpu other ~fn:"unseal" sealed)

let test_remote_attestation () =
  let _, intel, cpu = setup () in
  let e = echo_enclave cpu in
  let q = Sgx.quote cpu e ~nonce:"challenge-1" ~report_data:"key-fpr" in
  let qe_cert = Sgx.quoting_cert cpu in
  Alcotest.(check bool) "qe cert chains to intel" true
    (Cert.verify ~issuer_pub:intel.Rsa.pub qe_cert);
  Alcotest.(check bool) "quote verifies" true
    (Sgx.verify_quote ~qe_pub:qe_cert.Cert.pubkey q);
  Alcotest.(check bool) "measurement matches reference" true
    (q.Sgx.q_measurement = Sgx.measure_code "echo-v1");
  let forged = { q with Sgx.q_measurement = Sha256.digest "evil" } in
  Alcotest.(check bool) "forged measurement fails" false
    (Sgx.verify_quote ~qe_pub:qe_cert.Cert.pubkey forged)

let test_ocall_untrusted () =
  let _, _, cpu = setup () in
  (* host returns corrupted data; a careful enclave vets it *)
  Sgx.set_ocall_handler cpu (fun req -> if req = "load" then "tampered-blob" else "");
  let e =
    Sgx.create_enclave cpu ~name:"careful" ~code:"c1" ~epc_pages:1
      ~ecalls:
        [ ("work", fun ctx _ ->
              let blob = Sgx.ocall ctx "load" in
              (* vet: expect our own sealed format *)
              match Sgx.unseal ctx blob with
              | Some v -> v
              | None -> "REJECTED-CORRUPT-REPLY") ]
  in
  Alcotest.(check (result string string)) "corrupt ocall reply rejected"
    (Ok "REJECTED-CORRUPT-REPLY")
    (Sgx.ecall cpu e ~fn:"work" "")

let test_os_starves_enclave () =
  let _, _, cpu = setup () in
  let work ctx _ = Sgx.cache_touch ctx 0; "step" in
  let victim =
    Sgx.create_enclave cpu ~name:"victim" ~code:"v" ~epc_pages:1
      ~ecalls:[ ("work", work) ]
  in
  let other =
    Sgx.create_enclave cpu ~name:"other" ~code:"o" ~epc_pages:1
      ~ecalls:[ ("work", work) ]
  in
  let tasks = [ (victim, "work", ""); (other, "work", "") ] in
  let fair = Sgx.run_tasks cpu ~policy:`Fair ~slices:100 tasks in
  Alcotest.(check (option int)) "fair: victim progresses" (Some 50)
    (List.assoc_opt "victim" fair);
  let starved = Sgx.run_tasks cpu ~policy:(`Starve "victim") ~slices:100 tasks in
  Alcotest.(check (option int)) "starved: zero progress (§II-C)" (Some 0)
    (List.assoc_opt "victim" starved);
  Alcotest.(check (option int)) "other takes all slices" (Some 100)
    (List.assoc_opt "other" starved)

let test_destroy_frees_and_blocks () =
  let machine, _, cpu = setup () in
  let free0 = Lt_hw.Frame_alloc.free_count machine.Lt_hw.Machine.dram_frames in
  let e = echo_enclave cpu in
  Sgx.destroy cpu e;
  Alcotest.(check int) "frames returned" free0
    (Lt_hw.Frame_alloc.free_count machine.Lt_hw.Machine.dram_frames);
  (match Sgx.ecall cpu e ~fn:"echo" "x" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "destroyed enclave must not run")

let test_cache_footprint_tagged () =
  let machine, _, cpu = setup () in
  let e =
    Sgx.create_enclave cpu ~name:"toucher" ~code:"t" ~epc_pages:1
      ~ecalls:[ ("touch", fun ctx _ -> Sgx.cache_touch ctx (5 * 64); "ok") ]
  in
  ignore (Sgx.ecall cpu e ~fn:"touch" "");
  Alcotest.(check (list int)) "enclave fills set 5" [ 5 ]
    (Lt_hw.Cache.resident_sets machine.Lt_hw.Machine.cache ~domain:"toucher")

let suite =
  [ Alcotest.test_case "ecall dispatch" `Quick test_ecall_dispatch;
    Alcotest.test_case "measurement deterministic & predictable" `Quick
      test_measurement_deterministic;
    Alcotest.test_case "EPC invisible to physical attacker" `Quick
      test_epc_encrypted_against_physical;
    Alcotest.test_case "EPC integrity protected" `Quick test_epc_integrity;
    Alcotest.test_case "sealing bound to measurement" `Quick test_sealing;
    Alcotest.test_case "remote attestation via quoting enclave" `Quick
      test_remote_attestation;
    Alcotest.test_case "ocall replies are untrusted" `Quick test_ocall_untrusted;
    Alcotest.test_case "untrusted OS can starve an enclave" `Quick test_os_starves_enclave;
    Alcotest.test_case "destroy frees EPC and blocks entry" `Quick
      test_destroy_frees_and_blocks;
    Alcotest.test_case "cache footprint visible (side channel surface)" `Quick
      test_cache_footprint_tagged ]
