(* TPM: PCRs, quotes, sealing, boot chains, late launch. *)

open Lt_crypto
open Lt_tpm

let rng () = Drbg.create 1234L

let make_tpm ?(r = rng ()) () =
  let ca = Rsa.generate ~bits:512 r in
  let tpm = Tpm.manufacture r ~ca_name:"tpm-vendor" ~ca_key:ca ~serial:"0001" in
  (tpm, ca)

let digest_a = Sha256.digest "measurement-a"

let digest_b = Sha256.digest "measurement-b"

let test_pcr_extend_semantics () =
  let p = Pcr.create () in
  let zero = String.make 32 '\000' in
  Alcotest.(check string) "initial zero" zero (Pcr.read p 0);
  Pcr.extend p 0 digest_a;
  Alcotest.(check string) "extend = H(old||m)"
    (Sha256.hex (Sha256.digest_concat [ zero; digest_a ]))
    (Sha256.hex (Pcr.read p 0));
  (* order matters *)
  let p1 = Pcr.create () and p2 = Pcr.create () in
  Pcr.extend p1 0 digest_a;
  Pcr.extend p1 0 digest_b;
  Pcr.extend p2 0 digest_b;
  Pcr.extend p2 0 digest_a;
  Alcotest.(check bool) "order sensitive" true (Pcr.read p1 0 <> Pcr.read p2 0);
  Alcotest.(check string) "expected_value predicts" (Sha256.hex (Pcr.read p1 0))
    (Sha256.hex (Pcr.expected_value [ digest_a; digest_b ]))

let test_pcr_reset_rules () =
  let p = Pcr.create () in
  Pcr.extend p 0 digest_a;
  Pcr.extend p Pcr.drtm_index digest_a;
  Pcr.reset_drtm p;
  Alcotest.(check string) "drtm reset" (String.make 32 '\000') (Pcr.read p Pcr.drtm_index);
  Alcotest.(check bool) "static pcr survives drtm reset" true
    (Pcr.read p 0 <> String.make 32 '\000');
  Pcr.power_cycle p;
  Alcotest.(check string) "power cycle clears all" (String.make 32 '\000') (Pcr.read p 0)

let test_pcr_bad_index () =
  let p = Pcr.create () in
  Alcotest.(check bool) "index 24 rejected" true
    (try ignore (Pcr.read p 24); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad digest size rejected" true
    (try Pcr.extend p 0 "short"; false with Invalid_argument _ -> true)

let test_quote_verifies () =
  let tpm, ca = make_tpm () in
  Tpm.extend tpm 0 digest_a;
  let q = Tpm.quote tpm ~nonce:"fresh-nonce" ~selection:[ 0; 1 ] in
  let ek = (Tpm.ek_cert tpm).Cert.pubkey in
  Alcotest.(check bool) "quote signature ok" true (Tpm.verify_quote ~ek_pub:ek q);
  Alcotest.(check bool) "ek cert chains to vendor" true
    (Cert.verify ~issuer_pub:ca.Rsa.pub (Tpm.ek_cert tpm));
  (* tampered composite rejected *)
  let forged = { q with Tpm.q_composite = Sha256.digest "other" } in
  Alcotest.(check bool) "forged composite fails" false (Tpm.verify_quote ~ek_pub:ek forged);
  (* replayed nonce detectable *)
  let replayed = { q with Tpm.q_nonce = "stale" } in
  Alcotest.(check bool) "changed nonce fails" false (Tpm.verify_quote ~ek_pub:ek replayed)

let test_quote_reflects_state () =
  let tpm, _ = make_tpm () in
  let q1 = Tpm.quote tpm ~nonce:"n" ~selection:[ 0 ] in
  Tpm.extend tpm 0 digest_a;
  let q2 = Tpm.quote tpm ~nonce:"n" ~selection:[ 0 ] in
  Alcotest.(check bool) "composite changed by extend" true
    (q1.Tpm.q_composite <> q2.Tpm.q_composite)

let test_seal_unseal () =
  let tpm, _ = make_tpm () in
  Tpm.extend tpm 0 digest_a;
  let sealed = Tpm.seal tpm ~selection:[ 0 ] "disk-encryption-key" in
  Alcotest.(check (option string)) "unseal in same state" (Some "disk-encryption-key")
    (Tpm.unseal tpm sealed);
  (* after further extension (different software loaded) the key is gone *)
  Tpm.extend tpm 0 digest_b;
  Alcotest.(check (option string)) "unseal after state change" None (Tpm.unseal tpm sealed)

let test_seal_wire_roundtrip () =
  let tpm, _ = make_tpm () in
  let sealed = Tpm.seal tpm ~selection:[ 0; 2 ] "blob" in
  (match Tpm.sealed_of_wire (Tpm.sealed_to_wire sealed) with
   | None -> Alcotest.fail "wire roundtrip"
   | Some s ->
     Alcotest.(check (option string)) "unseal from wire" (Some "blob") (Tpm.unseal tpm s));
  Alcotest.(check bool) "garbage rejected" true (Tpm.sealed_of_wire "xx" = None)

let test_bitlocker_scenario () =
  (* the paper's BitLocker example: key released only to untampered boot *)
  let r = rng () in
  let vendor = Rsa.generate ~bits:512 r in
  let tpm, _ = make_tpm ~r () in
  let chain =
    [ Boot.sign_stage vendor ~name:"bootloader" "bootloader-v1";
      Boot.sign_stage vendor ~name:"kernel" "windows-kernel" ]
  in
  let policy = Boot.Authenticated_boot { tpm; pcr = 0 } in
  let outcome = Boot.run_chain policy chain in
  Alcotest.(check (list string)) "all stages ran" [ "bootloader"; "kernel" ] outcome.Boot.ran;
  let sealed = Tpm.seal tpm ~selection:[ 0 ] "bitlocker-vmk" in
  (* reboot with identical software: key released *)
  Pcr.power_cycle (Tpm.pcrs tpm);
  ignore (Boot.run_chain policy chain);
  Alcotest.(check (option string)) "same software gets key" (Some "bitlocker-vmk")
    (Tpm.unseal tpm sealed);
  (* reboot with a tampered kernel: measured, runs, but no key *)
  Pcr.power_cycle (Tpm.pcrs tpm);
  let evil =
    [ List.hd chain; Boot.unsigned_stage ~name:"kernel" "windows-kernel-rootkit" ]
  in
  let outcome = Boot.run_chain policy evil in
  Alcotest.(check bool) "authenticated boot still runs" true
    (outcome.Boot.refused = None);
  Alcotest.(check (option string)) "tampered software denied key" None
    (Tpm.unseal tpm sealed)

let test_secure_boot_refuses () =
  let r = rng () in
  let vendor = Rsa.generate ~bits:512 r in
  let mallory = Rsa.generate ~bits:512 r in
  let policy = Boot.Secure_boot { vendor_pub = vendor.Rsa.pub } in
  (* properly signed chain boots *)
  let good =
    [ Boot.sign_stage vendor ~name:"loader" "code-a";
      Boot.sign_stage vendor ~name:"os" "code-b" ]
  in
  let outcome = Boot.run_chain policy good in
  Alcotest.(check bool) "good chain boots fully" true (outcome.Boot.refused = None);
  (* unsigned second stage stops the chain *)
  let bad = [ List.hd good; Boot.unsigned_stage ~name:"os" "evil" ] in
  let outcome = Boot.run_chain policy bad in
  Alcotest.(check (list string)) "only loader ran" [ "loader" ] outcome.Boot.ran;
  Alcotest.(check bool) "os refused" true
    (match outcome.Boot.refused with Some ("os", _) -> true | _ -> false);
  (* stage signed by the wrong key is also refused *)
  let forged = [ Boot.sign_stage mallory ~name:"loader" "code-a" ] in
  let outcome = Boot.run_chain policy forged in
  Alcotest.(check bool) "wrong signer refused" true (outcome.Boot.refused <> None)

let test_late_launch_attests_pal () =
  let tpm, _ = make_tpm () in
  let pal =
    { Latelaunch.pal_name = "password-checker";
      pal_code = "cmp(secret, input)";
      handler = (fun input -> if input = "hunter2" then "ok" else "no") }
  in
  let r = Latelaunch.execute tpm pal ~nonce:"n1" ~input:"hunter2" in
  Alcotest.(check string) "pal computed" "ok" r.Latelaunch.output;
  let ek = (Tpm.ek_cert tpm).Cert.pubkey in
  Alcotest.(check bool) "quote verifies" true
    (Tpm.verify_quote ~ek_pub:ek r.Latelaunch.pal_quote);
  Alcotest.(check string) "quote proves which pal ran"
    (Sha256.hex (Latelaunch.expected_drtm_composite tpm pal))
    (Sha256.hex r.Latelaunch.pal_quote.Tpm.q_composite)

let test_late_launch_mutual_isolation () =
  (* PAL A seals a secret; PAL B, running later, cannot unseal it *)
  let tpm, _ = make_tpm () in
  let pal_a =
    { Latelaunch.pal_name = "a"; pal_code = "code-a"; handler = (fun x -> x) }
  in
  let pal_b =
    { Latelaunch.pal_name = "b"; pal_code = "code-b"; handler = (fun x -> x) }
  in
  ignore (Latelaunch.execute tpm pal_a ~nonce:"n" ~input:"");
  let sealed = Latelaunch.seal_for tpm "pal-a-secret" in
  Alcotest.(check (option string)) "a unseals its own" (Some "pal-a-secret")
    (Latelaunch.unseal_for tpm sealed);
  ignore (Latelaunch.execute tpm pal_b ~nonce:"n" ~input:"");
  Alcotest.(check (option string)) "b cannot unseal a's data" None
    (Latelaunch.unseal_for tpm sealed);
  (* re-running A restores access: identity, not session, is the key *)
  ignore (Latelaunch.execute tpm pal_a ~nonce:"n2" ~input:"");
  Alcotest.(check (option string)) "a again unseals" (Some "pal-a-secret")
    (Latelaunch.unseal_for tpm sealed)

let test_late_launch_serialized_cost () =
  let tpm, _ = make_tpm () in
  let clock = Lt_hw.Clock.create () in
  let pal = { Latelaunch.pal_name = "p"; pal_code = "c"; handler = (fun x -> x) } in
  let r = Latelaunch.execute ~clock tpm pal ~nonce:"n" ~input:"" in
  Alcotest.(check bool) "world stop/resume cost charged" true
    (r.Latelaunch.ticks >= 100 && Lt_hw.Clock.now clock = r.Latelaunch.ticks)

let suite =
  [ Alcotest.test_case "pcr extend semantics" `Quick test_pcr_extend_semantics;
    Alcotest.test_case "pcr reset rules" `Quick test_pcr_reset_rules;
    Alcotest.test_case "pcr bad inputs" `Quick test_pcr_bad_index;
    Alcotest.test_case "quote verifies & forgeries fail" `Quick test_quote_verifies;
    Alcotest.test_case "quote reflects pcr state" `Quick test_quote_reflects_state;
    Alcotest.test_case "seal/unseal pcr policy" `Quick test_seal_unseal;
    Alcotest.test_case "sealed blob wire format" `Quick test_seal_wire_roundtrip;
    Alcotest.test_case "bitlocker key-release scenario" `Quick test_bitlocker_scenario;
    Alcotest.test_case "secure boot refuses unsigned code" `Quick test_secure_boot_refuses;
    Alcotest.test_case "late launch attests the pal" `Quick test_late_launch_attests_pal;
    Alcotest.test_case "late launch mutual isolation" `Quick test_late_launch_mutual_isolation;
    Alcotest.test_case "late launch serialization cost" `Quick test_late_launch_serialized_cost ]
