test/test_manifest_file.ml: Alcotest Analysis App Lateral List Manifest Manifest_file Printf QCheck QCheck_alcotest String
