test/test_sep.ml: Alcotest Drbg List Lt_crypto Lt_hw Lt_sep
