test/test_verifier.ml: Alcotest Attestation Drbg Format Lateral List Lt_crypto Lt_hw Lt_storage Lt_tpm Rsa Sha256 Substrate Substrate_sgx Verifier
