test/test_scenarios.ml: Alcotest App Lateral List Printf Scenario_mail Scenario_meter String
