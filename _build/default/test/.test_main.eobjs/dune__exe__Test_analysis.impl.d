test/test_analysis.ml: Alcotest Analysis App Gui Lateral List Manifest Printf String
