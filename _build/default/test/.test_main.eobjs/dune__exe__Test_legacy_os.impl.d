test/test_legacy_os.ml: Alcotest Kernel Legacy_os List Lt_hw Lt_kernel Option Sched
