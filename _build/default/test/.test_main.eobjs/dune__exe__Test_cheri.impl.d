test/test_cheri.ml: Alcotest Lateral Lt_cheri Lt_crypto Option String
