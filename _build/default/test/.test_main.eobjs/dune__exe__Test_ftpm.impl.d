test/test_ftpm.ml: Alcotest Cert Drbg Lt_crypto Lt_hw Lt_tpm Lt_trustzone Rsa Sha256 String
