test/test_kernel.ml: Alcotest Format Kernel List Lt_hw Lt_kernel Printf Sched Sys User
