test/test_storage.ml: Alcotest Char Drbg Format Gen Lt_crypto Lt_storage QCheck QCheck_alcotest Result String
