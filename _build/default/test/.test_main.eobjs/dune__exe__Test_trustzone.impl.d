test/test_trustzone.ml: Alcotest Drbg List Lt_crypto Lt_hw Lt_tpm Lt_trustzone Rsa Sha256
