test/test_crypto.ml: Alcotest Bignum Char Ct Drbg Gen Hkdf Hmac List Lt_crypto Printf QCheck QCheck_alcotest Rsa Sha256 Speck String
