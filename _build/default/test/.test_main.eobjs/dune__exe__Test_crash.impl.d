test/test_crash.ml: Alcotest Bytes Char Format List Lt_storage String
