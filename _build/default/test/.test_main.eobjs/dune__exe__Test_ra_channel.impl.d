test/test_ra_channel.ml: Alcotest Attestation Cert Drbg Lateral Lt_crypto Lt_hw Lt_net Ra_channel Rsa Sha256 String Substrate Substrate_sgx
