test/test_cloud.ml: Alcotest Lateral Scenario_cloud
