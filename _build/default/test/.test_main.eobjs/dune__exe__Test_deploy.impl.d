test/test_deploy.ml: Alcotest App Attestation Deploy Drbg Format Hmac Lateral List Lt_crypto Lt_hw Lt_kernel Manifest Printf Rsa Sha256 String Substrate Substrate_kernel Substrate_sep Substrate_sgx
