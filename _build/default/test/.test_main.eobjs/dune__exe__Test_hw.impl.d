test/test_hw.ml: Alcotest Bus Cache Clock Frame_alloc Fuse Gen Iommu List Lt_hw Machine Mmu Phys_mem QCheck QCheck_alcotest String Tamper
