test/test_noc.ml: Alcotest Format Lateral List Lt_crypto Lt_noc Printf
