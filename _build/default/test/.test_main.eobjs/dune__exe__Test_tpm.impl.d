test/test_tpm.ml: Alcotest Boot Cert Drbg Latelaunch List Lt_crypto Lt_hw Lt_tpm Pcr Rsa Sha256 String Tpm
