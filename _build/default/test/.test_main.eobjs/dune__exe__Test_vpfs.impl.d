test/test_vpfs.ml: Alcotest Char Drbg Format List Lt_crypto Lt_storage QCheck QCheck_alcotest String
