test/test_sgx.ml: Alcotest Cert Drbg List Lt_crypto Lt_hw Lt_sgx Rsa Sha256
