test/test_net.ml: Alcotest Bytes Cert Char Drbg List Lt_crypto Lt_net Option Rsa String Wire
