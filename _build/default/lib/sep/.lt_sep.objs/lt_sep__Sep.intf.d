lib/sep/sep.mli: Lt_crypto Lt_hw
