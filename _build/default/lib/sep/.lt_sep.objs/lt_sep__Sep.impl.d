lib/sep/sep.ml: Buffer Bus Clock Drbg Frame_alloc Fuse Hashtbl Hkdf List Lt_crypto Lt_hw Machine Mmu Phys_mem Printexc Printf Stdlib String
