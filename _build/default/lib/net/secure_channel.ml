open Lt_crypto

type session = {
  send_key : string;
  recv_key : string;
  mutable seq_send : int;
  mutable seq_recv : int;
}

let derive_keys ~pms ~nonce_c ~nonce_s =
  let prk = Hkdf.extract ~salt:(nonce_c ^ nonce_s) pms in
  let expand info len = Hkdf.expand ~prk ~info len in
  ( expand "c2s" 16,
    expand "s2c" 16,
    expand "fin-c" 32,
    expand "fin-s" 32 )

let record_nonce key seq =
  String.sub (Sha256.digest (Printf.sprintf "%s|%d" key seq)) 0 Speck.nonce_size

let seal_record ~key ~seq plaintext =
  let box =
    Speck.Aead.encrypt ~key ~nonce:(record_nonce key seq)
      ~ad:(Printf.sprintf "rec|%d" seq) plaintext
  in
  Wire.tagged "record" [ Speck.Aead.to_wire box ]

let open_record ~key ~seq msg =
  match Wire.untag msg with
  | Some ("record", [ wire ]) ->
    (match Speck.Aead.of_wire wire with
     | None -> Error "malformed record"
     | Some box ->
       (match Speck.Aead.decrypt ~key ~ad:(Printf.sprintf "rec|%d" seq) box with
        | Some plaintext -> Ok plaintext
        | None -> Error "record authentication failed (tamper, replay or reorder)"))
  | _ -> Error "not a record"

let send s plaintext =
  let r = seal_record ~key:s.send_key ~seq:s.seq_send plaintext in
  s.seq_send <- s.seq_send + 1;
  r

let receive s msg =
  match open_record ~key:s.recv_key ~seq:s.seq_recv msg with
  | Ok plaintext ->
    s.seq_recv <- s.seq_recv + 1;
    Ok plaintext
  | Error _ as e -> e

let exporter s =
  (* order the two directional keys so client and server agree *)
  let a, b =
    if String.compare s.send_key s.recv_key <= 0 then (s.send_key, s.recv_key)
    else (s.recv_key, s.send_key)
  in
  Hkdf.derive ~secret:(a ^ b) ~salt:"tls-exporter" ~info:"channel-binding" 32

module Server = struct
  type state =
    | Waiting_hello
    | Waiting_kx of { nonce_c : string; nonce_s : string; transcript : string }
    | Established of session
    | Failed

  type t = {
    rng : Drbg.t;
    key : Rsa.keypair;
    cert : Cert.t;
    mutable state : state;
  }

  let create rng ~key ~cert = { rng; key; cert; state = Waiting_hello }

  let session t = match t.state with Established s -> Some s | _ -> None

  let handle t msg =
    match (t.state, Wire.untag msg) with
    | Waiting_hello, Some ("hello", [ nonce_c ]) ->
      let nonce_s = Drbg.bytes t.rng 16 in
      let reply = Wire.tagged "server-hello" [ nonce_s; Cert.to_string t.cert ] in
      let transcript = Sha256.digest_concat [ msg; reply ] in
      t.state <- Waiting_kx { nonce_c; nonce_s; transcript };
      Ok (Some reply)
    | Waiting_kx { nonce_c; nonce_s; transcript }, Some ("key-exchange", [ ct; fin_c ])
      ->
      (match Rsa.decrypt t.key ct with
       | None ->
         t.state <- Failed;
         Error "key exchange decryption failed"
       | Some pms ->
         let c2s, s2c, fin_ck, fin_sk = derive_keys ~pms ~nonce_c ~nonce_s in
         if not (Hmac.verify ~key:fin_ck ~tag:fin_c transcript) then begin
           t.state <- Failed;
           Error "client finished verification failed"
         end
         else begin
           let fin_s = Hmac.mac ~key:fin_sk (transcript ^ fin_c) in
           t.state <-
             Established { send_key = s2c; recv_key = c2s; seq_send = 0; seq_recv = 0 };
           Ok (Some (Wire.tagged "finished" [ fin_s ]))
         end)
    | Failed, _ -> Error "handshake already failed"
    | _, _ ->
      t.state <- Failed;
      Error "unexpected handshake message"
end

module Client = struct
  type state =
    | Fresh
    | Hello_sent of { nonce_c : string; hello : string }
    | Finished_wait of {
        transcript : string;
        fin_c : string;
        fin_sk : string;
        c2s : string;
        s2c : string;
      }
    | Established of session
    | Failed

  type t = {
    rng : Drbg.t;
    trusted_ca : Rsa.public;
    expected_subject : string option;
    mutable state : state;
  }

  let create rng ~trusted_ca ?expected_subject () =
    { rng; trusted_ca; expected_subject; state = Fresh }

  let session t = match t.state with Established s -> Some s | _ -> None

  let start t =
    let nonce_c = Drbg.bytes t.rng 16 in
    let hello = Wire.tagged "hello" [ nonce_c ] in
    t.state <- Hello_sent { nonce_c; hello };
    hello

  let handle t msg =
    match (t.state, Wire.untag msg) with
    | Hello_sent { nonce_c; hello }, Some ("server-hello", [ nonce_s; cert_wire ]) ->
      (match Cert.of_string cert_wire with
       | None ->
         t.state <- Failed;
         Error "malformed certificate"
       | Some cert ->
         if not (Cert.verify ~issuer_pub:t.trusted_ca cert) then begin
           t.state <- Failed;
           Error "certificate not signed by a trusted CA"
         end
         else if
           match t.expected_subject with
           | Some subject -> subject <> cert.Cert.subject
           | None -> false
         then begin
           t.state <- Failed;
           Error "certificate subject mismatch (pinning)"
         end
         else begin
           let pms = Drbg.bytes t.rng 16 in
           let transcript = Sha256.digest_concat [ hello; msg ] in
           let c2s, s2c, fin_ck, fin_sk = derive_keys ~pms ~nonce_c ~nonce_s in
           let fin_c = Hmac.mac ~key:fin_ck transcript in
           let ct = Rsa.encrypt t.rng cert.Cert.pubkey pms in
           t.state <- Finished_wait { transcript; fin_c; fin_sk; c2s; s2c };
           Ok (Some (Wire.tagged "key-exchange" [ ct; fin_c ]))
         end)
    | Finished_wait { transcript; fin_c; fin_sk; c2s; s2c }, Some ("finished", [ fin_s ])
      ->
      if not (Hmac.verify ~key:fin_sk ~tag:fin_s (transcript ^ fin_c)) then begin
        t.state <- Failed;
        Error "server finished verification failed"
      end
      else begin
        t.state <-
          Established { send_key = c2s; recv_key = s2c; seq_send = 0; seq_recv = 0 };
        Ok None
      end
    | Failed, _ -> Error "handshake already failed"
    | _, _ ->
      t.state <- Failed;
      Error "unexpected handshake message"
end

let connect net ~client ~client_addr ~server ~server_addr =
  Net.send net ~src:client_addr ~dst:server_addr (Client.start client);
  (* pump until both sides are established or something fails; bounded
     because each handshake has at most 4 flights *)
  let rec pump budget =
    if budget = 0 then Error "handshake did not complete (messages lost?)"
    else
      match (Client.session client, Server.session server) with
      | Some cs, Some ss -> Ok (cs, ss)
      | _ ->
        let progressed = ref false in
        (match Net.recv net server_addr with
         | Some p ->
           progressed := true;
           (match Server.handle server p.Net.payload with
            | Ok (Some reply) -> Net.send net ~src:server_addr ~dst:client_addr reply
            | Ok None -> ()
            | Error e -> raise (Failure ("server: " ^ e)))
         | None -> ());
        (match Net.recv net client_addr with
         | Some p ->
           progressed := true;
           (match Client.handle client p.Net.payload with
            | Ok (Some reply) -> Net.send net ~src:client_addr ~dst:server_addr reply
            | Ok None -> ()
            | Error e -> raise (Failure ("client: " ^ e)))
         | None -> ());
        if !progressed then pump (budget - 1)
        else Error "handshake stalled (packets dropped)"
  in
  try pump 16 with Failure e -> Error e
