type decision = Forwarded | Blocked_destination | Rate_limited

type stats = {
  forwarded : int;
  blocked_destination : int;
  rate_limited : int;
}

type t = {
  whitelist : Net.address list;
  tokens_per_tick : float;
  burst : float;
  mutable tokens : float;
  mutable last_refill : int;
  mutable st : stats;
}

let create ~whitelist ~tokens_per_tick ~burst =
  { whitelist;
    tokens_per_tick;
    burst;
    tokens = burst;
    last_refill = 0;
    st = { forwarded = 0; blocked_destination = 0; rate_limited = 0 } }

let refill t ~now =
  if now > t.last_refill then begin
    let dt = float_of_int (now - t.last_refill) in
    t.tokens <- Float.min t.burst (t.tokens +. (dt *. t.tokens_per_tick));
    t.last_refill <- now
  end

let submit t net ~now ~src ~dst payload =
  refill t ~now;
  if not (List.mem dst t.whitelist) then begin
    t.st <- { t.st with blocked_destination = t.st.blocked_destination + 1 };
    Blocked_destination
  end
  else if t.tokens < 1.0 then begin
    t.st <- { t.st with rate_limited = t.st.rate_limited + 1 };
    Rate_limited
  end
  else begin
    t.tokens <- t.tokens -. 1.0;
    Net.send net ~src ~dst payload;
    t.st <- { t.st with forwarded = t.st.forwarded + 1 };
    Forwarded
  end

let stats t = t.st
