(** TLS-like secure channel over the untrusted {!Net}.

    The email-client example (§III-C) isolates "a component for
    transport-layer security (TLS) and login"; this is that component's
    protocol. Handshake: certificate authentication of the server
    against a trusted CA, RSA key transport of a pre-master secret,
    transcript-bound finished messages; then AEAD records with strictly
    increasing sequence numbers (tamper and replay rejected).

    Both peers are explicit state machines so the handshake can be
    pumped over a network whose adversary may interfere at any step. *)

type session

(** {2 Server} *)

module Server : sig
  type t

  val create :
    Lt_crypto.Drbg.t -> key:Lt_crypto.Rsa.keypair -> cert:Lt_crypto.Cert.t -> t

  (** [handle t msg] advances the state machine: [Ok (Some reply)] to
      send, [Ok None] when done, [Error] aborts the handshake. *)
  val handle : t -> string -> (string option, string) result

  val session : t -> session option
end

(** {2 Client} *)

module Client : sig
  type t

  (** [create rng ~trusted_ca ?expected_subject ()] — the client will
      accept only certificates issued by [trusted_ca], and, when given,
      only for [expected_subject] (pinning). *)
  val create :
    Lt_crypto.Drbg.t -> trusted_ca:Lt_crypto.Rsa.public ->
    ?expected_subject:string -> unit -> t

  (** [start t] is the ClientHello to send first. *)
  val start : t -> string

  val handle : t -> string -> (string option, string) result

  val session : t -> session option
end

(** {2 Established sessions} *)

(** [send s plaintext] seals the next record. *)
val send : session -> string -> string

(** [receive s record] opens a record; rejects tampering, replay and
    reordering. *)
val receive : session -> string -> (string, string) result

(** [exporter s] is a channel-binding value derived from the session
    keys: both peers compute the same 32 bytes, and no other channel
    shares them. Binding attestation evidence to this value (RA-TLS
    style, see {!Lateral.Ra_channel}) defeats evidence relaying. *)
val exporter : session -> string

(** {2 Driver} *)

(** [connect net ~client ~client_addr ~server ~server_addr] pumps the
    handshake across the network (subject to its adversary) and returns
    both established sessions, or the first failure. *)
val connect :
  Net.t -> client:Client.t -> client_addr:Net.address -> server:Server.t ->
  server_addr:Net.address -> (session * session, string) result
