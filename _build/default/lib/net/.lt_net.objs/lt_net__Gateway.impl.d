lib/net/gateway.ml: Float List Net
