lib/net/secure_channel.ml: Cert Drbg Hkdf Hmac Lt_crypto Net Printf Rsa Sha256 Speck String Wire
