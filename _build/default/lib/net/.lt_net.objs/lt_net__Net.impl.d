lib/net/net.ml: Hashtbl List Printf Queue
