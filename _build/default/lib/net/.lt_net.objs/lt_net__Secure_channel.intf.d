lib/net/secure_channel.mli: Lt_crypto Net
