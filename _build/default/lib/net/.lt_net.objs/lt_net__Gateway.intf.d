lib/net/gateway.mli: Net
