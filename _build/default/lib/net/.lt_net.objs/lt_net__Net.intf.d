lib/net/net.mli:
