lib/cheri/cheri.ml: Bytes Printf String
