lib/cheri/cheri.mli:
