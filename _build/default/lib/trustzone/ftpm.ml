open Lt_crypto
open Lt_tpm

type t = { tz : Trustzone.t; cert : Cert.t }

let service = "__ftpm"

(* secure-world state: the PCR bank, EK and sealing root live inside the
   handler's closure; the serialized PCR state is additionally pushed
   into protected memory so the bytes exist in the secure region *)
let install tz rng ~ca_name ~ca_key =
  if not (Trustzone.booted tz) then Error "ftpm: secure world not booted"
  else begin
    let pcrs = Pcr.create () in
    let ek = Rsa.generate ~bits:512 rng in
    let srk = Drbg.bytes rng 32 in
    let seal_rng = Drbg.split rng in
    let cert = Cert.issue ~ca_name ~ca_key ~subject:"ftpm" ek.Rsa.pub in
    let handler ctx req =
      let persist () =
        let state =
          Wire.encode (List.init Pcr.count (fun i -> Pcr.read pcrs i))
        in
        Trustzone.store ctx ~key:"pcr-state" state
      in
      match Wire.decode req with
      | Some [ "extend"; idx; digest ] ->
        (try
           Pcr.extend pcrs (int_of_string idx) digest;
           persist ();
           Wire.encode [ "ok" ]
         with Invalid_argument m -> Wire.encode [ "err"; m ])
      | Some [ "read"; idx ] ->
        (try Wire.encode [ "ok"; Pcr.read pcrs (int_of_string idx) ]
         with Invalid_argument m -> Wire.encode [ "err"; m ])
      | Some ("quote" :: nonce :: selection) ->
        (try
           let selection = List.map int_of_string selection in
           let composite = Pcr.composite pcrs selection in
           let signature =
             Rsa.sign ek (Tpm.quote_body ~nonce ~selection ~composite)
           in
           Wire.encode [ "ok"; composite; signature ]
         with Invalid_argument m -> Wire.encode [ "err"; m ])
      | Some ("seal" :: data :: selection) ->
        (try
           let selection = List.map int_of_string selection in
           let composite = Pcr.composite pcrs selection in
           let key = Hkdf.derive ~secret:srk ~salt:"ftpm-seal" ~info:composite 16 in
           let nonce = Drbg.bytes seal_rng Speck.nonce_size in
           let box = Speck.Aead.encrypt ~key ~nonce ~ad:"ftpm" data in
           Wire.encode
             ("ok"
              :: Speck.Aead.to_wire box
              :: List.map string_of_int selection)
         with Invalid_argument m -> Wire.encode [ "err"; m ])
      | Some ("unseal" :: blob :: selection) ->
        (try
           let selection = List.map int_of_string selection in
           let composite = Pcr.composite pcrs selection in
           let key = Hkdf.derive ~secret:srk ~salt:"ftpm-seal" ~info:composite 16 in
           (match Option.bind (Speck.Aead.of_wire blob)
                    (Speck.Aead.decrypt ~key ~ad:"ftpm") with
            | Some plain -> Wire.encode [ "ok"; plain ]
            | None -> Wire.encode [ "unseal-denied" ])
         with Invalid_argument m -> Wire.encode [ "err"; m ])
      | _ -> Wire.encode [ "err"; "bad ftpm command" ]
    in
    Trustzone.register_service tz ~name:service handler;
    Ok { tz; cert }
  end

let ek_cert t = t.cert

let command t fields =
  match Trustzone.smc t.tz ~service (Wire.encode fields) with
  | Error e -> Error e
  | Ok reply ->
    (match Wire.decode reply with
     | Some ("ok" :: rest) -> Ok (`Ok rest)
     | Some [ "unseal-denied" ] -> Ok `Denied
     | Some ("err" :: m :: _) -> Error m
     | _ -> Error "ftpm: malformed reply")

let extend t idx digest =
  match command t [ "extend"; string_of_int idx; digest ] with
  | Ok _ -> Ok ()
  | Error e -> Error e

let read_pcr t idx =
  match command t [ "read"; string_of_int idx ] with
  | Ok (`Ok [ v ]) -> Ok v
  | Ok _ -> Error "ftpm: malformed read reply"
  | Error e -> Error e

let quote t ~nonce ~selection =
  match command t ("quote" :: nonce :: List.map string_of_int selection) with
  | Ok (`Ok [ composite; signature ]) ->
    Ok
      { Tpm.q_nonce = nonce;
        q_selection = List.sort_uniq Stdlib.compare selection;
        q_composite = composite;
        q_signature = signature }
  | Ok _ -> Error "ftpm: malformed quote reply"
  | Error e -> Error e

let seal t ~selection data =
  match command t ("seal" :: data :: List.map string_of_int selection) with
  | Ok (`Ok (blob :: sel)) -> Ok (Wire.encode (blob :: sel))
  | Ok _ -> Error "ftpm: malformed seal reply"
  | Error e -> Error e

let unseal t wire =
  match Wire.decode wire with
  | Some (blob :: sel) ->
    (match command t ("unseal" :: blob :: sel) with
     | Ok `Denied -> Ok None
     | Ok (`Ok [ plain ]) -> Ok (Some plain)
     | Ok _ -> Error "ftpm: malformed unseal reply"
     | Error e -> Error e)
  | _ -> Error "ftpm: malformed sealed blob"
