lib/trustzone/ftpm.mli: Lt_crypto Lt_tpm Trustzone
