lib/trustzone/ftpm.ml: Cert Drbg Hkdf List Lt_crypto Lt_tpm Option Pcr Rsa Speck Stdlib Tpm Trustzone Wire
