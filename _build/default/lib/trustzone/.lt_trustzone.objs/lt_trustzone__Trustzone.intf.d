lib/trustzone/trustzone.mli: Lt_crypto Lt_hw Lt_tpm
