lib/trustzone/trustzone.ml: Boot Buffer Bus Clock Frame_alloc Fuse Hashtbl Hmac List Lt_crypto Lt_hw Lt_tpm Machine Mmu Printf Rsa Sha256 Stdlib String
