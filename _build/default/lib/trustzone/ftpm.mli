(** fTPM: TPM functionality as software inside the TrustZone secure
    world (§II-C).

    "Just because a feature is shipped by a hardware vendor also does
    not necessarily mean it is implemented in hardware ... Microsoft
    Surface tablets implement TPM functionality not using dedicated TPM
    security chips, but as software running within TrustZone."

    The fTPM keeps its PCR bank and endorsement key in the secure world
    (state serialized into protected memory) and exposes the same
    measurement/quote/seal semantics as the discrete chip. Its quotes
    sign the exact byte format of {!Lt_tpm.Tpm.quote_body}, so
    {!Lt_tpm.Tpm.verify_quote} accepts them unchanged: a remote verifier
    cannot tell chip from software — the paper's interchangeability
    point, demonstrated. *)

type t

(** [install tz rng ~ca_name ~ca_key] provisions an fTPM in a booted
    secure world: generates the endorsement key inside, certifies it
    with the manufacturer CA. *)
val install :
  Trustzone.t -> Lt_crypto.Drbg.t -> ca_name:string ->
  ca_key:Lt_crypto.Rsa.keypair -> (t, string) result

val ek_cert : t -> Lt_crypto.Cert.t

(** All commands cross the SMC boundary into the secure world. *)

val extend : t -> int -> string -> (unit, string) result

val read_pcr : t -> int -> (string, string) result

(** [quote t ~nonce ~selection] — verifiable with
    {!Lt_tpm.Tpm.verify_quote} against {!ek_cert}'s public key. *)
val quote : t -> nonce:string -> selection:int list -> (Lt_tpm.Tpm.quote, string) result

val seal : t -> selection:int list -> string -> (string, string) result
(** Returns an opaque wire blob bound to current PCR state. *)

val unseal : t -> string -> (string option, string) result
