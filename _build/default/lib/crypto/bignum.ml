(* Little-endian limbs, base 2^26; limb products fit in a 63-bit int.
   Invariant: no most-significant zero limb; zero is the empty array. *)

let limb_bits = 26

let base = 1 lsl limb_bits

let mask = base - 1

type t = int array

let zero : t = [||]

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignum.of_int: negative";
  let rec limbs n = if n = 0 then [] else (n land mask) :: limbs (n lsr limb_bits) in
  Array.of_list (limbs n)

let one = of_int 1

let two = of_int 2

let is_zero t = Array.length t = 0

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let bits t =
  let n = Array.length t in
  if n = 0 then 0
  else begin
    let top = t.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + width top 0
  end

let to_int t =
  if bits t > 62 then None
  else begin
    let v = ref 0 in
    for i = Array.length t - 1 downto 0 do
      v := (!v lsl limb_bits) lor t.(i)
    done;
    Some !v
  end

let testbit t i =
  let limb = i / limb_bits and bit = i mod limb_bits in
  limb < Array.length t && (t.(limb) lsr bit) land 1 = 1

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let r = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Bignum.sub: would be negative";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalize r

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (a.(i) * b.(j)) + !carry in
        r.(i + j) <- s land mask;
        carry := s lsr limb_bits
      done;
      (* propagate the final carry; r slots above i+lb may already be set *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land mask;
        carry := s lsr limb_bits;
        incr k
      done
    done;
    normalize r
  end

let shift_left_bits a s =
  if s = 0 then Array.copy a
  else begin
    let limb_shift = s / limb_bits and bit_shift = s mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land mask);
      r.(i + limb_shift + 1) <- r.(i + limb_shift + 1) lor (v lsr limb_bits)
    done;
    normalize r
  end

let shift_right_bits a s =
  if s = 0 then Array.copy a
  else begin
    let limb_shift = s / limb_bits and bit_shift = s mod limb_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let n = la - limb_shift in
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= la then 0
          else (a.(i + limb_shift + 1) lsl (limb_bits - bit_shift)) land mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

(* Short division by a single limb. *)
let divmod_limb a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, of_int !r)

(* Knuth TAOCP vol. 2 Algorithm D. *)
let divmod_knuth a b =
  let n = Array.length b in
  (* D1: normalize so the divisor's top limb has its high bit set *)
  let rec top_width v acc = if v = 0 then acc else top_width (v lsr 1) (acc + 1) in
  let s = limb_bits - top_width b.(n - 1) 0 in
  let u = shift_left_bits a s in
  let v = shift_left_bits b s in
  assert (Array.length v = n);
  let m = Array.length u - n in
  let m = max m 0 in
  (* work array with one extra top limb *)
  let w = Array.make (Array.length u + 1) 0 in
  Array.blit u 0 w 0 (Array.length u);
  let q = Array.make (m + 1) 0 in
  let v1 = v.(n - 1) in
  let v2 = if n >= 2 then v.(n - 2) else 0 in
  for j = m downto 0 do
    (* D3: estimate qhat from the top two limbs *)
    let num = (w.(j + n) lsl limb_bits) lor w.(j + n - 1) in
    let qhat = ref (num / v1) in
    let rhat = ref (num mod v1) in
    if !qhat >= base then begin
      qhat := base - 1;
      rhat := num - (!qhat * v1)
    end;
    let continue_correct = ref true in
    while !continue_correct do
      if !rhat < base && n >= 2
         && !qhat * v2 > (!rhat lsl limb_bits) lor w.(j + n - 2)
      then begin
        decr qhat;
        rhat := !rhat + v1
      end
      else continue_correct := false
    done;
    (* D4: multiply and subtract *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr limb_bits;
      let d = w.(j + i) - (p land mask) - !borrow in
      if d < 0 then begin
        w.(j + i) <- d + base;
        borrow := 1
      end else begin
        w.(j + i) <- d;
        borrow := 0
      end
    done;
    let d = w.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* D6: qhat was one too large; add back *)
      w.(j + n) <- d + base;
      decr qhat;
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let s = w.(j + i) + v.(i) + !carry in
        w.(j + i) <- s land mask;
        carry := s lsr limb_bits
      done;
      w.(j + n) <- (w.(j + n) + !carry) land mask
    end else
      w.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = normalize (Array.sub w 0 n) in
  (normalize q, shift_right_bits r s)

let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, Array.copy a)
  else if Array.length b = 1 then divmod_limb a b.(0)
  else divmod_knuth a b

let rem a b = snd (divmod a b)

let modpow ~base:b ~exp ~modulus =
  if is_zero modulus then raise Division_by_zero;
  if equal modulus one then zero
  else begin
    let result = ref one in
    let b = ref (rem b modulus) in
    let nbits = bits exp in
    for i = 0 to nbits - 1 do
      if testbit exp i then result := rem (mul !result !b) modulus;
      if i < nbits - 1 then b := rem (mul !b !b) modulus
    done;
    !result
  end

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

(* Extended Euclid on signed values represented as (negative?, magnitude). *)
let modinv a m =
  if is_zero m then None
  else begin
    let signed_sub (sa, va) (sb, vb) =
      (* (sa, va) - (sb, vb) *)
      if sa = sb then
        if compare va vb >= 0 then (sa, sub va vb) else (not sa, sub vb va)
      else (sa, add va vb)
    in
    let rec go (old_r, r) (old_s, s) =
      if is_zero r then (old_r, old_s)
      else begin
        let q, rest = divmod old_r r in
        let sq, vq = s in
        let qs = ((if is_zero (mul q vq) then false else sq), mul q vq) in
        go (r, rest) (s, signed_sub old_s qs)
      end
    in
    let g, (sx, x) = go (rem a m, m) ((false, one), (false, zero)) in
    if not (equal g one) then None
    else begin
      let x = rem x m in
      if sx && not (is_zero x) then Some (sub m x) else Some x
    end
  end

let is_even t = Array.length t = 0 || t.(0) land 1 = 0

let of_bytes_be s =
  let acc = ref zero in
  String.iter (fun c -> acc := add (shift_left_bits !acc 8) (of_int (Char.code c))) s;
  !acc

let to_bytes_be ~len t =
  if bits t > len * 8 then invalid_arg "Bignum.to_bytes_be: value too large";
  let b = Bytes.make len '\000' in
  for i = 0 to len - 1 do
    (* byte i (from the right) is bits [8i, 8i+8) *)
    let v = ref 0 in
    for j = 0 to 7 do
      if testbit t ((8 * i) + j) then v := !v lor (1 lsl j)
    done;
    Bytes.set b (len - 1 - i) (Char.chr !v)
  done;
  Bytes.unsafe_to_string b

let random rng ~bits:nbits =
  let nbytes = (nbits + 7) / 8 in
  let s = Drbg.bytes rng nbytes in
  let extra = (nbytes * 8) - nbits in
  let s =
    if extra = 0 then s
    else begin
      let b = Bytes.of_string s in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) land (0xFF lsr extra)));
      Bytes.unsafe_to_string b
    end
  in
  of_bytes_be s

let random_below rng n =
  if is_zero n then invalid_arg "Bignum.random_below: zero bound";
  let nbits = bits n in
  let rec draw () =
    let v = random rng ~bits:nbits in
    if compare v n < 0 then v else draw ()
  in
  draw ()

let pp fmt t =
  if is_zero t then Format.pp_print_string fmt "0x0"
  else begin
    let nbytes = (bits t + 7) / 8 in
    Format.fprintf fmt "0x%s" (Sha256.hex (to_bytes_be ~len:nbytes t))
  end
