type public = { n : Bignum.t; e : Bignum.t }

type keypair = { pub : public; d : Bignum.t }

let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61;
    67; 71; 73; 79; 83; 89; 97; 101; 103; 107; 109; 113; 127; 131; 137;
    139; 149; 151; 157; 163; 167; 173; 179; 181; 191; 193; 197; 199 ]

let divisible_by_small n =
  List.exists
    (fun p ->
      let bp = Bignum.of_int p in
      if Bignum.compare n bp = 0 then false
      else Bignum.is_zero (Bignum.rem n bp))
    small_primes

let miller_rabin_round rng n =
  (* n odd, n > 3; returns true when the round says "probably prime" *)
  let n_minus_1 = Bignum.sub n Bignum.one in
  let rec split d r = if Bignum.is_even d then split (fst (Bignum.divmod d Bignum.two)) (r + 1) else (d, r) in
  let d, r = split n_minus_1 0 in
  let a =
    Bignum.add Bignum.two
      (Bignum.random_below rng (Bignum.sub n (Bignum.of_int 3)))
  in
  let x = Bignum.modpow ~base:a ~exp:d ~modulus:n in
  if Bignum.equal x Bignum.one || Bignum.equal x n_minus_1 then true
  else begin
    let rec loop i x =
      if i >= r - 1 then false
      else begin
        let x = Bignum.modpow ~base:x ~exp:Bignum.two ~modulus:n in
        if Bignum.equal x n_minus_1 then true else loop (i + 1) x
      end
    in
    loop 0 x
  end

let is_probable_prime rng n =
  match Bignum.to_int n with
  | Some v when v < 2 -> false
  | Some v when List.mem v small_primes -> true
  | _ ->
    if Bignum.is_even n || divisible_by_small n then false
    else begin
      let rec rounds i = i >= 16 || (miller_rabin_round rng n && rounds (i + 1)) in
      rounds 0
    end

let two_pow k =
  let rec go acc i = if i = 0 then acc else go (Bignum.mul acc Bignum.two) (i - 1) in
  go Bignum.one k

let random_prime rng ~bits =
  let rec draw () =
    (* force the top bit (full size) and the low bit (odd) *)
    let candidate = Bignum.random rng ~bits in
    let candidate =
      if Bignum.testbit candidate (bits - 1) then candidate
      else Bignum.add candidate (two_pow (bits - 1))
    in
    let candidate =
      if Bignum.is_even candidate then Bignum.add candidate Bignum.one else candidate
    in
    if is_probable_prime rng candidate then candidate else draw ()
  in
  draw ()

let generate ?(bits = 512) rng =
  let bits = max bits 128 in
  let e = Bignum.of_int 65537 in
  let half = bits / 2 in
  let rec attempt () =
    let p = random_prime rng ~bits:half in
    let q = random_prime rng ~bits:(bits - half) in
    if Bignum.equal p q then attempt ()
    else begin
      let n = Bignum.mul p q in
      let phi = Bignum.mul (Bignum.sub p Bignum.one) (Bignum.sub q Bignum.one) in
      match Bignum.modinv e phi with
      | None -> attempt ()
      | Some d -> { pub = { n; e }; d }
    end
  in
  attempt ()

let modulus_bytes pub = (Bignum.bits pub.n + 7) / 8

(* Deterministic full-domain-style padding: 0x01 || FF.. || 0x00 || digest *)
let pad_digest ~len digest =
  let fill = len - String.length digest - 2 in
  if fill < 0 then invalid_arg "Rsa: modulus too small for digest";
  "\x01" ^ String.make fill '\xFF' ^ "\x00" ^ digest

let sign key msg =
  let len = modulus_bytes key.pub in
  let padded = pad_digest ~len:(len - 1) (Sha256.digest msg) in
  let m = Bignum.of_bytes_be padded in
  let s = Bignum.modpow ~base:m ~exp:key.d ~modulus:key.pub.n in
  Bignum.to_bytes_be ~len s

let verify pub ~signature msg =
  let len = modulus_bytes pub in
  if String.length signature <> len then false
  else begin
    let s = Bignum.of_bytes_be signature in
    if Bignum.compare s pub.n >= 0 then false
    else begin
      let m = Bignum.modpow ~base:s ~exp:pub.e ~modulus:pub.n in
      if Bignum.bits m > (len - 1) * 8 then false
      else begin
        let expected = pad_digest ~len:(len - 1) (Sha256.digest msg) in
        Ct.equal (Bignum.to_bytes_be ~len:(len - 1) m) expected
      end
    end
  end

(* Randomized padding: 0x02 || nonzero-random || 0x00 || msg *)
let encrypt rng pub msg =
  let len = modulus_bytes pub in
  let max_msg = len - 1 - 2 - 8 in
  if String.length msg > max_msg then invalid_arg "Rsa.encrypt: message too long";
  let fill = len - 1 - 2 - String.length msg in
  let random_fill =
    String.init fill (fun _ -> Char.chr (1 + Drbg.int rng 255))
  in
  let padded = "\x02" ^ random_fill ^ "\x00" ^ msg in
  let m = Bignum.of_bytes_be padded in
  let c = Bignum.modpow ~base:m ~exp:pub.e ~modulus:pub.n in
  Bignum.to_bytes_be ~len c

let decrypt key ct =
  let len = modulus_bytes key.pub in
  if String.length ct <> len then None
  else begin
    let c = Bignum.of_bytes_be ct in
    if Bignum.compare c key.pub.n >= 0 then None
    else begin
      let m = Bignum.modpow ~base:c ~exp:key.d ~modulus:key.pub.n in
      if Bignum.bits m > (len - 1) * 8 then None
      else begin
      let padded = Bignum.to_bytes_be ~len:(len - 1) m in
      if String.length padded < 3 || padded.[0] <> '\x02' then None
      else
        match String.index_from_opt padded 1 '\x00' with
        | None -> None
        | Some i -> Some (String.sub padded (i + 1) (String.length padded - i - 1))
      end
    end
  end

let public_to_string pub =
  let n_len = (Bignum.bits pub.n + 7) / 8 in
  let e_len = (Bignum.bits pub.e + 7) / 8 in
  Printf.sprintf "%04d%s%04d%s" n_len
    (Bignum.to_bytes_be ~len:n_len pub.n)
    e_len
    (Bignum.to_bytes_be ~len:e_len pub.e)

let public_of_string s =
  let read_len off =
    if String.length s < off + 4 then None
    else int_of_string_opt (String.sub s off 4)
  in
  match read_len 0 with
  | None -> None
  | Some n_len ->
    if n_len < 0 || String.length s < 4 + n_len + 4 then None
    else begin
      let n = Bignum.of_bytes_be (String.sub s 4 n_len) in
      match read_len (4 + n_len) with
      | None -> None
      | Some e_len ->
        if e_len < 0 || String.length s <> 4 + n_len + 4 + e_len then None
        else begin
          let e = Bignum.of_bytes_be (String.sub s (4 + n_len + 4) e_len) in
          Some { n; e }
        end
    end

let fingerprint pub = Sha256.digest (public_to_string pub)
