type t = {
  subject : string;
  pubkey : Rsa.public;
  issuer : string;
  signature : string;
}

let tbs ~subject ~issuer pubkey =
  Printf.sprintf "cert|%s|%s|%s" subject issuer (Rsa.public_to_string pubkey)

let issue ~ca_name ~ca_key ~subject pubkey =
  { subject;
    pubkey;
    issuer = ca_name;
    signature = Rsa.sign ca_key (tbs ~subject ~issuer:ca_name pubkey) }

let self_signed ~name (key : Rsa.keypair) =
  issue ~ca_name:name ~ca_key:key ~subject:name key.pub

let verify ~issuer_pub t =
  Rsa.verify issuer_pub ~signature:t.signature
    (tbs ~subject:t.subject ~issuer:t.issuer t.pubkey)

let field s = Printf.sprintf "%06d%s" (String.length s) s

let to_string t =
  field t.subject ^ field t.issuer ^ field (Rsa.public_to_string t.pubkey)
  ^ field t.signature

let of_string s =
  let read off =
    if String.length s < off + 6 then None
    else
      match int_of_string_opt (String.sub s off 6) with
      | Some n when n >= 0 && String.length s >= off + 6 + n ->
        Some (String.sub s (off + 6) n, off + 6 + n)
      | _ -> None
  in
  match read 0 with
  | None -> None
  | Some (subject, o1) ->
    (match read o1 with
     | None -> None
     | Some (issuer, o2) ->
       (match read o2 with
        | None -> None
        | Some (pub_str, o3) ->
          (match read o3 with
           | None -> None
           | Some (signature, o4) when o4 = String.length s ->
             (match Rsa.public_of_string pub_str with
              | None -> None
              | Some pubkey -> Some { subject; pubkey; issuer; signature })
           | Some _ -> None)))
