lib/crypto/hkdf.ml: Buffer Char Hmac String
