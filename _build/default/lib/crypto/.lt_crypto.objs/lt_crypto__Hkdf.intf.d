lib/crypto/hkdf.mli:
