lib/crypto/hmac.ml: Bytes Char Ct Sha256 String
