lib/crypto/speck.mli:
