lib/crypto/hmac.mli:
