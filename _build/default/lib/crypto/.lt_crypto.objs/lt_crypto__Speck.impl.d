lib/crypto/speck.ml: Array Bytes Char Hkdf Hmac Printf String
