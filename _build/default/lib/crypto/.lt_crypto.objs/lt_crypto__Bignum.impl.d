lib/crypto/bignum.ml: Array Bytes Char Drbg Format Sha256 Stdlib String
