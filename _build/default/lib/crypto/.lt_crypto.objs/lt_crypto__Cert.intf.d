lib/crypto/cert.mli: Rsa
