lib/crypto/ct.ml: Bool Char String
