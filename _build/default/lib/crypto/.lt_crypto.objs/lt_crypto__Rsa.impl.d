lib/crypto/rsa.ml: Bignum Char Ct Drbg List Printf Sha256 String
