lib/crypto/ct.mli:
