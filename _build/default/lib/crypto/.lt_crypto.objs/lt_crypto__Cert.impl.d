lib/crypto/cert.ml: Printf Rsa String
