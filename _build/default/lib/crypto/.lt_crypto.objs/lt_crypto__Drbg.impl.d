lib/crypto/drbg.ml: Bytes Char Int64
