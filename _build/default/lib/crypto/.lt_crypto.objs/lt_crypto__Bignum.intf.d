lib/crypto/bignum.mli: Drbg Format
