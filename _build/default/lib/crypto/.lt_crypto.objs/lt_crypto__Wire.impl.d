lib/crypto/wire.ml: Buffer List Printf String
