lib/crypto/drbg.mli:
