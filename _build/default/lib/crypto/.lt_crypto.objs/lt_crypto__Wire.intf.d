lib/crypto/wire.mli:
