(** HMAC-SHA256 (RFC 2104). Tags are 32-byte strings. *)

val tag_size : int
(** 32. *)

(** [mac ~key msg] is the HMAC-SHA256 tag of [msg] under [key]. *)
val mac : key:string -> string -> string

(** [verify ~key ~tag msg] checks [tag] in constant time. *)
val verify : key:string -> tag:string -> string -> bool
