let key_size = 16

let nonce_size = 8

let rounds = 27

let mask32 = 0xFFFFFFFF

type key = int array (* round keys, 32-bit values *)

let ror x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

let rol x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

let round k (x, y) =
  let x = (ror x 8 + y) land mask32 lxor k in
  let y = rol y 3 lxor x in
  (x, y)

let unround k (x, y) =
  let y = ror (y lxor x) 3 in
  let x = rol (((x lxor k) - y) land mask32) 8 in
  (x, y)

let word_of s off =
  (Char.code s.[off] lsl 24) lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8) lor Char.code s.[off + 3]

let key_of_string s =
  if String.length s <> key_size then invalid_arg "Speck.key_of_string: need 16 bytes";
  (* key words: k0 plus the l-sequence, expanded with the round function *)
  let k = Array.make rounds 0 in
  let l = Array.make (rounds + 2) 0 in
  k.(0) <- word_of s 12;
  l.(0) <- word_of s 8;
  l.(1) <- word_of s 4;
  l.(2) <- word_of s 0;
  for i = 0 to rounds - 2 do
    let x, y = round i (l.(i), k.(i)) in
    l.(i + 3) <- x;
    k.(i + 1) <- y
  done;
  k

let encrypt_block key (x, y) =
  let state = ref (x land mask32, y land mask32) in
  for i = 0 to rounds - 1 do
    state := round key.(i) !state
  done;
  !state

let decrypt_block key (x, y) =
  let state = ref (x land mask32, y land mask32) in
  for i = rounds - 1 downto 0 do
    state := unround key.(i) !state
  done;
  !state

let ctr ~key ~nonce msg =
  if String.length nonce <> nonce_size then invalid_arg "Speck.ctr: need 8-byte nonce";
  let n_hi = word_of nonce 0 and n_lo = word_of nonce 4 in
  let len = String.length msg in
  let out = Bytes.create len in
  let block = ref 0 in
  let pos = ref 0 in
  while !pos < len do
    (* counter block = nonce xor block index, split across the halves *)
    let ctr_hi = n_hi lxor (!block lsr 32 land mask32) in
    let ctr_lo = n_lo lxor (!block land mask32) in
    let x, y = encrypt_block key (ctr_hi, ctr_lo) in
    let ks = [| x lsr 24; x lsr 16; x lsr 8; x; y lsr 24; y lsr 16; y lsr 8; y |] in
    let k = min 8 (len - !pos) in
    for j = 0 to k - 1 do
      Bytes.set out (!pos + j)
        (Char.chr (Char.code msg.[!pos + j] lxor (ks.(j) land 0xFF)))
    done;
    pos := !pos + k;
    incr block
  done;
  Bytes.unsafe_to_string out

module Aead = struct
  type sealed = { nonce : string; ciphertext : string; tag : string }

  let derive_keys master =
    let enc = Hkdf.derive ~secret:master ~salt:"lt-aead" ~info:"enc" key_size in
    let mac = Hkdf.derive ~secret:master ~salt:"lt-aead" ~info:"mac" 32 in
    (key_of_string enc, mac)

  let mac_input ~nonce ~ad ciphertext =
    (* length-prefix the associated data so (ad, ct) splits are unambiguous *)
    Printf.sprintf "%08d" (String.length ad) ^ ad ^ nonce ^ ciphertext

  let encrypt ~key ~nonce ~ad msg =
    let enc_key, mac_key = derive_keys key in
    let ciphertext = ctr ~key:enc_key ~nonce msg in
    let tag = Hmac.mac ~key:mac_key (mac_input ~nonce ~ad ciphertext) in
    { nonce; ciphertext; tag }

  let decrypt ~key ~ad { nonce; ciphertext; tag } =
    if String.length nonce <> nonce_size then None
    else begin
      let enc_key, mac_key = derive_keys key in
      if Hmac.verify ~key:mac_key ~tag (mac_input ~nonce ~ad ciphertext) then
        Some (ctr ~key:enc_key ~nonce ciphertext)
      else None
    end

  let to_wire { nonce; ciphertext; tag } =
    Printf.sprintf "%08d" (String.length ciphertext) ^ nonce ^ tag ^ ciphertext

  let of_wire s =
    if String.length s < 8 + nonce_size + Hmac.tag_size then None
    else
      match int_of_string_opt (String.sub s 0 8) with
      | None -> None
      | Some ct_len ->
        let need = 8 + nonce_size + Hmac.tag_size + ct_len in
        if ct_len < 0 || String.length s <> need then None
        else begin
          let nonce = String.sub s 8 nonce_size in
          let tag = String.sub s (8 + nonce_size) Hmac.tag_size in
          let ciphertext = String.sub s (8 + nonce_size + Hmac.tag_size) ct_len in
          Some { nonce; ciphertext; tag }
        end
end
