(** SPECK64/128 block cipher with CTR mode and an encrypt-then-MAC AEAD.

    SPECK is chosen because it is tiny, published, and implementable
    without lookup tables — a good stand-in for the AES engines fused
    into the simulated devices. Keys are 16 bytes; nonces 8 bytes. *)

type key

val key_size : int
(** 16 bytes. *)

val nonce_size : int
(** 8 bytes. *)

(** [key_of_string s] builds a key schedule. Raises [Invalid_argument]
    unless [String.length s = 16]. *)
val key_of_string : string -> key

(** [encrypt_block key (x, y)] encrypts one 64-bit block given as two
    32-bit halves. *)
val encrypt_block : key -> int * int -> int * int

(** [decrypt_block key (x, y)] inverts {!encrypt_block}. *)
val decrypt_block : key -> int * int -> int * int

(** [ctr ~key ~nonce msg] en/decrypts [msg] with the CTR keystream
    (involution: apply twice to recover). *)
val ctr : key:key -> nonce:string -> string -> string

(** Authenticated encryption: CTR + HMAC-SHA256 over nonce, associated
    data and ciphertext (encrypt-then-MAC with independent derived keys). *)
module Aead : sig
  type sealed = { nonce : string; ciphertext : string; tag : string }

  (** [encrypt ~key ~nonce ~ad msg] seals [msg]; [key] is the 16-byte
      master key string from which cipher and MAC keys are derived. *)
  val encrypt : key:string -> nonce:string -> ad:string -> string -> sealed

  (** [decrypt ~key ~ad sealed] is [Some plaintext], or [None] if the tag
      check fails (tampering, wrong key or wrong associated data). *)
  val decrypt : key:string -> ad:string -> sealed -> string option

  (** [to_wire s] / [of_wire] give a stable string framing for sending a
      sealed box over the simulated network or storing it on disk. *)
  val to_wire : sealed -> string

  val of_wire : string -> sealed option
end
