(** Arbitrary-precision natural numbers, built from scratch (no zarith).

    Little-endian limbs in base 2^26 so that limb products fit a native
    63-bit int. Provides exactly what {!Rsa} and the attestation
    protocols need: ring arithmetic, Knuth-D division, modular
    exponentiation, gcd and modular inverse, and big-endian byte
    conversion for wire formats. All values are non-negative. *)

type t

val zero : t

val one : t

val two : t

(** [of_int n] converts a non-negative int. Raises [Invalid_argument] on
    negatives. *)
val of_int : int -> t

(** [to_int t] is [Some n] if [t] fits a native int. *)
val to_int : t -> int option

(** [of_bytes_be s] interprets [s] as a big-endian unsigned integer. *)
val of_bytes_be : string -> t

(** [to_bytes_be ~len t] is the big-endian encoding left-padded with
    zeros to [len] bytes. Raises [Invalid_argument] if [t] needs more
    than [len] bytes. *)
val to_bytes_be : len:int -> t -> string

val compare : t -> t -> int

val equal : t -> t -> bool

val is_zero : t -> bool

(** [bits t] is the position of the highest set bit plus one (0 for zero). *)
val bits : t -> int

(** [testbit t i] is bit [i] (little-endian bit order). *)
val testbit : t -> int -> bool

val add : t -> t -> t

(** [sub a b] requires [a >= b]; raises [Invalid_argument] otherwise. *)
val sub : t -> t -> t

val mul : t -> t -> t

(** [divmod a b] is [(a / b, a mod b)]. Raises [Division_by_zero]. *)
val divmod : t -> t -> t * t

val rem : t -> t -> t

(** [modpow ~base ~exp ~modulus] is [base^exp mod modulus]. *)
val modpow : base:t -> exp:t -> modulus:t -> t

val gcd : t -> t -> t

(** [modinv a m] is [Some x] with [a*x = 1 (mod m)] when [gcd a m = 1]. *)
val modinv : t -> t -> t option

(** [is_even t]. *)
val is_even : t -> bool

(** [random rng ~bits] draws a uniform number below [2^bits]. *)
val random : Drbg.t -> bits:int -> t

(** [random_below rng n] draws uniformly in [\[0, n)]; [n] must be > 0. *)
val random_below : Drbg.t -> t -> t

(** [pp] prints in hexadecimal. *)
val pp : Format.formatter -> t -> unit
