let encode fields =
  let buf = Buffer.create 64 in
  List.iter
    (fun f ->
      Buffer.add_string buf (Printf.sprintf "%08d" (String.length f));
      Buffer.add_string buf f)
    fields;
  Buffer.contents buf

let decode s =
  let rec go off acc =
    if off = String.length s then Some (List.rev acc)
    else if off + 8 > String.length s then None
    else
      match int_of_string_opt (String.sub s off 8) with
      | Some n when n >= 0 && off + 8 + n <= String.length s ->
        go (off + 8 + n) (String.sub s (off + 8) n :: acc)
      | _ -> None
  in
  go 0 []

let tagged tag fields = encode (tag :: fields)

let untag s =
  match decode s with
  | Some (tag :: fields) -> Some (tag, fields)
  | Some [] | None -> None
