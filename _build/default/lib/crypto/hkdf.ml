let extract ~salt ikm = Hmac.mac ~key:salt ikm

let expand ~prk ~info len =
  if len < 0 || len > 255 * Hmac.tag_size then invalid_arg "Hkdf.expand: bad length";
  let out = Buffer.create len in
  let t = ref "" in
  let i = ref 1 in
  while Buffer.length out < len do
    t := Hmac.mac ~key:prk (!t ^ info ^ String.make 1 (Char.chr !i));
    Buffer.add_string out !t;
    incr i
  done;
  String.sub (Buffer.contents out) 0 len

let derive ~secret ~salt ~info len = expand ~prk:(extract ~salt secret) ~info len
