(** RSA over {!Bignum}: key generation (Miller-Rabin primes), PKCS#1-style
    signatures over SHA-256 digests, and raw public-key encryption used by
    the simulated TLS handshake and the TPM/SGX quoting services.

    Key sizes default to 512 bits — scaled down for simulation speed, as
    recorded in DESIGN.md; the protocol structure is what matters. *)

type public = { n : Bignum.t; e : Bignum.t }

type keypair = { pub : public; d : Bignum.t }

(** [generate ?bits rng] creates a fresh keypair ([bits] defaults to 512,
    minimum 128). Deterministic given the DRBG state. *)
val generate : ?bits:int -> Drbg.t -> keypair

(** [is_probable_prime rng n] runs trial division + 16 Miller-Rabin
    rounds. *)
val is_probable_prime : Drbg.t -> Bignum.t -> bool

(** [sign key msg] signs SHA-256(msg) with deterministic padding.
    The signature is a big-endian string of the modulus size. *)
val sign : keypair -> string -> string

(** [verify pub ~signature msg] checks a signature from {!sign}. *)
val verify : public -> signature:string -> string -> bool

(** [encrypt rng pub msg] encrypts a short message (at most modulus size
    minus 16 bytes) with randomized padding. *)
val encrypt : Drbg.t -> public -> string -> string

(** [decrypt key ct] recovers the plaintext, or [None] if padding is
    malformed. *)
val decrypt : keypair -> string -> string option

(** [public_to_string pub] / [public_of_string] — stable wire encoding,
    also used as the hash input for key fingerprints. *)
val public_to_string : public -> string

val public_of_string : string -> public option

(** [fingerprint pub] is SHA-256 of the wire encoding. *)
val fingerprint : public -> string

val modulus_bytes : public -> int
