(** Constant-time(-style) comparisons.

    The simulation has no real timing side channel at this layer, but the
    substrates are written as the paper prescribes: secret comparisons go
    through [Ct] so the discipline is visible in the code and testable. *)

(** [equal a b] compares without early exit; false when lengths differ. *)
val equal : string -> string -> bool

(** [select c a b] is [a] when [c] is true, else [b], branch-free in spirit. *)
val select : bool -> int -> int -> int
