(** HKDF (RFC 5869) over HMAC-SHA256: key extraction and expansion for
    deriving channel keys, sealing keys and per-identity keys. *)

(** [extract ~salt ikm] condenses input keying material into a PRK. *)
val extract : salt:string -> string -> string

(** [expand ~prk ~info len] derives [len] bytes (len <= 255*32). *)
val expand : prk:string -> info:string -> int -> string

(** [derive ~secret ~salt ~info len] = [expand (extract ~salt secret) ~info len]. *)
val derive : secret:string -> salt:string -> info:string -> int -> string
