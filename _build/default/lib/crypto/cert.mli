(** Minimal certificates: a subject name bound to an RSA public key by an
    issuer's signature. Enough PKI for endorsement keys (TPM), quoting
    services (SGX) and the TLS-like handshake — chains are one level
    (root CA -> leaf) as in the paper's examples. *)

type t = {
  subject : string;
  pubkey : Rsa.public;
  issuer : string;
  signature : string;
}

(** [issue ~ca_name ~ca_key ~subject pubkey] signs a leaf certificate. *)
val issue : ca_name:string -> ca_key:Rsa.keypair -> subject:string -> Rsa.public -> t

(** [self_signed ~name key] — a root certificate. *)
val self_signed : name:string -> Rsa.keypair -> t

(** [verify ~issuer_pub t] checks the signature binds subject and key. *)
val verify : issuer_pub:Rsa.public -> t -> bool

(** [to_string] / [of_string] — wire encoding for sending certificates
    over the simulated network. *)
val to_string : t -> string

val of_string : string -> t option
