let equal a b =
  if String.length a <> String.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to String.length a - 1 do
      acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
    done;
    !acc = 0
  end

let select c a b =
  let mask = - (Bool.to_int c) in
  (a land mask) lor (b land lnot mask)
