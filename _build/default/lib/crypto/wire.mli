(** Length-prefixed string framing for protocol messages.

    Every protocol in the simulation (TLS-like handshake, attestation
    evidence, VPFS metadata) frames its fields with this module so
    parsers are total and tampering yields [None], never a crash. *)

(** [encode fields] frames a list of strings. *)
val encode : string list -> string

(** [decode s] recovers the exact field list, or [None] on malformed
    input (wrong lengths, trailing garbage). *)
val decode : string -> string list option

(** [tagged tag fields] frames a message with a leading tag field. *)
val tagged : string -> string list -> string

(** [untag s] splits a tagged message into [(tag, fields)]. *)
val untag : string -> (string * string list) option
