(** SHA-256 (FIPS 180-4), pure OCaml.

    Used as the measurement hash for launch chains, PCR extension,
    enclave measurement and Merkle trees. Digests are 32-byte strings. *)

type ctx

val digest_size : int
(** 32. *)

(** [init ()] is a fresh hashing context. *)
val init : unit -> ctx

(** [feed ctx s] absorbs [s]. *)
val feed : ctx -> string -> unit

(** [finalize ctx] returns the 32-byte digest; [ctx] must not be reused. *)
val finalize : ctx -> string

(** [digest s] is the one-shot digest of [s]. *)
val digest : string -> string

(** [digest_concat parts] hashes the concatenation of [parts] without
    building the intermediate string. *)
val digest_concat : string list -> string

(** [hex d] renders a digest (or any string) as lowercase hex. *)
val hex : string -> string
