let tag_size = 32

let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let b = Bytes.make block_size '\000' in
  Bytes.blit_string key 0 b 0 (String.length key);
  Bytes.unsafe_to_string b

let xor_pad key pad =
  String.init block_size (fun i -> Char.chr (Char.code key.[i] lxor pad))

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha256.digest_concat [ xor_pad key 0x36; msg ] in
  Sha256.digest_concat [ xor_pad key 0x5c; inner ]

let verify ~key ~tag msg = Ct.equal (mac ~key msg) tag
