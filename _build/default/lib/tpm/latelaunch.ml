open Lt_crypto

type pal = {
  pal_name : string;
  pal_code : string;
  handler : string -> string;
}

type session_result = {
  output : string;
  pal_quote : Tpm.quote;
  ticks : int;
}

let suspend_cost = 50

let resume_cost = 50

let measure pal = Sha256.digest (Printf.sprintf "pal|%s|%s" pal.pal_name pal.pal_code)

let expected_drtm_composite tpm pal =
  (* simulate on a scratch bank: zero DRTM PCR extended with the PAL *)
  ignore tpm;
  let scratch = Pcr.create () in
  Pcr.extend scratch Pcr.drtm_index (measure pal);
  Pcr.composite scratch [ Pcr.drtm_index ]

let execute ?clock tpm pal ~nonce ~input =
  let charge n = match clock with None -> () | Some c -> Lt_hw.Clock.advance c n in
  charge suspend_cost;
  (* the late-launch instruction: reset the dynamic PCR, measure, run *)
  Pcr.reset_drtm (Tpm.pcrs tpm);
  Tpm.extend tpm Pcr.drtm_index (measure pal);
  charge (max 1 (String.length pal.pal_code / 64));
  let output = pal.handler input in
  let pal_quote = Tpm.quote tpm ~nonce ~selection:[ Pcr.drtm_index ] in
  charge resume_cost;
  let ticks =
    suspend_cost + max 1 (String.length pal.pal_code / 64) + resume_cost
  in
  { output; pal_quote; ticks }

let seal_for tpm data = Tpm.seal tpm ~selection:[ Pcr.drtm_index ] data

let unseal_for tpm sealed = Tpm.unseal tpm sealed
