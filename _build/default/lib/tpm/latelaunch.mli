(** DRTM late launch, Flicker-style (§II-B).

    A special CPU instruction stops all running software, resets the
    dynamic PCR, measures a small piece of code (the PAL) into it and
    hands that code the machine. The TPM can then attest exactly that
    code — without the BIOS, boot loader or OS in the trust chain.
    Multiple PALs are mutually isolated by their distinct PCR-17
    identities (different sealing keys), but they can never run
    concurrently: the `latelaunch` experiment quantifies that trade-off
    against SGX's concurrent enclaves. *)

type pal = {
  pal_name : string;
  pal_code : string;                 (** measured identity *)
  handler : string -> string;        (** the PAL's computation *)
}

type session_result = {
  output : string;
  pal_quote : Tpm.quote;             (** over the DRTM PCR, proving who ran *)
  ticks : int;                       (** simulated cost incl. world stop/resume *)
}

(** [execute ?clock tpm pal ~nonce ~input] performs one late-launch
    session: suspend world, reset+measure, run, quote, resume. Sessions
    are serialized by construction — there is exactly one machine. *)
val execute :
  ?clock:Lt_hw.Clock.t -> Tpm.t -> pal -> nonce:string -> input:string ->
  session_result

(** [measure pal] is the PAL's reference measurement for verifiers. *)
val measure : pal -> string

(** [expected_drtm_composite pal] is the composite a verifier expects in
    [pal_quote] when exactly [pal] ran after a DRTM reset. *)
val expected_drtm_composite : Tpm.t -> pal -> string

(** [seal_for tpm pal data] binds data to the PAL's identity while that
    PAL is the active DRTM session; a different PAL cannot unseal it.
    (Call from inside the handler in real Flicker; here: seals against
    the current DRTM PCR value.) *)
val seal_for : Tpm.t -> string -> Tpm.sealed

val unseal_for : Tpm.t -> Tpm.sealed -> string option
