open Lt_crypto

type stage = {
  stage_name : string;
  code : string;
  signature : string option;
}

type policy =
  | Secure_boot of { vendor_pub : Rsa.public }
  | Authenticated_boot of { tpm : Tpm.t; pcr : int }

type outcome = {
  ran : string list;
  refused : (string * string) option;
}

let stage_body ~name code = Printf.sprintf "stage|%s|%s" name code

let sign_stage vendor_key ~name code =
  { stage_name = name;
    code;
    signature = Some (Rsa.sign vendor_key (stage_body ~name code)) }

let unsigned_stage ~name code = { stage_name = name; code; signature = None }

let measure stage = Sha256.digest (stage_body ~name:stage.stage_name stage.code)

let run_chain policy stages =
  let rec go ran = function
    | [] -> { ran = List.rev ran; refused = None }
    | stage :: rest ->
      (match policy with
       | Secure_boot { vendor_pub } ->
         let ok =
           match stage.signature with
           | None -> false
           | Some signature ->
             Rsa.verify vendor_pub ~signature
               (stage_body ~name:stage.stage_name stage.code)
         in
         if ok then go (stage.stage_name :: ran) rest
         else
           { ran = List.rev ran;
             refused = Some (stage.stage_name, "signature check failed") }
       | Authenticated_boot { tpm; pcr } ->
         (* measure before execute; never refuse *)
         Tpm.extend tpm pcr (measure stage);
         go (stage.stage_name :: ran) rest)
  in
  go [] stages
