lib/tpm/boot.ml: List Lt_crypto Printf Rsa Sha256 Tpm
