lib/tpm/pcr.ml: Array List Lt_crypto Printf Sha256 Stdlib String
