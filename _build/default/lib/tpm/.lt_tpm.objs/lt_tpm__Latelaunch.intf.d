lib/tpm/latelaunch.mli: Lt_hw Tpm
