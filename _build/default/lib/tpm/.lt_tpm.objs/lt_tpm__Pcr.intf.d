lib/tpm/pcr.mli:
