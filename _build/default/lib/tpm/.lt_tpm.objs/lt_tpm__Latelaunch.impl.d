lib/tpm/latelaunch.ml: Lt_crypto Lt_hw Pcr Printf Sha256 String Tpm
