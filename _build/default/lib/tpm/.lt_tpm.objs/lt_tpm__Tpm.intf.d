lib/tpm/tpm.mli: Lt_crypto Pcr
