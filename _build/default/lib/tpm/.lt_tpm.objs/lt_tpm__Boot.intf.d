lib/tpm/boot.mli: Lt_crypto Tpm
