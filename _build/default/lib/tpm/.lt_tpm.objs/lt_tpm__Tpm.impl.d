lib/tpm/tpm.ml: Cert Ct Drbg Hashtbl Hkdf List Lt_crypto Pcr Printf Rsa Speck Stdlib String
