(** Launch chains: secure boot vs authenticated boot (§II-D).

    Both policies share one trust-anchor mechanism — an unchangeable
    first stage that oversees what runs next — and differ only in the
    launch policy it enforces:
    - {e secure boot} checks a vendor signature per stage and refuses to
      run anything unsigned;
    - {e authenticated boot} measures each stage into a PCR and runs it
      regardless, leaving an unforgeable log for later attestation. *)

type stage = {
  stage_name : string;
  code : string;                  (** the bytes that will execute *)
  signature : string option;      (** vendor signature, if any *)
}

type policy =
  | Secure_boot of { vendor_pub : Lt_crypto.Rsa.public }
  | Authenticated_boot of { tpm : Tpm.t; pcr : int }

type outcome = {
  ran : string list;                     (** stage names actually executed *)
  refused : (string * string) option;    (** stage name, reason *)
}

(** [sign_stage vendor_key ~name code] is a properly signed stage. *)
val sign_stage : Lt_crypto.Rsa.keypair -> name:string -> string -> stage

(** [unsigned_stage ~name code] — e.g. a tampered or custom image. *)
val unsigned_stage : name:string -> string -> stage

(** [measure stage] is the SHA-256 of its code — what PCRs record and
    verifiers whitelist. *)
val measure : stage -> string

(** [run_chain policy stages] walks the boot chain under the policy. *)
val run_chain : policy -> stage list -> outcome
