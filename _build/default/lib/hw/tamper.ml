type t = { mem : Phys_mem.t }

let create mem = { mem }

let dump t ~addr ~len = Phys_mem.phys_read t.mem ~addr ~len

let patch t ~addr data = Phys_mem.phys_write t.mem ~addr data

let flip_bit t ~addr ~bit =
  if bit < 0 || bit > 7 then invalid_arg "Tamper.flip_bit";
  let b = Phys_mem.phys_read t.mem ~addr ~len:1 in
  let v = Char.code b.[0] lxor (1 lsl bit) in
  Phys_mem.phys_write t.mem ~addr (String.make 1 (Char.chr v))

let scan t ~needle =
  if String.length needle = 0 then invalid_arg "Tamper.scan: empty needle";
  let matches = ref [] in
  List.iter
    (fun (r : Phys_mem.region) ->
      if not r.on_chip then begin
        let hay = Phys_mem.phys_read t.mem ~addr:r.base ~len:r.size in
        let n = String.length needle in
        for i = 0 to r.size - n do
          if String.sub hay i n = needle then matches := (r.base + i) :: !matches
        done
      end)
    (Phys_mem.regions t.mem);
  List.rev !matches
