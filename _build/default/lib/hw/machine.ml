type t = {
  clock : Clock.t;
  mem : Phys_mem.t;
  iommu : Iommu.t;
  bus : Bus.t;
  cache : Cache.t;
  fuses : Fuse.t;
  dram_frames : Frame_alloc.t;
  rom_base : int;
  rom_size : int;
  sram_base : int;
  sram_size : int;
  dram_base : int;
  dram_size : int;
}

let create ?(dram_pages = 1024) ?(cache_sets = 64) ?(cache_ways = 4)
    ?(iommu_enabled = true) () =
  let page = Mmu.page_size in
  let rom_base = 0 and rom_size = 16 * page in
  let sram_base = rom_size and sram_size = 64 * page in
  let dram_base = rom_size + sram_size and dram_size = dram_pages * page in
  let mem =
    Phys_mem.create
      [ { Phys_mem.name = "rom"; base = rom_base; size = rom_size;
          on_chip = true; writable = false };
        { Phys_mem.name = "sram"; base = sram_base; size = sram_size;
          on_chip = true; writable = true };
        { Phys_mem.name = "dram"; base = dram_base; size = dram_size;
          on_chip = false; writable = true } ]
  in
  let clock = Clock.create () in
  let iommu = Iommu.create ~enabled:iommu_enabled in
  { clock;
    mem;
    iommu;
    bus = Bus.create mem iommu clock;
    cache = Cache.create ~sets:cache_sets ~ways:cache_ways;
    fuses = Fuse.create ();
    dram_frames = Frame_alloc.create ~first_page:(dram_base / page) ~pages:dram_pages;
    rom_base;
    rom_size;
    sram_base;
    sram_size;
    dram_base;
    dram_size }

let load_rom t ~off code =
  if off < 0 || off + String.length code > t.rom_size then
    invalid_arg "Machine.load_rom: outside ROM";
  Phys_mem.manufacture_write t.mem ~addr:(t.rom_base + off) code

let rom_contents t ~off ~len =
  if off < 0 || off + len > t.rom_size then invalid_arg "Machine.rom_contents";
  Phys_mem.cpu_read t.mem ~addr:(t.rom_base + off) ~len

let tamper t = Tamper.create t.mem
