(** Physical attacker (§II-D, "Physical Exposure of Data").

    Models an adversary with probes on the memory bus: they can dump and
    patch off-chip DRAM at will, but cannot reach inside the package
    (on-chip SRAM, ROM, caches, fuse bank). Used by the
    `physical-attack` experiment to show that MMU isolation alone does
    not resist this attacker while MEE-covered memory does. *)

type t

val create : Phys_mem.t -> t

(** [dump t ~addr ~len] reads raw (possibly ciphertext) bytes from
    off-chip memory. Raises [Phys_mem.Bad_address] on on-chip targets. *)
val dump : t -> addr:int -> len:int -> string

(** [patch t ~addr data] overwrites raw off-chip bytes — the cold-boot /
    bus-glitch attack. MEE-covered blocks will fail their MAC on the
    next CPU read. *)
val patch : t -> addr:int -> string -> unit

(** [flip_bit t ~addr ~bit] flips one bit in place. *)
val flip_bit : t -> addr:int -> bit:int -> unit

(** [scan t ~needle] searches all off-chip regions for [needle] and
    returns the match addresses — "can the attacker find the secret?". *)
val scan : t -> needle:string -> int list
