type t = {
  mutable on : bool;
  tables : (string, (int, bool) Hashtbl.t) Hashtbl.t; (* device -> ppage -> writable *)
}

let create ~enabled = { on = enabled; tables = Hashtbl.create 8 }

let enabled t = t.on

let set_enabled t v = t.on <- v

let table_for t device =
  match Hashtbl.find_opt t.tables device with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 16 in
    Hashtbl.replace t.tables device tbl;
    tbl

let grant t ~device ~ppage ~writable =
  Hashtbl.replace (table_for t device) ppage writable

let revoke t ~device ~ppage =
  match Hashtbl.find_opt t.tables device with
  | None -> ()
  | Some tbl -> Hashtbl.remove tbl ppage

let check t ~device ~paddr ~write =
  if not t.on then true
  else
    match Hashtbl.find_opt t.tables device with
    | None -> false
    | Some tbl ->
      (match Hashtbl.find_opt tbl (paddr / Mmu.page_size) with
       | None -> false
       | Some writable -> (not write) || writable)

let reachable t ~device =
  if not t.on then None
  else
    match Hashtbl.find_opt t.tables device with
    | None -> Some []
    | Some tbl ->
      Some (Hashtbl.fold (fun p _ acc -> p :: acc) tbl [] |> List.sort_uniq Stdlib.compare)
