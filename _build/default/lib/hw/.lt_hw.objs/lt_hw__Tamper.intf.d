lib/hw/tamper.mli: Phys_mem
