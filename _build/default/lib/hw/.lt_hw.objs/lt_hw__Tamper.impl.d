lib/hw/tamper.ml: Char List Phys_mem String
