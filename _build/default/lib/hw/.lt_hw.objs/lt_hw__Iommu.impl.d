lib/hw/iommu.ml: Hashtbl List Mmu Stdlib
