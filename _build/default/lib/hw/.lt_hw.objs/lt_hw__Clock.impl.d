lib/hw/clock.ml:
