lib/hw/cache.mli:
