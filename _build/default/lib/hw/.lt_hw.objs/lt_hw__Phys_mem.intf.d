lib/hw/phys_mem.mli:
