lib/hw/phys_mem.ml: Buffer Bytes Char Ct Hashtbl Hkdf Hmac List Lt_crypto Printf Sha256 Stdlib String
