lib/hw/frame_alloc.ml: Hashtbl List
