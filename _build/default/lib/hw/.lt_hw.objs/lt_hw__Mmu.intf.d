lib/hw/mmu.mli: Format
