lib/hw/clock.mli:
