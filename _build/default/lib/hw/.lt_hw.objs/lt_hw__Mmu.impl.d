lib/hw/mmu.ml: Format Hashtbl List Stdlib
