lib/hw/fuse.ml: Hashtbl List Printf Stdlib
