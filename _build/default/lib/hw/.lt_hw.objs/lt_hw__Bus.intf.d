lib/hw/bus.mli: Clock Format Iommu Phys_mem
