lib/hw/machine.ml: Bus Cache Clock Frame_alloc Fuse Iommu Mmu Phys_mem String Tamper
