lib/hw/iommu.mli:
