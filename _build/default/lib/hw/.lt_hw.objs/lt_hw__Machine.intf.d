lib/hw/machine.mli: Bus Cache Clock Frame_alloc Fuse Iommu Phys_mem Tamper
