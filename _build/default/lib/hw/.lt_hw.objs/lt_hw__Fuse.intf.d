lib/hw/fuse.mli:
