lib/hw/cache.ml: Array Hashtbl List
