lib/hw/frame_alloc.mli:
