lib/hw/bus.ml: Clock Format Iommu List Mmu Phys_mem String
