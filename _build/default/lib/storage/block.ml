let block_size = 512

type t = {
  data : Bytes.t;
  count : int;
  mutable read_ops : int;
  mutable write_ops : int;
}

let create ~blocks =
  if blocks <= 0 then invalid_arg "Block.create";
  { data = Bytes.make (blocks * block_size) '\000';
    count = blocks;
    read_ops = 0;
    write_ops = 0 }

let blocks t = t.count

let check t i = if i < 0 || i >= t.count then invalid_arg "Block: index out of range"

let read t i =
  check t i;
  t.read_ops <- t.read_ops + 1;
  Bytes.sub_string t.data (i * block_size) block_size

let write t i data =
  check t i;
  if String.length data > block_size then invalid_arg "Block.write: oversized";
  t.write_ops <- t.write_ops + 1;
  let padded =
    if String.length data = block_size then data
    else data ^ String.make (block_size - String.length data) '\000'
  in
  Bytes.blit_string padded 0 t.data (i * block_size) block_size

let corrupt t i rng =
  check t i;
  Bytes.blit_string (Lt_crypto.Drbg.bytes rng block_size) 0 t.data (i * block_size)
    block_size

let snapshot t i =
  check t i;
  Bytes.sub_string t.data (i * block_size) block_size

let rollback t i snap =
  check t i;
  if String.length snap <> block_size then invalid_arg "Block.rollback";
  Bytes.blit_string snap 0 t.data (i * block_size) block_size

let reads t = t.read_ops

let writes t = t.write_ops
