lib/storage/block.ml: Bytes Lt_crypto String
