lib/storage/legacy_fs.mli: Block Format Lt_crypto
