lib/storage/legacy_fs.ml: Block Buffer Bytes Char Drbg Format Hashtbl List Lt_crypto Stdlib String Wire
