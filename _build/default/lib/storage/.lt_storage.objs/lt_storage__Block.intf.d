lib/storage/block.mli: Lt_crypto
