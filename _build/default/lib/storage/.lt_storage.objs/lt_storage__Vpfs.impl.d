lib/storage/vpfs.ml: Buffer Drbg Format Hashtbl Hkdf Int64 Legacy_fs List Lt_crypto Printf Sha256 Speck Stdlib String Wire
