lib/storage/vpfs.mli: Format Legacy_fs
