lib/noc/noc.ml: Array Bytes Hashtbl List Lt_crypto Printexc Printf Queue Sha256 String
