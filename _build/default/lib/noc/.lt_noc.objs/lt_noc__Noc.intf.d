lib/noc/noc.mli:
