(** Substrate-independent attestation (§II-D, §III-A).

    Every substrate proves code identity differently — TPM/SGX sign with
    certified keys, TrustZone/SEP show knowledge of a fused symmetric
    key — but a verifier cares about one question: {e is this claim
    bound to an approved measurement by an intact trust anchor?} This
    module gives evidence a single shape and verification a single
    policy, so distributed trust relationships (Figure 3) can span
    substrates. *)

type proof =
  | Rsa_quote of { signature : string; cert : Lt_crypto.Cert.t }
      (** asymmetric: quote signed by a certified attestation key *)
  | Hmac_tag of { device : string; tag : string }
      (** symmetric: MAC under a fused key the verifier shares *)

type evidence = {
  ev_substrate : string;     (** e.g. "sgx", "trustzone" *)
  ev_measurement : string;   (** code identity being attested *)
  ev_nonce : string;         (** verifier's freshness challenge *)
  ev_claim : string;         (** application payload bound to the identity *)
  ev_proof : proof;
}

(** What a verifier is configured to accept. *)
type policy = {
  trusted_cas : (string * Lt_crypto.Rsa.public) list;
      (** CA name -> root key, for [Rsa_quote] certificate chains *)
  shared_device_keys : (string * string) list;
      (** device id -> fused key, for [Hmac_tag] *)
  accepted_measurements : string list;
      (** whitelist of known-good code identities *)
}

type failure =
  | Stale_nonce
  | Unknown_measurement
  | Bad_signature
  | Untrusted_issuer
  | Unknown_device
  | Bad_tag

(** [signed_body e] is the canonical byte string a proof covers. *)
val signed_body : evidence -> string

(** [make_rsa ~substrate ~measurement ~nonce ~claim ~key ~cert] signs
    evidence with an attestation keypair. *)
val make_rsa :
  substrate:string -> measurement:string -> nonce:string -> claim:string ->
  key:Lt_crypto.Rsa.keypair -> cert:Lt_crypto.Cert.t -> evidence

(** [make_hmac ~substrate ~measurement ~nonce ~claim ~device ~key] MACs
    evidence with a fused device key. *)
val make_hmac :
  substrate:string -> measurement:string -> nonce:string -> claim:string ->
  device:string -> key:string -> evidence

(** [verify policy ~nonce evidence] checks freshness, measurement
    whitelist and the proof against the policy's anchors. *)
val verify : policy -> nonce:string -> evidence -> (unit, failure) result

val pp_failure : Format.formatter -> failure -> unit

(** [to_wire] / [of_wire] — evidence crossing the untrusted network. *)
val to_wire : evidence -> string

val of_wire : string -> evidence option
