(** CHERI adapter for the unified isolation interface.

    Components become compartments inside a single address space,
    separated purely by guarded-pointer bounds — the finest-grained
    point in the paper's design space (§III-D). Like the bare
    microkernel, a capability machine has no hardware trust anchor:
    [attest] fails by design and sealing is software-only. *)

(** [make rng ~size ()] builds a capability machine of [size] bytes and
    exposes it as a substrate; also returns the machine and its root
    capability for experiments that escape the interface. *)
val make :
  Lt_crypto.Drbg.t -> size:int -> unit ->
  Substrate.t * Lt_cheri.Cheri.t * Lt_cheri.Cheri.cap
