type connection = {
  target : string;
  service : string;
  vetted : bool;
}

type t = {
  name : string;
  provides : string list;
  connects_to : connection list;
  domain : string;
  size_loc : int;
  network_facing : bool;
  vulnerable : bool;
  discriminates_clients : bool;
  substrate : string;
}

let v ~name ?(provides = []) ?(connects_to = []) ?domain ?(size_loc = 1000)
    ?(network_facing = false) ?(vulnerable = false) ?(discriminates_clients = true)
    ?(substrate = "microkernel") () =
  { name;
    provides;
    connects_to;
    domain = Option.value domain ~default:name;
    size_loc;
    network_facing;
    vulnerable;
    discriminates_clients;
    substrate }

let conn ?(vetted = false) target service = { target; service; vetted }

let pp fmt t =
  Format.fprintf fmt "%s[domain=%s size=%d%s%s] -> {%s}" t.name t.domain t.size_loc
    (if t.network_facing then " net" else "")
    (if t.vulnerable then " vuln" else "")
    (String.concat ", "
       (List.map
          (fun c ->
            Printf.sprintf "%s.%s%s" c.target c.service (if c.vetted then "(vetted)" else ""))
          t.connects_to))
