(** Attested secure channels (RA-TLS style).

    §III-C: "Using a suitable trust anchor, [the TLS component] could
    verify the integrity of the component on whose behalf it is
    connecting to the email server." This module runs the attestation
    {e inside} an established {!Lt_net.Secure_channel} session and binds
    the evidence to that exact channel via the key exporter — evidence
    relayed from a different channel (the classic relay attack against
    naive attestation-then-TLS compositions) fails the binding check.

    Flow: the client {!request}s with a fresh nonce; the prover's side
    {!respond}s with substrate evidence whose claim commits to the
    channel binding; the client {!check}s nonce, policy and binding. *)

(** [request rng session] — returns the encrypted challenge record to
    transmit and the nonce to remember for {!check}. *)
val request : Lt_crypto.Drbg.t -> Lt_net.Secure_channel.session -> string * string

(** [respond session substrate component ~challenge] — decrypt the
    challenge on the prover side and produce the encrypted evidence
    record, channel-bound. *)
val respond :
  Lt_net.Secure_channel.session -> Substrate.t -> Substrate.component ->
  challenge:string -> (string, string) result

(** [check session ~policy ~nonce ~response] — verify the evidence:
    substrate trust anchor, measurement whitelist, nonce freshness, and
    that the claim is bound to {e this} session. *)
val check :
  Lt_net.Secure_channel.session -> policy:Attestation.policy -> nonce:string ->
  response:string -> (unit, string) result
