open Lt_crypto

type t = {
  rng : Drbg.t;
  policy : Attestation.policy;
  pending : (string, unit) Hashtbl.t;
}

type rejection = Unknown_nonce | Evidence of Attestation.failure

let create rng policy = { rng; policy; pending = Hashtbl.create 8 }

let challenge t =
  let nonce = Sha256.hex (Drbg.bytes t.rng 16) in
  Hashtbl.replace t.pending nonce ();
  nonce

let check t evidence =
  let nonce = evidence.Attestation.ev_nonce in
  if not (Hashtbl.mem t.pending nonce) then Error Unknown_nonce
  else
    match Attestation.verify t.policy ~nonce evidence with
    | Ok () ->
      (* consume only on success so the prover may retry a transmission
         error, but a verified nonce can never be used twice *)
      Hashtbl.remove t.pending nonce;
      Ok ()
    | Error f -> Error (Evidence f)

let outstanding t = Hashtbl.length t.pending

let pp_rejection fmt = function
  | Unknown_nonce -> Format.pp_print_string fmt "nonce never issued or already consumed"
  | Evidence f -> Attestation.pp_failure fmt f
