lib/core/substrate.ml: Attestation Format List
