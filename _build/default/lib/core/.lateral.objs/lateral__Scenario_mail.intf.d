lib/core/scenario_mail.mli: App Manifest
