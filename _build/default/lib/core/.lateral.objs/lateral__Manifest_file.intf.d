lib/core/manifest_file.mli: Manifest
