lib/core/scenario_cloud.mli:
