lib/core/verifier.mli: Attestation Format Lt_crypto
