lib/core/verifier.ml: Attestation Drbg Format Hashtbl Lt_crypto Sha256
