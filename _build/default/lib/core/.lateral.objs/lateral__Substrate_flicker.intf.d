lib/core/substrate_flicker.mli: Lt_hw Lt_tpm Substrate
