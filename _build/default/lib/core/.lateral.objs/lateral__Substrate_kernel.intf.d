lib/core/substrate_kernel.mli: Lt_crypto Lt_hw Lt_kernel Lt_tpm Substrate
