lib/core/substrate_trustzone.mli: Lt_crypto Lt_hw Lt_tpm Lt_trustzone Substrate
