lib/core/gui.ml: Hashtbl List Printf
