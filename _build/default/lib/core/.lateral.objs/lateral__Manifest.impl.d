lib/core/manifest.ml: Format List Option Printf String
