lib/core/substrate_cheri.ml: Drbg Hashtbl Hkdf List Lt_cheri Lt_crypto Option Printexc Printf Sha256 Speck Stdlib String Substrate Wire
