lib/core/substrate_sgx.ml: Attestation Hashtbl List Lt_crypto Lt_sgx Stdlib String Substrate Wire
