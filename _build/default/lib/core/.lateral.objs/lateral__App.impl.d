lib/core/app.ml: Hashtbl List Manifest Option Printexc Printf Stdlib
