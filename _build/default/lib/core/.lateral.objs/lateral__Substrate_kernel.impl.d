lib/core/substrate_kernel.ml: Attestation Drbg Hashtbl Hkdf Kernel List Lt_crypto Lt_hw Lt_kernel Lt_tpm Option Printexc Printf Sha256 Speck Stdlib String Substrate Sys Tpm User Wire
