lib/core/scenario_mail.ml: Analysis App List Manifest
