lib/core/scenario_meter.ml: Attestation Drbg Format List Lt_crypto Lt_hw Lt_net Lt_tpm Option Printf Rsa Sha256 String Substrate Substrate_sgx Substrate_trustzone Wire
