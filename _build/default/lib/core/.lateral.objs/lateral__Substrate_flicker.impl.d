lib/core/substrate_flicker.ml: Attestation Ct Fun Hashtbl Latelaunch List Lt_crypto Lt_tpm Pcr Printf Stdlib Substrate Tpm Wire
