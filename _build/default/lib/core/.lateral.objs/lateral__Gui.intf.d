lib/core/gui.mli:
