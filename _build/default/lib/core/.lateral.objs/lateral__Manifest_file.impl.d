lib/core/manifest_file.ml: Buffer In_channel List Manifest Printf String
