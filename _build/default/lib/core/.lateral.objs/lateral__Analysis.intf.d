lib/core/analysis.mli: App Format
