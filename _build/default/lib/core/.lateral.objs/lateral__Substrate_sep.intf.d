lib/core/substrate_sep.mli: Lt_crypto Lt_hw Lt_sep Substrate
