lib/core/manifest.mli: Format
