lib/core/substrate_sgx.mli: Lt_crypto Lt_hw Lt_sgx Substrate
