lib/core/substrate_m3.mli: Lt_crypto Lt_noc Substrate
