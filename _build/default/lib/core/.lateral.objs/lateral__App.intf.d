lib/core/app.mli: Manifest
