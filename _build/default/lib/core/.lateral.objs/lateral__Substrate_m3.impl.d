lib/core/substrate_m3.ml: Attestation Cert Drbg Hashtbl Hkdf List Lt_crypto Lt_noc Option Printf Rsa Sha256 Speck Stdlib String Substrate Wire
