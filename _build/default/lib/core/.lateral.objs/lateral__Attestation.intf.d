lib/core/attestation.mli: Format Lt_crypto
