lib/core/substrate.mli: Attestation Format
