lib/core/deploy.ml: App Hashtbl List Manifest Option Printf String Substrate
