lib/core/ra_channel.ml: Attestation Ct Drbg Format Lt_crypto Lt_net Sha256 Substrate Wire
