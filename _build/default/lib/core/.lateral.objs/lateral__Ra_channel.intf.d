lib/core/ra_channel.mli: Attestation Lt_crypto Lt_net Substrate
