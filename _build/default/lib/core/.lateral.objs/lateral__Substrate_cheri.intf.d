lib/core/substrate_cheri.mli: Lt_cheri Lt_crypto Substrate
