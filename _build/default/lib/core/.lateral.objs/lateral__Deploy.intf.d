lib/core/deploy.mli: App Attestation Manifest Substrate
