lib/core/scenario_meter.mli:
