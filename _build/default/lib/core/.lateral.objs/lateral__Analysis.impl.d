lib/core/analysis.ml: App Float Format Hashtbl List Manifest Option Stdlib String
