lib/core/substrate_sep.ml: Attestation Hashtbl Hmac List Lt_crypto Lt_sep Printf Sha256 Speck String Substrate Wire
