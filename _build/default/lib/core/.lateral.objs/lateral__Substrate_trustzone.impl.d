lib/core/substrate_trustzone.ml: Attestation Hkdf Hmac List Lt_crypto Lt_trustzone Printf Sha256 Speck String Substrate Wire
