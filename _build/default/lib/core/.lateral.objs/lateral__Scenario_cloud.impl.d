lib/core/scenario_cloud.ml: Cert Drbg Hmac List Lt_crypto Lt_hw Lt_sgx Rsa Sha256 String Wire
