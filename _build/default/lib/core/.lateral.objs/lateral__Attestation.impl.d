lib/core/attestation.ml: Cert Format Hmac List Lt_crypto Rsa Wire
