(** Microkernel adapter for the unified isolation interface.

    Components become tasks with their own address space and a badged
    IPC endpoint; invocation is a kernel IPC round trip. On its own the
    microkernel has no hardware trust anchor: [attest] fails and sealing
    is software-only (a boot-session secret). Pass [~tpm] to combine
    substrates as the paper suggests — component measurements are then
    extended into [boot_pcr] (authenticated boot) and attestation and
    sealing become TPM-backed. *)

(** [make machine policy ?tpm ?boot_pcr ?rng ()] boots a kernel on the
    machine and returns the substrate plus the raw kernel handle for
    scheduling experiments. *)
val make :
  Lt_hw.Machine.t -> Lt_kernel.Sched.t -> ?tpm:Lt_tpm.Tpm.t -> ?boot_pcr:int ->
  ?rng:Lt_crypto.Drbg.t -> unit -> Substrate.t * Lt_kernel.Kernel.t
