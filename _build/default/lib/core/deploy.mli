(** Deployment: a horizontal application launched onto real substrates.

    {!App} checks communication control over in-process stubs; this
    module goes the rest of the way (§III-C "the implementor may choose
    SGX because..."): each component's code is launched as a trusted
    component on the isolation substrate its manifest names, and every
    cross-component call is (1) checked against the caller's manifest
    and (2) delivered as a real substrate invocation (ecall, SMC,
    IPC, ...). Component code gets both its substrate {!Substrate.facilities}
    and a router handle for outbound calls. *)

type ctx = {
  facilities : Substrate.facilities;
      (** seal/store on the component's own substrate *)
  call_out : target:string -> service:string -> string -> (string, string) result;
      (** routed, manifest-checked outbound call *)
}

type behaviour = ctx -> service:string -> string -> string

type t

(** [deploy ~substrates components] launches every component on the
    substrate its manifest's [substrate] field names. Fails when a
    substrate is unknown or a launch fails. *)
val deploy :
  substrates:(string * Substrate.t) list ->
  (Manifest.t * behaviour) list ->
  (t, string) result

(** [call t ~caller ~target ~service req] — entry from the outside world
    ([caller = None], only into network-facing components) or on behalf
    of a component. Channel checks are identical to {!App.call}. *)
val call :
  t -> caller:string option -> target:string -> service:string -> string ->
  (string, string) result

(** [violations t] — blocked channels, as in {!App.violations}. *)
val violations : t -> App.violation list

(** [substrate_of t name] — where a component actually runs. *)
val substrate_of : t -> string -> string option

(** [attest t ~component ~nonce ~claim] — remote evidence for one
    component from its own substrate. *)
val attest :
  t -> component:string -> nonce:string -> claim:string ->
  (Attestation.evidence, string) result
