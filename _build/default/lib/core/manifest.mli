(** Component manifests (§III-A).

    "The unified interface should be part of a larger programming
    framework, where developers can describe the required communication
    channels to other components. Such a manifest enables the isolation
    substrate to establish just the needed channels and block all other
    communication, thereby promoting a POLA design mentality."

    A manifest also carries the attributes the analysis tools reason
    over: protection domain (colocated components share fate), notional
    size, exposure and hardening flags. *)

type connection = {
  target : string;       (** component name *)
  service : string;      (** entry point on the target *)
  vetted : bool;
      (** trusted-wrapper discipline (§III-D): replies are validated
          cryptographically, so this dependency does {e not} extend the
          caller's TCB (e.g. VPFS over the legacy FS) *)
}

type t = {
  name : string;
  provides : string list;        (** entry points this component offers *)
  connects_to : connection list; (** the {e only} channels it may use *)
  domain : string;
      (** protection domain; a vertical (monolithic) application puts
          every subsystem in one domain, a horizontal design gives each
          component its own *)
  size_loc : int;                (** notional code size for TCB math *)
  network_facing : bool;         (** parses input from the outside world *)
  vulnerable : bool;
      (** contains an exploitable flaw (fault-injection modelling) *)
  discriminates_clients : bool;
      (** checks IPC badges; [false] on a multi-client service is a
          confused-deputy risk (§III-D) *)
  substrate : string;            (** which isolation substrate hosts it *)
}

(** [v ~name ...] builds a manifest with sensible defaults:
    own domain = [name], not network facing, not vulnerable,
    discriminating, substrate "microkernel". *)
val v :
  name:string -> ?provides:string list -> ?connects_to:connection list ->
  ?domain:string -> ?size_loc:int -> ?network_facing:bool -> ?vulnerable:bool ->
  ?discriminates_clients:bool -> ?substrate:string -> unit -> t

(** [conn ?vetted target service] — connection shorthand. *)
val conn : ?vetted:bool -> string -> string -> connection

val pp : Format.formatter -> t -> unit
