open Lt_crypto

type proof =
  | Rsa_quote of { signature : string; cert : Cert.t }
  | Hmac_tag of { device : string; tag : string }

type evidence = {
  ev_substrate : string;
  ev_measurement : string;
  ev_nonce : string;
  ev_claim : string;
  ev_proof : proof;
}

type policy = {
  trusted_cas : (string * Rsa.public) list;
  shared_device_keys : (string * string) list;
  accepted_measurements : string list;
}

type failure =
  | Stale_nonce
  | Unknown_measurement
  | Bad_signature
  | Untrusted_issuer
  | Unknown_device
  | Bad_tag

let signed_body e =
  Wire.encode [ "attest"; e.ev_substrate; e.ev_measurement; e.ev_nonce; e.ev_claim ]

let make_rsa ~substrate ~measurement ~nonce ~claim ~key ~cert =
  let e =
    { ev_substrate = substrate;
      ev_measurement = measurement;
      ev_nonce = nonce;
      ev_claim = claim;
      ev_proof = Rsa_quote { signature = ""; cert } }
  in
  { e with ev_proof = Rsa_quote { signature = Rsa.sign key (signed_body e); cert } }

let make_hmac ~substrate ~measurement ~nonce ~claim ~device ~key =
  let e =
    { ev_substrate = substrate;
      ev_measurement = measurement;
      ev_nonce = nonce;
      ev_claim = claim;
      ev_proof = Hmac_tag { device; tag = "" } }
  in
  { e with ev_proof = Hmac_tag { device; tag = Hmac.mac ~key (signed_body e) } }

let verify policy ~nonce e =
  if e.ev_nonce <> nonce then Error Stale_nonce
  else if not (List.mem e.ev_measurement policy.accepted_measurements) then
    Error Unknown_measurement
  else
    match e.ev_proof with
    | Rsa_quote { signature; cert } ->
      (match List.assoc_opt cert.Cert.issuer policy.trusted_cas with
       | None -> Error Untrusted_issuer
       | Some ca_pub ->
         if not (Cert.verify ~issuer_pub:ca_pub cert) then Error Untrusted_issuer
         else begin
           (* the signature must cover the body minus the proof itself *)
           let body = signed_body e in
           if Rsa.verify cert.Cert.pubkey ~signature body then Ok ()
           else Error Bad_signature
         end)
    | Hmac_tag { device; tag } ->
      (match List.assoc_opt device policy.shared_device_keys with
       | None -> Error Unknown_device
       | Some key ->
         if Hmac.verify ~key ~tag (signed_body e) then Ok () else Error Bad_tag)

let pp_failure fmt = function
  | Stale_nonce -> Format.pp_print_string fmt "nonce mismatch (replay?)"
  | Unknown_measurement -> Format.pp_print_string fmt "measurement not whitelisted"
  | Bad_signature -> Format.pp_print_string fmt "signature/nonce check failed"
  | Untrusted_issuer -> Format.pp_print_string fmt "certificate issuer not trusted"
  | Unknown_device -> Format.pp_print_string fmt "unknown device id"
  | Bad_tag -> Format.pp_print_string fmt "mac verification failed"

let to_wire e =
  let proof_fields =
    match e.ev_proof with
    | Rsa_quote { signature; cert } -> [ "rsa"; signature; Cert.to_string cert ]
    | Hmac_tag { device; tag } -> [ "hmac"; device; tag ]
  in
  Wire.encode
    ([ e.ev_substrate; e.ev_measurement; e.ev_nonce; e.ev_claim ] @ proof_fields)

let of_wire s =
  match Wire.decode s with
  | Some [ sub; m; nonce; claim; "rsa"; signature; cert_s ] ->
    (match Cert.of_string cert_s with
     | None -> None
     | Some cert ->
       Some
         { ev_substrate = sub;
           ev_measurement = m;
           ev_nonce = nonce;
           ev_claim = claim;
           ev_proof = Rsa_quote { signature; cert } })
  | Some [ sub; m; nonce; claim; "hmac"; device; tag ] ->
    Some
      { ev_substrate = sub;
        ev_measurement = m;
        ev_nonce = nonce;
        ev_claim = claim;
        ev_proof = Hmac_tag { device; tag } }
  | _ -> None
