(** Flicker (TPM late-launch) adapter for the unified interface.

    Components become PALs: measured into the dynamic PCR at each
    session, cryptographically isolated from one another by their
    distinct sealing identities, but strictly serialized — invoking one
    stops the world (§II-B). *)

(** [make tpm ?clock ()] — the substrate executes PALs against [tpm],
    charging world stop/resume cost on [clock] when given. *)
val make : Lt_tpm.Tpm.t -> ?clock:Lt_hw.Clock.t -> unit -> Substrate.t
