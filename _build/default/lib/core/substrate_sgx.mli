(** SGX adapter for the unified isolation interface. *)

(** [make machine rng ~ca_name ~ca_key ?epc_pages ()] provisions SGX on
    the machine and exposes it through {!Substrate.t}. Components become
    enclaves; sealing uses the CPU/measurement binding; attestation goes
    through the quoting enclave (certificate chained to [ca_name]).
    Also returns the raw SGX handle for experiments that need it
    (cache side channel, starvation). *)
val make :
  Lt_hw.Machine.t -> Lt_crypto.Drbg.t -> ca_name:string ->
  ca_key:Lt_crypto.Rsa.keypair -> ?epc_pages:int -> unit ->
  Substrate.t * Lt_sgx.Sgx.cpu
