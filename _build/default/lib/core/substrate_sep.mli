(** SEP adapter for the unified isolation interface.

    Components become coprocessor services fixed at integration time.
    Like TrustZone, services share the SEP without mutual isolation,
    but the coprocessor design removes the shared cache and encrypts
    its DRAM slice ([defends] includes [Physical_memory]). *)

(** [make machine rng ~device_id ~private_pages] attaches a SEP and
    returns the substrate plus the manufacture-time provisioning key the
    verifier database holds for [device_id]. *)
val make :
  Lt_hw.Machine.t -> Lt_crypto.Drbg.t -> device_id:string -> private_pages:int ->
  Substrate.t * Lt_sep.Sep.t * string
