(** TrustZone adapter for the unified isolation interface.

    Components become secure-world services. Note the coarser
    granularity the paper points out: the measured identity is the
    {e secure world image}, not the individual component, and services
    share the world without mutual isolation
    ([properties.mutually_isolated = false]). *)

(** [make machine ~vendor ~image ~device_id ~device_key_name ~secure_pages]
    installs TrustZone, boots the signed secure-world [image] and wires
    attestation to the fused key named [device_key_name] (program it
    into the machine's fuse bank first). [device_id] labels evidence for
    the verifier's shared-key database. *)
val make :
  Lt_hw.Machine.t -> vendor:Lt_crypto.Rsa.public -> image:Lt_tpm.Boot.stage ->
  device_id:string -> device_key_name:string -> secure_pages:int ->
  (Substrate.t * Lt_trustzone.Trustzone.t, string) result
