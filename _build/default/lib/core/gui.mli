(** Secure path to the user (§III-D).

    A nitpicker-style minimal compositor: windows belong to components,
    but the {e trusted indicator line} is rendered by the compositor
    itself from its own records — no window content can forge it. Input
    is routed only to the focused owner. The phishing resistance the
    smart-meter example relies on ("very obvious indication of a secure
    mode, like a simple traffic-light display") is testable here: a
    malicious window may draw a fake bank login, but the indicator
    names its true owner. *)

type t

(** Trust level shown in the indicator, traffic-light style. *)
type light = Green | Yellow | Red

val create : unit -> t

(** [register_owner t ~owner ~light] — the integrator assigns trust
    levels at system build time; components cannot change them. *)
val register_owner : t -> owner:string -> light:light -> unit

(** [open_window t ~owner ~title] — one window per owner. *)
val open_window : t -> owner:string -> title:string -> unit

(** [set_content t ~owner lines] replaces the window's content.
    Untrusted: anything may be drawn here, including fake indicators. *)
val set_content : t -> owner:string -> string list -> unit

val focus : t -> owner:string -> unit

val focused : t -> string option

(** [indicator_line t] is the compositor-rendered truth: the focused
    window's {e registered} owner and trust light. Returns [None] when
    nothing is focused. *)
val indicator_line : t -> string option

(** [render t] is the full screen: indicator first, then the focused
    window's title bar and content. *)
val render : t -> string list

(** [type_input t keys] delivers keystrokes to the focused owner only. *)
val type_input : t -> string -> unit

(** [received_input t ~owner] — everything routed to this owner. *)
val received_input : t -> owner:string -> string list
