(** A stateful attestation verifier: challenge issuance + one-shot
    evidence checking.

    {!Attestation.verify} is pure; a real relying party (the utility
    server of Figure 3) also needs freshness management: every challenge
    it issues must be consumed at most once, and evidence quoting a
    nonce it never issued is an obvious replay. This wraps the policy
    with exactly that bookkeeping. *)

type t

(** [create rng policy] — the verifier owns its nonce stream. *)
val create : Lt_crypto.Drbg.t -> Attestation.policy -> t

(** [challenge t] issues a fresh nonce to hand to the prover. *)
val challenge : t -> string

type rejection =
  | Unknown_nonce          (** never issued, or already consumed *)
  | Evidence of Attestation.failure

(** [check t evidence] verifies against the policy and consumes the
    nonce: a second presentation of the same evidence is rejected. *)
val check : t -> Attestation.evidence -> (unit, rejection) result

(** [outstanding t] — challenges issued but not yet consumed. *)
val outstanding : t -> int

val pp_rejection : Format.formatter -> rejection -> unit
