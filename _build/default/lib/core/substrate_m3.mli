(** M3-style NoC adapter for the unified isolation interface (§II-B).

    Components become compute tiles: no kernel code runs under them,
    their only reachable peers are the DTU endpoints the kernel tile
    configured, their state lives in on-chip scratchpad (out of reach of
    memory-bus probes), and there is no cache shared with anything.
    Attestation is kernel-tile-signed: the kernel loaded and measured
    each tile's program. *)

(** [make rng ~ca_name ~ca_key ~tiles ()] builds a chip with [tiles]
    tiles (one kernel tile + compute tiles); returns the substrate and
    the raw chip for NoC-level experiments. *)
val make :
  Lt_crypto.Drbg.t -> ca_name:string -> ca_key:Lt_crypto.Rsa.keypair ->
  tiles:int -> unit -> Substrate.t * Lt_noc.Noc.t
