open Lt_crypto
module Sc = Lt_net.Secure_channel

let binding_claim session = "cb:" ^ Sha256.hex (Sc.exporter session)

let request rng session =
  let nonce = Sha256.hex (Drbg.bytes rng 16) in
  (Sc.send session (Wire.tagged "ra-challenge" [ nonce ]), nonce)

let respond session (substrate : Substrate.t) component ~challenge =
  match Sc.receive session challenge with
  | Error e -> Error ("challenge record: " ^ e)
  | Ok plain ->
    (match Wire.untag plain with
     | Some ("ra-challenge", [ nonce ]) ->
       (match
          substrate.Substrate.attest component ~nonce
            ~claim:(binding_claim session)
        with
        | Error e -> Error ("attest: " ^ e)
        | Ok evidence -> Ok (Sc.send session (Attestation.to_wire evidence)))
     | _ -> Error "malformed challenge")

let check session ~policy ~nonce ~response =
  match Sc.receive session response with
  | Error e -> Error ("response record: " ^ e)
  | Ok plain ->
    (match Attestation.of_wire plain with
     | None -> Error "malformed evidence"
     | Some evidence ->
       (match Attestation.verify policy ~nonce evidence with
        | Error f -> Error (Format.asprintf "%a" Attestation.pp_failure f)
        | Ok () ->
          if Ct.equal evidence.Attestation.ev_claim (binding_claim session) then Ok ()
          else Error "evidence not bound to this channel (relay attack?)"))
