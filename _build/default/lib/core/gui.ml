type light = Green | Yellow | Red

type window = {
  title : string;
  mutable content : string list;
  mutable inputs : string list; (* newest first *)
}

type t = {
  owners : (string, light) Hashtbl.t;
  windows : (string, window) Hashtbl.t;
  mutable focus : string option;
}

let create () = { owners = Hashtbl.create 8; windows = Hashtbl.create 8; focus = None }

let register_owner t ~owner ~light = Hashtbl.replace t.owners owner light

let open_window t ~owner ~title =
  if not (Hashtbl.mem t.owners owner) then
    invalid_arg (Printf.sprintf "Gui.open_window: unregistered owner %s" owner);
  Hashtbl.replace t.windows owner { title; content = []; inputs = [] }

let set_content t ~owner lines =
  match Hashtbl.find_opt t.windows owner with
  | None -> invalid_arg (Printf.sprintf "Gui.set_content: no window for %s" owner)
  | Some w -> w.content <- lines

let focus t ~owner =
  if Hashtbl.mem t.windows owner then t.focus <- Some owner
  else invalid_arg (Printf.sprintf "Gui.focus: no window for %s" owner)

let focused t = t.focus

let light_string = function
  | Green -> "GREEN"
  | Yellow -> "YELLOW"
  | Red -> "RED"

let indicator_line t =
  match t.focus with
  | None -> None
  | Some owner ->
    let light =
      match Hashtbl.find_opt t.owners owner with
      | Some l -> l
      | None -> Red
    in
    (* rendered by the compositor from its own records: unforgeable *)
    Some (Printf.sprintf "[%s] you are talking to: %s" (light_string light) owner)

let render t =
  match t.focus with
  | None -> [ "(no window focused)" ]
  | Some owner ->
    let w = Hashtbl.find t.windows owner in
    let ind = match indicator_line t with Some l -> l | None -> assert false in
    (ind :: Printf.sprintf "=== %s ===" w.title :: w.content)

let type_input t keys =
  match t.focus with
  | None -> ()
  | Some owner ->
    (match Hashtbl.find_opt t.windows owner with
     | Some w -> w.inputs <- keys :: w.inputs
     | None -> ())

let received_input t ~owner =
  match Hashtbl.find_opt t.windows owner with
  | None -> []
  | Some w -> List.rev w.inputs
