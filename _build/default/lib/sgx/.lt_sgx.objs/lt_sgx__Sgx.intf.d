lib/sgx/sgx.mli: Lt_crypto Lt_hw
