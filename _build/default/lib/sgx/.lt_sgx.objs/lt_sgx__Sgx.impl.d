lib/sgx/sgx.ml: Cache Cert Clock Drbg Frame_alloc Fuse Hashtbl Hkdf Lazy List Lt_crypto Lt_hw Machine Mmu Option Phys_mem Printexc Printf Rsa Sha256 Speck Stdlib String
