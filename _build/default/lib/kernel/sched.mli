(** Scheduling policies for the microkernel (§II-C of the paper).

    Temporal isolation ranges "from simple starvation prevention to
    interference-free scheduling and covert channel mitigation". The
    three policies span that range:
    - [Round_robin]: starvation-free, but execution timing leaks.
    - [Fixed_priority]: real-time friendly, leaks and can starve.
    - [Tdma]: static time partitioning; a partition's slots run whether
      or not it is busy, closing the scheduler timing channel. *)

type t =
  | Round_robin of { quantum : int }
  | Fixed_priority of { quantum : int }
  | Tdma of { slots : (string * int) list }
      (** [(partition, length)] pairs forming the repeating major frame *)

(** [tdma_slot_at slots now] is [(partition, slot_end)] for tick [now] —
    which partition owns the current slot and when the slot ends. *)
val tdma_slot_at : (string * int) list -> int -> string * int

val pp : Format.formatter -> t -> unit
