type t =
  | Round_robin of { quantum : int }
  | Fixed_priority of { quantum : int }
  | Tdma of { slots : (string * int) list }

let tdma_slot_at slots now =
  if slots = [] then invalid_arg "Sched.tdma_slot_at: no slots";
  let cycle = List.fold_left (fun acc (_, len) -> acc + len) 0 slots in
  if cycle <= 0 then invalid_arg "Sched.tdma_slot_at: zero cycle";
  let phase = now mod cycle in
  let frame_start = now - phase in
  let rec walk off = function
    | [] -> assert false
    | (partition, len) :: rest ->
      if phase < off + len then (partition, frame_start + off + len)
      else walk (off + len) rest
  in
  walk 0 slots

let pp fmt = function
  | Round_robin { quantum } -> Format.fprintf fmt "round-robin(q=%d)" quantum
  | Fixed_priority { quantum } -> Format.fprintf fmt "fixed-priority(q=%d)" quantum
  | Tdma { slots } ->
    Format.fprintf fmt "tdma(%s)"
      (String.concat ","
         (List.map (fun (p, len) -> Printf.sprintf "%s:%d" p len) slots))
