exception Ipc_error of string

exception Fault of string

let sys sc = Effect.perform (Sys.Sys sc)

let expect_unit = function
  | Sys.R_unit -> ()
  | Sys.R_error e -> raise (Ipc_error e)
  | _ -> assert false

let call ~cap m =
  match sys (Sys.Call (cap, m)) with
  | Sys.R_msg { m; _ } -> m
  | Sys.R_error e -> raise (Ipc_error e)
  | _ -> assert false

let send ~cap m = expect_unit (sys (Sys.Send (cap, m)))

let recv ~cap =
  match sys (Sys.Recv cap) with
  | Sys.R_msg { badge; m; reply } -> (badge, m, reply)
  | Sys.R_error e -> raise (Ipc_error e)
  | _ -> assert false

let reply handle m = expect_unit (sys (Sys.Reply (handle, m)))

let yield () = expect_unit (sys Sys.Yield)

let sleep n = expect_unit (sys (Sys.Sleep n))

let consume n = expect_unit (sys (Sys.Consume n))

let mem_read ~vaddr ~len =
  match sys (Sys.Mem_read (vaddr, len)) with
  | Sys.R_data d -> d
  | Sys.R_error e -> raise (Fault e)
  | _ -> assert false

let mem_write ~vaddr data =
  match sys (Sys.Mem_write (vaddr, data)) with
  | Sys.R_unit -> ()
  | Sys.R_error e -> raise (Fault e)
  | _ -> assert false

let time () =
  match sys Sys.Time with Sys.R_int n -> n | _ -> assert false

let tid () =
  match sys Sys.Tid with Sys.R_int n -> n | _ -> assert false

let exit_thread () =
  ignore (sys Sys.Exit);
  assert false
