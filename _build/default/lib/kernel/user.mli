(** User-side syscall wrappers: the API available inside thread bodies.

    All functions must be called from code running under {!Kernel.run};
    calling them elsewhere raises [Effect.Unhandled]. Capability
    arguments are slot indices obtained from {!Kernel.grant} or received
    in messages. *)

(** IPC failed: bad capability slot, missing rights, or stale reply
    handle. Deliberately coarse — user code learns nothing about
    endpoints it cannot name. *)
exception Ipc_error of string

(** A memory access faulted (unmapped page, permission, bus denial). *)
exception Fault of string

(** [call ~cap m] sends [m] on the capability and blocks for the reply. *)
val call : cap:int -> Sys.msg -> Sys.msg

(** [send ~cap m] sends and returns once the receiver took the message. *)
val send : cap:int -> Sys.msg -> unit

(** [recv ~cap] blocks for a message; returns the sender's badge, the
    message, and a reply handle when the sender used [call]. *)
val recv : cap:int -> int * Sys.msg * Sys.reply_handle option

(** [reply handle m] answers a pending [call]. *)
val reply : Sys.reply_handle -> Sys.msg -> unit

val yield : unit -> unit

val sleep : int -> unit

(** [consume n] models [n] ticks of computation. *)
val consume : int -> unit

(** [mem_read ~vaddr ~len] reads task-virtual memory. Raises {!Fault}. *)
val mem_read : vaddr:int -> len:int -> string

val mem_write : vaddr:int -> string -> unit

(** [time ()] is the simulated clock — observable, hence a covert
    channel unless the scheduler closes it. *)
val time : unit -> int

val tid : unit -> int

(** [exit_thread ()] terminates the calling thread. *)
val exit_thread : unit -> 'a
