(** Syscall ABI shared between kernel and user code.

    Threads are OCaml closures that suspend into the kernel with an
    effect ({!Sys}); the kernel's scheduler holds their continuations.
    This file defines the request/response vocabulary; user-side typed
    wrappers live in {!User}, the handler in {!Kernel}. *)

(** A reply handle names the thread awaiting an answer to a [Call]. *)
type reply_handle = int

(** IPC message: opaque payload plus capability slots to transfer.
    Slot indices are sender-relative; the kernel re-homes them into the
    receiver's capability space on delivery. *)
type msg = { payload : string; caps : int list }

let msg ?(caps = []) payload = { payload; caps }

type syscall =
  | Call of int * msg        (** send on cap slot, block for the reply *)
  | Send of int * msg        (** send on cap slot, rendezvous, no reply *)
  | Recv of int              (** receive on cap slot *)
  | Reply of reply_handle * msg
  | Yield                    (** give up the rest of the quantum *)
  | Sleep of int             (** block for n ticks of simulated time *)
  | Consume of int           (** model n ticks of computation *)
  | Mem_read of int * int    (** vaddr, len — through the task's MMU *)
  | Mem_write of int * string
  | Time                     (** read the simulated clock *)
  | Tid
  | Exit

type sysres =
  | R_unit
  | R_msg of { badge : int; m : msg; reply : reply_handle option }
  | R_data of string
  | R_int of int
  | R_error of string

type _ Effect.t += Sys : syscall -> sysres Effect.t
