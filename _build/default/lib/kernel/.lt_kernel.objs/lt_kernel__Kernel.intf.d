lib/kernel/kernel.mli: Format Lt_hw Sched
