lib/kernel/sched.ml: Format List Printf String
