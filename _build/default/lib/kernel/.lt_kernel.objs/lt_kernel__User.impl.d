lib/kernel/user.ml: Effect Sys
