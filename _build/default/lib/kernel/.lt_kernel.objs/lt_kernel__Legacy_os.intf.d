lib/kernel/legacy_os.mli: Kernel
