lib/kernel/kernel.ml: Buffer Bus Clock Effect Format Frame_alloc Hashtbl List Lt_hw Machine Mmu Printf Queue Sched Stdlib String Sys
