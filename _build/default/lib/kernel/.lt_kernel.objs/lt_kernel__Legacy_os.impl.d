lib/kernel/legacy_os.ml: Hashtbl Kernel List Lt_crypto Lt_hw Printexc Printf Stdlib String Sys User
