lib/kernel/sys.ml: Effect
