lib/kernel/sched.mli: Format
