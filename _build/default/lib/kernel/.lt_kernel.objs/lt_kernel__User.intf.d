lib/kernel/user.mli: Sys
