examples/cloud_enclave.ml: Lateral List Printf Scenario_cloud String
