examples/quickstart.mli:
