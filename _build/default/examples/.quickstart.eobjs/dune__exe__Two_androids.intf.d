examples/two_androids.mli:
