examples/two_androids.ml: Kernel Legacy_os List Lt_hw Lt_kernel Option Printf Sched
