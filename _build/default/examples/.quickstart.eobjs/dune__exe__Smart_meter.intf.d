examples/smart_meter.mli:
