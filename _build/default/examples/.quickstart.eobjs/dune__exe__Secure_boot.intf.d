examples/secure_boot.mli:
