examples/quickstart.ml: Attestation Drbg Format Lateral Lt_crypto Lt_hw Lt_kernel Lt_tpm Printf Rsa Sha256 String Substrate Substrate_kernel Substrate_sgx Substrate_trustzone
