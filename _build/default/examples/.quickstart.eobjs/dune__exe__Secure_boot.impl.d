examples/secure_boot.ml: Boot Cert Drbg Latelaunch List Lt_crypto Lt_tpm Pcr Printf Rsa Sha256 String Tpm
