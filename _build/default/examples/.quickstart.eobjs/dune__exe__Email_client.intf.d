examples/email_client.mli:
