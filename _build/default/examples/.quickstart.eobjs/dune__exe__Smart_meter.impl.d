examples/smart_meter.ml: Lateral List Printf Scenario_meter String
