examples/cloud_enclave.mli:
