(* Quickstart: write a trusted component once, run it on any isolation
   substrate through the unified interface, and verify it remotely.

   Run with: dune exec examples/quickstart.exe *)

open Lt_crypto
open Lateral

(* 1. A trusted component: a tiny password vault. It is written purely
   against Substrate.facilities — nothing here is substrate-specific. *)
let vault_code = "password-vault-v1"

let vault_services =
  [ ("store",
     fun fac req ->
       (* req = "site password"; keep it under substrate protection *)
       (match String.index_opt req ' ' with
        | Some i ->
          let site = String.sub req 0 i in
          let password = String.sub req (i + 1) (String.length req - i - 1) in
          fac.Substrate.f_store ~key:site (fac.Substrate.f_seal password);
          "stored"
        | None -> "usage: store <site> <password>"));
    ("check",
     fun fac req ->
       (match String.index_opt req ' ' with
        | Some i ->
          let site = String.sub req 0 i in
          let guess = String.sub req (i + 1) (String.length req - i - 1) in
          (match fac.Substrate.f_load ~key:site with
           | None -> "unknown site"
           | Some sealed ->
             (match fac.Substrate.f_unseal sealed with
              | Some password when password = guess -> "match"
              | Some _ -> "wrong password"
              | None -> "vault corrupted"))
        | None -> "usage: check <site> <password>")) ]

let demo name (substrate : Substrate.t) =
  Printf.printf "--- %s ---\n" name;
  Printf.printf "properties: %s\n"
    (Format.asprintf "%a" Substrate.pp_properties substrate.Substrate.properties);
  match substrate.Substrate.launch ~name:"vault" ~code:vault_code
          ~services:vault_services with
  | Error e -> Printf.printf "launch failed: %s\n" e
  | Ok vault ->
    let invoke fn arg =
      match substrate.Substrate.invoke vault ~fn arg with
      | Ok r -> r
      | Error e -> "ERROR: " ^ e
    in
    Printf.printf "store:  %s\n" (invoke "store" "example.org hunter2");
    Printf.printf "check (right): %s\n" (invoke "check" "example.org hunter2");
    Printf.printf "check (wrong): %s\n" (invoke "check" "example.org 12345");
    (* remote attestation: prove which code is answering *)
    (match substrate.Substrate.attest vault ~nonce:"fresh-42" ~claim:"api-v1" with
     | Ok evidence ->
       Printf.printf "attested measurement: %s...\n"
         (String.sub (Sha256.hex evidence.Attestation.ev_measurement) 0 16)
     | Error e -> Printf.printf "attest: %s\n" e);
    print_newline ()

let () =
  let rng = Drbg.create 2026L in
  let ca = Rsa.generate ~bits:512 rng in
  (* the same component on three different isolation technologies *)
  let m1 = Lt_hw.Machine.create ~dram_pages:128 () in
  let sgx, _ = Substrate_sgx.make m1 rng ~ca_name:"intel" ~ca_key:ca () in
  demo "Intel SGX" sgx;

  let m2 = Lt_hw.Machine.create ~dram_pages:64 () in
  Lt_hw.Fuse.program m2.Lt_hw.Machine.fuses ~name:"devkey"
    ~visibility:Lt_hw.Fuse.Secure_only (Drbg.bytes rng 32);
  let image = Lt_tpm.Boot.sign_stage ca ~name:"tz-os" "secure-world-v1" in
  (match Substrate_trustzone.make m2 ~vendor:ca.Rsa.pub ~image ~device_id:"dev-1"
           ~device_key_name:"devkey" ~secure_pages:4 with
   | Ok (tz, _) -> demo "ARM TrustZone" tz
   | Error e -> Printf.printf "trustzone boot failed: %s\n" e);

  let m3 = Lt_hw.Machine.create ~dram_pages:128 () in
  let mk, _ =
    Substrate_kernel.make m3 (Lt_kernel.Sched.Round_robin { quantum = 500 }) ()
  in
  demo "Microkernel (no trust anchor: attest fails by design)" mk;

  print_endline "quickstart done."
