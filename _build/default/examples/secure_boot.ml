(* Secure launch (§II-D): secure boot vs authenticated boot under a
   code-swapping attacker, TPM key release (BitLocker), and Flicker-style
   late launch.

   Run with: dune exec examples/secure_boot.exe *)

open Lt_crypto
open Lt_tpm

let () =
  let rng = Drbg.create 99L in
  let vendor = Rsa.generate ~bits:512 rng in
  let ca = Rsa.generate ~bits:512 rng in
  let tpm = Tpm.manufacture rng ~ca_name:"tpm-vendor" ~ca_key:ca ~serial:"sn-1" in

  let good_chain =
    [ Boot.sign_stage vendor ~name:"bootloader" "bootloader-v1";
      Boot.sign_stage vendor ~name:"kernel" "kernel-v1";
      Boot.sign_stage vendor ~name:"init" "init-v1" ]
  in
  let tampered_chain =
    [ List.hd good_chain;
      Boot.unsigned_stage ~name:"kernel" "kernel-v1-with-rootkit";
      List.nth good_chain 2 ]
  in

  print_endline "=== Secure boot: refuse what is not signed ===";
  let show_outcome label outcome =
    Printf.printf "%-18s ran=[%s]%s\n" label
      (String.concat ", " outcome.Boot.ran)
      (match outcome.Boot.refused with
       | Some (stage, why) -> Printf.sprintf "  REFUSED at %s (%s)" stage why
       | None -> "")
  in
  let secure = Boot.Secure_boot { vendor_pub = vendor.Rsa.pub } in
  show_outcome "genuine chain:" (Boot.run_chain secure good_chain);
  show_outcome "tampered chain:" (Boot.run_chain secure tampered_chain);

  print_endline "";
  print_endline "=== Authenticated boot: run everything, remember everything ===";
  let authenticated = Boot.Authenticated_boot { tpm; pcr = 0 } in
  show_outcome "genuine chain:" (Boot.run_chain authenticated good_chain);
  Printf.printf "PCR0 after genuine boot: %s...\n"
    (String.sub (Sha256.hex (Pcr.read (Tpm.pcrs tpm) 0)) 0 16);

  print_endline "";
  print_endline "=== BitLocker-style key release ===";
  let disk_key = Tpm.seal tpm ~selection:[ 0 ] "volume-master-key" in
  Printf.printf "key sealed to the genuine boot state\n";
  (* reboot genuine: key released *)
  Pcr.power_cycle (Tpm.pcrs tpm);
  ignore (Boot.run_chain authenticated good_chain);
  Printf.printf "reboot genuine:  unseal -> %s\n"
    (match Tpm.unseal tpm disk_key with Some _ -> "KEY RELEASED" | None -> "denied");
  (* reboot tampered: measured, runs, but no key *)
  Pcr.power_cycle (Tpm.pcrs tpm);
  ignore (Boot.run_chain authenticated tampered_chain);
  Printf.printf "reboot tampered: unseal -> %s\n"
    (match Tpm.unseal tpm disk_key with Some _ -> "KEY RELEASED" | None -> "denied");

  print_endline "";
  print_endline "=== Late launch (Flicker): trusted code without trusting the boot chain ===";
  let pal =
    { Latelaunch.pal_name = "ssh-key-guard";
      pal_code = "if policy_ok then sign(challenge)";
      handler = (fun input -> "signed:" ^ input) }
  in
  let result = Latelaunch.execute tpm pal ~nonce:"challenge-7" ~input:"login-7" in
  Printf.printf "PAL output: %s (session cost %d ticks, world stopped)\n"
    result.Latelaunch.output result.Latelaunch.ticks;
  let ek = (Tpm.ek_cert tpm).Cert.pubkey in
  Printf.printf "quote over DRTM PCR verifies: %b\n"
    (Tpm.verify_quote ~ek_pub:ek result.Latelaunch.pal_quote);
  Printf.printf "quote matches this exact PAL: %b\n"
    (result.Latelaunch.pal_quote.Tpm.q_composite
     = Latelaunch.expected_drtm_composite tpm pal);
  print_endline "";
  print_endline "secure boot demo done."
