(* End-to-end scenarios: the mail client (Fig. 1) and smart meter (Fig. 3). *)

open Lateral

let ok_or_fail = function Ok v -> v | Error e -> Alcotest.fail e

let run_meter ?seed tamper =
  ok_or_fail (Scenario_meter.run ?seed tamper)

let test_mail_inventory_valid () =
  List.iter
    (fun vertical ->
      let app = ok_or_fail (Scenario_mail.build ~vertical) in
      match App.validate app with
      | Ok () -> ()
      | Error errs -> Alcotest.fail (String.concat "; " errs))
    [ true; false ]

let test_mail_containment_shape () =
  let table = ok_or_fail (Scenario_mail.containment_table ()) in
  Alcotest.(check int) "one row per component"
    (List.length Scenario_mail.component_names)
    (List.length table);
  (* the paper's claim: vertical designs lose everything on any exploit;
     horizontal designs contain *)
  List.iter
    (fun (name, vertical, horizontal) ->
      Alcotest.(check (float 0.001)) (name ^ ": vertical total loss") 1.0 vertical;
      Alcotest.(check bool) (name ^ ": horizontal contained") true (horizontal < 0.5))
    table;
  (* the renderer — biggest, network-facing — is fully contained *)
  let _, _, renderer_h =
    List.find (fun (n, _, _) -> n = "renderer") table
  in
  Alcotest.(check bool) "renderer owns almost nothing" true
    (renderer_h <= 2.0 /. 13.0 +. 0.001)

let test_mail_tcb_reduction () =
  let rows = ok_or_fail (Scenario_mail.tcb_comparison ()) in
  List.iter
    (fun (name, monolithic, decomposed) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: decomposed tcb (%d) < monolithic (%d)" name decomposed
           monolithic)
        true
        (decomposed < monolithic))
    rows;
  (* the keystore is tiny: order-of-magnitude reduction *)
  let _, mono, dec = List.find (fun (n, _, _) -> n = "keystore") rows in
  Alcotest.(check bool) "keystore 9x smaller tcb" true (dec * 9 < mono)

let check_outcome name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s" name
       (if expected then "must succeed" else "must be rejected"))
    expected actual

let test_meter_genuine () =
  let o = run_meter Scenario_meter.Genuine in
  check_outcome "anonymizer verified" true o.Scenario_meter.anonymizer_verified;
  check_outcome "reading accepted" true o.Scenario_meter.reading_accepted;
  Alcotest.(check int) "one anonymized row" 1 o.Scenario_meter.anonymized_rows;
  Alcotest.(check bool) "customer id never stored" false
    o.Scenario_meter.customer_id_leaked

let test_meter_manipulated_anonymizer () =
  let o = run_meter Scenario_meter.Manipulated_anonymizer in
  check_outcome "anonymizer rejected" false o.Scenario_meter.anonymizer_verified;
  check_outcome "no reading sent" false o.Scenario_meter.reading_sent;
  Alcotest.(check bool) "privacy preserved" false o.Scenario_meter.customer_id_leaked;
  Alcotest.(check int) "database stays empty" 0 o.Scenario_meter.anonymized_rows

let test_meter_emulated () =
  let o = run_meter Scenario_meter.Emulated_meter in
  check_outcome "fake reading rejected" false o.Scenario_meter.reading_accepted

let test_meter_mitm () =
  let o = run_meter Scenario_meter.Mitm_reading in
  check_outcome "tampered reading rejected" false o.Scenario_meter.reading_accepted

let test_meter_replay () =
  let o = run_meter Scenario_meter.Replayed_session in
  check_outcome "replayed session rejected" false o.Scenario_meter.reading_accepted

let test_meter_unsigned_world () =
  let o = run_meter Scenario_meter.Unsigned_secure_world in
  check_outcome "device without trust anchor excluded" false
    o.Scenario_meter.reading_accepted;
  Alcotest.(check bool) "boot refusal reported" true
    (String.length o.Scenario_meter.detail > 0)

let test_meter_matrix_deterministic () =
  (* same seed, same outcomes: the scenario is a reproducible experiment *)
  List.iter
    (fun t ->
      let a = run_meter ~seed:9L t and b = run_meter ~seed:9L t in
      Alcotest.(check bool)
        (Scenario_meter.tamper_name t ^ " deterministic")
        true (a = b))
    Scenario_meter.all_tampers

let test_gateway_demo () =
  let direct, gated_victims, gated_utility = Scenario_meter.gateway_demo () in
  Alcotest.(check int) "raw nic: full flood reaches victims" 150 direct;
  Alcotest.(check int) "gateway: victims get zero" 0 gated_victims;
  Alcotest.(check bool) "legitimate telemetry still flows" true (gated_utility > 0)

let suite =
  [ Alcotest.test_case "mail inventory validates" `Quick test_mail_inventory_valid;
    Alcotest.test_case "mail containment: vertical vs horizontal" `Quick
      test_mail_containment_shape;
    Alcotest.test_case "mail tcb reduction" `Quick test_mail_tcb_reduction;
    Alcotest.test_case "meter: genuine session bills privately" `Quick
      test_meter_genuine;
    Alcotest.test_case "meter: manipulated anonymizer refused" `Quick
      test_meter_manipulated_anonymizer;
    Alcotest.test_case "meter: emulated meter rejected" `Quick test_meter_emulated;
    Alcotest.test_case "meter: mitm reading rejected" `Quick test_meter_mitm;
    Alcotest.test_case "meter: replay rejected" `Quick test_meter_replay;
    Alcotest.test_case "meter: unsigned secure world excluded" `Quick
      test_meter_unsigned_world;
    Alcotest.test_case "meter: outcomes deterministic" `Quick
      test_meter_matrix_deterministic;
    Alcotest.test_case "gateway stops the IoT flood" `Quick test_gateway_demo ]
