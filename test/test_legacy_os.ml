(* Paravirtualized legacy OS guests: no walls inside, kernel walls
   between — the Simko3 / "Merkel-Phone" model (§II-B). *)

open Lt_kernel

let make_kernel () =
  Kernel.create (Lt_hw.Machine.create ~dram_pages:256 ())
    (Sched.Round_robin { quantum = 200 })

let boot_ok k ~name ~partition ~memory_pages ~processes =
  match Legacy_os.boot k ~name ~partition ~memory_pages ~processes with
  | Ok g -> g
  | Error e -> Alcotest.fail e

let android_processes =
  [ ("browser",
     fun ctx url ->
       ctx.Legacy_os.g_write "history" url;
       "rendered:" ^ url);
    ("contacts",
     fun ctx req ->
       (match req with
        | "get" -> Option.value ~default:"(none)" (ctx.Legacy_os.g_read "contacts")
        | v ->
          ctx.Legacy_os.g_write "contacts" v;
          "saved"));
    ("mail",
     fun ctx _ ->
       (* a monolithic OS: mail can read the browser's history freely *)
       Option.value ~default:"(no history)" (ctx.Legacy_os.g_read "history")) ]

let test_guest_runs_processes () =
  let k = make_kernel () in
  let g =
    boot_ok k ~name:"android" ~partition:"vm1" ~memory_pages:4
      ~processes:android_processes
  in
  Alcotest.(check (result string string)) "browser" (Ok "rendered:news.example")
    (Legacy_os.call k g ~process:"browser" "news.example");
  Alcotest.(check (result string string)) "contacts saved" (Ok "saved")
    (Legacy_os.call k g ~process:"contacts" "alice,bob");
  Alcotest.(check (result string string)) "contacts read" (Ok "alice,bob")
    (Legacy_os.call k g ~process:"contacts" "get");
  (match Legacy_os.call k g ~process:"nonexistent" "x" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "missing process should error")

let test_no_internal_isolation () =
  (* inside a guest, any process reads any state: monolithic reality *)
  let k = make_kernel () in
  let g =
    boot_ok k ~name:"android" ~partition:"vm1" ~memory_pages:4
      ~processes:android_processes
  in
  ignore (Legacy_os.call k g ~process:"browser" "embarrassing.example");
  Alcotest.(check (result string string)) "mail reads browser history"
    (Ok "embarrassing.example")
    (Legacy_os.call k g ~process:"mail" "")

let test_exploit_owns_whole_guest () =
  let k = make_kernel () in
  let g =
    boot_ok k ~name:"android" ~partition:"vm1" ~memory_pages:4
      ~processes:android_processes
  in
  ignore (Legacy_os.call k g ~process:"contacts" "secret-contact-list");
  Legacy_os.exploit g ~process:"browser";
  Alcotest.(check bool) "guest compromised" true (Legacy_os.is_compromised g);
  (* every process now answers as the attacker *)
  Alcotest.(check (result string string)) "contacts owned too" (Ok "pwned:contacts")
    (Legacy_os.call k g ~process:"contacts" "get");
  (* and the whole guest state is loot *)
  Alcotest.(check bool) "contact list leaked" true
    (List.mem_assoc "contacts" (Legacy_os.loot k g))

let test_two_guests_isolated () =
  let k = make_kernel () in
  let private_g =
    boot_ok k ~name:"android-private" ~partition:"vm1" ~memory_pages:4
      ~processes:android_processes
  in
  let business_g =
    boot_ok k ~name:"android-business" ~partition:"vm2" ~memory_pages:4
      ~processes:android_processes
  in
  ignore (Legacy_os.call k business_g ~process:"contacts" "board-members");
  (* frames are disjoint: the kernel's spatial isolation *)
  let overlap =
    List.exists
      (fun f -> List.mem f (Legacy_os.frames business_g))
      (Legacy_os.frames private_g)
  in
  Alcotest.(check bool) "no shared frames" false overlap;
  (* exploiting the private guest owns nothing of the business guest *)
  Legacy_os.exploit private_g ~process:"browser";
  Alcotest.(check bool) "business guest intact" false
    (Legacy_os.is_compromised business_g);
  Alcotest.(check (list (pair string string))) "no business loot" []
    (Legacy_os.loot k business_g);
  Alcotest.(check (result string string)) "business guest still works"
    (Ok "board-members")
    (Legacy_os.call k business_g ~process:"contacts" "get")

let test_guest_state_in_guest_frames () =
  (* guest state physically lives in the guest's own frames: the bytes
     are found in exactly one guest's memory *)
  let k = make_kernel () in
  let machine = Kernel.machine k in
  let g1 =
    boot_ok k ~name:"g1" ~partition:"vm1" ~memory_pages:4
      ~processes:android_processes
  in
  let _g2 =
    boot_ok k ~name:"g2" ~partition:"vm2" ~memory_pages:4
      ~processes:android_processes
  in
  ignore (Legacy_os.call k g1 ~process:"contacts" "NEEDLE-CONTACTS");
  let hits =
    Lt_hw.Tamper.scan (Lt_hw.Machine.tamper machine) ~needle:"NEEDLE-CONTACTS"
  in
  let page = Lt_hw.Mmu.page_size in
  let g1_frames = Legacy_os.frames g1 in
  Alcotest.(check bool) "state found in memory" true (hits <> []);
  Alcotest.(check bool) "all hits inside g1's frames" true
    (List.for_all (fun addr -> List.mem (addr / page) g1_frames) hits)

let test_boot_out_of_frames () =
  (* regression: a guest too big for the machine is a typed boot error,
     not a kernel panic *)
  let k =
    Kernel.create (Lt_hw.Machine.create ~dram_pages:2 ())
      (Sched.Round_robin { quantum = 200 })
  in
  match
    Legacy_os.boot k ~name:"huge" ~partition:"vm1" ~memory_pages:64
      ~processes:android_processes
  with
  | Ok _ -> Alcotest.fail "boot should report out of frames"
  | Error e ->
    let contains hay needle =
      let h = String.length hay and n = String.length needle in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "mentions frames" true (contains e "frames")

let suite =
  [ Alcotest.test_case "guest runs processes" `Quick test_guest_runs_processes;
    Alcotest.test_case "oversized guest boots to an error" `Quick
      test_boot_out_of_frames;
    Alcotest.test_case "no isolation inside a guest" `Quick test_no_internal_isolation;
    Alcotest.test_case "one exploit owns the whole guest" `Quick
      test_exploit_owns_whole_guest;
    Alcotest.test_case "two guests isolated by the kernel" `Quick
      test_two_guests_isolated;
    Alcotest.test_case "guest state lives in guest frames" `Quick
      test_guest_state_in_guest_frames ]
