(* The incremental Check engine: per-delta unit coverage, the delta
   script format, and the headline property — after any delta sequence
   the incremental state is byte-identical to a from-scratch
   Lint.run + Flow.analyze, and the maintained kernel still conforms. *)

open Lateral

let m = Manifest.v
let conn = Manifest.conn

let names ms = List.map (fun x -> x.Manifest.name) ms

(* --- Delta.apply ----------------------------------------------------------- *)

let test_delta_apply () =
  let fleet = [ m ~name:"a" ~connects_to:[ conn "b" "s" ] (); m ~name:"b" () ] in
  (* upsert replaces in place *)
  let fleet' = Delta.apply (Delta.Add (m ~name:"a" ~size_loc:9 ())) fleet in
  Alcotest.(check (list string)) "upsert keeps order" [ "a"; "b" ] (names fleet');
  Alcotest.(check int) "upsert replaced the body" 9
    (List.hd fleet').Manifest.size_loc;
  (* fresh add appends *)
  let fleet' = Delta.apply (Delta.Add (m ~name:"c" ())) fleet in
  Alcotest.(check (list string)) "add appends" [ "a"; "b"; "c" ] (names fleet');
  (* remove filters, and is a no-op on unknown names *)
  Alcotest.(check (list string)) "remove" [ "a" ]
    (names (Delta.apply (Delta.Remove "b") fleet));
  Alcotest.(check (list string)) "remove unknown = no-op" [ "a"; "b" ]
    (names (Delta.apply (Delta.Remove "zz") fleet));
  (* connect upserts the channel, disconnect drops it *)
  let c2 = conn ~vetted:true "b" "s" in
  let fleet' = Delta.apply (Delta.Connect { caller = "a"; conn = c2 }) fleet in
  Alcotest.(check int) "connect upserts, no duplicate channel" 1
    (List.length (List.hd fleet').Manifest.connects_to);
  Alcotest.(check bool) "connect replaced the vetted flag" true
    (List.hd (List.hd fleet').Manifest.connects_to).Manifest.vetted;
  let fleet' =
    Delta.apply (Delta.Disconnect { caller = "a"; target = "b"; service = "s" })
      fleet
  in
  Alcotest.(check int) "disconnect" 0
    (List.length (List.hd fleet').Manifest.connects_to);
  (* vet toggles in place *)
  let fleet' =
    Delta.apply
      (Delta.Set_vetted { caller = "a"; target = "b"; service = "s"; vetted = true })
      fleet
  in
  Alcotest.(check bool) "vet" true
    (List.hd (List.hd fleet').Manifest.connects_to).Manifest.vetted;
  (* a delta on a missing caller is a no-op *)
  Alcotest.(check bool) "missing caller = no-op" true
    (Delta.apply (Delta.Disconnect { caller = "zz"; target = "b"; service = "s" })
       fleet
    = fleet)

(* --- the script format ----------------------------------------------------- *)

let script =
  {|# churn scenario
add
component cache
  provides get
  connects store.io

remove cache
connect ui store.io
connect-vetted ui legacyfs.io
disconnect ui store.io
vet ui legacyfs.io
unvet ui legacyfs.io
|}

let test_script_parse () =
  match Delta.parse_script script with
  | Error e -> Alcotest.fail e
  | Ok ds ->
    Alcotest.(check int) "delta count" 7 (List.length ds);
    Alcotest.(check (list string)) "describe"
      [ "add cache"; "remove cache"; "connect ui -> store.io";
        "connect-vetted ui -> legacyfs.io"; "disconnect ui -> store.io";
        "vet ui -> legacyfs.io"; "unvet ui -> legacyfs.io" ]
      (List.map Delta.describe ds)

let test_script_roundtrip () =
  match Delta.parse_script script with
  | Error e -> Alcotest.fail e
  | Ok ds ->
    (match Delta.parse_script (Delta.to_text ds) with
     | Error e -> Alcotest.fail ("re-parse: " ^ e)
     | Ok ds' ->
       Alcotest.(check bool) "to_text round-trips" true (ds = ds'))

let expect_error text fragment =
  match Delta.parse_script text with
  | Ok _ -> Alcotest.fail ("parsed, expected error mentioning " ^ fragment)
  | Error e ->
    let contains =
      let n = String.length fragment and h = String.length e in
      let rec go i = i + n <= h && (String.sub e i n = fragment || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) (fragment ^ " in: " ^ e) true contains

let test_script_errors () =
  expect_error "frobnicate x" "line 1";
  expect_error "frobnicate x" "unknown delta";
  expect_error "connect a b" "TARGET.SERVICE";
  expect_error "remove a b" "remove NAME";
  expect_error "\nconnect a a.s" "connects to itself";
  expect_error "\nconnect a a.s" "line 2";
  expect_error "add\n" "expected a manifest block";
  expect_error "add extra" "no arguments";
  (* block-inner errors are rebased onto the script's own line numbers:
     the bogus directive sits on script line 3, not block line 2 *)
  expect_error "add\ncomponent a\n  bogus-field x" "line 3"

let test_script_errors_located () =
  let line text =
    match Delta.parse_script_located text with
    | Ok _ -> Alcotest.fail "parsed, expected a located error"
    | Error e -> e.Delta.pe_line
  in
  Alcotest.(check int) "keyword line" 1 (line "frobnicate x");
  Alcotest.(check int) "later line" 3 (line "remove a\n\nconnect a b");
  Alcotest.(check int) "block-inner rebased" 3
    (line "add\ncomponent a\n  bogus-field x");
  Alcotest.(check int) "missing file is line-less" 0
    (match Delta.load_script_located "no-such-delta-script" with
     | Ok _ -> Alcotest.fail "loaded a missing file"
     | Error e -> e.Delta.pe_line)

(* --- the incremental engine ------------------------------------------------ *)

(* a fleet that exercises every rule family: a secret holder, a tainted
   network front end, a legacy-OS member, a cycle candidate *)
let base_fleet =
  [ m ~name:"ui" ~network_facing:true ~vulnerable:true
      ~connects_to:[ conn "svc" "rpc" ] ();
    m ~name:"svc" ~provides:[ "rpc" ] ~connects_to:[ conn "keys" "seal" ] ();
    m ~name:"keys" ~provides:[ "seal" ] ~substrate:"sep" ();
    m ~name:"legacyfs" ~provides:[ "io" ] ~substrate:"monolithic-os"
      ~size_loc:40000 () ]

let check_equiv what st =
  (match Check.divergence st with
   | None -> ()
   | Some reason -> Alcotest.fail (what ^ ": " ^ reason));
  Alcotest.(check bool) (what ^ ": kernel conforms") true
    (Check.conformance_clean st)

let test_create_matches_batch () =
  let st = Check.create base_fleet in
  check_equiv "create" st;
  Alcotest.(check bool) "diagnostics = batch Lint.run" true
    (Check.diagnostics st = Lint.run base_fleet);
  Alcotest.(check bool) "flow = batch Flow.analyze" true
    (Check.flow_result st = Flow.analyze base_fleet);
  (* create dedupes first-wins, like Flow *)
  let st =
    Check.create (base_fleet @ [ m ~name:"ui" ~size_loc:1 () ])
  in
  Alcotest.(check (list string)) "dedup first-wins"
    [ "ui"; "svc"; "keys"; "legacyfs" ]
    (names (Check.manifests st))

let test_apply_each_kind () =
  let st = Check.create base_fleet in
  let step what d st =
    let st, diags = Check.apply d st in
    check_equiv what st;
    Alcotest.(check bool) (what ^ ": returned diags are current") true
      (diags = Check.diagnostics st);
    st
  in
  (* admit a component that immediately leaks the secret outwards *)
  let st =
    step "add sink"
      (Delta.Add
         (m ~name:"exfil" ~network_facing:true
            ~connects_to:[ conn "keys" "seal" ] ()))
      st
  in
  (* rewire: unvetted channel into the legacy OS *)
  let st =
    step "connect legacy"
      (Delta.Connect { caller = "svc"; conn = conn "legacyfs" "io" })
      st
  in
  (* vet it, then unvet it *)
  let st =
    step "vet"
      (Delta.Set_vetted
         { caller = "svc"; target = "legacyfs"; service = "io"; vetted = true })
      st
  in
  let st =
    step "unvet"
      (Delta.Set_vetted
         { caller = "svc"; target = "legacyfs"; service = "io"; vetted = false })
      st
  in
  (* update in place: the front end stops being vulnerable *)
  let st =
    step "update ui"
      (Delta.Add
         (m ~name:"ui" ~network_facing:false
            ~connects_to:[ conn "svc" "rpc" ] ()))
      st
  in
  (* tear channels down, then evict components *)
  let st =
    step "disconnect"
      (Delta.Disconnect { caller = "svc"; target = "legacyfs"; service = "io" })
      st
  in
  let st = step "remove holder" (Delta.Remove "keys") st in
  let st = step "remove sink" (Delta.Remove "exfil") st in
  (* re-admit after eviction (task/badge recycling path) *)
  let st =
    step "re-add holder" (Delta.Add (m ~name:"keys" ~substrate:"sgx" ())) st
  in
  ignore st

let test_cycle_births_and_dies () =
  let st =
    Check.create
      [ m ~name:"a" ~provides:[ "s" ] ~connects_to:[ conn "b" "s" ] ();
        m ~name:"b" ~provides:[ "s" ] ~connects_to:[ conn "c" "s" ] ();
        m ~name:"c" ~provides:[ "s" ] () ]
  in
  let fires st =
    List.exists
      (fun d -> d.Diagnostic.rule_id = "L009-channel-cycle")
      (Check.diagnostics st)
  in
  Alcotest.(check bool) "no cycle yet" false (fires st);
  let st, _ = Check.apply (Delta.Connect { caller = "c"; conn = conn "a" "s" }) st in
  check_equiv "cycle born" st;
  Alcotest.(check bool) "cycle detected incrementally" true (fires st);
  let st, _ =
    Check.apply (Delta.Disconnect { caller = "b"; target = "c"; service = "s" }) st
  in
  check_equiv "cycle broken" st;
  Alcotest.(check bool) "cycle gone incrementally" false (fires st)

let test_apply_noop_keeps_state () =
  let st = Check.create base_fleet in
  let before = Check.diagnostics st in
  let st, diags = Check.apply (Delta.Remove "no-such-component") st in
  Alcotest.(check bool) "no-op returns identical diagnostics" true
    (diags == before);
  check_equiv "no-op" st

(* --- the headline property ------------------------------------------------- *)

let pool = [ "a"; "b"; "c"; "d"; "e" ]

let gen_manifest =
  QCheck.Gen.(
    let* name = oneofl pool in
    let* network_facing = bool in
    let* vulnerable = frequency [ (3, return false); (1, return true) ] in
    let* substrate =
      oneofl [ "microkernel"; "sep"; "sgx"; "monolithic-os" ]
    in
    let* domain = oneofl [ "d1"; "d2"; name ] in
    let* size_loc = oneofl [ 50; 12000; 40000 ] in
    let* discriminates_clients = bool in
    let* connects_to =
      list_size (int_range 0 3)
        (let* target = oneofl pool in
         let* service = oneofl [ "s"; "t" ] in
         let* vetted = bool in
         return (Manifest.conn ~vetted target service))
    in
    return
      (Manifest.v ~name ~provides:[ "s"; "t" ] ~connects_to ~domain ~size_loc
         ~network_facing ~vulnerable ~discriminates_clients ~substrate ()))

let gen_delta =
  QCheck.Gen.(
    let* pick = int_range 0 4 in
    match pick with
    | 0 ->
      let* m = gen_manifest in
      return (Delta.Add m)
    | 1 ->
      let* name = oneofl pool in
      return (Delta.Remove name)
    | 2 ->
      let* caller = oneofl pool in
      let* target = oneofl pool in
      let* service = oneofl [ "s"; "t" ] in
      let* vetted = bool in
      return (Delta.Connect { caller; conn = Manifest.conn ~vetted target service })
    | 3 ->
      let* caller = oneofl pool in
      let* target = oneofl pool in
      let* service = oneofl [ "s"; "t" ] in
      return (Delta.Disconnect { caller; target; service })
    | _ ->
      let* caller = oneofl pool in
      let* target = oneofl pool in
      let* service = oneofl [ "s"; "t" ] in
      let* vetted = bool in
      return (Delta.Set_vetted { caller; target; service; vetted }))

let gen_scenario =
  QCheck.Gen.(
    let* fleet = list_size (int_range 0 4) gen_manifest in
    let* deltas = list_size (int_range 1 10) gen_delta in
    return (fleet, deltas))

let show_scenario (fleet, deltas) =
  Printf.sprintf "fleet = [%s]\n%s"
    (String.concat "; " (List.map (fun m -> m.Manifest.name) fleet))
    (Delta.to_text deltas)

let prop_incremental_equals_batch =
  QCheck.Test.make
    ~name:"incremental Check = from-scratch Lint.run + Flow.analyze" ~count:60
    (QCheck.make ~print:show_scenario gen_scenario)
    (fun (fleet, deltas) ->
      let st = Check.create fleet in
      (match Check.divergence st with
       | None -> ()
       | Some r -> QCheck.Test.fail_reportf "create: %s" r);
      let _final =
        List.fold_left
          (fun st d ->
            let st, _ = Check.apply d st in
            (match Check.divergence st with
             | None -> ()
             | Some r ->
               QCheck.Test.fail_reportf "after %s: %s" (Delta.describe d) r);
            if not (Check.conformance_clean st) then
              QCheck.Test.fail_reportf "after %s: kernel does not conform"
                (Delta.describe d);
            st)
          st deltas
      in
      true)

let suite =
  [ Alcotest.test_case "Delta.apply semantics" `Quick test_delta_apply;
    Alcotest.test_case "delta script parses" `Quick test_script_parse;
    Alcotest.test_case "delta script round-trips" `Quick test_script_roundtrip;
    Alcotest.test_case "delta script rejects garbage with line numbers" `Quick
      test_script_errors;
    Alcotest.test_case "delta script errors carry locations" `Quick
      test_script_errors_located;
    Alcotest.test_case "create matches the batch analysis" `Quick
      test_create_matches_batch;
    Alcotest.test_case "every delta kind preserves equivalence" `Quick
      test_apply_each_kind;
    Alcotest.test_case "cycles are born and die incrementally" `Quick
      test_cycle_births_and_dies;
    Alcotest.test_case "no-op delta returns the same report" `Quick
      test_apply_noop_keeps_state;
    QCheck_alcotest.to_alcotest prop_incremental_equals_batch ]
