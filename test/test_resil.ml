(* Resilience: supervised restart under manifest policies, hardened
   calls (deadline/retry/breaker), and the chaos harness's containment
   audit over the load-engine scenarios. *)

open Lt_crypto
open Lateral
module Sup = Lt_resil.Supervisor
module Chaos = Lt_resil.Chaos
module Load = Lt_load.Load
module Trace = Lt_obs.Trace

(* a one-component deployment for policy-level supervisor tests *)
let small_deploy ?restart () =
  let m = Lt_hw.Machine.create ~dram_pages:256 () in
  let mk, _ =
    Substrate_kernel.make m (Lt_kernel.Sched.Round_robin { quantum = 500 }) ()
  in
  match
    Deploy.deploy
      ~substrates:[ ("microkernel", mk) ]
      [ ( Manifest.v ~name:"svc" ~provides:[ "ping" ] ~network_facing:true
            ~substrate:"microkernel" ?restart (),
          fun _ctx ~service:_ req -> "pong:" ^ req ) ]
  with
  | Ok d -> d
  | Error e -> Alcotest.fail e

let scenario_supervisor ?config scenario seed =
  let rng = Drbg.create seed in
  match Load.deploy_scenario rng scenario with
  | Ok d -> (Sup.create ?config ~seed:(Int64.add seed 1L) d.Load.d_deploy, d)
  | Error e -> Alcotest.fail e

let ok_call sup ?caller ~target ~service req =
  match Sup.call sup ~caller ~target ~service req with
  | Ok r -> r
  | Error e -> Alcotest.fail (App.render_call_error e)

let must = function Ok () -> () | Error e -> Alcotest.fail e

(* --- typed routing errors pass through the supervisor untouched --- *)

let test_unknown_target_typed () =
  let sup, _ = scenario_supervisor Load.Mail 3L in
  (match Sup.call sup ~caller:None ~target:"gopher" ~service:"get" "x" with
   | Error (App.Unknown_component { target; _ }) ->
     Alcotest.(check string) "names the target" "gopher" target
   | Ok r -> Alcotest.fail ("unknown component answered: " ^ r)
   | Error e -> Alcotest.fail (App.render_call_error e));
  Alcotest.(check bool) "policy errors never trip the breaker" true
    (Sup.breaker_state sup ~target:"gopher" ~service:"get" = Sup.Closed)

let test_denied_verbatim () =
  let sup, _ = scenario_supervisor Load.Mail 4L in
  (* the renderer has no channel to the keystore: a deny is a correct
     answer from the reference monitor, not a fault *)
  (match
     Sup.call sup ~caller:(Some "renderer") ~target:"keystore" ~service:"sign"
       "steal"
   with
   | Error (App.Denied _) -> ()
   | Ok r -> Alcotest.fail ("denied probe answered: " ^ r)
   | Error e -> Alcotest.fail (App.render_call_error e));
  Alcotest.(check bool) "deny does not open the breaker" true
    (Sup.breaker_state sup ~target:"keystore" ~service:"sign" = Sup.Closed)

(* --- crash and supervised respawn across every adapter --- *)

let test_crash_surface_all_adapters () =
  List.iter
    (fun scenario ->
      let sup, d = scenario_supervisor scenario 21L in
      let dep = d.Load.d_deploy in
      List.iter
        (fun name ->
          must (Sup.crash sup name);
          Alcotest.(check bool) (name ^ " down") false (Deploy.is_alive dep name);
          Sup.heal sup;
          Alcotest.(check bool) (name ^ " respawned") true
            (Deploy.is_alive dep name))
        (Deploy.components dep);
      Alcotest.(check (list string))
        (Load.scenario_name scenario ^ ": nothing given up")
        [] (Sup.given_up sup))
    Load.all_scenarios

let test_crash_unknown_component () =
  let sup, _ = scenario_supervisor Load.Cloud 2L in
  match Sup.crash sup "gopher" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "crashed a component that does not exist"

let test_restart_transparent_to_caller () =
  let sup, d = scenario_supervisor Load.Mail 5L in
  let dep = d.Load.d_deploy in
  let r1 = ok_call sup ~target:"ui" ~service:"show" "msg-1" in
  must (Sup.crash sup "imap");
  Alcotest.(check bool) "imap down" false (Deploy.is_alive dep "imap");
  (* the fault is healed and retried inside one hardened call *)
  let r2 = ok_call sup ~target:"ui" ~service:"show" "msg-1" in
  Alcotest.(check string) "same answer after respawn" r1 r2;
  Alcotest.(check int) "one supervised restart" 1 (Sup.restarts_of sup "imap");
  Alcotest.(check bool) "imap back" true (Deploy.is_alive dep "imap")

let test_sealed_state_rederived_after_respawn () =
  let sup, _ = scenario_supervisor Load.Mail 6L in
  (* tls replies embed a MAC under the keystore's SEP-sealed key; the
     signature surviving a keystore respawn proves the fresh instance
     re-derived the sealed key rather than minting a new one *)
  let r1 = ok_call sup ~caller:"imap" ~target:"tls" ~service:"transmit" "p" in
  must (Sup.crash sup "keystore");
  let r2 = ok_call sup ~caller:"imap" ~target:"tls" ~service:"transmit" "p" in
  Alcotest.(check string) "signature stable across keystore respawn" r1 r2;
  Alcotest.(check int) "keystore restarted once" 1 (Sup.restarts_of sup "keystore")

(* --- restart policies: never / absent / budget --- *)

let test_no_policy_gives_up () =
  let d = small_deploy () in
  let sup = Sup.create ~seed:9L d in
  must (Sup.crash sup "svc");
  Sup.heal sup;
  Alcotest.(check (list string)) "given up" [ "svc" ] (Sup.given_up sup);
  Alcotest.(check int) "no restarts" 0 (Sup.restarts_of sup "svc");
  (match Sup.call sup ~caller:None ~target:"svc" ~service:"ping" "x" with
   | Error (App.Crashed _) -> ()
   | Ok _ -> Alcotest.fail "dead component answered"
   | Error e -> Alcotest.fail (App.render_call_error e));
  (* operator intervention: revive clears the mark *)
  must (Sup.revive sup "svc");
  Alcotest.(check (list string)) "revived" [] (Sup.given_up sup);
  Alcotest.(check string) "serving again" "pong:x"
    (ok_call sup ~target:"svc" ~service:"ping" "x")

let test_never_policy_gives_up () =
  let d = small_deploy ~restart:(Manifest.default_restart Manifest.Never) () in
  let sup = Sup.create ~seed:10L d in
  must (Sup.crash sup "svc");
  Sup.heal sup;
  Alcotest.(check (list string)) "never: stays dead" [ "svc" ] (Sup.given_up sup);
  Alcotest.(check int) "never restarted" 0 (Sup.restarts_of sup "svc")

let test_restart_budget_spent () =
  let d = small_deploy ~restart:(Manifest.default_restart Manifest.On_failure) () in
  let sup = Sup.create ~seed:11L d in
  for _ = 1 to 3 do
    must (Sup.crash sup "svc");
    Sup.heal sup
  done;
  Alcotest.(check int) "budget of three honoured" 3 (Sup.restarts_of sup "svc");
  Alcotest.(check (list string)) "still supervised" [] (Sup.given_up sup);
  must (Sup.crash sup "svc");
  Sup.heal sup;
  Alcotest.(check int) "fourth refused" 3 (Sup.restarts_of sup "svc");
  Alcotest.(check (list string)) "gave up" [ "svc" ] (Sup.given_up sup)

let test_restart_window_slides () =
  let t = Trace.create () in
  Trace.with_tracer t (fun () ->
      let d =
        small_deploy ~restart:(Manifest.default_restart Manifest.On_failure) ()
      in
      let sup = Sup.create ~seed:12L d in
      for _ = 1 to 3 do
        must (Sup.crash sup "svc");
        Sup.heal sup
      done;
      (* the 256-tick window slides on the ambient clock: after it
         passes, the budget refills instead of giving up *)
      Trace.advance 300;
      must (Sup.crash sup "svc");
      Sup.heal sup;
      Alcotest.(check int) "fourth granted after the window" 4
        (Sup.restarts_of sup "svc");
      Alcotest.(check (list string)) "not given up" [] (Sup.given_up sup))

(* --- circuit breaker: open, fast-fail, half-open probe, close --- *)

let test_breaker_cycle () =
  let t = Trace.create () in
  Trace.with_tracer t (fun () ->
      let d = small_deploy ~restart:(Manifest.default_restart Manifest.Never) () in
      let cfg =
        { Sup.default_config with
          breaker_threshold = 2;
          breaker_cooldown = 64;
          retries = 0
        }
      in
      let sup = Sup.create ~config:cfg ~seed:13L d in
      must (Sup.crash sup "svc");
      let state () = Sup.breaker_state sup ~target:"svc" ~service:"ping" in
      let fail_call () =
        match Sup.call sup ~caller:None ~target:"svc" ~service:"ping" "x" with
        | Error (App.Crashed { reason; _ }) -> reason
        | Ok _ -> Alcotest.fail "dead svc answered"
        | Error e -> Alcotest.fail (App.render_call_error e)
      in
      ignore (fail_call ());
      Alcotest.(check bool) "closed below threshold" true (state () = Sup.Closed);
      ignore (fail_call ());
      Alcotest.(check bool) "open at threshold" true (state () = Sup.Open);
      let reason = fail_call () in
      Alcotest.(check bool) "fast-fail names the open circuit" true
        (String.length reason >= 12 && String.sub reason 0 12 = "circuit open");
      Trace.advance 100;
      (* past the cooldown: exactly one half-open probe, which fails
         against the still-dead component and re-opens the circuit *)
      ignore (fail_call ());
      Alcotest.(check bool) "failed probe re-opens" true (state () = Sup.Open);
      must (Sup.revive sup "svc");
      Trace.advance 100;
      Alcotest.(check string) "successful probe serves the reply" "pong:hello"
        (ok_call sup ~target:"svc" ~service:"ping" "hello");
      Alcotest.(check bool) "closed after successful probe" true
        (state () = Sup.Closed))

(* --- determinism: equal seeds, byte-identical traces and reports --- *)

let test_backoff_schedule_deterministic () =
  let run seed =
    let t = Trace.create () in
    Trace.with_tracer t (fun () ->
        let d =
          small_deploy ~restart:(Manifest.default_restart Manifest.Never) ()
        in
        let sup = Sup.create ~seed d in
        must (Sup.crash sup "svc");
        for _ = 1 to 3 do
          ignore (Sup.call sup ~caller:None ~target:"svc" ~service:"ping" "x")
        done);
    Trace.export_json t
  in
  Alcotest.(check string) "equal seeds give identical backoff traces" (run 99L)
    (run 99L)

let test_chaos_deterministic () =
  let run () =
    match
      Chaos.run
        ~plan:{ Chaos.no_chaos with kill = [ "meter" ]; kill_pct = 5 }
        ~scenario:Load.Meter ~requests:30 ~seed:3 ()
    with
    | Ok (r, _) -> Chaos.render_report_json r
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check string) "byte-identical chaos reports" (run ()) (run ())

(* --- chaos harness: containment end-to-end --- *)

let test_chaos_mail_power_cut_contained () =
  match
    Chaos.run
      ~plan:{ Chaos.no_chaos with kill = [ "imap"; "legacy_os" ] }
      ~scenario:Load.Mail ~requests:40 ~seed:7 ()
  with
  | Error e -> Alcotest.fail e
  | Ok (r, _) ->
    Alcotest.(check int) "one power cut" 1 r.Chaos.c_backend_cuts;
    Alcotest.(check string) "VPFS survivors match the shadow oracle" "match"
      r.Chaos.c_oracle;
    Alcotest.(check bool) "no secret escaped to the legacy stack" false
      r.Chaos.c_secret_leak;
    Alcotest.(check int) "every failure excused by an injected fault" 0
      r.Chaos.c_failed_unexcused;
    Alcotest.(check bool) "contained" true (Chaos.contained r)

let test_chaos_flap_opens_breaker () =
  match
    Chaos.run
      ~plan:{ Chaos.no_chaos with flap = Some "renderer" }
      ~scenario:Load.Mail ~requests:60 ~seed:11 ()
  with
  | Error e -> Alcotest.fail e
  | Ok (r, _) ->
    Alcotest.(check bool) "flapping drove the restart budget to give-up" true
      (List.mem "renderer" r.Chaos.c_given_up);
    Alcotest.(check bool) "its route's breaker opened" true
      (List.mem_assoc "resil/breaker_open" r.Chaos.c_counters);
    Alcotest.(check bool) "calls fast-failed while open" true
      (List.mem_assoc "resil/breaker_fastfail" r.Chaos.c_counters);
    Alcotest.(check bool) "yet the run stayed contained" true (Chaos.contained r)

let test_chaos_rejects_bad_plans () =
  (match
     Chaos.run
       ~plan:{ Chaos.no_chaos with kill = [ "gopher" ] }
       ~scenario:Load.Meter ~requests:10 ~seed:1 ()
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown kill target accepted");
  match
    Chaos.run
      ~plan:{ Chaos.no_chaos with kill = [ "legacy_os" ] }
      ~scenario:Load.Meter ~requests:10 ~seed:1 ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "legacy_os power cut accepted outside mail"

(* --- chaos observed radius vs the static Contain prediction --- *)

(* the scenario fleets are fixed, so one Contain.analyze per scenario
   serves every generated kill schedule *)
let static_radii_memo = ref []

let scenario_manifests scenario =
  match Load.deploy_scenario (Drbg.create 1L) scenario with
  | Error e -> Alcotest.fail e
  | Ok dep ->
    let d = dep.Load.d_deploy in
    (List.filter_map (Deploy.manifest d) (Deploy.components d), dep)

let static_radii scenario =
  match List.assoc_opt (Load.scenario_name scenario) !static_radii_memo with
  | Some r -> r
  | None ->
    let ms, _ = scenario_manifests scenario in
    let r = Contain.analyze ms in
    static_radii_memo :=
      (Load.scenario_name scenario, r) :: !static_radii_memo;
    r

let killable = function
  | Load.Mail ->
    [ "ui"; "imap"; "smtp"; "tls"; "keystore"; "storage"; "legacyfs";
      "renderer"; "composer"; "legacy_os" ]
  | Load.Meter -> [ "collector"; "meter"; "utility"; "anonymizer" ]
  | Load.Cloud -> [ "host"; "enclave" ]

let chaos_case_gen =
  QCheck.Gen.(
    Load.all_scenarios |> oneofl >>= fun scenario ->
    let comp = oneofl (killable scenario) in
    tup5 (return scenario)
      (tup2 (int_range 1 500) (int_range 5 40))
      (list_size (int_range 0 3) comp)
      (opt (oneofl (List.filter (fun c -> c <> "legacy_os") (killable scenario))))
      (int_range 0 15))

let print_chaos_case (scenario, (seed, requests), kills, flap, kill_pct) =
  Printf.sprintf "%s seed=%d requests=%d kill=[%s] flap=%s kill-pct=%d"
    (Load.scenario_name scenario) seed requests (String.concat "," kills)
    (match flap with None -> "-" | Some f -> f)
    kill_pct

(* the soundness gate: no impact the harness observes may exceed what
   the static analysis predicts for the components actually killed.
   Mid-IPC faults stay off (they damage requests, not components), and
   a component killed more than once may legitimately exhaust its
   restart budget, so repeats license Failed. *)
let prop_observed_inside_static =
  QCheck.Test.make ~count:51 ~name:"chaos observed radius inside static radius"
    (QCheck.make ~print:print_chaos_case chaos_case_gen)
    (fun (scenario, (seed, requests), kills, flap, kill_pct) ->
      let plan = { Chaos.kill = kills; kill_pct; flap; mid_ipc_pct = 0 } in
      match Chaos.run ~plan ~scenario ~requests ~seed () with
      | Error e -> QCheck.Test.fail_reportf "plan rejected: %s" e
      | Ok (r, _) ->
        let static = static_radii scenario in
        let kill_count y =
          List.length (List.filter (fun (_, n) -> n = y) r.Chaos.c_kills)
          + (if r.Chaos.c_flap_kills > 0 && flap = Some y then
               r.Chaos.c_flap_kills
             else 0)
        in
        let killed =
          List.sort_uniq compare
            (List.filter
               (fun n -> n <> "legacy_os")
               (List.map snd r.Chaos.c_kills
               @ (if r.Chaos.c_flap_kills > 0 then Option.to_list flap else [])))
        in
        let allowed y =
          if kill_count y > 1 then 3
          else
            List.fold_left
              (fun acc root ->
                match
                  List.find_opt
                    (fun x -> x.Contain.r_root = root)
                    static.Contain.radii
                with
                | None -> acc
                | Some x ->
                  (match List.assoc_opt y x.Contain.r_hit with
                   | None -> acc
                   | Some im -> max acc (Contain.rank im)))
              0 killed
        in
        List.for_all
          (fun (y, obs) ->
            let rank =
              match Contain.impact_of_string obs with
              | Some i -> Contain.rank i
              | None -> 99
            in
            rank <= allowed y
            || QCheck.Test.fail_reportf
                 "observed %s on %s, static allows rank %d (kills [%s])" obs y
                 (allowed y) (String.concat ", " killed))
          r.Chaos.c_observed)

(* the static prediction reasons over manifest channels; the harness
   accounts blast per route. The inclusion above is only meaningful if
   every route's slice is reachable from its entry through channels *)
let test_routes_follow_channels () =
  List.iter
    (fun scenario ->
      let ms, dep = scenario_manifests scenario in
      let succ name =
        match List.find_opt (fun m -> m.Manifest.name = name) ms with
        | None -> []
        | Some m ->
          List.map (fun c -> c.Manifest.target) m.Manifest.connects_to
      in
      let rec reach seen = function
        | [] -> seen
        | n :: rest ->
          if List.mem n seen then reach seen rest
          else reach (n :: seen) (succ n @ rest)
      in
      List.iter
        (fun (target, service, deps) ->
          let ok = reach [] [ target ] in
          List.iter
            (fun dep ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: route %s.%s dep %s follows channels"
                   (Load.scenario_name scenario) target service dep)
                true (List.mem dep ok))
            deps)
        dep.Load.d_routes)
    Load.all_scenarios

let suite =
  [ Alcotest.test_case "unknown target: typed error, breaker untouched" `Quick
      test_unknown_target_typed;
    Alcotest.test_case "deny returned verbatim, never retried" `Quick
      test_denied_verbatim;
    Alcotest.test_case "crash + respawn across every adapter" `Quick
      test_crash_surface_all_adapters;
    Alcotest.test_case "crash of unknown component refused" `Quick
      test_crash_unknown_component;
    Alcotest.test_case "restart transparent to the caller" `Quick
      test_restart_transparent_to_caller;
    Alcotest.test_case "sealed state re-derived after respawn" `Quick
      test_sealed_state_rederived_after_respawn;
    Alcotest.test_case "no restart policy: give up" `Quick test_no_policy_gives_up;
    Alcotest.test_case "never policy: give up" `Quick test_never_policy_gives_up;
    Alcotest.test_case "restart budget spent: give up" `Quick
      test_restart_budget_spent;
    Alcotest.test_case "restart window slides on the ambient clock" `Quick
      test_restart_window_slides;
    Alcotest.test_case "breaker: open, fast-fail, probe, close" `Quick
      test_breaker_cycle;
    Alcotest.test_case "backoff schedule is seed-deterministic" `Quick
      test_backoff_schedule_deterministic;
    Alcotest.test_case "chaos reports are seed-deterministic" `Quick
      test_chaos_deterministic;
    Alcotest.test_case "chaos: mail power cut contained" `Quick
      test_chaos_mail_power_cut_contained;
    Alcotest.test_case "chaos: flapping component contained by breaker" `Quick
      test_chaos_flap_opens_breaker;
    Alcotest.test_case "chaos: malformed plans rejected" `Quick
      test_chaos_rejects_bad_plans;
    Alcotest.test_case "routes transit only channel descendants" `Quick
      test_routes_follow_channels;
    QCheck_alcotest.to_alcotest prop_observed_inside_static ]
