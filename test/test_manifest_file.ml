(* Manifest file format: parse, render, roundtrip, error reporting. *)

open Lateral

let sample =
  {|
# a comment
component ui
  size 6000
  provides show
  connects tls.transmit   # trailing comment
  network-facing

component tls
  domain secure
  size 3000
  substrate sgx
  provides transmit
  connects-vetted legacyfs.io

component legacyfs
  vulnerable
  no-badge-checks
  provides io
|}

let parse_ok text =
  match Manifest_file.parse text with
  | Ok ms -> ms
  | Error e -> Alcotest.fail e

let test_parse_sample () =
  let ms = parse_ok sample in
  Alcotest.(check (list string)) "names in order" [ "ui"; "tls"; "legacyfs" ]
    (List.map (fun m -> m.Manifest.name) ms);
  let ui = List.nth ms 0 and tls = List.nth ms 1 and lfs = List.nth ms 2 in
  Alcotest.(check int) "ui size" 6000 ui.Manifest.size_loc;
  Alcotest.(check bool) "ui network facing" true ui.Manifest.network_facing;
  Alcotest.(check (list string)) "ui provides" [ "show" ] ui.Manifest.provides;
  Alcotest.(check string) "tls domain" "secure" tls.Manifest.domain;
  Alcotest.(check string) "tls substrate" "sgx" tls.Manifest.substrate;
  (match tls.Manifest.connects_to with
   | [ c ] ->
     Alcotest.(check string) "vetted target" "legacyfs" c.Manifest.target;
     Alcotest.(check bool) "vetted flag" true c.Manifest.vetted
   | _ -> Alcotest.fail "tls should have one connection");
  Alcotest.(check bool) "defaults" true
    (lfs.Manifest.vulnerable && not lfs.Manifest.discriminates_clients
     && lfs.Manifest.substrate = "microkernel")

let test_roundtrip () =
  let ms = parse_ok sample in
  let ms2 = parse_ok (Manifest_file.to_text ms) in
  Alcotest.(check bool) "roundtrip identical" true (ms = ms2)

let fleet_sample =
  {|
host edge-1
  substrates microkernel sgx

host core-1
  substrates monolithic-os

component app
  substrate sgx
  provides run
  place class:tee host:core-1
|}

let test_fleet_parse_and_roundtrip () =
  match Manifest_file.parse_fleet fleet_sample with
  | Error e -> Alcotest.fail e
  | Ok (ms, hosts) ->
    Alcotest.(check (list string)) "hosts in order" [ "edge-1"; "core-1" ]
      (List.map (fun h -> h.Manifest.h_name) hosts);
    Alcotest.(check (list string)) "edge-1 substrates" [ "microkernel"; "sgx" ]
      (List.nth hosts 0).Manifest.h_substrates;
    (match ms with
     | [ app ] ->
       Alcotest.(check (list string)) "placement in order"
         [ "class:tee"; "host:core-1" ] app.Manifest.placement
     | _ -> Alcotest.fail "one component expected");
    (match Manifest_file.parse_fleet (Manifest_file.fleet_to_text (ms, hosts)) with
     | Ok (ms2, hosts2) ->
       Alcotest.(check bool) "fleet roundtrip identical" true
         (ms = ms2 && hosts = hosts2)
     | Error e -> Alcotest.fail e);
    (* plain parse accepts host stanzas and keeps only components *)
    (match Manifest_file.parse fleet_sample with
     | Ok ms3 -> Alcotest.(check bool) "parse drops hosts" true (ms3 = ms)
     | Error e -> Alcotest.fail e)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_fleet_errors () =
  let bad t frag =
    match Manifest_file.parse_fleet t with
    | Ok _ -> Alcotest.fail ("parsed: " ^ t)
    | Error e -> Alcotest.(check bool) (frag ^ " in " ^ e) true (contains e frag)
  in
  bad "host a\nhost a\n" "duplicate host";
  bad "host a b\n" "host takes one name";
  bad "host a\n  substrates\n" "malformed host directive";
  bad "host a\n  provides x\n" "malformed host directive";
  bad "component c\n  place\n" "malformed directive";
  bad "substrates microkernel\n" "outside a component"

let expect_error text fragment =
  match Manifest_file.parse text with
  | Ok _ -> Alcotest.fail ("parsed: " ^ text)
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S mentions %S" e fragment)
      true
      (let n = String.length fragment and h = String.length e in
       let rec go i = i + n <= h && (String.sub e i n = fragment || go (i + 1)) in
       go 0)

let test_errors () =
  expect_error "size 5" "outside a component";
  expect_error "component a\n  size many" "bad size";
  expect_error "component a\n  connects nodot" "target.service";
  expect_error "component a\ncomponent a" "duplicate";
  expect_error "component a\n  frobnicate x" "unknown";
  expect_error "component a b" "one name";
  expect_error "component a\n  provides x\n  connects a.x" "connects to itself";
  expect_error "component a\n  provides x\n  connects-vetted a.x" "connects to itself"

let test_line_numbers_reported () =
  match Manifest_file.parse "component a\n  size 1\n  bogus" with
  | Error e ->
    Alcotest.(check bool) "line 3 reported" true
      (let fragment = "line 3" in
       let n = String.length fragment and h = String.length e in
       let rec go i = i + n <= h && (String.sub e i n = fragment || go (i + 1)) in
       go 0)
  | Ok _ -> Alcotest.fail "should fail"

let test_empty_and_comment_only () =
  Alcotest.(check bool) "empty file" true (Manifest_file.parse "" = Ok []);
  Alcotest.(check bool) "comments only" true
    (Manifest_file.parse "# nothing\n\n# here" = Ok [])

let test_analysis_integration () =
  let ms = parse_ok sample in
  let app = App.create () in
  List.iter (App.add_stub app) ms;
  Alcotest.(check bool) "validates" true (App.validate app = Ok ());
  Alcotest.(check bool) "vetted connection excluded from tcb" true
    (Analysis.tcb app ~tcb_of_substrate:(fun _ -> 0) "tls" = 3000)

(* flag order must not matter: directives can come in any order, and
   flags may precede or follow provides/connects lines *)
let test_flag_order () =
  let shuffled =
    {|component ui
  connects tls.transmit
  network-facing
  provides show
  size 6000

component tls
  provides transmit
  substrate sgx
  size 3000
  domain secure
  connects-vetted legacyfs.io

component legacyfs
  provides io
  no-badge-checks
  vulnerable
|}
  in
  let ms = parse_ok sample and ms2 = parse_ok shuffled in
  Alcotest.(check bool) "same manifests regardless of directive order" true (ms = ms2);
  (* multiple provides lines accumulate in order *)
  let multi = parse_ok "component a\n  provides x y\n  provides z" in
  Alcotest.(check (list string)) "provides accumulate" [ "x"; "y"; "z" ]
    ((List.hd multi).Manifest.provides)

let test_comment_edge_cases () =
  let ms =
    parse_ok
      "# leading\ncomponent a # trailing on component\n  provides x # y z\n  # a whole-line comment inside\n  size 5 # and one more"
  in
  (match ms with
   | [ m ] ->
     Alcotest.(check string) "name survives trailing comment" "a" m.Manifest.name;
     Alcotest.(check (list string)) "comment does not extend provides" [ "x" ]
       m.Manifest.provides;
     Alcotest.(check int) "size parsed before comment" 5 m.Manifest.size_loc
   | _ -> Alcotest.fail "expected one component");
  Alcotest.(check bool) "hash with no directive" true
    (Manifest_file.parse "component a\n  #" = Ok [ Manifest.v ~name:"a" () ])

let prop_parser_total =
  QCheck.Test.make ~name:"manifest parser is total" ~count:300 QCheck.printable_string
    (fun s -> try ignore (Manifest_file.parse s); true with _ -> false)

(* generator for manifest sets that the file format can express: unique
   parseable names, no self-connections; everything else is free *)
let gen_writable_manifests =
  QCheck.Gen.(
    let pool = [ "alpha"; "beta"; "gamma"; "delta" ] in
    let service = oneofl [ "query"; "store"; "sign" ] in
    let comp name =
      let others = List.filter (fun n -> n <> name) pool in
      list_size (int_bound 3)
        (map3 (fun v t s -> Manifest.conn ~vetted:v t s) bool (oneofl others) service)
      >>= fun cs ->
      list_size (int_bound 2) service >>= fun provides ->
      oneofl [ "microkernel"; "sgx"; "sep" ] >>= fun sub ->
      bool >>= fun net ->
      bool >>= fun vuln ->
      bool >>= fun badges ->
      oneofl [ name; "zone1"; "zone2" ] >>= fun dom ->
      int_bound 90_000 >>= fun size ->
      return
        (Manifest.v ~name ~provides ~connects_to:cs ~domain:dom ~size_loc:size
           ~network_facing:net ~vulnerable:vuln ~discriminates_clients:badges
           ~substrate:sub ())
    in
    (* a random subset of the name pool, each at most once *)
    List.fold_left
      (fun acc name ->
        acc >>= fun ms ->
        bool >>= fun keep ->
        if keep then comp name >>= fun m -> return (m :: ms) else return ms)
      (return []) pool
    >|= List.rev)

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (to_text ms) = ms" ~count:300
    (QCheck.make gen_writable_manifests)
    (fun ms -> Manifest_file.parse (Manifest_file.to_text ms) = Ok ms)

let suite =
  [ Alcotest.test_case "parse the sample" `Quick test_parse_sample;
    Alcotest.test_case "roundtrip through to_text" `Quick test_roundtrip;
    Alcotest.test_case "fleet: hosts and placement roundtrip" `Quick
      test_fleet_parse_and_roundtrip;
    Alcotest.test_case "fleet: error cases" `Quick test_fleet_errors;
    Alcotest.test_case "error cases" `Quick test_errors;
    Alcotest.test_case "errors carry line numbers" `Quick test_line_numbers_reported;
    Alcotest.test_case "empty inputs" `Quick test_empty_and_comment_only;
    Alcotest.test_case "flag order is irrelevant" `Quick test_flag_order;
    Alcotest.test_case "comment edge cases" `Quick test_comment_edge_cases;
    Alcotest.test_case "integrates with the analyses" `Quick test_analysis_integration;
    QCheck_alcotest.to_alcotest prop_parser_total;
    QCheck_alcotest.to_alcotest prop_roundtrip ]
