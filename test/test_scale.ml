(* The scale layer: sharded multi-tenant runs must be deterministic,
   tenant traffic must be pool-size independent, shard kills must stay
   inside the dead shard's domain set — and the per-trust-domain static
   verdicts must isolate tenants from each other's deltas. *)

open Lateral
module Sc = Lt_scale.Scale
module Fc = Lt_fleet.Fleet_chaos
module Load = Lt_load.Load
module Drbg = Lt_crypto.Drbg

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let small = { Sc.default with sc_tenants = 12; sc_shards = 3 }

let run_exn cfg =
  match Sc.run cfg with Ok r -> r | Error e -> Alcotest.fail e

(* --- determinism ------------------------------------------------------------ *)

let test_determinism () =
  let a = run_exn small and b = run_exn small in
  Alcotest.(check string) "equal seeds give byte-identical reports"
    (Sc.render_report_json a) (Sc.render_report_json b);
  let c = run_exn { small with sc_seed = 2 } in
  Alcotest.(check bool) "different seed, different traffic" false
    (Sc.render_report_json a = Sc.render_report_json c)

let test_tenant_prefix () =
  let digests cfg =
    List.map (fun tr -> tr.Sc.tr_traffic) (run_exn cfg).Sc.s_tenant_reports
  in
  let d12 = digests small in
  let d48 = digests { small with sc_tenants = 48 } in
  List.iteri
    (fun i d ->
      Alcotest.(check string)
        (Printf.sprintf "tenant %d traffic is pool-size independent" i)
        d (List.nth d48 i))
    d12

(* --- shard kills ------------------------------------------------------------ *)

let test_shard_kill_contained () =
  let cfg = { small with sc_kill_shards = [ 1 ]; sc_kill_after = 2 } in
  let r = run_exn cfg in
  Alcotest.(check bool) "contained" true (Sc.contained r);
  Alcotest.(check (list int)) "killed" [ 1 ] r.Sc.s_killed_shards;
  Alcotest.(check bool) "some requests were refused" true (r.Sc.s_refused > 0);
  List.iter
    (fun tr ->
      if tr.Sc.tr_shard = 1 then
        Alcotest.(check bool)
          (Printf.sprintf "tenant %d on the dead shard lost requests"
             tr.Sc.tr_tenant)
          true
          (tr.Sc.tr_refused > 0)
      else begin
        Alcotest.(check int)
          (Printf.sprintf "tenant %d outside the dead domain set is whole"
             tr.Sc.tr_tenant)
          0
          (tr.Sc.tr_refused + tr.Sc.tr_errors);
        Alcotest.(check int) "full service" cfg.Sc.sc_requests_per_tenant
          (tr.Sc.tr_ok + tr.Sc.tr_degraded + tr.Sc.tr_throttled)
      end)
    r.Sc.s_tenant_reports;
  (* the kill does not perturb surviving tenants' traffic *)
  let base = run_exn small in
  List.iter2
    (fun a b ->
      Alcotest.(check string) "traffic digest unchanged by the kill"
        a.Sc.tr_traffic b.Sc.tr_traffic)
    base.Sc.s_tenant_reports r.Sc.s_tenant_reports

let test_admission_throttle () =
  let cfg =
    { small with sc_admit_rate = 0.25; sc_admit_burst = 1.0 }
  in
  let r = run_exn cfg in
  Alcotest.(check bool) "bucket empties" true (r.Sc.s_throttled > 0);
  Alcotest.(check int) "every request accounted for" r.Sc.s_requests
    (r.Sc.s_ok + r.Sc.s_degraded + r.Sc.s_errors + r.Sc.s_throttled
   + r.Sc.s_refused);
  Alcotest.(check bool) "throttling is still contained" true (Sc.contained r)

(* --- the fleet-level shard kill audit --------------------------------------- *)

let test_fleet_shard_kill_audit () =
  let hosts = 6 and shards = 3 and kill = [ 2 ] in
  match Fc.kill_shard_plan ~hosts ~shards ~kill with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    Alcotest.(check (list string)) "a shard is all of its machines"
      [ "host-3"; "host-6" ] plan.Fc.kill_hosts;
    (match Fc.run ~plan ~hosts ~requests:150 ~seed:11 () with
     | Error e -> Alcotest.fail e
     | Ok (r, _) ->
       Alcotest.(check bool) "chaos run contained" true (Fc.contained r);
       (match Fc.shard_kill_audit ~shards ~kill r with
        | Ok () -> ()
        | Error l -> Alcotest.fail (String.concat "; " l));
       (* the same report audited against the wrong kill set must fail:
          its dead machines are not in the claimed domain set *)
       (match Fc.shard_kill_audit ~shards ~kill:[ 0 ] r with
        | Ok () -> Alcotest.fail "audit accepted the wrong domain set"
        | Error _ -> ()))

(* --- satellite: a crashed dependency is a typed fault, not a panic ---------- *)

let test_dependency_crash_mid_run () =
  match Load.deploy_scenario (Drbg.create 42L) Load.Mail with
  | Error e -> Alcotest.fail e
  | Ok dep ->
    let errors = ref 0 and oks = ref 0 and last = ref "" in
    (* a closed loop that loses its tls dependency mid-run: requests
       keep completing — with typed error lines, never an exception *)
    for i = 1 to 6 do
      if i = 3 then
        (match Deploy.crash dep.Load.d_deploy "tls" with
         | Ok () -> ()
         | Error e -> Alcotest.fail e);
      let r =
        Deploy.call dep.Load.d_deploy ~caller:None ~target:"ui" ~service:"show"
          (Printf.sprintf "msg-%d" i)
      in
      match r with
      | Ok _ -> incr oks
      | Error e ->
        incr errors;
        last := e
    done;
    Alcotest.(check int) "requests before the crash succeed" 2 !oks;
    Alcotest.(check int) "the run completed, each request an error line" 4
      !errors;
    (* ui called imap, imap tripped over tls: the fault is attributed to
       the true origin two hops down, not to whichever caller found it *)
    Alcotest.(check bool) "error names the crashed component" true
      (contains ~needle:"tls" !last);
    Alcotest.(check bool) "error is the typed crash, not a wrapper" true
      (contains ~needle:"component tls crashed" !last);
    Deploy.destroy dep.Load.d_deploy

(* --- satellite: canonical per-tenant streams -------------------------------- *)

let substream_props =
  [ QCheck.Test.make ~name:"substream is non-advancing and index-pure" ~count:200
      QCheck.(pair int64 (int_bound 1000))
      (fun (seed, i) ->
        let t = Drbg.create seed in
        let before = Drbg.save t in
        let a = Drbg.uint64 (Drbg.substream t i) in
        let not_advanced = Drbg.save t = before in
        (* deriving other streams first changes nothing *)
        let t2 = Drbg.create seed in
        List.iter (fun j -> ignore (Drbg.substream t2 j)) [ 0; 1; 2; i + 7 ];
        let b = Drbg.uint64 (Drbg.substream t2 i) in
        not_advanced && a = b);
    QCheck.Test.make ~name:"distinct indexes give distinct streams" ~count:200
      QCheck.(triple int64 (int_bound 1000) (int_bound 1000))
      (fun (seed, i, j) ->
        QCheck.assume (i <> j);
        let t = Drbg.create seed in
        Drbg.uint64 (Drbg.substream t i) <> Drbg.uint64 (Drbg.substream t j))
  ]

(* --- satellite: a delta in one trust domain cannot dirty another ------------ *)

(* random two-domain fleets: tenants [a] and [b], channels strictly
   intra-domain, protection domains unique. Deltas stay inside domain
   [a] and preserve the component count (L021 legitimately reads the
   fleet size, so Add/Remove may change every tenant's verdict). *)

let mk_comp dom i ~size ~net ~vuln ~conns =
  let name = Printf.sprintf "%s%d" dom i in
  Manifest.v ~name ~provides:[ "svc" ]
    ~connects_to:
      (List.map
         (fun (j, vetted) ->
           Manifest.conn ~vetted (Printf.sprintf "%s%d" dom j) "svc")
         conns)
    ~trust_domain:[ String.uppercase_ascii dom ]
    ~size_loc:size ~network_facing:net ~vulnerable:vuln ()

let gen_domain dom n =
  QCheck.Gen.(
    let* specs =
      flatten_l
        (List.init n (fun i ->
             let* size = int_range 100 9000 in
             let* net = bool in
             let* vuln = bool in
             (* acyclic: only forward edges i -> j, j > i *)
             let* conns =
               if i >= n - 1 then return []
               else
                 let* fanout = int_range 0 (min 2 (n - 1 - i)) in
                 flatten_l
                   (List.init fanout (fun k ->
                        let* vetted = bool in
                        return (i + 1 + k, vetted)))
             in
             return (i, size, net, vuln, conns)))
    in
    return
      (List.map
         (fun (i, size, net, vuln, conns) ->
           mk_comp dom i ~size ~net ~vuln ~conns)
         specs))

let gen_fleet =
  QCheck.Gen.(
    let* na = int_range 2 5 in
    let* nb = int_range 2 5 in
    let* a = gen_domain "a" na in
    let* b = gen_domain "b" nb in
    return (a @ b, na))

(* a count-preserving delta inside domain [a] *)
let gen_delta na fleet =
  QCheck.Gen.(
    let* i = int_range 0 (na - 1) in
    let name = Printf.sprintf "a%d" i in
    let m = List.find (fun m -> m.Manifest.name = name) fleet in
    let* pick = int_range 0 2 in
    match pick with
    | 0 ->
      let* size = int_range 100 9000 in
      return (Delta.Add { m with Manifest.size_loc = size })
    | 1 ->
      if na < 2 then return (Delta.Add m)
      else
        let* j = int_range 0 (na - 1) in
        let* vetted = bool in
        if j = i then return (Delta.Add m)
        else
          return
            (Delta.Connect
               { caller = name;
                 conn =
                   Manifest.conn ~vetted (Printf.sprintf "a%d" j) "svc" })
    | _ ->
      (match m.Manifest.connects_to with
       | [] -> return (Delta.Add m)
       | c :: _ ->
         return
           (Delta.Disconnect
              { caller = name;
                target = c.Manifest.target;
                service = c.Manifest.service }))
  )

let domain_isolation_prop =
  QCheck.Test.make ~name:"a delta inside domain A never dirties domain B's slice"
    ~count:60
    (QCheck.make
       ~print:(fun (fleet, _, _) ->
         String.concat "\n"
           (List.map (fun m -> Format.asprintf "%a" Manifest.pp m) fleet))
       QCheck.Gen.(
         let* fleet, na = gen_fleet in
         let* deltas =
           flatten_l (List.init 5 (fun _ -> gen_delta na fleet))
         in
         return (fleet, na, deltas)))
    (fun (fleet, _, deltas) ->
      let st = ref (Check.create fleet) in
      let before = Check.domain_slice !st "B" in
      List.for_all
        (fun d ->
          let st', _ = Check.apply d !st in
          st := st';
          (* incrementally sound against batch… *)
          Check.divergence !st = None
          (* …and domain B's verdict slice is byte-identical *)
          && Check.domain_slice !st "B" = before)
        deltas)

(* --- per-domain verdicts over the materialised fleet ------------------------ *)

let test_fleet_manifests_verdicts () =
  let cfg = { small with sc_tenants = 4; sc_shards = 2 } in
  match Sc.fleet_manifests cfg with
  | Error e -> Alcotest.fail e
  | Ok ms ->
    Alcotest.(check bool) "fleet is tenants x scenario" true
      (List.length ms mod 4 = 0 && ms <> []);
    List.iter
      (fun m ->
        Alcotest.(check bool)
          (m.Manifest.name ^ " carries a nested trust domain")
          true
          (List.length m.Manifest.trust_domain = 2))
      ms;
    (* no channel crosses a tenant boundary, so the cross-tenant
       witnesses are empty and every per-domain verdict stands alone *)
    let flow = Flow.analyze ms in
    let cont = Contain.analyze ms in
    Alcotest.(check int) "no cross-tenant taint" 0
      (List.length (Flow.cross_tenant_hits ms flow));
    Alcotest.(check int) "no cross-tenant leak" 0
      (List.length (Flow.cross_tenant_leaks ms flow));
    Alcotest.(check int) "no cross-tenant radius" 0
      (List.length (Contain.cross_tenant_radius ms cont));
    let diags = Lint.run ms in
    let verdicts = Lint.render_domain_verdicts ms diags in
    Alcotest.(check bool) "per-domain lint lines" true
      (contains ~needle:"tenant shard-0:" verdicts
      && contains ~needle:"tenant shard-1:" verdicts)

let test_cross_tenant_rules () =
  (* an unvetted channel across disjoint trust domains (L025), and a
     protection domain spanning tenants (L026) *)
  let a =
    Manifest.v ~name:"a" ~trust_domain:[ "ta" ] ~domain:"shared"
      ~connects_to:[ Manifest.conn "b" "svc" ] ()
  in
  let b =
    Manifest.v ~name:"b" ~provides:[ "svc" ] ~trust_domain:[ "tb" ]
      ~domain:"shared" ()
  in
  let diags = Lint.run [ a; b ] in
  let has id =
    List.exists (fun d -> d.Diagnostic.rule_id = id) diags
  in
  Alcotest.(check bool) "L025 fires" true (has "L025-cross-tenant-channel");
  Alcotest.(check bool) "L026 fires" true
    (has "L026-protection-domain-spans-tenants");
  (* same fleet under one trust domain: neither rule fires *)
  let diags' =
    Lint.run
      [ { a with Manifest.trust_domain = [ "ta" ] };
        { b with Manifest.trust_domain = [ "ta"; "inner" ] } ]
  in
  let has' id = List.exists (fun d -> d.Diagnostic.rule_id = id) diags' in
  Alcotest.(check bool) "nested domains are not disjoint" false
    (has' "L025-cross-tenant-channel" || has' "L026-protection-domain-spans-tenants")

(* --- nested domain stanzas round-trip --------------------------------------- *)

let test_nested_domain_roundtrip () =
  let text =
    "domain shard-0\n  domain tenant-0\n\n  component web\n    network-facing\n\
    \    connects api.svc\n  end\n  end\nend\n\ndomain shard-1\n\n\
     component api\n  provides svc\n"
  in
  match Manifest_file.parse text with
  | Error e -> Alcotest.fail e
  | Ok ms ->
    let web = List.find (fun m -> m.Manifest.name = "web") ms in
    let api = List.find (fun m -> m.Manifest.name = "api") ms in
    Alcotest.(check (list string)) "nested path" [ "shard-0"; "tenant-0" ]
      web.Manifest.trust_domain;
    Alcotest.(check (list string)) "eof auto-closes" [ "shard-1" ]
      api.Manifest.trust_domain;
    (* print → parse is the identity *)
    (match Manifest_file.parse (Manifest_file.to_text ms) with
     | Error e -> Alcotest.fail e
     | Ok ms' -> Alcotest.(check bool) "round-trips" true (ms = ms'))

let suite =
  [ ("scale: determinism", `Quick, test_determinism);
    ("scale: tenant traffic is pool-size independent", `Quick, test_tenant_prefix);
    ("scale: shard kill stays in its domain set", `Quick, test_shard_kill_contained);
    ("scale: gateway admission throttles", `Quick, test_admission_throttle);
    ("fleet: shard kill plan + domain audit", `Slow, test_fleet_shard_kill_audit);
    ("load: crashed dependency is a typed fault", `Quick, test_dependency_crash_mid_run);
    ("scale: fleet manifests + per-domain verdicts", `Quick, test_fleet_manifests_verdicts);
    ("lint: cross-tenant rules L025/L026", `Quick, test_cross_tenant_rules);
    ("manifest: nested domain stanzas round-trip", `Quick, test_nested_domain_roundtrip) ]
  @ List.map QCheck_alcotest.to_alcotest substream_props
  @ [ QCheck_alcotest.to_alcotest domain_isolation_prop ]
