let () =
  Alcotest.run "lateral"
    [ ("crypto", Test_crypto.suite);
      ("hw", Test_hw.suite);
      ("kernel", Test_kernel.suite);
      ("tpm", Test_tpm.suite);
      ("trustzone", Test_trustzone.suite);
      ("sgx", Test_sgx.suite);
      ("sep", Test_sep.suite);
      ("net", Test_net.suite);
      ("storage", Test_storage.suite);
      ("vpfs", Test_vpfs.suite);
      ("core", Test_core.suite);
      ("analysis", Test_analysis.suite);
      ("scenarios", Test_scenarios.suite);
      ("cheri", Test_cheri.suite);
      ("ftpm", Test_ftpm.suite);
      ("legacy_os", Test_legacy_os.suite);
      ("properties", Test_properties.suite);
      ("verifier", Test_verifier.suite);
      ("noc", Test_noc.suite);
      ("crash", Test_crash.suite);
      ("deploy", Test_deploy.suite);
      ("manifest_file", Test_manifest_file.suite);
      ("lint", Test_lint.suite);
      ("flow", Test_flow.suite);
      ("ra_channel", Test_ra_channel.suite);
      ("cloud", Test_cloud.suite);
      ("obs", Test_obs.suite);
      ("resil", Test_resil.suite);
      ("vpfs_crash", Test_vpfs_crash.suite);
      ("fuzz", Test_fuzz.suite);
      ("check", Test_check.suite);
      ("contain", Test_contain.suite);
      ("cli", Test_cli.suite);
      ("world", Test_world.suite);
      ("fleet", Test_fleet.suite);
      ("scale", Test_scale.suite) ]
