(* Network: adversary model, TLS-like channel, gateway policies. *)

open Lt_crypto
module Net = Lt_net.Net
module Sc = Lt_net.Secure_channel
module Gateway = Lt_net.Gateway

(* every registration in here is on a fresh address; fail the test
   loudly if that ever stops being true *)
let reg net addr = Result.get_ok (Net.register net addr)

let test_basic_delivery () =
  let net = Net.create () in
  reg net "a";
  reg net "b";
  Net.send net ~src:"a" ~dst:"b" "hi";
  (match Net.recv net "b" with
   | Some p ->
     Alcotest.(check string) "payload" "hi" p.Net.payload;
     Alcotest.(check string) "src" "a" p.Net.src
   | None -> Alcotest.fail "no delivery");
  Alcotest.(check (option Alcotest.reject)) "queue drained" None
    (Option.map (fun _ -> ()) (Net.recv net "b"))

let test_unknown_destination_dropped () =
  let net = Net.create () in
  reg net "a";
  Net.send net ~src:"a" ~dst:"ghost" "x";
  Alcotest.(check int) "dropped" 1 (Net.dropped_count net);
  Alcotest.(check int) "unroutable" 1 (Net.unroutable_count net)

let test_unroutable_vs_adversary_loss () =
  (* partition audits must be able to tell routing loss from adversary
     loss: an adversary Drop is dropped but not unroutable, while an
     unregistered destination counts as both *)
  let net = Net.create () in
  reg net "a";
  reg net "b";
  Net.set_adversary net (fun p -> if p.Net.payload = "cut" then Net.Drop else Net.Deliver);
  Net.send net ~src:"a" ~dst:"b" "cut";
  Alcotest.(check int) "adversary drop counted" 1 (Net.dropped_count net);
  Alcotest.(check int) "adversary drop not unroutable" 0 (Net.unroutable_count net);
  Net.send net ~src:"a" ~dst:"ghost" "hello";
  Net.inject net { Net.src = "x"; dst = "ghost"; payload = "forged" };
  Alcotest.(check int) "both losses dropped" 3 (Net.dropped_count net);
  Alcotest.(check int) "send + inject to ghost unroutable" 2 (Net.unroutable_count net);
  (* snapshot round-trips the counter *)
  let undo = Net.take_snapshot net in
  Net.send net ~src:"a" ~dst:"ghost2" "more";
  Alcotest.(check int) "post-snapshot loss counted" 3 (Net.unroutable_count net);
  undo ();
  Alcotest.(check int) "snapshot restores unroutable" 2 (Net.unroutable_count net)

let test_adversary_tamper_drop () =
  let net = Net.create () in
  reg net "a";
  reg net "b";
  Net.set_adversary net (fun p ->
      if p.Net.payload = "secret" then Net.Tamper "corrupted"
      else if p.Net.payload = "kill" then Net.Drop
      else Net.Deliver);
  Net.send net ~src:"a" ~dst:"b" "secret";
  Net.send net ~src:"a" ~dst:"b" "kill";
  Net.send net ~src:"a" ~dst:"b" "fine";
  Alcotest.(check (list string)) "what b sees" [ "corrupted"; "fine" ]
    (List.filter_map (fun _ -> Option.map (fun p -> p.Net.payload) (Net.recv net "b"))
       [ (); (); () ])

let test_eavesdropping_log () =
  let net = Net.create () in
  reg net "a";
  reg net "b";
  Net.send net ~src:"a" ~dst:"b" "plaintext-password";
  Alcotest.(check bool) "passive attacker reads everything" true
    (List.exists (fun p -> p.Net.payload = "plaintext-password") (Net.observed net))

let test_injection () =
  let net = Net.create () in
  reg net "b";
  Net.inject net { Net.src = "forged-sender"; dst = "b"; payload = "spoof" };
  match Net.recv net "b" with
  | Some p -> Alcotest.(check string) "spoofed source accepted by raw net" "forged-sender" p.Net.src
  | None -> Alcotest.fail "injection failed"

(* --- secure channel ------------------------------------------------------- *)

let handshake_setup ?expected_subject ?(subject = "mail.example.org") () =
  let rng = Drbg.create 4242L in
  let ca = Rsa.generate ~bits:512 rng in
  let server_key = Rsa.generate ~bits:512 rng in
  let cert = Cert.issue ~ca_name:"root-ca" ~ca_key:ca ~subject server_key.Rsa.pub in
  let net = Net.create () in
  reg net "client";
  reg net "server";
  let client = Sc.Client.create rng ~trusted_ca:ca.Rsa.pub ?expected_subject () in
  let server = Sc.Server.create rng ~key:server_key ~cert in
  (net, rng, ca, client, server)

let test_handshake_and_records () =
  let net, _, _, client, server = handshake_setup () in
  match Sc.connect net ~client ~client_addr:"client" ~server ~server_addr:"server" with
  | Error e -> Alcotest.fail e
  | Ok (cs, ss) ->
    (* client -> server record *)
    let r = Sc.send cs "GET INBOX" in
    Alcotest.(check bool) "record is not plaintext" true
      (not (String.length r >= 9 && String.sub r (String.length r - 9) 9 = "GET INBOX"));
    (match Sc.receive ss r with
     | Ok m -> Alcotest.(check string) "server decrypts" "GET INBOX" m
     | Error e -> Alcotest.fail e);
    (* server -> client record *)
    let r2 = Sc.send ss "1 unread" in
    (match Sc.receive cs r2 with
     | Ok m -> Alcotest.(check string) "client decrypts" "1 unread" m
     | Error e -> Alcotest.fail e)

let test_channel_confidential_on_wire () =
  let net, _, _, client, server = handshake_setup () in
  match Sc.connect net ~client ~client_addr:"client" ~server ~server_addr:"server" with
  | Error e -> Alcotest.fail e
  | Ok (cs, ss) ->
    Net.send net ~src:"client" ~dst:"server" (Sc.send cs "password=hunter2");
    (match Net.recv net "server" with
     | Some p ->
       (match Sc.receive ss p.Net.payload with
        | Ok m -> Alcotest.(check string) "delivered" "password=hunter2" m
        | Error e -> Alcotest.fail e)
     | None -> Alcotest.fail "lost");
    (* eavesdropper sees no plaintext anywhere *)
    let contains hay needle =
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "no plaintext on the wire" false
      (List.exists (fun p -> contains p.Net.payload "hunter2") (Net.observed net))

let test_record_tamper_detected () =
  let net, _, _, client, server = handshake_setup () in
  match Sc.connect net ~client ~client_addr:"client" ~server ~server_addr:"server" with
  | Error e -> Alcotest.fail e
  | Ok (cs, ss) ->
    let r = Sc.send cs "transfer 10 EUR" in
    let tampered =
      let b = Bytes.of_string r in
      let i = Bytes.length b - 1 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
      Bytes.to_string b
    in
    (match Sc.receive ss tampered with
     | Error _ -> ()
     | Ok _ -> Alcotest.fail "tampered record accepted!")

let test_record_replay_detected () =
  let net, _, _, client, server = handshake_setup () in
  match Sc.connect net ~client ~client_addr:"client" ~server ~server_addr:"server" with
  | Error e -> Alcotest.fail e
  | Ok (cs, ss) ->
    let r = Sc.send cs "pay 5" in
    (match Sc.receive ss r with Ok _ -> () | Error e -> Alcotest.fail e);
    (match Sc.receive ss r with
     | Error _ -> ()
     | Ok _ -> Alcotest.fail "replayed record accepted!")

let test_mitm_cert_rejected () =
  (* adversary swaps in a self-signed certificate for their own key *)
  let net, rng, _, client, server = handshake_setup () in
  let mallory_key = Rsa.generate ~bits:512 rng in
  let mallory_cert = Cert.self_signed ~name:"mail.example.org" mallory_key in
  Net.set_adversary net (fun p ->
      match Wire.untag p.Net.payload with
      | Some ("server-hello", [ nonce_s; _ ]) ->
        Net.Tamper (Wire.tagged "server-hello" [ nonce_s; Cert.to_string mallory_cert ])
      | _ -> Net.Deliver);
  match Sc.connect net ~client ~client_addr:"client" ~server ~server_addr:"server" with
  | Error e ->
    Alcotest.(check bool) "client detected the MITM" true
      (String.length e > 0)
  | Ok _ -> Alcotest.fail "MITM succeeded!"

let test_subject_pinning () =
  (* a valid CA-signed cert for the wrong host is rejected when pinning *)
  let net, _, _, client, server =
    handshake_setup ~subject:"evil.example.org" ~expected_subject:"mail.example.org" ()
  in
  match Sc.connect net ~client ~client_addr:"client" ~server ~server_addr:"server" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong subject accepted"

let test_handshake_packet_loss () =
  let net, _, _, client, server = handshake_setup () in
  Net.set_adversary net (fun _ -> Net.Drop);
  match Sc.connect net ~client ~client_addr:"client" ~server ~server_addr:"server" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "handshake can't succeed with all packets dropped"

(* --- gateway --------------------------------------------------------------- *)

let test_handshake_out_of_order () =
  (* a key-exchange before any hello must fail and poison the server *)
  let _, rng, _, _, server = handshake_setup () in
  ignore rng;
  (match Sc.Server.handle server (Wire.tagged "key-exchange" [ "x"; "y" ]) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "out-of-order message accepted");
  (* the state machine stays failed even for a valid hello *)
  (match Sc.Server.handle server (Wire.tagged "hello" [ "nonce" ]) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "failed handshake resumed")

let test_handshake_garbage_messages () =
  let _, _, _, client, server = handshake_setup () in
  ignore (Sc.Client.start client);
  (match Sc.Server.handle server "complete garbage" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "garbage accepted by server");
  (match Sc.Client.handle client (Wire.tagged "finished" [ "early" ]) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "early finished accepted by client")

let test_double_hello_rejected () =
  let _, _, _, _, server = handshake_setup () in
  (match Sc.Server.handle server (Wire.tagged "hello" [ "n1" ]) with
   | Ok (Some _) -> ()
   | _ -> Alcotest.fail "first hello should be answered");
  match Sc.Server.handle server (Wire.tagged "hello" [ "n2" ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "second hello accepted"

let test_tampered_key_exchange_detected () =
  (* flip bits in the client's key-exchange flight: the server must not
     end up with a mismatched session *)
  let net, _, _, client, server = handshake_setup () in
  Net.set_adversary net (fun p ->
      match Wire.untag p.Net.payload with
      | Some ("key-exchange", [ ct; fin ]) ->
        let b = Bytes.of_string ct in
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
        Net.Tamper (Wire.tagged "key-exchange" [ Bytes.to_string b; fin ])
      | _ -> Net.Deliver)
  (* either the server's RSA decrypt or the finished check must fail *);
  match Sc.connect net ~client ~client_addr:"client" ~server ~server_addr:"server" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered key exchange produced a session"

let test_exporter_unique_per_channel () =
  let rng = Drbg.create 4343L in
  let ca = Rsa.generate ~bits:512 rng in
  let server_key = Rsa.generate ~bits:512 rng in
  let cert = Cert.issue ~ca_name:"root-ca" ~ca_key:ca ~subject:"s" server_key.Rsa.pub in
  let mk () =
    let net = Net.create () in
    reg net "c";
    reg net "s";
    let client = Sc.Client.create rng ~trusted_ca:ca.Rsa.pub () in
    let server = Sc.Server.create rng ~key:server_key ~cert in
    match Sc.connect net ~client ~client_addr:"c" ~server ~server_addr:"s" with
    | Ok (cs, ss) -> (cs, ss)
    | Error e -> Alcotest.fail e
  in
  let cs1, ss1 = mk () in
  let cs2, _ = mk () in
  Alcotest.(check bool) "peers agree" true (Sc.exporter cs1 = Sc.exporter ss1);
  Alcotest.(check bool) "channels differ" true (Sc.exporter cs1 <> Sc.exporter cs2)

let test_gateway_whitelist () =
  let net = Net.create () in
  reg net "utility.example.org";
  reg net "victim.example.org";
  let gw =
    Gateway.create ~whitelist:[ "utility.example.org" ] ~tokens_per_tick:1.0
      ~burst:10.0
  in
  Alcotest.(check bool) "whitelisted passes" true
    (Gateway.submit gw net ~now:0 ~src:"meter" ~dst:"utility.example.org" "reading"
     = Gateway.Forwarded);
  Alcotest.(check bool) "ddos target blocked" true
    (Gateway.submit gw net ~now:0 ~src:"meter" ~dst:"victim.example.org" "flood"
     = Gateway.Blocked_destination);
  Alcotest.(check int) "victim got nothing" 0 (Net.pending net "victim.example.org");
  Alcotest.(check int) "utility got the reading" 1
    (Net.pending net "utility.example.org")

let test_gateway_rate_limit () =
  let net = Net.create () in
  reg net "ok.org";
  let gw = Gateway.create ~whitelist:[ "ok.org" ] ~tokens_per_tick:0.1 ~burst:5.0 in
  let sent = ref 0 in
  for _ = 1 to 100 do
    if Gateway.submit gw net ~now:0 ~src:"m" ~dst:"ok.org" "x" = Gateway.Forwarded then
      incr sent
  done;
  Alcotest.(check int) "burst capped" 5 !sent;
  (* tokens refill over time *)
  Alcotest.(check bool) "refilled after 10 ticks" true
    (Gateway.submit gw net ~now:10 ~src:"m" ~dst:"ok.org" "x" = Gateway.Forwarded);
  let s = Gateway.stats gw in
  Alcotest.(check int) "forwarded counted" 6 s.Gateway.forwarded;
  Alcotest.(check int) "rate-limited counted" 95 s.Gateway.rate_limited

let test_gateway_fractional_rate () =
  let net = Net.create () in
  reg net "ok.org";
  (* 0.4 tokens/tick: exact accrual means 5 ticks buy exactly 2 packets,
     and the fraction is never lost to rounding across refills *)
  let gw = Gateway.create ~whitelist:[ "ok.org" ] ~tokens_per_tick:0.4 ~burst:10.0 in
  (* drain the initial burst *)
  while Gateway.submit gw net ~now:0 ~src:"m" ~dst:"ok.org" "x" = Gateway.Forwarded do
    ()
  done;
  let sent_by tick =
    let n = ref 0 in
    for now = 1 to tick do
      while Gateway.submit gw net ~now ~src:"m" ~dst:"ok.org" "x" = Gateway.Forwarded do
        incr n
      done
    done;
    !n
  in
  Alcotest.(check int) "0.4/tick over 10 ticks = 4 packets" 4 (sent_by 10);
  Alcotest.(check bool) "leftover fraction below one token"
    true (Gateway.tokens gw < 1.0)

let test_gateway_burst_clamp () =
  let net = Net.create () in
  reg net "ok.org";
  let gw = Gateway.create ~whitelist:[ "ok.org" ] ~tokens_per_tick:100.0 ~burst:3.0 in
  (* an arbitrarily long idle period must not bank more than burst *)
  ignore (Gateway.submit gw net ~now:1_000_000 ~src:"m" ~dst:"ok.org" "x");
  Alcotest.(check bool) "bucket clamped to burst" true (Gateway.tokens gw <= 3.0);
  let sent = ref 0 in
  for _ = 1 to 50 do
    if Gateway.submit gw net ~now:1_000_000 ~src:"m" ~dst:"ok.org" "x" = Gateway.Forwarded
    then incr sent
  done;
  Alcotest.(check int) "only burst-1 more after the first" 2 !sent

let test_gateway_backwards_clock () =
  let net = Net.create () in
  reg net "ok.org";
  let gw = Gateway.create ~whitelist:[ "ok.org" ] ~tokens_per_tick:1.0 ~burst:5.0 in
  (* drain at the latest time the hostile clock will ever report *)
  let drained = ref 0 in
  while Gateway.submit gw net ~now:100 ~src:"m" ~dst:"ok.org" "x" = Gateway.Forwarded do
    incr drained
  done;
  Alcotest.(check int) "burst drained" 5 !drained;
  (* an oscillating clock (100 -> 0 -> 100 -> ...) must never mint
     tokens: refill only happens when now exceeds the high-water mark *)
  let minted = ref 0 in
  for _ = 1 to 20 do
    if Gateway.submit gw net ~now:0 ~src:"m" ~dst:"ok.org" "x" = Gateway.Forwarded then
      incr minted;
    if Gateway.submit gw net ~now:100 ~src:"m" ~dst:"ok.org" "x" = Gateway.Forwarded then
      incr minted
  done;
  Alcotest.(check int) "oscillating clock mints nothing" 0 !minted;
  Alcotest.(check bool) "tokens stayed non-negative" true (Gateway.tokens gw >= 0.0);
  (* genuine progress past the high-water mark refills normally *)
  Alcotest.(check bool) "real progress refills" true
    (Gateway.submit gw net ~now:101 ~src:"m" ~dst:"ok.org" "x" = Gateway.Forwarded)

let test_gateway_rejects_bad_rates () =
  let rejects ~tokens_per_tick ~burst =
    match Gateway.create ~whitelist:[] ~tokens_per_tick ~burst with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "NaN rate rejected" true
    (rejects ~tokens_per_tick:Float.nan ~burst:5.0);
  Alcotest.(check bool) "NaN burst rejected" true
    (rejects ~tokens_per_tick:1.0 ~burst:Float.nan);
  Alcotest.(check bool) "negative rate rejected" true
    (rejects ~tokens_per_tick:(-1.0) ~burst:5.0);
  Alcotest.(check bool) "negative burst rejected" true
    (rejects ~tokens_per_tick:1.0 ~burst:(-0.5));
  Alcotest.(check bool) "zero rate is a valid (never-refilling) policy" false
    (rejects ~tokens_per_tick:0.0 ~burst:5.0)

(* tenant/shard churn: place → destroy → re-place on the same address
   is clean, and a duplicate is a typed refusal, never an exception *)
let test_register_churn () =
  let net = Net.create () in
  Alcotest.(check bool) "place" true (Net.register net "t1/web" = Ok ());
  Alcotest.(check bool) "duplicate is a typed error" true
    (Net.register net "t1/web" = Error `Duplicate_addr);
  Net.send net ~src:"t1/web" ~dst:"t1/web" "pending";
  Net.unregister net "t1/web";
  Alcotest.(check bool) "re-place after destroy" true
    (Net.register net "t1/web" = Ok ());
  Alcotest.(check (option string)) "destroy dropped the old mailbox" None
    (Option.map (fun p -> p.Net.payload) (Net.recv net "t1/web"))

let suite =
  [ Alcotest.test_case "basic delivery" `Quick test_basic_delivery;
    Alcotest.test_case "unknown destination dropped" `Quick test_unknown_destination_dropped;
    Alcotest.test_case "unroutable vs adversary loss" `Quick
      test_unroutable_vs_adversary_loss;
    Alcotest.test_case "adversary tamper & drop" `Quick test_adversary_tamper_drop;
    Alcotest.test_case "eavesdropping transcript" `Quick test_eavesdropping_log;
    Alcotest.test_case "packet injection" `Quick test_injection;
    Alcotest.test_case "handshake establishes & records flow" `Quick
      test_handshake_and_records;
    Alcotest.test_case "wire confidentiality" `Quick test_channel_confidential_on_wire;
    Alcotest.test_case "record tampering detected" `Quick test_record_tamper_detected;
    Alcotest.test_case "record replay detected" `Quick test_record_replay_detected;
    Alcotest.test_case "MITM certificate rejected" `Quick test_mitm_cert_rejected;
    Alcotest.test_case "certificate pinning" `Quick test_subject_pinning;
    Alcotest.test_case "handshake survives no packets = fails cleanly" `Quick
      test_handshake_packet_loss;
    Alcotest.test_case "out-of-order handshake poisons the session" `Quick
      test_handshake_out_of_order;
    Alcotest.test_case "garbage handshake messages rejected" `Quick
      test_handshake_garbage_messages;
    Alcotest.test_case "double hello rejected" `Quick test_double_hello_rejected;
    Alcotest.test_case "tampered key exchange detected" `Quick
      test_tampered_key_exchange_detected;
    Alcotest.test_case "exporter unique per channel" `Quick
      test_exporter_unique_per_channel;
    Alcotest.test_case "gateway whitelist blocks DDoS" `Quick test_gateway_whitelist;
    Alcotest.test_case "gateway token-bucket rate limit" `Quick test_gateway_rate_limit;
    Alcotest.test_case "gateway fractional refill is exact" `Quick
      test_gateway_fractional_rate;
    Alcotest.test_case "gateway idle time clamps to burst" `Quick
      test_gateway_burst_clamp;
    Alcotest.test_case "gateway backwards clock mints nothing" `Quick
      test_gateway_backwards_clock;
    Alcotest.test_case "gateway rejects NaN and negative policy" `Quick
      test_gateway_rejects_bad_rates;
    Alcotest.test_case "register churn: place, destroy, re-place" `Quick
      test_register_churn ]
