(* Manifests, communication control, trust-graph analysis, secure GUI. *)

open Lateral

(* a small mail client in both shapes (Figure 1) *)
let mail_components ~vertical =
  let domain name = if vertical then "mailapp" else name in
  [ Manifest.v ~name:"imap" ~provides:[ "fetch"; "send" ]
      ~connects_to:[ Manifest.conn "tls" "transmit" ]
      ~domain:(domain "imap") ~size_loc:8000 ~network_facing:true ~vulnerable:true ();
    Manifest.v ~name:"tls" ~provides:[ "transmit" ] ~domain:(domain "tls")
      ~size_loc:3000 ();
    Manifest.v ~name:"renderer" ~provides:[ "render" ] ~domain:(domain "renderer")
      ~size_loc:20000 ~network_facing:true ~vulnerable:true ();
    Manifest.v ~name:"composer" ~provides:[ "compose" ]
      ~connects_to:
        [ Manifest.conn "imap" "send"; Manifest.conn "input" "suggest" ]
      ~domain:(domain "composer") ~size_loc:5000 ();
    Manifest.v ~name:"input" ~provides:[ "suggest" ] ~domain:(domain "input")
      ~size_loc:4000 ();
    Manifest.v ~name:"storage" ~provides:[ "load"; "store" ]
      ~connects_to:[ Manifest.conn ~vetted:true "legacyfs" "io" ]
      ~domain:(domain "storage") ~size_loc:2000 ();
    Manifest.v ~name:"legacyfs" ~provides:[ "io" ] ~domain:(domain "legacyfs")
      ~size_loc:30000 ~vulnerable:true ();
    Manifest.v ~name:"ui" ~provides:[ "show" ]
      ~connects_to:
        [ Manifest.conn "imap" "fetch"; Manifest.conn "renderer" "render";
          Manifest.conn "storage" "load"; Manifest.conn "composer" "compose" ]
      ~domain:(domain "ui") ~size_loc:6000 () ]

let build_app ~vertical =
  let app = App.create () in
  List.iter (App.add_stub app) (mail_components ~vertical);
  app

let test_validate () =
  let app = build_app ~vertical:false in
  Alcotest.(check bool) "manifests consistent" true (App.validate app = Ok ());
  let broken = App.create () in
  App.add_stub broken
    (Manifest.v ~name:"x" ~connects_to:[ Manifest.conn "ghost" "svc" ] ());
  (match App.validate broken with
   | Error [ msg ] ->
     Alcotest.(check bool) "dangling reported" true
       (String.length msg > 0)
   | _ -> Alcotest.fail "expected one dangling connection")

let test_communication_control () =
  let app = build_app ~vertical:false in
  (* declared channel passes *)
  (match App.call app ~caller:(Some "ui") ~target:"renderer" ~service:"render" "msg" with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  (* undeclared channel blocked, even though both components exist *)
  (match App.call app ~caller:(Some "renderer") ~target:"tls" ~service:"transmit" "x" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "undeclared channel allowed!");
  Alcotest.(check int) "violation recorded" 1 (List.length (App.violations app));
  (* external input reaches only network-facing components *)
  (match App.call app ~caller:None ~target:"imap" ~service:"fetch" "x" with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  (match App.call app ~caller:None ~target:"tls" ~service:"transmit" "x" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "external input reached an internal component")

let test_compromised_component_contained () =
  let app = build_app ~vertical:false in
  App.compromise app "renderer";
  (* drive the compromised component once *)
  ignore (App.call app ~caller:(Some "ui") ~target:"renderer" ~service:"render" "evil");
  let attempts = App.exfiltration_attempts app "renderer" in
  Alcotest.(check bool) "attacker swept every service" true (List.length attempts > 5);
  let allowed = List.filter (fun (_, _, ok) -> ok) attempts in
  (* the renderer declares no outbound channels: nothing is reachable *)
  Alcotest.(check int) "renderer exfiltrated nothing" 0 (List.length allowed)

let test_reach_vertical_vs_horizontal () =
  let vertical = build_app ~vertical:true in
  let horizontal = build_app ~vertical:false in
  let rv = Analysis.compromise_reach vertical "renderer" in
  let rh = Analysis.compromise_reach horizontal "renderer" in
  Alcotest.(check int) "vertical: everything owned" 8 (List.length rv.Analysis.owned);
  Alcotest.(check (float 0.01)) "vertical fraction 1.0" 1.0 rv.Analysis.owned_fraction;
  Alcotest.(check int) "horizontal: only the renderer owned" 1
    (List.length rh.Analysis.owned);
  Alcotest.(check bool) "horizontal fraction small" true
    (rh.Analysis.owned_fraction < 0.2)

let test_reach_propagates_through_vulnerable () =
  let app = build_app ~vertical:false in
  (* ui connects to vulnerable imap: owning ui owns imap too, and from
     imap the declared tls channel becomes usable authority *)
  let r = Analysis.compromise_reach app "ui" in
  Alcotest.(check bool) "imap owned via vulnerability" true
    (List.mem "imap" r.Analysis.owned);
  Alcotest.(check bool) "tls invocable but not owned" true
    (List.mem ("tls", "transmit") r.Analysis.invocable
     && not (List.mem "tls" r.Analysis.owned))

let test_tcb_accounting () =
  let app = build_app ~vertical:false in
  let tcb_of_substrate _ = 10_000 in
  (* tls: self + substrate only (no outbound connections) *)
  Alcotest.(check int) "tls tcb" (3000 + 10_000)
    (Analysis.tcb app ~tcb_of_substrate "tls");
  (* storage uses the 30k legacy fs but with a vetting wrapper: excluded *)
  Alcotest.(check int) "storage tcb excludes vetted dependency" (2000 + 10_000)
    (Analysis.tcb app ~tcb_of_substrate "storage");
  (* ui transitively trusts everything it calls unvetted *)
  let ui = Analysis.tcb app ~tcb_of_substrate "ui" in
  Alcotest.(check bool) "ui tcb includes called components" true (ui > 40_000)

let test_tcb_cycles () =
  let app = App.create () in
  App.add_stub app
    (Manifest.v ~name:"a" ~provides:[ "s" ] ~connects_to:[ Manifest.conn "b" "s" ]
       ~size_loc:100 ());
  App.add_stub app
    (Manifest.v ~name:"b" ~provides:[ "s" ] ~connects_to:[ Manifest.conn "a" "s" ]
       ~size_loc:200 ());
  (* shared substrate counted once, both components counted once *)
  Alcotest.(check int) "cyclic tcb terminates" (100 + 200 + 1000)
    (Analysis.tcb app ~tcb_of_substrate:(fun _ -> 1000) "a")

let test_confused_deputy_detector () =
  let app = App.create () in
  App.add_stub app
    (Manifest.v ~name:"store" ~provides:[ "get" ] ~discriminates_clients:false ());
  App.add_stub app
    (Manifest.v ~name:"alice" ~connects_to:[ Manifest.conn "store" "get" ] ());
  App.add_stub app
    (Manifest.v ~name:"bob" ~connects_to:[ Manifest.conn "store" "get" ] ());
  (match Analysis.confused_deputy_risks app with
   | [ ("store", "get", callers) ] ->
     Alcotest.(check (list string)) "both callers listed" [ "alice"; "bob" ] callers
   | other ->
     Alcotest.fail (Printf.sprintf "expected one risk, got %d" (List.length other)));
  (* a discriminating service is not flagged *)
  let app2 = App.create () in
  App.add_stub app2
    (Manifest.v ~name:"store" ~provides:[ "get" ] ~discriminates_clients:true ());
  App.add_stub app2
    (Manifest.v ~name:"alice" ~connects_to:[ Manifest.conn "store" "get" ] ());
  App.add_stub app2
    (Manifest.v ~name:"bob" ~connects_to:[ Manifest.conn "store" "get" ] ());
  Alcotest.(check int) "badge-checking deputy not flagged" 0
    (List.length (Analysis.confused_deputy_risks app2))

let test_attack_surface_and_domains () =
  let app = build_app ~vertical:false in
  Alcotest.(check bool) "imap surface includes network services" true
    (Analysis.attack_surface app "imap" > Analysis.attack_surface app "tls");
  Alcotest.(check int) "eight domains when horizontal" 8
    (List.length (Analysis.domains app));
  let vertical = build_app ~vertical:true in
  Alcotest.(check int) "one domain when vertical" 1
    (List.length (Analysis.domains vertical))

let test_paths () =
  let app = build_app ~vertical:false in
  (* the ui reaches tls through imap, directly or via the composer *)
  Alcotest.(check (list (list string))) "ui -> tls"
    [ [ "ui"; "composer"; "imap"; "tls" ]; [ "ui"; "imap"; "tls" ] ]
    (Analysis.paths app ~src:"ui" ~dst:"tls").Analysis.ps_paths;
  (* the renderer reaches nothing: no outbound channels *)
  Alcotest.(check (list (list string))) "renderer -> tls unreachable" []
    (Analysis.paths app ~src:"renderer" ~dst:"tls").Analysis.ps_paths;
  (* trivial path to self *)
  Alcotest.(check (list (list string))) "self" [ [ "tls" ] ]
    (Analysis.paths app ~src:"tls" ~dst:"tls").Analysis.ps_paths;
  (* cyclic graphs terminate *)
  let cyc = App.create () in
  App.add_stub cyc
    (Manifest.v ~name:"a" ~provides:[ "s" ] ~connects_to:[ Manifest.conn "b" "s" ] ());
  App.add_stub cyc
    (Manifest.v ~name:"b" ~provides:[ "s" ] ~connects_to:[ Manifest.conn "a" "s" ] ());
  Alcotest.(check (list (list string))) "cycle" [ [ "a"; "b" ] ]
    (Analysis.paths cyc ~src:"a" ~dst:"b").Analysis.ps_paths

let test_paths_truncation () =
  let app = build_app ~vertical:false in
  (* two ui -> tls paths exist: a cap of 2 is exhaustive, 1 is not *)
  let exact = Analysis.paths ~max_paths:2 app ~src:"ui" ~dst:"tls" in
  Alcotest.(check bool) "cap equal to path count is not truncated" false
    exact.Analysis.ps_truncated;
  Alcotest.(check int) "both paths kept" 2 (List.length exact.Analysis.ps_paths);
  let cut = Analysis.paths ~max_paths:1 app ~src:"ui" ~dst:"tls" in
  Alcotest.(check bool) "cap below path count is truncated" true
    cut.Analysis.ps_truncated;
  (* the survivor is the first path in discovery order — the DFS walks
     the ui's declared channels in manifest order, and imap comes
     before composer — not an arbitrary one *)
  Alcotest.(check (list (list string))) "first discovered path survives"
    [ [ "ui"; "imap"; "tls" ] ]
    cut.Analysis.ps_paths;
  (* an unreachable destination is exhaustive, never truncated *)
  let none = Analysis.paths ~max_paths:1 app ~src:"renderer" ~dst:"tls" in
  Alcotest.(check bool) "unreachable is not truncated" false
    none.Analysis.ps_truncated

let test_live_behaviour_chain () =
  (* real behaviours calling through ctx, subject to the same checks *)
  let app = App.create () in
  App.add app
    (Manifest.v ~name:"front" ~provides:[ "handle" ] ~network_facing:true
       ~connects_to:[ Manifest.conn "back" "query" ] ())
    (fun ctx ~service:_ req ->
      match ctx.App.call ~target:"back" ~service:"query" req with
      | Ok r -> "front(" ^ r ^ ")"
      | Error e -> "denied:" ^ e);
  App.add app
    (Manifest.v ~name:"back" ~provides:[ "query" ] ())
    (fun _ ~service:_ req -> "back:" ^ req);
  (match App.call app ~caller:None ~target:"front" ~service:"handle" "q" with
   | Ok r -> Alcotest.(check string) "chained" "front(back:q)" r
   | Error e -> Alcotest.fail e);
  (* a behaviour attempting an undeclared hop is denied inline *)
  App.add app
    (Manifest.v ~name:"rogue" ~provides:[ "go" ] ~network_facing:true ())
    (fun ctx ~service:_ _ ->
      match ctx.App.call ~target:"back" ~service:"query" "steal" with
      | Ok _ -> "got-through"
      | Error _ -> "blocked");
  (match App.call app ~caller:None ~target:"rogue" ~service:"go" "" with
   | Ok r -> Alcotest.(check string) "undeclared hop blocked" "blocked" r
   | Error e -> Alcotest.fail e)

let test_behaviour_crash_is_error () =
  let app = App.create () in
  App.add app
    (Manifest.v ~name:"fragile" ~provides:[ "boom" ] ~network_facing:true ())
    (fun _ ~service:_ _ -> failwith "segfault");
  match App.call app ~caller:None ~target:"fragile" ~service:"boom" "" with
  | Error e ->
    Alcotest.(check bool) "crash surfaced as error" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "crash swallowed"

(* --- secure GUI -------------------------------------------------------------- *)

let test_gui_trusted_indicator () =
  let g = Gui.create () in
  Gui.register_owner g ~owner:"bank" ~light:Gui.Green;
  Gui.register_owner g ~owner:"game" ~light:Gui.Red;
  Gui.open_window g ~owner:"bank" ~title:"Bank";
  Gui.open_window g ~owner:"game" ~title:"Totally Real Bank Login";
  (* phishing attempt: the game draws a fake bank UI *)
  Gui.set_content g ~owner:"game"
    [ "[GREEN] you are talking to: bank"; "Enter your banking password:" ];
  Gui.focus g ~owner:"game";
  (match Gui.indicator_line g with
   | Some line ->
     Alcotest.(check bool) "indicator names the true owner" true
       (line = "[RED] you are talking to: game")
   | None -> Alcotest.fail "no indicator");
  (* the compositor's indicator comes first on screen, above any forgery *)
  (match Gui.render g with
   | first :: _ ->
     Alcotest.(check string) "first line is the truth" "[RED] you are talking to: game"
       first
   | [] -> Alcotest.fail "empty render")

let test_gui_input_routing () =
  let g = Gui.create () in
  Gui.register_owner g ~owner:"bank" ~light:Gui.Green;
  Gui.register_owner g ~owner:"game" ~light:Gui.Red;
  Gui.open_window g ~owner:"bank" ~title:"Bank";
  Gui.open_window g ~owner:"game" ~title:"Game";
  Gui.focus g ~owner:"bank";
  Gui.type_input g "hunter2";
  Alcotest.(check (list string)) "focused owner got the keys" [ "hunter2" ]
    (Gui.received_input g ~owner:"bank");
  Alcotest.(check (list string)) "unfocused owner got nothing" []
    (Gui.received_input g ~owner:"game")

let test_gui_focus_switch_reroutes_input () =
  let g = Gui.create () in
  Gui.register_owner g ~owner:"a" ~light:Gui.Green;
  Gui.register_owner g ~owner:"b" ~light:Gui.Yellow;
  Gui.open_window g ~owner:"a" ~title:"A";
  Gui.open_window g ~owner:"b" ~title:"B";
  Gui.focus g ~owner:"a";
  Gui.type_input g "for-a";
  Gui.focus g ~owner:"b";
  Gui.type_input g "for-b";
  Alcotest.(check (list string)) "a got only its keys" [ "for-a" ]
    (Gui.received_input g ~owner:"a");
  Alcotest.(check (list string)) "b got only its keys" [ "for-b" ]
    (Gui.received_input g ~owner:"b");
  (* indicator follows focus with the registered light *)
  Alcotest.(check (option string)) "indicator shows b"
    (Some "[YELLOW] you are talking to: b")
    (Gui.indicator_line g);
  (* typing with no focus goes nowhere *)
  let g2 = Gui.create () in
  Gui.type_input g2 "void";
  Alcotest.(check (option string)) "no focus, no indicator" None
    (Gui.indicator_line g2)

let test_gui_unregistered_owner_rejected () =
  let g = Gui.create () in
  Alcotest.(check bool) "unregistered owner cannot open windows" true
    (try Gui.open_window g ~owner:"rogue" ~title:"x"; false
     with Invalid_argument _ -> true)

let suite =
  [ Alcotest.test_case "manifest validation" `Quick test_validate;
    Alcotest.test_case "communication control (POLA)" `Quick test_communication_control;
    Alcotest.test_case "compromised component contained at runtime" `Quick
      test_compromised_component_contained;
    Alcotest.test_case "reach: vertical vs horizontal (Figure 1)" `Quick
      test_reach_vertical_vs_horizontal;
    Alcotest.test_case "reach propagates through vulnerable targets" `Quick
      test_reach_propagates_through_vulnerable;
    Alcotest.test_case "tcb accounting with vetted wrappers" `Quick test_tcb_accounting;
    Alcotest.test_case "tcb handles cycles" `Quick test_tcb_cycles;
    Alcotest.test_case "confused deputy detector" `Quick test_confused_deputy_detector;
    Alcotest.test_case "attack surface & domains" `Quick test_attack_surface_and_domains;
    Alcotest.test_case "authority path enumeration" `Quick test_paths;
    Alcotest.test_case "path enumeration truncation is explicit" `Quick
      test_paths_truncation;
    Alcotest.test_case "live behaviours chained through ctx" `Quick
      test_live_behaviour_chain;
    Alcotest.test_case "behaviour crash surfaces as error" `Quick
      test_behaviour_crash_is_error;
    Alcotest.test_case "gui: unforgeable trusted indicator" `Quick
      test_gui_trusted_indicator;
    Alcotest.test_case "gui: input routed to focused owner only" `Quick
      test_gui_input_routing;
    Alcotest.test_case "gui: focus switch reroutes input" `Quick
      test_gui_focus_switch_reroutes_input;
    Alcotest.test_case "gui: unregistered owners rejected" `Quick
      test_gui_unregistered_owner_rejected ]
