(* Cloud enclave scenario: untrusted host, remote customer (§II-B). *)

open Lateral

let run_ok ?with_counter attack =
  match Scenario_cloud.run ?with_counter attack with
  | Ok o -> o
  | Error e -> Alcotest.fail e

let test_honest_host () =
  let o = run_ok Scenario_cloud.Honest_host in
  Alcotest.(check bool) "attested" true o.Scenario_cloud.attested;
  Alcotest.(check bool) "provisioned" true o.Scenario_cloud.provisioned;
  Alcotest.(check int) "all jobs done" 3 o.Scenario_cloud.jobs_completed;
  Alcotest.(check bool) "secret never visible to host" false
    o.Scenario_cloud.secret_leaked

let test_memory_probe_fails () =
  let o = run_ok Scenario_cloud.Read_enclave_memory in
  Alcotest.(check bool) "jobs still ran" true (o.Scenario_cloud.jobs_completed = 3);
  Alcotest.(check bool) "EPC encryption held" false o.Scenario_cloud.secret_leaked

let test_starvation_costs_availability_only () =
  let o = run_ok Scenario_cloud.Starve_enclave in
  Alcotest.(check int) "no progress" 0 o.Scenario_cloud.jobs_completed;
  Alcotest.(check bool) "but no leak" false o.Scenario_cloud.secret_leaked

let test_swapped_code_refused () =
  let o = run_ok Scenario_cloud.Swap_enclave_code in
  Alcotest.(check bool) "attestation failed" false o.Scenario_cloud.attested;
  Alcotest.(check bool) "secret never provisioned" false o.Scenario_cloud.provisioned;
  Alcotest.(check bool) "no leak" false o.Scenario_cloud.secret_leaked

let test_rollback_without_counter () =
  (* the nuance: sealing alone has no freshness *)
  let o = run_ok ~with_counter:false Scenario_cloud.Rollback_sealed_state in
  Alcotest.(check bool) "stale state accepted" true o.Scenario_cloud.state_regressed;
  Alcotest.(check bool) "still no confidentiality loss" false
    o.Scenario_cloud.secret_leaked

let test_rollback_with_counter () =
  let o = run_ok ~with_counter:true Scenario_cloud.Rollback_sealed_state in
  Alcotest.(check bool) "monotonic counter rejected rollback" false
    o.Scenario_cloud.state_regressed

let test_sealed_blobs_opaque () =
  (* every blob the host stores is ciphertext *)
  let o = run_ok Scenario_cloud.Honest_host in
  Alcotest.(check bool) "no plaintext in host storage" false
    o.Scenario_cloud.secret_leaked

let suite =
  [ Alcotest.test_case "honest host: compute without visibility" `Quick test_honest_host;
    Alcotest.test_case "memory probe defeated by EPC encryption" `Quick
      test_memory_probe_fails;
    Alcotest.test_case "starvation: availability only" `Quick
      test_starvation_costs_availability_only;
    Alcotest.test_case "swapped code refused at attestation" `Quick
      test_swapped_code_refused;
    Alcotest.test_case "rollback succeeds without a counter" `Quick
      test_rollback_without_counter;
    Alcotest.test_case "rollback blocked by monotonic counter" `Quick
      test_rollback_with_counter;
    Alcotest.test_case "sealed blobs opaque to the host" `Quick test_sealed_blobs_opaque ]
