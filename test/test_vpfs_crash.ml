(* Crash-consistency as a property: random write/delete schedules with a
   power cut at a random block-write boundary, recovered and audited
   against a shadow oracle of acknowledged mutations. test_crash.ml
   pins each window of the 4-write redo journal by hand; here qcheck
   sweeps schedules the hand-written cases never reach (multi-path,
   repeated paths, cuts deep into a long run, no cut at all). *)

module Block = Lt_storage.Block
module Fs = Lt_storage.Legacy_fs
module Vpfs = Lt_storage.Vpfs

let master_key = "oracle-key"

(* ------------------------------------------------------------------ *)
(* writes only: the cut position fully predicts the recovery outcome  *)
(* ------------------------------------------------------------------ *)

type schedule = { ops : (int * int) list; cut : int }
(* each op is (path index, size); the cut is a block-write budget *)

let show_schedule { ops; cut } =
  Printf.sprintf "cut=%d; %s" cut
    (String.concat "; "
       (List.map (fun (p, n) -> Printf.sprintf "write /f%d (%d bytes)" p n) ops))

let gen_schedule =
  QCheck.Gen.(
    map2
      (fun ops cut -> { ops; cut })
      (list_size (int_range 1 12) (pair (int_range 0 4) (int_range 0 40)))
      (int_range 0 50))

(* apply the schedule until the power cut; returns the oracle of
   acknowledged writes, the last trusted root, and the in-flight write
   (if the cut interrupted one) *)
let apply_writes v ops =
  let oracle = Hashtbl.create 8 in
  let trusted = ref (Vpfs.root v) in
  let in_flight = ref None in
  (try
     List.iteri
       (fun i (p, n) ->
         let path = Printf.sprintf "/f%d" p in
         (* unique contents per op, so no mutation can degenerate into
            a rewrite of identical bytes *)
         let data = Printf.sprintf "#%d:%s" i (String.make n 'x') in
         in_flight := Some (path, data);
         match Vpfs.write v path data with
         | Ok () ->
           Hashtbl.replace oracle path data;
           trusted := Vpfs.root v;
           in_flight := None
         | Error e -> Alcotest.fail (Format.asprintf "write: %a" Vpfs.pp_error e))
       ops
   with Fs.Crashed -> ());
  (oracle, !trusted, !in_flight)

let recover dev trusted =
  match Fs.mount dev with
  | Error e -> Alcotest.fail (Format.asprintf "remount: %a" Fs.pp_error e)
  | Ok fs2 ->
    (match Vpfs.open_recover ~master_key ~expected_root:trusted fs2 with
     | Ok (v2, status) -> (v2, status)
     | Error e -> Alcotest.fail (Format.asprintf "recover: %a" Vpfs.pp_error e))

(* the survivors must be exactly the oracle, plus the in-flight write
   rolled forward iff recovery replayed its journal record *)
let audit v2 status oracle in_flight =
  (match (status, in_flight) with
   | `Recovered, Some (p, d) -> Hashtbl.replace oracle p d
   | `Recovered, None -> Alcotest.fail "recovered with nothing in flight"
   | `Clean, _ -> ());
  let expect =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) oracle [])
  in
  let actual =
    List.sort compare
      (List.map
         (fun p ->
           match Vpfs.read v2 p with
           | Ok d -> (p, d)
           | Error e ->
             Alcotest.fail (Format.asprintf "read %s: %a" p Vpfs.pp_error e))
         (Vpfs.list v2))
  in
  expect = actual

let prop_cut_never_tears =
  QCheck.Test.make ~count:120
    ~name:"power cut at any block boundary: survivors = oracle, cut mod 4 picks the side"
    (QCheck.make ~print:show_schedule gen_schedule)
    (fun { ops; cut } ->
      let dev = Block.create ~blocks:4096 in
      let fs = Fs.format dev in
      let v = Vpfs.create ~master_key fs in
      Fs.crash_after_writes fs cut;
      let oracle, trusted, in_flight = apply_writes v ops in
      let v2, status = recover dev trusted in
      (* one VPFS mutation is exactly four backend writes (journal,
         data, metadata, journal-clear), so the budget predicts the
         outcome: a cut on a mutation boundary or past the schedule is
         clean, a cut inside a mutation leaves a durable journal record
         and must roll forward *)
      let expected_status =
        if cut >= 4 * List.length ops || cut mod 4 = 0 then `Clean
        else `Recovered
      in
      if status <> expected_status then
        QCheck.Test.fail_reportf "cut=%d predicted %s, recovery said %s" cut
          (match expected_status with `Clean -> "clean" | `Recovered -> "recovered")
          (match status with `Clean -> "clean" | `Recovered -> "recovered");
      audit v2 status oracle in_flight)

(* ------------------------------------------------------------------ *)
(* mixed writes and deletes: outcome derived from the recovery status *)
(* ------------------------------------------------------------------ *)

type mop = Mwrite of int * int | Mdelete of int

let show_mop = function
  | Mwrite (p, n) -> Printf.sprintf "write /f%d (%d bytes)" p n
  | Mdelete p -> Printf.sprintf "delete /f%d" p

let gen_mixed =
  QCheck.Gen.(
    map2
      (fun ops cut -> (ops, cut))
      (list_size (int_range 1 14)
         (frequency
            [ (3, map2 (fun p n -> Mwrite (p, n)) (int_range 0 4) (int_range 0 30));
              (1, map (fun p -> Mdelete p) (int_range 0 4)) ]))
      (int_range 0 56))

let show_mixed (ops, cut) =
  Printf.sprintf "cut=%d; %s" cut (String.concat "; " (List.map show_mop ops))

let prop_mixed_ops_consistent =
  QCheck.Test.make ~count:120
    ~name:"mixed write/delete schedules: acknowledged state survives, in-flight \
           op lands whole or not at all"
    (QCheck.make ~print:show_mixed gen_mixed)
    (fun (ops, cut) ->
      let dev = Block.create ~blocks:4096 in
      let fs = Fs.format dev in
      let v = Vpfs.create ~master_key fs in
      Fs.crash_after_writes fs cut;
      let oracle = Hashtbl.create 8 in
      let trusted = ref (Vpfs.root v) in
      let in_flight = ref None in
      (try
         List.iteri
           (fun i op ->
             match op with
             | Mwrite (p, n) ->
               let path = Printf.sprintf "/f%d" p in
               let data = Printf.sprintf "#%d:%s" i (String.make n 'y') in
               in_flight := Some (`Write (path, data));
               (match Vpfs.write v path data with
                | Ok () ->
                  Hashtbl.replace oracle path data;
                  trusted := Vpfs.root v;
                  in_flight := None
                | Error e ->
                  Alcotest.fail (Format.asprintf "write: %a" Vpfs.pp_error e))
             | Mdelete p ->
               let path = Printf.sprintf "/f%d" p in
               in_flight := Some (`Delete path);
               (match Vpfs.delete v path with
                | Ok () ->
                  Hashtbl.remove oracle path;
                  trusted := Vpfs.root v;
                  in_flight := None
                | Error (Vpfs.Not_found _) -> in_flight := None
                | Error e ->
                  Alcotest.fail (Format.asprintf "delete: %a" Vpfs.pp_error e)))
           ops
       with Fs.Crashed -> ());
      let v2, status = recover dev !trusted in
      (match (status, !in_flight) with
       | `Recovered, Some (`Write (p, d)) -> Hashtbl.replace oracle p d
       | `Recovered, Some (`Delete p) -> Hashtbl.remove oracle p
       | `Recovered, None -> QCheck.Test.fail_report "recovered with nothing in flight"
       | `Clean, _ -> ());
      let expect =
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) oracle [])
      in
      let actual =
        List.sort compare
          (List.map
             (fun p ->
               match Vpfs.read v2 p with
               | Ok d -> (p, d)
               | Error e ->
                 Alcotest.fail (Format.asprintf "read %s: %a" p Vpfs.pp_error e))
             (Vpfs.list v2))
      in
      expect = actual)

let suite =
  [ QCheck_alcotest.to_alcotest prop_cut_never_tears;
    QCheck_alcotest.to_alcotest prop_mixed_ops_consistent ]
