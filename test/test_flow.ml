(* Flow: lattice laws (qcheck), the fixpoint solver on the example
   fixtures, kernel capability conformance, and the static-vs-dynamic
   soundness property: every IPC message a provisioned kernel actually
   delivers travels a predicted flow edge. *)

open Lateral
module K = Lt_kernel.Kernel
module User = Lt_kernel.User
module KSys = Lt_kernel.Sys

(* --- lattice laws ----------------------------------------------------------- *)

let gen_label =
  QCheck.Gen.(
    oneof
      [ return Flow_lattice.public;
        return Flow_lattice.tainted;
        (oneofl [ [ "a" ]; [ "b" ]; [ "c" ]; [ "a"; "b" ]; [ "b"; "c" ];
                  [ "a"; "b"; "c" ] ]
         >|= Flow_lattice.secret_of) ])

let arb_label = QCheck.make ~print:Flow_lattice.to_string gen_label

let arb_label3 = QCheck.triple arb_label arb_label arb_label

let prop_partial_order =
  QCheck.Test.make ~name:"leq is a partial order" ~count:500 arb_label3
    (fun (a, b, c) ->
      let open Flow_lattice in
      leq a a
      && ((not (leq a b && leq b a)) || equal a b)
      && ((not (leq a b && leq b c)) || leq a c))

let prop_join_semilattice =
  QCheck.Test.make ~name:"join is commutative, associative, idempotent"
    ~count:500 arb_label3
    (fun (a, b, c) ->
      let open Flow_lattice in
      equal (join a b) (join b a)
      && equal (join a (join b c)) (join (join a b) c)
      && equal (join a a) a
      && equal (join public a) a)

let prop_join_lub =
  QCheck.Test.make ~name:"join is the least upper bound" ~count:500 arb_label3
    (fun (a, b, c) ->
      let open Flow_lattice in
      leq a (join a b)
      && leq b (join a b)
      && ((not (leq a c && leq b c)) || leq (join a b) c))

let test_lattice_basics () =
  let open Flow_lattice in
  Alcotest.(check string) "public" "public" (to_string public);
  Alcotest.(check string) "tainted" "tainted" (to_string tainted);
  Alcotest.(check string) "owners sorted and deduped" "secret{a,b}"
    (to_string (secret_of [ "b"; "a"; "b" ]));
  Alcotest.(check bool) "secrecy dominates taint" true
    (is_secret (join (secret "x") tainted));
  Alcotest.(check bool) "taint survives the join" true
    (is_tainted (join (secret "x") tainted));
  Alcotest.(check bool) "chain public < tainted < secret" true
    (leq public tainted && leq tainted (secret "x")
    && not (leq (secret "x") tainted));
  Alcotest.(check bool) "owner sets ordered by inclusion" true
    (leq (secret "a") (secret_of [ "a"; "b" ])
    && not (leq (secret_of [ "a"; "b" ]) (secret "a")));
  Alcotest.check_raises "empty owner set rejected"
    (Invalid_argument "Flow_lattice.secret_of: empty owner set") (fun () ->
      ignore (Flow_lattice.secret_of []))

(* --- the solver on the fixtures --------------------------------------------- *)

let load_example file =
  match Manifest_file.load ("../examples/" ^ file) with
  | Ok ms -> ms
  | Error e -> Alcotest.fail e

let test_browser_leak () =
  let r = Flow.analyze (load_example "browser.manifest") in
  Alcotest.(check bool) "verdict is a leak" true (Flow.has_leaks r);
  (* the acceptance leak: the cookie jar's secret is readable from the
     compromised js interpreter, one reply edge away *)
  Alcotest.(check bool) "cookies -> js leak with its witness path" true
    (List.exists
       (fun l ->
         l.Flow.l_secret = "cookies" && l.Flow.l_sink = "js"
         && l.Flow.l_path = [ "cookies"; "js" ])
       r.Flow.leaks);
  Alcotest.(check bool) "keystore escapes via tls and net" true
    (List.exists
       (fun l ->
         l.Flow.l_secret = "keystore" && l.Flow.l_sink = "net"
         && l.Flow.l_path = [ "keystore"; "tls"; "net" ])
       r.Flow.leaks);
  (* taint runs the other way: net's influence reaches the keystore *)
  Alcotest.(check bool) "transitive taint into the keystore" true
    (List.exists
       (fun h ->
         h.Flow.t_source = "net" && h.Flow.t_sink = "keystore"
         && (not h.Flow.t_direct)
         && h.Flow.t_path = [ "net"; "tls"; "keystore" ])
       r.Flow.taint_hits);
  (* labels: the sink carries every owner it can observe; the vetted
     legacyfs edge keeps secrets out of the wrapper's dependency *)
  (match List.assoc_opt "js" r.Flow.labels with
   | Some l ->
     Alcotest.(check bool) "js observes the cookie secret" true
       (Flow_lattice.leq (Flow_lattice.secret "cookies") l)
   | None -> Alcotest.fail "js has no label");
  (match List.assoc_opt "legacyfs" r.Flow.labels with
   | Some l ->
     Alcotest.(check bool) "legacyfs stays secret-free" false
       (Flow_lattice.is_secret l)
   | None -> Alcotest.fail "legacyfs has no label")

let test_clean_secure () =
  let r = Flow.analyze (load_example "clean.manifest") in
  Alcotest.(check bool) "no leaks" false (Flow.has_leaks r);
  Alcotest.(check bool) "verdict Secure" true (r.Flow.verdict = Flow.Secure)

let test_deterministic () =
  let ms = load_example "browser.manifest" in
  let a = Flow.analyze ms and b = Flow.analyze ms in
  Alcotest.(check bool) "two runs agree exactly" true (a = b)

let test_vetting_declassifies () =
  (* same two components; only the vetting changes the verdict *)
  let app vetted =
    [ Manifest.v ~name:"gate" ~network_facing:true
        ~connects_to:[ Manifest.conn ~vetted "safe" "use" ] ();
      Manifest.v ~name:"safe" ~provides:[ "use" ] ~substrate:"sep" () ]
  in
  Alcotest.(check bool) "unvetted leaks" true (Flow.has_leaks (Flow.analyze (app false)));
  Alcotest.(check bool) "vetted is secure" false (Flow.has_leaks (Flow.analyze (app true)))

let test_reports () =
  let ms = load_example "browser.manifest" in
  let r = Flow.analyze ms in
  let text = Flow.render_text ~file:"browser.manifest" r in
  let contains ~inside needle =
    let n = String.length needle and h = String.length inside in
    let rec go i = i + n <= h && (String.sub inside i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "text names the verdict" true
    (contains ~inside:text "verdict: LEAK");
  let json = Flow.render_json ~file:"browser.manifest" r in
  Alcotest.(check bool) "json carries the verdict" true
    (contains ~inside:json {|"verdict":"leak"|});
  let dot = Flow.to_dot ms r in
  Alcotest.(check bool) "dot declares the digraph" true
    (contains ~inside:dot "digraph flow");
  Alcotest.(check bool) "dot tags vetted edges" true
    (contains ~inside:dot "(vetted)")

(* --- conformance ------------------------------------------------------------- *)

let provision_ok ms =
  match Flow.provision ms with
  | Ok d -> d
  | Error e -> Alcotest.fail ("provision: " ^ e)

let test_scenarios_conform () =
  (match Lazy.force Scenario_meter.conformance with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("meter: " ^ e));
  (match Lazy.force Scenario_cloud.conformance with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("cloud: " ^ e));
  match Scenario_mail.conformance with
  | (lazy (Ok ())) -> ()
  | (lazy (Error e)) -> Alcotest.fail ("mail: " ^ e)

let test_over_privilege () =
  let ms = Scenario_meter.manifests in
  let d = provision_ok ms in
  let c0 = Flow.conformance ms d.Flow.d_kernel in
  Alcotest.(check bool) "freshly provisioned kernel conforms" true
    (Flow.conforms c0);
  (* seed one undeclared capability: the anonymizer gets a send cap onto
     the meter's endpoint *)
  let anon = List.assoc "anonymizer" d.Flow.d_tasks in
  let meter_ep = List.assoc "meter" d.Flow.d_endpoints in
  ignore
    (K.grant d.Flow.d_kernel anon meter_ep
       ~rights:{ K.send = true; recv = false } ~badge:9);
  let c = Flow.conformance ms d.Flow.d_kernel in
  Alcotest.(check bool) "no longer conforms" false (Flow.conforms c);
  Alcotest.(check bool) "over-privilege names task and endpoint" true
    (List.exists
       (fun o -> o.Flow.o_task = "anonymizer" && o.Flow.o_endpoint = "meter.ep")
       c.Flow.over);
  Alcotest.(check bool) "rendered as an L017 error" true
    (List.exists
       (fun dg ->
         dg.Diagnostic.rule_id = "L017-undeclared-authority"
         && dg.Diagnostic.severity = Diagnostic.Error
         && dg.Diagnostic.component = "anonymizer"
         && dg.Diagnostic.service = Some "meter.ep")
       (Flow.conformance_diagnostics c))

let test_under_provision () =
  let ms = Scenario_meter.manifests in
  let d = provision_ok ms in
  let meter = List.assoc "meter" d.Flow.d_tasks in
  let send_slot =
    List.find_map
      (fun (slot, _, r, _) -> if r.K.send then Some slot else None)
      (K.caps meter)
  in
  (match send_slot with
   | Some slot -> K.revoke d.Flow.d_kernel meter ~slot
   | None -> Alcotest.fail "meter has no send capability");
  let c = Flow.conformance ms d.Flow.d_kernel in
  Alcotest.(check bool) "revoked channel is under-provision" true
    (List.exists
       (fun u ->
         u.Flow.u_caller = "meter" && u.Flow.u_target = "utility"
         && u.Flow.u_services = [ "submit" ])
       c.Flow.under);
  Alcotest.(check bool) "rendered as an L018 warning" true
    (List.exists
       (fun dg ->
         dg.Diagnostic.rule_id = "L018-under-provision"
         && dg.Diagnostic.severity = Diagnostic.Warning)
       (Flow.conformance_diagnostics c))

let test_derive_attenuation_conforms () =
  (* attenuating a declared capability never widens authority, so the
     derived copy conforms exactly when the original did *)
  let ms = Scenario_meter.manifests in
  let d = provision_ok ms in
  let meter = List.assoc "meter" d.Flow.d_tasks in
  let send_slot =
    List.find_map
      (fun (slot, _, r, _) -> if r.K.send then Some slot else None)
      (K.caps meter)
  in
  (match send_slot with
   | Some slot ->
     (match
        K.derive_cap d.Flow.d_kernel meter ~slot
          ~rights:{ K.send = true; recv = false }
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("derive_cap: " ^ e))
   | None -> Alcotest.fail "meter has no send capability");
  Alcotest.(check bool) "derived copy still conforms" true
    (Flow.conforms (Flow.conformance ms d.Flow.d_kernel))

let test_badge_collision () =
  let ms =
    [ Manifest.v ~name:"one" ~connects_to:[ Manifest.conn "jar" "get" ] ();
      Manifest.v ~name:"two" ~connects_to:[ Manifest.conn "jar" "get" ] ();
      Manifest.v ~name:"jar" ~provides:[ "get" ] () ]
  in
  let d = provision_ok ms in
  Alcotest.(check bool) "distinct badges conform" true
    (Flow.conforms (Flow.conformance ms d.Flow.d_kernel));
  (* a second cap for a declared channel, but under the other caller's
     badge: the discriminating target can no longer tell them apart *)
  let two = List.assoc "two" d.Flow.d_tasks in
  let jar_ep = List.assoc "jar" d.Flow.d_endpoints in
  let one_badge =
    fst (List.find (fun (_, n) -> n = "one") d.Flow.d_badges)
  in
  ignore
    (K.grant d.Flow.d_kernel two jar_ep
       ~rights:{ K.send = true; recv = false } ~badge:one_badge);
  let c = Flow.conformance ms d.Flow.d_kernel in
  Alcotest.(check bool) "collision breaks conformance" false (Flow.conforms c);
  Alcotest.(check bool) "collision names the shared badge" true
    (List.exists
       (fun o ->
         o.Flow.o_endpoint = "jar.ep"
         && String.length o.Flow.o_reason >= 5
         && String.sub o.Flow.o_reason 0 5 = "badge")
       c.Flow.over)

let test_unknown_task () =
  let ms = Scenario_meter.manifests in
  let d = provision_ok ms in
  let rogue =
    K.create_task d.Flow.d_kernel ~name:"rogue" ~partition:"rogue"
  in
  let utility_ep = List.assoc "utility" d.Flow.d_endpoints in
  ignore
    (K.grant d.Flow.d_kernel rogue utility_ep
       ~rights:{ K.send = true; recv = false } ~badge:7);
  let c = Flow.conformance ms d.Flow.d_kernel in
  Alcotest.(check bool) "undeclared task is over-privilege" true
    (List.exists (fun o -> o.Flow.o_task = "rogue") c.Flow.over)

(* --- soundness: observed IPC ⊆ predicted flow edges -------------------------- *)

(* random well-formed apps: distinct names, no dangling targets, no
   self-connections, all channels unvetted so the declared pairs are
   exactly the request edges of the flow graph *)
let gen_app =
  QCheck.Gen.(
    int_range 2 5 >>= fun n ->
    let names = List.filteri (fun i _ -> i < n) [ "a"; "b"; "c"; "d"; "e" ] in
    let candidates =
      List.concat_map
        (fun src ->
          List.filter_map
            (fun dst -> if src = dst then None else Some (src, dst))
            names)
        names
    in
    list_repeat (List.length candidates) bool >>= fun picks ->
    let chans =
      List.filteri (fun i _ -> List.nth picks i) candidates
    in
    return
      (List.map
         (fun name ->
           Manifest.v ~name ~provides:[ "s" ]
             ~connects_to:
               (List.filter_map
                  (fun (s, d) ->
                    if s = name then Some (Manifest.conn d "s") else None)
                  chans)
             ())
         names))

let print_app ms = Manifest_file.to_text ms

let prop_soundness =
  QCheck.Test.make
    ~name:"observed IPC is a subset of the predicted flow edges" ~count:120
    (QCheck.make ~print:print_app gen_app)
    (fun ms ->
      match Flow.provision ms with
      | Error e -> QCheck.Test.fail_reportf "provision: %s" e
      | Ok d ->
        let k = d.Flow.d_kernel in
        let observed = ref [] in
        let total_send_caps = ref 0 in
        List.iter
          (fun (name, task) ->
            let caps = K.caps task in
            (match
               List.find_map
                 (fun (slot, _, r, _) -> if r.K.recv then Some slot else None)
                 caps
             with
             | Some slot ->
               ignore
                 (K.create_thread k task ~name:(name ^ "-rx") ~prio:1 (fun () ->
                      while true do
                        let badge, _, _ = User.recv ~cap:slot in
                        match List.assoc_opt badge d.Flow.d_badges with
                        | Some caller -> observed := (caller, name) :: !observed
                        | None -> ()
                      done))
             | None -> ());
            List.iter
              (fun (slot, _, r, _) ->
                if r.K.send then begin
                  incr total_send_caps;
                  ignore
                    (K.create_thread k task
                       ~name:(Printf.sprintf "%s-tx%d" name slot) ~prio:1
                       (fun () -> User.send ~cap:slot (KSys.msg "probe")))
                end)
              caps)
          d.Flow.d_tasks;
        ignore (K.run k);
        let predicted =
          List.filter_map
            (fun e ->
              if e.Flow.e_reply then None else Some (e.Flow.e_src, e.Flow.e_dst))
            (Flow.analyze ms).Flow.edges
        in
        List.for_all (fun ob -> List.mem ob predicted) !observed
        && List.length !observed = !total_send_caps)

let suite =
  [ QCheck_alcotest.to_alcotest prop_partial_order;
    QCheck_alcotest.to_alcotest prop_join_semilattice;
    QCheck_alcotest.to_alcotest prop_join_lub;
    Alcotest.test_case "lattice basics" `Quick test_lattice_basics;
    Alcotest.test_case "browser fixture leaks" `Quick test_browser_leak;
    Alcotest.test_case "clean fixture secure" `Quick test_clean_secure;
    Alcotest.test_case "analysis is deterministic" `Quick test_deterministic;
    Alcotest.test_case "vetting declassifies" `Quick test_vetting_declassifies;
    Alcotest.test_case "reports" `Quick test_reports;
    Alcotest.test_case "scenario manifests conform" `Quick test_scenarios_conform;
    Alcotest.test_case "seeded over-privilege detected" `Quick test_over_privilege;
    Alcotest.test_case "revocation is under-provision" `Quick test_under_provision;
    Alcotest.test_case "derived caps conform" `Quick test_derive_attenuation_conforms;
    Alcotest.test_case "badge collision detected" `Quick test_badge_collision;
    Alcotest.test_case "unknown task detected" `Quick test_unknown_task;
    QCheck_alcotest.to_alcotest prop_soundness ]
