(* The lint engine: one triggering and one clean case per rule, the
   golden fixture under examples/, and engine-level invariants. *)

open Lateral

let parse text =
  match Manifest_file.parse text with
  | Ok ms -> ms
  | Error e -> Alcotest.fail e

let lint_text text = Lint.run (parse text)

let rule_ids diags =
  List.sort_uniq compare (List.map (fun d -> d.Diagnostic.rule_id) diags)

let fires id diags =
  List.exists (fun d -> d.Diagnostic.rule_id = id) diags

let check_fires id diags =
  Alcotest.(check bool) (id ^ " fires") true (fires id diags)

let check_silent id diags =
  Alcotest.(check bool) (id ^ " silent") false (fires id diags)

let string_contains ~inside needle =
  let n = String.length needle and h = String.length inside in
  let rec go i = i + n <= h && (String.sub inside i n = needle || go (i + 1)) in
  go 0

(* --- one triggering + one clean fixture per rule --------------------------- *)

let test_dangling_target () =
  check_fires "L001-dangling-target" (lint_text "component a\n  connects b.x");
  check_silent "L001-dangling-target"
    (lint_text "component a\n  connects b.x\ncomponent b\n  provides x")

let test_dangling_service () =
  check_fires "L002-dangling-service"
    (lint_text "component a\n  connects b.x\ncomponent b\n  provides y");
  check_silent "L002-dangling-service"
    (lint_text "component a\n  connects b.x\ncomponent b\n  provides x y")

let test_duplicate_component () =
  (* the parser rejects duplicates, so this rule guards API-built sets *)
  let dup =
    [ Manifest.v ~name:"a" ();
      Manifest.v ~name:"a" ~size_loc:2 ();
      Manifest.v ~name:"b" () ]
  in
  check_fires "L003-duplicate-component" (Lint.run dup);
  check_silent "L003-duplicate-component"
    (Lint.run [ Manifest.v ~name:"a" (); Manifest.v ~name:"b" () ])

let test_self_connection () =
  (* likewise parser-rejected in files, still reachable through the API *)
  let self =
    [ Manifest.v ~name:"a" ~provides:[ "s" ]
        ~connects_to:[ Manifest.conn "a" "s" ] () ]
  in
  check_fires "L004-self-connection" (Lint.run self);
  check_silent "L004-self-connection"
    (Lint.run
       [ Manifest.v ~name:"a" ~connects_to:[ Manifest.conn "b" "s" ] ();
         Manifest.v ~name:"b" ~provides:[ "s" ] () ])

let jar badges =
  Printf.sprintf
    {|component jar
  %s
  provides get
component one
  connects jar.get
component two
  connects jar.get|}
    (if badges then "size 300" else "no-badge-checks")

let test_confused_deputy () =
  check_fires "L005-confused-deputy" (lint_text (jar false));
  check_silent "L005-confused-deputy" (lint_text (jar true))

let taint vet =
  Printf.sprintf
    {|component net
  network-facing
  provides go
  %s keys.sign
component keys
  substrate sep
  provides sign|}
    (if vet then "connects-vetted" else "connects")

let test_taint_flow () =
  check_fires "L006-taint-flow" (lint_text (taint false));
  check_silent "L006-taint-flow" (lint_text (taint true));
  (* a two-hop flow is L016's business, and a vetted middle edge breaks it *)
  let hop vet =
    Printf.sprintf
      {|component net
  network-facing
  provides go
  connects mid.relay
component mid
  provides relay
  %s keys.sign
component keys
  substrate sep
  provides sign|}
      (if vet then "connects-vetted" else "connects")
  in
  check_silent "L006-taint-flow" (lint_text (hop false));
  check_fires "L016-transitive-taint-into-enclave" (lint_text (hop false));
  check_silent "L016-transitive-taint-into-enclave" (lint_text (hop true))

let test_label_leak () =
  (* the unvetted reply edge carries the secret back into the exposed
     caller; vetting the channel declassifies it *)
  check_fires "L014-label-leak" (lint_text (taint false));
  check_silent "L014-label-leak" (lint_text (taint true))

let test_dead_declassifier () =
  let boundary vet =
    Printf.sprintf
      {|component a
  provides x
  %s b.io
component b
  provides io|}
      (if vet then "connects-vetted" else "connects")
  in
  check_fires "L015-dead-declassifier" (lint_text (boundary true));
  check_silent "L015-dead-declassifier" (lint_text (boundary false));
  (* a vetted boundary in front of a secret holder is earning its keep *)
  check_silent "L015-dead-declassifier" (lint_text (taint true))

let legacy vet =
  Printf.sprintf
    {|component app
  provides run
  %s os.syscall
component os
  substrate monolithic-os
  provides syscall|}
    (if vet then "connects-vetted" else "connects")

let test_legacy_tcb () =
  check_fires "L007-legacy-tcb" (lint_text (legacy false));
  check_silent "L007-legacy-tcb" (lint_text (legacy true))

let domain_of n =
  String.concat "\n"
    (List.init n (fun i ->
         Printf.sprintf "component c%d\n  domain blob\n  provides s%d" i i))

let test_shared_domain () =
  check_fires "L008-shared-domain-pola" (lint_text (domain_of 4));
  check_silent "L008-shared-domain-pola" (lint_text (domain_of 3))

let test_channel_cycle () =
  check_fires "L009-channel-cycle"
    (lint_text
       {|component a
  provides x
  connects b.y
component b
  provides y
  connects a.x|});
  check_silent "L009-channel-cycle"
    (lint_text
       {|component a
  provides x
  connects b.y
component b
  provides y|})

let test_dead_service () =
  check_fires "L010-dead-service" (lint_text "component a\n  provides s");
  (* network-facing services are external entry points, not dead *)
  check_silent "L010-dead-service"
    (lint_text "component a\n  network-facing\n  provides s");
  check_silent "L010-dead-service"
    (lint_text
       "component a\n  provides s\ncomponent b\n  network-facing\n  connects a.s")

let test_substrate_mismatch () =
  check_fires "L011-substrate-mismatch"
    (lint_text "component a\n  substrate quantum");
  (* a vetted boundary needs an attestable target *)
  check_fires "L011-substrate-mismatch"
    (lint_text
       {|component app
  connects-vetted fs.io
component fs
  provides io|});
  check_silent "L011-substrate-mismatch"
    (lint_text
       {|component app
  connects-vetted fs.io
component fs
  substrate sgx
  provides io|})

let test_vulnerable_cohabitant () =
  check_fires "L012-vulnerable-cohabitant"
    (lint_text
       "component a\n  domain d\n  vulnerable\ncomponent b\n  domain d");
  check_silent "L012-vulnerable-cohabitant"
    (lint_text "component a\n  vulnerable\ncomponent b\n  domain d")

let test_oversized () =
  check_fires "L013-oversized-component"
    (lint_text "component a\n  size 30000");
  check_silent "L013-oversized-component"
    (lint_text "component a\n  size 29999")

let test_restart_policy_missing () =
  check_fires "L019-restart-policy-missing"
    (lint_text "component a\n  stateful");
  check_fires "L019-restart-policy-missing"
    (lint_text "component a\n  substrate sgx\n  stateful");
  (* a declared policy satisfies the rule, even `never` *)
  check_silent "L019-restart-policy-missing"
    (lint_text "component a\n  stateful\n  restart on-failure");
  check_silent "L019-restart-policy-missing"
    (lint_text "component a\n  stateful\n  restart never");
  (* stateless components have nothing to lose *)
  check_silent "L019-restart-policy-missing" (lint_text "component a");
  (* the secure side of a dedicated-hardware substrate is not crashable *)
  check_silent "L019-restart-policy-missing"
    (lint_text "component a\n  substrate sep\n  stateful")

let test_placement_unsatisfiable () =
  let hosts =
    [ Manifest.host ~name:"edge" ~substrates:[ "microkernel"; "sgx" ];
      Manifest.host ~name:"core" ~substrates:[ "monolithic-os" ] ]
  in
  let config = { Lint_rules.default_config with Lint_rules.declared_hosts = hosts } in
  let lint_fleet text = Lint.run ~config (parse text) in
  let id = "L024-placement-unsatisfiable" in
  (* satisfiable specs: by class, by host name, by bare substrate, empty *)
  check_silent id (lint_fleet "component a\n  substrate sgx\n  place class:tee");
  check_silent id (lint_fleet "component a\n  place host:edge");
  check_silent id (lint_fleet "component a\n  place microkernel");
  check_silent id (lint_fleet "component a");
  (* substrate offered nowhere: unsatisfiable even with no place spec *)
  check_fires id (lint_fleet "component a\n  substrate sep");
  (* selectors match a host, but not one offering the substrate *)
  check_fires id (lint_fleet "component a\n  substrate sgx\n  place host:core");
  (* class matches no host *)
  check_fires id
    (Lint.run
       ~config:
         { Lint_rules.default_config with
           Lint_rules.declared_hosts =
             [ Manifest.host ~name:"solo" ~substrates:[ "microkernel" ] ] }
       (parse "component a\n  substrate sgx\n  place class:tee"));
  (* unknown host / unknown class / unknown substrate selectors *)
  check_fires id (lint_fleet "component a\n  place host:ghost");
  check_fires id (lint_fleet "component a\n  place class:enclave");
  check_fires id (lint_fleet "component a\n  place notasubstrate");
  (* empty selector names nothing *)
  check_fires id (lint_fleet "component a\n  place host: class:tee");
  (* without declared hosts only selector syntax is checked *)
  check_silent id (Lint.run (parse "component a\n  substrate sep\n  place class:tee"));
  check_fires id (Lint.run (parse "component a\n  place class:enclave"));
  (* all findings are errors *)
  List.iter
    (fun d ->
      if d.Diagnostic.rule_id = id then
        Alcotest.(check bool) "L024 is error severity" true
          (d.Diagnostic.severity = Diagnostic.Error))
    (lint_fleet "component a\n  substrate sep\n  place class:enclave")

(* --- the golden fixtures under examples/ ----------------------------------- *)

let load_example file =
  match Manifest_file.load ("../examples/" ^ file) with
  | Ok ms -> ms
  | Error e -> Alcotest.fail e

let test_broken_fixture () =
  let diags = Lint.run (load_example "broken.manifest") in
  Alcotest.(check (list string))
    "the broken fixture locks ten-plus distinct rule ids"
    [ "L001-dangling-target";
      "L002-dangling-service";
      "L005-confused-deputy";
      "L006-taint-flow";
      "L007-legacy-tcb";
      "L008-shared-domain-pola";
      "L009-channel-cycle";
      "L010-dead-service";
      "L011-substrate-mismatch";
      "L012-vulnerable-cohabitant";
      "L013-oversized-component";
      "L014-label-leak";
      "L019-restart-policy-missing";
      "L020-unbounded-blast-radius";
      "L023-stateful-dependency-unshielded" ]
    (rule_ids diags);
  Alcotest.(check int) "diagnostic count" 24 (List.length diags);
  Alcotest.(check bool) "gates CI" true (Lint.has_errors diags)

let test_browser_fixture () =
  let diags = Lint.run (load_example "browser.manifest") in
  Alcotest.(check bool) "confused-deputy error on the cookie jar" true
    (List.exists
       (fun d ->
         d.Diagnostic.rule_id = "L005-confused-deputy"
         && d.Diagnostic.severity = Diagnostic.Error
         && d.Diagnostic.component = "cookies"
         && d.Diagnostic.service = Some "get")
       diags);
  Alcotest.(check bool) "taint warning on the js -> cookies path" true
    (List.exists
       (fun d ->
         d.Diagnostic.rule_id = "L006-taint-flow"
         && d.Diagnostic.severity = Diagnostic.Warning
         && d.Diagnostic.component = "js"
         && string_contains ~inside:d.Diagnostic.message "js -> cookies")
       diags)

let test_clean_fixture () =
  Alcotest.(check int) "clean fixture has no diagnostics" 0
    (List.length (Lint.run (load_example "clean.manifest")))

(* --- engine invariants ------------------------------------------------------ *)

let test_report_rendering () =
  let d =
    Diagnostic.v ~rule_id:"L999-test" ~severity:Diagnostic.Error
      ~component:{|we"ird|} ~service:"s" ~message:"line1\nline2\ttab"
      ~fix_hint:"do \"this\"" ()
  in
  let json = Diagnostic.to_json d in
  Alcotest.(check bool) "escapes quotes" true
    (string_contains ~inside:json {|"component":"we\"ird"|});
  Alcotest.(check bool) "escapes control characters" true
    (string_contains ~inside:json {|line1\nline2\ttab|});
  let file_json = Lint.render_json ~file:"x.manifest" [ d ] in
  Alcotest.(check bool) "summary counts the error" true
    (string_contains ~inside:file_json {|"summary":{"errors":1,"warnings":0,"infos":0}|});
  let none = Lint.render_json ~file:"x.manifest" [] in
  Alcotest.(check bool) "empty report is an empty array" true
    (string_contains ~inside:none {|"diagnostics":[]|})

let test_sorted_and_deterministic () =
  let ms = load_example "broken.manifest" in
  let a = Lint.run ms and b = Lint.run ms in
  Alcotest.(check bool) "deterministic" true (a = b);
  Alcotest.(check bool) "sorted worst-first" true
    (List.sort Diagnostic.compare a = a)

let gen_manifests =
  QCheck.Gen.(
    let name = oneofl [ "a"; "b"; "c"; "d"; "e" ] in
    let service = oneofl [ "s1"; "s2"; "s3" ] in
    let conn =
      map3 (fun v t s -> Manifest.conn ~vetted:v t s) bool name service
    in
    let comp =
      name >>= fun n ->
      list_size (int_bound 3) conn >>= fun cs ->
      list_size (int_bound 2) service >>= fun provides ->
      oneofl [ "microkernel"; "sep"; "monolithic-os"; "quantum" ] >>= fun sub ->
      bool >>= fun net ->
      bool >>= fun vuln ->
      bool >>= fun badges ->
      oneofl [ "d1"; "d2"; n ] >>= fun dom ->
      int_bound 50_000 >>= fun size ->
      return
        (Manifest.v ~name:n ~provides ~connects_to:cs ~domain:dom
           ~size_loc:size ~network_facing:net ~vulnerable:vuln
           ~discriminates_clients:badges ~substrate:sub ())
    in
    list_size (int_bound 6) comp)

(* duplicates, self-connections, dangling everything: the engine must
   stay pure and total on arbitrary manifest sets *)
let prop_lint_total =
  QCheck.Test.make ~name:"lint is total on arbitrary manifest sets" ~count:200
    (QCheck.make gen_manifests)
    (fun ms ->
      let diags = Lint.run ms in
      List.sort Diagnostic.compare diags = diags
      && String.length (Lint.render_json ~file:"f" diags) > 0)

(* --- locate: span attachment ------------------------------------------------ *)

let span line name =
  { Manifest_file.sp_manifest = Manifest.v ~name (); sp_line = line }

let test_locate_unknown_passthrough () =
  (* diagnostics anchored to components absent from the span list keep
     loc = None instead of being dropped or mislocated *)
  let diags =
    lint_text "component a\n  connects b.x\ncomponent b\n  provides x"
  in
  let located = Lint.locate ~file:"f.manifest" [ span 3 "b" ] diags in
  Alcotest.(check int) "nothing dropped" (List.length diags)
    (List.length located);
  List.iter
    (fun d ->
      match (d.Diagnostic.component, d.Diagnostic.loc) with
      | "b", loc ->
        Alcotest.(check bool) "b located" true
          (loc = Some { Diagnostic.file = "f.manifest"; line = 3 })
      | _, loc -> Alcotest.(check bool) "unknown passes through" true (loc = None))
    located

let test_locate_duplicate_span_winner () =
  (* two spans for the same name: the first one in the list wins,
     deterministically *)
  let diags = lint_text "component a\n  connects b.x" in
  let located =
    Lint.locate ~file:"f.manifest" [ span 1 "a"; span 9 "a" ] diags
  in
  List.iter
    (fun d ->
      if d.Diagnostic.component = "a" then
        Alcotest.(check bool) "first span wins" true
          (d.Diagnostic.loc = Some { Diagnostic.file = "f.manifest"; line = 1 }))
    located;
  Alcotest.(check bool) "a diagnostic was located" true
    (List.exists (fun d -> d.Diagnostic.loc <> None) located)

let test_locate_resorts () =
  (* location participates in Diagnostic.compare, so locate must
     re-sort; the result is a fixpoint of sorting *)
  let diags =
    lint_text
      "component a\n  connects b.x\ncomponent b\n  connects a.y\ncomponent c\n  connects miss.z"
  in
  let located =
    Lint.locate ~file:"f.manifest" [ span 5 "c"; span 3 "b"; span 1 "a" ] diags
  in
  Alcotest.(check bool) "stably sorted" true
    (located = List.sort Diagnostic.compare located);
  (* locating twice with the same spans is idempotent *)
  let again =
    Lint.locate ~file:"f.manifest" [ span 5 "c"; span 3 "b"; span 1 "a" ] located
  in
  Alcotest.(check bool) "idempotent" true (again = located)

let test_locate_all_first_file_wins () =
  let diags = lint_text "component a\n  connects b.x" in
  let located =
    Lint.locate_all
      [ ("one.manifest", [ span 4 "a" ]); ("two.manifest", [ span 8 "a" ]) ]
      diags
  in
  List.iter
    (fun d ->
      if d.Diagnostic.component = "a" then
        Alcotest.(check bool) "first file wins" true
          (d.Diagnostic.loc = Some { Diagnostic.file = "one.manifest"; line = 4 }))
    located

let suite =
  [ Alcotest.test_case "L001 dangling target" `Quick test_dangling_target;
    Alcotest.test_case "L002 dangling service" `Quick test_dangling_service;
    Alcotest.test_case "L003 duplicate component" `Quick test_duplicate_component;
    Alcotest.test_case "L004 self connection" `Quick test_self_connection;
    Alcotest.test_case "L005 confused deputy" `Quick test_confused_deputy;
    Alcotest.test_case "L006 taint flow" `Quick test_taint_flow;
    Alcotest.test_case "L007 legacy tcb" `Quick test_legacy_tcb;
    Alcotest.test_case "L008 shared domain" `Quick test_shared_domain;
    Alcotest.test_case "L009 channel cycle" `Quick test_channel_cycle;
    Alcotest.test_case "L010 dead service" `Quick test_dead_service;
    Alcotest.test_case "L011 substrate mismatch" `Quick test_substrate_mismatch;
    Alcotest.test_case "L012 vulnerable cohabitant" `Quick test_vulnerable_cohabitant;
    Alcotest.test_case "L013 oversized component" `Quick test_oversized;
    Alcotest.test_case "L014 label leak" `Quick test_label_leak;
    Alcotest.test_case "L015 dead declassifier" `Quick test_dead_declassifier;
    Alcotest.test_case "L019 restart policy missing" `Quick test_restart_policy_missing;
    Alcotest.test_case "L024 placement unsatisfiable" `Quick
      test_placement_unsatisfiable;
    Alcotest.test_case "broken fixture golden" `Quick test_broken_fixture;
    Alcotest.test_case "browser fixture findings" `Quick test_browser_fixture;
    Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
    Alcotest.test_case "report rendering" `Quick test_report_rendering;
    Alcotest.test_case "sorted and deterministic" `Quick test_sorted_and_deterministic;
    Alcotest.test_case "locate: unknown components pass through" `Quick
      test_locate_unknown_passthrough;
    Alcotest.test_case "locate: duplicate spans pick a deterministic winner"
      `Quick test_locate_duplicate_span_winner;
    Alcotest.test_case "locate: re-sorts and is idempotent" `Quick
      test_locate_resorts;
    Alcotest.test_case "locate_all: first file wins" `Quick
      test_locate_all_first_file_wins;
    QCheck_alcotest.to_alcotest prop_lint_total ]
