(* The hunt harness itself: repro wire format, shrinking, engine
   properties on fixed seeds, report determinism, and the checked-in
   corpus of minimized reproducers for the bugs the fuzzer flushed
   out. *)

module Drbg = Lt_crypto.Drbg
module Repro = Lt_fuzz.Repro
module Shrink = Lt_fuzz.Shrink
module Hunt = Lt_fuzz.Hunt

(* ---------------------------------------------------------------- *)
(* repro wire format                                                 *)
(* ---------------------------------------------------------------- *)

let test_repro_roundtrip () =
  let r =
    { Repro.engine = "storage"; seed = 42L; note = "a power cut mid-journal";
      payload = "write /a hello\ncut 2\nremount" }
  in
  (match Repro.parse (Repro.to_text r) with
   | Ok r' -> Alcotest.(check bool) "roundtrip" true (r = r')
   | Error e -> Alcotest.fail e);
  match Repro.parse "not a repro" with
  | Ok _ -> Alcotest.fail "junk accepted"
  | Error _ -> ()

let prop_repro_roundtrip =
  QCheck.Test.make ~name:"repro: parse . to_text = id" ~count:200
    QCheck.(
      pair
        (string_gen_of_size (Gen.int_range 0 60) Gen.printable)
        small_signed_int)
    (fun (payload, seed) ->
      (* the format normalizes line endings; stick to payloads without
         carriage returns, which is what engines emit *)
      QCheck.assume (not (String.contains payload '\r'));
      let r =
        { Repro.engine = "manifest"; seed = Int64.of_int seed;
          note = "prop"; payload }
      in
      match Repro.parse (Repro.to_text r) with
      | Ok r' ->
        r'.Repro.engine = r.Repro.engine
        && r'.Repro.seed = r.Repro.seed
        && String.trim r'.Repro.payload = String.trim r.Repro.payload
      | Error _ -> false)

(* ---------------------------------------------------------------- *)
(* shrinking                                                         *)
(* ---------------------------------------------------------------- *)

let test_shrink_minimizes () =
  let payload =
    "alpha\nbeta\ntrigger this line\ngamma\ndelta\nepsilon\nzeta"
  in
  let has_trigger p =
    List.exists
      (fun l -> String.length l >= 7 && String.sub l 0 7 = "trigger")
      (String.split_on_char '\n' p)
  in
  let minimal = Shrink.lines has_trigger payload in
  Alcotest.(check bool) "still triggers" true (has_trigger minimal);
  Alcotest.(check int) "single line survives" 1
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' minimal)));
  (* the per-line pass also chops the line itself down *)
  Alcotest.(check bool) "line shortened" true
    (String.length minimal < String.length "trigger this line" + 1)

let test_shrink_counts_steps () =
  let steps = ref 0 in
  let _ = Shrink.lines ~steps (fun p -> String.length p > 0) "a\nb\nc" in
  Alcotest.(check bool) "spent predicate evaluations" true (!steps > 0)

(* ---------------------------------------------------------------- *)
(* engine properties on fixed seeds                                  *)
(* ---------------------------------------------------------------- *)

let prop_manifest_totality =
  QCheck.Test.make ~name:"manifest engine: total on arbitrary bytes" ~count:150
    QCheck.(string_gen_of_size (Gen.int_range 0 300) Gen.char)
    (fun s -> Lt_fuzz.Manifest_fuzz.check s = Ok ())

let test_manifest_generated_clean () =
  for i = 0 to 49 do
    let rng = Drbg.create (Int64.of_int (1000 + i)) in
    let payload = Lt_fuzz.Manifest_fuzz.generate rng i in
    match Lt_fuzz.Manifest_fuzz.check payload with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Printf.sprintf "case %d: %s" i e)
  done

let test_storage_generated_clean () =
  for i = 0 to 19 do
    let rng = Drbg.create (Int64.of_int (2000 + i)) in
    let payload = Lt_fuzz.Storage_fuzz.generate rng i in
    match Lt_fuzz.Storage_fuzz.check payload with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Printf.sprintf "case %d: %s" i e)
  done

let test_substrate_differential_smoke () =
  (* the full service chain, a refusal, a crash and an unknown caller:
     every substrate must agree with the reference model *)
  let payload =
    String.concat "\n"
      [ "call - gate relay hello";
        "call gate worker work data42";
        "call worker vault seal poison";
        "crash worker";
        "call gate worker work hello";
        "revive worker";
        "call ghost vault seal x" ]
  in
  match Lt_fuzz.Substrate_fuzz.check payload with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_storm_is_typed () =
  (* deploying past physical memory must come back as a typed error on
     every substrate, never an exception (the old kernel failwith) *)
  match Lt_fuzz.Substrate_fuzz.check "storm 2 6" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* ---------------------------------------------------------------- *)
(* hunt driver                                                       *)
(* ---------------------------------------------------------------- *)

let test_report_determinism () =
  let engines = [ Hunt.Manifest; Hunt.Storage ] in
  let a = Hunt.run ~engines ~seed:7L ~budget:20 () in
  let b = Hunt.run ~engines ~seed:7L ~budget:20 () in
  Alcotest.(check string) "text reports byte-identical"
    (Hunt.render_text a) (Hunt.render_text b);
  Alcotest.(check string) "json reports byte-identical"
    (Hunt.render_json a) (Hunt.render_json b);
  Alcotest.(check bool) "fixed seed is clean" true (Hunt.ok a)

let test_engine_subset_stream () =
  (* --engine storage must see the same storage stream as a full run *)
  let full = Hunt.run ~seed:11L ~budget:4 () in
  let solo = Hunt.run ~engines:[ Hunt.Storage ] ~seed:11L ~budget:4 () in
  let storage_of r =
    List.find (fun e -> e.Hunt.e_engine = Hunt.Storage) r.Hunt.r_engines
  in
  Alcotest.(check bool) "same failures either way" true
    (storage_of full = storage_of solo)

let test_replay_rejects_unknown_engine () =
  match
    Hunt.replay
      { Repro.engine = "warp"; seed = 0L; note = ""; payload = "" }
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown engine accepted"

(* ---------------------------------------------------------------- *)
(* corpus: every checked-in reproducer stays fixed                   *)
(* ---------------------------------------------------------------- *)

let corpus_files () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".repro")
  |> List.sort compare

(* [fleet_*.repro] files are fleet chaos schedules, not hunt repros;
   replay each through its own harness *)
let replay_fleet_repro f path =
  let module Fc = Lt_fleet.Fleet_chaos in
  match Fc.load_repro path with
  | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" f e)
  | Ok rp ->
    (match
       Fc.run ~plan:rp.Fc.rp_plan ~rogue:rp.Fc.rp_rogue ~hosts:rp.Fc.rp_hosts
         ~requests:rp.Fc.rp_requests ~seed:rp.Fc.rp_seed ()
     with
     | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" f e)
     | Ok (r, _) ->
       Alcotest.(check bool) (f ^ " stays contained") true (Fc.contained r))

let test_corpus_replays () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun f ->
      let path = Filename.concat "corpus" f in
      if String.length f >= 6 && String.sub f 0 6 = "fleet_" then
        replay_fleet_repro f path
      else
        match Hunt.replay_file path with
        | Ok () -> ()
        | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" f e))
    files

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_repro_roundtrip; prop_manifest_totality ]

let suite =
  [ Alcotest.test_case "repro roundtrip" `Quick test_repro_roundtrip;
    Alcotest.test_case "shrink minimizes to the trigger" `Quick
      test_shrink_minimizes;
    Alcotest.test_case "shrink counts steps" `Quick test_shrink_counts_steps;
    Alcotest.test_case "generated manifests check clean" `Quick
      test_manifest_generated_clean;
    Alcotest.test_case "generated storage schedules check clean" `Quick
      test_storage_generated_clean;
    Alcotest.test_case "substrate differential smoke" `Slow
      test_substrate_differential_smoke;
    Alcotest.test_case "storm is a typed error everywhere" `Slow
      test_storm_is_typed;
    Alcotest.test_case "equal seeds, identical reports" `Quick
      test_report_determinism;
    Alcotest.test_case "engine subset sees the same stream" `Quick
      test_engine_subset_stream;
    Alcotest.test_case "replay rejects unknown engines" `Quick
      test_replay_rejects_unknown_engine;
    Alcotest.test_case "corpus reproducers replay clean" `Slow
      test_corpus_replays ]
  @ qcheck_tests
