(* The documented exit-code convention, one case per subcommand:
   0 = success, 1 = findings or failed checks, 2 = usage or parse
   errors (and check --verify divergence), 125 = internal errors.
   Runs the real binary so the convention cannot drift from the docs. *)

let exe = Filename.concat ".." (Filename.concat "bin" "lateral_cli.exe")

let run args =
  Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" exe args)

let check_exit name expected args =
  Alcotest.(check int) name expected (run args)

let with_temp content f =
  let path = Filename.temp_file "lateral_cli" ".tmp" in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let clean = "../examples/clean.manifest"

let broken = "../examples/broken.manifest"

let storm_manifest =
  {|component scheduler
  domain control
  restart on-failure 3 256
  provides tick
  connects worker.work

component worker
  domain control
  restart always 2
  provides work
  connects scheduler.tick
|}

let test_demo_commands () =
  check_exit "substrates succeeds" 0 "substrates";
  check_exit "gateway succeeds" 0 "gateway";
  check_exit "meter rejects a bad tamper mode" 2 "meter --tamper bogus"

let test_run_chaos () =
  check_exit "run rejects zero requests" 2 "run mail --requests 0";
  check_exit "chaos rejects zero requests" 2 "chaos mail --requests 0"

let test_hunt () =
  check_exit "hunt rejects an unknown engine" 2
    "hunt --budget 1 --engine bogus";
  check_exit "hunt rejects a zero budget" 2 "hunt --budget 0"

let test_analysis_commands () =
  check_exit "lint wants at least one file" 2 "lint";
  check_exit "flow wants at least one file" 2 "flow";
  check_exit "contain wants at least one file" 2 "contain";
  check_exit "lint is quiet on the clean fixture" 0 ("lint " ^ clean);
  check_exit "lint flags the broken fixture" 1 ("lint " ^ broken);
  with_temp "component a\n  bogus-field x\n" (fun bad ->
      check_exit "analyze reports parse errors as usage" 2 ("analyze " ^ bad);
      check_exit "contain reports parse errors as usage" 2 ("contain " ^ bad))

let test_check_deltas () =
  with_temp "connect a\n" (fun bad ->
      check_exit "check rejects a malformed delta script" 2
        (Printf.sprintf "check %s --deltas %s" clean bad))

let test_contain_verdicts () =
  check_exit "contain passes the clean fixture" 0 ("contain " ^ clean);
  check_exit "contain rejects an unknown witness root" 2
    (Printf.sprintf "contain %s --witness bogus" clean);
  with_temp storm_manifest (fun storm ->
      check_exit "contain fails a restart storm" 1 ("contain " ^ storm);
      check_exit "a witness query itself succeeds" 0
        (Printf.sprintf "contain %s --witness scheduler" storm))

let test_snap () =
  check_exit "snap round-trips one scenario world" 0 "snap cloud";
  check_exit "snap rejects an unknown scenario" 2 "snap bogus"

let test_usage_errors () =
  check_exit "unknown subcommands are usage errors" 2 "frobnicate";
  check_exit "unknown flags are usage errors" 2 "lint --bogus-flag"

let suite =
  [ Alcotest.test_case "scenario demos exit 0, bad modes 2" `Quick
      test_demo_commands;
    Alcotest.test_case "run/chaos validate their load" `Quick test_run_chaos;
    Alcotest.test_case "hunt validates engine and budget" `Quick test_hunt;
    Alcotest.test_case "lint/flow/analyze/contain usage" `Quick
      test_analysis_commands;
    Alcotest.test_case "check rejects bad delta scripts" `Quick
      test_check_deltas;
    Alcotest.test_case "contain verdict and witness codes" `Quick
      test_contain_verdicts;
    Alcotest.test_case "snap digests and round-trips worlds" `Quick test_snap;
    Alcotest.test_case "unknown commands and flags exit 2" `Quick
      test_usage_errors ]
