(* lt_world: copy-on-write snapshots, whole-world fork/restore, the
   deploy fast path, and the hidden-global regressions the snapshot
   work flushed out. *)

open Lt_crypto
open Lateral
module Cow = Lt_world.Cow
module World = Lt_world.World
module D64 = Lt_world.Digest64

(* ---------------------------------------------------------------- *)
(* Cow: snapshot/restore round-trips under arbitrary writes          *)
(* ---------------------------------------------------------------- *)

let cow_len = (3 * Cow.chunk_size) + 137 (* cross chunk boundaries *)

let apply_writes c ws =
  List.iter (fun (pos, ch) -> Cow.set c (pos mod cow_len) ch) ws

let writes_gen = QCheck.(list (pair (int_bound (cow_len - 1)) printable_char))

let prop_cow_snapshot_roundtrip =
  QCheck.Test.make ~name:"cow: snapshot . mutate . restore = id" ~count:100
    QCheck.(pair writes_gen writes_gen)
    (fun (before, after) ->
      let c = Cow.create ~len:cow_len in
      apply_writes c before;
      let d0 = D64.to_hex (Cow.digest c) in
      let s = Cow.snapshot c in
      apply_writes c after;
      Cow.restore c s;
      let first = D64.to_hex (Cow.digest c) = d0 in
      (* a snap survives any number of restores *)
      apply_writes c after;
      Cow.restore c s;
      first && D64.to_hex (Cow.digest c) = d0)

let prop_cow_forks_independent =
  QCheck.Test.make ~name:"cow: two snaps restore independently" ~count:100
    QCheck.(pair writes_gen writes_gen)
    (fun (ws0, ws1) ->
      let c = Cow.create ~len:cow_len in
      apply_writes c ws0;
      let s0 = Cow.snapshot c in
      let d0 = D64.to_hex (Cow.digest c) in
      apply_writes c ws1;
      let s1 = Cow.snapshot c in
      let d1 = D64.to_hex (Cow.digest c) in
      (* writing through one lineage must never leak into the other *)
      Cow.restore c s0;
      Cow.fill c ~pos:0 ~len:cow_len 'Z';
      Cow.restore c s1;
      let r1 = D64.to_hex (Cow.digest c) = d1 in
      Cow.restore c s0;
      r1 && D64.to_hex (Cow.digest c) = d0)

(* ---------------------------------------------------------------- *)
(* a small deployment to fork: microkernel + sgx + sep slice         *)
(* ---------------------------------------------------------------- *)

let make_substrates () =
  let rng = Drbg.create 808L in
  let ca = Rsa.generate ~bits:512 rng in
  let m1 = Lt_hw.Machine.create ~dram_pages:512 () in
  let mk, _ =
    Substrate_kernel.make m1 (Lt_kernel.Sched.Round_robin { quantum = 500 }) ()
  in
  let m2 = Lt_hw.Machine.create ~dram_pages:128 () in
  let sgx, _ = Substrate_sgx.make m2 rng ~ca_name:"intel" ~ca_key:ca () in
  let m3 = Lt_hw.Machine.create ~dram_pages:64 () in
  let sep, _, _ = Substrate_sep.make m3 rng ~device_id:"sep-1" ~private_pages:4 in
  [ ("microkernel", mk); ("sgx", sgx); ("sep", sep) ]

let slice () =
  [ ( Manifest.v ~name:"ui" ~provides:[ "show" ]
        ~connects_to:[ Manifest.conn "tls" "transmit" ]
        ~network_facing:true ~substrate:"microkernel" (),
      fun ctx ~service:_ req ->
        match ctx.Deploy.call_out ~target:"tls" ~service:"transmit" req with
        | Ok r -> "ui:" ^ r
        | Error e -> "ui-error:" ^ e );
    ( Manifest.v ~name:"tls" ~provides:[ "transmit" ] ~substrate:"sgx" (),
      fun ctx ~service:_ req ->
        (* persistent per-launch state, so restore has something to undo *)
        let n =
          match ctx.Deploy.facilities.Substrate.f_load ~key:"count" with
          | Some v -> int_of_string v
          | None -> 0
        in
        ctx.Deploy.facilities.Substrate.f_store ~key:"count"
          (string_of_int (n + 1));
        Printf.sprintf "sent(%s,%d)" req n );
    ( Manifest.v ~name:"vault" ~provides:[ "get" ] ~substrate:"sep" (),
      fun _ ~service:_ _ -> "secret" ) ]

let deploy_slice () =
  match Deploy.deploy ~substrates:(make_substrates ()) (slice ()) with
  | Ok t -> t
  | Error e -> Alcotest.fail e

let call_ok t ~target ~service req =
  match Deploy.call t ~caller:None ~target ~service req with
  | Ok r -> r
  | Error e -> Alcotest.fail e

(* ---------------------------------------------------------------- *)
(* whole-world fork/restore                                          *)
(* ---------------------------------------------------------------- *)

let test_world_fork_restore_digest () =
  let t = deploy_slice () in
  let w = Deploy.world t in
  let d0 = D64.to_hex (World.digest w) in
  let pristine = World.fork w in
  (* mutate across layers: stateful calls, a violation, a crash *)
  ignore (call_ok t ~target:"ui" ~service:"show" "m1");
  ignore (Deploy.call t ~caller:(Some "tls") ~target:"vault" ~service:"get" "x");
  (match Deploy.crash t "tls" with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "mutations moved the digest" true
    (D64.to_hex (World.digest w) <> d0);
  World.restore w pristine;
  Alcotest.(check string) "restore rewinds to the pristine digest" d0
    (D64.to_hex (World.digest w));
  Alcotest.(check bool) "tls is alive again" true (Deploy.is_alive t "tls");
  Alcotest.(check int) "violations rewound" 0
    (List.length (Deploy.violations t));
  (* the restored world behaves exactly like a fresh boot *)
  Alcotest.(check string) "first call counts from zero again" "ui:sent(m1,0)"
    (call_ok t ~target:"ui" ~service:"show" "m1")

let test_world_forks_never_alias () =
  let t = deploy_slice () in
  let w = Deploy.world t in
  let s0 = World.fork w in
  let d0 = D64.to_hex (World.digest w) in
  ignore (call_ok t ~target:"ui" ~service:"show" "a");
  let s1 = World.fork w in
  let d1 = D64.to_hex (World.digest w) in
  Alcotest.(check bool) "s0 and s1 capture distinct states" true (d0 <> d1);
  (* thrash the s0 lineage, then prove s1 is untouched, and vice versa *)
  World.restore w s0;
  ignore (call_ok t ~target:"ui" ~service:"show" "b");
  ignore (call_ok t ~target:"ui" ~service:"show" "c");
  World.restore w s1;
  Alcotest.(check string) "s1 unharmed by the s0 lineage" d1
    (D64.to_hex (World.digest w));
  World.restore w s0;
  Alcotest.(check string) "s0 unharmed by the s1 lineage" d0
    (D64.to_hex (World.digest w));
  World.discard w s1

(* ---------------------------------------------------------------- *)
(* hidden-global regressions (state that used to leak across         *)
(* instances through module-level mutable variables)                 *)
(* ---------------------------------------------------------------- *)

let test_sgx_no_cross_cpu_state () =
  (* enclave ids and monotonic counters were once a module global:
     activity on one CPU shifted ids on every other *)
  let rng = Drbg.create 55L in
  let ca = Rsa.generate ~bits:512 rng in
  let mk_cpu () =
    Lt_sgx.Sgx.init_cpu
      (Lt_hw.Machine.create ~dram_pages:128 ())
      rng ~ca_name:"intel" ~ca_key:ca
  in
  let a = mk_cpu () and b = mk_cpu () in
  let db0 = D64.to_hex (Lt_sgx.Sgx.state_digest b) in
  for i = 1 to 3 do
    ignore
      (Lt_sgx.Sgx.create_enclave a
         ~name:(Printf.sprintf "e%d" i)
         ~code:"code" ~epc_pages:2 ~ecalls:[])
  done;
  Alcotest.(check string) "cpu b untouched by cpu a's enclaves" db0
    (D64.to_hex (Lt_sgx.Sgx.state_digest b))

let test_legacy_os_no_cross_guest_state () =
  (* the in-guest call counter was once a module global shared by
     every booted guest *)
  let k =
    Lt_kernel.Kernel.create
      (Lt_hw.Machine.create ~dram_pages:256 ())
      (Lt_kernel.Sched.Round_robin { quantum = 200 })
  in
  let boot name =
    match
      Lt_kernel.Legacy_os.boot k ~name ~partition:name ~memory_pages:4
        ~processes:[ ("echo", fun _ req -> "echo:" ^ req) ]
    with
    | Ok g -> g
    | Error e -> Alcotest.fail e
  in
  let g1 = boot "android-a" and g2 = boot "android-b" in
  let d2 = D64.to_hex (Lt_kernel.Legacy_os.state_digest g2) in
  for _ = 1 to 5 do
    ignore (Lt_kernel.Legacy_os.call k g1 ~process:"echo" "x")
  done;
  Alcotest.(check string) "guest b untouched by guest a's calls" d2
    (D64.to_hex (Lt_kernel.Legacy_os.state_digest g2))

(* ---------------------------------------------------------------- *)
(* deploy fast path                                                  *)
(* ---------------------------------------------------------------- *)

let test_resolve_respects_manifest () =
  let t = deploy_slice () in
  Alcotest.(check bool) "external edge to a network-facing comp" true
    (Deploy.resolve t ~caller:None ~target:"ui" ~service:"show" <> None);
  Alcotest.(check bool) "declared edge resolves" true
    (Deploy.resolve t ~caller:(Some "ui") ~target:"tls" ~service:"transmit"
     <> None);
  Alcotest.(check bool) "undeclared edge never gets a route" true
    (Deploy.resolve t ~caller:(Some "ui") ~target:"vault" ~service:"get"
     = None);
  Alcotest.(check bool) "unknown target never gets a route" true
    (Deploy.resolve t ~caller:None ~target:"ghost" ~service:"show" = None);
  Alcotest.(check bool) "unknown service never gets a route" true
    (Deploy.resolve t ~caller:None ~target:"ui" ~service:"steal" = None)

let test_call_fast_matches_slow () =
  let t = deploy_slice () in
  let r =
    match Deploy.resolve t ~caller:None ~target:"ui" ~service:"show" with
    | Some r -> r
    | None -> Alcotest.fail "no route"
  in
  (* first call takes the slow path (captures facilities), later calls
     the fast one; both produce exactly what Deploy.call would *)
  Alcotest.(check string) "first (slow) call" "ui:sent(m,0)"
    (Deploy.call_fast t r "m");
  Alcotest.(check string) "second (fast) call" "ui:sent(m,1)"
    (Deploy.call_fast t r "m");
  Alcotest.(check string) "slow pipeline agrees" "ui:sent(m,2)"
    (call_ok t ~target:"ui" ~service:"show" "m")

let test_call_fast_sees_crash_and_relaunch () =
  let t = deploy_slice () in
  let r =
    match Deploy.resolve t ~caller:None ~target:"ui" ~service:"show" with
    | Some r -> r
    | None -> Alcotest.fail "no route"
  in
  ignore (Deploy.call_fast t r "warm");
  ignore (Deploy.call_fast t r "warm");
  (match Deploy.crash t "ui" with Ok () -> () | Error e -> Alcotest.fail e);
  (match Deploy.call_fast t r "m" with
   | _ -> Alcotest.fail "call into a dead component must fail"
   | exception Deploy.Call_failed _ -> ());
  (match Deploy.relaunch t "ui" with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Alcotest.(check string) "works again after relaunch" "ui:sent(m,2)"
    (Deploy.call_fast t r "m")

let test_call_fast_zero_alloc () =
  (* a leaf behaviour returning a constant: the untraced fast path
     through it must not touch the minor heap at all *)
  let substrates = make_substrates () in
  let comps =
    [ ( Manifest.v ~name:"echo" ~provides:[ "ping" ] ~network_facing:true
          ~substrate:"microkernel" (),
        fun _ ~service:_ _ -> "pong" ) ]
  in
  let t =
    match Deploy.deploy ~substrates comps with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let r =
    match Deploy.resolve t ~caller:None ~target:"echo" ~service:"ping" with
    | Some r -> r
    | None -> Alcotest.fail "no route"
  in
  ignore (Deploy.call_fast t r "x");
  ignore (Deploy.call_fast t r "x");
  let n = 10_000 in
  let before = Gc.minor_words () in
  for _ = 1 to n do
    ignore (Sys.opaque_identity (Deploy.call_fast t r "x"))
  done;
  let spent = Gc.minor_words () -. before in
  (* allow the float boxing of [before] itself, nothing per-call *)
  if spent > 64.0 then
    Alcotest.failf "fast path allocated %.0f minor words over %d calls" spent n

(* ---------------------------------------------------------------- *)
(* chaos sessions: rewinding the world must not change a single byte *)
(* ---------------------------------------------------------------- *)

let test_chaos_session_deterministic () =
  let scenario = Lt_load.Load.Meter and seed = 11 and requests = 30 in
  let plan = { Lt_resil.Chaos.no_chaos with kill_pct = 25; mid_ipc_pct = 10 } in
  let render = function
    | Ok (report, _) -> Lt_resil.Chaos.render_report_text report
    | Error e -> Alcotest.fail e
  in
  let fresh =
    render (Lt_resil.Chaos.run ~plan ~scenario ~requests ~seed ())
  in
  let session =
    match Lt_resil.Chaos.session ~scenario ~seed () with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let first =
    render (Lt_resil.Chaos.run ~session ~plan ~scenario ~requests ~seed ())
  in
  let second =
    render (Lt_resil.Chaos.run ~session ~plan ~scenario ~requests ~seed ())
  in
  Alcotest.(check string) "session run = sessionless run" fresh first;
  Alcotest.(check string) "session rewinds byte-identically" fresh second

let test_chaos_session_mismatch_is_loud () =
  let session =
    match Lt_resil.Chaos.session ~scenario:Lt_load.Load.Meter ~seed:11 () with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  (match
     Lt_resil.Chaos.run ~session ~scenario:Lt_load.Load.Cloud ~requests:5
       ~seed:11 ()
   with
   | Ok _ -> Alcotest.fail "wrong scenario must be rejected"
   | Error _ -> ());
  match
    Lt_resil.Chaos.run ~session ~scenario:Lt_load.Load.Meter ~requests:5
      ~seed:12 ()
  with
  | Ok _ -> Alcotest.fail "wrong seed must be rejected"
  | Error _ -> ()

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_cow_snapshot_roundtrip; prop_cow_forks_independent ]
  @ [ Alcotest.test_case "world: fork/restore digest round-trip" `Quick
        test_world_fork_restore_digest;
      Alcotest.test_case "world: forks never alias" `Quick
        test_world_forks_never_alias;
      Alcotest.test_case "sgx: no cross-cpu hidden state" `Quick
        test_sgx_no_cross_cpu_state;
      Alcotest.test_case "legacy_os: no cross-guest hidden state" `Quick
        test_legacy_os_no_cross_guest_state;
      Alcotest.test_case "deploy: resolve respects the manifest" `Quick
        test_resolve_respects_manifest;
      Alcotest.test_case "deploy: fast call = slow call" `Quick
        test_call_fast_matches_slow;
      Alcotest.test_case "deploy: fast path sees crash/relaunch" `Quick
        test_call_fast_sees_crash_and_relaunch;
      Alcotest.test_case "deploy: untraced fast call is alloc-free" `Quick
        test_call_fast_zero_alloc;
      Alcotest.test_case "chaos: session = sessionless, byte for byte" `Slow
        test_chaos_session_deterministic;
      Alcotest.test_case "chaos: session misuse is an error" `Quick
        test_chaos_session_mismatch_is_loud ]
