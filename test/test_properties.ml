(* Property-based tests across the stack: model-based storage checking,
   total parsers under fuzz, scheduler laws, bucket invariants. *)

open Lt_crypto
module Block = Lt_storage.Block
module Fs = Lt_storage.Legacy_fs
module Vpfs = Lt_storage.Vpfs

(* ------------------------------------------------------------------ *)
(* model-based: VPFS against a functional Map reference               *)
(* ------------------------------------------------------------------ *)

type fs_op =
  | Write of string * string
  | Read of string
  | Delete of string
  | Remount

let op_gen =
  QCheck.Gen.(
    let path = map (fun i -> Printf.sprintf "/f%d" i) (int_range 0 5) in
    frequency
      [ (4, map2 (fun p n -> Write (p, String.make n 'x')) path (int_range 0 2500));
        (3, map (fun p -> Read p) path);
        (1, map (fun p -> Delete p) path);
        (1, return Remount) ])

let show_op = function
  | Write (p, d) -> Printf.sprintf "write %s (%d bytes)" p (String.length d)
  | Read p -> "read " ^ p
  | Delete p -> "delete " ^ p
  | Remount -> "remount"

let prop_vpfs_model =
  QCheck.Test.make ~name:"vpfs behaves like a map (incl. honest remounts)" ~count:60
    (QCheck.make ~print:(fun ops -> String.concat "; " (List.map show_op ops))
       (QCheck.Gen.list_size (QCheck.Gen.int_range 1 25) op_gen))
    (fun ops ->
      let dev = Block.create ~blocks:4096 in
      let fs = ref (Fs.format dev) in
      let vpfs = ref (Vpfs.create ~master_key:"model-key" !fs) in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun op ->
          if !ok then
            match op with
            | Write (p, d) ->
              (match Vpfs.write !vpfs p d with
               | Ok () -> model := (p, d) :: List.remove_assoc p !model
               | Error _ -> ok := false)
            | Read p ->
              (match (Vpfs.read !vpfs p, List.assoc_opt p !model) with
               | Ok d, Some d' when d = d' -> ()
               | Error (Vpfs.Not_found _), None -> ()
               | _, _ -> ok := false)
            | Delete p ->
              (match (Vpfs.delete !vpfs p, List.mem_assoc p !model) with
               | Ok (), true -> model := List.remove_assoc p !model
               | Error (Vpfs.Not_found _), false -> ()
               | _, _ -> ok := false)
            | Remount ->
              let root = Vpfs.root !vpfs in
              Fs.sync !fs;
              (match Fs.mount dev with
               | Error _ -> ok := false
               | Ok fs2 ->
                 fs := fs2;
                 (match Vpfs.open_ ~master_key:"model-key" ~expected_root:root fs2 with
                  | Ok v2 -> vpfs := v2
                  | Error _ -> ok := false)))
        ops;
      !ok)

(* legacy fs against the same model, without remount-root bookkeeping *)
let prop_legacy_fs_model =
  QCheck.Test.make ~name:"legacy fs behaves like a map" ~count:60
    (QCheck.make ~print:(fun ops -> String.concat "; " (List.map show_op ops))
       (QCheck.Gen.list_size (QCheck.Gen.int_range 1 25) op_gen))
    (fun ops ->
      let dev = Block.create ~blocks:4096 in
      let fs = ref (Fs.format dev) in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun op ->
          if !ok then
            match op with
            | Write (p, d) ->
              (match Fs.write !fs p d with
               | Ok () -> model := (p, d) :: List.remove_assoc p !model
               | Error Fs.No_space -> () (* model stays; fs unchanged for this op *)
               | Error _ -> ok := false)
            | Read p ->
              (match (Fs.read !fs p, List.assoc_opt p !model) with
               | Ok d, Some d' when d = d' -> ()
               | Error (Fs.Not_found _), None -> ()
               | _, _ -> ok := false)
            | Delete p ->
              (match (Fs.delete !fs p, List.mem_assoc p !model) with
               | Ok (), true -> model := List.remove_assoc p !model
               | Error (Fs.Not_found _), false -> ()
               | _, _ -> ok := false)
            | Remount ->
              Fs.sync !fs;
              (match Fs.mount dev with
               | Ok fs2 -> fs := fs2
               | Error _ -> ok := false))
        ops;
      !ok)

(* ------------------------------------------------------------------ *)
(* total parsers: no input crashes a decoder                           *)
(* ------------------------------------------------------------------ *)

let no_exn f = try ignore (f ()); true with _ -> false

let prop_wire_total =
  QCheck.Test.make ~name:"wire decoder is total" ~count:500 QCheck.string
    (fun s -> no_exn (fun () -> Wire.decode s) && no_exn (fun () -> Wire.untag s))

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire encode/decode roundtrip" ~count:300
    QCheck.(list (string_of_size (Gen.int_range 0 50)))
    (fun fields -> Wire.decode (Wire.encode fields) = Some fields)

let prop_cert_total =
  QCheck.Test.make ~name:"cert decoder is total" ~count:500 QCheck.string
    (fun s -> no_exn (fun () -> Cert.of_string s))

let prop_aead_wire_total =
  QCheck.Test.make ~name:"aead wire decoder is total" ~count:500 QCheck.string
    (fun s -> no_exn (fun () -> Speck.Aead.of_wire s))

let prop_evidence_total =
  QCheck.Test.make ~name:"attestation evidence decoder is total" ~count:500
    QCheck.string
    (fun s -> no_exn (fun () -> Lateral.Attestation.of_wire s))

let prop_sealed_total =
  QCheck.Test.make ~name:"tpm sealed-blob decoder is total" ~count:500 QCheck.string
    (fun s -> no_exn (fun () -> Lt_tpm.Tpm.sealed_of_wire s))

(* ------------------------------------------------------------------ *)
(* crypto laws                                                          *)
(* ------------------------------------------------------------------ *)

let small_bn = QCheck.Gen.(map Bignum.of_int (int_range 1 1_000_000))

let prop_modpow_law =
  QCheck.Test.make ~name:"bignum: a^(b+c) = a^b * a^c (mod m)" ~count:100
    (QCheck.make QCheck.Gen.(tup4 small_bn small_bn small_bn small_bn))
    (fun (a, b, c, m) ->
      QCheck.assume (not (Bignum.is_zero m));
      let open Bignum in
      let lhs = modpow ~base:a ~exp:(add b c) ~modulus:m in
      let rhs = rem (mul (modpow ~base:a ~exp:b ~modulus:m)
                       (modpow ~base:a ~exp:c ~modulus:m)) m in
      equal lhs rhs)

let prop_gcd_divides =
  QCheck.Test.make ~name:"bignum: gcd divides both arguments" ~count:200
    (QCheck.make QCheck.Gen.(tup2 small_bn small_bn))
    (fun (a, b) ->
      let g = Bignum.gcd a b in
      Bignum.is_zero g
      || (Bignum.is_zero (Bignum.rem a g) && Bignum.is_zero (Bignum.rem b g)))

let prop_modinv_law =
  QCheck.Test.make ~name:"bignum: a * modinv(a,m) = 1 (mod m)" ~count:200
    (QCheck.make QCheck.Gen.(tup2 small_bn small_bn))
    (fun (a, m) ->
      QCheck.assume (Bignum.compare m Bignum.two > 0);
      match Bignum.modinv a m with
      | None -> not (Bignum.equal (Bignum.gcd a m) Bignum.one)
      | Some inv -> Bignum.equal (Bignum.rem (Bignum.mul a inv) m) Bignum.one)

let prop_speck_bijective =
  QCheck.Test.make ~name:"speck: decrypt . encrypt = id for random keys" ~count:300
    QCheck.(tup3 (string_of_size (Gen.return 16)) (int_range 0 0x3FFFFFFF)
              (int_range 0 0x3FFFFFFF))
    (fun (key, x, y) ->
      let k = Speck.key_of_string key in
      Speck.decrypt_block k (Speck.encrypt_block k (x, y)) = (x, y))

let prop_cert_roundtrip =
  QCheck.Test.make ~name:"cert: wire roundtrip preserves verification" ~count:20
    (QCheck.make QCheck.Gen.(int_range 1 1000))
    (fun seed ->
      let rng = Drbg.create (Int64.of_int seed) in
      let ca = Rsa.generate ~bits:384 rng in
      let leaf = Rsa.generate ~bits:384 rng in
      let cert = Cert.issue ~ca_name:"ca" ~ca_key:ca ~subject:"leaf" leaf.Rsa.pub in
      match Cert.of_string (Cert.to_string cert) with
      | Some c -> Cert.verify ~issuer_pub:ca.Rsa.pub c
      | None -> false)

let prop_hkdf_deterministic =
  QCheck.Test.make ~name:"hkdf deterministic & input-sensitive" ~count:200
    QCheck.(tup3 small_string small_string small_string)
    (fun (secret, salt, info) ->
      let d1 = Hkdf.derive ~secret ~salt ~info 32 in
      let d2 = Hkdf.derive ~secret ~salt ~info 32 in
      let d3 = Hkdf.derive ~secret:(secret ^ "x") ~salt ~info 32 in
      d1 = d2 && d1 <> d3)

(* ------------------------------------------------------------------ *)
(* scheduler laws                                                       *)
(* ------------------------------------------------------------------ *)

let slots_gen =
  QCheck.Gen.(
    list_size (int_range 1 5)
      (map2 (fun p len -> (Printf.sprintf "p%d" p, 1 + len)) (int_range 0 3)
         (int_range 0 200)))

let prop_tdma_slot_total_coverage =
  QCheck.Test.make ~name:"tdma: every instant belongs to exactly one slot" ~count:200
    (QCheck.make QCheck.Gen.(tup2 slots_gen (int_range 0 100_000)))
    (fun (slots, now) ->
      let p, slot_end = Lt_kernel.Sched.tdma_slot_at slots now in
      (* the owning partition is one of the configured ones, and the slot
         end is in the future but within one cycle *)
      let cycle = List.fold_left (fun a (_, l) -> a + l) 0 slots in
      List.mem_assoc p slots && slot_end > now && slot_end <= now + cycle)

let prop_tdma_stable_within_slot =
  QCheck.Test.make ~name:"tdma: owner constant until slot end" ~count:200
    (QCheck.make QCheck.Gen.(tup2 slots_gen (int_range 0 10_000)))
    (fun (slots, now) ->
      let p, slot_end = Lt_kernel.Sched.tdma_slot_at slots now in
      let p', _ = Lt_kernel.Sched.tdma_slot_at slots (slot_end - 1) in
      p = p')

let prop_rr_all_threads_finish =
  QCheck.Test.make ~name:"round robin: every thread finishes (no starvation)" ~count:50
    (QCheck.make QCheck.Gen.(tup2 (int_range 1 8) (int_range 1 50)))
    (fun (nthreads, work) ->
      let open Lt_kernel in
      let k =
        Kernel.create (Lt_hw.Machine.create ~dram_pages:64 ())
          (Sched.Round_robin { quantum = 20 })
      in
      let task = Kernel.create_task k ~name:"t" ~partition:"p" in
      let finished = ref 0 in
      for _ = 1 to nthreads do
        ignore
          (Kernel.create_thread k task ~name:"w" ~prio:1 (fun () ->
               for _ = 1 to work do
                 User.consume 3;
                 User.yield ()
               done;
               incr finished))
      done;
      ignore (Kernel.run k);
      !finished = nthreads)

(* ------------------------------------------------------------------ *)
(* gateway token bucket                                                 *)
(* ------------------------------------------------------------------ *)

let prop_bucket_never_exceeds_burst =
  QCheck.Test.make
    ~name:"gateway: forwarded in any instant never exceeds burst" ~count:100
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 80) (int_range 0 20)))
    (fun times ->
      let module Net = Lt_net.Net in
      let module Gateway = Lt_net.Gateway in
      let net = Net.create () in
      Result.get_ok (Net.register net "dst");
      let burst = 5.0 in
      let gw = Gateway.create ~whitelist:[ "dst" ] ~tokens_per_tick:0.5 ~burst in
      let times = List.sort Stdlib.compare times in
      let per_instant = Hashtbl.create 8 in
      List.iter
        (fun now ->
          if Gateway.submit gw net ~now ~src:"s" ~dst:"dst" "x" = Gateway.Forwarded
          then
            Hashtbl.replace per_instant now
              (1 + Option.value ~default:0 (Hashtbl.find_opt per_instant now)))
        times;
      Hashtbl.fold (fun _ n acc -> acc && n <= int_of_float burst) per_instant true)

(* ------------------------------------------------------------------ *)
(* cache partitioning invariant                                         *)
(* ------------------------------------------------------------------ *)

let prop_partitioned_domains_never_interfere =
  QCheck.Test.make ~name:"cache: partitioned domains cannot evict each other"
    ~count:100
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 100) (tup2 bool (int_range 0 10_000))))
    (fun accesses ->
      let cache = Lt_hw.Cache.create ~sets:16 ~ways:2 in
      Lt_hw.Cache.partition cache ~domain:"a" ~lo:0 ~hi:7;
      Lt_hw.Cache.partition cache ~domain:"b" ~lo:8 ~hi:15;
      List.iter
        (fun (is_a, addr) ->
          let domain = if is_a then "a" else "b" in
          ignore (Lt_hw.Cache.access cache ~domain ~addr:(addr * 64)))
        accesses;
      List.for_all (fun s -> s < 8) (Lt_hw.Cache.resident_sets cache ~domain:"a")
      && List.for_all (fun s -> s >= 8) (Lt_hw.Cache.resident_sets cache ~domain:"b"))

(* ------------------------------------------------------------------ *)
(* mee: any single physical byte flip in written data is detected       *)
(* ------------------------------------------------------------------ *)

let prop_mee_detects_any_flip =
  QCheck.Test.make ~name:"mee: any physical bit flip detected" ~count:100
    (QCheck.make QCheck.Gen.(tup2 (int_range 0 4095) (int_range 0 7)))
    (fun (off, bit) ->
      let mem =
        Lt_hw.Phys_mem.create
          [ { Lt_hw.Phys_mem.name = "dram"; base = 0; size = 4096; on_chip = false;
              writable = true } ]
      in
      Lt_hw.Phys_mem.install_mee mem ~base:0 ~size:4096 ~key:"k";
      Lt_hw.Phys_mem.cpu_write mem ~addr:0 (String.make 4096 'd');
      let tamper = Lt_hw.Tamper.create mem in
      Lt_hw.Tamper.flip_bit tamper ~addr:off ~bit;
      (* reading the containing block must raise *)
      try
        ignore (Lt_hw.Phys_mem.cpu_read mem ~addr:(off / 64 * 64) ~len:64);
        false
      with Lt_hw.Phys_mem.Integrity_violation _ -> true)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_vpfs_model; prop_legacy_fs_model; prop_wire_total; prop_wire_roundtrip;
      prop_cert_total; prop_aead_wire_total; prop_evidence_total; prop_sealed_total;
      prop_modpow_law; prop_gcd_divides; prop_modinv_law; prop_speck_bijective;
      prop_cert_roundtrip; prop_hkdf_deterministic;
      prop_tdma_slot_total_coverage; prop_tdma_stable_within_slot;
      prop_rr_all_threads_finish; prop_bucket_never_exceeds_burst;
      prop_partitioned_domains_never_interfere; prop_mee_detects_any_flip ]
