(* Snapshot smoke for the three scenario worlds, attached to @runtest
   via the @snap alias: every scenario must (a) deploy to the same
   world digest twice at the same seed (the boot is deterministic),
   and (b) come back digest-identical after fork → mutate → restore.
   Any layer whose take-thunk aliases live mutable state, or whose
   digest hashes transient run state, breaks (b) loudly here before a
   fuzz or chaos run can be silently poisoned by it. *)

module Drbg = Lt_crypto.Drbg
module World = Lt_world.World
module D64 = Lt_world.Digest64
module Load = Lt_load.Load

let failures = ref 0

let check what ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "snap_check: FAIL %s\n" what
  end

let boot scenario =
  match Load.deploy_scenario (Drbg.create 0x5eedL) scenario with
  | Ok d -> d
  | Error e ->
    Printf.eprintf "snap_check: %s failed to boot: %s\n"
      (Load.scenario_name scenario) e;
    exit 1

let mutate (d : Load.deployed) =
  (* a few requests from the scenario's own seeded mix *)
  let rng = Drbg.create 0xfeedL in
  for i = 0 to 4 do
    let target, service, payload = d.Load.d_mix rng i in
    ignore
      (Lateral.Deploy.call d.Load.d_deploy ~caller:None ~target ~service
         payload)
  done

let () =
  List.iter
    (fun scenario ->
      let name = Load.scenario_name scenario in
      let d = boot scenario in
      let w = d.Load.d_world in
      let d0 = D64.to_hex (World.digest w) in
      (* same seed, same world: the digest is a boot invariant *)
      let d0' = D64.to_hex (World.digest (boot scenario).Load.d_world) in
      check (name ^ ": double boot digests agree") (d0 = d0');
      let pristine = World.fork w in
      mutate d;
      let dirty = D64.to_hex (World.digest w) in
      check (name ^ ": the request mix moves the digest") (dirty <> d0);
      World.restore w pristine;
      check (name ^ ": restore rewinds to the boot digest")
        (D64.to_hex (World.digest w) = d0);
      (* a second rewind from the same snap, after more damage *)
      mutate d;
      World.restore w pristine;
      check (name ^ ": the snap survives a second restore")
        (D64.to_hex (World.digest w) = d0);
      Printf.printf "snap_check: %-5s world %s\n" name d0)
    Load.all_scenarios;
  if !failures > 0 then exit 1
