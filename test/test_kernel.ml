(* Microkernel: IPC, capabilities, spatial and temporal isolation. *)

open Lt_kernel

let make_kernel ?(policy = Sched.Round_robin { quantum = 100 }) () =
  let mach = Lt_hw.Machine.create () in
  Kernel.create mach policy

let map_ok k task ~vpage ~pages perm =
  match Kernel.map_memory k task ~vpage ~pages perm with
  | Ok () -> ()
  | Error Kernel.Out_of_frames -> Alcotest.fail "map_memory: out of frames"

let test_ping_pong () =
  let k = make_kernel () in
  let client_task = Kernel.create_task k ~name:"client" ~partition:"a" in
  let server_task = Kernel.create_task k ~name:"server" ~partition:"a" in
  let ep = Kernel.create_endpoint k ~name:"svc" in
  let c_cap = Kernel.grant k client_task ep ~rights:{ send = true; recv = false } ~badge:7 in
  let s_cap = Kernel.grant k server_task ep ~rights:{ send = false; recv = true } ~badge:0 in
  let got = ref "" in
  let badge_seen = ref (-1) in
  let _ =
    Kernel.create_thread k server_task ~name:"server" ~prio:1 (fun () ->
        let badge, m, reply = User.recv ~cap:s_cap in
        badge_seen := badge;
        match reply with
        | Some h -> User.reply h (Sys.msg ("pong:" ^ m.Sys.payload))
        | None -> ())
  in
  let _ =
    Kernel.create_thread k client_task ~name:"client" ~prio:1 (fun () ->
        let r = User.call ~cap:c_cap (Sys.msg "ping") in
        got := r.Sys.payload)
  in
  let q = Kernel.run k in
  Alcotest.(check string) "quiescent" "quiescent" (Format.asprintf "%a" Kernel.pp_quiescence q);
  Alcotest.(check string) "reply received" "pong:ping" !got;
  Alcotest.(check int) "badge identifies client" 7 !badge_seen;
  Alcotest.(check bool) "ipc counted" true ((Kernel.stats k).ipc_messages >= 2)

let test_send_recv_order_independent () =
  (* receiver first, then sender; and sender first, then receiver *)
  List.iter
    (fun receiver_first ->
      let k = make_kernel () in
      let t1 = Kernel.create_task k ~name:"t1" ~partition:"a" in
      let t2 = Kernel.create_task k ~name:"t2" ~partition:"a" in
      let ep = Kernel.create_endpoint k ~name:"ep" in
      let send_cap = Kernel.grant k t1 ep ~rights:{ send = true; recv = false } ~badge:1 in
      let recv_cap = Kernel.grant k t2 ep ~rights:{ send = false; recv = true } ~badge:0 in
      let got = ref "" in
      let spawn_sender () =
        ignore
          (Kernel.create_thread k t1 ~name:"sender" ~prio:1 (fun () ->
               User.send ~cap:send_cap (Sys.msg "data")))
      in
      let spawn_receiver () =
        ignore
          (Kernel.create_thread k t2 ~name:"receiver" ~prio:1 (fun () ->
               let _, m, _ = User.recv ~cap:recv_cap in
               got := m.Sys.payload))
      in
      if receiver_first then begin spawn_receiver (); spawn_sender () end
      else begin spawn_sender (); spawn_receiver () end;
      ignore (Kernel.run k);
      Alcotest.(check string) "message delivered" "data" !got)
    [ true; false ]

let test_cap_rights_enforced () =
  let k = make_kernel () in
  let t = Kernel.create_task k ~name:"t" ~partition:"a" in
  let ep = Kernel.create_endpoint k ~name:"ep" in
  (* only a recv cap: sending on it must fail *)
  let cap = Kernel.grant k t ep ~rights:{ send = false; recv = true } ~badge:0 in
  let denied = ref false in
  let _ =
    Kernel.create_thread k t ~name:"th" ~prio:1 (fun () ->
        try User.send ~cap (Sys.msg "x") with User.Ipc_error _ -> denied := true)
  in
  ignore (Kernel.run k);
  Alcotest.(check bool) "send denied" true !denied;
  Alcotest.(check bool) "denial counted" true ((Kernel.stats k).denied_cap_uses > 0)

let test_invalid_slot_denied () =
  let k = make_kernel () in
  let t = Kernel.create_task k ~name:"t" ~partition:"a" in
  let denied = ref false in
  let _ =
    Kernel.create_thread k t ~name:"th" ~prio:1 (fun () ->
        try ignore (User.call ~cap:99 (Sys.msg "x")) with User.Ipc_error _ -> denied := true)
  in
  ignore (Kernel.run k);
  Alcotest.(check bool) "bogus slot denied" true !denied

let test_revoke () =
  let k = make_kernel () in
  let t1 = Kernel.create_task k ~name:"t1" ~partition:"a" in
  let t2 = Kernel.create_task k ~name:"t2" ~partition:"a" in
  let ep = Kernel.create_endpoint k ~name:"ep" in
  let send_cap = Kernel.grant k t1 ep ~rights:{ send = true; recv = false } ~badge:1 in
  let recv_cap = Kernel.grant k t2 ep ~rights:{ send = false; recv = true } ~badge:0 in
  ignore recv_cap;
  Kernel.revoke k t1 ~slot:send_cap;
  let denied = ref false in
  let _ =
    Kernel.create_thread k t1 ~name:"th" ~prio:1 (fun () ->
        try User.send ~cap:send_cap (Sys.msg "x") with User.Ipc_error _ -> denied := true)
  in
  ignore (Kernel.run k);
  Alcotest.(check bool) "revoked cap unusable" true !denied

let test_cap_transfer () =
  (* t1 holds a cap to ep2 and delegates it to t2 in a message *)
  let k = make_kernel () in
  let t1 = Kernel.create_task k ~name:"t1" ~partition:"a" in
  let t2 = Kernel.create_task k ~name:"t2" ~partition:"a" in
  let t3 = Kernel.create_task k ~name:"t3" ~partition:"a" in
  let ep12 = Kernel.create_endpoint k ~name:"ep12" in
  let ep3 = Kernel.create_endpoint k ~name:"ep3" in
  let t1_send = Kernel.grant k t1 ep12 ~rights:{ send = true; recv = false } ~badge:0 in
  let t1_ep3 = Kernel.grant k t1 ep3 ~rights:{ send = true; recv = false } ~badge:5 in
  let t2_recv = Kernel.grant k t2 ep12 ~rights:{ send = false; recv = true } ~badge:0 in
  let t3_recv = Kernel.grant k t3 ep3 ~rights:{ send = false; recv = true } ~badge:0 in
  let t3_got = ref (-1) in
  let _ =
    Kernel.create_thread k t1 ~name:"delegator" ~prio:1 (fun () ->
        User.send ~cap:t1_send { Sys.payload = "here is ep3"; caps = [ t1_ep3 ] })
  in
  let _ =
    Kernel.create_thread k t2 ~name:"delegate" ~prio:1 (fun () ->
        let _, m, _ = User.recv ~cap:t2_recv in
        match m.Sys.caps with
        | [ slot ] -> User.send ~cap:slot (Sys.msg "via delegated cap")
        | _ -> failwith "no cap received")
  in
  let _ =
    Kernel.create_thread k t3 ~name:"target" ~prio:1 (fun () ->
        let badge, _, _ = User.recv ~cap:t3_recv in
        t3_got := badge)
  in
  ignore (Kernel.run k);
  Alcotest.(check int) "delegated cap works, badge preserved" 5 !t3_got

let test_derive_cap_monotone () =
  let k = make_kernel () in
  let t1 = Kernel.create_task k ~name:"t1" ~partition:"a" in
  let t2 = Kernel.create_task k ~name:"t2" ~partition:"a" in
  let ep = Kernel.create_endpoint k ~name:"ep" in
  let full = Kernel.grant k t1 ep ~rights:{ send = true; recv = true } ~badge:9 in
  (* attenuate to send-only *)
  let send_only =
    match Kernel.derive_cap k t1 ~slot:full ~rights:{ send = true; recv = false } with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  (* widening a send-only cap back to recv is refused *)
  (match Kernel.derive_cap k t1 ~slot:send_only ~rights:{ send = true; recv = true } with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "derivation widened rights!");
  (match Kernel.derive_cap k t1 ~slot:99 ~rights:{ send = false; recv = false } with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "derived from empty slot");
  (* the attenuated cap still works for sending and keeps its badge *)
  let recv_cap = Kernel.grant k t2 ep ~rights:{ send = false; recv = true } ~badge:0 in
  let badge_seen = ref (-1) in
  let _ =
    Kernel.create_thread k t2 ~name:"server" ~prio:1 (fun () ->
        let badge, _, reply = User.recv ~cap:recv_cap in
        badge_seen := badge;
        match reply with Some h -> User.reply h (Sys.msg "ok") | None -> ())
  in
  let _ =
    Kernel.create_thread k t1 ~name:"client" ~prio:1 (fun () ->
        ignore (User.call ~cap:send_only (Sys.msg "via derived")))
  in
  ignore (Kernel.run k);
  Alcotest.(check int) "badge inherited, not forged" 9 !badge_seen

let test_memory_isolation () =
  (* two tasks get distinct frames; same vaddr maps to different memory *)
  let k = make_kernel () in
  let t1 = Kernel.create_task k ~name:"t1" ~partition:"a" in
  let t2 = Kernel.create_task k ~name:"t2" ~partition:"a" in
  map_ok k t1 ~vpage:16 ~pages:1 Lt_hw.Mmu.rw;
  map_ok k t2 ~vpage:16 ~pages:1 Lt_hw.Mmu.rw;
  let overlap =
    List.exists (fun f -> List.mem f (Kernel.task_frames t2)) (Kernel.task_frames t1)
  in
  Alcotest.(check bool) "no shared frames" false overlap;
  let vaddr = 16 * Lt_hw.Mmu.page_size in
  let r1 = ref "" and r2 = ref "" in
  let _ =
    Kernel.create_thread k t1 ~name:"w1" ~prio:1 (fun () ->
        User.mem_write ~vaddr "SECRET-A";
        r1 := User.mem_read ~vaddr ~len:8)
  in
  let _ =
    Kernel.create_thread k t2 ~name:"w2" ~prio:1 (fun () ->
        User.mem_write ~vaddr "SECRET-B";
        r2 := User.mem_read ~vaddr ~len:8)
  in
  ignore (Kernel.run k);
  Alcotest.(check string) "t1 sees its own data" "SECRET-A" !r1;
  Alcotest.(check string) "t2 sees its own data" "SECRET-B" !r2

let test_map_out_of_frames () =
  (* regression: exhausting DRAM is a typed error, not a Failure *)
  let k = Kernel.create (Lt_hw.Machine.create ~dram_pages:4 ())
      (Sched.Round_robin { quantum = 100 }) in
  let t = Kernel.create_task k ~name:"t" ~partition:"a" in
  map_ok k t ~vpage:0 ~pages:4 Lt_hw.Mmu.rw;
  (match Kernel.map_memory k t ~vpage:8 ~pages:1 Lt_hw.Mmu.rw with
   | Error Kernel.Out_of_frames -> ()
   | Ok () -> Alcotest.fail "expected Out_of_frames");
  (* the task keeps what it already had *)
  Alcotest.(check int) "existing mappings intact" 4
    (List.length (Kernel.task_frames t))

let test_unmapped_access_faults () =
  let k = make_kernel () in
  let t = Kernel.create_task k ~name:"t" ~partition:"a" in
  let faulted = ref false in
  let _ =
    Kernel.create_thread k t ~name:"th" ~prio:1 (fun () ->
        try ignore (User.mem_read ~vaddr:0x100000 ~len:4)
        with User.Fault _ -> faulted := true)
  in
  ignore (Kernel.run k);
  Alcotest.(check bool) "fault raised" true !faulted;
  Alcotest.(check bool) "fault counted" true ((Kernel.stats k).faults > 0)

let test_readonly_page () =
  let k = make_kernel () in
  let t = Kernel.create_task k ~name:"t" ~partition:"a" in
  map_ok k t ~vpage:4 ~pages:1 Lt_hw.Mmu.ro;
  let faulted = ref false in
  let _ =
    Kernel.create_thread k t ~name:"th" ~prio:1 (fun () ->
        try User.mem_write ~vaddr:(4 * Lt_hw.Mmu.page_size) "x"
        with User.Fault _ -> faulted := true)
  in
  ignore (Kernel.run k);
  Alcotest.(check bool) "write to ro page faults" true !faulted

let test_sleep_and_time () =
  let k = make_kernel () in
  let t = Kernel.create_task k ~name:"t" ~partition:"a" in
  let delta = ref 0 in
  let _ =
    Kernel.create_thread k t ~name:"sleeper" ~prio:1 (fun () ->
        let t0 = User.time () in
        User.sleep 500;
        delta := User.time () - t0)
  in
  ignore (Kernel.run k);
  Alcotest.(check bool) "slept at least 500 ticks" true (!delta >= 500)

let test_crash_isolated () =
  (* a crashing thread must not stop others from finishing *)
  let k = make_kernel () in
  let t = Kernel.create_task k ~name:"t" ~partition:"a" in
  let crasher =
    Kernel.create_thread k t ~name:"crash" ~prio:1 (fun () -> failwith "boom")
  in
  let survived = ref false in
  let _ =
    Kernel.create_thread k t ~name:"worker" ~prio:1 (fun () ->
        User.consume 10;
        survived := true)
  in
  let q = Kernel.run k in
  Alcotest.(check bool) "quiescent" true (q = Kernel.Quiescent);
  Alcotest.(check bool) "worker survived" true !survived;
  Alcotest.(check bool) "crash recorded" true (Kernel.thread_crash k crasher <> None);
  Alcotest.(check bool) "crasher dead" false (Kernel.thread_alive k crasher)

let test_deadlock_detected () =
  let k = make_kernel () in
  let t = Kernel.create_task k ~name:"t" ~partition:"a" in
  let ep = Kernel.create_endpoint k ~name:"ep" in
  let cap = Kernel.grant k t ep ~rights:{ send = true; recv = true } ~badge:0 in
  let _ =
    Kernel.create_thread k t ~name:"waiter" ~prio:1 (fun () ->
        ignore (User.recv ~cap))
  in
  let q = Kernel.run k in
  Alcotest.(check bool) "deadlock detected" true (q = Kernel.Deadlock)

let test_fixed_priority_order () =
  let k = make_kernel ~policy:(Sched.Fixed_priority { quantum = 1000 }) () in
  let t = Kernel.create_task k ~name:"t" ~partition:"a" in
  let order = ref [] in
  let mk name prio =
    ignore
      (Kernel.create_thread k t ~name ~prio (fun () ->
           User.consume 1;
           order := name :: !order))
  in
  mk "low" 10;
  mk "high" 1;
  mk "mid" 5;
  ignore (Kernel.run k);
  Alcotest.(check (list string)) "priority order" [ "high"; "mid"; "low" ]
    (List.rev !order)

let test_tdma_partition_exclusive () =
  (* in partition A's slot, only A's threads run *)
  let k =
    make_kernel ~policy:(Sched.Tdma { slots = [ ("A", 100); ("B", 100) ] }) ()
  in
  let ta = Kernel.create_task k ~name:"ta" ~partition:"A" in
  let tb = Kernel.create_task k ~name:"tb" ~partition:"B" in
  let a_windows = ref [] and b_windows = ref [] in
  let worker windows () =
    for _ = 1 to 20 do
      let t0 = User.time () in
      User.consume 10;
      windows := (t0, User.time ()) :: !windows
    done
  in
  let _ = Kernel.create_thread k ta ~name:"a" ~prio:1 (worker a_windows) in
  let _ = Kernel.create_thread k tb ~name:"b" ~prio:1 (worker b_windows) in
  ignore (Kernel.run k);
  let in_own_slot partition (t0, _) =
    let p, _ = Sched.tdma_slot_at [ ("A", 100); ("B", 100) ] t0 in
    p = partition
  in
  Alcotest.(check bool) "A runs only in A slots" true
    (List.for_all (in_own_slot "A") !a_windows);
  Alcotest.(check bool) "B runs only in B slots" true
    (List.for_all (in_own_slot "B") !b_windows);
  Alcotest.(check bool) "both made progress" true
    (List.length !a_windows = 20 && List.length !b_windows = 20)

let test_fixed_priority_can_starve () =
  (* the contrast with round robin: a busy high-priority thread starves
     lower ones until it exits — a temporal-isolation failure mode *)
  let k = make_kernel ~policy:(Sched.Fixed_priority { quantum = 50 }) () in
  let t = Kernel.create_task k ~name:"t" ~partition:"a" in
  let low_progress = ref 0 in
  let order = ref [] in
  let _ =
    Kernel.create_thread k t ~name:"hog" ~prio:1 (fun () ->
        for _ = 1 to 50 do
          User.consume 10;
          User.yield ()
        done;
        order := "hog-done" :: !order)
  in
  let _ =
    Kernel.create_thread k t ~name:"low" ~prio:9 (fun () ->
        User.consume 1;
        incr low_progress;
        order := "low-ran" :: !order)
  in
  ignore (Kernel.run k);
  (* the low thread only ran after the hog finished entirely *)
  Alcotest.(check (list string)) "hog monopolized the cpu" [ "low-ran"; "hog-done" ]
    !order

let test_round_robin_no_starvation () =
  let k = make_kernel ~policy:(Sched.Round_robin { quantum = 50 }) () in
  let t = Kernel.create_task k ~name:"t" ~partition:"a" in
  let done_count = ref 0 in
  for i = 1 to 5 do
    ignore
      (Kernel.create_thread k t ~name:(Printf.sprintf "w%d" i) ~prio:1 (fun () ->
           for _ = 1 to 10 do
             User.consume 5;
             User.yield ()
           done;
           incr done_count))
  done;
  ignore (Kernel.run k);
  Alcotest.(check int) "all threads finished" 5 !done_count

let test_step_limit () =
  let k = make_kernel () in
  let t = Kernel.create_task k ~name:"t" ~partition:"a" in
  let _ =
    Kernel.create_thread k t ~name:"spinner" ~prio:1 (fun () ->
        let rec loop () =
          User.yield ();
          loop ()
        in
        loop ())
  in
  let q = Kernel.run ~max_steps:100 k in
  Alcotest.(check bool) "stopped at limit" true (q = Kernel.Step_limit)

let suite =
  [ Alcotest.test_case "ping-pong call/reply with badge" `Quick test_ping_pong;
    Alcotest.test_case "send/recv in either order" `Quick test_send_recv_order_independent;
    Alcotest.test_case "cap rights enforced" `Quick test_cap_rights_enforced;
    Alcotest.test_case "invalid slot denied" `Quick test_invalid_slot_denied;
    Alcotest.test_case "revoked caps unusable" `Quick test_revoke;
    Alcotest.test_case "cap delegation via message" `Quick test_cap_transfer;
    Alcotest.test_case "cap derivation is monotone" `Quick test_derive_cap_monotone;
    Alcotest.test_case "address spaces disjoint" `Quick test_memory_isolation;
    Alcotest.test_case "out of frames is a typed error" `Quick test_map_out_of_frames;
    Alcotest.test_case "unmapped access faults" `Quick test_unmapped_access_faults;
    Alcotest.test_case "read-only page enforced" `Quick test_readonly_page;
    Alcotest.test_case "sleep advances simulated time" `Quick test_sleep_and_time;
    Alcotest.test_case "crashing thread contained" `Quick test_crash_isolated;
    Alcotest.test_case "IPC deadlock detected" `Quick test_deadlock_detected;
    Alcotest.test_case "fixed priority runs high first" `Quick test_fixed_priority_order;
    Alcotest.test_case "TDMA slots are exclusive" `Quick test_tdma_partition_exclusive;
    Alcotest.test_case "round robin starvation-free" `Quick test_round_robin_no_starvation;
    Alcotest.test_case "fixed priority can starve" `Quick test_fixed_priority_can_starve;
    Alcotest.test_case "run stops at step limit" `Quick test_step_limit ]
