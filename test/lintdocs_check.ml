(* Drift check between the rule registry and docs/LINT_RULES.md: every
   rule in [Lint.catalogue ()] must appear in the doc table with the
   severity and scope the registry declares, and every doc row must
   either name a registered rule or be marked scope "—" (the
   conformance rules that live outside [Lint_rules.all]). A second
   file argument (docs/CONTAIN.md) has its propagation-edge table
   diffed verbatim against [Contain.edge_kinds]; a third
   (docs/FLEET.md) its placement-selector table against
   [Manifest.placement_selector_kinds]; a fourth (docs/SCALE.md) its
   domain-stanza table against [Manifest.domain_stanza_grammar]. Run by
   `dune build @lintdocs`, which @runtest depends on, so the tables can
   never silently rot. Exit 1 with one line per discrepancy. *)

open Lateral

let trim = String.trim

let strip_ticks s =
  let s = trim s in
  let n = String.length s in
  if n >= 2 && s.[0] = '`' && s.[n - 1] = '`' then String.sub s 1 (n - 2)
  else s

(* a table row looks like: | `L001-...` | error | manifest | ... | ... | *)
let parse_row line =
  match String.split_on_char '|' line with
  | "" :: id :: sev :: scope :: _ when String.length (trim id) > 2 ->
    let id = strip_ticks id in
    if String.length id >= 2 && id.[0] = 'L' then
      Some (id, trim sev, trim scope)
    else None
  | _ -> None

let read_rows path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       match parse_row line with
       | Some row -> rows := row :: !rows
       | None -> ()
     done
   with End_of_file -> close_in ic);
  List.rev !rows

(* edge-table rows in CONTAIN.md: | `kind-name` | description | *)
let parse_edge_row line =
  match String.split_on_char '|' line with
  | [ ""; kind; desc; "" ] ->
    let kind = strip_ticks kind in
    if String.length kind > 0 && kind.[0] >= 'a' && kind.[0] <= 'z'
       && String.contains kind '-'
    then Some (kind, trim desc)
    else None
  | _ -> None

let read_edge_rows path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       match parse_edge_row (input_line ic) with
       | Some row -> rows := row :: !rows
       | None -> ()
     done
   with End_of_file -> close_in ic);
  List.rev !rows

let check_edge_table note path =
  (* [note] is monomorphic (string -> unit): format in place *)
  let problem fmt = Printf.ksprintf note fmt in
  let rows = read_edge_rows path in
  List.iter
    (fun (kind, registry_desc) ->
      match List.assoc_opt kind rows with
      | None -> problem "%s: in Contain.edge_kinds but missing from %s" kind path
      | Some doc_desc ->
        if doc_desc <> registry_desc then
          problem "%s: description drifted in %s (registry: %S, doc: %S)" kind
            path registry_desc doc_desc)
    Contain.edge_kinds;
  List.iter
    (fun (kind, _) ->
      if not (List.mem_assoc kind Contain.edge_kinds) then
        problem "%s: documented in %s but not in Contain.edge_kinds" kind path;
      if List.length (List.filter (fun (k, _) -> k = kind) rows) > 1 then
        problem "%s: duplicate edge row in %s" kind path)
    rows;
  List.length rows

(* selector-table rows in FLEET.md: | `host:NAME` | description |.
   Selector kinds contain ':' and may be bare upper-case, so the only
   shape requirement is a two-cell row whose first cell is backticked
   (which also excludes the header and separator rows). *)
let parse_selector_row line =
  match String.split_on_char '|' line with
  | [ ""; sel; desc; "" ] ->
    let raw = trim sel in
    if String.length raw >= 2 && raw.[0] = '`' then
      Some (strip_ticks sel, trim desc)
    else None
  | _ -> None

let read_selector_rows path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       match parse_selector_row (input_line ic) with
       | Some row -> rows := row :: !rows
       | None -> ()
     done
   with End_of_file -> close_in ic);
  List.rev !rows

let check_selector_table note path =
  let problem fmt = Printf.ksprintf note fmt in
  let rows = read_selector_rows path in
  List.iter
    (fun (sel, registry_desc) ->
      match List.assoc_opt sel rows with
      | None ->
        problem "%s: in Manifest.placement_selector_kinds but missing from %s"
          sel path
      | Some doc_desc ->
        if doc_desc <> registry_desc then
          problem "%s: description drifted in %s (registry: %S, doc: %S)" sel
            path registry_desc doc_desc)
    Manifest.placement_selector_kinds;
  List.iter
    (fun (sel, _) ->
      if not (List.mem_assoc sel Manifest.placement_selector_kinds) then
        problem "%s: documented in %s but not in \
                 Manifest.placement_selector_kinds" sel path;
      if List.length (List.filter (fun (k, _) -> k = sel) rows) > 1 then
        problem "%s: duplicate selector row in %s" sel path)
    rows;
  List.length rows

(* domain-stanza rows in SCALE.md: | `domain NAME` | description |.
   Same two-cell backticked shape as the selector table. *)
let check_grammar_table note path =
  let problem fmt = Printf.ksprintf note fmt in
  let rows = read_selector_rows path in
  List.iter
    (fun (stanza, registry_desc) ->
      match List.assoc_opt stanza rows with
      | None ->
        problem "%s: in Manifest.domain_stanza_grammar but missing from %s"
          stanza path
      | Some doc_desc ->
        if doc_desc <> registry_desc then
          problem "%s: description drifted in %s (registry: %S, doc: %S)"
            stanza path registry_desc doc_desc)
    Manifest.domain_stanza_grammar;
  List.iter
    (fun (stanza, _) ->
      if not (List.mem_assoc stanza Manifest.domain_stanza_grammar) then
        problem "%s: documented in %s but not in \
                 Manifest.domain_stanza_grammar" stanza path;
      if List.length (List.filter (fun (k, _) -> k = stanza) rows) > 1 then
        problem "%s: duplicate stanza row in %s" stanza path)
    rows;
  List.length rows

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "../docs/LINT_RULES.md"
  in
  let contain_path = if Array.length Sys.argv > 2 then Some Sys.argv.(2) else None in
  let fleet_path = if Array.length Sys.argv > 3 then Some Sys.argv.(3) else None in
  let scale_path = if Array.length Sys.argv > 4 then Some Sys.argv.(4) else None in
  let rows = read_rows path in
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (* duplicate doc rows *)
  List.iter
    (fun (id, _, _) ->
      if List.length (List.filter (fun (i, _, _) -> i = id) rows) > 1 then
        problem "%s: duplicate row in %s" id path)
    rows;
  let scope_of id =
    List.find_opt (fun (r : Lint_rules.rule) -> r.id = id) Lint_rules.all
  in
  (* registry -> doc: present, severity and scope in sync *)
  List.iter
    (fun (id, sev, _summary, _paper) ->
      match List.find_opt (fun (i, _, _) -> i = id) rows with
      | None -> problem "%s: in Lint.catalogue but missing from %s" id path
      | Some (_, doc_sev, doc_scope) ->
        let want_sev = Diagnostic.severity_to_string sev in
        if doc_sev <> want_sev then
          problem "%s: severity is %s in the registry, %s in the doc" id
            want_sev doc_sev;
        (match scope_of id with
         | None ->
           problem "%s: in Lint.catalogue but not in Lint_rules.all" id
         | Some r ->
           let want_scope = Lint_rules.scope_to_string r.scope in
           if doc_scope <> want_scope then
             problem "%s: scope is %s in the registry, %s in the doc" id
               want_scope doc_scope))
    (Lint.catalogue ());
  (* doc -> registry: rows for unregistered rules must be the
     conformance rules, marked with scope "—" *)
  List.iter
    (fun (id, _, scope) ->
      let registered =
        List.exists (fun (i, _, _, _) -> i = id) (Lint.catalogue ())
      in
      if (not registered) && scope <> "\xe2\x80\x94" then
        problem
          "%s: documented with scope %S but not in Lint.catalogue (conformance \
           rules use scope —)" id scope)
    rows;
  let edge_rows =
    match contain_path with
    | None -> 0
    | Some p -> check_edge_table (fun s -> problems := s :: !problems) p
  in
  let selector_rows =
    match fleet_path with
    | None -> 0
    | Some p -> check_selector_table (fun s -> problems := s :: !problems) p
  in
  let grammar_rows =
    match scale_path with
    | None -> 0
    | Some p -> check_grammar_table (fun s -> problems := s :: !problems) p
  in
  match List.rev !problems with
  | [] ->
    Printf.printf "lintdocs: %d rules in sync with %s" (List.length (Lint.catalogue ())) path;
    (match contain_path with
     | Some p -> Printf.printf ", %d edge kinds in sync with %s" edge_rows p
     | None -> ());
    (match fleet_path with
     | Some p ->
       Printf.printf ", %d placement selectors in sync with %s" selector_rows p
     | None -> ());
    (match scale_path with
     | Some p ->
       Printf.printf ", %d domain stanzas in sync with %s" grammar_rows p
     | None -> ());
    print_newline ()
  | ps ->
    List.iter (fun p -> Printf.eprintf "lintdocs: %s\n" p) ps;
    exit 1
