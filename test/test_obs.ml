(* Observability runtime: tracer invariants, histogram quantile bounds
   against a sorted-array oracle, and determinism of the load engine. *)

module Trace = Lt_obs.Trace
module Metrics = Lt_obs.Metrics
module Load = Lt_load.Load

(* --- span causality ------------------------------------------------------- *)

let run_mail ?trace_capacity ?faults ~requests ~seed () =
  match Load.run ?trace_capacity ?faults ~scenario:Load.Mail ~requests ~seed () with
  | Ok (report, tracer) -> (report, tracer)
  | Error e -> Alcotest.fail e

let check_parent_invariants spans =
  let by_id = Hashtbl.create 256 in
  List.iter (fun sp -> Hashtbl.replace by_id sp.Trace.sp_id sp) spans;
  List.iter
    (fun sp ->
      match sp.Trace.sp_parent with
      | None -> ()
      | Some pid ->
        (match Hashtbl.find_opt by_id pid with
         | None ->
           Alcotest.failf "span %d (%s) has vanished parent %d" sp.Trace.sp_id
             sp.Trace.sp_name pid
         | Some parent ->
           Alcotest.(check int)
             "child inherits the parent's trace id" parent.Trace.sp_trace
             sp.Trace.sp_trace;
           Alcotest.(check bool) "parent opened before child" true
             (parent.Trace.sp_start <= sp.Trace.sp_start);
           Alcotest.(check bool) "child closed before parent" true
             (sp.Trace.sp_end <= parent.Trace.sp_end)))
    spans;
  (* no cycles: every parent chain must terminate within |spans| hops *)
  let n = List.length spans in
  List.iter
    (fun sp ->
      let rec climb hops id =
        if hops > n then
          Alcotest.failf "parent cycle reached from span %d" sp.Trace.sp_id
        else
          match Hashtbl.find_opt by_id id with
          | None -> ()
          | Some s ->
            (match s.Trace.sp_parent with
             | None -> ()
             | Some pid -> climb (hops + 1) pid)
      in
      climb 0 sp.Trace.sp_id)
    spans

let test_span_causality () =
  let report, tracer = run_mail ~requests:30 ~seed:11 () in
  let spans = Trace.spans tracer in
  Alcotest.(check bool) "spans recorded" true (List.length spans > 0);
  Alcotest.(check int) "nothing dropped at default capacity" 0
    (Trace.dropped tracer);
  check_parent_invariants spans;
  (* root spans exist, one per issued request *)
  let roots =
    List.filter (fun sp -> sp.Trace.sp_parent = None && sp.Trace.sp_kind = "request")
      spans
  in
  Alcotest.(check int) "one root request span per request"
    (report.Load.r_ok + report.Load.r_degraded + report.Load.r_errors)
    (List.length roots)

let test_eviction_keeps_parents () =
  (* a tiny ring forces eviction; survivors must still form valid trees
     because children are recorded (and therefore evicted) before their
     parents *)
  let _, tracer = run_mail ~trace_capacity:40 ~requests:30 ~seed:11 () in
  Alcotest.(check bool) "eviction actually happened" true (Trace.dropped tracer > 0);
  Alcotest.(check int) "ring respects capacity" 40
    (List.length (Trace.spans tracer));
  check_parent_invariants (Trace.spans tracer)

let test_cross_substrate_request () =
  (* acceptance: a single request's causal tree crosses >= 2 substrates *)
  let _, tracer = run_mail ~requests:10 ~seed:7 () in
  let per_trace = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      match List.assoc_opt "substrate" sp.Trace.sp_attrs with
      | None -> ()
      | Some sub ->
        let seen =
          Option.value ~default:[] (Hashtbl.find_opt per_trace sp.Trace.sp_trace)
        in
        if not (List.mem sub seen) then
          Hashtbl.replace per_trace sp.Trace.sp_trace (sub :: seen))
    (Trace.spans tracer);
  let best = Hashtbl.fold (fun _ subs acc -> max acc (List.length subs)) per_trace 0 in
  Alcotest.(check bool)
    (Printf.sprintf "one request crossed %d substrates (need >= 2)" best)
    true (best >= 2)

let test_failed_span_status () =
  let tracer = Trace.create () in
  Trace.with_tracer tracer (fun () ->
      (try
         Trace.with_span ~kind:"call" ~name:"boom" (fun () -> failwith "kaput")
       with Failure _ -> ());
      Trace.with_span ~kind:"call" ~name:"soft" (fun () -> Trace.fail_span "denied"));
  match Trace.spans tracer with
  | [ a; b ] ->
    Alcotest.(check bool) "exception recorded" true
      (String.length a.Trace.sp_status > 2 && String.sub a.Trace.sp_status 0 3 = "exn");
    Alcotest.(check string) "fail_span detail recorded" "denied" b.Trace.sp_status
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

(* --- histogram quantiles vs a sorted-array oracle -------------------------- *)

let exact_quantile sorted q =
  let n = Array.length sorted in
  let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  sorted.(min (n - 1) (rank - 1))

let qcheck_quantile_bounds =
  QCheck.Test.make ~count:200 ~name:"histogram quantile bounds contain the oracle"
    QCheck.(pair (list_of_size Gen.(1 -- 200) (int_bound 100_000))
              (list_of_size Gen.(int_bound 3) (float_range 0.0 1.0)))
    (fun (samples, qs) ->
      QCheck.assume (samples <> []);
      let m = Metrics.create () in
      Metrics.with_metrics m (fun () ->
          List.iter (fun s -> Metrics.observe ~key:"h" s) samples);
      let sorted = Array.of_list (List.sort compare samples) in
      List.for_all
        (fun q ->
          match Metrics.quantile_bounds m "h" q with
          | None -> q <= 0.0 || q > 1.0
          | Some (lo, hi) ->
            let exact = exact_quantile sorted q in
            lo <= exact && exact <= hi)
        (0.5 :: 0.95 :: 0.99 :: 1.0 :: qs))

let test_summary_matches_oracle () =
  let samples = [ 3; 7; 0; 1; 255; 256; 1024; 9; 9; 9; 64; 2; 5; 8000; 13 ] in
  let m = Metrics.create () in
  Metrics.with_metrics m (fun () ->
      List.iter (fun s -> Metrics.observe ~key:"h" s) samples);
  let sorted = Array.of_list (List.sort compare samples) in
  match List.assoc_opt "h" (Metrics.summaries m) with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
    Alcotest.(check int) "count" (List.length samples) s.Metrics.s_count;
    Alcotest.(check int) "sum" (List.fold_left ( + ) 0 samples) s.Metrics.s_sum;
    Alcotest.(check int) "max" 8000 s.Metrics.s_max;
    List.iter
      (fun (q, reported) ->
        let exact = exact_quantile sorted q in
        Alcotest.(check bool)
          (Printf.sprintf "p%.0f upper bound >= oracle" (100. *. q))
          true (reported >= exact))
      [ (0.5, s.Metrics.s_p50); (0.95, s.Metrics.s_p95); (0.99, s.Metrics.s_p99) ]

let test_counters_sorted_and_exact () =
  let m = Metrics.create () in
  Metrics.with_metrics m (fun () ->
      Metrics.incr "b";
      Metrics.incr ~by:41 "a";
      Metrics.incr "a";
      Metrics.incr ~by:0 "c");
  Alcotest.(check (list (pair string int)))
    "sorted keys, exact totals"
    [ ("a", 42); ("b", 1); ("c", 0) ]
    (Metrics.counters m)

(* --- determinism ----------------------------------------------------------- *)

let qcheck_equal_seeds_identical =
  QCheck.Test.make ~count:12 ~name:"equal seeds give byte-identical exports"
    QCheck.(pair (int_bound 1_000_000) (QCheck.map (fun n -> n + 1) (int_bound 40)))
    (fun (seed, requests) ->
      let faults =
        { Load.drop_pct = 10; delay_pct = 10; compromise_pct = 10 }
      in
      let once () =
        match Load.run ~faults ~scenario:Load.Mail ~requests ~seed () with
        | Error e -> QCheck.Test.fail_report e
        | Ok (report, tracer) ->
          ( Load.render_report_json report,
            Trace.export_json tracer,
            Trace.export_text tracer )
      in
      once () = once ())

let test_different_seeds_differ () =
  let trace seed =
    let _, tracer = run_mail ~requests:40 ~seed () in
    Trace.export_json tracer
  in
  Alcotest.(check bool) "different seeds explore different schedules" true
    (trace 1 <> trace 2)

let suite =
  [ Alcotest.test_case "span causality invariants" `Quick test_span_causality;
    Alcotest.test_case "ring eviction never orphans survivors" `Quick
      test_eviction_keeps_parents;
    Alcotest.test_case "a request crosses >= 2 substrates" `Quick
      test_cross_substrate_request;
    Alcotest.test_case "failure status lands on the right span" `Quick
      test_failed_span_status;
    Alcotest.test_case "histogram summary vs oracle" `Quick
      test_summary_matches_oracle;
    Alcotest.test_case "counters sorted and exact" `Quick
      test_counters_sorted_and_exact;
    Alcotest.test_case "different seeds differ" `Quick test_different_seeds_differ;
    QCheck_alcotest.to_alcotest qcheck_quantile_bounds;
    QCheck_alcotest.to_alcotest qcheck_equal_seeds_identical ]
