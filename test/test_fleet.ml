(* The fleet: attestation-gated placement, partition-tolerant failover,
   machine-granularity chaos containment. *)

open Lt_fleet
module Trace = Lt_obs.Trace

let all_substrates = [ "microkernel"; "sgx"; "sep" ]

let mk_hosts ?(rogue = []) names =
  List.map
    (fun n ->
      Fleet.host_spec ~rogue:(List.mem n rogue) ~name:n
        ~substrates:all_substrates ())
    names

let mk_fleet ?rogue ?(seed = 7L) names =
  match
    Fleet.create ~seed ~hosts:(mk_hosts ?rogue names)
      ~components:(Fleet_chaos.scenario_components ()) ()
  with
  | Ok f -> f
  | Error e -> Alcotest.fail e

let in_trace f = Trace.with_tracer (Trace.create ()) f

let place_all f =
  match Fleet.place_all f with Ok () -> () | Error e -> Alcotest.fail e

(* the asymmetric-partition + machine-kill + rogue-host scenario the
   issue centres on: everything must stay inside the static prediction *)
let test_chaos_contained () =
  let plan =
    { Fleet_chaos.kill_hosts = [ "host-2" ];
      partitions =
        [ { Fleet_chaos.pt_host = "host-1"; pt_from = 10; pt_heal = 25;
            pt_asym = true } ] }
  in
  match
    Fleet_chaos.run ~plan ~rogue:[ "host-3" ] ~hosts:3 ~requests:40 ~seed:11 ()
  with
  | Error e -> Alcotest.fail e
  | Ok (r, _) ->
    Alcotest.(check bool) "contained" true (Fleet_chaos.contained r);
    Alcotest.(check int) "no unexcused failures" 0 r.Fleet_chaos.fc_failed_unexcused;
    Alcotest.(check int) "rogue host got zero placements" 0
      r.Fleet_chaos.fc_rogue_placements;
    Alcotest.(check (list (triple string string string)))
      "observed radius inside static prediction" []
      r.Fleet_chaos.fc_radius_escapes;
    Alcotest.(check bool) "the kill forced failovers" true
      (r.Fleet_chaos.fc_failovers <> []);
    Alcotest.(check bool) "asym partition left instances to fence" true
      (r.Fleet_chaos.fc_fenced > 0);
    List.iter
      (fun (_, host) ->
        Alcotest.(check bool) "never placed on the rogue host" true
          (host <> "host-3"))
      r.Fleet_chaos.fc_placements

let test_equal_seeds_byte_identical () =
  let run () =
    let plan =
      { Fleet_chaos.kill_hosts = [ "host-1" ];
        partitions =
          [ { Fleet_chaos.pt_host = "host-2"; pt_from = 5; pt_heal = 20;
              pt_asym = false } ] }
    in
    match Fleet_chaos.run ~plan ~hosts:4 ~requests:30 ~seed:3 () with
    | Error e -> Alcotest.fail e
    | Ok (r, _) ->
      (Fleet_chaos.render_report_text r, Fleet_chaos.render_report_json r)
  in
  let t1, j1 = run () in
  let t2, j2 = run () in
  Alcotest.(check string) "text reports byte-identical" t1 t2;
  Alcotest.(check string) "json reports byte-identical" j1 j2

let test_repro_roundtrip () =
  let repro =
    { Fleet_chaos.rp_hosts = 5; rp_rogue = [ "host-4"; "host-5" ];
      rp_requests = 17; rp_seed = 42;
      rp_plan =
        { Fleet_chaos.kill_hosts = [ "host-1"; "host-2" ];
          partitions =
            [ { Fleet_chaos.pt_host = "host-3"; pt_from = 3; pt_heal = 9;
                pt_asym = true };
              { Fleet_chaos.pt_host = "host-1"; pt_from = 4; pt_heal = 0;
                pt_asym = false } ] } }
  in
  match Fleet_chaos.parse_repro (Fleet_chaos.render_repro repro) with
  | Error e -> Alcotest.fail e
  | Ok r -> Alcotest.(check bool) "roundtrips" true (r = repro)

let test_corpus_repro_contained () =
  match Fleet_chaos.load_repro "corpus/fleet_partition_asym.repro" with
  | Error e -> Alcotest.fail e
  | Ok rp ->
    (match
       Fleet_chaos.run ~plan:rp.Fleet_chaos.rp_plan
         ~rogue:rp.Fleet_chaos.rp_rogue ~hosts:rp.Fleet_chaos.rp_hosts
         ~requests:rp.Fleet_chaos.rp_requests ~seed:rp.Fleet_chaos.rp_seed ()
     with
     | Error e -> Alcotest.fail e
     | Ok (r, _) ->
       Alcotest.(check bool) "corpus reproducer stays contained" true
         (Fleet_chaos.contained r);
       Alcotest.(check bool) "reproducer exercises fencing" true
         (r.Fleet_chaos.fc_fenced > 0))

(* with every trustworthy host dead, the only reachable host fails
   attestation: clusters are given up, never revived on the rogue *)
let test_no_revival_on_attest_failure () =
  in_trace (fun () ->
      let f = mk_fleet ~rogue:[ "host-3" ] [ "host-1"; "host-2"; "host-3" ] in
      place_all f;
      Alcotest.(check int) "rogue placements zero after place_all" 0
        (Fleet.rogue_placements f);
      (match Fleet.kill_host f "host-1" with
       | Ok () -> () | Error e -> Alcotest.fail e);
      (match Fleet.kill_host f "host-2" with
       | Ok () -> () | Error e -> Alcotest.fail e);
      (* the controller only learns of the deaths through transport
         faults, so probe each cluster once to trip them *)
      List.iter
        (fun (target, service) ->
          match Fleet.call f ~target ~service "probe" with
          | Ok _ -> Alcotest.fail "call succeeded on a dead fleet"
          | Error _ -> ())
        [ ("gate", "ingress"); ("vault", "seal"); ("audit", "log") ];
      Fleet.sweep f;
      Alcotest.(check bool) "rogue host saw attestation failures" true
        (Fleet.attest_failures f > 0);
      Alcotest.(check int) "still zero rogue placements" 0
        (Fleet.rogue_placements f);
      List.iter
        (fun (c, _) ->
          Alcotest.(check (option string))
            (c ^ " not revived anywhere") None (Fleet.owner f c))
        (Fleet.clusters f);
      Alcotest.(check bool) "clusters given up, not lost track of" true
        (Fleet.unplaced f <> []))

(* evidence is never cached across a partition: the healed host proves
   itself again, bumping its attested-session epoch *)
let test_reattestation_after_heal () =
  in_trace (fun () ->
      let f = mk_fleet [ "host-1"; "host-2"; "host-3" ] in
      place_all f;
      let cluster, members =
        match Fleet.clusters f with
        | (c, ms) :: _ -> (c, ms)
        | [] -> Alcotest.fail "no clusters"
      in
      let owner0 =
        match Fleet.owner f cluster with
        | Some h -> h
        | None -> Alcotest.fail "cluster unplaced"
      in
      let epochs h = List.assoc h (Fleet.host_epochs f) in
      let before = epochs owner0 in
      Fleet.partition f ~host:owner0 ();
      (* the next call trips a transport fault and fails over *)
      (match Fleet.call f ~target:(List.hd members) ~service:"ingress" "x" with
       | Ok _ | Error _ -> ());
      Fleet.sweep f;
      let owner1 =
        match Fleet.owner f cluster with
        | Some h -> h
        | None -> Alcotest.fail "cluster lost during failover"
      in
      Alcotest.(check bool) "failover moved the cluster" true (owner1 <> owner0);
      Alcotest.(check bool) "partitioned host is unlinked" true
        (not (Fleet.host_connected f owner0));
      Fleet.heal f ~host:owner0;
      Fleet.sweep f;
      Alcotest.(check bool) "healed host reconnected" true
        (Fleet.host_connected f owner0);
      Alcotest.(check int) "reconnect re-attested (fresh epoch)" (before + 1)
        (epochs owner0);
      Alcotest.(check (list (pair string int)))
        "every epoch is a fresh attestation" (Fleet.host_epochs f)
        (Fleet.host_attests f))

(* an asymmetric cut lets a placement succeed invisibly; reconcile after
   the heal must destroy the stale instance *)
let test_asym_partition_fencing () =
  in_trace (fun () ->
      let f = mk_fleet [ "host-1"; "host-2"; "host-3" ] in
      place_all f;
      let cluster, members =
        match Fleet.clusters f with
        | (c, ms) :: _ -> (c, ms)
        | [] -> Alcotest.fail "no clusters"
      in
      let owner0 =
        match Fleet.owner f cluster with
        | Some h -> h
        | None -> Alcotest.fail "cluster unplaced"
      in
      Fleet.partition f ~host:owner0 ~asym:true ();
      (match Fleet.call f ~target:(List.hd members) ~service:"ingress" "x" with
       | Ok _ | Error _ -> ());
      Fleet.sweep f;
      Alcotest.(check int) "nothing fenced while still cut" 0 (Fleet.fenced f);
      Fleet.heal f ~host:owner0;
      Fleet.sweep f;
      Alcotest.(check bool) "stale instances fenced after heal" true
        (Fleet.fenced f > 0))

let test_create_rejects_bad_specs () =
  let comps = Fleet_chaos.scenario_components () in
  let bad specs =
    match Fleet.create ~seed:1L ~hosts:specs ~components:comps () with
    | Ok _ -> Alcotest.fail "bad fleet accepted"
    | Error e -> Alcotest.(check bool) "error is descriptive" true
                   (String.length e > 0)
  in
  bad [ Fleet.host_spec ~name:"a" ~substrates:[ "microkernel" ] () ];
  bad
    [ Fleet.host_spec ~name:"a" ~substrates:all_substrates ();
      Fleet.host_spec ~name:"a" ~substrates:all_substrates () ];
  bad [ Fleet.host_spec ~name:"fleet" ~substrates:all_substrates () ];
  bad [ Fleet.host_spec ~name:"a" ~substrates:[ "sgx"; "qemu" ] () ]

let suite =
  [ Alcotest.test_case "chaos run stays contained" `Quick test_chaos_contained;
    Alcotest.test_case "equal seeds give byte-identical reports" `Quick
      test_equal_seeds_byte_identical;
    Alcotest.test_case "repro files roundtrip" `Quick test_repro_roundtrip;
    Alcotest.test_case "corpus reproducer replays contained" `Quick
      test_corpus_repro_contained;
    Alcotest.test_case "no revival on attestation failure" `Quick
      test_no_revival_on_attest_failure;
    Alcotest.test_case "reconnect re-attests after heal" `Quick
      test_reattestation_after_heal;
    Alcotest.test_case "asym partition leaves fenced instances" `Quick
      test_asym_partition_fencing;
    Alcotest.test_case "create rejects bad host specs" `Quick
      test_create_rejects_bad_specs ]
