(* Static blast-radius analysis: propagation edges, per-root radii,
   escape witnesses, the fleet verdict, and the incremental engine's
   byte-identical containment state. *)

open Lateral

let conn = Manifest.conn

let m = Manifest.v

let restarting = { (Manifest.default_restart Manifest.On_failure) with
                   Manifest.r_max = 3 }

let radius_of r root =
  match List.find_opt (fun x -> x.Contain.r_root = root) r.Contain.radii with
  | Some x -> x
  | None -> Alcotest.fail ("no radius for " ^ root)

let hit r root victim =
  Option.map Contain.impact_to_string
    (List.assoc_opt victim (radius_of r root).Contain.r_hit)

let impact = Alcotest.(option string)

(* --- per-edge-kind semantics --- *)

let test_channel_bounded () =
  (* supervised default: a dead callee degrades the caller, no worse —
     and vetting is no shield (it declassifies data, not liveness) *)
  let r =
    Contain.analyze
      [ m ~name:"a" ~connects_to:[ conn "b" "s" ] ();
        m ~name:"v" ~connects_to:[ conn ~vetted:true "b" "s" ] ();
        m ~name:"b" ~provides:[ "s" ] () ]
  in
  Alcotest.check impact "caller degraded" (Some "degraded") (hit r "b" "a");
  Alcotest.check impact "vetted caller degraded too" (Some "degraded")
    (hit r "b" "v");
  Alcotest.check impact "callee fails itself" (Some "failed") (hit r "b" "b");
  Alcotest.check impact "no reverse propagation" None (hit r "a" "b")

let test_channel_blocked_unsupervised () =
  (* without the supervisor's deadlines and breakers a caller blocks
     forever on a dead callee: Failed propagates as Failed *)
  let fleet =
    [ m ~name:"a" ~connects_to:[ conn "b" "s" ] ();
      m ~name:"b" ~provides:[ "s" ] () ]
  in
  let unsup =
    Contain.analyze
      ~config:{ Contain.default_config with Contain.supervised = false }
      fleet
  in
  Alcotest.check impact "caller blocks forever" (Some "failed")
    (hit unsup "b" "a");
  let sup = Contain.analyze fleet in
  Alcotest.check impact "supervision bounds it" (Some "degraded")
    (hit sup "b" "a")

let test_domain_cofate () =
  (* cohabitants die with the domain and then suffer their own crash
     impact: the restarting one comes back, the bare one stays dead *)
  let r =
    Contain.analyze
      [ m ~name:"a" ~domain:"shared" ();
        m ~name:"bare" ~domain:"shared" ();
        m ~name:"healed" ~domain:"shared" ~restart:restarting () ]
  in
  Alcotest.check impact "unsupervised cohabitant fails" (Some "failed")
    (hit r "a" "bare");
  Alcotest.check impact "restarting cohabitant restarts" (Some "restarted")
    (hit r "a" "healed")

let test_substrate_exclusive () =
  (* flicker runs one DRTM session at a time: a crash in the slice
     stalls cohabitants on other domains, but only degrades them *)
  let r =
    Contain.analyze
      [ m ~name:"a" ~substrate:"flicker" ();
        m ~name:"b" ~substrate:"flicker" () ]
  in
  Alcotest.check impact "exclusive substrate degrades" (Some "degraded")
    (hit r "a" "b");
  let micro =
    Contain.analyze
      [ m ~name:"a" ~substrate:"microkernel" ();
        m ~name:"b" ~substrate:"microkernel" () ]
  in
  Alcotest.check impact "concurrent substrate does not" None
    (hit micro "a" "b")

let test_state_loss_edge () =
  (* unvetted dependence on stateful, never-healing state is an edge;
     a vetted wrapper or an effective restart policy removes it *)
  let edges ms =
    List.filter
      (fun e -> e.Contain.p_kind = Contain.State_loss)
      (Contain.prop_edges Contain.default_config ms)
  in
  let stateful_target restart vetted =
    [ m ~name:"store" ~provides:[ "io" ] ~stateful:true ?restart ();
      m ~name:"user" ~connects_to:[ conn ~vetted "store" "io" ] () ]
  in
  (match edges (stateful_target None false) with
   | [ e ] ->
     Alcotest.(check string) "src is the stateful component" "store"
       e.Contain.p_src;
     Alcotest.(check string) "dst is the dependent" "user" e.Contain.p_dst
   | es -> Alcotest.fail (Printf.sprintf "expected 1 state-loss edge, got %d"
                            (List.length es)));
  Alcotest.(check int) "vetting shields the dependent" 0
    (List.length (edges (stateful_target None true)));
  Alcotest.(check int) "an effective restart policy heals the state" 0
    (List.length (edges (stateful_target (Some restarting) false)))

let test_restart_storm () =
  (* a channel cycle inside one domain, both auto-restarting: every
     respawn re-kills the peer until the budgets give up *)
  let r =
    Contain.analyze
      [ m ~name:"a" ~domain:"d" ~restart:restarting ~provides:[ "s" ]
          ~connects_to:[ conn "b" "s" ] ();
        m ~name:"b" ~domain:"d" ~restart:restarting ~provides:[ "s" ]
          ~connects_to:[ conn "a" "s" ] () ]
  in
  Alcotest.check impact "the peer ends up failed" (Some "failed")
    (hit r "a" "b");
  Alcotest.check impact "the root escalates past its own restart"
    (Some "failed") (hit r "a" "a");
  (* split the cycle across two domains: no storm, both just restart *)
  let calm =
    Contain.analyze
      [ m ~name:"a" ~domain:"d1" ~restart:restarting ~provides:[ "s" ]
          ~connects_to:[ conn "b" "s" ] ();
        m ~name:"b" ~domain:"d2" ~restart:restarting ~provides:[ "s" ]
          ~connects_to:[ conn "a" "s" ] () ]
  in
  Alcotest.check impact "cross-domain cycle stays calm" (Some "degraded")
    (hit calm "a" "b")

(* --- escapes, witnesses and the verdict --- *)

let escape_fleet =
  (* core's crash never heals and degrades edge, in another domain,
     through a two-hop channel chain *)
  [ m ~name:"edge" ~domain:"outer" ~connects_to:[ conn "mid" "s" ] ();
    m ~name:"mid" ~domain:"inner" ~provides:[ "s" ]
      ~connects_to:[ conn "core" "s" ] ();
    m ~name:"core" ~domain:"inner" ~provides:[ "s" ] () ]

let test_escape_witness () =
  let r = Contain.analyze escape_fleet in
  match (radius_of r "core").Contain.r_escape with
  | None -> Alcotest.fail "core's crash must escape its domain"
  | Some x ->
    Alcotest.(check string) "worst outside victim" "edge" x.Contain.x_victim;
    Alcotest.(check int) "outside victim count" 1 x.Contain.x_outside;
    Alcotest.(check (list string)) "witness path root-to-victim"
      [ "core"; "mid"; "edge" ] x.Contain.x_path;
    (match r.Contain.verdict with
     | Contain.Uncontained roots ->
       Alcotest.(check bool) "core among the escape roots" true
         (List.mem "core" roots)
     | Contain.Contained -> Alcotest.fail "fleet must be uncontained")

(* "mid" is in domain inner too, so its victim count counts only edge *)

let test_restart_contains () =
  let healed =
    List.map
      (fun c ->
        if c.Manifest.name = "edge" then c
        else { c with Manifest.restart = Some restarting })
      escape_fleet
  in
  match (Contain.analyze healed).Contain.verdict with
  | Contain.Contained -> ()
  | Contain.Uncontained roots ->
    Alcotest.fail ("still uncontained: " ^ String.concat ", " roots)

let test_noncrashable_roots_exempt () =
  (* sep is dedicated hardware: it does not crash with the host stack,
     so it is never an escape root even without a restart policy *)
  let r =
    Contain.analyze
      [ m ~name:"edge" ~domain:"outer" ~connects_to:[ conn "sepd" "s" ] ();
        m ~name:"sepd" ~domain:"inner" ~substrate:"sep" ~provides:[ "s" ] () ]
  in
  Alcotest.(check bool) "sep root has no escape" true
    ((radius_of r "sepd").Contain.r_escape = None);
  Alcotest.(check bool) "fleet contained" true
    (r.Contain.verdict = Contain.Contained)

(* --- determinism, totality, registry --- *)

let test_deterministic () =
  let r1 = Contain.analyze escape_fleet and r2 = Contain.analyze escape_fleet in
  Alcotest.(check bool) "structurally equal" true (r1 = r2);
  Alcotest.(check string) "byte-identical text"
    (Contain.render_text ~file:"f" r1) (Contain.render_text ~file:"f" r2);
  Alcotest.(check string) "byte-identical json"
    (Contain.render_json ~file:"f" r1) (Contain.render_json ~file:"f" r2)

let test_edge_kind_registry () =
  let kinds =
    [ Contain.Channel_bounded; Contain.Channel_blocked; Contain.Domain_cofate;
      Contain.Substrate_exclusive; Contain.State_loss; Contain.Restart_storm ]
  in
  List.iter
    (fun k ->
      let name = Contain.kind_to_string k in
      Alcotest.(check bool) (name ^ " in edge_kinds") true
        (List.mem_assoc name Contain.edge_kinds))
    kinds;
  Alcotest.(check int) "registry has no extra rows" (List.length kinds)
    (List.length Contain.edge_kinds)

let gen_fleet =
  (* inconsistent on purpose: dangling targets, duplicate names, unknown
     substrates, self-ish cycles — analyze must stay total on all of it *)
  QCheck.Gen.(
    let name = oneofl [ "a"; "b"; "c"; "d"; "ghost" ] in
    let manifest =
      tup5 name (oneofl [ "a"; "b"; "c"; "d"; "x" ])
        (oneofl [ "microkernel"; "sep"; "flicker"; "weird"; "monolithic-os" ])
        (tup2 bool (oneofl [ None; Some Manifest.Never; Some Manifest.On_failure ]))
        (list_size (int_range 0 3) (tup2 name bool))
      >|= fun (n, dom, sub, (stateful, pol), conns) ->
      Manifest.v ~name:n ~domain:dom ~substrate:sub ~stateful
        ?restart:(Option.map Manifest.default_restart pol)
        ~provides:[ "s" ]
        ~connects_to:(List.map (fun (t, v) -> conn ~vetted:v t "s") conns)
        ()
    in
    list_size (int_range 0 6) manifest)

let prop_analyze_total =
  QCheck.Test.make ~count:200 ~name:"analyze total and self-inclusive"
    (QCheck.make gen_fleet)
    (fun fleet ->
      let r = Contain.analyze fleet in
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (x : Contain.radius) ->
          if not (Hashtbl.mem seen x.Contain.r_root) then
            Hashtbl.replace seen x.Contain.r_root x)
        r.Contain.radii;
      List.for_all
        (fun mf ->
          match Hashtbl.find_opt seen mf.Manifest.name with
          | None -> QCheck.Test.fail_reportf "%s has no radius" mf.Manifest.name
          | Some x ->
            (match List.assoc_opt x.Contain.r_root x.Contain.r_hit with
             | None ->
               QCheck.Test.fail_reportf "%s outside its own radius"
                 x.Contain.r_root
             | Some im ->
               Contain.rank im >= Contain.rank x.Contain.r_self
               || QCheck.Test.fail_reportf "%s below its own crash impact"
                    x.Contain.r_root))
        fleet)

let prop_supervision_only_shrinks =
  QCheck.Test.make ~count:200 ~name:"supervised radii inside unsupervised"
    (QCheck.make gen_fleet)
    (fun fleet ->
      let sup = Contain.analyze fleet in
      let unsup =
        Contain.analyze
          ~config:{ Contain.default_config with Contain.supervised = false }
          fleet
      in
      List.for_all
        (fun (x : Contain.radius) ->
          match
            List.find_opt
              (fun u -> u.Contain.r_root = x.Contain.r_root)
              unsup.Contain.radii
          with
          | None -> QCheck.Test.fail_reportf "missing unsupervised radius"
          | Some u ->
            List.for_all
              (fun (victim, im) ->
                match List.assoc_opt victim u.Contain.r_hit with
                | None ->
                  QCheck.Test.fail_reportf "%s -> %s only under supervision"
                    x.Contain.r_root victim
                | Some uim -> Contain.rank uim >= Contain.rank im)
              x.Contain.r_hit)
        sup.Contain.radii)

(* --- the incremental engine maintains the same analysis --- *)

let apply_script st script =
  match Delta.parse_script script with
  | Error e -> Alcotest.fail e
  | Ok ds ->
    List.fold_left
      (fun st d ->
        let st, _ = Check.apply d st in
        (match Check.divergence st with
         | None -> ()
         | Some why ->
           Alcotest.fail (Printf.sprintf "%s: %s" (Delta.describe d) why));
        st)
      st ds

let test_incremental_contain () =
  let st = Check.create escape_fleet in
  (match Check.divergence st with
   | None -> ()
   | Some why -> Alcotest.fail ("baseline: " ^ why));
  let st =
    apply_script st
      {|
add
component core
  provides s
  restart on-failure 3 256

update
component burst
  domain inner
  restart always 2
  provides s
  connects mid.s

connect mid burst.s
disconnect edge mid.s
remove burst
connect-vetted edge mid.s
|}
  in
  (* the final fleet's contain state equals the batch analysis *)
  let batch = Contain.analyze (Check.manifests st) in
  Alcotest.(check bool) "incremental = batch, structurally" true
    (Check.contain_result st = batch)

let test_dirty_roots_scoped () =
  (* edges run core -> mid -> leaf; touching the leaf dirties every
     root whose radius can contain it, and nothing else *)
  let cfg = Contain.default_config in
  let fleet =
    [ m ~name:"core" ~provides:[ "s" ] ();
      m ~name:"mid" ~provides:[ "s" ] ~connects_to:[ conn "core" "s" ] ();
      m ~name:"leaf" ~connects_to:[ conn "mid" "s" ] ();
      m ~name:"island" ~provides:[ "s" ] () ]
  in
  let edges = Contain.prop_edges cfg fleet in
  let dirty =
    Contain.dirty_roots ~old_edges:edges ~new_edges:edges ~touched:[ "leaf" ]
  in
  Alcotest.(check bool) "touched root is dirty" true (List.mem "leaf" dirty);
  Alcotest.(check bool) "upstream roots are dirty" true
    (List.mem "mid" dirty && List.mem "core" dirty);
  Alcotest.(check bool) "the island is not" false (List.mem "island" dirty)

let suite =
  [ Alcotest.test_case "channel edges bounded under supervision" `Quick
      test_channel_bounded;
    Alcotest.test_case "unsupervised callers block forever" `Quick
      test_channel_blocked_unsupervised;
    Alcotest.test_case "domain cohabitants share the crash" `Quick
      test_domain_cofate;
    Alcotest.test_case "exclusive substrates stall their slice" `Quick
      test_substrate_exclusive;
    Alcotest.test_case "state-loss edges and their shields" `Quick
      test_state_loss_edge;
    Alcotest.test_case "restart storms fail the whole cycle" `Quick
      test_restart_storm;
    Alcotest.test_case "escape witness: victim, count, path" `Quick
      test_escape_witness;
    Alcotest.test_case "restart policies contain the fleet" `Quick
      test_restart_contains;
    Alcotest.test_case "non-crashable substrates are never roots" `Quick
      test_noncrashable_roots_exempt;
    Alcotest.test_case "analysis is deterministic" `Quick test_deterministic;
    Alcotest.test_case "edge-kind registry is complete" `Quick
      test_edge_kind_registry;
    Alcotest.test_case "incremental contain equals batch" `Quick
      test_incremental_contain;
    Alcotest.test_case "dirty roots stay scoped" `Quick test_dirty_roots_scoped;
    QCheck_alcotest.to_alcotest prop_analyze_total;
    QCheck_alcotest.to_alcotest prop_supervision_only_shrinks ]
