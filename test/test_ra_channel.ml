(* Attested channels: evidence bound to the session's exporter. *)

open Lt_crypto
module Net = Lt_net.Net
module Sc = Lt_net.Secure_channel
open Lateral

(* one TLS channel pair over a fresh network *)
let channel rng ~ca ~server_key ~cert =
  let net = Net.create () in
  Result.get_ok (Net.register net "c");
  Result.get_ok (Net.register net "s");
  let client = Sc.Client.create rng ~trusted_ca:ca.Rsa.pub () in
  let server = Sc.Server.create rng ~key:server_key ~cert in
  match Sc.connect net ~client ~client_addr:"c" ~server ~server_addr:"s" with
  | Ok (cs, ss) -> (cs, ss)
  | Error e -> Alcotest.fail e

let setup () =
  let rng = Drbg.create 909L in
  let ca = Rsa.generate ~bits:512 rng in
  let server_key = Rsa.generate ~bits:512 rng in
  let cert = Cert.issue ~ca_name:"ca" ~ca_key:ca ~subject:"srv" server_key.Rsa.pub in
  let machine = Lt_hw.Machine.create ~dram_pages:128 () in
  let sgx, _ = Substrate_sgx.make machine rng ~ca_name:"intel" ~ca_key:ca () in
  let comp =
    match sgx.Substrate.launch ~name:"anonymizer" ~code:"anon-v1"
            ~services:[ ("f", fun _ x -> x) ] with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  let policy =
    { Attestation.trusted_cas = [ ("intel", ca.Rsa.pub) ];
      shared_device_keys = [];
      accepted_measurements = [ Substrate.component_measurement comp ] }
  in
  (rng, ca, server_key, cert, sgx, comp, policy)

let test_attested_channel_happy_path () =
  let rng, ca, server_key, cert, sgx, comp, policy = setup () in
  let cs, ss = channel rng ~ca ~server_key ~cert in
  Alcotest.(check string) "exporters agree"
    (Sha256.hex (Sc.exporter cs)) (Sha256.hex (Sc.exporter ss));
  let challenge, nonce = Ra_channel.request rng cs in
  (match Ra_channel.respond ss sgx comp ~challenge with
   | Error e -> Alcotest.fail e
   | Ok response ->
     (match Ra_channel.check cs ~policy ~nonce ~response with
      | Ok () -> ()
      | Error e -> Alcotest.fail e))

let test_relay_attack_rejected () =
  (* the attacker terminates the client's TLS and relays the challenge
     over its own channel to the genuine enclave host; the evidence is
     valid but bound to the wrong channel *)
  let rng, ca, server_key, cert, sgx, comp, policy = setup () in
  let client_attacker_cs, client_attacker_ss = channel rng ~ca ~server_key ~cert in
  let attacker_real_cs, attacker_real_ss = channel rng ~ca ~server_key ~cert in
  let challenge, nonce = Ra_channel.request rng client_attacker_cs in
  (* attacker decrypts the challenge on its end, re-sends it to the real
     server over the second channel *)
  let inner =
    match Sc.receive client_attacker_ss challenge with
    | Ok plain -> plain
    | Error e -> Alcotest.fail e
  in
  let relayed_challenge = Sc.send attacker_real_cs inner in
  (match Ra_channel.respond attacker_real_ss sgx comp ~challenge:relayed_challenge with
   | Error e -> Alcotest.fail e
   | Ok response ->
     (* attacker pipes the evidence back to the victim's channel *)
     let evidence_plain =
       match Sc.receive attacker_real_cs response with
       | Ok p -> p
       | Error e -> Alcotest.fail e
     in
     let relayed_response = Sc.send client_attacker_ss evidence_plain in
     (match Ra_channel.check client_attacker_cs ~policy ~nonce
              ~response:relayed_response with
      | Error e ->
        Alcotest.(check bool) "binding failure reported" true
          (String.length e > 0)
      | Ok () -> Alcotest.fail "relayed evidence accepted!"))

let test_wrong_measurement_rejected () =
  let rng, ca, server_key, cert, sgx, comp, _ = setup () in
  let cs, ss = channel rng ~ca ~server_key ~cert in
  let challenge, nonce = Ra_channel.request rng cs in
  let response =
    match Ra_channel.respond ss sgx comp ~challenge with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let strict_policy =
    { Attestation.trusted_cas = [ ("intel", ca.Rsa.pub) ];
      shared_device_keys = [];
      accepted_measurements = [ Sha256.digest "some-other-enclave" ] }
  in
  match Ra_channel.check cs ~policy:strict_policy ~nonce ~response with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unexpected measurement accepted"

let test_stale_nonce_rejected () =
  let rng, ca, server_key, cert, sgx, comp, policy = setup () in
  let cs, ss = channel rng ~ca ~server_key ~cert in
  let challenge, _nonce = Ra_channel.request rng cs in
  let response =
    match Ra_channel.respond ss sgx comp ~challenge with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  match Ra_channel.check cs ~policy ~nonce:"different-nonce" ~response with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "stale nonce accepted"

let test_replay_after_heal_rejected () =
  (* a partition kills the session; after the heal the fleet runs a NEW
     handshake. Evidence captured before the cut must not survive onto
     the new session — neither as the raw record nor re-wrapped *)
  let rng, ca, server_key, cert, sgx, comp, policy = setup () in
  let cs1, ss1 = channel rng ~ca ~server_key ~cert in
  let challenge, nonce = Ra_channel.request rng cs1 in
  let response1 =
    match Ra_channel.respond ss1 sgx comp ~challenge with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  (* the adversary decrypts nothing, but we (the test) peek at the
     plaintext evidence the way the old verifier would have *)
  let evidence_plain =
    match Sc.receive cs1 response1 with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  (* heal: fresh handshake, fresh session, same genuine server *)
  let cs2, ss2 = channel rng ~ca ~server_key ~cert in
  (* raw record from the dead session: the new session's AEAD rejects *)
  (match Ra_channel.check cs2 ~policy ~nonce ~response:response1 with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "stale record accepted on new session");
  (* worst case: the evidence plaintext leaked and is re-wrapped as a
     legitimate record of the new session, with the matching nonce — the
     channel binding to the dead session's exporter must still kill it *)
  let replayed = Sc.send ss2 evidence_plain in
  (match Ra_channel.check cs2 ~policy ~nonce ~response:replayed with
   | Error e ->
     Alcotest.(check bool) "binding failure reported" true
       (String.length e > 0)
   | Ok () -> Alcotest.fail "replayed evidence accepted after heal!")

let test_tampered_evidence_typed_error () =
  (* the Dolev-Yao adversary's [Tamper] verdict swaps a packet's payload
     for arbitrary bytes; whatever it picks, [check] must come back as
     [Error _], never an exception *)
  let rng, ca, server_key, cert, sgx, comp, policy = setup () in
  let cs, ss = channel rng ~ca ~server_key ~cert in
  let challenge, nonce = Ra_channel.request rng cs in
  let response =
    match Ra_channel.respond ss sgx comp ~challenge with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let flipped =
    let b = Bytes.of_string response in
    let i = Bytes.length b / 2 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x55));
    Bytes.to_string b
  in
  List.iter
    (fun (label, mangled) ->
      match Ra_channel.check cs ~policy ~nonce ~response:mangled with
      | Error e ->
        Alcotest.(check bool) (label ^ ": error is descriptive") true
          (String.length e > 0)
      | Ok () -> Alcotest.fail (label ^ ": tampered evidence accepted")
      | exception e ->
        Alcotest.fail
          (label ^ ": raised instead of Error: " ^ Printexc.to_string e))
    [ ("bit-flip", flipped);
      ("truncated", String.sub response 0 (String.length response / 2));
      ("garbage", "not-a-record-at-all");
      ("empty", "") ]

let suite =
  [ Alcotest.test_case "attested channel verifies in-channel" `Quick
      test_attested_channel_happy_path;
    Alcotest.test_case "evidence replay after heal rejected" `Quick
      test_replay_after_heal_rejected;
    Alcotest.test_case "tampered evidence is a typed error" `Quick
      test_tampered_evidence_typed_error;
    Alcotest.test_case "relay attack defeated by channel binding" `Quick
      test_relay_attack_rejected;
    Alcotest.test_case "wrong measurement rejected" `Quick test_wrong_measurement_rejected;
    Alcotest.test_case "stale nonce rejected" `Quick test_stale_nonce_rejected ]
