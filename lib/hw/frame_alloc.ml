type t = {
  first_page : int;
  pages : int;
  mutable free_list : int list;
  allocated : (int, unit) Hashtbl.t;
}

let create ~first_page ~pages =
  if pages <= 0 || first_page < 0 then invalid_arg "Frame_alloc.create";
  { first_page;
    pages;
    free_list = List.init pages (fun i -> first_page + i);
    allocated = Hashtbl.create 64 }

let alloc t =
  match t.free_list with
  | [] -> None
  | page :: rest ->
    t.free_list <- rest;
    Hashtbl.replace t.allocated page ();
    Some page

let alloc_n t n =
  if List.length t.free_list < n then None
  else begin
    let rec take acc k = if k = 0 then List.rev acc else
        match alloc t with
        | Some p -> take (p :: acc) (k - 1)
        | None -> assert false
    in
    Some (take [] n)
  end

let free t page =
  if page < t.first_page || page >= t.first_page + t.pages then
    invalid_arg "Frame_alloc.free: frame not owned";
  if not (Hashtbl.mem t.allocated page) then
    invalid_arg "Frame_alloc.free: double free";
  Hashtbl.remove t.allocated page;
  t.free_list <- page :: t.free_list

let free_count t = List.length t.free_list

let total t = t.pages

let take_snapshot t =
  let free = t.free_list in
  let alloc = Lt_world.Snapshottable.save_hashtbl t.allocated in
  fun () ->
    t.free_list <- free;
    alloc ()

let state_digest t =
  let open Lt_world in
  let d = List.fold_left Digest64.int (Digest64.int Digest64.basis t.pages) t.free_list in
  Snapshottable.digest_hashtbl ~key:string_of_int ~value:(fun () -> "") t.allocated d
