(** System bus with requester identity.

    TrustZone's defining hardware feature is "an additional identifying
    bit with each request" (§II-B): the NS bit. The bus model carries a
    requester tag on every transaction, lets firmware mark physical
    ranges secure-only, and routes device DMA through the {!Iommu}.
    All memory traffic of the simulated substrates flows through here,
    so the bus also keeps an access log that the covert-channel and
    tamper experiments inspect. *)

type requester =
  | Cpu of { secure : bool }  (** secure = TrustZone secure world *)
  | Device of string          (** DMA from a named peripheral *)

type op = Read | Write

type denial =
  | Secure_only of int   (** normal-world access to a secure range *)
  | Dma_blocked of int   (** IOMMU refused the device *)
  | Rom of int           (** write to read-only region *)
  | Bad of int           (** address outside any region *)
  | Integrity of int     (** MEE MAC mismatch: physical tampering detected *)

type t

val create : Phys_mem.t -> Iommu.t -> Clock.t -> t

val memory : t -> Phys_mem.t

val iommu : t -> Iommu.t

(** [mark_secure t ~base ~size] makes the range secure-world-only
    (TrustZone TZASC-style protection controller). *)
val mark_secure : t -> base:int -> size:int -> unit

val clear_secure : t -> base:int -> size:int -> unit

val is_secure_range : t -> int -> bool

(** [read t ~requester ~addr ~len] / [write t ~requester ~addr data]
    perform one checked transaction, charging bus ticks. *)
val read : t -> requester:requester -> addr:int -> len:int -> (string, denial) result

val write : t -> requester:requester -> addr:int -> string -> (unit, denial) result

(** [transactions t] is the count of successful transactions so far. *)
val transactions : t -> int

val pp_denial : Format.formatter -> denial -> unit

(** Capture the state; the returned thunk restores it (re-runnable). *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t
