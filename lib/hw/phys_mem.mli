(** Simulated physical memory.

    A flat byte store partitioned into named regions. Regions are either
    on-chip (caches, SRAM scratchpads, boot ROM — shielded from physical
    attackers) or off-chip (DRAM — exposed on the memory bus, per §II-D
    of the paper). Ranges of off-chip memory can be covered by a memory
    encryption engine (MEE), the mechanism behind SGX enclave memory and
    the SEP's inline encryption: CPU-path accesses see plaintext, while
    physical (tamper) accesses see ciphertext, and physical modification
    is detected on the next CPU read via per-block MACs. *)

type t

type region = {
  name : string;
  base : int;
  size : int;
  on_chip : bool;
  writable : bool;  (** ROM regions are not CPU-writable *)
}

exception Bad_address of int

exception Rom_write of int

(** Raised on a CPU read from MEE-covered memory whose integrity MAC no
    longer matches — i.e. a physical attacker patched the ciphertext. *)
exception Integrity_violation of int

(** [create regions] builds memory covering the given non-overlapping
    regions. Raises [Invalid_argument] on overlaps. *)
val create : region list -> t

val regions : t -> region list

(** [region_of t addr] is the region containing [addr]. *)
val region_of : t -> int -> region option

(** [install_mee t ~base ~size ~key] covers [base, base+size) with an
    encryption engine keyed by [key]. The range must be block-aligned
    (64-byte blocks) and lie in a single off-chip region. *)
val install_mee : t -> base:int -> size:int -> key:string -> unit

(** [remove_mee t ~base] tears the engine down, leaving ciphertext. *)
val remove_mee : t -> base:int -> unit

(** CPU-path access: applies MEE transparently; enforces ROM immutability. *)
val cpu_read : t -> addr:int -> len:int -> string

val cpu_write : t -> addr:int -> string -> unit

(** Physical-path access ({!Tamper}): raw stored bytes, no MEE, no ROM
    protection for reads; writes to on-chip regions raise [Bad_address]
    (the attacker cannot reach inside the package). *)
val phys_read : t -> addr:int -> len:int -> string

val phys_write : t -> addr:int -> string -> unit

(** [zero t ~addr ~len] clears memory via the CPU path. *)
val zero : t -> addr:int -> len:int -> unit

(** [manufacture_write t ~addr s] writes ignoring all protections —
    the factory burning ROM contents before the device ships. Not to be
    used after boot; runtime code goes through {!cpu_write}. *)
val manufacture_write : t -> addr:int -> string -> unit

(** Capture the byte store (copy-on-write: O(chunks)) and MEE state;
    the returned thunk restores both (re-runnable). *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t
