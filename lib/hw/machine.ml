type t = {
  clock : Clock.t;
  mem : Phys_mem.t;
  iommu : Iommu.t;
  bus : Bus.t;
  cache : Cache.t;
  fuses : Fuse.t;
  dram_frames : Frame_alloc.t;
  rom_base : int;
  rom_size : int;
  sram_base : int;
  sram_size : int;
  dram_base : int;
  dram_size : int;
}

let create ?(dram_pages = 1024) ?(cache_sets = 64) ?(cache_ways = 4)
    ?(iommu_enabled = true) () =
  let page = Mmu.page_size in
  let rom_base = 0 and rom_size = 16 * page in
  let sram_base = rom_size and sram_size = 64 * page in
  let dram_base = rom_size + sram_size and dram_size = dram_pages * page in
  let mem =
    Phys_mem.create
      [ { Phys_mem.name = "rom"; base = rom_base; size = rom_size;
          on_chip = true; writable = false };
        { Phys_mem.name = "sram"; base = sram_base; size = sram_size;
          on_chip = true; writable = true };
        { Phys_mem.name = "dram"; base = dram_base; size = dram_size;
          on_chip = false; writable = true } ]
  in
  let clock = Clock.create () in
  let iommu = Iommu.create ~enabled:iommu_enabled in
  { clock;
    mem;
    iommu;
    bus = Bus.create mem iommu clock;
    cache = Cache.create ~sets:cache_sets ~ways:cache_ways;
    fuses = Fuse.create ();
    dram_frames = Frame_alloc.create ~first_page:(dram_base / page) ~pages:dram_pages;
    rom_base;
    rom_size;
    sram_base;
    sram_size;
    dram_base;
    dram_size }

let load_rom t ~off code =
  if off < 0 || off + String.length code > t.rom_size then
    invalid_arg "Machine.load_rom: outside ROM";
  Phys_mem.manufacture_write t.mem ~addr:(t.rom_base + off) code

let rom_contents t ~off ~len =
  if off < 0 || off + len > t.rom_size then invalid_arg "Machine.rom_contents";
  Phys_mem.cpu_read t.mem ~addr:(t.rom_base + off) ~len

let tamper t = Tamper.create t.mem

(* one capture for the whole machine: DRAM goes through the Cow store,
   everything else is small control state *)
let take_snapshot t =
  Lt_world.Snapshottable.save_refs
    [ (fun () -> Clock.take_snapshot t.clock);
      (fun () -> Phys_mem.take_snapshot t.mem);
      (fun () -> Iommu.take_snapshot t.iommu);
      (fun () -> Bus.take_snapshot t.bus);
      (fun () -> Cache.take_snapshot t.cache);
      (fun () -> Fuse.take_snapshot t.fuses);
      (fun () -> Frame_alloc.take_snapshot t.dram_frames) ]

let state_digest t =
  let open Lt_world.Digest64 in
  basis
  |> Fun.flip combine (Clock.state_digest t.clock)
  |> Fun.flip combine (Phys_mem.state_digest t.mem)
  |> Fun.flip combine (Iommu.state_digest t.iommu)
  |> Fun.flip combine (Bus.state_digest t.bus)
  |> Fun.flip combine (Cache.state_digest t.cache)
  |> Fun.flip combine (Fuse.state_digest t.fuses)
  |> Fun.flip combine (Frame_alloc.state_digest t.dram_frames)

let layer ?(name = "machine") t =
  Lt_world.Snapshottable.make ~name
    ~take:(fun () -> take_snapshot t)
    ~digest:(fun () -> state_digest t)
