let line_size = 64

type line = { domain : string; tag : int; mutable stamp : int }

type t = {
  set_count : int;
  ways : int;
  lines : line option array array; (* [set].[way] *)
  partitions : (string, int * int) Hashtbl.t;
  mutable tick : int;
}

let create ~sets ~ways =
  if sets <= 0 || ways <= 0 then invalid_arg "Cache.create";
  { set_count = sets;
    ways;
    lines = Array.init sets (fun _ -> Array.make ways None);
    partitions = Hashtbl.create 4;
    tick = 0 }

let sets t = t.set_count

let partition t ~domain ~lo ~hi =
  if lo < 0 || hi >= t.set_count || lo > hi then invalid_arg "Cache.partition";
  Hashtbl.replace t.partitions domain (lo, hi)

let unpartition t ~domain = Hashtbl.remove t.partitions domain

let set_of t ~domain addr =
  let raw = (addr / line_size) mod t.set_count in
  match Hashtbl.find_opt t.partitions domain with
  | None -> raw
  | Some (lo, hi) -> lo + (raw mod (hi - lo + 1))

let tag_of addr = addr / line_size

let find_way t set ~domain ~tag =
  let ways = t.lines.(set) in
  let rec go i =
    if i >= t.ways then None
    else
      match ways.(i) with
      | Some l when l.domain = domain && l.tag = tag -> Some i
      | _ -> go (i + 1)
  in
  go 0

let access t ~domain ~addr =
  t.tick <- t.tick + 1;
  let set = set_of t ~domain addr in
  let tag = tag_of addr in
  match find_way t set ~domain ~tag with
  | Some i ->
    (match t.lines.(set).(i) with Some l -> l.stamp <- t.tick | None -> ());
    true
  | None ->
    (* fill: pick an empty way, else evict the LRU one *)
    let ways = t.lines.(set) in
    let victim = ref 0 in
    let best = ref max_int in
    for i = 0 to t.ways - 1 do
      match ways.(i) with
      | None ->
        if !best > -1 then begin
          victim := i;
          best := -1
        end
      | Some l -> if l.stamp < !best then begin victim := i; best := l.stamp end
    done;
    ways.(!victim) <- Some { domain; tag; stamp = t.tick };
    false

let probe t ~domain ~addr =
  let set = set_of t ~domain addr in
  find_way t set ~domain ~tag:(tag_of addr) <> None

let flush t =
  Array.iter (fun ways -> Array.fill ways 0 t.ways None) t.lines

let resident_sets t ~domain =
  let acc = ref [] in
  Array.iteri
    (fun set ways ->
      if Array.exists (function Some l -> l.domain = domain | None -> false) ways then
        acc := set :: !acc)
    t.lines;
  List.rev !acc

let take_snapshot t =
  (* line records carry a mutable LRU stamp: deep-copy them *)
  let lines =
    Array.map
      (Array.map (function
        | Some l -> Some { l with stamp = l.stamp }
        | None -> None))
      t.lines
  in
  let partitions = Lt_world.Snapshottable.save_hashtbl t.partitions in
  let tick = t.tick in
  fun () ->
    Array.iteri
      (fun s ways ->
        Array.blit
          (Array.map (function Some l -> Some { l with stamp = l.stamp } | None -> None)
             ways)
          0 t.lines.(s) 0 t.ways)
      lines;
    partitions ();
    t.tick <- tick

let state_digest t =
  let open Lt_world in
  let d = ref (Digest64.int Digest64.basis t.tick) in
  Array.iter
    (Array.iter (function
      | None -> d := Digest64.byte !d 0
      | Some l ->
        d := Digest64.int (Digest64.int (Digest64.string !d l.domain) l.tag) l.stamp))
    t.lines;
  Snapshottable.digest_hashtbl ~key:Fun.id
    ~value:(fun (lo, hi) -> Printf.sprintf "%d-%d" lo hi)
    t.partitions !d
