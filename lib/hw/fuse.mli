(** Fuse bank: write-once device secrets.

    The smart-meter example fuses a per-device AES key "into the chip by
    the manufacturer", readable only from the TrustZone secure world
    (§III-C). Fuses are programmed once (at manufacture) and read with a
    requester privilege; secure-only fuses refuse normal-world reads. *)

type t

type visibility =
  | Secure_only  (** readable only with [secure:true] *)
  | Public       (** readable by anyone, e.g. device serial numbers *)

val create : unit -> t

(** [program t ~name ~visibility value] burns a fuse. Raises
    [Invalid_argument] if [name] is already programmed. *)
val program : t -> name:string -> visibility:visibility -> string -> unit

(** [read t ~name ~secure] is [Some value] when the fuse exists and the
    requester privilege suffices. *)
val read : t -> name:string -> secure:bool -> string option

val names : t -> string list

(** Capture the state; the returned thunk restores it (re-runnable). *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t
