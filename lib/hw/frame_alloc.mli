(** Physical frame allocator over a page range (free-list based).

    Used by kernels and enclave managers to hand out 4 KiB frames; frees
    are checked so double-free bugs in substrate code surface early. *)

type t

(** [create ~first_page ~pages] manages [pages] frames starting at
    physical page [first_page]. *)
val create : first_page:int -> pages:int -> t

(** [alloc t] takes a free frame (physical page number). *)
val alloc : t -> int option

(** [alloc_n t n] takes [n] frames, or [None] (and takes nothing) if
    fewer are free. *)
val alloc_n : t -> int -> int list option

(** [free t page] returns a frame. Raises [Invalid_argument] on frames
    not owned or already free. *)
val free : t -> int -> unit

val free_count : t -> int

val total : t -> int

(** Capture the state; the returned thunk restores it (re-runnable). *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t
