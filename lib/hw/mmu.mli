(** Memory management unit: per-address-space page tables.

    The paper's "basic access control" requirement (§II-D). A kernel
    (software that may program the MMU) creates one [Mmu.t] per address
    space and maps 4 KiB pages with read/write/execute permissions.
    Translation faults are explicit values so callers (the microkernel)
    can deliver them as page faults. *)

type t

type perm = { read : bool; write : bool; execute : bool }

type access = Read | Write | Execute

type fault = Unmapped of int | Permission of int * access

val page_size : int
(** 4096. *)

val rw : perm

val ro : perm

val rx : perm

val create : unit -> t

(** [map t ~vpage ~ppage perm] installs a mapping for virtual page
    [vpage] (page numbers, not byte addresses). Remapping replaces. *)
val map : t -> vpage:int -> ppage:int -> perm -> unit

val unmap : t -> vpage:int -> unit

(** [translate t ~vaddr access] resolves a byte address. *)
val translate : t -> vaddr:int -> access -> (int, fault) result

(** [mappings t] lists [(vpage, ppage, perm)] triples, for analysis. *)
val mappings : t -> (int * int * perm) list

(** [mapped_ppages t] is the set of physical pages reachable, for
    spatial-isolation checking. *)
val mapped_ppages : t -> int list

val pp_fault : Format.formatter -> fault -> unit

(** Capture the state; the returned thunk restores it (re-runnable). *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t
