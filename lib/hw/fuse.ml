type visibility = Secure_only | Public

type t = { fuses : (string, visibility * string) Hashtbl.t }

let create () = { fuses = Hashtbl.create 8 }

let program t ~name ~visibility value =
  if Hashtbl.mem t.fuses name then
    invalid_arg (Printf.sprintf "Fuse.program: %s already programmed" name);
  Hashtbl.replace t.fuses name (visibility, value)

let read t ~name ~secure =
  match Hashtbl.find_opt t.fuses name with
  | None -> None
  | Some (Public, v) -> Some v
  | Some (Secure_only, v) -> if secure then Some v else None

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.fuses [] |> List.sort Stdlib.compare

let take_snapshot t = Lt_world.Snapshottable.save_hashtbl t.fuses

let state_digest t =
  Lt_world.Snapshottable.digest_hashtbl ~key:Fun.id
    ~value:(fun (vis, v) -> (match vis with Secure_only -> "s|" | Public -> "p|") ^ v)
    t.fuses Lt_world.Digest64.basis
