(** A complete simulated machine: the hardware every substrate runs on.

    The default memory map mirrors a small embedded SoC:
    - boot ROM (on-chip, immutable): trust anchor code and launch policy
    - SRAM (on-chip): scratchpad memory shielded from physical attack
    - DRAM (off-chip): bulk memory, exposed on the bus

    One machine carries one clock, one bus, one shared cache, one fuse
    bank and a DRAM frame allocator. Substrates (microkernel, TrustZone,
    SGX, SEP, TPM) are constructed over a [Machine.t]. *)

type t = {
  clock : Clock.t;
  mem : Phys_mem.t;
  iommu : Iommu.t;
  bus : Bus.t;
  cache : Cache.t;
  fuses : Fuse.t;
  dram_frames : Frame_alloc.t;
  rom_base : int;
  rom_size : int;
  sram_base : int;
  sram_size : int;
  dram_base : int;
  dram_size : int;
}

(** [create ?dram_pages ?cache_sets ?cache_ways ()] builds a machine.
    Defaults: 1024 DRAM pages (4 MiB), 64-set 4-way cache, IOMMU
    enabled. *)
val create :
  ?dram_pages:int -> ?cache_sets:int -> ?cache_ways:int -> ?iommu_enabled:bool ->
  unit -> t

(** [load_rom t ~off code] installs immutable boot code at ROM offset
    [off] (manufacture-time only: bypasses the ROM write protection). *)
val load_rom : t -> off:int -> string -> unit

(** [rom_contents t ~off ~len] reads back ROM, e.g. to measure it. *)
val rom_contents : t -> off:int -> len:int -> string

(** [tamper t] is the physical attacker's handle on this machine. *)
val tamper : t -> Tamper.t

(** Capture every hardware block (clock, memory+MEEs, IOMMU, bus,
    cache, fuses, frame allocator) in one restore thunk. *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t

(** The machine as one {!Lt_world.Snapshottable} layer. *)
val layer : ?name:string -> t -> Lt_world.Snapshottable.layer
