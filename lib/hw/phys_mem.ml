open Lt_crypto
module Cow = Lt_world.Cow

type region = {
  name : string;
  base : int;
  size : int;
  on_chip : bool;
  writable : bool;
}

exception Bad_address of int

exception Rom_write of int

exception Integrity_violation of int

let block_size = 64

type mee = {
  mee_base : int;
  mee_size : int;
  enc_key : string;
  mac_key : string;
  macs : (int, string) Hashtbl.t; (* block index -> tag, held on-chip *)
  ks_memo : (int, string) Hashtbl.t;
      (* per-block keystream is a pure function of the fixed engine key,
         recomputed on every load and store otherwise; a cache, invisible
         to snapshots *)
}

type t = {
  data : Cow.t;
  region_list : region list;
  mutable mees : mee list;
}

let create region_list =
  let sorted = List.sort (fun a b -> Stdlib.compare a.base b.base) region_list in
  let rec check = function
    | a :: (b :: _ as rest) ->
      if a.base + a.size > b.base then
        invalid_arg
          (Printf.sprintf "Phys_mem.create: regions %s and %s overlap" a.name b.name);
      check rest
    | _ -> ()
  in
  check sorted;
  List.iter
    (fun r -> if r.base < 0 || r.size <= 0 then invalid_arg "Phys_mem.create: bad region")
    sorted;
  let top =
    List.fold_left (fun acc r -> max acc (r.base + r.size)) 0 sorted
  in
  { data = Cow.create ~len:top; region_list = sorted; mees = [] }

let regions t = t.region_list

let region_of t addr =
  List.find_opt (fun r -> addr >= r.base && addr < r.base + r.size) t.region_list

let check_range t addr len =
  if len < 0 then raise (Bad_address addr);
  (* every byte of the range must belong to some region *)
  let rec covered a remaining =
    remaining = 0
    ||
    match region_of t a with
    | None -> false
    | Some r ->
      let in_region = min remaining (r.base + r.size - a) in
      covered (a + in_region) (remaining - in_region)
  in
  if not (covered addr len) then raise (Bad_address addr)

let find_mee t addr =
  List.find_opt (fun m -> addr >= m.mee_base && addr < m.mee_base + m.mee_size) t.mees

(* keystream for one block: SHA-256(key || index) twice gives 64 bytes *)
let keystream m block_index =
  match Hashtbl.find_opt m.ks_memo block_index with
  | Some ks -> ks
  | None ->
    let label i = Printf.sprintf "%s|%d|%d" m.enc_key block_index i in
    let ks = Sha256.digest (label 0) ^ Sha256.digest (label 1) in
    Hashtbl.replace m.ks_memo block_index ks;
    ks

let block_mac m block_index ciphertext =
  Hmac.mac ~key:m.mac_key (Printf.sprintf "%d|" block_index ^ ciphertext)

let raw_block t m block_index =
  let addr = m.mee_base + (block_index * block_size) in
  Cow.sub_string t.data ~pos:addr ~len:block_size

(* decrypt-and-verify one covered block *)
let load_block t m block_index =
  let ct = raw_block t m block_index in
  (match Hashtbl.find_opt m.macs block_index with
   | Some tag when Ct.equal tag (block_mac m block_index ct) -> ()
   | Some _ -> raise (Integrity_violation (m.mee_base + (block_index * block_size)))
   | None -> raise (Integrity_violation (m.mee_base + (block_index * block_size))));
  let ks = keystream m block_index in
  String.init block_size (fun i -> Char.chr (Char.code ct.[i] lxor Char.code ks.[i]))

let store_block t m block_index plaintext =
  let ks = keystream m block_index in
  let ct =
    String.init block_size (fun i -> Char.chr (Char.code plaintext.[i] lxor Char.code ks.[i]))
  in
  let addr = m.mee_base + (block_index * block_size) in
  Cow.blit_string ct t.data ~pos:addr;
  Hashtbl.replace m.macs block_index (block_mac m block_index ct)

let install_mee t ~base ~size ~key =
  if base mod block_size <> 0 || size mod block_size <> 0 || size <= 0 then
    invalid_arg "Phys_mem.install_mee: range must be 64-byte aligned";
  (match region_of t base with
   | Some r when not r.on_chip && base + size <= r.base + r.size -> ()
   | _ -> invalid_arg "Phys_mem.install_mee: range must lie in one off-chip region");
  if List.exists
       (fun m -> base < m.mee_base + m.mee_size && m.mee_base < base + size)
       t.mees
  then invalid_arg "Phys_mem.install_mee: overlapping engine";
  let m =
    { mee_base = base;
      mee_size = size;
      enc_key = Hkdf.derive ~secret:key ~salt:"mee" ~info:"enc" 32;
      mac_key = Hkdf.derive ~secret:key ~salt:"mee" ~info:"mac" 32;
      macs = Hashtbl.create 64;
      ks_memo = Hashtbl.create 64 }
  in
  t.mees <- m :: t.mees;
  (* encrypt current contents in place *)
  for b = 0 to (size / block_size) - 1 do
    let plaintext = Cow.sub_string t.data ~pos:(base + (b * block_size)) ~len:block_size in
    store_block t m b plaintext
  done

let remove_mee t ~base =
  t.mees <- List.filter (fun m -> m.mee_base <> base) t.mees

(* iterate a range in chunks that never cross a block boundary *)
let iter_chunks addr len f =
  let pos = ref addr in
  let stop = addr + len in
  while !pos < stop do
    let block_end = ((!pos / block_size) + 1) * block_size in
    let chunk = min (stop - !pos) (block_end - !pos) in
    f !pos chunk;
    pos := !pos + chunk
  done

let cpu_read t ~addr ~len =
  check_range t addr len;
  let out = Buffer.create len in
  iter_chunks addr len (fun a n ->
      match find_mee t a with
      | None -> Buffer.add_string out (Cow.sub_string t.data ~pos:a ~len:n)
      | Some m ->
        let block_index = (a - m.mee_base) / block_size in
        let plain = load_block t m block_index in
        let off = (a - m.mee_base) mod block_size in
        Buffer.add_string out (String.sub plain off n));
  Buffer.contents out

let cpu_write t ~addr s =
  let len = String.length s in
  check_range t addr len;
  (* refuse writes that touch a non-writable (ROM) region *)
  iter_chunks addr len (fun a _ ->
      match region_of t a with
      | Some r when not r.writable -> raise (Rom_write a)
      | _ -> ());
  let src = ref 0 in
  iter_chunks addr len (fun a n ->
      (match find_mee t a with
       | None -> Cow.blit_string (String.sub s !src n) t.data ~pos:a
       | Some m ->
         let block_index = (a - m.mee_base) / block_size in
         let plain = Bytes.of_string (load_block t m block_index) in
         let off = (a - m.mee_base) mod block_size in
         Bytes.blit_string s !src plain off n;
         store_block t m block_index (Bytes.unsafe_to_string plain));
      src := !src + n)

let phys_read t ~addr ~len =
  check_range t addr len;
  iter_chunks addr len (fun a _ ->
      match region_of t a with
      | Some r when r.on_chip -> raise (Bad_address a)
      | _ -> ());
  Cow.sub_string t.data ~pos:addr ~len

let phys_write t ~addr s =
  let len = String.length s in
  check_range t addr len;
  iter_chunks addr len (fun a _ ->
      match region_of t a with
      | Some r when r.on_chip -> raise (Bad_address a)
      | _ -> ());
  Cow.blit_string s t.data ~pos:addr

let zero t ~addr ~len = cpu_write t ~addr (String.make len '\000')

let manufacture_write t ~addr s =
  check_range t addr (String.length s);
  Cow.blit_string s t.data ~pos:addr

(* --- Snapshottable ---------------------------------------------------- *)

(* the byte store is copy-on-write: capture is O(chunks) pointer copies,
   plus the (small, on-chip) MAC tables of any installed engines *)
let take_snapshot t =
  let data = Cow.snapshot t.data in
  let mees = t.mees in
  let macs = List.map (fun m -> Lt_world.Snapshottable.save_hashtbl m.macs) mees in
  fun () ->
    Cow.restore t.data data;
    t.mees <- mees;
    List.iter (fun restore -> restore ()) macs

let state_digest t =
  let open Lt_world in
  let d = Cow.digest t.data in
  List.fold_left
    (fun d m ->
      Snapshottable.digest_hashtbl ~key:string_of_int ~value:Fun.id m.macs
        (Digest64.int (Digest64.int d m.mee_base) m.mee_size))
    d
    (List.sort (fun a b -> Stdlib.compare a.mee_base b.mee_base) t.mees)
