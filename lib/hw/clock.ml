type t = { mutable ticks : int }

let create () = { ticks = 0 }

let now t = t.ticks

let advance t n =
  if n < 0 then invalid_arg "Clock.advance: negative";
  t.ticks <- t.ticks + n

let elapsed t f =
  let start = t.ticks in
  let r = f () in
  (r, t.ticks - start)

let take_snapshot t =
  let v = t.ticks in
  fun () -> t.ticks <- v

let state_digest t = Lt_world.Digest64.(int basis t.ticks)
