type t = {
  mutable on : bool;
  tables : (string, (int, bool) Hashtbl.t) Hashtbl.t; (* device -> ppage -> writable *)
}

let create ~enabled = { on = enabled; tables = Hashtbl.create 8 }

let enabled t = t.on

let set_enabled t v = t.on <- v

let table_for t device =
  match Hashtbl.find_opt t.tables device with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 16 in
    Hashtbl.replace t.tables device tbl;
    tbl

let grant t ~device ~ppage ~writable =
  Hashtbl.replace (table_for t device) ppage writable

let revoke t ~device ~ppage =
  match Hashtbl.find_opt t.tables device with
  | None -> ()
  | Some tbl -> Hashtbl.remove tbl ppage

let check t ~device ~paddr ~write =
  if not t.on then true
  else
    match Hashtbl.find_opt t.tables device with
    | None -> false
    | Some tbl ->
      (match Hashtbl.find_opt tbl (paddr / Mmu.page_size) with
       | None -> false
       | Some writable -> (not write) || writable)

let reachable t ~device =
  if not t.on then None
  else
    match Hashtbl.find_opt t.tables device with
    | None -> Some []
    | Some tbl ->
      Some (Hashtbl.fold (fun p _ acc -> p :: acc) tbl [] |> List.sort_uniq Stdlib.compare)

let take_snapshot t =
  let on = t.on in
  let tables = Lt_world.Snapshottable.save_hashtbl_registry t.tables in
  fun () ->
    t.on <- on;
    tables ()

let state_digest t =
  let open Lt_world in
  let d = Digest64.bool Digest64.basis t.on in
  List.fold_left
    (fun d (dev, tbl) ->
      Snapshottable.digest_hashtbl ~key:string_of_int ~value:string_of_bool tbl
        (Digest64.string d dev))
    d
    (Snapshottable.sorted_bindings t.tables)
