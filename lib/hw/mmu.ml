type perm = { read : bool; write : bool; execute : bool }

type access = Read | Write | Execute

type fault = Unmapped of int | Permission of int * access

let page_size = 4096

let rw = { read = true; write = true; execute = false }

let ro = { read = true; write = false; execute = false }

let rx = { read = true; write = false; execute = true }

type t = { table : (int, int * perm) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let map t ~vpage ~ppage perm =
  if vpage < 0 || ppage < 0 then invalid_arg "Mmu.map: negative page";
  Hashtbl.replace t.table vpage (ppage, perm)

let unmap t ~vpage = Hashtbl.remove t.table vpage

let allowed perm = function
  | Read -> perm.read
  | Write -> perm.write
  | Execute -> perm.execute

let translate t ~vaddr access =
  let vpage = vaddr / page_size and off = vaddr mod page_size in
  match Hashtbl.find_opt t.table vpage with
  | None -> Error (Unmapped vaddr)
  | Some (ppage, perm) ->
    if allowed perm access then Ok ((ppage * page_size) + off)
    else Error (Permission (vaddr, access))

let mappings t =
  Hashtbl.fold (fun vpage (ppage, perm) acc -> (vpage, ppage, perm) :: acc) t.table []
  |> List.sort Stdlib.compare

let mapped_ppages t =
  Hashtbl.fold (fun _ (ppage, _) acc -> ppage :: acc) t.table []
  |> List.sort_uniq Stdlib.compare

let pp_fault fmt = function
  | Unmapped vaddr -> Format.fprintf fmt "unmapped access at 0x%x" vaddr
  | Permission (vaddr, access) ->
    let kind = match access with Read -> "read" | Write -> "write" | Execute -> "execute" in
    Format.fprintf fmt "%s permission fault at 0x%x" kind vaddr

let take_snapshot t = Lt_world.Snapshottable.save_hashtbl t.table

let state_digest t =
  Lt_world.Snapshottable.digest_hashtbl ~key:string_of_int
    ~value:(fun (ppage, p) ->
      Printf.sprintf "%d%c%c%c" ppage
        (if p.read then 'r' else '-')
        (if p.write then 'w' else '-')
        (if p.execute then 'x' else '-'))
    t.table Lt_world.Digest64.basis
