(** Set-associative shared cache with optional partitioning.

    "Hardware is leaky" (§II-C): SGX operates unencrypted on CPU caches
    and is subject to prime+probe attacks. This model exposes exactly
    that: lines are tagged with the *security domain* that filled them,
    an attacker domain can prime sets and later probe for evictions
    caused by a victim's secret-dependent accesses. Set partitioning
    (cache colouring) is the mitigation toggle used by the
    `cache-sidechannel` experiment. *)

type t

val line_size : int
(** 64 bytes. *)

(** [create ~sets ~ways] builds an empty cache. *)
val create : sets:int -> ways:int -> t

val sets : t -> int

(** [partition t ~domain ~lo ~hi] confines [domain]'s accesses to sets
    [lo..hi] (inclusive). Domains without a partition use all sets. *)
val partition : t -> domain:string -> lo:int -> hi:int -> unit

val unpartition : t -> domain:string -> unit

(** [access t ~domain ~addr] touches the line for [addr]; returns [true]
    on hit. Misses fill the LRU way of the (possibly remapped) set. *)
val access : t -> domain:string -> addr:int -> bool

(** [probe t ~domain ~addr] is a non-filling lookup: hit or miss without
    disturbing the cache — the attacker's timing measurement. *)
val probe : t -> domain:string -> addr:int -> bool

val flush : t -> unit

(** [resident_sets t ~domain] lists sets currently holding at least one
    line of [domain], for assertions. *)
val resident_sets : t -> domain:string -> int list

(** Capture the state; the returned thunk restores it (re-runnable). *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t
