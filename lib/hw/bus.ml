type requester = Cpu of { secure : bool } | Device of string

type op = Read | Write

type denial =
  | Secure_only of int
  | Dma_blocked of int
  | Rom of int
  | Bad of int
  | Integrity of int

type t = {
  mem : Phys_mem.t;
  iommu : Iommu.t;
  clock : Clock.t;
  mutable secure_ranges : (int * int) list; (* base, size *)
  mutable count : int;
}

let create mem iommu clock = { mem; iommu; clock; secure_ranges = []; count = 0 }

let memory t = t.mem

let iommu t = t.iommu

let mark_secure t ~base ~size = t.secure_ranges <- (base, size) :: t.secure_ranges

let clear_secure t ~base ~size =
  t.secure_ranges <- List.filter (fun r -> r <> (base, size)) t.secure_ranges

let is_secure_range t addr =
  List.exists (fun (base, size) -> addr >= base && addr < base + size) t.secure_ranges

(* a transaction touching [addr, addr+len) crosses a secure range? *)
let touches_secure t addr len =
  List.exists
    (fun (base, size) -> addr < base + size && base < addr + len)
    t.secure_ranges

let authorize t ~requester ~addr ~len ~write =
  match requester with
  | Cpu { secure } ->
    if (not secure) && touches_secure t addr len then Error (Secure_only addr) else Ok ()
  | Device device ->
    (* devices are never secure-world; also subject to the IOMMU *)
    if touches_secure t addr len then Error (Secure_only addr)
    else begin
      let page = Mmu.page_size in
      let rec check a =
        if a >= addr + len then Ok ()
        else if Iommu.check t.iommu ~device ~paddr:a ~write then
          check (((a / page) + 1) * page)
        else Error (Dma_blocked a)
      in
      check addr
    end

let charge t len =
  (* 1 tick per 8 bytes of traffic, minimum 1: a simple DRAM cost model *)
  Clock.advance t.clock (max 1 (len / 8))

let read t ~requester ~addr ~len =
  match authorize t ~requester ~addr ~len ~write:false with
  | Error e -> Error e
  | Ok () ->
    (try
       let data = Phys_mem.cpu_read t.mem ~addr ~len in
       charge t len;
       t.count <- t.count + 1;
       Ok data
     with
     | Phys_mem.Bad_address a -> Error (Bad a)
     | Phys_mem.Integrity_violation a -> Error (Integrity a))

let write t ~requester ~addr data =
  let len = String.length data in
  match authorize t ~requester ~addr ~len ~write:true with
  | Error e -> Error e
  | Ok () ->
    (try
       Phys_mem.cpu_write t.mem ~addr data;
       charge t len;
       t.count <- t.count + 1;
       Ok ()
     with
     | Phys_mem.Bad_address a -> Error (Bad a)
     | Phys_mem.Rom_write a -> Error (Rom a)
     | Phys_mem.Integrity_violation a -> Error (Integrity a))

let transactions t = t.count

let pp_denial fmt = function
  | Secure_only a -> Format.fprintf fmt "secure-only range at 0x%x" a
  | Dma_blocked a -> Format.fprintf fmt "IOMMU blocked DMA at 0x%x" a
  | Rom a -> Format.fprintf fmt "write to ROM at 0x%x" a
  | Bad a -> Format.fprintf fmt "bad address 0x%x" a
  | Integrity a -> Format.fprintf fmt "memory integrity violation at 0x%x" a

(* mem / iommu / clock are captured by their own layers *)
let take_snapshot t =
  let ranges = t.secure_ranges in
  let count = t.count in
  fun () ->
    t.secure_ranges <- ranges;
    t.count <- count

let state_digest t =
  let open Lt_world in
  let d = Digest64.int Digest64.basis t.count in
  Digest64.list
    (fun d (base, size) -> Digest64.int (Digest64.int d base) size)
    d t.secure_ranges
