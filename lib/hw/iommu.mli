(** IOMMU: filters DMA by device, the defence the paper names against
    malicious devices and drivers (§II-D). Each device id gets its own
    page table; a device without one has no DMA access at all when the
    IOMMU is enabled, and unrestricted access when it is disabled
    (modelling legacy platforms). *)

type t

val create : enabled:bool -> t

val enabled : t -> bool

val set_enabled : t -> bool -> unit

(** [grant t ~device ~ppage ~writable] lets [device] DMA to [ppage]. *)
val grant : t -> device:string -> ppage:int -> writable:bool -> unit

val revoke : t -> device:string -> ppage:int -> unit

(** [check t ~device ~paddr ~write] decides one DMA transaction. When
    the IOMMU is disabled every access is allowed — the dangerous
    default the paper warns about. *)
val check : t -> device:string -> paddr:int -> write:bool -> bool

(** [reachable t ~device] lists physical pages the device may touch
    ([None] = everything, IOMMU off). *)
val reachable : t -> device:string -> int list option

(** Capture the state; the returned thunk restores it (re-runnable). *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t
