(** Simulated time.

    Everything in the simulation is event-counted, never wall-clock, so
    runs are reproducible. A [Clock.t] is shared by one machine; cost
    models charge ticks for memory traffic, context switches, and world
    switches, which the schedulers and covert-channel experiments read. *)

type t

val create : unit -> t

(** [now t] is the current tick count. *)
val now : t -> int

(** [advance t n] moves time forward by [n] ticks ([n >= 0]). *)
val advance : t -> int -> unit

(** [elapsed t f] runs [f ()] and returns its result with the ticks the
    call consumed. *)
val elapsed : t -> (unit -> 'a) -> 'a * int

(** Capture the state; the returned thunk restores it (re-runnable). *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t
