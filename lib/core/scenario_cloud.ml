open Lt_crypto
module Sgx = Lt_sgx.Sgx

type attack =
  | Honest_host
  | Read_enclave_memory
  | Starve_enclave
  | Swap_enclave_code
  | Rollback_sealed_state

type outcome = {
  attested : bool;
  provisioned : bool;
  jobs_completed : int;
  secret_leaked : bool;
  state_regressed : bool;
  detail : string;
}

let attack_name = function
  | Honest_host -> "honest-host"
  | Read_enclave_memory -> "read-enclave-memory"
  | Starve_enclave -> "starve-enclave"
  | Swap_enclave_code -> "swap-enclave-code"
  | Rollback_sealed_state -> "rollback-sealed-state"

let all_attacks =
  [ Honest_host; Read_enclave_memory; Starve_enclave; Swap_enclave_code;
    Rollback_sealed_state ]

(* the §II-B trust topology as manifests: customer and host are exposed,
   and the enclave is reachable only through the host's vetted ecall
   boundary *)
let manifests =
  [ Manifest.v ~name:"customer" ~network_facing:true
      ~connects_to:[ Manifest.conn "host" "submit" ]
      ~size_loc:3000 ();
    Manifest.v ~name:"host" ~provides:[ "submit" ] ~network_facing:true
      ~vulnerable:true
      ~connects_to:[ Manifest.conn ~vetted:true "enclave" "ecall" ]
      ~size_loc:50_000 ~substrate:"monolithic-os" ();
    Manifest.v ~name:"enclave" ~provides:[ "ecall" ] ~substrate:"sgx"
      ~size_loc:1500 () ]

let conformance = lazy (Flow.check_deployment manifests)

let customer_code = "wordcount-enclave-v1: count words, never leak the corpus key"

let doctored_code = "wordcount-enclave-v1-doctored: also POST the corpus key to evil.example"

let secret = "CUSTOMER-CORPUS-KEY-0123456789"

(* the customer's enclave: key generation, secret provisioning, sealed
   state with optional counter pinning, and the job entry point *)
let enclave_services ~with_counter ~rng () =
  (* enclave-private state: lives inside the EPC conceptually; the
     closures model code running in the enclave *)
  let keypair : Rsa.keypair option ref = ref None in
  let state : (string * int) option ref = ref None in
  let seal_state ctx (s, jobs) =
    let counter =
      if with_counter then Sgx.counter_increment ctx else 0
    in
    Sgx.seal ctx (Wire.encode [ s; string_of_int jobs; string_of_int counter ])
  in
  [ ("keygen",
     fun ctx _ ->
       let kp = Rsa.generate ~bits:512 rng in
       keypair := Some kp;
       (* park the private key bytes in the EPC so memory attacks have a
          real target *)
       Sgx.mem_write ctx ~off:0 (Rsa.public_to_string kp.Rsa.pub);
       Rsa.public_to_string kp.Rsa.pub);
    ("provision",
     fun ctx encrypted ->
       (match !keypair with
        | None -> "ERR:no key"
        | Some kp ->
          (match Rsa.decrypt kp encrypted with
           | None -> "ERR:bad ciphertext"
           | Some s ->
             state := Some (s, 0);
             Sgx.mem_write ctx ~off:512 s;
             seal_state ctx (s, 0))));
    ("resume",
     fun ctx blob ->
       (match Sgx.unseal ctx blob with
        | None -> "ERR:unseal failed"
        | Some plain ->
          (match Wire.decode plain with
           | Some [ s; jobs; counter ] ->
             let sealed_counter = int_of_string counter in
             if with_counter && sealed_counter < Sgx.counter_read ctx then
               "ERR:stale state (counter regressed)"
             else begin
               state := Some (s, int_of_string jobs);
               "resumed:" ^ jobs
             end
           | _ -> "ERR:bad state")));
    ("work",
     fun ctx job ->
       (match !state with
        | None -> "ERR:not provisioned"
        | Some (s, jobs) ->
          (* the secret is used, never returned *)
          let result =
            String.sub (Sha256.hex (Hmac.mac ~key:s job)) 0 8
          in
          let jobs = jobs + 1 in
          state := Some (s, jobs);
          Wire.encode [ result; string_of_int jobs; seal_state ctx (s, jobs) ])) ]

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n > 0 && go 0

let run ?(with_counter = true) attack =
  match Lazy.force conformance with
  | Error e -> Error ("cloud scenario manifests: " ^ e)
  | Ok () ->
  let rng = Drbg.create 2027L in
  let intel = Rsa.generate ~bits:512 rng in
  let machine = Lt_hw.Machine.create ~dram_pages:256 () in
  let cpu = Sgx.init_cpu machine rng ~ca_name:"intel" ~ca_key:intel in
  let code = if attack = Swap_enclave_code then doctored_code else customer_code in
  let build () =
    Sgx.create_enclave cpu ~name:"customer" ~code ~epc_pages:2
      ~ecalls:(enclave_services ~with_counter ~rng ())
  in
  let e = ref (build ()) in
  let host_blobs : string list ref = ref [] in
  let secret_seen_by_host () =
    (* the host's visibility: physical memory + every blob it stores *)
    Lt_hw.Tamper.scan (Lt_hw.Machine.tamper machine) ~needle:secret <> []
    || List.exists (fun b -> contains b secret) !host_blobs
  in
  (* --- 1. remote attestation with key binding ---------------------------- *)
  let nonce = Sha256.hex (Drbg.bytes rng 16) in
  match Sgx.ecall cpu !e ~fn:"keygen" "" with
  | Error e -> Error ("keygen: " ^ e)
  | Ok pubkey_wire ->
  let quote =
    Sgx.quote cpu !e ~nonce
      ~report_data:("key:" ^ Sha256.hex (Sha256.digest pubkey_wire))
  in
  let qe_cert = Sgx.quoting_cert cpu in
  let attested =
    Cert.verify ~issuer_pub:intel.Rsa.pub qe_cert
    && Sgx.verify_quote ~qe_pub:qe_cert.Cert.pubkey quote
    && quote.Sgx.q_nonce = nonce
    && quote.Sgx.q_measurement = Sgx.measure_code customer_code
    && quote.Sgx.q_report_data = "key:" ^ Sha256.hex (Sha256.digest pubkey_wire)
  in
  if not attested then
    Ok
      { attested = false;
        provisioned = false;
        jobs_completed = 0;
        secret_leaked = secret_seen_by_host ();
        state_regressed = false;
        detail = "customer refused: enclave identity not acceptable" }
  else begin
    (* --- 2. provision the secret, encrypted to the attested key --------- *)
    match Rsa.public_of_string pubkey_wire with
    | None -> Error "attested enclave returned an unreadable public key"
    | Some pub ->
    match Sgx.ecall cpu !e ~fn:"provision" (Rsa.encrypt rng pub secret) with
    | Ok e when contains e "ERR:" -> Error ("provision: " ^ e)
    | Error e -> Error ("provision: " ^ e)
    | Ok blob0 ->
    host_blobs := [ blob0 ];
    (* --- 3. the host runs jobs (or attacks) ------------------------------ *)
    match attack with
    | Starve_enclave ->
      (* the scheduler simply never runs the enclave: no progress, but
         also nothing leaks *)
      Ok
        { attested;
          provisioned = true;
          jobs_completed = 0;
          secret_leaked = secret_seen_by_host ();
          state_regressed = false;
          detail = "host starved the enclave: availability lost, nothing leaked" }
    | _ ->
      let jobs_done = ref 0 in
      let run_job job =
        match Sgx.ecall cpu !e ~fn:"work" job with
        | Ok reply ->
          (match Wire.decode reply with
           | Some [ _result; _jobs; blob ] ->
             host_blobs := blob :: !host_blobs;
             incr jobs_done
           | _ -> ())
        | Error _ -> ()
      in
      run_job "job-1";
      let checkpoint = List.hd !host_blobs in
      run_job "job-2";
      let state_regressed =
        match attack with
        | Rollback_sealed_state ->
          (* restart the enclave from the old checkpoint *)
          Sgx.destroy cpu !e;
          e := build ();
          (match Sgx.ecall cpu !e ~fn:"resume" checkpoint with
           | Ok r when not (contains r "ERR:") ->
             run_job "job-3";
             true (* the enclave accepted pre-job-2 state *)
           | Ok _ | Error _ -> false)
        | _ ->
          run_job "job-3";
          false
      in
      (match attack with
       | Read_enclave_memory ->
         (* the probe happens while everything is resident *)
         ()
       | _ -> ());
      Ok
        { attested;
          provisioned = true;
          jobs_completed = !jobs_done;
          secret_leaked = secret_seen_by_host ();
          state_regressed;
          detail =
            (match attack with
             | Rollback_sealed_state when state_regressed ->
               "sealed state has no freshness: old checkpoint accepted"
             | Rollback_sealed_state -> "monotonic counter rejected the old checkpoint"
             | Read_enclave_memory -> "EPC encryption kept the secret out of reach"
             | _ -> "jobs ran to completion") }
  end
