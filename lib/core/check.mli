(** Incremental lint + flow: delta-driven analysis for a live control
    plane.

    A {!t} holds the full analysis state of a manifest fleet — the
    {!Lint} diagnostics, the {!Flow} fixpoint with its leak and taint
    witnesses, and a provisioned kernel whose capability state tracks
    the declared channel graph. {!apply} advances the state by one
    {!Delta.t} and re-derives {e only the affected slice}:

    - the flow fixpoint is re-seeded on the forward closure of the
      delta's footprint (label decreases included — suspects are reset
      to their base label first, so removing a channel or un-tainting a
      component converges to the same unique fixpoint the batch solver
      finds);
    - leak and taint witness searches re-run only for secret holders
      and taint sources whose reachable region the delta touched;
    - lint rules re-run only on the seeds their declared
      {!Lint_rules.scope} marks dirty;
    - kernel capabilities are re-granted/revoked only for the touched
      channel pairs.

    The contract — enforced by a qcheck property and by
    [lateral hunt --engine analysis] — is {e byte-identical}
    equivalence: after any delta sequence, {!diagnostics} and
    {!flow_result} equal a from-scratch {!Lint.run} + {!Flow.analyze}
    structurally, hence render to identical bytes.

    States are {b linear}: {!apply} mutates internal caches in place
    and returns the advanced state, so the input state must not be used
    afterwards. *)

type t

(** [create manifests] — duplicates are dropped first-wins (deltas keep
    names unique from then on: {!Delta.Add} is an upsert). The fleet
    may be inconsistent (dangling targets, hazards): that is what the
    diagnostics report. [dram_pages] sizes the backing kernel's memory;
    the default leaves headroom for components added later. *)
val create :
  ?config:Lint_rules.config -> ?dram_pages:int -> Manifest.t list -> t

val manifests : t -> Manifest.t list

(** The current diagnostics, deduplicated and sorted — equal to
    [Lint.run (manifests t)]. *)
val diagnostics : t -> Diagnostic.t list

(** The current flow fixpoint — equal to [Flow.analyze (manifests t)]. *)
val flow_result : t -> Flow.result

(** The current containment analysis — equal to
    [Contain.analyze (manifests t)]; only the dirty roots (components
    whose radius the delta can reach) are re-solved per delta. *)
val contain_result : t -> Contain.result

(** [apply d t] advances the fleet by one delta and returns the new
    state plus its diagnostics. Linear: [t] must not be used again. *)
val apply : Delta.t -> t -> t * Diagnostic.t list

(** Static-vs-kernel conformance of the incrementally maintained
    deployment (see {!Flow.conformance}). *)
val conformance : t -> Flow.conformance

(** Does the maintained kernel state conform to the current fleet?
    Holds after any delta sequence. *)
val conformance_clean : t -> bool

(** Debug oracle: [None] when the incremental state is byte-identical
    to a from-scratch analysis, [Some reason] otherwise. Runs the full
    batch analysis — O(fleet), for tests and [--verify], not for the
    hot path. *)
val divergence : t -> string option

(** [divergence t = None]. *)
val full_equiv : t -> bool

(** [domain_slice t tenant] — a canonical text rendering of one
    tenant's verdict slice: its components' diagnostics, flow labels,
    leaks and taint hits attributed to it, and the blast radii rooted in
    it. The per-domain isolation contract is that a delta whose
    footprint stays inside one tenant's trust domain (and that keeps the
    component count, which L021 reads globally) leaves every other
    tenant's slice byte-identical — qcheck-enforced in the tests. *)
val domain_slice : t -> string -> string
