open Lt_crypto
module Sgx = Lt_sgx.Sgx

exception Enclave_state of Sgx.enclave

let properties =
  { Substrate.substrate_name = "sgx";
    concurrent_components = true;
    mutually_isolated = true;
    defends =
      [ Substrate.Remote_software; Substrate.Local_software;
        Substrate.Physical_memory ];
    tcb = [ ("sgx-microcode", 20_000); ("cpu-hardware", 5_000) ];
    shared_cache_with_host = true;
    progress_guaranteed = false }

let make machine rng ~ca_name ~ca_key ?(epc_pages = 2) () =
  let cpu = Sgx.init_cpu machine rng ~ca_name ~ca_key in
  (* per-component facilities persist across invocations so f_store
     state survives between ecalls *)
  let facilities_cache : (string, Substrate.facilities) Hashtbl.t =
    Hashtbl.create 8
  in
  let tables : (string, (string, string) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let facilities_of name ctx =
    match Hashtbl.find_opt facilities_cache name with
    | Some fac -> fac
    | None ->
      (* key-value store mirrored into EPC so the bytes physically live
         in encrypted DRAM *)
      let table : (string, string) Hashtbl.t = Hashtbl.create 8 in
      Hashtbl.replace tables name table;
      let mirror () =
        let blob =
          Wire.encode
            (Hashtbl.fold (fun k v acc -> Wire.encode [ k; v ] :: acc) table []
             |> List.sort Stdlib.compare)
        in
        if String.length blob <= epc_pages * 4096 then Sgx.mem_write ctx ~off:0 blob
      in
      let fac =
        { Substrate.f_seal = (fun data -> Sgx.seal ctx data);
          f_unseal = (fun wire -> Sgx.unseal ctx wire);
          f_store =
            (fun ~key data ->
              Hashtbl.replace table key data;
              mirror ());
          f_load = (fun ~key -> Hashtbl.find_opt table key) }
      in
      Hashtbl.replace facilities_cache name fac;
      fac
  in
  let enclave_of c =
    match Substrate.component_state c with
    | Enclave_state e -> e
    | _ -> invalid_arg "substrate_sgx: foreign component"
  in
  (* crash = the enclave is torn down where it stands: EPC zeroed and
     freed, volatile store gone. Sealed blobs survive because the seal
     key is derived from the measurement, which a relaunch reproduces. *)
  let dead : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let crash, is_alive, revive =
    Substrate.lifecycle ~dead
      ~teardown:(fun c ->
        Hashtbl.remove facilities_cache (Substrate.component_name c);
        Hashtbl.remove tables (Substrate.component_name c);
        try Sgx.destroy cpu (enclave_of c) with Invalid_argument _ -> ())
      ()
  in
  let launch ~name ~code ~services =
    let ecalls =
      List.map
        (fun (fn, service) ->
          (fn, fun ctx arg -> service (facilities_of name ctx) arg))
        services
    in
    try
      let e = Sgx.create_enclave cpu ~name ~code ~epc_pages ~ecalls in
      revive name;
      Ok
        (Substrate.make_component ~name ~measurement:(Sgx.measurement e)
           ~state:(Enclave_state e))
    with Invalid_argument m -> Error m
  in
  let span_attrs = [ ("substrate", "sgx") ] in
  let invoke c ~fn arg =
    if not (is_alive c) then
      Error (Substrate.crashed_error (Substrate.component_name c))
    else
      Lt_obs.Trace.with_span ~kind:"ecall"
        ~name:(Lt_obs.Trace.span_name (Substrate.component_name c) fn)
        ~attrs:span_attrs
        (fun () ->
          if Fault_point.fires "sgx/kill-mid-ecall" then begin
            (* the untrusted host pulls the enclave out from under the
               in-flight ecall (SGX guarantees no progress, §II-C) *)
            crash c;
            let e = Substrate.crashed_error (Substrate.component_name c) in
            Lt_obs.Trace.fail_span e;
            Error e
          end
          else
            match Sgx.ecall cpu (enclave_of c) ~fn arg with
            | Ok _ as r -> r
            | Error e as r ->
              Lt_obs.Trace.fail_span e;
              r)
  in
  let attest c ~nonce ~claim =
    let e = enclave_of c in
    let ev_no_sig =
      { Attestation.ev_substrate = "sgx";
        ev_measurement = Sgx.measurement e;
        ev_nonce = nonce;
        ev_claim = claim;
        ev_proof =
          Attestation.Rsa_quote { signature = ""; cert = Sgx.quoting_cert cpu } }
    in
    let signature = Sgx.qe_sign cpu ~body:(Attestation.signed_body ev_no_sig) in
    Ok
      { ev_no_sig with
        Attestation.ev_proof =
          Attestation.Rsa_quote { signature; cert = Sgx.quoting_cert cpu } }
  in
  let t =
    { Substrate.properties;
      launch;
      invoke;
      attest;
      measure = (fun ~code -> Sgx.measure_code code);
      destroy =
        (fun c ->
          Hashtbl.remove facilities_cache (Substrate.component_name c);
          Hashtbl.remove tables (Substrate.component_name c);
          Sgx.destroy cpu (enclave_of c));
      crash;
      is_alive;
      snap_layers = [] }
  in
  t.Substrate.snap_layers <-
    [ Lt_hw.Machine.layer machine;
      Lt_world.Snapshottable.make ~name:"sgx"
        ~take:(fun () -> Sgx.take_snapshot cpu)
        ~digest:(fun () -> Sgx.state_digest cpu);
      Substrate.adapter_layer ~name:"substrate:sgx" ~dead ~tables
        ~extra_take:
          [ (fun () -> Lt_world.Snapshottable.save_hashtbl facilities_cache) ]
        ~extra_digest:(fun d ->
          (* facilities are closures; their keys pin the cache shape *)
          Lt_world.Snapshottable.digest_hashtbl
            ~key:(fun k -> k)
            ~value:(fun _ -> "")
            facilities_cache d)
        () ];
  (t, cpu)
