open Lt_crypto
module Trustzone = Lt_trustzone.Trustzone

exception Svc_state of string (* service name *)

let properties =
  { Substrate.substrate_name = "trustzone";
    concurrent_components = false;
    mutually_isolated = false;
    defends = [ Substrate.Remote_software; Substrate.Local_software ];
    tcb =
      [ ("boot-rom", 1_000); ("secure-world-os", 15_000); ("trustzone-hw", 3_000) ];
    shared_cache_with_host = true;
    progress_guaranteed = true }

let make machine ~vendor ~image ~device_id ~device_key_name ~secure_pages =
  let tz = Trustzone.install machine ~secure_pages ~vendor_pub:vendor in
  match Trustzone.boot tz ~image with
  | Error e -> Error e
  | Ok world_measurement ->
    let facilities ctx ~comp =
      let seal_key =
        match Trustzone.fuse_read ctx ~name:device_key_name with
        | Some k -> Hkdf.derive ~secret:k ~salt:"tz-seal" ~info:comp 16
        | None -> invalid_arg "trustzone: device key not fused"
      in
      { Substrate.f_seal =
          (fun data ->
            let nonce = String.sub (Sha256.digest (comp ^ data)) 0 Speck.nonce_size in
            Speck.Aead.to_wire
              (Speck.Aead.encrypt ~key:seal_key ~nonce ~ad:"tz-seal" data));
        f_unseal =
          (fun wire ->
            match Speck.Aead.of_wire wire with
            | None -> None
            | Some box -> Speck.Aead.decrypt ~key:seal_key ~ad:"tz-seal" box);
        f_store = (fun ~key data -> Trustzone.store ctx ~key data);
        f_load = (fun ~key -> Trustzone.load ctx ~key) }
    in
    (* crash marks the secure service dead; the secure world itself keeps
       running, so fused keys and secure storage survive for the relaunch *)
    let dead : (string, unit) Hashtbl.t = Hashtbl.create 4 in
    let crash, is_alive, revive = Substrate.lifecycle ~dead () in
    let launch ~name ~code ~services =
      ignore code;
      revive name;
      (* TrustZone measures the world, not the component: code identity
         is the booted secure-world image for every service. One secure
         service per component dispatches its entry points, so all entry
         points share the component's store namespace. *)
      Trustzone.register_service tz ~name (fun ctx arg ->
          match Wire.decode arg with
          | Some [ fn; req ] ->
            (match List.assoc_opt fn services with
             | Some service ->
               Wire.encode [ "ok"; service (facilities ctx ~comp:name) req ]
             | None -> Wire.encode [ "err"; Printf.sprintf "no entry point %S" fn ])
          | _ -> Wire.encode [ "err"; "malformed request" ]);
      Ok
        (Substrate.make_component ~name ~measurement:world_measurement
           ~state:(Svc_state name))
    in
    let svc_of c =
      match Substrate.component_state c with
      | Svc_state name -> name
      | _ -> invalid_arg "substrate_trustzone: foreign component"
    in
    let span_attrs = [ ("substrate", "trustzone") ] in
    let invoke c ~fn arg =
      if not (is_alive c) then
        Error (Substrate.crashed_error (Substrate.component_name c))
      else
      Lt_obs.Trace.with_span ~kind:"smc"
        ~name:(Lt_obs.Trace.span_name (Substrate.component_name c) fn)
        ~attrs:span_attrs
        (fun () ->
          match Trustzone.smc tz ~service:(svc_of c) (Wire.encode [ fn; arg ]) with
          | Error e ->
            Lt_obs.Trace.fail_span e;
            Error e
          | Ok reply ->
            (match Wire.decode reply with
             | Some [ "ok"; out ] -> Ok out
             | Some [ "err"; e ] ->
               Lt_obs.Trace.fail_span e;
               Error e
             | _ ->
               Lt_obs.Trace.fail_span "malformed secure-world reply";
               Error "malformed secure-world reply"))
    in
    let attest c ~nonce ~claim =
      ignore c;
      let ev_no_tag =
        { Attestation.ev_substrate = "trustzone";
          ev_measurement = world_measurement;
          ev_nonce = nonce;
          ev_claim = claim;
          ev_proof = Attestation.Hmac_tag { device = device_id; tag = "" } }
      in
      (* the tag is computed inside the secure world via a hidden service *)
      let body = Attestation.signed_body ev_no_tag in
      let tag_service ctx arg =
        match Trustzone.fuse_read ctx ~name:device_key_name with
        | Some key -> Hmac.mac ~key arg
        | None -> ""
      in
      Trustzone.register_service tz ~name:"__lt_attest" tag_service;
      (match Trustzone.smc tz ~service:"__lt_attest" body with
       | Error e -> Error e
       | Ok "" -> Error "device key not fused"
       | Ok tag ->
         Ok
           { ev_no_tag with
             Attestation.ev_proof = Attestation.Hmac_tag { device = device_id; tag } })
    in
    let t =
      { Substrate.properties;
        launch;
        invoke;
        attest;
        measure = (fun ~code -> ignore code; world_measurement);
        destroy = (fun _ -> ());
        crash;
        is_alive;
        snap_layers = [] }
    in
    t.Substrate.snap_layers <-
      [ Lt_hw.Machine.layer machine;
        Lt_world.Snapshottable.make ~name:"trustzone"
          ~take:(fun () -> Trustzone.take_snapshot tz)
          ~digest:(fun () -> Trustzone.state_digest tz);
        Substrate.adapter_layer ~name:"substrate:trustzone" ~dead
          ~tables:(Hashtbl.create 1) () ];
    Ok (t, tz)
