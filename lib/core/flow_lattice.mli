(** The security-label lattice behind {!Flow}.

    Labels classify the data a component may hold or emit:
    {v
        Public  ⊑  Tainted  ⊑  Secret-of-{owners}
    v}
    - [public] — attacker learns nothing, attacker controls nothing;
    - [tainted] — possibly attacker-influenced (parsed from the network,
      or produced by a component with a known flaw);
    - [secret owners] — derived from data whose confidentiality the
      listed components' substrates guarantee (sep/sgx-class hosts).

    This is a join-semilattice: the ordinal sum of the two-point chain
    [public < tainted] below the powerset of owners ordered by
    inclusion. [join] is the least upper bound; secrecy dominates taint
    because once secret material mixes into a value, exfiltrating it is
    the worse outcome. The laws ([join] associative, commutative,
    idempotent; [leq] a partial order; [join] the LUB of [leq]) are
    property-tested in [test/test_flow.ml]. *)

type t

val public : t

val tainted : t

(** [secret owner] — secret material owned by one component. *)
val secret : string -> t

(** [secret_of owners] — normalises (sorts, dedups). Raises
    [Invalid_argument] on the empty list: an ownerless secret is
    meaningless (use {!public}). *)
val secret_of : string list -> t

(** [owners t] — the secret owners; [[]] for [public]/[tainted]. *)
val owners : t -> string list

(** [is_secret t] = [owners t <> []]. *)
val is_secret : t -> bool

(** [is_tainted t] — true for [tainted] and any secret (the chain puts
    secrets above taint, so a secret label admits attacker influence). *)
val is_tainted : t -> bool

(** Partial order: [public ⊑ x]; [tainted ⊑ tainted] and
    [tainted ⊑ secret _]; [secret a ⊑ secret b] iff [a ⊆ b]. *)
val leq : t -> t -> bool

(** Least upper bound; on two secrets, the owner-set union. *)
val join : t -> t -> t

val equal : t -> t -> bool

(** Total order for deterministic reports (not the lattice order). *)
val compare : t -> t -> int

(** ["public"], ["tainted"], ["secret{a,b}"]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
