(** The unified isolation interface (§III-A).

    "This interface should do for isolation mechanisms what POSIX did
    for the UNIX system call interface: allow application code to be
    independent of the underlying implementation."

    A {!t} is one isolation substrate instance. Trusted components are
    written once against {!facilities} and [launch]ed on any substrate;
    the conformance suite in the tests runs the same component across
    all five adapters. [properties] describes the design trade-offs
    (§II-C) so system architects can hand-pick a mechanism by attacker
    model instead of by fashion. *)

(** Attacker capabilities a substrate defends against (§II-D). *)
type attacker_model =
  | Remote_software        (** exploits over the network *)
  | Local_software         (** compromised colocated OS/apps *)
  | Physical_memory        (** probing/patching the memory bus *)
  | Physical_code_swap     (** replacing firmware/boot code *)

type properties = {
  substrate_name : string;
  concurrent_components : bool;
      (** can several trusted components make progress in parallel? *)
  mutually_isolated : bool;
      (** are components protected from {e each other}, not just from
          the legacy world? (TrustZone: no — one secure world) *)
  defends : attacker_model list;
  tcb : (string * int) list;
      (** trusted pieces and notional sizes (lines of code), for the
          TCB analysis; hardware counts as code per §II-C *)
  shared_cache_with_host : bool;
      (** prime+probe surface (§II-C) *)
  progress_guaranteed : bool;
      (** can the untrusted side starve the component? (SGX: yes it can) *)
}

(** What a trusted component's service code gets from its substrate —
    the write-once-run-anywhere surface. *)
type facilities = {
  f_seal : string -> string;
      (** bind data to this component's identity on this device *)
  f_unseal : string -> string option;
  f_store : key:string -> string -> unit;
      (** substrate-protected storage *)
  f_load : key:string -> string option;
}

(** A service entry point: receives its facilities and a request. *)
type service = facilities -> string -> string

(** A launched trusted component. *)
type component

type t = {
  properties : properties;
  launch :
    name:string -> code:string -> services:(string * service) list ->
    (component, string) result;
      (** [code] is the measured identity; [services] the entry points.
          Re-launching a crashed component's name revives it: the dead
          mark is cleared and a fresh instance (empty volatile state,
          same sealed identity) answers subsequent invokes. *)
  invoke : component -> fn:string -> string -> (string, string) result;
  attest :
    component -> nonce:string -> claim:string ->
    (Attestation.evidence, string) result;
  measure : code:string -> string;
      (** predict the measurement of [code] (verifier side) *)
  destroy : component -> unit;
  crash : component -> unit;
      (** kill the component where it stands (crash-only discipline:
          volatile state is lost, sealed state survives). Subsequent
          {!field-invoke}s fail with {!crashed_error} until the name is
          re-[launch]ed. Idempotent. *)
  is_alive : component -> bool;
  mutable snap_layers : Lt_world.Snapshottable.layer list;
      (** Snapshottable layers covering {e all} mutable state reachable
          through this adapter — machine blocks, the substrate sim, the
          per-launch service tables, the dead-set. Assembled by each
          adapter's [make]; {!Deploy.world} collects them (deduplicating
          shared adapters) into one forkable world. *)
}

val component_name : component -> string

(** [make_component ~name ~measurement ~state] — for adapter authors. *)
val make_component : name:string -> measurement:string -> state:exn -> component

val component_measurement : component -> string

val component_state : component -> exn

(** [crashed_error name] — the uniform error every adapter returns when
    a dead component is invoked, so routers can classify it. *)
val crashed_error : string -> string

(** A service declining a request on purpose — bad argument, downstream
    dependency unavailable, policy of its own. Distinct from a crash:
    the component is healthy, a supervisor must not restart it and a
    load run must count the request as failed, not the process as dead.
    Raise it with {!fail} from inside a behaviour. *)
exception Service_failure of string

(** [fail msg] aborts the current request with {!Service_failure}. *)
val fail : string -> 'a

(** [failure_error msg] — the wire encoding of a {!Service_failure} that
    crossed a substrate hop as a string ("service failure: " ^ msg).
    Adapters and sims produce it automatically via [Printexc.to_string]
    (a printer is registered). *)
val failure_error : string -> string

(** [as_failure e] recovers the message from a {!failure_error} string,
    [None] for any other error. *)
val as_failure : string -> string option

(** A behaviour found one of its {e dependencies} dead mid-request.
    Distinct from {!Service_failure} (the callee declined on purpose)
    and from the caller itself crashing: [origin] names the component
    that is actually down, so routers and load reports attribute the
    fault to it instead of to whichever caller tripped over it. Under
    tenant sharding that attribution is what keeps one tenant's crash
    out of another tenant's blast radius. *)
exception Dependency_crashed of { origin : string; reason : string }

(** [dep_crashed ~origin reason] aborts the current request with
    {!Dependency_crashed}. *)
val dep_crashed : origin:string -> string -> 'a

(** The wire encoding of a {!Dependency_crashed} that crossed a
    substrate hop as a string ("dependency crashed: ORIGIN: reason");
    produced automatically via [Printexc.to_string] (a printer is
    registered). *)
val dep_crashed_error : origin:string -> string -> string

(** [as_dep_crashed e] recovers [(origin, reason)] from a
    {!dep_crashed_error} string, [None] for any other error. *)
val as_dep_crashed : string -> (string * string) option

(** [lifecycle ?dead ?teardown ()] — the shared crash bookkeeping for
    adapter authors: returns [(crash, is_alive, revive)] closures over a
    dead-set. [crash] marks the component dead and runs [teardown] once;
    [is_alive] consults the mark; [revive name] clears it (call from
    [launch]). Pass [?dead] to own the table — adapters do, so the mark
    set is part of their snapshot. *)
val lifecycle :
  ?dead:(string, unit) Hashtbl.t ->
  ?teardown:(component -> unit) -> unit ->
  (component -> unit) * (component -> bool) * (string -> unit)

(** [adapter_layer ~name ~dead ~tables ()] — the shared snapshot layer
    shape for adapter authors: captures the dead-set and the per-launch
    KV-table registry; [extra_take] adds more capture thunks and
    [extra_digest] folds adapter-specific state into the digest. *)
val adapter_layer :
  name:string ->
  dead:(string, unit) Hashtbl.t ->
  tables:(string, (string, string) Hashtbl.t) Hashtbl.t ->
  ?extra_take:(unit -> unit -> unit) list ->
  ?extra_digest:(Lt_world.Digest64.t -> Lt_world.Digest64.t) ->
  unit ->
  Lt_world.Snapshottable.layer

val pp_properties : Format.formatter -> properties -> unit

val pp_attacker_model : Format.formatter -> attacker_model -> unit
