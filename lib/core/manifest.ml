type connection = {
  target : string;
  service : string;
  vetted : bool;
}

type restart_policy = Never | On_failure | Always

type restart = {
  r_policy : restart_policy;
  r_max : int;
  r_window : int;
}

type t = {
  name : string;
  provides : string list;
  connects_to : connection list;
  domain : string;
  trust_domain : string list;
  size_loc : int;
  network_facing : bool;
  vulnerable : bool;
  discriminates_clients : bool;
  substrate : string;
  stateful : bool;
  restart : restart option;
  placement : string list;
}

type host = {
  h_name : string;
  h_substrates : string list;
}

let host ~name ~substrates = { h_name = name; h_substrates = substrates }

let placement_selector_kinds =
  [ ("host:NAME", "only the fleet host declared with that exact name");
    ("class:tee", "any host offering a sealed-identity substrate");
    ("class:commodity", "any host offering a substrate without sealed identity");
    ("SUBSTRATE", "any host offering that exact substrate (e.g. sgx)") ]

let domain_stanza_grammar =
  [ ("domain NAME", "at top level: opens a trust domain; stanzas nest, and \
                     components declared inside carry the full domain path");
    ("end", "closes the open component stanza if any, else pops the \
             innermost open trust domain");
    ("domain NAME (inside a component)", "unchanged: the component's \
                                          protection domain") ]

let trust_path_string = function
  | [] -> "/"
  | path -> String.concat "/" path

let rec is_path_prefix p q =
  match (p, q) with
  | [], _ -> true
  | _, [] -> false
  | a :: ps, b :: qs -> a = b && is_path_prefix ps qs

(* disjoint = neither path contains the other; the cross-tenant case *)
let trust_domains_disjoint p q =
  not (is_path_prefix p q) && not (is_path_prefix q p)

let tenant_of m = match m.trust_domain with [] -> None | t :: _ -> Some t

let default_restart policy = { r_policy = policy; r_max = 3; r_window = 256 }

let restart_policy_of_string = function
  | "never" -> Some Never
  | "on-failure" -> Some On_failure
  | "always" -> Some Always
  | _ -> None

let restart_policy_to_string = function
  | Never -> "never"
  | On_failure -> "on-failure"
  | Always -> "always"

let v ~name ?(provides = []) ?(connects_to = []) ?domain ?(trust_domain = [])
    ?(size_loc = 1000) ?(network_facing = false) ?(vulnerable = false)
    ?(discriminates_clients = true) ?(substrate = "microkernel")
    ?(stateful = false) ?restart ?(placement = []) () =
  { name;
    provides;
    connects_to;
    domain = Option.value domain ~default:name;
    trust_domain;
    size_loc;
    network_facing;
    vulnerable;
    discriminates_clients;
    substrate;
    stateful;
    restart;
    placement }

let conn ?(vetted = false) target service = { target; service; vetted }

let pp fmt t =
  Format.fprintf fmt "%s[domain=%s%s size=%d%s%s] -> {%s}" t.name t.domain
    (if t.trust_domain = [] then ""
     else " trust=" ^ trust_path_string t.trust_domain)
    t.size_loc
    (if t.network_facing then " net" else "")
    (if t.vulnerable then " vuln" else "")
    (String.concat ", "
       (List.map
          (fun c ->
            Printf.sprintf "%s.%s%s" c.target c.service (if c.vetted then "(vetted)" else ""))
          t.connects_to))
