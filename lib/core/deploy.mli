(** Deployment: a horizontal application launched onto real substrates.

    {!App} checks communication control over in-process stubs; this
    module goes the rest of the way (§III-C "the implementor may choose
    SGX because..."): each component's code is launched as a trusted
    component on the isolation substrate its manifest names, and every
    cross-component call is (1) checked against the caller's manifest
    and (2) delivered as a real substrate invocation (ecall, SMC,
    IPC, ...). Component code gets both its substrate {!Substrate.facilities}
    and a router handle for outbound calls. *)

type ctx = {
  facilities : Substrate.facilities;
      (** seal/store on the component's own substrate *)
  call_out : target:string -> service:string -> string -> (string, string) result;
      (** routed, manifest-checked outbound call *)
  call_out_typed :
    target:string -> service:string -> string -> (string, App.call_error) result;
      (** same call, failure keeps its class — so a behaviour can cascade
          a dead dependency as a fault and a refusal as its own
          {!Substrate.fail} *)
}

type behaviour = ctx -> service:string -> string -> string

type t

(** [deploy ~substrates components] launches every component on the
    substrate its manifest's [substrate] field names. Fails when a
    substrate is unknown or a launch fails. *)
val deploy :
  substrates:(string * Substrate.t) list ->
  (Manifest.t * behaviour) list ->
  (t, string) result

(** [call t ~caller ~target ~service req] — entry from the outside world
    ([caller = None], only into network-facing components) or on behalf
    of a component. Channel checks are identical to {!App.call}. *)
val call :
  t -> caller:string option -> target:string -> service:string -> string ->
  (string, string) result

(** [call_typed] — like {!call} with the failure kept as a routing
    decision ({!App.call_error}); what supervisors and circuit breakers
    classify on. An unknown target is a typed error plus a deny-style
    trace event and [channel/unknown_target] counter — never a raise. *)
val call_typed :
  t -> caller:string option -> target:string -> service:string -> string ->
  (string, App.call_error) result

(** [violations t] — blocked channels, as in {!App.violations}. *)
val violations : t -> App.violation list

(** Deployed component names, sorted. *)
val components : t -> string list

val manifest : t -> string -> Manifest.t option

(** [crash t name] kills the component where it stands on its substrate
    (volatile state lost, sealed state kept). Idempotent. *)
val crash : t -> string -> (unit, string) result

(** [is_alive t name] — false for crashed {e and} unknown names. *)
val is_alive : t -> string -> bool

(** [relaunch t name] launches a fresh instance from the component's
    original manifest and behaviour on its original substrate, replacing
    the dead one in the routing table. A still-live instance is crashed
    first (crash-only discipline: there is no graceful stop). *)
val relaunch : t -> string -> (unit, string) result

(** [substrate_of t name] — where a component actually runs. *)
val substrate_of : t -> string -> string option

(** [destroy t] scrubs the whole deployment: every component instance is
    destroyed on its substrate (volatile {e and} sealed state gone) and
    the routing/spec tables are emptied, so no later call can revive
    anything. The fencing primitive — a host that lost ownership of a
    cluster during a partition runs this on the stale instances before
    acknowledging the reconcile. Idempotent. *)
val destroy : t -> unit

(** [attest t ~component ~nonce ~claim] — remote evidence for one
    component from its own substrate. *)
val attest :
  t -> component:string -> nonce:string -> claim:string ->
  (Attestation.evidence, string) result

(** {2 The fast path}

    [call] walks the full enforcing pipeline per request: policy check,
    trace span, substrate hop, result boxing. For hot edges that never
    change — the manifest graph is fixed at deploy time — {!resolve}
    precomputes the dispatch once and {!call_fast} runs the behaviour
    directly against its real facilities with {e zero minor-heap
    allocation} on the untraced success path. *)

(** A precomputed dispatch edge. Only statically authorized edges get
    one. *)
type route

(** [resolve t ~caller ~target ~service] — [None] when the edge is not
    in the manifest graph (or the target/service is unknown): such calls
    must go through {!call}, which records the deny. Routes are cached;
    resolving twice returns the same route. *)
val resolve :
  t -> caller:string option -> target:string -> service:string ->
  route option

exception Call_failed of App.call_error

(** [call_fast t route req] — the behaviour's answer. Falls back to the
    full pipeline (and raises {!Call_failed} on a typed failure) when
    tracing is on, the target is compromised or dead, or the route has
    not yet seen a successful slow call (the first call through a route
    always takes the slow path to capture the target's facilities).
    The behaviour's own exceptions ({!Substrate.Service_failure}) pass
    through untranslated on the fast path. *)
val call_fast : t -> route -> string -> string

(** {2 Snapshots} *)

(** Captures the control plane: App flags/violations, placements,
    specs, the facilities cache and routes. *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t

(** The control plane as one {!Lt_world.Snapshottable} layer. *)
val layer : ?name:string -> t -> Lt_world.Snapshottable.layer

(** [world t] — the whole booted deployment as a forkable
    {!Lt_world.World}: every adapter's [snap_layers] (deduplicated)
    plus the deploy layer, plus [extra] harness layers appended last.
    [World.fork]/[World.restore] then clone/rewind the entire stack in
    microseconds. *)
val world : ?extra:Lt_world.Snapshottable.layer list -> t -> Lt_world.World.t
