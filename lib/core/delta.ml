type t =
  | Add of Manifest.t
  | Remove of string
  | Connect of { caller : string; conn : Manifest.connection }
  | Disconnect of { caller : string; target : string; service : string }
  | Set_vetted of {
      caller : string;
      target : string;
      service : string;
      vetted : bool;
    }

let apply d manifests =
  match d with
  | Add m ->
    let name = m.Manifest.name in
    if List.exists (fun x -> x.Manifest.name = name) manifests then begin
      (* upsert in place: the first occurrence becomes the new
         definition, later duplicates are dropped *)
      let replaced = ref false in
      List.filter_map
        (fun x ->
          if x.Manifest.name <> name then Some x
          else if !replaced then None
          else begin
            replaced := true;
            Some m
          end)
        manifests
    end
    else manifests @ [ m ]
  | Remove name -> List.filter (fun x -> x.Manifest.name <> name) manifests
  | Connect { caller; conn } ->
    List.map
      (fun x ->
        if x.Manifest.name <> caller then x
        else
          { x with
            Manifest.connects_to =
              List.filter
                (fun c ->
                  not
                    (c.Manifest.target = conn.Manifest.target
                    && c.Manifest.service = conn.Manifest.service))
                x.Manifest.connects_to
              @ [ conn ] })
      manifests
  | Disconnect { caller; target; service } ->
    List.map
      (fun x ->
        if x.Manifest.name <> caller then x
        else
          { x with
            Manifest.connects_to =
              List.filter
                (fun c ->
                  not (c.Manifest.target = target && c.Manifest.service = service))
                x.Manifest.connects_to })
      manifests
  | Set_vetted { caller; target; service; vetted } ->
    List.map
      (fun x ->
        if x.Manifest.name <> caller then x
        else
          { x with
            Manifest.connects_to =
              List.map
                (fun c ->
                  if c.Manifest.target = target && c.Manifest.service = service
                  then { c with Manifest.vetted }
                  else c)
                x.Manifest.connects_to })
      manifests

let describe = function
  | Add m -> "add " ^ m.Manifest.name
  | Remove name -> "remove " ^ name
  | Connect { caller; conn } ->
    Printf.sprintf "connect%s %s -> %s.%s"
      (if conn.Manifest.vetted then "-vetted" else "")
      caller conn.Manifest.target conn.Manifest.service
  | Disconnect { caller; target; service } ->
    Printf.sprintf "disconnect %s -> %s.%s" caller target service
  | Set_vetted { caller; target; service; vetted } ->
    Printf.sprintf "%s %s -> %s.%s" (if vetted then "vet" else "unvet") caller
      target service

(* --- the script format ------------------------------------------------------ *)

let keywords =
  [ "add"; "update"; "remove"; "connect"; "connect-vetted"; "disconnect";
    "vet"; "unvet" ]

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  strip_comment line
  |> String.map (fun c -> if c = '\t' then ' ' else c)
  |> String.split_on_char ' '
  |> List.filter (fun s -> s <> "")

type parse_error = { pe_line : int; pe_msg : string }

let parse_conn str =
  match String.index_opt str '.' with
  | None -> Error (Printf.sprintf "expected TARGET.SERVICE, got %S" str)
  | Some i ->
    let target = String.sub str 0 i in
    let service = String.sub str (i + 1) (String.length str - i - 1) in
    if target = "" || service = "" then
      Error (Printf.sprintf "expected TARGET.SERVICE, got %S" str)
    else Ok (target, service)

(* the manifest parser reports positions relative to the block it was
   handed; rebase "line K: msg" onto the script's own numbering *)
let rebase_block_error ~block_start e =
  match String.index_opt e ':' with
  | Some i when i > 5 && String.sub e 0 5 = "line " ->
    (match int_of_string_opt (String.sub e 5 (i - 5)) with
     | Some k ->
       Some
         { pe_line = block_start + k;
           pe_msg = String.sub e (i + 2) (String.length e - i - 2) }
     | None -> None)
  | _ -> None

let parse_script_located text =
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let n = Array.length lines in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else begin
      match tokens lines.(i) with
      | [] -> go (i + 1) acc
      | kw :: rest ->
        let lineno = i + 1 in
        let err msg = Error { pe_line = lineno; pe_msg = msg } in
        let channel_op what k =
          match rest with
          | [ caller; ts ] ->
            (match parse_conn ts with
             | Error e -> err e
             | Ok (target, service) ->
               if target = caller then
                 err (Printf.sprintf "%s: %s connects to itself" what caller)
               else k caller target service)
          | _ ->
            err (Printf.sprintf "expected: %s CALLER TARGET.SERVICE" what)
        in
        (match kw with
         | "add" | "update" ->
           if rest <> [] then
             err
               (Printf.sprintf
                  "%s takes no arguments; the manifest block follows" kw)
           else begin
             (* the manifest block runs until the next delta keyword *)
             let j = ref (i + 1) in
             while
               !j < n
               && (match tokens lines.(!j) with
                   | t :: _ when List.mem t keywords -> false
                   | _ -> true)
             do
               incr j
             done;
             let block =
               String.concat "\n"
                 (Array.to_list (Array.sub lines (i + 1) (!j - (i + 1))))
             in
             match Manifest_file.parse block with
             | Error e ->
               (match rebase_block_error ~block_start:(i + 1) e with
                | Some pe -> Error pe
                | None ->
                  err (Printf.sprintf "%s block at line %d: %s" kw lineno e))
             | Ok [] -> err (Printf.sprintf "%s: expected a manifest block" kw)
             | Ok ms ->
               go !j (List.rev_append (List.map (fun m -> Add m) ms) acc)
           end
         | "remove" ->
           (match rest with
            | [ name ] -> go (i + 1) (Remove name :: acc)
            | _ -> err "expected: remove NAME")
         | "connect" ->
           channel_op "connect" (fun caller target service ->
               go (i + 1)
                 (Connect
                    { caller;
                      conn = { Manifest.target; service; vetted = false } }
                 :: acc))
         | "connect-vetted" ->
           channel_op "connect-vetted" (fun caller target service ->
               go (i + 1)
                 (Connect
                    { caller;
                      conn = { Manifest.target; service; vetted = true } }
                 :: acc))
         | "disconnect" ->
           channel_op "disconnect" (fun caller target service ->
               go (i + 1) (Disconnect { caller; target; service } :: acc))
         | "vet" ->
           channel_op "vet" (fun caller target service ->
               go (i + 1)
                 (Set_vetted { caller; target; service; vetted = true } :: acc))
         | "unvet" ->
           channel_op "unvet" (fun caller target service ->
               go (i + 1)
                 (Set_vetted { caller; target; service; vetted = false } :: acc))
         | _ ->
           err
             (Printf.sprintf
                "unknown delta %S (expected add, update, remove, connect, \
                 connect-vetted, disconnect, vet, unvet)"
                kw))
    end
  in
  go 0 []

let parse_script text =
  match parse_script_located text with
  | Ok ds -> Ok ds
  | Error { pe_line; pe_msg } ->
    Error (Printf.sprintf "line %d: %s" pe_line pe_msg)

let load_script_located path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error { pe_line = 0; pe_msg = e }
  | text -> parse_script_located text

let load_script path =
  match load_script_located path with
  | Ok ds -> Ok ds
  | Error { pe_line = 0; pe_msg } -> Error pe_msg
  | Error { pe_line; pe_msg } ->
    Error (Printf.sprintf "line %d: %s" pe_line pe_msg)

let to_text deltas =
  String.concat ""
    (List.map
       (function
         | Add m -> "add\n" ^ Manifest_file.to_text [ m ]
         | Remove name -> "remove " ^ name ^ "\n"
         | Connect { caller; conn } ->
           Printf.sprintf "%s %s %s.%s\n"
             (if conn.Manifest.vetted then "connect-vetted" else "connect")
             caller conn.Manifest.target conn.Manifest.service
         | Disconnect { caller; target; service } ->
           Printf.sprintf "disconnect %s %s.%s\n" caller target service
         | Set_vetted { caller; target; service; vetted } ->
           Printf.sprintf "%s %s %s.%s\n"
             (if vetted then "vet" else "unvet")
             caller target service)
       deltas)
