(** The horizontal application runtime.

    Assembles components (manifest + behaviour) into one application
    and enforces {e communication control}: a call is connected only
    when the caller's manifest declares the (target, service) channel —
    everything else is blocked and recorded, whether the caller is
    honest or compromised. This is the mechanism behind the paper's
    containment claim: a subverted component keeps only its declared
    authority. *)

(** What a behaviour receives. *)
type ctx = {
  self : string;
  call : target:string -> service:string -> string -> (string, string) result;
      (** outbound calls, subject to the caller's manifest *)
}

(** [behaviour ctx ~service request] handles one entry point. *)
type behaviour = ctx -> service:string -> string -> string

type t

type violation = { v_caller : string; v_target : string; v_service : string }

val create : unit -> t

(** [add t manifest behaviour] registers a component. Raises on
    duplicate names. *)
val add : t -> Manifest.t -> behaviour -> unit

(** [add_stub t manifest] — a component that echoes; for analysis-only
    scenarios. *)
val add_stub : t -> Manifest.t -> unit

(** [validate t] checks every declared connection names an existing
    component and service; returns the dangling ones. *)
val validate : t -> (unit, string list) result

val manifests : t -> Manifest.t list

val manifest : t -> string -> Manifest.t option

(** [set_behaviour t name behaviour] replaces a registered component's
    behaviour in place — the relaunch path after a crash. Raises on
    unknown names. *)
val set_behaviour : t -> string -> behaviour -> unit

(** Why a call did not produce an answer, as a routing decision rather
    than a string — supervisors restart on [Crashed], never on [Denied]
    (a policy decision is not a fault). *)
type call_error =
  | Unknown_component of { caller : string; target : string; service : string }
      (** no such component; recorded as a deny-style trace event and the
          [channel/unknown_target] counter, never a raise *)
  | Unknown_service of { target : string; service : string }
  | Denied of { caller : string; target : string; service : string }
  | Crashed of { target : string; reason : string }
  | Failed of { target : string; reason : string }
      (** the component answered on purpose with a refusal
          ({!Substrate.Service_failure}): it is healthy, the request is
          not. Never retried, never restarted. *)

(** The exact strings {!call} has always returned for each case. *)
val render_call_error : call_error -> string

(** [call_typed t ~caller ~target ~service req] — like {!call} but the
    failure keeps its shape. *)
val call_typed :
  t -> caller:string option -> target:string -> service:string -> string ->
  (string, call_error) result

(** [call t ~caller ~target ~service req] — [caller = None] means the
    outside world (network, user), which may only reach components
    marked [network_facing]. [{!call_typed} |> Result.map_error
    {!render_call_error}]. *)
val call :
  t -> caller:string option -> target:string -> service:string -> string ->
  (string, string) result

(** [violations t] — every blocked call so far, oldest first. *)
val violations : t -> violation list

(** [compromise t name] marks a component attacker-controlled; its
    behaviour is replaced by one that attempts every call it can. *)
val compromise : t -> string -> unit

val compromised : t -> string list

(** [exfiltration_attempts t name] — after {!compromise} and a call into
    the component, which (target, service) pairs it managed to invoke
    vs. had blocked. *)
val exfiltration_attempts : t -> string -> (string * string * bool) list

(** [authorized t ~caller ~target ~service] — the channel policy alone:
    would this call be connected? ([caller = None] is the outside world,
    admitted only to [network_facing] targets.) No events, no violation
    records — {!call} is the enforcing path. *)
val authorized :
  t -> caller:string option -> target:string -> service:string -> bool

(** [owned_getter t name] — an allocation-free poll of the component's
    compromise flag, for fast paths that must bail to the enforcing
    route the moment a component is owned. [None] for unknown names. *)
val owned_getter : t -> string -> (unit -> bool) option

(** Captures comps (bindings + per-component behaviour/flags/attempts)
    and the violation log; part of the {!Deploy} world layer. *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t
