type severity = Error | Warning | Info

type location = { file : string; line : int }

type t = {
  rule_id : string;
  severity : severity;
  component : string;
  service : string option;
  message : string;
  fix_hint : string;
  loc : location option;
}

let v ~rule_id ~severity ~component ?service ?loc ~message ~fix_hint () =
  { rule_id; severity; component; service; message; fix_hint; loc }

let with_loc loc t = { t with loc = Some loc }

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* sort order for reports: worst first, then stable textual keys so the
   output (and the golden files diffing it) is deterministic *)
let compare a b =
  Stdlib.compare
    (severity_rank a.severity, a.rule_id, a.component, a.service, a.message, a.loc)
    (severity_rank b.severity, b.rule_id, b.component, b.service, b.message, b.loc)

let subject t =
  match t.service with
  | Some s -> t.component ^ "." ^ s
  | None -> t.component

let loc_prefix t =
  match t.loc with
  | None -> ""
  | Some { file; line } -> Printf.sprintf "%s:%d: " file line

let pp fmt t =
  Format.fprintf fmt "%-7s %-24s %-18s %s%s@,%-7s %-24s %-18s fix: %s"
    (severity_to_string t.severity) t.rule_id (subject t) (loc_prefix t)
    t.message "" "" "" t.fix_hint

let to_text t =
  Printf.sprintf "%-7s %-26s %-16s %s%s\n%s fix: %s"
    (severity_to_string t.severity) t.rule_id (subject t) (loc_prefix t)
    t.message
    (String.make 52 ' ')
    t.fix_hint

(* minimal JSON string escaping: the repo deliberately has no JSON
   dependency, and diagnostics only need the string/null/object subset *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

let to_json t =
  Printf.sprintf
    "{\"rule\":%s,\"severity\":%s,\"component\":%s,\"service\":%s,\"message\":%s,\"fix_hint\":%s,\"location\":%s}"
    (json_string t.rule_id)
    (json_string (severity_to_string t.severity))
    (json_string t.component)
    (match t.service with None -> "null" | Some s -> json_string s)
    (json_string t.message) (json_string t.fix_hint)
    (match t.loc with
     | None -> "null"
     | Some { file; line } ->
       Printf.sprintf "{\"file\":%s,\"line\":%d}" (json_string file) line)
