type partial = {
  mutable p_domain : string option;
  mutable p_size : int;
  mutable p_substrate : string;
  mutable p_network : bool;
  mutable p_vulnerable : bool;
  mutable p_badges : bool;
  mutable p_provides : string list;
  mutable p_connects : Manifest.connection list;
  mutable p_stateful : bool;
  mutable p_restart : Manifest.restart option;
  mutable p_placement : string list;
}

let fresh_partial () =
  { p_domain = None;
    p_size = 1000;
    p_substrate = "microkernel";
    p_network = false;
    p_vulnerable = false;
    p_badges = true;
    p_provides = [];
    p_connects = [];
    p_stateful = false;
    p_restart = None;
    p_placement = [] }

let finish ?(trust_domain = []) name p =
  Manifest.v ~name ~provides:(List.rev p.p_provides)
    ~connects_to:(List.rev p.p_connects)
    ?domain:p.p_domain ~trust_domain ~size_loc:p.p_size
    ~network_facing:p.p_network
    ~vulnerable:p.p_vulnerable ~discriminates_clients:p.p_badges
    ~substrate:p.p_substrate ~stateful:p.p_stateful ?restart:p.p_restart
    ~placement:(List.rev p.p_placement) ()

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let parse_connection ~vetted ~lineno w =
  match String.index_opt w '.' with
  | Some i when i > 0 && i < String.length w - 1 ->
    Ok
      (Manifest.conn ~vetted
         (String.sub w 0 i)
         (String.sub w (i + 1) (String.length w - i - 1)))
  | _ -> Error (Printf.sprintf "line %d: expected target.service, got %S" lineno w)

type span = { sp_manifest : Manifest.t; sp_line : int }

type host_partial = { hp_name : string; mutable hp_substrates : string list }

type stanza = Comp of string * int * partial | Host of host_partial

let parse_fleet_spanned text =
  let lines = String.split_on_char '\n' text in
  let manifests = ref [] in
  let hosts = ref [] in
  let current : stanza option ref = ref None in
  (* open trust domains, innermost first; a component closed while the
     stack is non-empty carries the (reversed) stack as its path *)
  let domains : string list ref = ref [] in
  let error = ref None in
  let close () =
    (match !current with
     | Some (Comp (name, line, p)) ->
       manifests :=
         { sp_manifest = finish ~trust_domain:(List.rev !domains) name p;
           sp_line = line }
         :: !manifests
     | Some (Host hp) ->
       hosts :=
         Manifest.host ~name:hp.hp_name ~substrates:(List.rev hp.hp_substrates)
         :: !hosts
     | None -> ());
    current := None
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if !error <> None then ()
      else begin
        let line =
          match String.index_opt line '#' with
          | Some j -> String.sub line 0 j
          | None -> line
        in
        match split_ws (String.trim line) with
        | [] -> ()
        | "component" :: rest ->
          (match rest with
           | [ name ] ->
             close ();
             if
               List.exists
                 (fun s -> s.sp_manifest.Manifest.name = name)
                 !manifests
             then
               error := Some (Printf.sprintf "line %d: duplicate component %S" lineno name)
             else current := Some (Comp (name, lineno, fresh_partial ()))
           | _ -> error := Some (Printf.sprintf "line %d: component takes one name" lineno))
        | "host" :: rest ->
          (match rest with
           | [ name ] ->
             close ();
             if List.exists (fun h -> h.Manifest.h_name = name) !hosts then
               error := Some (Printf.sprintf "line %d: duplicate host %S" lineno name)
             else current := Some (Host { hp_name = name; hp_substrates = [] })
           | _ -> error := Some (Printf.sprintf "line %d: host takes one name" lineno))
        (* [domain] between stanzas opens a trust domain; inside a
           component it stays the protection-domain directive below *)
        | "domain" :: rest when !current = None ->
          (match rest with
           | [ d ] -> domains := d :: !domains
           | _ -> error := Some (Printf.sprintf "line %d: domain takes one name" lineno))
        | "end" :: rest ->
          (match rest with
           | [] ->
             if !current <> None then close ()
             else (
               match !domains with
               | _ :: tl -> domains := tl
               | [] ->
                 error :=
                   Some
                     (Printf.sprintf
                        "line %d: end with no open component or domain" lineno))
           | _ -> error := Some (Printf.sprintf "line %d: end takes no arguments" lineno))
        | directive :: args ->
          (match !current with
           | None ->
             error :=
               Some (Printf.sprintf "line %d: %S outside a component" lineno directive)
           | Some (Host hp) ->
             (match (directive, args) with
              | "substrates", (_ :: _ as subs) ->
                hp.hp_substrates <- List.rev_append subs hp.hp_substrates
              | _, _ ->
                error :=
                  Some
                    (Printf.sprintf
                       "line %d: unknown or malformed host directive %S" lineno
                       directive))
           | Some (Comp (cname, _, p)) ->
             (match (directive, args) with
              | "domain", [ d ] -> p.p_domain <- Some d
              | "size", [ n ] ->
                (match int_of_string_opt n with
                 | Some v when v >= 0 -> p.p_size <- v
                 | _ -> error := Some (Printf.sprintf "line %d: bad size %S" lineno n))
              | "substrate", [ s ] -> p.p_substrate <- s
              | "network-facing", [] -> p.p_network <- true
              | "vulnerable", [] -> p.p_vulnerable <- true
              | "no-badge-checks", [] -> p.p_badges <- false
              | "stateful", [] -> p.p_stateful <- true
              | "restart", (policy :: bounds) ->
                (match Manifest.restart_policy_of_string policy with
                 | None ->
                   error :=
                     Some
                       (Printf.sprintf
                          "line %d: bad restart policy %S (never | on-failure | always)"
                          lineno policy)
                 | Some pol ->
                   let base = Manifest.default_restart pol in
                   (match bounds with
                    | [] -> p.p_restart <- Some base
                    | [ mx ] ->
                      (match int_of_string_opt mx with
                       | Some v when v >= 0 ->
                         p.p_restart <- Some { base with Manifest.r_max = v }
                       | _ ->
                         error :=
                           Some (Printf.sprintf "line %d: bad restart max %S" lineno mx))
                    | [ mx; win ] ->
                      (match (int_of_string_opt mx, int_of_string_opt win) with
                       | Some v, Some w when v >= 0 && w > 0 ->
                         p.p_restart <-
                           Some { base with Manifest.r_max = v; r_window = w }
                       | _ ->
                         error :=
                           Some
                             (Printf.sprintf "line %d: bad restart bounds %S %S" lineno
                                mx win))
                    | _ ->
                      error :=
                        Some
                          (Printf.sprintf
                             "line %d: restart takes policy [max [window]]" lineno)))
              | "provides", (_ :: _ as services) ->
                p.p_provides <- List.rev_append services p.p_provides
              | "place", (_ :: _ as selectors) ->
                p.p_placement <- List.rev_append selectors p.p_placement
              | "connects", [ w ] ->
                (match parse_connection ~vetted:false ~lineno w with
                 | Ok c when c.Manifest.target = cname ->
                   error :=
                     Some
                       (Printf.sprintf "line %d: component %S connects to itself"
                          lineno cname)
                 | Ok c -> p.p_connects <- c :: p.p_connects
                 | Error e -> error := Some e)
              | "connects-vetted", [ w ] ->
                (match parse_connection ~vetted:true ~lineno w with
                 | Ok c when c.Manifest.target = cname ->
                   error :=
                     Some
                       (Printf.sprintf "line %d: component %S connects to itself"
                          lineno cname)
                 | Ok c -> p.p_connects <- c :: p.p_connects
                 | Error e -> error := Some e)
              | _, _ ->
                error :=
                  Some
                    (Printf.sprintf "line %d: unknown or malformed directive %S" lineno
                       directive)))
      end)
    lines;
  match !error with
  | Some e -> Error e
  | None ->
    close ();
    Ok (List.rev !manifests, List.rev !hosts)

let parse_spanned text = Result.map fst (parse_fleet_spanned text)

let parse text =
  Result.map (List.map (fun s -> s.sp_manifest)) (parse_spanned text)

let parse_fleet text =
  Result.map
    (fun (spans, hosts) -> (List.map (fun s -> s.sp_manifest) spans, hosts))
    (parse_fleet_spanned text)

let load_fleet_spanned path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_fleet_spanned text
  | exception Sys_error e -> Error e

let load_spanned path = Result.map fst (load_fleet_spanned path)

let load path =
  Result.map (List.map (fun s -> s.sp_manifest)) (load_spanned path)

let load_fleet path =
  Result.map
    (fun (spans, hosts) -> (List.map (fun s -> s.sp_manifest) spans, hosts))
    (load_fleet_spanned path)

let to_text manifests =
  let buf = Buffer.create 512 in
  (* trust-domain tree emission: between components, pop to the common
     prefix ([end] lines, the first also closing the open component) and
     push the remainder ([domain] lines). Files with no trust domains
     print byte-identically to the flat format. *)
  let open_path = ref [] in
  let pad depth = String.make (2 * depth) ' ' in
  let move_to path ~stanza_open =
    let rec common p q =
      match (p, q) with
      | a :: ps, b :: qs when a = b -> a :: common ps qs
      | _ -> []
    in
    let keep = common !open_path path in
    let pops = List.length !open_path - List.length keep in
    let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
    let pushes = drop (List.length keep) path in
    if stanza_open && (pops > 0 || pushes <> []) then
      (* close the open component so the next [domain]/[end] line is not
         read as one of its directives *)
      Buffer.add_string buf (pad (List.length !open_path) ^ "end\n");
    for i = 1 to pops do
      Buffer.add_string buf (pad (List.length !open_path - i) ^ "end\n")
    done;
    List.iteri
      (fun i d ->
        Buffer.add_string buf
          (Printf.sprintf "%sdomain %s\n" (pad (List.length keep + i)) d))
      pushes;
    if pops > 0 || pushes <> [] then Buffer.add_char buf '\n';
    open_path := path
  in
  List.iteri
    (fun i m ->
      move_to m.Manifest.trust_domain ~stanza_open:(i > 0);
      let ind = pad (List.length !open_path) in
      let dir = ind ^ "  " in
      Buffer.add_string buf (Printf.sprintf "%scomponent %s\n" ind m.Manifest.name);
      if m.Manifest.domain <> m.Manifest.name then
        Buffer.add_string buf (Printf.sprintf "%sdomain %s\n" dir m.Manifest.domain);
      Buffer.add_string buf (Printf.sprintf "%ssize %d\n" dir m.Manifest.size_loc);
      Buffer.add_string buf (Printf.sprintf "%ssubstrate %s\n" dir m.Manifest.substrate);
      if m.Manifest.network_facing then Buffer.add_string buf (dir ^ "network-facing\n");
      if m.Manifest.vulnerable then Buffer.add_string buf (dir ^ "vulnerable\n");
      if not m.Manifest.discriminates_clients then
        Buffer.add_string buf (dir ^ "no-badge-checks\n");
      if m.Manifest.stateful then Buffer.add_string buf (dir ^ "stateful\n");
      (match m.Manifest.restart with
       | None -> ()
       | Some r ->
         Buffer.add_string buf
           (Printf.sprintf "%srestart %s %d %d\n" dir
              (Manifest.restart_policy_to_string r.Manifest.r_policy)
              r.Manifest.r_max r.Manifest.r_window));
      if m.Manifest.provides <> [] then
        Buffer.add_string buf
          (Printf.sprintf "%sprovides %s\n" dir (String.concat " " m.Manifest.provides));
      if m.Manifest.placement <> [] then
        Buffer.add_string buf
          (Printf.sprintf "%splace %s\n" dir (String.concat " " m.Manifest.placement));
      List.iter
        (fun c ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s.%s\n" dir
               (if c.Manifest.vetted then "connects-vetted" else "connects")
               c.Manifest.target c.Manifest.service))
        m.Manifest.connects_to;
      Buffer.add_char buf '\n')
    manifests;
  (if manifests <> [] && !open_path <> [] then begin
     Buffer.add_string buf (pad (List.length !open_path) ^ "end\n");
     let d = List.length !open_path in
     for i = 1 to d do Buffer.add_string buf (pad (d - i) ^ "end\n") done
   end);
  Buffer.contents buf

let fleet_to_text (manifests, hosts) =
  let buf = Buffer.create 512 in
  List.iter
    (fun h ->
      Buffer.add_string buf (Printf.sprintf "host %s\n" h.Manifest.h_name);
      if h.Manifest.h_substrates <> [] then
        Buffer.add_string buf
          (Printf.sprintf "  substrates %s\n" (String.concat " " h.Manifest.h_substrates));
      Buffer.add_char buf '\n')
    hosts;
  Buffer.add_string buf (to_text manifests);
  Buffer.contents buf
