type ctx = {
  facilities : Substrate.facilities;
  call_out : target:string -> service:string -> string -> (string, string) result;
  call_out_typed :
    target:string -> service:string -> string -> (string, App.call_error) result;
}

type behaviour = ctx -> service:string -> string -> string

type t = {
  app : App.t; (* manifests + channel policy; behaviours delegate below *)
  placements : (string, Substrate.t * Substrate.component) Hashtbl.t;
  specs : (string, Manifest.t * behaviour) Hashtbl.t;
      (* what was asked for, kept so a crashed component can be
         relaunched from its original spec *)
}

(* no span here: the router's "call" span above this bridge and the
   substrate adapter's own span below it (ecall, smc, ipc-rpc, mailbox —
   each tagged with its substrate) already bracket the hop; a third
   identically-named span would only add per-call cost *)
let bridge sub comp _ctx ~service req =
  match sub.Substrate.invoke comp ~fn:service req with
  | Ok r -> r
  | Error e ->
    Lt_obs.Trace.fail_span e;
    (* a Service_failure stringified by the substrate hop comes back
       typed, so the router reports [Failed], not [Crashed] *)
    (match Substrate.as_failure e with
     | Some m -> raise (Substrate.Service_failure m)
     | None -> failwith e)

let services_for ~self ~name ~behaviour provides =
  let service_for svc =
    ( svc,
      fun facilities req ->
        let call_out_typed ~target ~service r =
          match !self with
          | None ->
            Error (App.Failed { target; reason = "router not ready" })
          | Some t -> App.call_typed t.app ~caller:(Some name) ~target ~service r
        in
        let call_out ~target ~service r =
          match !self with
          | None -> Error "router not ready"
          | Some t -> App.call t.app ~caller:(Some name) ~target ~service r
        in
        behaviour { facilities; call_out; call_out_typed } ~service:svc req )
  in
  List.map service_for provides

let deploy ~substrates components =
  let app = App.create () in
  let placements = Hashtbl.create 8 in
  let specs = Hashtbl.create 8 in
  (* tie the routing knot: component services capture this ref *)
  let self : t option ref = ref None in
  let launch_one (man, behaviour) =
    let name = man.Manifest.name in
    match List.assoc_opt man.Manifest.substrate substrates with
    | None ->
      Error
        (Printf.sprintf "component %s names unknown substrate %S" name
           man.Manifest.substrate)
    | Some sub ->
      (match
         sub.Substrate.launch ~name ~code:("component|" ^ name)
           ~services:(services_for ~self ~name ~behaviour man.Manifest.provides)
       with
       | Error e -> Error (Printf.sprintf "launching %s: %s" name e)
       | Ok comp ->
         Hashtbl.replace placements name (sub, comp);
         Hashtbl.replace specs name (man, behaviour);
         App.add app man (bridge sub comp);
         Ok ())
  in
  let rec go = function
    | [] -> Ok ()
    | c :: rest -> (match launch_one c with Ok () -> go rest | Error _ as e -> e)
  in
  match go components with
  | Error e -> Error e
  | Ok () ->
    (match App.validate app with
     | Error errs -> Error ("manifest validation: " ^ String.concat "; " errs)
     | Ok () ->
       let t = { app; placements; specs } in
       self := Some t;
       Ok t)

let call t ~caller ~target ~service req =
  App.call t.app ~caller ~target ~service req

let call_typed t ~caller ~target ~service req =
  App.call_typed t.app ~caller ~target ~service req

let components t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.placements []
  |> List.sort Stdlib.compare

let manifest t name = App.manifest t.app name

let crash t name =
  match Hashtbl.find_opt t.placements name with
  | None -> Error (Printf.sprintf "no component %S" name)
  | Some (sub, comp) ->
    sub.Substrate.crash comp;
    Ok ()

let is_alive t name =
  match Hashtbl.find_opt t.placements name with
  | None -> false
  | Some (sub, comp) -> sub.Substrate.is_alive comp

let relaunch t name =
  match (Hashtbl.find_opt t.placements name, Hashtbl.find_opt t.specs name) with
  | None, _ | _, None -> Error (Printf.sprintf "no component %S" name)
  | Some (sub, old_comp), Some (man, behaviour) ->
    (* crash-only: there is no graceful stop, a live instance is killed
       before its replacement comes up *)
    if sub.Substrate.is_alive old_comp then sub.Substrate.crash old_comp;
    let self = ref (Some t) in
    (match
       sub.Substrate.launch ~name ~code:("component|" ^ name)
         ~services:(services_for ~self ~name ~behaviour man.Manifest.provides)
     with
     | Error e -> Error (Printf.sprintf "relaunching %s: %s" name e)
     | Ok comp ->
       Hashtbl.replace t.placements name (sub, comp);
       App.set_behaviour t.app name (bridge sub comp);
       Ok ())

let violations t = App.violations t.app

let substrate_of t name =
  Option.map
    (fun (sub, _) -> sub.Substrate.properties.Substrate.substrate_name)
    (Hashtbl.find_opt t.placements name)

let attest t ~component ~nonce ~claim =
  match Hashtbl.find_opt t.placements component with
  | None -> Error (Printf.sprintf "no component %S" component)
  | Some (sub, comp) -> sub.Substrate.attest comp ~nonce ~claim
