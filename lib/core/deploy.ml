type ctx = {
  facilities : Substrate.facilities;
  call_out : target:string -> service:string -> string -> (string, string) result;
}

type behaviour = ctx -> service:string -> string -> string

type t = {
  app : App.t; (* manifests + channel policy; behaviours delegate below *)
  placements : (string, Substrate.t * Substrate.component) Hashtbl.t;
}

let deploy ~substrates components =
  let app = App.create () in
  let placements = Hashtbl.create 8 in
  (* tie the routing knot: component services capture this ref *)
  let self : t option ref = ref None in
  let launch_one (man, behaviour) =
    let name = man.Manifest.name in
    match List.assoc_opt man.Manifest.substrate substrates with
    | None ->
      Error
        (Printf.sprintf "component %s names unknown substrate %S" name
           man.Manifest.substrate)
    | Some sub ->
      let service_for svc =
        ( svc,
          fun facilities req ->
            let call_out ~target ~service r =
              match !self with
              | None -> Error "router not ready"
              | Some t -> App.call t.app ~caller:(Some name) ~target ~service r
            in
            behaviour { facilities; call_out } ~service:svc req )
      in
      (match
         sub.Substrate.launch ~name ~code:("component|" ^ name)
           ~services:(List.map service_for man.Manifest.provides)
       with
       | Error e -> Error (Printf.sprintf "launching %s: %s" name e)
       | Ok comp ->
         Hashtbl.replace placements name (sub, comp);
         (* no span here: the router's "call" span above this bridge and
            the substrate adapter's own span below it (ecall, smc,
            ipc-rpc, mailbox — each tagged with its substrate) already
            bracket the hop; a third identically-named span would only
            add per-call cost *)
         App.add app man (fun _ctx ~service req ->
             match sub.Substrate.invoke comp ~fn:service req with
             | Ok r -> r
             | Error e ->
               Lt_obs.Trace.fail_span e;
               failwith e);
         Ok ())
  in
  let rec go = function
    | [] -> Ok ()
    | c :: rest -> (match launch_one c with Ok () -> go rest | Error _ as e -> e)
  in
  match go components with
  | Error e -> Error e
  | Ok () ->
    (match App.validate app with
     | Error errs -> Error ("manifest validation: " ^ String.concat "; " errs)
     | Ok () ->
       let t = { app; placements } in
       self := Some t;
       Ok t)

let call t ~caller ~target ~service req =
  App.call t.app ~caller ~target ~service req

let violations t = App.violations t.app

let substrate_of t name =
  Option.map
    (fun (sub, _) -> sub.Substrate.properties.Substrate.substrate_name)
    (Hashtbl.find_opt t.placements name)

let attest t ~component ~nonce ~claim =
  match Hashtbl.find_opt t.placements component with
  | None -> Error (Printf.sprintf "no component %S" component)
  | Some (sub, comp) -> sub.Substrate.attest comp ~nonce ~claim
