type ctx = {
  facilities : Substrate.facilities;
  call_out : target:string -> service:string -> string -> (string, string) result;
  call_out_typed :
    target:string -> service:string -> string -> (string, App.call_error) result;
}

type behaviour = ctx -> service:string -> string -> string

(* a precomputed dispatch edge: everything [call] would look up per
   request, resolved once at [resolve] time.  [r_ctx] is filled lazily
   from the facilities cache after the first slow call through the
   target (facilities only surface when a service actually runs). *)
type route = {
  r_caller : string option;
  r_target : string;
  r_service : string;
  r_behaviour : behaviour;
  r_owned : unit -> bool; (* poll of the App compromise flag, no alloc *)
  mutable r_ctx : ctx option;
}

type t = {
  app : App.t; (* manifests + channel policy; behaviours delegate below *)
  placements : (string, Substrate.t * Substrate.component) Hashtbl.t;
  specs : (string, Manifest.t * behaviour) Hashtbl.t;
      (* what was asked for, kept so a crashed component can be
         relaunched from its original spec *)
  facil : (string, Substrate.facilities) Hashtbl.t;
      (* facilities captured the first time each component's service
         actually runs; invalidated on crash/relaunch *)
  routes : (string option * string * string, route) Hashtbl.t;
}

(* no span here: the router's "call" span above this bridge and the
   substrate adapter's own span below it (ecall, smc, ipc-rpc, mailbox —
   each tagged with its substrate) already bracket the hop; a third
   identically-named span would only add per-call cost *)
let bridge sub comp _ctx ~service req =
  match sub.Substrate.invoke comp ~fn:service req with
  | Ok r -> r
  | Error e ->
    Lt_obs.Trace.fail_span e;
    (* a Service_failure or Dependency_crashed stringified by the
       substrate hop comes back typed, so the router reports [Failed] /
       [Crashed]-at-the-true-origin, not a crash of this component *)
    (match Substrate.as_failure e with
     | Some m -> raise (Substrate.Service_failure m)
     | None ->
       (match Substrate.as_dep_crashed e with
        | Some (origin, reason) -> Substrate.dep_crashed ~origin reason
        | None -> failwith e))

let services_for ~self ~name ~behaviour provides =
  let service_for svc =
    ( svc,
      fun facilities req ->
        (* stash the facilities so the fast path can build its ctx; one
           [mem] per slow call once cached *)
        (match !self with
         | Some t when not (Hashtbl.mem t.facil name) ->
           Hashtbl.replace t.facil name facilities
         | _ -> ());
        let call_out_typed ~target ~service r =
          match !self with
          | None ->
            Error (App.Failed { target; reason = "router not ready" })
          | Some t -> App.call_typed t.app ~caller:(Some name) ~target ~service r
        in
        let call_out ~target ~service r =
          match !self with
          | None -> Error "router not ready"
          | Some t -> App.call t.app ~caller:(Some name) ~target ~service r
        in
        behaviour { facilities; call_out; call_out_typed } ~service:svc req )
  in
  List.map service_for provides

let deploy ~substrates components =
  let app = App.create () in
  let placements = Hashtbl.create 8 in
  let specs = Hashtbl.create 8 in
  (* tie the routing knot: component services capture this ref *)
  let self : t option ref = ref None in
  let launch_one (man, behaviour) =
    let name = man.Manifest.name in
    match List.assoc_opt man.Manifest.substrate substrates with
    | None ->
      Error
        (Printf.sprintf "component %s names unknown substrate %S" name
           man.Manifest.substrate)
    | Some sub ->
      (match
         sub.Substrate.launch ~name ~code:("component|" ^ name)
           ~services:(services_for ~self ~name ~behaviour man.Manifest.provides)
       with
       | Error e -> Error (Printf.sprintf "launching %s: %s" name e)
       | Ok comp ->
         Hashtbl.replace placements name (sub, comp);
         Hashtbl.replace specs name (man, behaviour);
         App.add app man (bridge sub comp);
         Ok ())
  in
  let rec go = function
    | [] -> Ok ()
    | c :: rest -> (match launch_one c with Ok () -> go rest | Error _ as e -> e)
  in
  match go components with
  | Error e -> Error e
  | Ok () ->
    (match App.validate app with
     | Error errs -> Error ("manifest validation: " ^ String.concat "; " errs)
     | Ok () ->
       let t =
         { app; placements; specs;
           facil = Hashtbl.create 8;
           routes = Hashtbl.create 16 }
       in
       self := Some t;
       Ok t)

let call t ~caller ~target ~service req =
  App.call t.app ~caller ~target ~service req

let call_typed t ~caller ~target ~service req =
  App.call_typed t.app ~caller ~target ~service req

let components t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.placements []
  |> List.sort Stdlib.compare

let manifest t name = App.manifest t.app name

(* a crashed or relaunched instance invalidates its cached facilities
   and any route ctx built from them; the next slow call re-captures *)
let invalidate_fast t name =
  Hashtbl.remove t.facil name;
  Hashtbl.iter (fun _ r -> if r.r_target = name then r.r_ctx <- None) t.routes

let crash t name =
  match Hashtbl.find_opt t.placements name with
  | None -> Error (Printf.sprintf "no component %S" name)
  | Some (sub, comp) ->
    sub.Substrate.crash comp;
    invalidate_fast t name;
    Ok ()

let is_alive t name =
  match Hashtbl.find_opt t.placements name with
  | None -> false
  | Some (sub, comp) -> sub.Substrate.is_alive comp

let relaunch t name =
  match (Hashtbl.find_opt t.placements name, Hashtbl.find_opt t.specs name) with
  | None, _ | _, None -> Error (Printf.sprintf "no component %S" name)
  | Some (sub, old_comp), Some (man, behaviour) ->
    (* crash-only: there is no graceful stop, a live instance is killed
       before its replacement comes up *)
    if sub.Substrate.is_alive old_comp then sub.Substrate.crash old_comp;
    let self = ref (Some t) in
    (match
       sub.Substrate.launch ~name ~code:("component|" ^ name)
         ~services:(services_for ~self ~name ~behaviour man.Manifest.provides)
     with
     | Error e -> Error (Printf.sprintf "relaunching %s: %s" name e)
     | Ok comp ->
       Hashtbl.replace t.placements name (sub, comp);
       App.set_behaviour t.app name (bridge sub comp);
       invalidate_fast t name;
       Ok ())

let violations t = App.violations t.app

let substrate_of t name =
  Option.map
    (fun (sub, _) -> sub.Substrate.properties.Substrate.substrate_name)
    (Hashtbl.find_opt t.placements name)

(* scrub-everything fencing: destroy (not crash) so substrate adapters
   drop sealed state too, then forget the specs so nothing relaunches *)
let destroy t =
  Hashtbl.iter (fun _ (sub, comp) -> sub.Substrate.destroy comp) t.placements;
  Hashtbl.reset t.placements;
  Hashtbl.reset t.specs;
  Hashtbl.reset t.facil;
  Hashtbl.reset t.routes

let attest t ~component ~nonce ~claim =
  match Hashtbl.find_opt t.placements component with
  | None -> Error (Printf.sprintf "no component %S" component)
  | Some (sub, comp) -> sub.Substrate.attest comp ~nonce ~claim

(* --- the zero-alloc fast path ----------------------------------------- *)

exception Call_failed of App.call_error

let ctx_for t name facilities =
  { facilities;
    call_out =
      (fun ~target ~service r ->
        App.call t.app ~caller:(Some name) ~target ~service r);
    call_out_typed =
      (fun ~target ~service r ->
        App.call_typed t.app ~caller:(Some name) ~target ~service r) }

(* Routes exist only for statically authorized edges: the manifest graph
   is fixed at deploy time (compromise changes behaviour, never
   authority), so an edge checked here once never needs re-checking.
   Unauthorized or unknown edges get no route — callers fall back to the
   enforcing [call], which records the deny. *)
let resolve t ~caller ~target ~service =
  let key = (caller, target, service) in
  match Hashtbl.find_opt t.routes key with
  | Some _ as r -> r
  | None ->
    if not (App.authorized t.app ~caller ~target ~service) then None
    else
      (match Hashtbl.find_opt t.specs target with
       | None -> None
       | Some (man, behaviour) ->
         if not (List.mem service man.Manifest.provides) then None
         else
           (match App.owned_getter t.app target with
            | None -> None
            | Some r_owned ->
              let route =
                { r_caller = caller; r_target = target; r_service = service;
                  r_behaviour = behaviour; r_owned; r_ctx = None }
              in
              Hashtbl.replace t.routes key route;
              Some route))

(* The slow half: the full enforcing pipeline (spans, deny events,
   payload sweeps, the substrate hop).  On success it primes [r_ctx]
   from the facilities the call just surfaced, so the next fast call
   skips the transport. *)
let call_slow t route req =
  match
    call_typed t ~caller:route.r_caller ~target:route.r_target
      ~service:route.r_service req
  with
  | Ok r ->
    (if route.r_ctx = None then
       match Hashtbl.find_opt t.facil route.r_target with
       | Some facilities ->
         route.r_ctx <- Some (ctx_for t route.r_target facilities)
       | None -> ());
    r
  | Error e -> raise (Call_failed e)

(* Fast when nothing that needs the full pipeline can happen: a primed
   ctx, tracing off, target not compromised, instance alive.  Then the
   behaviour runs directly against its real facilities — no substrate
   hop, no span, no result boxing: zero minor words on this path.
   Everything else falls back to [call_slow]. *)
let call_fast t route req =
  match route.r_ctx with
  | Some ctx
    when (not (Lt_obs.Trace.enabled ()))
         && (not (route.r_owned ()))
         && (match Hashtbl.find t.placements route.r_target with
             | sub, comp -> sub.Substrate.is_alive comp
             | exception Not_found -> false) ->
    route.r_behaviour ctx ~service:route.r_service req
  | _ -> call_slow t route req

(* --- Snapshottable / world assembly ------------------------------------ *)

module Snap = Lt_world.Snapshottable
module D64 = Lt_world.Digest64
module World = Lt_world.World

let take_snapshot t =
  let app = App.take_snapshot t.app in
  let placements = Snap.save_hashtbl t.placements in
  let specs = Snap.save_hashtbl t.specs in
  let facil = Snap.save_hashtbl t.facil in
  let routes = Snap.save_hashtbl t.routes in
  let per_route =
    Hashtbl.fold
      (fun _ r acc ->
        let ctx = r.r_ctx in
        (fun () -> r.r_ctx <- ctx) :: acc)
      t.routes []
  in
  fun () ->
    app ();
    placements ();
    specs ();
    facil ();
    routes ();
    List.iter (fun restore -> restore ()) per_route

(* placements/specs/facil hold closures; App's digest plus which names
   are placed covers the observable control-plane state (substrate
   internals are their own layers) *)
let state_digest t =
  let d = App.state_digest t.app in
  let d = D64.int d (Hashtbl.length t.placements) in
  List.fold_left
    (fun d (name, (sub, comp)) ->
      let d = D64.string d name in
      let d = D64.string d sub.Substrate.properties.Substrate.substrate_name in
      D64.bool d (sub.Substrate.is_alive comp))
    d
    (Snap.sorted_bindings t.placements)

let layer ?(name = "deploy") t =
  Snap.make ~name
    ~take:(fun () -> take_snapshot t)
    ~digest:(fun () -> state_digest t)

(* Collect every adapter's layers (deduplicated: one adapter hosts many
   components) plus the deploy control plane.  Adapters sharing a
   machine or TPM each carry a layer over it; fork captures all layers
   at the same instant and restore is idempotent, so the double capture
   is harmless. *)
let world ?(extra = []) t =
  let w = World.create () in
  let subs =
    Hashtbl.fold
      (fun _ (sub, _) acc -> if List.memq sub acc then acc else sub :: acc)
      t.placements []
  in
  List.iter (fun sub -> World.add_all w sub.Substrate.snap_layers) (List.rev subs);
  World.add w (layer t);
  World.add_all w extra;
  w
