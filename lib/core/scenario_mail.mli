(** The email-client scenario (§III-C and Figure 1).

    One inventory of mail-client subsystems, buildable in two shapes:
    - {e vertical}: every subsystem linked into one protection domain,
      today's monolithic design;
    - {e horizontal}: each subsystem its own isolated component with a
      manifest-declared channel set.

    Used by the [fig1-containment] and [tcb-size] experiments and the
    [email_client] example. *)

(** [manifests ~vertical] is the component inventory. *)
val manifests : vertical:bool -> Manifest.t list

(** {!Flow.check_deployment} over the horizontal manifests: provisions
    them onto a simulated microkernel and checks capability conformance
    plus a leak-free flow verdict. Forced (and asserted) by {!build}. *)
val conformance : (unit, string) result Lazy.t

(** [build ~vertical] assembles the application with stub behaviours.
    [Error _] when the scenario's own manifests fail conformance — typed,
    so harnesses never catch [Failure _]. *)
val build : vertical:bool -> (App.t, string) result

(** [component_names] in a stable order. *)
val component_names : string list

(** [containment_row name] computes (owned fraction when [name] is
    exploited in the vertical design, same for horizontal). *)
val containment_row : string -> (float * float, string) result

(** [containment_table ()] — one row per component; the data behind
    Figure 1's argument. *)
val containment_table : unit -> ((string * float * float) list, string) result

(** [tcb_comparison ()] — (component, monolithic TCB, decomposed TCB)
    using a 10 kLoC microkernel substrate for the decomposed case and a
    30 kLoC monolithic-OS TCB for the vertical case. *)
val tcb_comparison : unit -> ((string * int * int) list, string) result
