(* Invariant: [Secret owners] is nonempty, sorted, duplicate-free. The
   type is abstract in the interface so every value in the program
   satisfies it by construction. *)

type t = Public | Tainted | Secret of string list

let public = Public

let tainted = Tainted

let secret owner = Secret [ owner ]

let secret_of = function
  | [] -> invalid_arg "Flow_lattice.secret_of: empty owner set"
  | owners -> Secret (List.sort_uniq String.compare owners)

let owners = function Public | Tainted -> [] | Secret os -> os

let is_secret t = owners t <> []

let is_tainted = function Public -> false | Tainted | Secret _ -> true

let subset a b = List.for_all (fun x -> List.mem x b) a

let leq a b =
  match (a, b) with
  | Public, _ -> true
  | Tainted, (Tainted | Secret _) -> true
  | Tainted, Public -> false
  | Secret sa, Secret sb -> subset sa sb
  | Secret _, (Public | Tainted) -> false

let join a b =
  match (a, b) with
  | Public, x | x, Public -> x
  (* Public is gone, so the other operand is Tainted or Secret — either
     way it is the upper bound of the pair *)
  | Tainted, x | x, Tainted -> x
  | Secret sa, Secret sb -> Secret (List.sort_uniq String.compare (sa @ sb))

let equal a b = a = b

let compare = Stdlib.compare

let to_string = function
  | Public -> "public"
  | Tainted -> "tainted"
  | Secret os -> "secret{" ^ String.concat "," os ^ "}"

let pp fmt t = Format.pp_print_string fmt (to_string t)
