module K = Lt_kernel.Kernel

(* The incremental analysis state. The manifest list, ctx, flow result
   and diagnostics are rebuilt functionally on every [apply]; the label
   tables, witness caches and kernel substate are mutated in place —
   states are linear (see the mli).

   Names are unique throughout: [create] dedupes first-wins and
   {!Delta.apply} preserves uniqueness (Add is an upsert). Every
   equivalence claim below is against the batch analysis of this same
   unique list. *)
type t = {
  config : Lint_rules.config;
  fconfig : Flow.config;
  cconfig : Contain.config;
  manifests : Manifest.t list;
  ctx : Lint_rules.ctx;  (* flow_memo and contain_memo pre-seeded *)
  flow : Flow.result;
  contain : Contain.result;
  diags : Diagnostic.t list;
  (* flow caches *)
  taint : (string, Flow_lattice.t) Hashtbl.t;
  secrecy : (string, Flow_lattice.t) Hashtbl.t;
  secret_paths : (string, string -> string list option) Hashtbl.t;
  taint_paths : (string, string -> string list option) Hashtbl.t;
  leaks_by : (string, Flow.leak list) Hashtbl.t;    (* per holder, sorted *)
  hits_by : (string, Flow.taint_hit list) Hashtbl.t;(* per source, sorted *)
  (* lint cache: rule id -> seed name -> its (nonempty) findings *)
  lint_cache : (string, (string, Diagnostic.t list) Hashtbl.t) Hashtbl.t;
  (* contain cache: per-root radius, exactly the dirty-root slice is
     recomputed per delta *)
  radii : (string, Contain.radius) Hashtbl.t;
  (* kernel substate; tasks and endpoints persist across Remove (the
     kernel has no destroy) but a removed component's capabilities are
     all revoked, so dead tasks hold no authority *)
  kernel : K.t;
  tasks : (string, K.task) Hashtbl.t;
  eps : (string, K.endpoint) Hashtbl.t;
  badge : (string, int) Hashtbl.t;
  recv_slot : (string, int) Hashtbl.t;
  send_slot : (string * string, int) Hashtbl.t;
  next_badge : int ref;
}

let manifests t = t.manifests
let diagnostics t = t.diags
let flow_result t = t.flow
let contain_result t = t.contain

(* the manifest fields the containment analysis reads besides the
   channel list (channel/vetting changes surface as propagation-edge
   diffs instead) *)
let contain_inputs m =
  (m.Manifest.restart, m.Manifest.domain, m.Manifest.substrate,
   m.Manifest.stateful)

(* --- small set/graph helpers ------------------------------------------------ *)

let set_of_list xs =
  let h = Hashtbl.create (max 8 (List.length xs)) in
  List.iter (fun x -> Hashtbl.replace h x ()) xs;
  h

(* forward BFS closure of [seeds] under [adj], seeds included *)
let closure adj seeds =
  let seen = Hashtbl.copy seeds in
  let q = Queue.create () in
  Hashtbl.iter (fun n () -> Queue.add n q) seeds;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.replace seen v ();
          Queue.add v q
        end)
      (adj u)
  done;
  seen

let flip e = { e with Flow.e_src = e.Flow.e_dst; e_dst = e.Flow.e_src }

(* --- the restricted fixpoint re-solve --------------------------------------- *)

(* [re_solve tbl ~suspects ~adj ~radj ~base] re-derives the labels of
   the suspect set against the *current* graph. Suspects are first
   reset to their base label — that is what lets labels drop when a
   channel or a taint source goes away — then the standard rising
   worklist runs, seeded by the suspects themselves plus the non-suspect
   frontier feeding into them. Soundness rests on the suspect set being
   closed under forward reachability from the delta's footprint: every
   node whose fixpoint label can differ is a suspect, so non-suspect
   labels are already exact and only need to be read, never touched.
   With every node suspect this is exactly the batch solver. *)
let re_solve tbl ~suspects ~adj ~radj ~base =
  let get n =
    Option.value ~default:Flow_lattice.public (Hashtbl.find_opt tbl n)
  in
  Hashtbl.iter (fun s () -> Hashtbl.replace tbl s (base s)) suspects;
  let queue = Queue.create () in
  let queued = Hashtbl.create 16 in
  let push n =
    if not (Hashtbl.mem queued n) then begin
      Hashtbl.replace queued n ();
      Queue.add n queue
    end
  in
  Hashtbl.iter
    (fun s () ->
      if not (Flow_lattice.equal (get s) Flow_lattice.public) then push s;
      List.iter
        (fun u ->
          if
            (not (Hashtbl.mem suspects u))
            && not (Flow_lattice.equal (get u) Flow_lattice.public)
          then push u)
        (radj s))
    suspects;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Hashtbl.remove queued u;
    let lu = get u in
    List.iter
      (fun v ->
        if Hashtbl.mem suspects v then begin
          let lv = get v in
          let j = Flow_lattice.join lv lu in
          if not (Flow_lattice.equal j lv) then begin
            Hashtbl.replace tbl v j;
            push v
          end
        end)
      (adj u)
  done

(* --- witness caches ---------------------------------------------------------- *)

(* per-holder leaks, sorted (the global report is a sort over the
   concatenation, so per-holder order is canonical, not load-bearing) *)
let leaks_for new_manifests h path_to =
  List.filter_map
    (fun m ->
      let n = m.Manifest.name in
      if n = h || not (Flow.tainted_base m) then None
      else
        match path_to n with
        | Some path -> Some { Flow.l_secret = h; l_sink = n; l_path = path }
        | None -> None)
    new_manifests
  |> List.sort Stdlib.compare

let hits_for holders src path_to =
  List.filter_map
    (fun h ->
      if h = src then None
      else
        match path_to h with
        | Some path ->
          Some
            { Flow.t_source = src; t_sink = h; t_path = path;
              t_direct = List.length path = 2 }
        | None -> None)
    holders
  |> List.sort Stdlib.compare

let assemble_flow ~taint ~secrecy ~leaks_by ~hits_by ~edges nodes =
  let get tbl n =
    Option.value ~default:Flow_lattice.public (Hashtbl.find_opt tbl n)
  in
  let labels =
    List.map
      (fun n -> (n, Flow_lattice.join (get taint n) (get secrecy n)))
      (List.sort String.compare nodes)
  in
  let leaks =
    Hashtbl.fold (fun _ ls acc -> List.rev_append ls acc) leaks_by []
    |> List.sort Stdlib.compare
  in
  let taint_hits =
    Hashtbl.fold (fun _ hs acc -> List.rev_append hs acc) hits_by []
    |> List.sort Stdlib.compare
  in
  let verdict = if leaks = [] then Flow.Secure else Flow.Leak leaks in
  { Flow.labels; leaks; taint_hits; verdict; edges }

let diags_of_cache lint_cache =
  Hashtbl.fold
    (fun _ tbl acc ->
      Hashtbl.fold (fun _ ds acc -> List.rev_append ds acc) tbl acc)
    lint_cache []
  |> List.sort_uniq Diagnostic.compare

(* --- create ------------------------------------------------------------------ *)

let create ?(config = Lint_rules.default_config) ?dram_pages manifests =
  let manifests = Flow.dedupe manifests in
  let fconfig = { Flow.secret_substrates = config.Lint_rules.secret_substrates } in
  let nodes = List.map (fun m -> m.Manifest.name) manifests in
  let holds_secret m =
    List.mem m.Manifest.substrate fconfig.Flow.secret_substrates
  in
  let index = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace index m.Manifest.name m) manifests;
  let find n = Hashtbl.find_opt index n in
  (* labels: run the solver with every node suspect = the batch fixpoint *)
  let edges = Flow.flow_edges manifests in
  let request_edges = List.filter (fun e -> not e.Flow.e_reply) edges in
  let taint_adj = Flow.adjacency request_edges in
  let secret_adj = Flow.adjacency edges in
  let all = set_of_list nodes in
  let taint = Hashtbl.create 16 and secrecy = Hashtbl.create 16 in
  re_solve taint ~suspects:all ~adj:taint_adj
    ~radj:(fun _ -> [])
    ~base:(fun n ->
      match find n with
      | Some m when Flow.tainted_base m -> Flow_lattice.tainted
      | _ -> Flow_lattice.public);
  re_solve secrecy ~suspects:all ~adj:secret_adj
    ~radj:(fun _ -> [])
    ~base:(fun n ->
      match find n with
      | Some m when holds_secret m -> Flow_lattice.secret n
      | _ -> Flow_lattice.public);
  (* witnesses *)
  let holders =
    List.filter holds_secret manifests
    |> List.map (fun m -> m.Manifest.name)
    |> List.sort String.compare
  in
  let sources =
    List.filter Flow.tainted_base manifests
    |> List.map (fun m -> m.Manifest.name)
    |> List.sort String.compare
  in
  let secret_paths = Hashtbl.create 8 and taint_paths = Hashtbl.create 8 in
  let leaks_by = Hashtbl.create 8 and hits_by = Hashtbl.create 8 in
  List.iter
    (fun h ->
      let pf = Flow.bfs_paths secret_adj h in
      Hashtbl.replace secret_paths h pf;
      Hashtbl.replace leaks_by h (leaks_for manifests h pf))
    holders;
  List.iter
    (fun src ->
      let pf = Flow.bfs_paths taint_adj src in
      Hashtbl.replace taint_paths src pf;
      Hashtbl.replace hits_by src (hits_for holders src pf))
    sources;
  let flow = assemble_flow ~taint ~secrecy ~leaks_by ~hits_by ~edges nodes in
  (* contain: batch radii, then keep only dirty roots fresh per delta *)
  let cconfig = Lint_rules.contain_config config in
  let cedges = Contain.prop_edges cconfig manifests in
  let cgraph = Contain.graph cconfig manifests cedges in
  let radii = Hashtbl.create 16 in
  List.iter
    (fun m ->
      Hashtbl.replace radii m.Manifest.name
        (Contain.radius_of cgraph m.Manifest.name))
    manifests;
  let contain =
    Contain.assemble cconfig manifests cedges
      (Hashtbl.fold (fun _ r acc -> r :: acc) radii [])
  in
  (* lint, seeding the ctx with our flow and contain results so the
     solver-backed rules share them *)
  let ctx = Lint_rules.make_ctx manifests in
  ctx.Lint_rules.flow_memo := [ (fconfig, flow) ];
  ctx.Lint_rules.contain_memo := [ (cconfig, contain) ];
  let lint_cache = Hashtbl.create 32 in
  List.iter
    (fun (r : Lint_rules.rule) ->
      let tbl = Hashtbl.create 32 in
      List.iter
        (fun m ->
          let ds = r.Lint_rules.check config ctx m in
          if ds <> [] then Hashtbl.replace tbl m.Manifest.name ds)
        manifests;
      Hashtbl.replace lint_cache r.Lint_rules.id tbl)
    Lint_rules.all;
  let diags = diags_of_cache lint_cache in
  (* kernel: exactly the declared authority, like Flow.provision, but
     total — dangling targets simply contribute no capability, and
     frames are best-effort (conformance is about capabilities) *)
  let n = List.length manifests in
  let pages = Option.value ~default:((2 * (n + 64)) + 8) dram_pages in
  let machine = Lt_hw.Machine.create ~dram_pages:pages () in
  let kernel = K.create machine (Lt_kernel.Sched.Round_robin { quantum = 500 }) in
  let tasks = Hashtbl.create 16 and eps = Hashtbl.create 16 in
  let badge = Hashtbl.create 16 in
  let recv_slot = Hashtbl.create 16 in
  let send_slot = Hashtbl.create 16 in
  List.iteri
    (fun i m ->
      let name = m.Manifest.name in
      let task = K.create_task kernel ~name ~partition:name in
      ignore (K.map_memory kernel task ~vpage:0 ~pages:1 Lt_hw.Mmu.rw);
      Hashtbl.replace tasks name task;
      let ep = K.create_endpoint kernel ~name:(name ^ ".ep") in
      Hashtbl.replace eps name ep;
      Hashtbl.replace recv_slot name
        (K.grant kernel task ep ~rights:{ K.send = false; recv = true } ~badge:0);
      Hashtbl.replace badge name (i + 1))
    manifests;
  List.iter
    (fun (caller, target) ->
      if Hashtbl.mem eps target then
        Hashtbl.replace send_slot (caller, target)
          (K.grant kernel (Hashtbl.find tasks caller) (Hashtbl.find eps target)
             ~rights:{ K.send = true; recv = false }
             ~badge:(Hashtbl.find badge caller)))
    (Flow.declared_pairs manifests);
  { config; fconfig; cconfig; manifests; ctx; flow; contain; diags; taint;
    secrecy; secret_paths; taint_paths; leaks_by; hits_by; lint_cache; radii;
    kernel; tasks; eps; badge; recv_slot; send_slot; next_badge = ref (n + 1) }

(* --- conformance -------------------------------------------------------------- *)

let conformance t = Flow.conformance ~config:t.fconfig t.manifests t.kernel
let conformance_clean t = Flow.conforms (conformance t)

(* --- the incremental kernel update -------------------------------------------- *)

let kernel_remove t name =
  (match Hashtbl.find_opt t.recv_slot name with
   | Some slot ->
     K.revoke t.kernel (Hashtbl.find t.tasks name) ~slot;
     Hashtbl.remove t.recv_slot name
   | None -> ());
  let mine =
    Hashtbl.fold
      (fun (c, tgt) slot acc ->
        if c = name || tgt = name then ((c, tgt), slot) :: acc else acc)
      t.send_slot []
  in
  List.iter
    (fun ((c, tgt), slot) ->
      K.revoke t.kernel (Hashtbl.find t.tasks c) ~slot;
      Hashtbl.remove t.send_slot (c, tgt))
    mine

let kernel_grant_send t caller target =
  if not (Hashtbl.mem t.send_slot (caller, target)) then
    Hashtbl.replace t.send_slot (caller, target)
      (K.grant t.kernel
         (Hashtbl.find t.tasks caller)
         (Hashtbl.find t.eps target)
         ~rights:{ K.send = true; recv = false }
         ~badge:(Hashtbl.find t.badge caller))

let kernel_revoke_send t caller target =
  match Hashtbl.find_opt t.send_slot (caller, target) with
  | Some slot ->
    K.revoke t.kernel (Hashtbl.find t.tasks caller) ~slot;
    Hashtbl.remove t.send_slot (caller, target)
  | None -> ()

(* the out-pairs the kernel should hold for [m] against the current fleet *)
let desired_out find m =
  List.filter_map
    (fun c ->
      if c.Manifest.target <> m.Manifest.name && find c.Manifest.target <> None
      then Some c.Manifest.target
      else None)
    m.Manifest.connects_to
  |> List.sort_uniq String.compare

let kernel_add t ctx find m =
  let name = m.Manifest.name in
  (* tasks and endpoints are recycled on re-admission *)
  if not (Hashtbl.mem t.tasks name) then begin
    let task = K.create_task t.kernel ~name ~partition:name in
    ignore (K.map_memory t.kernel task ~vpage:0 ~pages:1 Lt_hw.Mmu.rw);
    Hashtbl.replace t.tasks name task;
    Hashtbl.replace t.eps name (K.create_endpoint t.kernel ~name:(name ^ ".ep"))
  end;
  if not (Hashtbl.mem t.badge name) then begin
    Hashtbl.replace t.badge name !(t.next_badge);
    incr t.next_badge
  end;
  if not (Hashtbl.mem t.recv_slot name) then
    Hashtbl.replace t.recv_slot name
      (K.grant t.kernel (Hashtbl.find t.tasks name) (Hashtbl.find t.eps name)
         ~rights:{ K.send = false; recv = true } ~badge:0);
  List.iter (fun tgt -> kernel_grant_send t name tgt) (desired_out find m);
  (* channels into the newcomer become grantable *)
  List.iter
    (fun (caller, _, _) ->
      let c = caller.Manifest.name in
      if c <> name then kernel_grant_send t c name)
    (Lint_rules.inbound ctx name)

let kernel_update t find m =
  let name = m.Manifest.name in
  let held =
    Hashtbl.fold
      (fun (c, tgt) _ acc -> if c = name then tgt :: acc else acc)
      t.send_slot []
  in
  let want = desired_out find m in
  List.iter
    (fun tgt -> if not (List.mem tgt want) then kernel_revoke_send t name tgt)
    held;
  List.iter
    (fun tgt -> if not (List.mem tgt held) then kernel_grant_send t name tgt)
    want

(* --- apply -------------------------------------------------------------------- *)

let apply d t =
  let old_manifests = t.manifests in
  let new_manifests = Delta.apply d old_manifests in
  if new_manifests = old_manifests then (t, t.diags)
  else begin
    let cfg = t.config and fconfig = t.fconfig in
    let old_ctx = t.ctx in
    let ctx = Lint_rules.make_ctx new_manifests in
    let old_find n = Lint_rules.find old_ctx n in
    let find n = Lint_rules.find ctx n in
    (* the delta's footprint: components whose definition changed *)
    let changed = Hashtbl.create 4 in
    List.iter
      (fun m ->
        match old_find m.Manifest.name with
        | Some om when om = m -> ()
        | _ -> Hashtbl.replace changed m.Manifest.name ())
      new_manifests;
    List.iter
      (fun m ->
        if find m.Manifest.name = None then
          Hashtbl.replace changed m.Manifest.name ())
      old_manifests;
    let removed =
      List.filter_map
        (fun m ->
          if find m.Manifest.name = None then Some m.Manifest.name else None)
        old_manifests
    in
    (* --- flow: restricted re-solve on the affected frontier ----------------- *)
    let old_edges = t.flow.Flow.edges in
    let edges = Flow.flow_edges new_manifests in
    let rec ediff olds news added dropped =
      match (olds, news) with
      | [], [] -> (added, dropped)
      | o :: os, [] -> ediff os [] added (o :: dropped)
      | [], n :: ns -> ediff [] ns (n :: added) dropped
      | o :: os, n :: ns ->
        let c = Stdlib.compare o n in
        if c = 0 then ediff os ns added dropped
        else if c < 0 then ediff os news added (o :: dropped)
        else ediff olds ns (n :: added) dropped
    in
    let edges_added, edges_removed = ediff old_edges edges [] [] in
    let edge_delta = edges_added @ edges_removed in
    let request_delta = List.filter (fun e -> not e.Flow.e_reply) edge_delta in
    let request_edges = List.filter (fun e -> not e.Flow.e_reply) edges in
    let old_request = List.filter (fun e -> not e.Flow.e_reply) old_edges in
    let taint_adj = Flow.adjacency request_edges in
    let taint_radj = Flow.adjacency (List.map flip request_edges) in
    let secret_adj = Flow.adjacency edges in
    let secret_radj = Flow.adjacency (List.map flip edges) in
    let old_taint_radj = Flow.adjacency (List.map flip old_request) in
    let old_secret_radj = Flow.adjacency (List.map flip old_edges) in
    let holds_secret m =
      List.mem m.Manifest.substrate fconfig.Flow.secret_substrates
    in
    let tbase n =
      match find n with Some m -> Flow.tainted_base m | None -> false
    in
    let old_tbase n =
      match old_find n with Some m -> Flow.tainted_base m | None -> false
    in
    let hbase n = match find n with Some m -> holds_secret m | None -> false in
    let old_hbase n =
      match old_find n with Some m -> holds_secret m | None -> false
    in
    List.iter
      (fun n ->
        Hashtbl.remove t.taint n;
        Hashtbl.remove t.secrecy n)
      removed;
    let s0_of base_changed delta =
      let s = Hashtbl.create 8 in
      Hashtbl.iter
        (fun n () ->
          if find n <> None && (old_find n = None || base_changed n) then
            Hashtbl.replace s n ())
        changed;
      List.iter
        (fun e ->
          if find e.Flow.e_dst <> None then Hashtbl.replace s e.Flow.e_dst ())
        delta;
      s
    in
    let s0_taint = s0_of (fun n -> old_tbase n <> tbase n) request_delta in
    let s0_secret = s0_of (fun n -> old_hbase n <> hbase n) edge_delta in
    let suspects_taint = closure taint_adj s0_taint in
    let suspects_secret = closure secret_adj s0_secret in
    let label_changed = Hashtbl.create 8 in
    let solve_and_track tbl suspects adj radj base =
      let old_vals = Hashtbl.create 16 in
      Hashtbl.iter
        (fun n () ->
          Hashtbl.replace old_vals n
            (Option.value ~default:Flow_lattice.public (Hashtbl.find_opt tbl n)))
        suspects;
      re_solve tbl ~suspects ~adj ~radj ~base;
      Hashtbl.iter
        (fun n ov ->
          let nv =
            Option.value ~default:Flow_lattice.public (Hashtbl.find_opt tbl n)
          in
          if not (Flow_lattice.equal ov nv) then
            Hashtbl.replace label_changed n ())
        old_vals
    in
    solve_and_track t.taint suspects_taint taint_adj taint_radj (fun n ->
        if tbase n then Flow_lattice.tainted else Flow_lattice.public);
    solve_and_track t.secrecy suspects_secret secret_adj secret_radj (fun n ->
        if hbase n then Flow_lattice.secret n else Flow_lattice.public);
    (* --- witnesses: re-search only holders/sources the delta can reach ------ *)
    let holders =
      List.filter holds_secret new_manifests
      |> List.map (fun m -> m.Manifest.name)
      |> List.sort String.compare
    in
    let sources =
      List.filter Flow.tainted_base new_manifests
      |> List.map (fun m -> m.Manifest.name)
      |> List.sort String.compare
    in
    (* a cached BFS tree is stale iff its root reaches (in the old or
       the new graph) a node whose adjacency the delta touched *)
    let structure_dirty old_radj radj delta =
      let imp = Hashtbl.create 8 in
      List.iter
        (fun e ->
          Hashtbl.replace imp e.Flow.e_src ();
          Hashtbl.replace imp e.Flow.e_dst ())
        delta;
      let r1 = closure old_radj imp in
      let r2 = closure radj imp in
      fun n -> Hashtbl.mem r1 n || Hashtbl.mem r2 n
    in
    let secret_dirty = structure_dirty old_secret_radj secret_radj edge_delta in
    let taint_dirty =
      structure_dirty old_taint_radj taint_radj request_delta
    in
    let sink_changed =
      Hashtbl.fold
        (fun n () acc -> if old_tbase n <> tbase n then n :: acc else acc)
        changed []
    in
    let holder_flip =
      Hashtbl.fold
        (fun n () acc -> if old_hbase n <> hbase n then n :: acc else acc)
        changed []
    in
    let leaks_changed = Hashtbl.create 4 and hits_changed = Hashtbl.create 4 in
    Hashtbl.fold (fun h _ acc -> h :: acc) t.leaks_by []
    |> List.iter (fun h ->
           if not (hbase h) then begin
             Hashtbl.remove t.leaks_by h;
             Hashtbl.remove t.secret_paths h
           end);
    List.iter
      (fun h ->
        if (not (Hashtbl.mem t.secret_paths h)) || secret_dirty h then begin
          let pf = Flow.bfs_paths secret_adj h in
          Hashtbl.replace t.secret_paths h pf;
          let nl = leaks_for new_manifests h pf in
          if Hashtbl.find_opt t.leaks_by h <> Some nl then begin
            Hashtbl.replace t.leaks_by h nl;
            Hashtbl.replace leaks_changed h ()
          end
        end
        else if sink_changed <> [] then begin
          let pf = Hashtbl.find t.secret_paths h in
          let cur = Hashtbl.find t.leaks_by h in
          let kept =
            List.filter
              (fun l -> not (List.mem l.Flow.l_sink sink_changed))
              cur
          in
          let adds =
            List.filter_map
              (fun n ->
                if n = h || not (tbase n) then None
                else
                  match pf n with
                  | Some path ->
                    Some { Flow.l_secret = h; l_sink = n; l_path = path }
                  | None -> None)
              sink_changed
          in
          let nl = List.sort Stdlib.compare (adds @ kept) in
          if nl <> cur then begin
            Hashtbl.replace t.leaks_by h nl;
            Hashtbl.replace leaks_changed h ()
          end
        end)
      holders;
    Hashtbl.fold (fun s _ acc -> s :: acc) t.hits_by []
    |> List.iter (fun src ->
           if not (tbase src) then begin
             Hashtbl.remove t.hits_by src;
             Hashtbl.remove t.taint_paths src
           end);
    List.iter
      (fun src ->
        if (not (Hashtbl.mem t.taint_paths src)) || taint_dirty src then begin
          let pf = Flow.bfs_paths taint_adj src in
          Hashtbl.replace t.taint_paths src pf;
          let nh = hits_for holders src pf in
          if Hashtbl.find_opt t.hits_by src <> Some nh then begin
            Hashtbl.replace t.hits_by src nh;
            Hashtbl.replace hits_changed src ()
          end
        end
        else if holder_flip <> [] then begin
          let pf = Hashtbl.find t.taint_paths src in
          let cur = Hashtbl.find t.hits_by src in
          let kept =
            List.filter (fun h -> not (List.mem h.Flow.t_sink holder_flip)) cur
          in
          let adds =
            List.filter_map
              (fun n ->
                if n = src || not (hbase n) then None
                else
                  match pf n with
                  | Some path ->
                    Some
                      { Flow.t_source = src; t_sink = n; t_path = path;
                        t_direct = List.length path = 2 }
                  | None -> None)
              holder_flip
          in
          let nh = List.sort Stdlib.compare (adds @ kept) in
          if nh <> cur then begin
            Hashtbl.replace t.hits_by src nh;
            Hashtbl.replace hits_changed src ()
          end
        end)
      sources;
    let nodes = List.map (fun m -> m.Manifest.name) new_manifests in
    let flow =
      assemble_flow ~taint:t.taint ~secrecy:t.secrecy ~leaks_by:t.leaks_by
        ~hits_by:t.hits_by ~edges nodes
    in
    ctx.Lint_rules.flow_memo := [ (fconfig, flow) ];
    let changed_list = Hashtbl.fold (fun n () acc -> n :: acc) changed [] in
    (* --- contain: re-derive only the dirty roots ----------------------------- *)
    let old_cedges = t.contain.Contain.edges in
    let cedges = Contain.prop_edges t.cconfig new_manifests in
    let ctouched =
      List.filter
        (fun n ->
          match (old_find n, find n) with
          | Some a, Some b -> contain_inputs a <> contain_inputs b
          | _ -> true (* added or removed *))
        changed_list
    in
    let cdirty =
      Contain.dirty_roots ~old_edges:old_cedges ~new_edges:cedges
        ~touched:ctouched
    in
    let cgraph = Contain.graph t.cconfig new_manifests cedges in
    List.iter (fun n -> Hashtbl.remove t.radii n) removed;
    let radius_changed = ref [] in
    List.iter
      (fun n ->
        match find n with
        | None -> Hashtbl.remove t.radii n
        | Some _ ->
          let r = Contain.radius_of cgraph n in
          (match Hashtbl.find_opt t.radii n with
           | Some old when old = r -> ()
           | _ -> radius_changed := n :: !radius_changed);
          Hashtbl.replace t.radii n r)
      cdirty;
    let contain =
      Contain.assemble t.cconfig new_manifests cedges
        (Hashtbl.fold (fun _ r acc -> r :: acc) t.radii [])
    in
    ctx.Lint_rules.contain_memo := [ (t.cconfig, contain) ];
    (* --- lint: per-scope dirty seeds ---------------------------------------- *)
    let in_callers_of n =
      List.map
        (fun (caller, _, _) -> caller.Manifest.name)
        (Lint_rules.inbound ctx n)
    in
    let neighborhood_dirty =
      List.concat_map
        (fun n ->
          let targets_of = function
            | None -> []
            | Some m ->
              List.map (fun c -> c.Manifest.target) m.Manifest.connects_to
          in
          let doms =
            (match old_find n with Some m -> [ m.Manifest.domain ] | None -> [])
            @ (match find n with Some m -> [ m.Manifest.domain ] | None -> [])
          in
          let dom_members =
            List.concat_map
              (fun d ->
                Option.value ~default:[]
                  (Hashtbl.find_opt old_ctx.Lint_rules.domain_dedup d)
                @ Option.value ~default:[]
                    (Hashtbl.find_opt ctx.Lint_rules.domain_dedup d))
              doms
          in
          (n :: targets_of (old_find n))
          @ targets_of (find n)
          @ in_callers_of n @ dom_members)
        changed_list
    in
    (* L007: seeds that can reach a changed component along unvetted
       channels, pruned to those that (old or new) reach a legacy-OS
       component at all — the only seeds whose verdict can be nonempty *)
    let unvetted_radj ms =
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun m ->
          List.iter
            (fun c ->
              if not c.Manifest.vetted then
                Hashtbl.replace tbl c.Manifest.target
                  (m.Manifest.name
                  :: Option.value ~default:[]
                       (Hashtbl.find_opt tbl c.Manifest.target)))
            m.Manifest.connects_to)
        ms;
      fun n -> Option.value ~default:[] (Hashtbl.find_opt tbl n)
    in
    let legacy_of ms =
      List.filter_map
        (fun m ->
          if m.Manifest.substrate = "monolithic-os" then Some m.Manifest.name
          else None)
        ms
    in
    let rev_old = unvetted_radj old_manifests in
    let rev_new = unvetted_radj new_manifests in
    let legacy_reach_old = closure rev_old (set_of_list (legacy_of old_manifests)) in
    let legacy_reach_new = closure rev_new (set_of_list (legacy_of new_manifests)) in
    let changed_reach_old = closure rev_old changed in
    let changed_reach_new = closure rev_new changed in
    let l007_dirty =
      changed_list
      @ List.filter
          (fun n ->
            (Hashtbl.mem changed_reach_old n || Hashtbl.mem changed_reach_new n)
            && (Hashtbl.mem legacy_reach_old n || Hashtbl.mem legacy_reach_new n))
          nodes
    in
    (* L009: any new or destroyed cycle passes through a changed node's
       channels, so only then does the whole-graph scan re-run *)
    let full_adj ms =
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun m ->
          Hashtbl.replace tbl m.Manifest.name
            (List.map (fun c -> c.Manifest.target) m.Manifest.connects_to))
        ms;
      fun n -> Option.value ~default:[] (Hashtbl.find_opt tbl n)
    in
    let topology_changed =
      List.exists
        (fun n ->
          let targets = function
            | None -> []
            | Some m ->
              List.map (fun c -> c.Manifest.target) m.Manifest.connects_to
              |> List.sort_uniq String.compare
          in
          targets (old_find n) <> targets (find n))
        changed_list
    in
    let l009_dirty =
      if not topology_changed then []
      else begin
        let on_cycle adj n = Hashtbl.mem (closure adj (set_of_list (adj n))) n in
        let oadj = full_adj old_manifests and nadj = full_adj new_manifests in
        if
          List.exists
            (fun n ->
              (old_find n <> None && on_cycle oadj n)
              || (find n <> None && on_cycle nadj n))
            changed_list
        then nodes
        else []
      end
    in
    let witness_sinks_touching tbl sink_of =
      Hashtbl.fold
        (fun seed entries acc ->
          if List.exists (fun e -> Hashtbl.mem changed (sink_of e)) entries then
            seed :: acc
          else acc)
        tbl []
    in
    let l006_dirty =
      changed_list
      @ Hashtbl.fold (fun s () acc -> s :: acc) hits_changed []
      @ witness_sinks_touching t.hits_by (fun h -> h.Flow.t_sink)
    in
    let l014_dirty =
      changed_list
      @ Hashtbl.fold (fun h () acc -> h :: acc) leaks_changed []
      @ witness_sinks_touching t.leaks_by (fun l -> l.Flow.l_sink)
    in
    (* L020/L021 read only the seed's own radius (plus, for L021, the
       fleet size); L022 reads the storm edges at the seed *)
    let contain_dirty =
      if List.length old_manifests <> List.length new_manifests then nodes
      else changed_list @ !radius_changed
    in
    let l022_dirty =
      let storms es =
        List.filter (fun e -> e.Contain.p_kind = Contain.Restart_storm) es
      in
      let acc = ref changed_list in
      let note (e : Contain.edge) =
        acc := e.Contain.p_src :: e.Contain.p_dst :: !acc
      in
      (* both lists sorted: linear symmetric difference *)
      let rec sdiff olds news =
        match (olds, news) with
        | [], [] -> ()
        | o :: os, [] -> note o; sdiff os []
        | [], n :: ns -> note n; sdiff [] ns
        | o :: os, n :: ns ->
          let c = Stdlib.compare o n in
          if c = 0 then sdiff os ns
          else if c < 0 then begin note o; sdiff os news end
          else begin note n; sdiff olds ns end
      in
      sdiff (storms old_cedges) (storms cedges);
      !acc
    in
    let l015_dirty =
      let base =
        changed_list @ Hashtbl.fold (fun n () acc -> n :: acc) label_changed []
      in
      base @ List.concat_map in_callers_of base
    in
    List.iter
      (fun n -> Hashtbl.iter (fun _ tbl -> Hashtbl.remove tbl n) t.lint_cache)
      removed;
    List.iter
      (fun (r : Lint_rules.rule) ->
        let dirty =
          match r.Lint_rules.scope with
          | Lint_rules.Component -> changed_list
          | Lint_rules.Neighborhood -> neighborhood_dirty
          | Lint_rules.Graph ->
            (match r.Lint_rules.id with
             | "L006-taint-flow" | "L016-transitive-taint-into-enclave" ->
               l006_dirty
             | "L014-label-leak" -> l014_dirty
             | "L007-legacy-tcb" -> l007_dirty
             | "L009-channel-cycle" -> l009_dirty
             | "L015-dead-declassifier" -> l015_dirty
             | "L020-unbounded-blast-radius" | "L021-single-point-of-failure" ->
               contain_dirty
             | "L022-restart-storm-cycle" -> l022_dirty
             | _ -> nodes (* unknown graph rule: re-run everything *))
        in
        let tbl = Hashtbl.find t.lint_cache r.Lint_rules.id in
        List.iter
          (fun n ->
            match find n with
            | None -> Hashtbl.remove tbl n
            | Some m ->
              let ds = r.Lint_rules.check cfg ctx m in
              if ds = [] then Hashtbl.remove tbl n
              else Hashtbl.replace tbl n ds)
          (List.sort_uniq String.compare dirty))
      Lint_rules.all;
    let diags = diags_of_cache t.lint_cache in
    (* --- kernel: re-derive caps for the touched pairs only ------------------- *)
    Hashtbl.iter
      (fun n () ->
        match (old_find n, find n) with
        | Some _, None -> kernel_remove t n
        | None, Some m -> kernel_add t ctx find m
        | Some _, Some m -> kernel_update t find m
        | None, None -> ())
      changed;
    let t' = { t with manifests = new_manifests; ctx; flow; contain; diags } in
    (t', diags)
  end

(* --- the batch oracle ---------------------------------------------------------- *)

let divergence t =
  let batch_diags = Lint.run ~config:t.config t.manifests in
  let batch_flow = Flow.analyze ~config:t.fconfig t.manifests in
  let batch_contain = Contain.analyze ~config:t.cconfig t.manifests in
  if t.diags <> batch_diags then
    Some "diagnostics diverge from a from-scratch Lint.run"
  else if
    Lint.render_text ~file:"fleet" t.diags
    <> Lint.render_text ~file:"fleet" batch_diags
  then Some "lint rendering diverges from a from-scratch Lint.run"
  else if t.flow <> batch_flow then
    Some "flow result diverges from a from-scratch Flow.analyze"
  else if
    Flow.render_text ~file:"fleet" t.flow
    <> Flow.render_text ~file:"fleet" batch_flow
  then Some "flow rendering diverges from a from-scratch Flow.analyze"
  else if t.contain <> batch_contain then
    Some "contain result diverges from a from-scratch Contain.analyze"
  else if
    Contain.render_text ~file:"fleet" t.contain
    <> Contain.render_text ~file:"fleet" batch_contain
  then Some "contain rendering diverges from a from-scratch Contain.analyze"
  else if not (conformance_clean t) then
    Some "kernel capability state does not conform to the fleet"
  else None

let full_equiv t = divergence t = None

(* --- per-trust-domain slice ---------------------------------------------------- *)

let domain_slice t tenant =
  let path = Flow.trust_paths t.manifests in
  let mine n = match path n with [] -> false | x :: _ -> x = tenant in
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "tenant %s\n" tenant;
  add "lint:\n";
  List.iter
    (fun d ->
      if mine d.Diagnostic.component then add "  %s\n" (Diagnostic.to_text d))
    t.diags;
  add "flow labels:\n";
  List.iter
    (fun (n, l) -> if mine n then add "  %s: %s\n" n (Flow_lattice.to_string l))
    t.flow.Flow.labels;
  add "leaks:\n";
  List.iter
    (fun l ->
      if mine l.Flow.l_secret then
        add "  %s -> %s via %s\n" l.Flow.l_secret l.Flow.l_sink
          (String.concat " -> " l.Flow.l_path))
    t.flow.Flow.leaks;
  add "taint hits:\n";
  List.iter
    (fun h ->
      if mine h.Flow.t_source then
        add "  %s -> %s via %s\n" h.Flow.t_source h.Flow.t_sink
          (String.concat " -> " h.Flow.t_path))
    t.flow.Flow.taint_hits;
  add "contain:\n";
  List.iter
    (fun rad ->
      if mine rad.Contain.r_root then
        add "  %s [%s] %s%s\n" rad.Contain.r_root
          (Contain.impact_to_string rad.Contain.r_self)
          (String.concat ", "
             (List.filter_map
                (fun (n, i) ->
                  if n = rad.Contain.r_root then None
                  else Some (n ^ " " ^ Contain.impact_to_string i))
                rad.Contain.r_hit))
          (match rad.Contain.r_escape with
           | None -> ""
           | Some x -> Printf.sprintf " ESCAPES via %s" x.Contain.x_victim))
    t.contain.Contain.radii;
  Buffer.contents buf
