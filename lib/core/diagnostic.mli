(** Structured lint diagnostics.

    Every finding of the {!Lint} engine is one of these: a stable rule
    id, a severity CI can gate on, the component (and optionally
    service) it anchors to, a human message and a fix hint. Rendering to
    text and JSON lives here so every consumer (CLI, golden tests,
    future batch runners) formats identically. *)

type severity = Error | Warning | Info

(** Source position of the finding: the manifest file and the line of
    the [component] directive the diagnostic anchors to. *)
type location = { file : string; line : int }

type t = {
  rule_id : string;     (** stable, e.g. ["L005-confused-deputy"] *)
  severity : severity;
  component : string;   (** the component the finding anchors to *)
  service : string option;
  message : string;
  fix_hint : string;
  loc : location option;
}

val v :
  rule_id:string -> severity:severity -> component:string ->
  ?service:string -> ?loc:location -> message:string -> fix_hint:string ->
  unit -> t

(** [with_loc loc t] — attach a source position after the fact; rules
    stay position-free and the engine localises. *)
val with_loc : location -> t -> t

(** [Error] < [Warning] < [Info]; 0, 1, 2. *)
val severity_rank : severity -> int

val severity_to_string : severity -> string

(** Worst severity first, then rule id, component, service, message,
    location — total and deterministic, so reports are diffable. *)
val compare : t -> t -> int

(** ["component.service"], or just ["component"] when no service. *)
val subject : t -> string

(** Two-line human rendering: finding (prefixed [file:line:] when
    located), then indented fix hint. *)
val to_text : t -> string

(** One JSON object; [service] and [location] become [null] when
    absent. *)
val to_json : t -> string

(** JSON string literal with escaping — exposed for composite emitters. *)
val json_string : string -> string

val pp : Format.formatter -> t -> unit
