(* Static blast-radius analysis: a per-root fixpoint over propagation
   edges derived from the manifest. See contain.mli for the model and
   docs/CONTAIN.md for the edge table (diffed against [edge_kinds] by
   the @lintdocs gate). Everything here is pure, total and
   deterministic: lists are sorted, hash tables are never iterated
   directly into results. *)

type impact = Degraded | Restarted | Failed

let rank = function Degraded -> 1 | Restarted -> 2 | Failed -> 3

let impact_to_string = function
  | Degraded -> "degraded"
  | Restarted -> "restarted"
  | Failed -> "failed"

let impact_of_string = function
  | "degraded" -> Some Degraded
  | "restarted" -> Some Restarted
  | "failed" -> Some Failed
  | _ -> None

type config = { supervised : bool; spof_fraction : float }

let default_config = { supervised = true; spof_fraction = 0.5 }

(* --- substrate taxonomy ----------------------------------------------------
   Shared with the linter (Lint_rules re-exports these).
   name, sealed identity (can attest / hold sealed secrets), notional
   TCB loc. *)

let known_substrates =
  [ ("microkernel", false, 12_000);
    ("monolithic-os", false, 30_000);
    ("sgx", true, 25_000);
    ("trustzone", true, 19_000);
    ("sep", true, 13_000);
    ("flicker", true, 8_000);
    ("m3-noc", true, 8_000);
    ("cheri", false, 5_500) ]

let substrate_known s = List.exists (fun (n, _, _) -> n = s) known_substrates

(* substrates whose components die when the host side does: the enclave
   host process (sgx), an OS-scheduled task (microkernel,
   monolithic-os), or an in-address-space compartment (cheri). The
   dedicated-hardware substrates (sep, trustzone, flicker, m3-noc) run
   to completion per session and are excluded. *)
let crashable_substrates = [ "sgx"; "microkernel"; "monolithic-os"; "cheri" ]

let substrate_crashable s = List.mem s crashable_substrates

let substrate_sealed_identity s =
  List.exists (fun (n, sealed, _) -> n = s && sealed) known_substrates

let default_tcb_of_substrate s =
  match List.find_opt (fun (n, _, _) -> n = s) known_substrates with
  | Some (_, _, loc) -> loc
  | None -> 12_000

(* substrates that serve one session at a time (flicker's DRTM): a
   crashed cohabitant stalls the slice for everyone on it *)
let exclusive_substrates = [ "flicker" ]

(* --- fleet placement --------------------------------------------------
   Placement-selector semantics live here with the rest of the
   substrate taxonomy; Manifest.placement_selector_kinds carries the
   user-facing grammar table. *)

let placement_classes =
  [ ("tee", substrate_sealed_identity);
    ("commodity", fun s -> substrate_known s && not (substrate_sealed_identity s)) ]

let cut_prefix ~prefix s =
  let pl = String.length prefix in
  if String.length s > pl && String.sub s 0 pl = prefix then
    Some (String.sub s pl (String.length s - pl))
  else None

let placement_selector_invalid sel =
  match cut_prefix ~prefix:"host:" sel with
  | Some _ -> None
  | None ->
    (match cut_prefix ~prefix:"class:" sel with
     | Some c ->
       if List.mem_assoc c placement_classes then None
       else
         Some
           (Printf.sprintf "unknown substrate class %S (tee | commodity)" c)
     | None ->
       if sel = "host:" || sel = "class:" then
         Some (Printf.sprintf "selector %S names nothing" sel)
       else if substrate_known sel then None
       else Some (Printf.sprintf "unknown substrate %S" sel))

let host_matches_selector (h : Manifest.host) sel =
  match cut_prefix ~prefix:"host:" sel with
  | Some name -> h.Manifest.h_name = name
  | None ->
    (match cut_prefix ~prefix:"class:" sel with
     | Some c ->
       (match List.assoc_opt c placement_classes with
        | Some pred -> List.exists pred h.Manifest.h_substrates
        | None -> false)
     | None -> List.mem sel h.Manifest.h_substrates)

let host_can_host (h : Manifest.host) (m : Manifest.t) =
  List.mem m.Manifest.substrate h.Manifest.h_substrates
  && (m.Manifest.placement = []
      || List.exists (host_matches_selector h) m.Manifest.placement)

(* --- propagation edges ------------------------------------------------------ *)

type kind =
  | Channel_bounded
  | Channel_blocked
  | Domain_cofate
  | Substrate_exclusive
  | State_loss
  | Restart_storm

let kind_to_string = function
  | Channel_bounded -> "channel-bounded"
  | Channel_blocked -> "channel-blocked"
  | Domain_cofate -> "domain-cofate"
  | Substrate_exclusive -> "substrate-exclusive"
  | State_loss -> "state-loss"
  | Restart_storm -> "restart-storm"

let edge_kinds =
  [ ("channel-bounded",
     "dst declares a channel (vetted or not) to src, calls supervised: \
      any impact degrades dst");
    ("channel-blocked",
     "same channel, unsupervised calls: failed src fails the blocked \
      dst, anything else degrades it");
    ("domain-cofate",
     "src and dst share a protection domain: src down takes the domain \
      with it, dst suffers its own crash impact");
    ("substrate-exclusive",
     "src and dst cohabit an exclusive-session substrate (flicker): \
      src down stalls the slice, dst degrades");
    ("state-loss",
     "dst depends unvetted on stateful src that never effectively \
      restarts, on a substrate that neither seals identity nor \
      survives crashes: the state is destroyed and dst stays degraded");
    ("restart-storm",
     "src and dst on a channel cycle inside one domain, both \
      auto-restarting: mutual respawns exhaust the budgets, both fail") ]

type edge = { p_src : string; p_dst : string; p_kind : kind }

(* first manifest wins on duplicate names, matching Lint_rules.make_ctx *)
let dedupe manifests =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun m ->
      if Hashtbl.mem seen m.Manifest.name then false
      else begin
        Hashtbl.replace seen m.Manifest.name ();
        true
      end)
    manifests

let crash_impact m =
  match m.Manifest.restart with
  | Some r
    when (r.Manifest.r_policy = Manifest.On_failure
          || r.Manifest.r_policy = Manifest.Always)
         && r.Manifest.r_max >= 1 -> Restarted
  | _ -> Failed

let auto_restarts m = crash_impact m = Restarted

(* ordered pairs of a sorted member list *)
let ordered_pairs kind members =
  List.concat_map
    (fun x ->
      List.filter_map
        (fun y -> if x = y then None else Some { p_src = x; p_dst = y; p_kind = kind })
        members)
    members

(* the channel subgraph among [members], as a successor function on the
   *call* direction (u -> v when u connects to v) *)
let call_succ index members =
  let inside = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace inside n ()) members;
  fun u ->
    match Hashtbl.find_opt index u with
    | None -> []
    | Some m ->
      List.sort_uniq String.compare
        (List.filter_map
           (fun c ->
             let t = c.Manifest.target in
             if t <> u && Hashtbl.mem inside t then Some t else None)
           m.Manifest.connects_to)

let reachable succ from target =
  let seen = Hashtbl.create 8 in
  let rec go u =
    if Hashtbl.mem seen u then false
    else begin
      Hashtbl.replace seen u ();
      u = target || List.exists go (succ u)
    end
  in
  List.exists go (succ from)

(* per-domain restart-storm groups: channel SCCs of size >= 2 among the
   auto-restarting members of one protection domain. Domains are small,
   so pairwise reachability is fine. *)
let storm_groups index domain_members =
  let members =
    List.filter
      (fun n ->
        match Hashtbl.find_opt index n with
        | Some m -> auto_restarts m
        | None -> false)
      domain_members
  in
  if List.length members < 2 then []
  else begin
    let succ = call_succ index members in
    let in_scc = Hashtbl.create 8 in
    List.iter
      (fun u ->
        List.iter
          (fun v ->
            if u < v && reachable succ u v && reachable succ v u then begin
              Hashtbl.replace in_scc u ();
              Hashtbl.replace in_scc v ()
            end)
          members)
      members;
    (* partition the in-scc members into their components *)
    let scc_members =
      List.filter (fun n -> Hashtbl.mem in_scc n) members
    in
    let rec groups = function
      | [] -> []
      | u :: rest ->
        let mine, others =
          List.partition
            (fun v -> reachable succ u v && reachable succ v u)
            rest
        in
        (u :: mine) :: groups others
    in
    List.filter (fun g -> List.length g >= 2) (groups scc_members)
  end

let prop_edges cfg manifests =
  let manifests = dedupe manifests in
  let index = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace index m.Manifest.name m) manifests;
  let channel_kind = if cfg.supervised then Channel_bounded else Channel_blocked in
  let channel =
    List.concat_map
      (fun m ->
        let caller = m.Manifest.name in
        List.concat_map
          (fun c ->
            let t = c.Manifest.target in
            if t = caller || not (Hashtbl.mem index t) then []
            else begin
              let chan = { p_src = t; p_dst = caller; p_kind = channel_kind } in
              let state =
                match Hashtbl.find_opt index t with
                | Some tm
                  when (not c.Manifest.vetted)
                       && tm.Manifest.stateful
                       && substrate_crashable tm.Manifest.substrate
                       && (not (substrate_sealed_identity tm.Manifest.substrate))
                       && crash_impact tm = Failed ->
                  [ { p_src = t; p_dst = caller; p_kind = State_loss } ]
                | _ -> []
              in
              chan :: state
            end)
          m.Manifest.connects_to)
      manifests
  in
  let by_group key_of kind =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun m ->
        match key_of m with
        | None -> ()
        | Some k ->
          let old = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
          Hashtbl.replace tbl k (m.Manifest.name :: old))
      manifests;
    Hashtbl.fold
      (fun _ members acc ->
        if List.length members >= 2 then
          ordered_pairs kind (List.sort String.compare members) @ acc
        else acc)
      tbl []
  in
  let cofate = by_group (fun m -> Some m.Manifest.domain) Domain_cofate in
  let exclusive =
    by_group
      (fun m ->
        if List.mem m.Manifest.substrate exclusive_substrates then
          Some m.Manifest.substrate
        else None)
      Substrate_exclusive
  in
  let storms =
    let domains = Hashtbl.create 16 in
    List.iter
      (fun m ->
        let d = m.Manifest.domain in
        let old = Option.value ~default:[] (Hashtbl.find_opt domains d) in
        Hashtbl.replace domains d (m.Manifest.name :: old))
      manifests;
    Hashtbl.fold
      (fun _ members acc ->
        List.concat_map (ordered_pairs Restart_storm)
          (storm_groups index (List.sort String.compare members))
        @ acc)
      domains []
  in
  List.sort_uniq Stdlib.compare (channel @ cofate @ exclusive @ storms)

(* --- the per-root solver ---------------------------------------------------- *)

(* transfer k i self_dst: the impact edge kind [k] imposes on its dst
   when its src suffers [i], given the dst's own crash impact (the
   cofate parameter). Monotone in [i]. *)
let transfer k i self_dst =
  match k with
  | Channel_bounded -> Some Degraded
  | Channel_blocked -> Some (if i = Failed then Failed else Degraded)
  | Domain_cofate -> if rank i >= rank Restarted then Some self_dst else None
  | Substrate_exclusive -> if rank i >= rank Restarted then Some Degraded else None
  | State_loss -> if rank i >= rank Restarted then Some Degraded else None
  | Restart_storm -> if rank i >= rank Restarted then Some Failed else None

(* The fleet is interned into dense integer ids once per graph: the
   per-root fixpoint then runs over int arrays instead of string
   hashtables, which is what keeps a 1000-component batch analysis
   inside its bench budget (bench/contain_bench.ml). Successor arrays
   preserve the sorted (dst, kind) order of the edge list, so witness
   BFS discovery — and therefore every rendered report — is unchanged. *)
type graph = {
  g_id : (string, int) Hashtbl.t;
  g_name : string array;
  g_succ : (int * kind) array array;  (* edge-list order per source *)
  g_self : impact array;              (* crash_impact *)
  g_domain : string array;
  g_substrate : string array;
  g_scratch : int array;              (* per-root impact ranks; 0 = untouched *)
  g_queue : int Queue.t;
}

let graph _cfg manifests edges =
  let manifests = dedupe manifests in
  let n = List.length manifests in
  let g_id = Hashtbl.create ((2 * n) + 1) in
  let g_name = Array.make n "" in
  let g_self = Array.make n Failed in
  let g_domain = Array.make n "" in
  let g_substrate = Array.make n "" in
  List.iteri
    (fun i m ->
      Hashtbl.replace g_id m.Manifest.name i;
      g_name.(i) <- m.Manifest.name;
      g_self.(i) <- crash_impact m;
      g_domain.(i) <- m.Manifest.domain;
      g_substrate.(i) <- m.Manifest.substrate)
    manifests;
  let succs = Array.make (max n 1) [] in
  List.iter
    (fun e ->
      match (Hashtbl.find_opt g_id e.p_src, Hashtbl.find_opt g_id e.p_dst) with
      | Some s, Some d -> succs.(s) <- (d, e.p_kind) :: succs.(s)
      | _ -> () (* prop_edges never emits dangling endpoints *))
    (List.rev edges) (* prepend in reverse: edge-list order survives *);
  { g_id; g_name;
    g_succ = Array.map Array.of_list (Array.sub succs 0 n);
    g_self; g_domain; g_substrate;
    g_scratch = Array.make n 0;
    g_queue = Queue.create () }

let impact_of_rank = [| Degraded; Restarted; Failed |]  (* index = rank - 1 *)

type escape = {
  x_victim : string;
  x_impact : impact;
  x_outside : int;
  x_path : string list;
}

type radius = {
  r_root : string;
  r_self : impact;
  r_hit : (string * impact) list;
  r_escape : escape option;
}

(* worst-case impact of a crash of [root] on every component: a
   monotone worklist fixpoint; the lattice has height 3 so the solve is
   linear in the out-degree sum of the hit set. Fills [g_scratch] with
   impact ranks and returns the touched ids (root first, otherwise in
   first-discovery order); the caller resets the scratch afterwards. *)
let solve_impacts g root =
  let imp = g.g_scratch and queue = g.g_queue in
  let touched = ref [ root ] in
  imp.(root) <- rank g.g_self.(root);
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let iu = impact_of_rank.(imp.(u) - 1) in
    Array.iter
      (fun (v, k) ->
        match transfer k iu g.g_self.(v) with
        | None -> ()
        | Some iv ->
          let rv = rank iv in
          if rv > imp.(v) then begin
            if imp.(v) = 0 then touched := v :: !touched;
            imp.(v) <- rv;
            Queue.add v queue
          end)
      g.g_succ.(u)
  done;
  !touched

(* shortest witness path root -> victim over *tight* edges: an edge is
   tight when transferring the src's final impact reproduces the dst's
   final impact exactly. Every impacted node has a tight in-path from
   the root (induction over final-update order), and BFS with
   first-discovery parents over sorted successors is deterministic.
   Reads the final impacts from [g_scratch]. *)
let witness_path g root victim =
  let imp = g.g_scratch in
  let parent = Array.make (Array.length g.g_name) (-1) in
  parent.(root) <- root;
  let queue = Queue.create () in
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let iu = impact_of_rank.(imp.(u) - 1) in
    Array.iter
      (fun (v, k) ->
        if parent.(v) < 0 && imp.(v) > 0 then
          match transfer k iu g.g_self.(v) with
          | Some t when rank t = imp.(v) ->
            parent.(v) <- u;
            Queue.add v queue
          | _ -> ())
      g.g_succ.(u)
  done;
  if parent.(victim) < 0 then
    [ g.g_name.(root); g.g_name.(victim) ] (* unreachable: defensive *)
  else begin
    let rec build acc v =
      if v = root then g.g_name.(root) :: acc
      else build (g.g_name.(v) :: acc) parent.(v)
    in
    build [] victim
  end

let radius_of g root =
  match Hashtbl.find_opt g.g_id root with
  | None -> { r_root = root; r_self = Failed; r_hit = []; r_escape = None }
  | Some rid ->
    let self = g.g_self.(rid) in
    let imp = g.g_scratch in
    let touched = solve_impacts g rid in
    let hit_ids =
      List.sort
        (fun a b -> String.compare g.g_name.(a) g.g_name.(b))
        touched
    in
    let hit =
      List.map (fun i -> (g.g_name.(i), impact_of_rank.(imp.(i) - 1))) hit_ids
    in
    let dom = g.g_domain.(rid) in
    let outside =
      List.filter (fun i -> i <> rid && g.g_domain.(i) <> dom) hit_ids
    in
    let escape =
      if self = Failed && outside <> [] && substrate_crashable g.g_substrate.(rid)
      then begin
        let worst = List.fold_left (fun acc i -> max acc imp.(i)) 1 outside in
        let victim = List.find (fun i -> imp.(i) = worst) outside in
        Some
          { x_victim = g.g_name.(victim);
            x_impact = impact_of_rank.(imp.(victim) - 1);
            x_outside = List.length outside;
            x_path = witness_path g rid victim }
      end
      else None
    in
    List.iter (fun i -> imp.(i) <- 0) touched;
    { r_root = root; r_self = self; r_hit = hit; r_escape = escape }

type verdict = Contained | Uncontained of string list

type result = { radii : radius list; edges : edge list; verdict : verdict }

let assemble _cfg _manifests edges radii =
  let radii = List.sort (fun a b -> String.compare a.r_root b.r_root) radii in
  let escapes =
    List.filter_map
      (fun r -> if r.r_escape <> None then Some r.r_root else None)
      radii
  in
  { radii;
    edges;
    verdict = (if escapes = [] then Contained else Uncontained escapes) }

let analyze ?(config = default_config) manifests =
  let manifests = dedupe manifests in
  let edges = prop_edges config manifests in
  let g = graph config manifests edges in
  let radii = List.map (fun m -> radius_of g m.Manifest.name) manifests in
  assemble config manifests edges radii

(* --- incremental support ---------------------------------------------------- *)

let dirty_roots ~old_edges ~new_edges ~touched =
  (* a root's radius depends exactly on what it reaches, so a root is
     dirty iff it reaches a touched component in the old or the new
     propagation graph: backward closure over reversed edges *)
  let pred = Hashtbl.create 16 in
  let add_rev e =
    let old = Option.value ~default:[] (Hashtbl.find_opt pred e.p_dst) in
    if not (List.mem e.p_src old) then Hashtbl.replace pred e.p_dst (e.p_src :: old)
  in
  List.iter add_rev old_edges;
  List.iter add_rev new_edges;
  let seed = Hashtbl.create 16 in
  let note n = Hashtbl.replace seed n () in
  List.iter note touched;
  (* endpoints of edges present in only one of the two lists; both are
     sorted, so a linear merge finds the symmetric difference *)
  let rec diff olds news =
    match (olds, news) with
    | [], [] -> ()
    | o :: os, [] -> note o.p_src; note o.p_dst; diff os []
    | [], n :: ns -> note n.p_src; note n.p_dst; diff [] ns
    | o :: os, n :: ns ->
      let c = Stdlib.compare o n in
      if c = 0 then diff os ns
      else if c < 0 then begin note o.p_src; note o.p_dst; diff os news end
      else begin note n.p_src; note n.p_dst; diff olds ns end
  in
  diff old_edges new_edges;
  let dirty = Hashtbl.create 16 in
  let rec up n =
    if not (Hashtbl.mem dirty n) then begin
      Hashtbl.replace dirty n ();
      List.iter up (Option.value ~default:[] (Hashtbl.find_opt pred n))
    end
  in
  Hashtbl.iter (fun n () -> up n) seed;
  Hashtbl.fold (fun n () acc -> n :: acc) dirty []
  |> List.sort String.compare

(* --- reports ---------------------------------------------------------------- *)

let path_str p = String.concat " -> " p

let render_text ~file r =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%s: %d components, %d propagation edges\n" file (List.length r.radii)
    (List.length r.edges);
  add "blast radii (crash of -> victims):\n";
  List.iter
    (fun rad ->
      let victims = List.filter (fun (n, _) -> n <> rad.r_root) rad.r_hit in
      add "  %-16s [%s] %s\n" rad.r_root
        (impact_to_string rad.r_self)
        (match victims with
         | [] -> "no victims"
         | vs ->
           String.concat ", "
             (List.map (fun (n, i) -> n ^ " " ^ impact_to_string i) vs)))
    r.radii;
  (match r.verdict with
   | Contained -> add "verdict: contained (no unrecoverable crash escapes its domain)\n"
   | Uncontained roots ->
     add "verdict: UNCONTAINED (%d)\n" (List.length roots);
     List.iter
       (fun root ->
         match List.find_opt (fun rad -> rad.r_root = root) r.radii with
         | Some { r_escape = Some x; _ } ->
           add "  %s never heals and hits %d component(s) outside its domain, worst %s (%s): %s\n"
             root x.x_outside x.x_victim (impact_to_string x.x_impact)
             (path_str x.x_path)
         | _ -> ())
       roots);
  Buffer.contents buf

let render_json ~file r =
  let js = Diagnostic.json_string in
  let arr xs = "[" ^ String.concat "," xs ^ "]" in
  let radii =
    arr
      (List.map
         (fun rad ->
           let victims =
             List.filter (fun (n, _) -> n <> rad.r_root) rad.r_hit
           in
           let escape =
             match rad.r_escape with
             | None -> ""
             | Some x ->
               Printf.sprintf
                 ",\"escape\":{\"victim\":%s,\"impact\":%s,\"outside\":%d,\"path\":%s}"
                 (js x.x_victim)
                 (js (impact_to_string x.x_impact))
                 x.x_outside
                 (arr (List.map js x.x_path))
           in
           Printf.sprintf "{\"root\":%s,\"self\":%s,\"victims\":%s%s}"
             (js rad.r_root)
             (js (impact_to_string rad.r_self))
             (arr
                (List.map
                   (fun (n, i) ->
                     Printf.sprintf "{\"component\":%s,\"impact\":%s}" (js n)
                       (js (impact_to_string i)))
                   victims))
             escape)
         r.radii)
  in
  let edges =
    arr
      (List.map
         (fun e ->
           Printf.sprintf "{\"src\":%s,\"dst\":%s,\"kind\":%s}" (js e.p_src)
             (js e.p_dst)
             (js (kind_to_string e.p_kind)))
         r.edges)
  in
  Printf.sprintf "{\"file\":%s,\"verdict\":%s,\"radii\":%s,\"edges\":%s}" (js file)
    (js
       (match r.verdict with
        | Contained -> "contained"
        | Uncontained _ -> "uncontained"))
    radii edges

let to_dot manifests r =
  let manifests = dedupe manifests in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let escapes =
    match r.verdict with Contained -> [] | Uncontained roots -> roots
  in
  add "digraph contain {\n  rankdir=LR;\n  node [shape=box, style=filled];\n";
  List.iter
    (fun m ->
      let n = m.Manifest.name in
      let colour =
        match crash_impact m with
        | Failed -> "#f4b6b6"
        | Restarted -> "#f8d7a0"
        | Degraded -> "#e6e6e6"
      in
      let extra = if List.mem n escapes then ", peripheries=2" else "" in
      add "  \"%s\" [fillcolor=\"%s\", label=\"%s\\n%s\"%s];\n" n colour n
        (impact_to_string (crash_impact m))
        extra)
    manifests;
  List.iter
    (fun e ->
      let style =
        match e.p_kind with
        | Channel_bounded | Channel_blocked -> ""
        | Domain_cofate | Substrate_exclusive -> ", style=dashed"
        | State_loss -> ", style=dotted"
        | Restart_storm -> ", color=red"
      in
      add "  \"%s\" -> \"%s\" [label=\"%s\"%s];\n" e.p_src e.p_dst
        (kind_to_string e.p_kind)
        style)
    r.edges;
  add "}\n";
  Buffer.contents buf

(* --- per-trust-domain verdicts ----------------------------------------------

   A blast radius is attributed to the tenant of its root; the
   cross-tenant filter lists (root, victim) pairs whose trust-domain
   paths are disjoint — the one thing a multi-tenant fleet must keep
   empty (shared root-domain infrastructure is never disjoint from a
   tenant, so fate-sharing through it is reported, not hidden). *)

let trust_paths manifests =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun m ->
      if not (Hashtbl.mem tbl m.Manifest.name) then
        Hashtbl.add tbl m.Manifest.name m.Manifest.trust_domain)
    manifests;
  fun n -> Option.value ~default:[] (Hashtbl.find_opt tbl n)

let cross_tenant_radius manifests r =
  let path = trust_paths manifests in
  List.concat_map
    (fun rad ->
      List.filter_map
        (fun (victim, impact) ->
          if
            victim <> rad.r_root
            && Manifest.trust_domains_disjoint (path rad.r_root) (path victim)
          then Some (rad.r_root, victim, impact)
          else None)
        rad.r_hit)
    r.radii

let tenant_verdicts manifests r =
  let path = trust_paths manifests in
  let tenant n = match path n with [] -> None | t :: _ -> Some t in
  let ts =
    List.filter_map Manifest.tenant_of manifests
    |> List.sort_uniq String.compare
  in
  List.map
    (fun t ->
      let escapes =
        List.filter_map
          (fun rad ->
            if tenant rad.r_root = Some t && rad.r_escape <> None then
              Some rad.r_root
            else None)
          r.radii
      in
      (t, if escapes = [] then Contained else Uncontained escapes))
    ts

let render_domain_verdicts manifests r =
  match
    List.filter_map Manifest.tenant_of manifests
    |> List.sort_uniq String.compare
  with
  | [] -> "" (* flat fleet: render nothing, outputs stay byte-identical *)
  | _ :: _ ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf "per-domain verdicts:\n";
    List.iter
      (fun (t, v) ->
        Buffer.add_string buf
          (match v with
           | Contained -> Printf.sprintf "  tenant %s: contained\n" t
           | Uncontained roots ->
             Printf.sprintf "  tenant %s: UNCONTAINED (%s)\n" t
               (String.concat ", " roots)))
      (tenant_verdicts manifests r);
    (match cross_tenant_radius manifests r with
     | [] -> Buffer.add_string buf "  cross-tenant radius: none\n"
     | xs ->
       List.iter
         (fun (root, victim, impact) ->
           Buffer.add_string buf
             (Printf.sprintf "  CROSS-TENANT radius: %s -> %s (%s)\n" root
                victim (impact_to_string impact)))
         xs);
    Buffer.contents buf
