(* The lint rule registry: each rule is a pure, total function from a
   parsed manifest set to diagnostics. Rules never raise; a manifest set
   that confuses a rule simply yields no findings from it.

   Rules are *seeded*: [check cfg ctx m] returns the findings whose
   anchor component is [m], and the engine unions the per-seed results
   over every manifest. Each rule also declares a dependency [scope] —
   what slice of the fleet its per-seed result can depend on — which is
   what lets {!Check} re-run only the affected seeds after a delta. *)

type config = {
  max_domain_components : int;
  oversize_loc : int;
  tcb_threshold : int;
  secret_substrates : string list;
  declared_hosts : Manifest.host list;
}

let default_config =
  { max_domain_components = 3;
    oversize_loc = 30_000;
    tcb_threshold = 25_000;
    secret_substrates = [ "sep"; "sgx"; "trustzone"; "flicker" ];
    declared_hosts = [] }

type scope = Component | Neighborhood | Graph

let scope_to_string = function
  | Component -> "component"
  | Neighborhood -> "manifest"
  | Graph -> "graph"

type ctx = {
  manifests : Manifest.t list;
  index : (string, Manifest.t) Hashtbl.t;
  counts : (string, int) Hashtbl.t;
  inbound : (string, (Manifest.t * Manifest.connection * bool) list) Hashtbl.t;
  domain_all : (string, string list) Hashtbl.t;
  domain_dedup : (string, string list) Hashtbl.t;
  app : App.t;
  flow_memo : (Flow.config * Flow.result) list ref;
  contain_memo : (Contain.config * Contain.result) list ref;
  cycles_memo : Diagnostic.t list option ref;
}

let make_ctx manifests =
  let app = App.create () in
  let n = List.length manifests in
  let index = Hashtbl.create (max 16 n) in
  let counts = Hashtbl.create (max 16 n) in
  let inbound = Hashtbl.create (max 16 n) in
  let domain_all = Hashtbl.create (max 16 n) in
  let domain_dedup = Hashtbl.create (max 16 n) in
  List.iter
    (fun m ->
      let name = m.Manifest.name in
      let primary = not (Hashtbl.mem index name) in
      if primary then begin
        Hashtbl.replace index name m;
        App.add_stub app m;
        Hashtbl.replace domain_dedup m.Manifest.domain
          (name
          :: Option.value ~default:[]
               (Hashtbl.find_opt domain_dedup m.Manifest.domain))
      end;
      Hashtbl.replace counts name
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts name));
      Hashtbl.replace domain_all m.Manifest.domain
        (name
        :: Option.value ~default:[] (Hashtbl.find_opt domain_all m.Manifest.domain));
      List.iter
        (fun c ->
          Hashtbl.replace inbound c.Manifest.target
            ((m, c, primary)
            :: Option.value ~default:[] (Hashtbl.find_opt inbound c.Manifest.target)))
        m.Manifest.connects_to)
    manifests;
  (* stored per-domain member lists are built newest-first; flip them to
     declaration order / sorted once, so lookups are allocation-free *)
  Hashtbl.filter_map_inplace (fun _ ms -> Some (List.rev ms)) domain_all;
  Hashtbl.filter_map_inplace
    (fun _ ms -> Some (List.sort compare ms))
    domain_dedup;
  { manifests; index; counts; inbound; domain_all; domain_dedup; app;
    flow_memo = ref []; contain_memo = ref []; cycles_memo = ref None }

type rule = {
  id : string;
  severity : Diagnostic.severity;
  summary : string;
  paper_ref : string;
  scope : scope;
  check : config -> ctx -> Manifest.t -> Diagnostic.t list;
}

(* --- substrate knowledge ---------------------------------------------------
   The taxonomy lives in {!Contain} (the lowest layer that needs it);
   re-exported here because the rule catalogue is where users look. *)

let known_substrates = Contain.known_substrates

let substrate_known = Contain.substrate_known

let substrate_crashable = Contain.substrate_crashable

let substrate_sealed_identity = Contain.substrate_sealed_identity

let default_tcb_of_substrate = Contain.default_tcb_of_substrate

(* --- helpers --------------------------------------------------------------- *)

let diag ~rule ~component ?service message fix_hint =
  Diagnostic.v ~rule_id:rule.id ~severity:rule.severity ~component ?service
    ~message ~fix_hint ()

(* first manifest wins on duplicate names, like {!Flow.dedupe} *)
let find ctx name = Hashtbl.find_opt ctx.index name

let declared ctx name = Hashtbl.mem ctx.index name

let inbound ctx name =
  Option.value ~default:[] (Hashtbl.find_opt ctx.inbound name)

(* components reachable from [start] along unvetted channels only,
   excluding [start] itself *)
let unvetted_closure ctx start =
  let seen = Hashtbl.create 8 in
  let rec go name =
    match find ctx name with
    | None -> ()
    | Some m ->
      List.iter
        (fun c ->
          if (not c.Manifest.vetted) && not (Hashtbl.mem seen c.Manifest.target)
          then begin
            Hashtbl.replace seen c.Manifest.target ();
            go c.Manifest.target
          end)
        m.Manifest.connects_to
  in
  go start;
  Hashtbl.remove seen start;
  Hashtbl.fold (fun n () acc -> n :: acc) seen [] |> List.sort compare

(* the one Flow.analyze all flow-backed rules share; Check pre-seeds the
   memo with its incrementally maintained result *)
let flow_config (cfg : config) =
  { Flow.secret_substrates = cfg.secret_substrates }

let flow_of_ctx cfg ctx =
  let fc = flow_config cfg in
  match List.assoc_opt fc !(ctx.flow_memo) with
  | Some r -> r
  | None ->
    let r = Flow.analyze ~config:fc ctx.manifests in
    ctx.flow_memo := (fc, r) :: !(ctx.flow_memo);
    r

(* likewise the one Contain.analyze the containment rules share *)
let contain_config (_cfg : config) = Contain.default_config

let contain_of_ctx cfg ctx =
  let cc = contain_config cfg in
  match List.assoc_opt cc !(ctx.contain_memo) with
  | Some r -> r
  | None ->
    let r = Contain.analyze ~config:cc ctx.manifests in
    ctx.contain_memo := (cc, r) :: !(ctx.contain_memo);
    r

let taint_why m =
  match (m.Manifest.network_facing, m.Manifest.vulnerable) with
  | true, true -> "network-facing, vulnerable"
  | true, false -> "network-facing"
  | _ -> "vulnerable"

(* --- the rules ------------------------------------------------------------- *)

let rec l001 =
  { id = "L001-dangling-target";
    severity = Diagnostic.Error;
    summary = "a declared channel points at a component that does not exist";
    paper_ref = "\xc2\xa7III-A";
    scope = Neighborhood;
    check =
      (fun _cfg ctx m ->
        List.filter_map
          (fun c ->
            if declared ctx c.Manifest.target then None
            else
              Some
                (diag ~rule:l001 ~component:m.Manifest.name
                   ~service:c.Manifest.service
                   (Printf.sprintf "connects to %s.%s but no component %S exists"
                      c.Manifest.target c.Manifest.service c.Manifest.target)
                   "declare the missing component or delete the connects line"))
          m.Manifest.connects_to) }

let rec l002 =
  { id = "L002-dangling-service";
    severity = Diagnostic.Error;
    summary = "a declared channel names a service its target does not provide";
    paper_ref = "\xc2\xa7III-A";
    scope = Neighborhood;
    check =
      (fun _cfg ctx m ->
        List.filter_map
          (fun c ->
            match find ctx c.Manifest.target with
            | Some tm
              when not (List.mem c.Manifest.service tm.Manifest.provides) ->
              Some
                (diag ~rule:l002 ~component:m.Manifest.name
                   ~service:c.Manifest.service
                   (Printf.sprintf
                      "connects to %s.%s but %s only provides: %s"
                      c.Manifest.target c.Manifest.service c.Manifest.target
                      (match tm.Manifest.provides with
                       | [] -> "(nothing)"
                       | ps -> String.concat ", " ps))
                   "fix the service name or add it to the target's provides")
            | _ -> None)
          m.Manifest.connects_to) }

let rec l003 =
  { id = "L003-duplicate-component";
    severity = Diagnostic.Error;
    summary = "two components share one name, so channels are ambiguous";
    paper_ref = "\xc2\xa7III-A";
    scope = Component;
    check =
      (fun _cfg ctx m ->
        let name = m.Manifest.name in
        match Hashtbl.find_opt ctx.counts name with
        | Some n when n > 1 ->
          [ diag ~rule:l003 ~component:name
              (Printf.sprintf "component %S is declared %d times" name n)
              "rename one of the components; names key the channel graph" ]
        | _ -> []) }

let rec l004 =
  { id = "L004-self-connection";
    severity = Diagnostic.Error;
    summary = "a component declares a channel to itself";
    paper_ref = "\xc2\xa7III-A";
    scope = Component;
    check =
      (fun _cfg _ctx m ->
        List.filter_map
          (fun c ->
            if c.Manifest.target = m.Manifest.name then
              Some
                (diag ~rule:l004 ~component:m.Manifest.name
                   ~service:c.Manifest.service
                   "component connects to itself; a channel to self grants nothing"
                   "delete the self-connection")
            else None)
          m.Manifest.connects_to) }

let rec l005 =
  { id = "L005-confused-deputy";
    severity = Diagnostic.Error;
    summary =
      "a service has several callers but its component does no badge checks";
    paper_ref = "\xc2\xa7III-D";
    scope = Neighborhood;
    check =
      (fun _cfg ctx m ->
        (* the seed is the *target*; callers come from the deduped
           manifest set, matching Analysis.confused_deputy_risks *)
        match find ctx m.Manifest.name with
        | Some tm when not tm.Manifest.discriminates_clients ->
          let by_service = Hashtbl.create 4 in
          List.iter
            (fun (caller, c, primary) ->
              if primary then begin
                let who =
                  Option.value ~default:[]
                    (Hashtbl.find_opt by_service c.Manifest.service)
                in
                if not (List.mem caller.Manifest.name who) then
                  Hashtbl.replace by_service c.Manifest.service
                    (caller.Manifest.name :: who)
              end)
            (inbound ctx m.Manifest.name);
          Hashtbl.fold
            (fun service who acc ->
              if List.length who >= 2 then
                diag ~rule:l005 ~component:m.Manifest.name ~service
                  (Printf.sprintf
                     "service answers %s without discriminating between callers"
                     (String.concat ", " (List.sort compare who)))
                  "check caller badges in the component, or split the service per caller"
                :: acc
              else acc)
            by_service []
        | _ -> []) }

let rec l006 =
  { id = "L006-taint-flow";
    severity = Diagnostic.Warning;
    summary =
      "an exposed component reaches a secret-holding substrate with no vetted boundary";
    paper_ref = "\xc2\xa7IV";
    scope = Graph;
    check =
      (fun cfg ctx m ->
        let r = flow_of_ctx cfg ctx in
        List.filter_map
          (fun (h : Flow.taint_hit) ->
            if (not h.Flow.t_direct) || h.Flow.t_source <> m.Manifest.name then
              None
            else
              match (find ctx h.Flow.t_source, find ctx h.Flow.t_sink) with
              | Some src, Some dst ->
                Some
                  (diag ~rule:l006 ~component:src.Manifest.name
                     (Printf.sprintf
                        "tainted component (%s) reaches secret-holder %s on %s via %s with no vetted boundary"
                        (taint_why src) dst.Manifest.name dst.Manifest.substrate
                        (String.concat " -> " h.Flow.t_path))
                     "vet a channel on the path (connects-vetted) or remove the route")
              | _ -> None)
          r.Flow.taint_hits) }

let rec l007 =
  { id = "L007-legacy-tcb";
    severity = Diagnostic.Warning;
    summary = "an unvetted legacy-OS dependency inflates the TCB past the threshold";
    paper_ref = "\xc2\xa7III-D";
    scope = Graph;
    check =
      (fun cfg ctx m ->
        let closure = unvetted_closure ctx m.Manifest.name in
        let legacy =
          List.filter
            (fun n ->
              match find ctx n with
              | Some d -> d.Manifest.substrate = "monolithic-os"
              | None -> false)
            closure
        in
        match legacy with
        | [] -> []
        | l :: _ ->
          let tcb =
            Analysis.tcb ctx.app
              ~tcb_of_substrate:default_tcb_of_substrate m.Manifest.name
          in
          if tcb > cfg.tcb_threshold then
            [ diag ~rule:l007 ~component:m.Manifest.name
                (Printf.sprintf
                   "depends on legacy-OS component %s without vetting; TCB is %d loc (threshold %d)"
                   l tcb cfg.tcb_threshold)
                "vet the dependency (connects-vetted) or re-host it off the monolithic OS" ]
          else []) }

let rec l008 =
  { id = "L008-shared-domain-pola";
    severity = Diagnostic.Warning;
    summary = "one protection domain co-locates too many components";
    paper_ref = "\xc2\xa7III-A";
    scope = Neighborhood;
    check =
      (fun cfg ctx m ->
        (* one diag per overfull domain, anchored at the (sorted) first
           member, matching Analysis.domains *)
        match find ctx m.Manifest.name with
        | None -> []
        | Some pm ->
          (match Hashtbl.find_opt ctx.domain_dedup pm.Manifest.domain with
           | Some members
             when List.length members > cfg.max_domain_components
                  && List.hd members = m.Manifest.name ->
             [ diag ~rule:l008 ~component:(List.hd members)
                 (Printf.sprintf
                    "domain %S co-locates %d components (%s); one exploit owns them all"
                    pm.Manifest.domain (List.length members)
                    (String.concat ", " members))
                 "split the domain; least privilege wants one component per domain" ]
           | _ -> [])) }

let rec l009 =
  { id = "L009-channel-cycle";
    severity = Diagnostic.Warning;
    summary = "components form a circular channel dependency";
    paper_ref = "\xc2\xa7III-A";
    scope = Graph;
    check =
      (fun _cfg ctx m ->
        (* cycle detection is inherently whole-graph: compute once per
           ctx, then hand each seed its own anchored findings *)
        let full =
          match !(ctx.cycles_memo) with
          | Some ds -> ds
          | None ->
            let names = List.map (fun m -> m.Manifest.name) ctx.manifests in
            let reach = Hashtbl.create 16 in
            let reachable_from start =
              match Hashtbl.find_opt reach start with
              | Some set -> set
              | None ->
                let seen = Hashtbl.create 8 in
                let rec go n =
                  match find ctx n with
                  | None -> ()
                  | Some m ->
                    List.iter
                      (fun c ->
                        if not (Hashtbl.mem seen c.Manifest.target) then begin
                          Hashtbl.replace seen c.Manifest.target ();
                          go c.Manifest.target
                        end)
                      m.Manifest.connects_to
                in
                go start;
                Hashtbl.replace reach start seen;
                seen
            in
            let in_cycle n = Hashtbl.mem (reachable_from n) n in
            let scc n =
              List.filter
                (fun m ->
                  Hashtbl.mem (reachable_from n) m
                  && Hashtbl.mem (reachable_from m) n)
                names
              |> List.sort compare
            in
            let reported = Hashtbl.create 4 in
            let ds =
              List.filter_map
                (fun n ->
                  if not (in_cycle n) then None
                  else
                    let members = scc n in
                    (* self-loops are L004's business, not a cycle *)
                    if List.length members < 2 then None
                    else
                      let key = String.concat "," members in
                      if Hashtbl.mem reported key then None
                      else begin
                        Hashtbl.replace reported key ();
                        Some
                          (diag ~rule:l009 ~component:(List.hd members)
                             (Printf.sprintf
                                "circular channel dependency among %s"
                                (String.concat ", " members))
                             "break the cycle; authority should flow one way through the app")
                      end)
                names
            in
            ctx.cycles_memo := Some ds;
            ds
        in
        List.filter
          (fun d -> d.Diagnostic.component = m.Manifest.name)
          full) }

let rec l010 =
  { id = "L010-dead-service";
    severity = Diagnostic.Info;
    summary = "a provided service that no component connects to";
    paper_ref = "\xc2\xa7III-A";
    scope = Neighborhood;
    check =
      (fun _cfg ctx m ->
        if m.Manifest.network_facing then []
        else
          let entries = inbound ctx m.Manifest.name in
          let has_caller service =
            List.exists
              (fun (_, c, _) -> c.Manifest.service = service)
              entries
          in
          List.filter_map
            (fun s ->
              if has_caller s then None
              else
                Some
                  (diag ~rule:l010 ~component:m.Manifest.name ~service:s
                     "service is provided but never connected to"
                     "remove the service, or connect the client that should use it"))
            m.Manifest.provides) }

let rec l011 =
  { id = "L011-substrate-mismatch";
    severity = Diagnostic.Warning;
    summary = "a component's substrate cannot supply what its role requires";
    paper_ref = "\xc2\xa7II";
    scope = Neighborhood;
    check =
      (fun _cfg ctx m ->
        let s = m.Manifest.substrate in
        if not (substrate_known s) then
          [ diag ~rule:l011 ~component:m.Manifest.name
              (Printf.sprintf "unknown substrate %S" s)
              (Printf.sprintf "use one of: %s"
                 (String.concat ", "
                    (List.map (fun (n, _, _) -> n) known_substrates))) ]
        else
          let vetted_target =
            List.exists
              (fun (_, c, _) -> c.Manifest.vetted)
              (inbound ctx m.Manifest.name)
          in
          if vetted_target && not (substrate_sealed_identity s) then
            [ diag ~rule:l011 ~component:m.Manifest.name
                (Printf.sprintf
                   "target of a vetted boundary, but substrate %S has no sealed identity to attest"
                   s)
                "host it on an attesting substrate (sep, sgx, trustzone, flicker, m3-noc)" ]
          else []) }

let rec l012 =
  { id = "L012-vulnerable-cohabitant";
    severity = Diagnostic.Warning;
    summary = "a vulnerable component shares its protection domain";
    paper_ref = "\xc2\xa7III-A";
    scope = Neighborhood;
    check =
      (fun _cfg ctx m ->
        if not m.Manifest.vulnerable then []
        else
          let mates =
            Option.value ~default:[]
              (Hashtbl.find_opt ctx.domain_all m.Manifest.domain)
            |> List.filter (fun n -> n <> m.Manifest.name)
            |> List.sort compare
          in
          if mates = [] then []
          else
            [ diag ~rule:l012 ~component:m.Manifest.name
                (Printf.sprintf
                   "vulnerable component shares domain %S with %s; its compromise owns them too"
                   m.Manifest.domain (String.concat ", " mates))
                "move the vulnerable component into its own domain" ]) }

let rec l013 =
  { id = "L013-oversized-component";
    severity = Diagnostic.Info;
    summary = "a component is large enough that decomposition would pay off";
    paper_ref = "\xc2\xa7III-C";
    scope = Component;
    check =
      (fun cfg _ctx m ->
        if m.Manifest.size_loc >= cfg.oversize_loc then
          [ diag ~rule:l013 ~component:m.Manifest.name
              (Printf.sprintf
                 "component is %d loc (threshold %d); lateral designs keep components small"
                 m.Manifest.size_loc cfg.oversize_loc)
              "decompose it into smaller single-purpose components" ]
        else []) }

let rec l014 =
  { id = "L014-label-leak";
    severity = Diagnostic.Error;
    summary =
      "secret material can flow from its holder to an attacker-observable component";
    paper_ref = "\xc2\xa7IV";
    scope = Graph;
    check =
      (fun cfg ctx m ->
        let r = flow_of_ctx cfg ctx in
        List.filter_map
          (fun (l : Flow.leak) ->
            if l.Flow.l_secret <> m.Manifest.name then None
            else
              match (find ctx l.Flow.l_secret, find ctx l.Flow.l_sink) with
              | Some holder, Some sink ->
                Some
                  (diag ~rule:l014 ~component:holder.Manifest.name
                     (Printf.sprintf
                        "secret held behind %s escapes to %s component %s via %s"
                        holder.Manifest.substrate (taint_why sink)
                        sink.Manifest.name
                        (String.concat " -> " l.Flow.l_path))
                     "vet a channel on the path (connects-vetted) or keep replies inside the boundary")
              | _ -> None)
          r.Flow.leaks) }

let rec l015 =
  { id = "L015-dead-declassifier";
    severity = Diagnostic.Info;
    summary = "a vetted boundary between two public-labelled components guards nothing";
    paper_ref = "\xc2\xa7III-D";
    scope = Graph;
    check =
      (fun cfg ctx m ->
        let r = flow_of_ctx cfg ctx in
        let label n =
          Option.value ~default:Flow_lattice.public
            (List.assoc_opt n r.Flow.labels)
        in
        let public n = Flow_lattice.equal (label n) Flow_lattice.public in
        List.filter_map
          (fun c ->
            if
              c.Manifest.vetted
              && c.Manifest.target <> m.Manifest.name
              && declared ctx c.Manifest.target
              && public m.Manifest.name
              && public c.Manifest.target
            then
              Some
                (diag ~rule:l015 ~component:m.Manifest.name
                   ~service:c.Manifest.service
                   (Printf.sprintf
                      "vetted boundary to %s guards nothing: both endpoints are labelled public"
                      c.Manifest.target)
                   "use a plain connects, or revisit why the boundary exists")
            else None)
          m.Manifest.connects_to) }

let rec l016 =
  { id = "L016-transitive-taint-into-enclave";
    severity = Diagnostic.Warning;
    summary =
      "attacker influence reaches a secret holder only through intermediaries";
    paper_ref = "\xc2\xa7IV";
    scope = Graph;
    check =
      (fun cfg ctx m ->
        let r = flow_of_ctx cfg ctx in
        List.filter_map
          (fun (h : Flow.taint_hit) ->
            if h.Flow.t_direct || h.Flow.t_source <> m.Manifest.name then None
            else
              match (find ctx h.Flow.t_source, find ctx h.Flow.t_sink) with
              | Some src, Some dst ->
                Some
                  (diag ~rule:l016 ~component:src.Manifest.name
                     (Printf.sprintf
                        "tainted component (%s) transitively reaches secret-holder %s on %s via %s with no vetted boundary"
                        (taint_why src) dst.Manifest.name dst.Manifest.substrate
                        (String.concat " -> " h.Flow.t_path))
                     "vet a channel on the path (connects-vetted) or remove the route")
              | _ -> None)
          r.Flow.taint_hits) }

let rec l019 =
  { id = "L019-restart-policy-missing";
    severity = Diagnostic.Warning;
    summary =
      "a stateful component on a crashable substrate declares no restart policy";
    paper_ref = "\xc2\xa7III";
    scope = Component;
    check =
      (fun _cfg _ctx m ->
        if
          m.Manifest.stateful
          && substrate_crashable m.Manifest.substrate
          && m.Manifest.restart = None
        then
          [ diag ~rule:l019 ~component:m.Manifest.name
              (Printf.sprintf
                 "stateful component on crashable substrate %S has no restart policy; a crash leaves it dead and its state unreachable"
                 m.Manifest.substrate)
              "declare one: restart on-failure 3 256 (or restart never to accept the loss)" ]
        else []) }

(* --- containment rules (L020-L023) -----------------------------------------
   All four read the shared Contain.analyze result (or, for L023, the
   same manifest facts its state-loss edges are derived from); the
   model is documented in docs/CONTAIN.md. *)

let rec l020 =
  { id = "L020-unbounded-blast-radius";
    severity = Diagnostic.Warning;
    summary =
      "an unrecoverable crash degrades components outside its own protection domain";
    paper_ref = "\xc2\xa7III";
    scope = Graph;
    check =
      (fun cfg ctx m ->
        let r = contain_of_ctx cfg ctx in
        match
          List.find_opt
            (fun (rad : Contain.radius) -> rad.Contain.r_root = m.Manifest.name)
            r.Contain.radii
        with
        | Some { Contain.r_escape = Some x; _ } ->
          [ diag ~rule:l020 ~component:m.Manifest.name
              (Printf.sprintf
                 "a crash never heals (no effective restart policy) and leaves %d component(s) outside its domain degraded forever, worst %s (%s): %s"
                 x.Contain.x_outside x.Contain.x_victim
                 (Contain.impact_to_string x.Contain.x_impact)
                 (String.concat " -> " x.Contain.x_path))
              "declare restart on-failure (with a budget), or decouple the outside dependents" ]
        | _ -> []) }

let rec l021 =
  { id = "L021-single-point-of-failure";
    severity = Diagnostic.Warning;
    summary =
      "a single crash impacts a large fraction of the fleet";
    paper_ref = "\xc2\xa7III";
    scope = Graph;
    check =
      (fun cfg ctx m ->
        let r = contain_of_ctx cfg ctx in
        let n = List.length r.Contain.radii in
        let threshold =
          max 3
            (int_of_float
               (ceil ((contain_config cfg).Contain.spof_fraction
                      *. float_of_int (n - 1))))
        in
        match
          List.find_opt
            (fun (rad : Contain.radius) -> rad.Contain.r_root = m.Manifest.name)
            r.Contain.radii
        with
        | Some rad ->
          let victims = List.length rad.Contain.r_hit - 1 in
          if victims >= threshold then
            [ diag ~rule:l021 ~component:m.Manifest.name
                (Printf.sprintf
                   "single point of failure: a crash impacts %d of %d other components (threshold %d)"
                   victims (n - 1) threshold)
                "split the service, replicate it, or cut dependents over to vetted bounded channels" ]
          else []
        | None -> []) }

let rec l022 =
  { id = "L022-restart-storm-cycle";
    severity = Diagnostic.Error;
    summary =
      "auto-restarting components form a channel cycle inside one protection domain";
    paper_ref = "\xc2\xa7III";
    scope = Graph;
    check =
      (fun cfg ctx m ->
        let r = contain_of_ctx cfg ctx in
        let peers =
          List.filter_map
            (fun (e : Contain.edge) ->
              if e.Contain.p_kind = Contain.Restart_storm
                 && e.Contain.p_src = m.Manifest.name
              then Some e.Contain.p_dst
              else None)
            r.Contain.edges
        in
        match peers with
        | [] -> []
        | _ when List.exists (fun p -> p < m.Manifest.name) peers ->
          [] (* anchored once, at the smallest member *)
        | _ ->
          let members =
            List.sort String.compare (m.Manifest.name :: peers)
          in
          [ diag ~rule:l022 ~component:m.Manifest.name
              (Printf.sprintf
                 "restart storm: %s call each other in a cycle inside domain %S and all auto-restart; one crash re-kills the others until every budget gives up"
                 (String.concat ", " members)
                 m.Manifest.domain)
              "break the cycle, split the domain, or set restart never on one member" ]) }

let rec l023 =
  { id = "L023-stateful-dependency-unshielded";
    severity = Diagnostic.Warning;
    summary =
      "an unvetted dependency on a stateful component whose state a crash destroys";
    paper_ref = "\xc2\xa7III-D";
    scope = Neighborhood;
    check =
      (fun _cfg ctx m ->
        List.filter_map
          (fun c ->
            if c.Manifest.vetted || c.Manifest.target = m.Manifest.name then None
            else
              match find ctx c.Manifest.target with
              | Some t
                when t.Manifest.stateful
                     && substrate_crashable t.Manifest.substrate
                     && (not (substrate_sealed_identity t.Manifest.substrate))
                     && Contain.crash_impact t = Contain.Failed ->
                Some
                  (diag ~rule:l023 ~component:m.Manifest.name
                     ~service:c.Manifest.service
                     (Printf.sprintf
                        "depends unvetted on stateful %S (substrate %S, no effective restart); a crash destroys the state and the loss lands here unshielded"
                        t.Manifest.name t.Manifest.substrate)
                     "vet the channel (a validating VPFS-style wrapper) or move the state to a sealed-identity substrate")
              | _ -> None)
          m.Manifest.connects_to) }

let selector_host_name sel =
  if String.length sel > 5 && String.sub sel 0 5 = "host:" then
    Some (String.sub sel 5 (String.length sel - 5))
  else None

let rec l024 =
  { id = "L024-placement-unsatisfiable";
    severity = Diagnostic.Error;
    summary =
      "a placement spec matches no declared fleet host or substrate class";
    paper_ref = "\xc2\xa7III";
    scope = Component;
    check =
      (fun cfg _ctx m ->
        let bad_selectors =
          List.filter_map
            (fun sel ->
              match Contain.placement_selector_invalid sel with
              | Some reason ->
                Some
                  (diag ~rule:l024 ~component:m.Manifest.name
                     (Printf.sprintf "placement selector %S: %s" sel reason)
                     "use host:NAME, class:tee, class:commodity or a known substrate name")
              | None ->
                (match (selector_host_name sel, cfg.declared_hosts) with
                 | Some name, (_ :: _ as hosts)
                   when not
                          (List.exists
                             (fun h -> h.Manifest.h_name = name)
                             hosts) ->
                   Some
                     (diag ~rule:l024 ~component:m.Manifest.name
                        (Printf.sprintf
                           "placement selector %S names no declared host (declared: %s)"
                           sel
                           (String.concat ", "
                              (List.map (fun h -> h.Manifest.h_name) hosts)))
                        "declare the host or drop the selector")
                 | _ -> None))
            m.Manifest.placement
        in
        if bad_selectors <> [] then bad_selectors
        else
          match cfg.declared_hosts with
          | [] -> []
          | hosts
            when List.exists (fun h -> Contain.host_can_host h m) hosts -> []
          | hosts ->
            [ diag ~rule:l024 ~component:m.Manifest.name
                (Printf.sprintf
                   "no declared host can place it: substrate %S%s matches none of %s"
                   m.Manifest.substrate
                   (if m.Manifest.placement = [] then ""
                    else
                      Printf.sprintf " under place %s"
                        (String.concat " " m.Manifest.placement))
                   (String.concat ", "
                      (List.map (fun h -> h.Manifest.h_name) hosts)))
                "offer the substrate on a host, relax the place selectors, or move the component" ]) }

(* trust domains (Tyche-style, nestable): the root path [] contains
   every other path, so shared root infrastructure never trips these;
   only channels/domains bridging two *disjoint* paths — distinct
   tenants — do *)
let rec l025 =
  { id = "L025-cross-tenant-channel";
    severity = Diagnostic.Error;
    summary = "an unvetted channel crosses disjoint trust domains";
    paper_ref = "\xc2\xa7II-B";
    scope = Neighborhood;
    check =
      (fun _cfg ctx m ->
        List.filter_map
          (fun c ->
            match find ctx c.Manifest.target with
            | Some tm
              when (not c.Manifest.vetted)
                   && Manifest.trust_domains_disjoint m.Manifest.trust_domain
                        tm.Manifest.trust_domain ->
              Some
                (diag ~rule:l025 ~component:m.Manifest.name
                   ~service:c.Manifest.service
                   (Printf.sprintf
                      "unvetted channel to %s.%s crosses trust domains (%s vs %s)"
                      c.Manifest.target c.Manifest.service
                      (Manifest.trust_path_string m.Manifest.trust_domain)
                      (Manifest.trust_path_string tm.Manifest.trust_domain))
                   "vet the channel or move both endpoints under a common trust domain")
            | _ -> None)
          m.Manifest.connects_to) }

let rec l026 =
  { id = "L026-protection-domain-spans-tenants";
    severity = Diagnostic.Error;
    summary = "one protection domain spans disjoint trust domains";
    paper_ref = "\xc2\xa7II-B";
    scope = Neighborhood;
    check =
      (fun _cfg ctx m ->
        match Hashtbl.find_opt ctx.domain_dedup m.Manifest.domain with
        | None -> []
        | Some members ->
          List.filter_map
            (fun peer ->
              match find ctx peer with
              | Some pm
                when peer <> m.Manifest.name
                     && Manifest.trust_domains_disjoint m.Manifest.trust_domain
                          pm.Manifest.trust_domain ->
                Some
                  (diag ~rule:l026 ~component:m.Manifest.name
                     (Printf.sprintf
                        "shares protection domain %S with %s in disjoint trust domain %s (own: %s) — crashes and compromise co-fate across tenants"
                        m.Manifest.domain peer
                        (Manifest.trust_path_string pm.Manifest.trust_domain)
                        (Manifest.trust_path_string m.Manifest.trust_domain))
                     "give each tenant its own protection domain")
              | _ -> None)
            (List.sort String.compare members)) }

let all =
  [ l001; l002; l003; l004; l005; l006; l007; l008; l009; l010; l011; l012;
    l013; l014; l015; l016; l019; l020; l021; l022; l023; l024; l025; l026 ]
