(** Static blast-radius (fault-containment) analysis.

    The paper's bet is that isolation boundaries make failure
    {e containable by construction}; the chaos harness ({!Lt_resil.Chaos})
    checks that dynamically, after the fact. This module makes the same
    claim statically: from the manifests alone it computes, per
    component, the worst-case {b blast radius} — every component a crash
    can render failed, degraded or restarted — as a fixpoint over
    propagation edges derived from the declared structure (channel
    topology, protection-domain cohabitation, supervision policies,
    statefulness). The chaos harness exports the radius it actually
    observed per run, and a property holds the two together:
    {e observed ⊆ predicted}, the availability twin of the
    kernel-vs-static flow conformance check.

    {2 Impact lattice}

    Untouched < [Degraded] < [Restarted] < [Failed]. A component is
    {e degraded} when its requests can fail but it stays alive,
    {e restarted} when it loses volatile state but supervision brings it
    back, {e failed} when it ends up permanently dead (no restart
    policy, or a give-up cascade). Transfer functions are monotone in
    this order, so the per-root fixpoint is unique and the solve is
    linear in the edge count. *)

type impact = Degraded | Restarted | Failed

(** Untouched = 0, [Degraded] = 1, [Restarted] = 2, [Failed] = 3. *)
val rank : impact -> int

val impact_to_string : impact -> string  (** ["degraded"] etc. *)

val impact_of_string : string -> impact option

type config = {
  supervised : bool;
      (** [true] (default): callers reach dead callees through the
          {!Lt_resil.Supervisor} hardening — per-call deadlines and
          circuit breakers bound the damage to failed requests
          ([channel-bounded] edges). [false]: a caller blocks forever on
          a dead callee ([channel-blocked] edges). *)
  spof_fraction : float;
      (** L021: a component whose crash degrades at least
          [max 3 (ceil (spof_fraction * (n-1)))] other components is a
          single point of failure (default 0.5). *)
}

val default_config : config

(** {2 Propagation edges}

    A directed edge [src -> dst] means: an impact on [src] can impose an
    impact on [dst]. The kinds, their derivation from the manifest and
    their transfer functions are documented in docs/CONTAIN.md, whose
    table is diffed against {!edge_kinds} by the [@lintdocs] gate. *)

type kind =
  | Channel_bounded
      (** [dst] declares a channel to [src] and calls run supervised:
          any impact on [src] degrades [dst] (failed requests), nothing
          worse. Vetted channels too — vetting declassifies data, not
          liveness. *)
  | Channel_blocked
      (** same channel, unsupervised calls: [Failed] propagates as
          [Failed] (the caller blocks forever), anything else degrades. *)
  | Domain_cofate
      (** [src] and [dst] share a protection domain: a crash of [src]
          takes the domain down, so [dst] suffers its own crash impact. *)
  | Substrate_exclusive
      (** [src] and [dst] cohabit an exclusive-session substrate
          (flicker's one-DRTM-session-at-a-time): a crash of [src]
          stalls the slice and degrades [dst]. *)
  | State_loss
      (** [dst] depends unvetted on stateful [src] that never
          effectively restarts, on a substrate that neither seals
          identity nor survives crashes: when [src] crashes its state
          is destroyed for good and [dst] stays degraded. A vetted
          wrapper (the VPFS discipline) re-derives and re-validates, so
          vetted channels are exempt. *)
  | Restart_storm
      (** [src] and [dst] sit on a channel cycle inside one protection
          domain and both auto-restart: each respawn re-kills the other
          through the shared domain until the budgets give up — a crash
          of either ends with both [Failed]. *)

val kind_to_string : kind -> string  (** ["channel-bounded"] etc. *)

(** [(name, one-line trigger/effect)] for every kind — the registry the
    docs table is checked against. *)
val edge_kinds : (string * string) list

type edge = { p_src : string; p_dst : string; p_kind : kind }

(** The propagation edges a manifest set induces (deduplicated
    first-wins like {!Lint_rules.make_ctx}; self-edges and dangling
    targets skipped). Sorted by (src, dst, kind). Pure and total. *)
val prop_edges : config -> Manifest.t list -> edge list

(** {2 Per-root radii} *)

(** What a crash of the component itself costs: [Restarted] under an
    [on-failure]/[always] policy with a positive budget, else
    [Failed]. *)
val crash_impact : Manifest.t -> impact

(** {2 Substrate taxonomy}

    Lives here (rather than in {!Lint_rules}, which re-exports it)
    because the containment analysis is the lowest layer that needs it
    and the linter depends on the analysis, not the other way round. *)

(** [(name, sealed_identity, tcb_loc)] for every substrate the analyses
    know about. *)
val known_substrates : (string * bool * int) list

val substrate_known : string -> bool

(** Can the substrate attest / keep a sealed identity across crashes? *)
val substrate_sealed_identity : string -> bool

(** Notional substrate TCB in lines of code; unknown substrates count
    as a microkernel. *)
val default_tcb_of_substrate : string -> int

(** Substrates that crash with their host software stack. Dedicated
    hardware (sep, trustzone, flicker, m3-noc) does not: those
    components are never spontaneous crash roots, though a radius is
    still computed for them (the chaos harness can kill anything). *)
val crashable_substrates : string list

val substrate_crashable : string -> bool

(** {2 Fleet placement}

    Selector semantics for {!Manifest.t.placement} live next to the
    substrate taxonomy they consult; the user-facing grammar table is
    {!Manifest.placement_selector_kinds}. *)

(** [placement_selector_invalid sel] — [Some reason] when the selector
    is malformed or names an unknown class/substrate. [host:NAME] never
    fails here: whether the host exists is {!Lint_rules}' L024
    business, which needs the declared host list. *)
val placement_selector_invalid : string -> string option

(** [host_matches_selector h sel] — does [h] satisfy one selector?
    [host:N] matches by name, [class:C] if any offered substrate is in
    the class, a bare substrate name if the host offers it. *)
val host_matches_selector : Manifest.host -> string -> bool

(** [host_can_host h m] — [h] offers [m]'s substrate {e and} [m]'s
    placement spec (if any) matches [h]. This is the predicate the
    fleet placer and L024 share. *)
val host_can_host : Manifest.host -> Manifest.t -> bool

(** An example victim outside the crashing component's protection
    domain, witnessing that the damage escapes the domain forever
    (the root never heals). [x_path] is the propagation path, root
    first, victim last, along tight edges — deterministic like
    {!Flow.bfs_paths} witnesses. *)
type escape = {
  x_victim : string;
  x_impact : impact;
  x_outside : int;  (** victims outside the root's domain, total *)
  x_path : string list;
}

type radius = {
  r_root : string;
  r_self : impact;  (** {!crash_impact} of the root *)
  r_hit : (string * impact) list;
      (** every impacted component (root included), sorted by name *)
  r_escape : escape option;
      (** present iff the root's substrate is crashable, [r_self] is
          [Failed] and some victim lies outside the root's domain *)
}

type verdict =
  | Contained
  | Uncontained of string list
      (** the escape roots, sorted — components whose unrecoverable
          crash degrades components in other protection domains *)

type result = {
  radii : radius list;  (** one per component, sorted by root name *)
  edges : edge list;
  verdict : verdict;
}

(** [analyze manifests] — pure, total, deterministic: equal inputs give
    structurally equal results. *)
val analyze : ?config:config -> Manifest.t list -> result

(** {2 Reports} *)

val render_text : file:string -> result -> string

val render_json : file:string -> result -> string

(** Propagation graph in Graphviz DOT: nodes coloured by the component's
    own crash impact, escape roots double-bordered, one edge per kind. *)
val to_dot : Manifest.t list -> result -> string

(** {2 Solver internals}

    Exposed for the incremental {!Check} engine, which re-derives only
    the dirty roots after a delta and must agree with {!analyze}
    structurally (hence byte-for-byte once rendered). *)

(** Prepared adjacency + self-impact tables for a fixed edge list. *)
type graph

val graph : config -> Manifest.t list -> edge list -> graph

(** [radius_of g name] — the full radius of one root; equal to the
    corresponding entry of {!analyze}. Unknown roots get an empty
    radius anchored at [name]. *)
val radius_of : graph -> string -> radius

(** [assemble cfg manifests edges radii] sorts the radii and derives the
    verdict — the shared final step of {!analyze} and the incremental
    engine. *)
val assemble : config -> Manifest.t list -> edge list -> radius list -> result

(** [dirty_roots ~old_edges ~new_edges ~touched] — every root whose
    radius may differ after an edit: the backward closure of the touched
    components and of the endpoints of changed edges, over both the old
    and new propagation graphs. Sorted, deduplicated. *)
val dirty_roots :
  old_edges:edge list -> new_edges:edge list -> touched:string list ->
  string list

(** {2 Per-trust-domain verdicts}

    A blast radius belongs to the tenant (outermost trust-domain
    element) of its root; root-domain components belong to no tenant. *)

(** [(component -> trust path)] lookup over the manifests, first
    manifest wins; unknown names map to the root path. *)
val trust_paths : Manifest.t list -> string -> string list

(** One verdict per tenant: [Uncontained] lists exactly the escaping
    roots under that tenant. *)
val tenant_verdicts : Manifest.t list -> result -> (string * verdict) list

(** [(root, victim, impact)] triples where the victim's trust-domain
    path is disjoint from the root's — fate-sharing across tenants,
    which a multi-tenant fleet must keep empty. *)
val cross_tenant_radius :
  Manifest.t list -> result -> (string * string * impact) list

(** Text block for the CLI: per-tenant verdicts plus any cross-tenant
    radius; [""] when no manifest declares a trust domain. *)
val render_domain_verdicts : Manifest.t list -> result -> string
