(** Component manifests (§III-A).

    "The unified interface should be part of a larger programming
    framework, where developers can describe the required communication
    channels to other components. Such a manifest enables the isolation
    substrate to establish just the needed channels and block all other
    communication, thereby promoting a POLA design mentality."

    A manifest also carries the attributes the analysis tools reason
    over: protection domain (colocated components share fate), notional
    size, exposure and hardening flags. *)

type connection = {
  target : string;       (** component name *)
  service : string;      (** entry point on the target *)
  vetted : bool;
      (** trusted-wrapper discipline (§III-D): replies are validated
          cryptographically, so this dependency does {e not} extend the
          caller's TCB (e.g. VPFS over the legacy FS) *)
}

(** What the supervisor may do when the component crashes. *)
type restart_policy =
  | Never       (** stay dead; a human decides *)
  | On_failure  (** respawn after a crash, not after a clean destroy *)
  | Always      (** respawn unconditionally *)

type restart = {
  r_policy : restart_policy;
  r_max : int;     (** restarts allowed inside one window before give-up *)
  r_window : int;  (** window length in simulated ticks *)
}

type t = {
  name : string;
  provides : string list;        (** entry points this component offers *)
  connects_to : connection list; (** the {e only} channels it may use *)
  domain : string;
      (** protection domain; a vertical (monolithic) application puts
          every subsystem in one domain, a horizontal design gives each
          component its own *)
  trust_domain : string list;
      (** Tyche-style nestable trust domain, outermost first; [[]] is the
          root domain. The first element names the tenant. Protection
          domains live {e inside} a trust domain: two components in the
          same protection domain must share a trust-domain path (L026),
          and unvetted channels may not cross disjoint trust domains
          (L025), so one tenant's taint or blast radius can never be
          attributed to another. *)
  size_loc : int;                (** notional code size for TCB math *)
  network_facing : bool;         (** parses input from the outside world *)
  vulnerable : bool;
      (** contains an exploitable flaw (fault-injection modelling) *)
  discriminates_clients : bool;
      (** checks IPC badges; [false] on a multi-client service is a
          confused-deputy risk (§III-D) *)
  substrate : string;            (** which isolation substrate hosts it *)
  stateful : bool;
      (** accumulates state across requests (sealed or volatile); what a
          crash actually threatens, and what L019 keys on *)
  restart : restart option;      (** [None]: no supervision declared *)
  placement : string list;
      (** fleet placement spec: selectors naming the hosts or substrate
          classes this component may land on. Empty = anywhere its
          [substrate] is offered. See {!placement_selector_kinds};
          matching semantics live in {!Contain.host_matches_selector}. *)
}

(** A fleet host declaration: a named machine and the isolation
    substrates it offers. Parsed from [host] stanzas by
    {!Manifest_file.parse_fleet}. *)
type host = {
  h_name : string;
  h_substrates : string list;
}

val host : name:string -> substrates:string list -> host

(** The placement selector grammar, one [(selector form, meaning)] row
    per kind — the table docs/FLEET.md must reproduce verbatim (enforced
    by the [@lintdocs] gate). *)
val placement_selector_kinds : (string * string) list

(** The trust-domain stanza grammar, one [(form, meaning)] row per
    construct — the table docs/SCALE.md must reproduce verbatim
    (enforced by the [@lintdocs] gate). *)
val domain_stanza_grammar : (string * string) list

(** ["a/b/c"] for [["a";"b";"c"]], ["/"] for the root domain. *)
val trust_path_string : string list -> string

(** [is_path_prefix p q] — [p] is a (non-strict) ancestor of [q]. *)
val is_path_prefix : string list -> string list -> bool

(** Neither path contains the other — the cross-tenant case L025 keys
    on. The root domain [[]] is disjoint from nothing. *)
val trust_domains_disjoint : string list -> string list -> bool

(** The tenant (outermost trust-domain element), if any. *)
val tenant_of : t -> string option

(** [default_restart policy] — max 3 restarts per 256-tick window. *)
val default_restart : restart_policy -> restart

val restart_policy_of_string : string -> restart_policy option

val restart_policy_to_string : restart_policy -> string

(** [v ~name ...] builds a manifest with sensible defaults:
    own domain = [name], not network facing, not vulnerable,
    discriminating, substrate "microkernel", stateless, no restart
    policy. *)
val v :
  name:string -> ?provides:string list -> ?connects_to:connection list ->
  ?domain:string -> ?trust_domain:string list -> ?size_loc:int ->
  ?network_facing:bool -> ?vulnerable:bool -> ?discriminates_clients:bool ->
  ?substrate:string -> ?stateful:bool -> ?restart:restart ->
  ?placement:string list -> unit -> t

(** [conn ?vetted target service] — connection shorthand. *)
val conn : ?vetted:bool -> string -> string -> connection

val pp : Format.formatter -> t -> unit
