type attacker_model =
  | Remote_software
  | Local_software
  | Physical_memory
  | Physical_code_swap

type properties = {
  substrate_name : string;
  concurrent_components : bool;
  mutually_isolated : bool;
  defends : attacker_model list;
  tcb : (string * int) list;
  shared_cache_with_host : bool;
  progress_guaranteed : bool;
}

type facilities = {
  f_seal : string -> string;
  f_unseal : string -> string option;
  f_store : key:string -> string -> unit;
  f_load : key:string -> string option;
}

type service = facilities -> string -> string

(* adapters stash their per-component state in an extensible-variant
   (exception) value; each adapter defines its own constructor and only
   ever reads back what it put in *)
type component = { c_name : string; c_measurement : string; c_state : exn }

type t = {
  properties : properties;
  launch :
    name:string -> code:string -> services:(string * service) list ->
    (component, string) result;
  invoke : component -> fn:string -> string -> (string, string) result;
  attest :
    component -> nonce:string -> claim:string ->
    (Attestation.evidence, string) result;
  measure : code:string -> string;
  destroy : component -> unit;
  crash : component -> unit;
  is_alive : component -> bool;
  (* Snapshottable layers covering ALL mutable state behind this
     adapter (machine, sim, per-launch tables, dead set); assembled by
     each adapter's [make] and collected by [Deploy.world] *)
  mutable snap_layers : Lt_world.Snapshottable.layer list;
}

let component_name c = c.c_name

let make_component ~name ~measurement ~state =
  { c_name = name; c_measurement = measurement; c_state = state }

let component_measurement c = c.c_measurement

let component_state c = c.c_state

let crashed_error name = Printf.sprintf "component %s crashed (killed)" name

exception Service_failure of string

let failure_prefix = "service failure: "

let failure_error m = failure_prefix ^ m

(* every substrate sim that turns a service exception into a string does
   so via [Printexc.to_string]; registering a printer keeps the failure
   recognizable across that hop so routers can recover the class *)
let () =
  Printexc.register_printer (function
    | Service_failure m -> Some (failure_error m)
    | _ -> None)

let fail m = raise (Service_failure m)

let as_failure e =
  let n = String.length failure_prefix in
  if String.length e >= n && String.sub e 0 n = failure_prefix then
    Some (String.sub e n (String.length e - n))
  else None

(* a behaviour found a dependency dead mid-request; carries the true
   origin so routers blame the crashed component, not the caller that
   tripped over it *)
exception Dependency_crashed of { origin : string; reason : string }

let dep_crashed_prefix = "dependency crashed: "

let dep_crashed_error ~origin reason =
  Printf.sprintf "%s%s: %s" dep_crashed_prefix origin reason

let () =
  Printexc.register_printer (function
    | Dependency_crashed { origin; reason } ->
      Some (dep_crashed_error ~origin reason)
    | _ -> None)

let dep_crashed ~origin reason = raise (Dependency_crashed { origin; reason })

let as_dep_crashed e =
  let n = String.length dep_crashed_prefix in
  if String.length e >= n && String.sub e 0 n = dep_crashed_prefix then
    let rest = String.sub e n (String.length e - n) in
    match String.index_opt rest ':' with
    | Some i when i > 0 && i + 2 <= String.length rest ->
      Some
        ( String.sub rest 0 i,
          String.sub rest (i + 2) (String.length rest - i - 2) )
    | _ -> Some (rest, "")
  else None

let lifecycle ?dead ?(teardown = fun _ -> ()) () =
  let dead : (string, unit) Hashtbl.t =
    match dead with Some d -> d | None -> Hashtbl.create 4
  in
  let crash c =
    if not (Hashtbl.mem dead c.c_name) then begin
      Hashtbl.replace dead c.c_name ();
      teardown c
    end
  in
  let is_alive c = not (Hashtbl.mem dead c.c_name) in
  let revive name = Hashtbl.remove dead name in
  (crash, is_alive, revive)

(* Shared snapshot plumbing for adapter authors: every adapter owns a
   dead-set, and most keep per-launch KV tables in a name-keyed
   registry.  [extra_take]/[extra_digest] cover whatever else the
   adapter holds (invoke counters, facilities caches, tile cursors). *)
module Snap = Lt_world.Snapshottable
module D64 = Lt_world.Digest64

let adapter_layer ~name ~dead ~tables ?(extra_take = [])
    ?(extra_digest = fun d -> d) () =
  Snap.make ~name
    ~take:(fun () ->
      Snap.save_refs
        ([ (fun () -> Snap.save_hashtbl dead);
           (fun () -> Snap.save_hashtbl_registry tables) ]
         @ extra_take))
    ~digest:(fun () ->
      let d =
        List.fold_left
          (fun d (k, ()) -> D64.string d k)
          (D64.int D64.basis (Hashtbl.length dead))
          (Snap.sorted_bindings dead)
      in
      let d =
        List.fold_left
          (fun d (n, tbl) ->
            Snap.digest_hashtbl
              ~key:(fun k -> k)
              ~value:(fun v -> v)
              tbl (D64.string d n))
          (D64.int d (Hashtbl.length tables))
          (Snap.sorted_bindings tables)
      in
      extra_digest d)

let pp_attacker_model fmt m =
  Format.pp_print_string fmt
    (match m with
     | Remote_software -> "remote-software"
     | Local_software -> "local-software"
     | Physical_memory -> "physical-memory"
     | Physical_code_swap -> "physical-code-swap")

let pp_properties fmt p =
  Format.fprintf fmt
    "%s: concurrent=%b mutual-isolation=%b cache-shared=%b progress=%b tcb=%d defends=[%a]"
    p.substrate_name p.concurrent_components p.mutually_isolated
    p.shared_cache_with_host p.progress_guaranteed
    (List.fold_left (fun acc (_, n) -> acc + n) 0 p.tcb)
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_attacker_model)
    p.defends
