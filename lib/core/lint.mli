(** The lint engine: run every registered rule over a manifest set.

    The paper's §III-A manifest — "a map of communication
    relationships" — makes trust hazards statically checkable; this
    engine turns each implicit hazard into an explicit, named,
    severity-ranked {!Diagnostic.t} that CI can gate on. The pass is
    pure and total (no I/O, never raises), so it can batch over
    thousands of manifests. Rules live in {!Lint_rules}. *)

type summary = { errors : int; warnings : int; infos : int }

(** [run manifests] runs every rule in {!Lint_rules.all} and returns
    the merged diagnostics, deduplicated and sorted worst-first
    ({!Diagnostic.compare}). Inconsistent inputs (dangling targets,
    duplicates, self-connections) are reported, not rejected. *)
val run : ?config:Lint_rules.config -> Manifest.t list -> Diagnostic.t list

(** [locate ~file spans diags] attaches a {!Diagnostic.location} to
    every diagnostic whose component appears in [spans] (from
    {!Manifest_file.parse_spanned}); diagnostics anchored to unknown
    components pass through untouched. Re-sorted, since location
    participates in {!Diagnostic.compare}. *)
val locate :
  file:string -> Manifest_file.span list -> Diagnostic.t list -> Diagnostic.t list

(** [locate_all files diags] — {!locate} over a merged multi-file
    report: each diagnostic gets the span of the first file (in argument
    order) that declares its component, first span within a file winning
    as in {!locate}. *)
val locate_all :
  (string * Manifest_file.span list) list -> Diagnostic.t list ->
  Diagnostic.t list

val summarize : Diagnostic.t list -> summary

(** CI gate: at least one [Error]-severity diagnostic. *)
val has_errors : Diagnostic.t list -> bool

(** Human report: a one-line header, then one indented entry per
    diagnostic with its fix hint. *)
val render_text : file:string -> Diagnostic.t list -> string

(** One JSON object
    [{"file":..,"summary":{..},"diagnostics":[..]}] per manifest file. *)
val render_json : file:string -> Diagnostic.t list -> string

(** [(id, severity, summary, paper_ref)] for every registered rule. *)
val catalogue : unit -> (string * Diagnostic.severity * string * string) list

(** The catalogue as an aligned table, for [lint --rules]. *)
val catalogue_text : unit -> string

(** Text block for the CLI: per-tenant diagnostic counts (a diagnostic
    belongs to the tenant of the component it anchors to); [""] when no
    manifest declares a trust domain, so flat fleets render
    byte-identically. *)
val render_domain_verdicts : Manifest.t list -> Diagnostic.t list -> string
