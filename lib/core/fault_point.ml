open Lt_crypto

type t = {
  rng : Drbg.t;
  sites : (string * int) list;
  counts : (string, int) Hashtbl.t;
}

let create ~seed sites =
  List.iter
    (fun (site, pct) ->
      if pct < 0 || pct > 100 then
        invalid_arg
          (Printf.sprintf "Fault_point.create: site %S rate %d not in [0,100]"
             site pct))
    sites;
  { rng = Drbg.create (Int64.of_int seed); sites; counts = Hashtbl.create 4 }

let current : t option ref = ref None

let install t = current := Some t

let uninstall () = current := None

let with_plan t f =
  let previous = !current in
  current := Some t;
  Fun.protect ~finally:(fun () -> current := previous) f

let fires site =
  match !current with
  | None -> false
  | Some t ->
    (match List.assoc_opt site t.sites with
     | None | Some 0 -> false
     | Some pct ->
       let hit = Drbg.int t.rng 100 < pct in
       if hit then
         Hashtbl.replace t.counts site
           (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts site));
       hit)

let fired t =
  Hashtbl.fold (fun site n acc -> (site, n) :: acc) t.counts []
  |> List.sort Stdlib.compare
