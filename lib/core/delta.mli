(** Fleet mutations for the incremental {!Check} engine.

    A delta is one control-plane operation on a manifest fleet: admit
    or update a component, evict one, or rewire a single channel. The
    {!Check} engine re-proves the lint + flow verdict after each delta
    without re-analysing the whole fleet; this module is the delta
    vocabulary plus a line-based script format so churn scenarios can
    be replayed from a file (and shrunk by the fuzzer).

    {!apply} is pure and {e total}: a delta whose subject does not
    exist is a no-op, never an error — the control plane must survive
    racing operators, and the linter reports whatever inconsistency the
    surviving fleet has. *)

type t =
  | Add of Manifest.t
      (** upsert: replaces the first manifest with the same name (and
          drops any other duplicates), appends otherwise *)
  | Remove of string  (** evict every manifest with this name *)
  | Connect of { caller : string; conn : Manifest.connection }
      (** upsert one channel on [caller]: an existing channel to the
          same [target.service] is replaced, otherwise the channel is
          appended *)
  | Disconnect of { caller : string; target : string; service : string }
  | Set_vetted of {
      caller : string;
      target : string;
      service : string;
      vetted : bool;
    }  (** toggle the trusted-wrapper flag on one existing channel *)

(** [apply d manifests] — pure, total, order-preserving. *)
val apply : t -> Manifest.t list -> Manifest.t list

(** One human line per delta, for per-step CLI verdicts. *)
val describe : t -> string

(** {2 Script format}

    Line-based, [#] comments, blank lines ignored:
    {v
    add                      # followed by manifest blocks
    component cache
      provides get
      connects store.io

    remove cache
    connect ui store.io      # CALLER TARGET.SERVICE
    connect-vetted ui legacyfs.io
    disconnect ui store.io
    vet ui store.io
    unvet ui store.io
    v}

    [add] (alias [update] — same upsert semantics) is followed by one
    or more manifest blocks in the {!Manifest_file} format; the block
    runs until the next delta keyword. Self-connections are rejected at
    parse time, mirroring the manifest file parser. *)

(** A parse failure with its position. [pe_line] is 1-based in the
    script file — errors inside an [add]/[update] manifest block are
    rebased onto the script's own numbering, not the block's. The one
    line-less case is an I/O failure from {!load_script_located}, which
    carries [pe_line = 0]. *)
type parse_error = { pe_line : int; pe_msg : string }

(** [parse_script_located text] returns deltas in file order, or the
    first error with its line. Total: never raises. *)
val parse_script_located : string -> (t list, parse_error) result

(** {!parse_script_located} with the error flattened to
    ["line %d: msg"] — for callers that only want a string. *)
val parse_script : string -> (t list, string) result

val load_script_located : string -> (t list, parse_error) result

val load_script : string -> (t list, string) result

(** Renders back to the script format; round-trips through
    {!parse_script}. *)
val to_text : t list -> string
