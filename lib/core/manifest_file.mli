(** Text format for component manifests, so system architects can
    describe an application and run the analyses without writing OCaml.

    Syntax (line-based, [#] comments):
    {v
    component ui
      domain mailapp          # optional; defaults to the component name
      size 6000               # notional loc; default 1000
      substrate microkernel   # default microkernel
      network-facing          # flags
      vulnerable
      no-badge-checks
      stateful                # accumulates state across requests
      restart on-failure 3 256    # policy [max [window-ticks]];
                                  # never | on-failure | always
      provides show render    # space-separated service names
      place class:tee host:edge-1   # fleet placement selectors
      connects tls.transmit   # one target.service per line
      connects-vetted legacyfs.io   # trusted-wrapper connection

    host edge-1               # fleet host declaration
      substrates microkernel sgx

    domain tenant-a           # trust domain (Tyche-style, nestable)
      domain edge             # sub-domain: path tenant-a/edge
        component proxy
          connects core.rpc
        end                   # closes component proxy
      end                     # pops edge
      component core          # path tenant-a
        provides rpc
      end
    end                       # pops tenant-a
    v}

    A [domain] line between stanzas opens a trust domain; inside a
    component it is still the protection-domain directive. [end] closes
    the open component stanza if any, else pops the innermost trust
    domain. Anything still open at end of file closes implicitly, so
    flat files never need [end].

    Parsing is total: errors come back as [Error] with a line number.
    Duplicate component names and connections from a component to
    itself are rejected at parse time; everything else (dangling
    targets, risky topologies) parses fine and is {!Lint}'s business. *)

(** [parse text] returns the manifests in file order. [host] stanzas
    parse but are dropped; use {!parse_fleet} to keep them. *)
val parse : string -> (Manifest.t list, string) result

(** [load path] reads and parses a file. *)
val load : string -> (Manifest.t list, string) result

(** [parse_fleet text] — manifests plus the declared fleet hosts, both
    in file order. *)
val parse_fleet : string -> (Manifest.t list * Manifest.host list, string) result

val load_fleet : string -> (Manifest.t list * Manifest.host list, string) result

(** A parsed manifest plus the 1-based line of its [component]
    directive, so diagnostics can point back into the source file. *)
type span = { sp_manifest : Manifest.t; sp_line : int }

val parse_spanned : string -> (span list, string) result

val load_spanned : string -> (span list, string) result

val parse_fleet_spanned : string -> (span list * Manifest.host list, string) result

val load_fleet_spanned : string -> (span list * Manifest.host list, string) result

(** [to_text manifests] renders back to the file format (round-trips
    through {!parse}). *)
val to_text : Manifest.t list -> string

(** [fleet_to_text (manifests, hosts)] — host stanzas first, then the
    components (round-trips through {!parse_fleet}). *)
val fleet_to_text : Manifest.t list * Manifest.host list -> string
