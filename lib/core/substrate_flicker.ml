open Lt_crypto
open Lt_tpm

type pal_state = {
  pal : Latelaunch.pal;
  expected_composite : string;
}

exception Pal_state of pal_state

let properties =
  { Substrate.substrate_name = "flicker";
    concurrent_components = false;
    mutually_isolated = true;
    defends =
      [ Substrate.Remote_software; Substrate.Local_software;
        Substrate.Physical_code_swap ];
    tcb = [ ("crtm+tpm", 5_000); ("late-launch-microcode", 3_000) ];
    shared_cache_with_host = true;
    progress_guaranteed = true }

let make tpm ?clock () =
  (* crash marks the PAL dead between sessions; its sealed store blob is
     untouched, so a relaunch of the same code unseals it again *)
  let dead : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let crash, is_alive, revive = Substrate.lifecycle ~dead () in
  let stores : (string, Tpm.sealed option ref) Hashtbl.t = Hashtbl.create 4 in
  let launch ~name ~code ~services =
    revive name;
    (* each PAL carries its persistent state as a blob sealed to its own
       DRTM identity; the untrusted host merely stores the ciphertext *)
    let sealed_store : Tpm.sealed option ref = ref None in
    Hashtbl.replace stores name sealed_store;
    let load_table () =
      match !sealed_store with
      | None -> Hashtbl.create 4
      | Some blob ->
        (match Tpm.unseal tpm blob with
         | None -> Hashtbl.create 4 (* different PAL resident: empty view *)
         | Some plain ->
           let table = Hashtbl.create 4 in
           (match Wire.decode plain with
            | Some entries ->
              List.iter
                (fun e ->
                  match Wire.decode e with
                  | Some [ k; v ] -> Hashtbl.replace table k v
                  | _ -> ())
                entries
            | None -> ());
           table)
    in
    let save_table table =
      let plain =
        Wire.encode
          (Hashtbl.fold (fun k v acc -> Wire.encode [ k; v ] :: acc) table []
           |> List.sort Stdlib.compare)
      in
      sealed_store := Some (Latelaunch.seal_for tpm plain)
    in
    let facilities =
      { Substrate.f_seal =
          (fun data -> Tpm.sealed_to_wire (Latelaunch.seal_for tpm data));
        f_unseal =
          (fun wire ->
            match Tpm.sealed_of_wire wire with
            | None -> None
            | Some sealed -> Latelaunch.unseal_for tpm sealed);
        f_store =
          (fun ~key data ->
            let table = load_table () in
            Hashtbl.replace table key data;
            save_table table);
        f_load = (fun ~key -> Hashtbl.find_opt (load_table ()) key) }
    in
    let handler input =
      match Wire.decode input with
      | Some [ fn; arg ] ->
        (match List.assoc_opt fn services with
         | Some service -> Wire.encode [ "ok"; service facilities arg ]
         | None -> Wire.encode [ "err"; Printf.sprintf "no entry point %S" fn ])
      | _ -> Wire.encode [ "err"; "malformed input" ]
    in
    (* the PAL's measured identity is its code alone (pal_name is fixed),
       so the verifier-side [measure] can predict it from code *)
    ignore name;
    let pal = { Latelaunch.pal_name = "pal"; pal_code = code; handler } in
    let state =
      { pal; expected_composite = Latelaunch.expected_drtm_composite tpm pal }
    in
    Ok
      (Substrate.make_component ~name ~measurement:state.expected_composite
         ~state:(Pal_state state))
  in
  let pal_of c =
    match Substrate.component_state c with
    | Pal_state s -> s
    | _ -> invalid_arg "substrate_flicker: foreign component"
  in
  let invoke c ~fn arg =
    if not (is_alive c) then
      Error (Substrate.crashed_error (Substrate.component_name c))
    else
    let s = pal_of c in
    let r =
      Latelaunch.execute ?clock tpm s.pal ~nonce:"session"
        ~input:(Wire.encode [ fn; arg ])
    in
    match Wire.decode r.Latelaunch.output with
    | Some [ "ok"; out ] -> Ok out
    | Some [ "err"; e ] -> Error e
    | _ -> Error "malformed PAL output"
  in
  let attest c ~nonce ~claim =
    let s = pal_of c in
    (* the TPM only quotes current state: the PAL must be resident *)
    let current = Pcr.composite (Tpm.pcrs tpm) [ Pcr.drtm_index ] in
    if not (Ct.equal current s.expected_composite) then
      Error "PAL not resident in the dynamic PCR (run it first)"
    else begin
      let ev_no_sig =
        { Attestation.ev_substrate = "flicker";
          ev_measurement = s.expected_composite;
          ev_nonce = nonce;
          ev_claim = claim;
          ev_proof = Attestation.Rsa_quote { signature = ""; cert = Tpm.ek_cert tpm } }
      in
      let signature = Tpm.ak_sign tpm ~body:(Attestation.signed_body ev_no_sig) in
      Ok
        { ev_no_sig with
          Attestation.ev_proof =
            Attestation.Rsa_quote { signature; cert = Tpm.ek_cert tpm } }
    end
  in
  let measure ~code =
    let scratch = { Latelaunch.pal_name = "pal"; pal_code = code; handler = Fun.id } in
    Latelaunch.expected_drtm_composite tpm scratch
  in
  let t =
    { Substrate.properties; launch; invoke; attest; measure;
      destroy = (fun _ -> ()); crash; is_alive; snap_layers = [] }
  in
  let module Snap = Lt_world.Snapshottable in
  let module D64 = Lt_world.Digest64 in
  t.Substrate.snap_layers <-
    [ Tpm.layer tpm;
      Substrate.adapter_layer ~name:"substrate:flicker" ~dead
        ~tables:(Hashtbl.create 1)
        ~extra_take:
          [ (fun () ->
              (* the sealed-store refs: outer bindings plus each ref's blob *)
              let outer = Snap.save_hashtbl stores in
              let inner =
                Hashtbl.fold (fun _ r acc -> Snap.save_ref r :: acc) stores []
              in
              fun () ->
                outer ();
                List.iter (fun restore -> restore ()) inner) ]
        ~extra_digest:(fun d ->
          List.fold_left
            (fun d (name, r) ->
              let d = D64.string d name in
              match !r with
              | None -> D64.bool d false
              | Some sealed -> D64.string d (Tpm.sealed_to_wire sealed))
            (D64.int d (Hashtbl.length stores))
            (Snap.sorted_bindings stores))
        () ]
    @ (match clock with
       | Some ck ->
         [ Snap.make ~name:"flicker:clock"
             ~take:(fun () -> Lt_hw.Clock.take_snapshot ck)
             ~digest:(fun () -> Lt_hw.Clock.state_digest ck) ]
       | None -> []);
  t
