(** Lattice-based information-flow analysis and static-vs-kernel
    capability conformance.

    Two divergences the manifest (§III-A "a map of communication
    relationships") makes checkable, and this module turns into
    machine verdicts:

    - {b flow}: can a secret held behind a sep/sgx-class substrate reach
      an attacker-observable component along the declared channels, and
      can attacker-influenced data reach the secret holder? A worklist
      fixpoint over {!Flow_lattice} labels answers both in time linear
      in the channel count — no path enumeration.
    - {b conformance}: does the de-facto authority state of a booted
      {!Lt_kernel.Kernel.t} (capability spaces, badges, mapped frames)
      agree with the manifest graph? Over-privilege is a POLA violation
      the paper says the substrate must block; under-provision is a
      declared channel the deployment forgot to grant.

    {2 Flow model}

    Every unvetted declared channel [caller -> target.service] induces
    two information-flow edges: a {e request} edge (caller's data
    reaches the target) and a {e reply} edge (the target's answer
    reaches the caller). A [connects-vetted] channel induces neither:
    the trusted wrapper validates requests and declassifies replies
    (§III-D), so it is the {e only} place labels drop back to public.

    Taint (attacker influence) propagates along request edges — it
    models who can {e invoke} whom. Secrecy propagates along both kinds
    — replies are how secrets escape. The per-component label is the
    join of both fixpoints. *)

type config = {
  secret_substrates : string list;
      (** substrates whose components are secrecy sources (default sep,
          sgx, trustzone, flicker — same set as the linter's) *)
}

val default_config : config

(** One information-flow edge derived from a declared channel. *)
type edge = {
  e_src : string;
  e_dst : string;
  e_service : string;   (** the service of the underlying channel *)
  e_reply : bool;       (** [true]: this is the reply direction *)
}

(** A noninterference violation: [secret]'s material reaches [sink]
    (network-facing or vulnerable, and not the holder itself) along
    [path] — component names, holder first, sink last. *)
type leak = { l_secret : string; l_sink : string; l_path : string list }

(** Attacker-influenced data reaches secret holder [t_sink] from
    [t_source] along [t_path] (source first); [t_direct] when the path
    is a single hop. *)
type taint_hit = {
  t_source : string;
  t_sink : string;
  t_path : string list;
  t_direct : bool;
}

type verdict = Secure | Leak of leak list  (** [Leak] list is nonempty *)

type result = {
  labels : (string * Flow_lattice.t) list;
      (** per-component fixpoint label, sorted by name *)
  leaks : leak list;          (** sorted by (secret, sink) *)
  taint_hits : taint_hit list;(** sorted by (source, sink) *)
  verdict : verdict;
  edges : edge list;          (** the flow graph the solver ran on *)
}

(** [analyze manifests] — pure and total; inconsistent inputs (dangling
    targets, duplicates) simply contribute no edges. *)
val analyze : ?config:config -> Manifest.t list -> result

(** {2 Deployment and conformance} *)

(** A manifest set booted onto a microkernel: one task and one endpoint
    (["<name>.ep"]) per component, a receive capability on the own
    endpoint, and one badged send capability per declared channel pair
    (the badge identifies the caller — §III-D's defence against
    confused deputies). Channels to the same target share one
    capability: services multiplex over the component's endpoint, as in
    {!Substrate_kernel}. *)
type deployment = {
  d_kernel : Lt_kernel.Kernel.t;
  d_tasks : (string * Lt_kernel.Kernel.task) list;
  d_endpoints : (string * Lt_kernel.Kernel.endpoint) list;
  d_badges : (int * string) list;  (** badge -> caller component *)
}

(** [provision manifests] boots a fresh kernel and grants exactly the
    declared authority. [Error] on duplicate names or dangling
    targets. *)
val provision :
  ?dram_pages:int -> Manifest.t list -> (deployment, string) Stdlib.result

(** One capability fact extracted from a task's capability space. *)
type cap_fact = {
  c_task : string;
  c_endpoint : string;
  c_slot : int;
  c_badge : int;
  c_send : bool;
  c_recv : bool;
}

(** A capability (or shared frame) the manifest never declared. *)
type over_privilege = {
  o_task : string;
  o_endpoint : string;
  o_reason : string;
}

(** A declared channel pair the kernel never granted. *)
type under_provision = {
  u_caller : string;
  u_target : string;
  u_services : string list;
}

type conformance = {
  facts : cap_fact list;              (** the de-facto authority graph *)
  over : over_privilege list;
  under : under_provision list;
}

(** [authority kernel] walks every task's capability space. *)
val authority : Lt_kernel.Kernel.t -> cap_fact list

(** [conformance manifests kernel] compares declared against de-facto:
    - a send capability onto ["Y.ep"] held by component task [X] with no
      declared channel [X -> Y.*] is over-privilege, as is any receive
      capability on a foreign endpoint, a capability held by a task no
      manifest names, a badge collision on a client-discriminating
      target, and a physical frame shared between two components with no
      declared channel (de-facto sharing, OSmosis-style);
    - a declared channel pair with no send capability is
      under-provision.
    Capabilities attenuated with [derive_cap] conform iff their original
    did: derivation never widens authority. *)
val conformance : ?config:config -> Manifest.t list -> Lt_kernel.Kernel.t -> conformance

val conforms : conformance -> bool

(** Conformance findings as stable-ID diagnostics:
    [L017-undeclared-authority] (error) and [L018-under-provision]
    (warning), sorted. *)
val conformance_diagnostics : conformance -> Diagnostic.t list

(** [check_deployment manifests] — provision + conformance + flow in one
    assertion, for scenarios: [Ok ()] when the booted kernel matches the
    manifest and the flow verdict is {!Secure}. *)
val check_deployment :
  ?config:config -> Manifest.t list -> (unit, string) Stdlib.result

(** {2 Reports} *)

(** Human report: labels, taint reach, verdict, optional conformance. *)
val render_text : file:string -> ?conformance:conformance -> result -> string

(** One JSON object per file, machine-readable counterpart. *)
val render_json : file:string -> ?conformance:conformance -> result -> string

(** Labelled channel graph in Graphviz DOT: nodes coloured by label,
    request edges solid, vetted channels dashed with a [vetted] tag. *)
val to_dot : Manifest.t list -> result -> string

(** CI gate: any leak. *)
val has_leaks : result -> bool

(** {2 Solver internals}

    Exposed for the incremental {!Check} engine, which re-derives only
    the affected slice of a result after a delta and must agree with
    {!analyze} byte-for-byte. Everything here is deterministic: equal
    inputs give structurally equal outputs. *)

(** First manifest wins on duplicate names (same policy as
    {!Lint_rules.make_ctx}). *)
val dedupe : Manifest.t list -> Manifest.t list

(** The information-flow edges induced by the declared channels:
    request + reply per unvetted channel, skipping self-connections and
    dangling targets. Sorted and deduplicated. *)
val flow_edges : Manifest.t list -> edge list

(** Successor function with sorted successor lists — the deterministic
    adjacency both the solver and the witness search run on. *)
val adjacency : edge list -> string -> string list

(** [bfs_paths adj start] returns the shortest-witness path query used
    for leak and taint reports: breadth-first, first-discovery parents
    over the sorted adjacency, so equal graphs give equal paths. *)
val bfs_paths : (string -> string list) -> string -> string -> string list option

(** Is the component a taint source (network-facing or vulnerable)? *)
val tainted_base : Manifest.t -> bool

(** The declared channel pairs [(caller, target)], vetted or not,
    self-connections excluded. Sorted and deduplicated. *)
val declared_pairs : Manifest.t list -> (string * string) list

(** {2 Per-trust-domain verdicts}

    Tenant attribution (ROADMAP item 2): a leak belongs to the tenant
    (outermost trust-domain element) of the secret holder, a taint hit
    to the tenant of its source. Components in the root domain [[]]
    belong to no tenant and may appear in any tenant's evidence. *)

(** [(component -> trust path)] lookup over the manifests, first
    manifest wins; unknown names map to the root path. *)
val trust_paths : Manifest.t list -> string -> string list

(** The sorted tenant names declared by the fleet. *)
val tenants : Manifest.t list -> string list

(** One verdict per tenant: [Leak] holds exactly the leaks whose secret
    holder lives under that tenant, so no leak is ever attributed to two
    tenants. *)
val tenant_verdicts :
  Manifest.t list -> result -> (string * verdict) list

(** Taint hits whose source and sink sit in {e disjoint} trust domains —
    must be empty for the tenant-isolation story to hold. *)
val cross_tenant_hits : Manifest.t list -> result -> taint_hit list

val cross_tenant_leaks : Manifest.t list -> result -> leak list

(** Text block for the CLI: per-tenant verdicts plus any cross-tenant
    witnesses; [""] when no manifest declares a trust domain, so flat
    fleets render byte-identically. *)
val render_domain_verdicts : Manifest.t list -> result -> string
