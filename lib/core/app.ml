type ctx = {
  self : string;
  call : target:string -> service:string -> string -> (string, string) result;
}

type behaviour = ctx -> service:string -> string -> string

type violation = { v_caller : string; v_target : string; v_service : string }

type comp = {
  man : Manifest.t;
  mutable behave : behaviour;
  mutable owned : bool;      (* compromised *)
  mutable scanned : bool;    (* compromised payload already ran its sweep *)
  mutable attempts : (string * string * bool) list; (* target, service, allowed *)
}

type t = {
  comps : (string, comp) Hashtbl.t;
  mutable viols : violation list; (* newest first *)
}

let create () = { comps = Hashtbl.create 16; viols = [] }

let add t man behave =
  if Hashtbl.mem t.comps man.Manifest.name then
    invalid_arg (Printf.sprintf "App.add: duplicate component %s" man.Manifest.name);
  Hashtbl.replace t.comps man.Manifest.name
    { man; behave; owned = false; scanned = false; attempts = [] }

let add_stub t man =
  add t man (fun _ ~service req -> Printf.sprintf "%s:%s:%s" man.Manifest.name service req)

let validate t =
  let dangling = ref [] in
  Hashtbl.iter
    (fun name comp ->
      List.iter
        (fun c ->
          match Hashtbl.find_opt t.comps c.Manifest.target with
          | None ->
            dangling :=
              Printf.sprintf "%s -> %s (no such component)" name c.Manifest.target
              :: !dangling
          | Some target ->
            if not (List.mem c.Manifest.service target.man.Manifest.provides) then
              dangling :=
                Printf.sprintf "%s -> %s.%s (no such service)" name c.Manifest.target
                  c.Manifest.service
                :: !dangling)
        comp.man.Manifest.connects_to)
    t.comps;
  if !dangling = [] then Ok () else Error (List.sort Stdlib.compare !dangling)

let manifests t =
  Hashtbl.fold (fun _ c acc -> c.man :: acc) t.comps []
  |> List.sort (fun a b -> Stdlib.compare a.Manifest.name b.Manifest.name)

let manifest t name =
  Option.map (fun c -> c.man) (Hashtbl.find_opt t.comps name)

let set_behaviour t name behave =
  match Hashtbl.find_opt t.comps name with
  | None ->
    invalid_arg (Printf.sprintf "App.set_behaviour: no component %s" name)
  | Some comp -> comp.behave <- behave

let authorized t ~caller ~target ~service =
  match caller with
  | None ->
    (match Hashtbl.find_opt t.comps target with
     | Some c -> c.man.Manifest.network_facing
     | None -> false)
  | Some caller_name ->
    (match Hashtbl.find_opt t.comps caller_name with
     | None -> false
     | Some c ->
       List.exists
         (fun conn -> conn.Manifest.target = target && conn.Manifest.service = service)
         c.man.Manifest.connects_to)

type call_error =
  | Unknown_component of { caller : string; target : string; service : string }
  | Unknown_service of { target : string; service : string }
  | Denied of { caller : string; target : string; service : string }
  | Crashed of { target : string; reason : string }
  | Failed of { target : string; reason : string }

(* renders exactly the strings [call] has always returned, so string
   consumers and goldens are unaffected by the typed layer underneath *)
let render_call_error = function
  | Unknown_component { target; _ } -> Printf.sprintf "no component %S" target
  | Unknown_service { target; service } ->
    Printf.sprintf "component %s does not provide %s" target service
  | Denied { caller; target; service } ->
    Printf.sprintf "channel denied: %s -> %s.%s not in manifest" caller target
      service
  | Crashed { target; reason } ->
    Printf.sprintf "component %s crashed: %s" target reason
  | Failed { target; reason } ->
    Printf.sprintf "component %s failed: %s" target reason

let rec call_typed t ~caller ~target ~service req =
  let caller_name = Option.value caller ~default:"<external>" in
  match Hashtbl.find_opt t.comps target with
  | None ->
    (* same deny-style observability as a blocked channel: a request to a
       component that does not exist is a routing fault, not a raise *)
    Lt_obs.Trace.event ~kind:"deny"
      ~name:(Lt_obs.Trace.span_name target service)
      ~attrs:(("reason", "unknown-component") :: Lt_obs.Trace.attr "caller" caller_name)
      ();
    Lt_obs.Metrics.incr "channel/unknown_target";
    Error (Unknown_component { caller = caller_name; target; service })
  | Some comp ->
    if not (authorized t ~caller ~target ~service) then begin
      t.viols <-
        { v_caller = caller_name; v_target = target; v_service = service }
        :: t.viols;
      Lt_obs.Trace.event ~kind:"deny"
        ~name:(Lt_obs.Trace.span_name target service)
        ~attrs:(Lt_obs.Trace.attr "caller" caller_name) ();
      Lt_obs.Metrics.incr "channel/denied";
      Error (Denied { caller = caller_name; target; service })
    end
    else if not (List.mem service comp.man.Manifest.provides) then
      Error (Unknown_service { target; service })
    else begin
      let ctx =
        { self = target;
          call = (fun ~target:t2 ~service:s2 r -> call t ~caller:(Some target) ~target:t2 ~service:s2 r) }
      in
      if comp.owned then run_payload t comp ctx;
      try
        Ok
          (Lt_obs.Trace.with_span ~kind:"call"
             ~name:(Lt_obs.Trace.span_name target service)
             ~attrs:(Lt_obs.Trace.attr "caller" caller_name)
             (fun () -> comp.behave ctx ~service req))
      with
      | Substrate.Service_failure reason ->
        Error (Failed { target; reason })
      | Substrate.Dependency_crashed { origin; reason } ->
        (* blame the component that is actually down, not the callee
           that tripped over it *)
        Error (Crashed { target = origin; reason })
      | exn ->
        Error (Crashed { target; reason = Printexc.to_string exn })
    end

and call t ~caller ~target ~service req =
  Result.map_error render_call_error (call_typed t ~caller ~target ~service req)

(* the attacker's payload: sweep every (component, service) in the app
   and record which channels the runtime lets through *)
and run_payload t comp ctx =
  if not comp.scanned then begin
    comp.scanned <- true;
    let targets =
      Hashtbl.fold
        (fun name c acc ->
          if name = comp.man.Manifest.name then acc
          else List.map (fun s -> (name, s)) c.man.Manifest.provides @ acc)
        t.comps []
      |> List.sort Stdlib.compare
    in
    List.iter
      (fun (target, service) ->
        let allowed =
          match ctx.call ~target ~service "exfiltrate" with
          | Ok _ -> true
          | Error _ -> false
        in
        comp.attempts <- (target, service, allowed) :: comp.attempts)
      targets
  end

let violations t = List.rev t.viols

let compromise t name =
  match Hashtbl.find_opt t.comps name with
  | None -> invalid_arg (Printf.sprintf "App.compromise: no component %s" name)
  | Some comp ->
    comp.owned <- true;
    (* the original behaviour is gone; the attacker answers everything *)
    comp.behave <- (fun _ ~service:_ _ -> "pwned")

let compromised t =
  Hashtbl.fold (fun name c acc -> if c.owned then name :: acc else acc) t.comps []
  |> List.sort Stdlib.compare

let exfiltration_attempts t name =
  match Hashtbl.find_opt t.comps name with
  | None -> []
  | Some c -> List.sort Stdlib.compare c.attempts

(* Comp records are mutated in place (set_behaviour, compromise) and
   never replaced after [add], so a fast path may capture one once and
   poll its flags allocation-free forever after. *)
let owned_getter t name =
  match Hashtbl.find_opt t.comps name with
  | None -> None
  | Some comp -> Some (fun () -> comp.owned)

(* --- Snapshottable ---------------------------------------------------- *)

module Snap = Lt_world.Snapshottable
module D64 = Lt_world.Digest64

let take_snapshot t =
  let comps = Snap.save_hashtbl t.comps in
  let per_comp =
    Hashtbl.fold
      (fun _ c acc ->
        let behave = c.behave
        and owned = c.owned
        and scanned = c.scanned
        and attempts = c.attempts in
        (fun () ->
          c.behave <- behave;
          c.owned <- owned;
          c.scanned <- scanned;
          c.attempts <- attempts)
        :: acc)
      t.comps []
  in
  let viols = t.viols in
  fun () ->
    comps ();
    List.iter (fun restore -> restore ()) per_comp;
    t.viols <- viols

(* behaviours are closures and cannot be digested; names + flags +
   attempts + violations pin down everything restore puts back that a
   test can observe *)
let state_digest t =
  let d =
    List.fold_left
      (fun d (name, c) ->
        let d = D64.string d name in
        let d = D64.bool (D64.bool d c.owned) c.scanned in
        D64.list
          (fun d (target, service, allowed) ->
            D64.bool (D64.string (D64.string d target) service) allowed)
          d
          (List.sort Stdlib.compare c.attempts))
      (D64.int D64.basis (Hashtbl.length t.comps))
      (Snap.sorted_bindings t.comps)
  in
  D64.list
    (fun d v ->
      D64.string (D64.string (D64.string d v.v_caller) v.v_target) v.v_service)
    d t.viols
