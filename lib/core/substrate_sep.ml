open Lt_crypto
module Sep = Lt_sep.Sep

exception Svc_state of string

let properties =
  { Substrate.substrate_name = "sep";
    concurrent_components = false;
    mutually_isolated = false;
    defends =
      [ Substrate.Remote_software; Substrate.Local_software;
        Substrate.Physical_memory ];
    tcb = [ ("sep-kernel", 8_000); ("sep-hardware", 4_000); ("boot-rom", 1_000) ];
    shared_cache_with_host = false;
    progress_guaranteed = true }

let measure_code code = Sha256.digest ("sep-service|" ^ code)

let make machine rng ~device_id ~private_pages =
  let sep = Sep.attach machine rng ~private_pages in
  let measurements : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let facilities ctx ~comp =
    { Substrate.f_seal =
        (fun data ->
          let key = Sep.derive ctx ~info:("seal|" ^ comp) 16 in
          let nonce = String.sub (Sha256.digest (comp ^ data)) 0 Speck.nonce_size in
          Speck.Aead.to_wire (Speck.Aead.encrypt ~key ~nonce ~ad:"sep-seal" data));
      f_unseal =
        (fun wire ->
          let key = Sep.derive ctx ~info:("seal|" ^ comp) 16 in
          match Speck.Aead.of_wire wire with
          | None -> None
          | Some box -> Speck.Aead.decrypt ~key ~ad:"sep-seal" box);
      f_store = (fun ~key data -> Sep.store ctx ~key data);
      f_load = (fun ~key -> Sep.load ctx ~key) }
  in
  (* crash marks the mailbox service dead; the SEP itself keeps running,
     so secure-world storage and the UID key survive for the relaunch *)
  let dead : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let crash, is_alive, revive = Substrate.lifecycle ~dead () in
  let launch ~name ~code ~services =
    revive name;
    Hashtbl.replace measurements name (measure_code code);
    (* one mailbox service per component dispatches its entry points so
       they share the component's store namespace *)
    Sep.register_service sep ~name (fun ctx arg ->
        match Wire.decode arg with
        | Some [ fn; req ] ->
          (match List.assoc_opt fn services with
           | Some service -> Wire.encode [ "ok"; service (facilities ctx ~comp:name) req ]
           | None -> Wire.encode [ "err"; Printf.sprintf "no entry point %S" fn ])
        | _ -> Wire.encode [ "err"; "malformed request" ]);
    Ok
      (Substrate.make_component ~name ~measurement:(measure_code code)
         ~state:(Svc_state name))
  in
  let svc_of c =
    match Substrate.component_state c with
    | Svc_state name -> name
    | _ -> invalid_arg "substrate_sep: foreign component"
  in
  let span_attrs = [ ("substrate", "sep") ] in
  let invoke c ~fn arg =
    if not (is_alive c) then
      Error (Substrate.crashed_error (Substrate.component_name c))
    else
    Lt_obs.Trace.with_span ~kind:"mailbox"
      ~name:(Lt_obs.Trace.span_name (Substrate.component_name c) fn)
      ~attrs:span_attrs
      (fun () ->
        match Sep.mailbox_call sep ~service:(svc_of c) (Wire.encode [ fn; arg ]) with
        | Error e ->
          Lt_obs.Trace.fail_span e;
          Error e
        | Ok reply ->
          (match Wire.decode reply with
           | Some [ "ok"; out ] -> Ok out
           | Some [ "err"; e ] ->
             Lt_obs.Trace.fail_span e;
             Error e
           | _ ->
             Lt_obs.Trace.fail_span "malformed sep reply";
             Error "malformed sep reply"))
  in
  let attest c ~nonce ~claim =
    let measurement = Substrate.component_measurement c in
    let ev_no_tag =
      { Attestation.ev_substrate = "sep";
        ev_measurement = measurement;
        ev_nonce = nonce;
        ev_claim = claim;
        ev_proof = Attestation.Hmac_tag { device = device_id; tag = "" } }
    in
    let body = Attestation.signed_body ev_no_tag in
    Sep.register_service sep ~name:"__lt_attest" (fun ctx arg ->
        Hmac.mac ~key:(Sep.uid_key ctx) arg);
    match Sep.mailbox_call sep ~service:"__lt_attest" body with
    | Error e -> Error e
    | Ok tag ->
      Ok
        { ev_no_tag with
          Attestation.ev_proof = Attestation.Hmac_tag { device = device_id; tag } }
  in
  let t =
    { Substrate.properties;
      launch;
      invoke;
      attest;
      measure = (fun ~code -> measure_code code);
      destroy = (fun _ -> ());
      crash;
      is_alive;
      snap_layers = [] }
  in
  t.Substrate.snap_layers <-
    [ Lt_hw.Machine.layer machine;
      Lt_world.Snapshottable.make ~name:"sep"
        ~take:(fun () -> Sep.take_snapshot sep)
        ~digest:(fun () -> Sep.state_digest sep);
      Substrate.adapter_layer ~name:"substrate:sep" ~dead
        ~tables:(Hashtbl.create 1)
        ~extra_take:
          [ (fun () -> Lt_world.Snapshottable.save_hashtbl measurements) ]
        ~extra_digest:(fun d ->
          Lt_world.Snapshottable.digest_hashtbl
            ~key:(fun k -> k) ~value:(fun v -> v) measurements d)
        () ];
  (t, sep, Sep.provisioning_record sep)
