(** Seeded, deterministic fault points for chaos testing.

    A {!t} is an armed fault plan: a set of named sites, each with a
    firing probability, drawn from one seeded DRBG. Instrumented code
    (the substrate adapters) asks {!fires} at its fault sites; with no
    plan installed the call is a single reference read and always
    answers [false], so the hooks stay compiled into production paths.

    Determinism: the single-threaded simulation consults sites in a
    fixed order for a fixed workload, so equal seeds produce identical
    kill schedules — the same discipline as the load engine's fault
    injection. *)

type t

(** [create ~seed sites] arms nothing yet; [sites] maps a site name
    (e.g. ["microkernel/kill-mid-ipc"]) to a firing percentage in
    [0, 100]. Unknown sites never fire. *)
val create : seed:int -> (string * int) list -> t

(** {2 Ambient plan} *)

val install : t -> unit

val uninstall : unit -> unit

(** [with_plan t f] installs [t] for the extent of [f], restoring the
    previous plan afterwards (also on exceptions). *)
val with_plan : t -> (unit -> 'a) -> 'a

(** {2 Consulting (no-op without an installed plan)} *)

(** [fires site] — true when the armed plan rolls under [site]'s
    percentage. Each call advances the plan's DRBG only when the site
    is armed with a non-zero rate. *)
val fires : string -> bool

(** {2 Reading} *)

(** [fired t] — how often each site actually fired, sorted by site. *)
val fired : t -> (string * int) list
