(** Security analysis over an application's trust graph.

    The tooling the paper's call to action asks for (§IV): TCB
    accounting, compromise-propagation prediction, and a static
    confused-deputy detector. All results derive from manifests alone —
    "a map of communication relationships allows to reason about the
    required message protection" (§III-A). *)

(** Result of {!compromise_reach}. *)
type reach = {
  owned : string list;
      (** components fully controlled: same protection domain, or
          vulnerable components reachable through declared channels *)
  invocable : (string * string) list;
      (** (component, service) authority usable but not owned *)
  owned_fraction : float;      (** |owned| / |components| *)
  authority_fraction : float;
      (** services reachable (owned + invocable) / all services *)
}

(** [tcb app ~tcb_of_substrate name] is the component's trusted
    computing base in notional lines of code: its own size, its
    substrate's TCB, and — transitively — every component it connects to
    {e without} a vetting wrapper. Cycles are handled. *)
val tcb : App.t -> tcb_of_substrate:(string -> int) -> string -> int

(** [compromise_reach app name] predicts the blast radius of exploiting
    [name], honoring domains, declared channels and vulnerability
    flags. *)
val compromise_reach : App.t -> string -> reach

(** [confused_deputy_risks app] lists services with two or more distinct
    callers whose component does not discriminate clients — the
    paper's "new vulnerability du jour" (§III-E). *)
val confused_deputy_risks : App.t -> (string * string * string list) list
(** (component, service, callers) *)

(** [attack_surface app name] counts entry points exposed by the
    component: inbound declared channels plus (if network facing) its
    public services. *)
val attack_surface : App.t -> string -> int

(** [domains app] groups components by protection domain. *)
val domains : App.t -> (string * string list) list

(** Result of {!paths}: the enumerated paths, plus an explicit marker
    when the cap cut the search short — a truncated search must never
    be mistaken for an exhaustive one. *)
type path_search = {
  ps_paths : string list list;  (** sorted; at most [max_paths] *)
  ps_truncated : bool;
      (** [true] iff at least one further path exists beyond the cap *)
}

(** [paths app ~src ~dst] enumerates acyclic authority paths from [src]
    to [dst] along declared channels — "how could data possibly flow
    from the renderer to the keystore?" Each path is the list of
    component names visited, [src] first. Empty when [dst] is
    unreachable, which is the verification a security review wants.

    Enumeration stops after [max_paths] paths (default 1000): acyclic
    path counts are exponential in dense graphs. [ps_truncated] reports
    whether the cap was hit — reachability and flow questions should
    then use {!Flow.analyze}, which is linear. *)
val paths : ?max_paths:int -> App.t -> src:string -> dst:string -> path_search

val pp_reach : Format.formatter -> reach -> unit
