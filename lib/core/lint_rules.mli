(** The lint rule registry.

    Each rule is a named, severity-ranked, pure check over a parsed
    manifest set. The {!Lint} engine runs {!all} and merges the
    diagnostics; this module is where new rules get added. Rules are
    total: they never raise, even on inconsistent manifest sets (the
    inconsistency is precisely what other rules report). *)

(** Tunables shared by the rules. *)
type config = {
  max_domain_components : int;
      (** L008: more components than this in one domain is a POLA
          violation (default 3) *)
  oversize_loc : int;
      (** L013: a component at or above this size should be decomposed
          (default 30_000) *)
  tcb_threshold : int;
      (** L007: warn when an unvetted legacy-OS dependency pushes the
          TCB above this (default 25_000) *)
  secret_substrates : string list;
      (** L006/L014/L016: substrates assumed to hold secrets worth
          protecting (default sep, sgx, trustzone, flicker); these seed
          the {!Flow} solver's secrecy sources *)
}

val default_config : config

(** What every rule sees: the raw manifest list (duplicates and all) and
    an {!App.t} built from it with duplicates dropped, so the
    {!Analysis} toolbox can be reused directly. *)
type ctx = {
  manifests : Manifest.t list;
  app : App.t;
}

val make_ctx : Manifest.t list -> ctx

type rule = {
  id : string;           (** stable, e.g. ["L005-confused-deputy"] *)
  severity : Diagnostic.severity;
  summary : string;      (** one line, for the rule catalogue *)
  paper_ref : string;    (** section of the paper motivating the rule *)
  check : config -> ctx -> Diagnostic.t list;
}

(** All rules, in rule-id order. *)
val all : rule list

(** [(name, sealed_identity, tcb_loc)] for every substrate the linter
    knows about. *)
val known_substrates : (string * bool * int) list

val substrate_known : string -> bool

(** Can the substrate attest / keep a sealed identity? *)
val substrate_sealed_identity : string -> bool

(** Notional substrate TCB in lines of code; unknown substrates count as
    a microkernel. Shared with the CLI's [analyze] TCB accounting. *)
val default_tcb_of_substrate : string -> int
