(** The lint rule registry.

    Each rule is a named, severity-ranked, pure check over a parsed
    manifest set. The {!Lint} engine runs {!all} and merges the
    diagnostics; this module is where new rules get added. Rules are
    total: they never raise, even on inconsistent manifest sets (the
    inconsistency is precisely what other rules report).

    Rules are {e seeded}: [check cfg ctx m] returns only the findings
    anchored at component [m], and the engine unions the per-seed
    results over every manifest (the union, deduplicated and sorted, is
    byte-identical to the old whole-set formulation). Every rule also
    declares a dependency {!scope}, which is what lets the incremental
    {!Check} engine re-run only the affected seeds after a delta. *)

(** Tunables shared by the rules. *)
type config = {
  max_domain_components : int;
      (** L008: more components than this in one domain is a POLA
          violation (default 3) *)
  oversize_loc : int;
      (** L013: a component at or above this size should be decomposed
          (default 30_000) *)
  tcb_threshold : int;
      (** L007: warn when an unvetted legacy-OS dependency pushes the
          TCB above this (default 25_000) *)
  secret_substrates : string list;
      (** L006/L014/L016: substrates assumed to hold secrets worth
          protecting (default sep, sgx, trustzone, flicker); these seed
          the {!Flow} solver's secrecy sources *)
  declared_hosts : Manifest.host list;
      (** L024: the fleet hosts placement specs are checked against
          (default []: selector syntax is still validated, but
          satisfiability is not — a single-machine lint has no hosts) *)
}

val default_config : config

(** What a seed's findings may depend on — the contract {!Check} uses
    to compute dirty seeds after a delta:
    - [Component]: only the seed manifest itself;
    - [Neighborhood]: the seed, its channel targets, the components
      whose channels point at it, and its domain co-residents;
    - [Graph]: the cross-manifest channel graph (flow fixpoints,
      closures, cycles). *)
type scope = Component | Neighborhood | Graph

(** ["component"], ["manifest"], ["graph"] — the LINT_RULES.md scope
    column. *)
val scope_to_string : scope -> string

(** What every rule sees. [manifests] is the raw list (duplicates and
    all); the tables index it for O(1) seeded checks: [index] is
    first-wins by name, [counts] counts declarations per name, [inbound]
    maps a target name to every channel pointing at it (caller manifest,
    connection, and whether the caller is the first-wins occurrence),
    [domain_all] maps a domain to member names in declaration order
    (duplicates kept), [domain_dedup] to the sorted deduplicated
    members. [app] is built from the deduplicated set so the
    {!Analysis} toolbox can be reused directly. [flow_memo] caches one
    {!Flow.analyze} result per flow config so the four flow-backed
    rules share a single fixpoint run — {!Check} pre-seeds it with its
    incrementally maintained result. [cycles_memo] plays the same role
    for L009's whole-graph cycle scan. *)
type ctx = {
  manifests : Manifest.t list;
  index : (string, Manifest.t) Hashtbl.t;
  counts : (string, int) Hashtbl.t;
  inbound : (string, (Manifest.t * Manifest.connection * bool) list) Hashtbl.t;
  domain_all : (string, string list) Hashtbl.t;
  domain_dedup : (string, string list) Hashtbl.t;
  app : App.t;
  flow_memo : (Flow.config * Flow.result) list ref;
  contain_memo : (Contain.config * Contain.result) list ref;
  cycles_memo : Diagnostic.t list option ref;
}

val make_ctx : Manifest.t list -> ctx

(** First-wins lookup by component name. *)
val find : ctx -> string -> Manifest.t option

(** Every channel pointing at the named component (vetted, self and
    dangling-caller channels included). *)
val inbound : ctx -> string -> (Manifest.t * Manifest.connection * bool) list

(** The memoized {!Flow.analyze} over [ctx.manifests] for this config. *)
val flow_of_ctx : config -> ctx -> Flow.result

(** The {!Contain.config} the containment rules run under (currently
    always {!Contain.default_config}). *)
val contain_config : config -> Contain.config

(** The memoized {!Contain.analyze} over [ctx.manifests] — shared by
    L020/L021/L022; {!Check} pre-seeds the memo with its incrementally
    maintained result. *)
val contain_of_ctx : config -> ctx -> Contain.result

type rule = {
  id : string;           (** stable, e.g. ["L005-confused-deputy"] *)
  severity : Diagnostic.severity;
  summary : string;      (** one line, for the rule catalogue *)
  paper_ref : string;    (** section of the paper motivating the rule *)
  scope : scope;         (** what a seed's findings may depend on *)
  check : config -> ctx -> Manifest.t -> Diagnostic.t list;
      (** findings anchored at the seed manifest only *)
}

(** All rules, in rule-id order. *)
val all : rule list

(** [(name, sealed_identity, tcb_loc)] for every substrate the linter
    knows about. *)
val known_substrates : (string * bool * int) list

val substrate_known : string -> bool

(** Can the substrate attest / keep a sealed identity? *)
val substrate_sealed_identity : string -> bool

(** Notional substrate TCB in lines of code; unknown substrates count as
    a microkernel. Shared with the CLI's [analyze] TCB accounting. *)
val default_tcb_of_substrate : string -> int
